package streamrel

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// FuzzIVMEquivalence drives the delta-maintained pipeline and its re-exec
// twin with the same fuzzer-chosen sequence of appends and time advances,
// and requires byte-identical fire transcripts. The byte stream decodes
// to an op tape: each byte is either "advance the watermark" (fires
// windows, expires slices, including empty-window fires over quiet gaps)
// or "append a row" with a small group-key space (including NULL keys and
// NULL aggregate inputs, so retraction of NULL-bearing slices is covered).
// Values stay integer-valued so float arithmetic is exact under any
// add/retract order.
func FuzzIVMEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0xf0, 0x33, 0x44, 0xff, 0x55})
	f.Add([]byte{0xf7, 0xf7, 0xf7, 0x01})
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0xf1, 0x90, 0xa0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		queries := []string{
			`SELECT url, count(*), count(v), sum(v), avg(v), min(v), max(v)
				FROM s <VISIBLE '30 seconds' ADVANCE '10 seconds'> GROUP BY url`,
			`SELECT count(*), sum(f), min(f), max(f) FROM s <VISIBLE '20 seconds' ADVANCE '10 seconds'>`,
		}
		run := func(mode string) []string {
			e := openMemMode(t, mode)
			mustExec(t, e, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint, f double)`)
			cqs := make([]*CQ, len(queries))
			for i, q := range queries {
				cq, err := e.Subscribe(q)
				if err != nil {
					t.Fatal(err)
				}
				defer cq.Close()
				cqs[i] = cq
			}
			ts := ivmBase
			for _, op := range tape {
				if op >= 0xf0 {
					// Advance 1..64 seconds: fires boundaries, expires
					// slices, can skip whole windows.
					ts += int64(op&0x0f+1) * 4_000_000
					e.AdvanceTime("s", time.UnixMicro(ts).UTC())
					continue
				}
				ts += int64(op&0x07) * 700_000
				url := Value(Null)
				if g := (op >> 3) & 0x07; g != 7 {
					url = String(fmt.Sprintf("/u%d", g))
				}
				v := Value(Null)
				if op&0x40 == 0 {
					v = Int(int64(op % 23))
				}
				row := Row{url, Timestamp(time.UnixMicro(ts).UTC()), v, Float(float64(op % 31))}
				if err := e.Append("s", row); err != nil {
					t.Fatal(err)
				}
			}
			e.AdvanceTime("s", time.UnixMicro(ts).Add(time.Minute).UTC())
			var out []string
			for i, cq := range cqs {
				for _, b := range collectBatches(t, cq) {
					out = append(out, fmt.Sprintf("q%d %s", i, b))
				}
			}
			return out
		}
		inc := run("incremental")
		ref := run("reexec")
		if a, b := strings.Join(inc, "\n"), strings.Join(ref, "\n"); a != b {
			t.Fatalf("incremental and re-exec transcripts differ:\nincremental:\n%s\nreexec:\n%s", a, b)
		}
	})
}
