// Package streamrel is a stream-relational database engine: a from-scratch
// Go reproduction of the system described in "Continuous Analytics:
// Rethinking Query Processing in a Network-Effect World" (Franklin,
// Krishnamurthy, Conway, Li, Russakovsky, Thombre — CIDR 2009).
//
// The engine runs SQL over tables, streams, and combinations of the two.
// Streams are ordered unbounded relations declared with CREATE STREAM;
// window clauses (<VISIBLE '5 minutes' ADVANCE '1 minute'>) turn queries
// over them into continuous queries that evaluate incrementally as data
// arrives — before it is stored. Derived streams (CREATE STREAM … AS) run
// always-on; channels (CREATE CHANNEL … FROM … INTO …) archive their
// results into ordinary SQL tables, which become continuously maintained
// Active Tables that snapshot queries read with ordinary SELECTs.
//
// Quick start:
//
//	eng, _ := streamrel.Open(streamrel.Config{})
//	defer eng.Close()
//	eng.Exec(`CREATE STREAM url_stream (
//	            url varchar, atime timestamp CQTIME USER, client_ip varchar)`)
//	cq, _ := eng.Subscribe(`SELECT url, count(*) FROM url_stream
//	                        <VISIBLE '5 minutes' ADVANCE '1 minute'>
//	                        GROUP BY url`)
//	eng.Exec(`INSERT INTO url_stream VALUES ('/home', timestamp '2009-01-04 09:00:30', '10.0.0.1')`)
//	eng.AdvanceTime("url_stream", mustTS("2009-01-04 09:06:00"))
//	batch, _ := cq.TryNext() // the first window's rows
package streamrel

import (
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"streamrel/internal/catalog"
	"streamrel/internal/metrics"
	"streamrel/internal/plan"
	"streamrel/internal/repl"
	"streamrel/internal/sql"
	"streamrel/internal/stream"
	"streamrel/internal/sysmon"
	"streamrel/internal/trace"
	"streamrel/internal/txn"
	"streamrel/internal/types"
	"streamrel/internal/wal"
)

// Re-exported value types so callers never import internal packages.
type (
	// Value is a single SQL value.
	Value = types.Datum
	// Row is a tuple of values.
	Row = types.Row
	// Column describes one output or schema column.
	Column = types.Column
	// Schema is an ordered column list.
	Schema = types.Schema
)

// Value constructors.
var (
	// Null is the SQL NULL value.
	Null = types.Null
)

// Int returns an integer value.
func Int(v int64) Value { return types.NewInt(v) }

// Float returns a floating-point value.
func Float(v float64) Value { return types.NewFloat(v) }

// String returns a string value.
func String(v string) Value { return types.NewString(v) }

// Bool returns a boolean value.
func Bool(v bool) Value { return types.NewBool(v) }

// Timestamp returns a timestamp value.
func Timestamp(t time.Time) Value { return types.NewTimestamp(t) }

// Interval returns an interval value.
func Interval(d time.Duration) Value { return types.NewInterval(d) }

// LateRowPolicy mirrors the runtime's disorder policies.
type LateRowPolicy uint8

// Late-row policies for Config.LateRows.
const (
	// LateReject returns an error on out-of-order input (default).
	LateReject LateRowPolicy = iota
	// LateDrop silently discards late rows (counted in Stats).
	LateDrop
	// LateClamp advances late rows to the stream's high-water mark.
	LateClamp
)

// Config controls engine behaviour.
type Config struct {
	// Dir is the data directory for the write-ahead log and checkpoints.
	// Empty means fully in-memory (no durability) — convenient for tests
	// and benchmarks.
	Dir string
	// SyncWAL fsyncs every committed batch. Off by default; crash-safety
	// tests and production deployments turn it on.
	SyncWAL bool
	// GroupCommitMaxDelay is how long a WAL group-commit leader waits
	// before writing, letting concurrent committers merge into the same
	// fsync (see internal/wal). 0 writes immediately; concurrency alone
	// still forms groups. Only meaningful with SyncWAL.
	GroupCommitMaxDelay time.Duration
	// DisableSharing turns off shared slice aggregation across continuous
	// queries; experiment E3 measures its benefit.
	DisableSharing bool
	// DisableIVM turns off incremental view maintenance: delta-eligible
	// continuous queries then fall back to shared slices or re-execution.
	// Experiment E14 measures the incremental path's benefit.
	DisableIVM bool
	// DisablePlanSharing turns off plan-level sharing: continuous queries
	// with identical (or subsumed) canonical plans then each build their
	// own window state instead of subscribing to one shared host pipeline.
	// Slice sharing (DisableSharing) is unaffected. Experiment E15
	// measures the benefit at high CQ counts.
	DisablePlanSharing bool
	// LateRows chooses what happens to out-of-order stream input:
	// reject (default), drop, or clamp to the high-water mark.
	LateRows LateRowPolicy
	// ParallelCQ > 0 gives each non-shared continuous query a bounded
	// mailbox of that many micro-batches (blocking backpressure on
	// producers) drained by a work-stealing scheduler pool (SchedWorkers),
	// so fan-out to N CQs scales across cores without N goroutines.
	// Per-CQ results are identical to the default synchronous mode; see
	// DESIGN.md §12 for the cross-CQ ordering relaxations this implies.
	// 0 (default) keeps the fully synchronous, deterministic engine.
	ParallelCQ int
	// SchedWorkers sizes the work-stealing pool that executes parallel
	// continuous queries; 0 (default) uses GOMAXPROCS. Only meaningful
	// with ParallelCQ > 0.
	SchedWorkers int
	// Replicate enables the replication hub: every committed WAL batch
	// and stream event gets a monotonic LSN and is retained in a bounded
	// in-memory ring for replicas (see internal/repl and DESIGN.md
	// §replication). Off by default — publishing costs a mutex per commit
	// even with no replicas connected.
	Replicate bool
	// ReplRingSize overrides the replication ring capacity in events;
	// 0 uses repl.DefaultRingSize.
	ReplRingSize int
	// Metrics is the registry engine subsystems (stream runtime, WAL,
	// checkpoints) register their series in. Nil creates a private
	// registry, reachable via Engine.Metrics() — share one registry
	// across engines (or with a server) by setting it here.
	Metrics *MetricsRegistry
	// TraceSampleEvery controls end-to-end event tracing: one in N
	// ingested batches gets a trace ID followed through every hop (see
	// internal/trace). 0 samples at the default rate (1/256), 1 traces
	// every batch, negative disables tracing entirely.
	TraceSampleEvery int
	// SlowFireThreshold force-records (and logs, via Logger) any window
	// fire whose push-to-fire latency exceeds it, regardless of sampling.
	// 0 disables slow-fire detection.
	SlowFireThreshold time.Duration
	// TraceRingSpans caps the completed-span ring; 0 uses the default
	// (4096 spans).
	TraceRingSpans int
	// SysMonInterval enables self-observability: the engine creates the
	// reserved sys.* telemetry streams (sys.metrics, sys.pipelines,
	// sys.slow_fires, sys.repl) and snapshots its metrics registry,
	// pipeline counters, slow-fire events and replication position into
	// them every interval — so a CQ over sys.metrics is a live alerting
	// rule. The streams are ephemeral (no WAL, no replication) and their
	// ingest is excluded from user-facing counters, tracing, and the
	// replication hub, so telemetry never feeds back into itself. 0
	// (default) disables sysmon entirely; a negative interval creates the
	// streams but snapshots only on explicit SysSnapshot calls (tests).
	SysMonInterval time.Duration
	// Logger receives structured engine logs (the slow-fire log). Nil
	// uses slog.Default().
	Logger *slog.Logger
	// Now overrides the wall clock (for now() and tests).
	Now func() time.Time
}

// MetricsRegistry aliases the engine's metrics registry so callers can
// gather snapshots or serve /metrics without importing internal packages.
type MetricsRegistry = metrics.Registry

// Engine is a stream-relational database instance.
type Engine struct {
	// mu serializes writers against checkpoints; readers take RLock.
	mu sync.RWMutex

	cfg     Config
	cat     *catalog.Catalog
	mgr     *txn.Manager
	rt      *stream.Runtime
	planner *plan.Planner
	log     *wal.Log // nil when in-memory
	reg     *metrics.Registry
	tracer  *trace.Tracer // nil when tracing is disabled

	// hub publishes committed batches and stream events to replicas;
	// nil unless Config.Replicate.
	hub *repl.Primary
	// replicaMode rejects user writes while this engine applies a
	// primary's events; prevLate restores the late policy on Promote.
	replicaMode atomic.Bool
	prevLate    stream.LatePolicy

	// checkpointHist observes Checkpoint durations.
	checkpointHist *metrics.Histogram

	// ddlLog records successful DDL statements in order; checkpoints
	// serialize it so objects are recreated in dependency order.
	ddlLog []string
	// derivedPipes maps derived stream name → its always-on pipeline.
	derivedPipes map[string]*stream.Pipeline
	// channelTaps maps channel name → detach function.
	channelTaps map[string]func()

	// sysmon snapshots telemetry into the sys.* streams; nil unless
	// Config.SysMonInterval is non-zero.
	sysmon *sysmon.Monitor

	// sysClock tracks the last arrival timestamp stamped per CQTIME
	// SYSTEM stream, guaranteeing monotonicity.
	sysMu    sync.Mutex
	sysClock map[string]int64

	recovering bool
	closed     bool
}

// Open creates or recovers an engine.
func Open(cfg Config) (*Engine, error) {
	e := &Engine{
		cfg:          cfg,
		cat:          catalog.New(),
		mgr:          txn.NewManager(),
		derivedPipes: make(map[string]*stream.Pipeline),
		channelTaps:  make(map[string]func()),
		sysClock:     make(map[string]int64),
	}
	e.reg = cfg.Metrics
	if e.reg == nil {
		e.reg = metrics.NewRegistry()
	}
	e.rt = stream.NewRuntime(e.mgr, !cfg.DisableSharing)
	e.rt.SetIVM(!cfg.DisableIVM)
	e.rt.SetPlanSharing(!cfg.DisableSharing && !cfg.DisablePlanSharing)
	e.rt.SetMetrics(e.reg)
	e.rt.Late = stream.LatePolicy(cfg.LateRows)
	e.rt.SetParallel(cfg.ParallelCQ)
	e.rt.SetSchedWorkers(cfg.SchedWorkers)
	if cfg.TraceSampleEvery >= 0 {
		e.tracer = trace.New(trace.Options{
			SampleEvery: cfg.TraceSampleEvery,
			SlowFire:    cfg.SlowFireThreshold,
			RingSpans:   cfg.TraceRingSpans,
			Metrics:     e.reg,
			Logger:      cfg.Logger,
		})
		e.rt.SetTracer(e.tracer)
	}
	e.planner = &plan.Planner{Cat: e.cat}
	e.checkpointHist = e.reg.Histogram("streamrel_checkpoint_seconds",
		"duration of checkpoints (heap compaction + file write + WAL truncate)", nil)
	if cfg.Replicate {
		e.initReplication()
	}

	if cfg.Dir != "" {
		start := time.Now()
		if err := e.recover(); err != nil {
			return nil, err
		}
		e.reg.Gauge("streamrel_recovery_replay_seconds",
			"duration of the last checkpoint+WAL replay and CQ resume").
			Set(time.Since(start).Seconds())
		log, err := wal.Open(e.walPath(), wal.Options{Sync: cfg.SyncWAL,
			GroupCommitMaxDelay: cfg.GroupCommitMaxDelay, Metrics: e.reg, Trace: e.tracer})
		if err != nil {
			return nil, err
		}
		e.log = log
	}
	if cfg.SysMonInterval != 0 {
		if err := e.initSysMon(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Metrics returns the engine's metrics registry: every subsystem's
// counters, gauges and latency histograms, gatherable as samples or
// renderable in the Prometheus text format.
func (e *Engine) Metrics() *MetricsRegistry { return e.reg }

// TraceSpan is one completed tracing hop; see internal/trace for the
// span model.
type TraceSpan = trace.Span

// TraceStage names one hop of a batch's journey; TraceSpan.Stage holds
// one of the Stage* constants below.
type TraceStage = trace.Stage

// Span stages, re-exported so embedders can match on TraceSpan.Stage
// without reaching into internal packages.
const (
	StageIngest       = trace.StageIngest
	StageEnqueue      = trace.StageEnqueue
	StagePickup       = trace.StagePickup
	StageWindowFire   = trace.StageWindowFire
	StageCQDeliver    = trace.StageCQDeliver
	StageWALAppend    = trace.StageWALAppend
	StageWALFsync     = trace.StageWALFsync
	StageReplicaApply = trace.StageReplicaApply
)

// Tracer returns the engine's event tracer, or nil when tracing is
// disabled (Config.TraceSampleEvery < 0).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Traces returns the completed spans currently held in the trace ring,
// oldest first. Empty when tracing is disabled.
func (e *Engine) Traces() []TraceSpan { return e.tracer.Snapshot() }

func (e *Engine) walPath() string        { return filepath.Join(e.cfg.Dir, "wal.log") }
func (e *Engine) checkpointPath() string { return filepath.Join(e.cfg.Dir, "checkpoint") }

// Close shuts the engine down: pipeline workers drain and stop (their
// channel writes still reach the WAL), then the log closes. In-flight
// continuous queries stop receiving batches. Close returns any
// asynchronous CQ failure that had not yet surfaced.
func (e *Engine) Close() error {
	// Stop the telemetry ticker before taking the engine lock: its ticks
	// push into the stream runtime under the read lock.
	if e.sysmon != nil {
		e.sysmon.Stop()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	rtErr := e.rt.Close()
	if e.log != nil {
		if err := e.log.Close(); err != nil {
			return err
		}
	}
	return rtErr
}

// Flush blocks until every parallel CQ worker has processed all stream
// input appended before the call, then reports (and clears) any
// asynchronous pipeline failures. In synchronous mode processing happens
// inside Append itself, so Flush only sweeps for failures. Call it before
// reading Active Tables or CQ queues that must reflect all pushed data.
func (e *Engine) Flush() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rt.Quiesce()
}

// Result reports the effect of Exec.
type Result struct {
	// RowsAffected counts rows inserted, updated or deleted.
	RowsAffected int
	// Rows holds output for statements that return data (SHOW, EXPLAIN).
	Rows *Rows
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns Schema
	Data    []Row
}

// Exec parses and executes one statement: DDL, INSERT/UPDATE/DELETE, SHOW
// or EXPLAIN. SELECT goes through Query (snapshot) or Subscribe
// (continuous) instead.
func (e *Engine) Exec(sqlText string) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return e.execStmt(stmt, sqlText)
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error.
func (e *Engine) ExecScript(script string) error {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if _, err := e.execStmt(s.Stmt, s.Text); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) execStmt(stmt sql.Statement, sqlText string) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.CreateTable, *sql.CreateStream, *sql.CreateDerivedStream,
		*sql.CreateView, *sql.CreateChannel, *sql.CreateIndex, *sql.Drop:
		if err := e.writeGate(); err != nil {
			return nil, err
		}
		if n := sysDDLTarget(stmt); n != "" {
			return nil, errSysReserved(n)
		}
		return e.execDDL(stmt, sqlText)
	case *sql.Insert:
		if err := e.writeGate(); err != nil {
			return nil, err
		}
		if isSysName(s.Table) {
			return nil, errSysReserved(s.Table)
		}
		return e.execInsert(s)
	case *sql.Update:
		if err := e.writeGate(); err != nil {
			return nil, err
		}
		return e.execUpdate(s)
	case *sql.Delete:
		if err := e.writeGate(); err != nil {
			return nil, err
		}
		return e.execDelete(s)
	case *sql.Truncate:
		if err := e.writeGate(); err != nil {
			return nil, err
		}
		return e.execTruncate(s)
	case *sql.Show:
		names := e.cat.Names(s.What)
		rows := make([]Row, len(names))
		for i, n := range names {
			rows[i] = Row{types.NewString(n)}
		}
		return &Result{Rows: &Rows{
			Columns: Schema{{Name: s.What, Type: types.TypeString}},
			Data:    rows,
		}}, nil
	case *sql.Explain:
		return e.execExplain(s)
	case *sql.Select:
		return nil, fmt.Errorf("streamrel: use Query for snapshot queries or Subscribe for continuous queries")
	}
	return nil, fmt.Errorf("streamrel: unsupported statement %T", stmt)
}

// Query runs a snapshot query (SQ): a SELECT over tables and views only.
// It executes against a fresh MVCC snapshot and terminates (paper §3.1).
func (e *Engine) Query(sqlText string) (*Rows, error) {
	return e.QueryArgs(sqlText)
}

// QueryArgs runs a snapshot query with $1, $2, … placeholders bound to
// args.
func (e *Engine) QueryArgs(sqlText string, args ...Value) (*Rows, error) {
	stmt, err := e.parseWithArgs(sqlText, args)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("streamrel: Query takes a SELECT")
	}
	return e.querySelect(sel)
}

// ExecArgs executes a DML statement with $1, $2, … placeholders bound to
// args. (DDL does not take parameters.)
func (e *Engine) ExecArgs(sqlText string, args ...Value) (*Result, error) {
	stmt, err := e.parseWithArgs(sqlText, args)
	if err != nil {
		return nil, err
	}
	return e.execStmt(stmt, sqlText)
}

// parseWithArgs parses and binds positional parameters.
func (e *Engine) parseWithArgs(sqlText string, args []Value) (sql.Statement, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return stmt, nil
	}
	return sql.BindParams(stmt, args)
}

func (e *Engine) querySelect(sel *sql.Select) (*Rows, error) {
	p, err := e.planner.BuildSelect(sel)
	if err != nil {
		return nil, err
	}
	if p.Stream != nil {
		return nil, fmt.Errorf("streamrel: query over stream %q never terminates; use Subscribe", p.Stream.Name)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx := e.execCtx()
	rows, err := execDrain(ctx, p, plan.Input{})
	if err != nil {
		return nil, err
	}
	return &Rows{Columns: p.Columns, Data: rows}, nil
}

// AdvanceTime delivers a heartbeat: the stream's clock moves to ts,
// closing any due windows even without new data.
func (e *Engine) AdvanceTime(streamName string, ts time.Time) error {
	if err := e.writeGate(); err != nil {
		return err
	}
	if isSysName(streamName) {
		// sys.* clocks advance only with the monitor's own stamped rows;
		// an external heartbeat could strand them past real arrival time.
		return errSysReserved(streamName)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rt.Advance(streamName, ts.UnixMicro())
}

// Append pushes rows into a stream — the fast ingestion path equivalent to
// INSERT INTO stream VALUES …. Rows must match the stream schema with
// non-decreasing CQTIME; on CQTIME SYSTEM streams the engine stamps
// arrival time itself.
func (e *Engine) Append(streamName string, rows ...Row) error {
	return e.AppendTraced(0, streamName, rows...)
}

// AppendTraced is Append with an externally assigned trace ID: a shard
// router that sampled a batch forwards its trace ID so the shard-side
// hops (enqueue, window fire, WAL fsync, …) join the router's span
// chain. traceID 0 lets the engine's own tracer sample as usual.
func (e *Engine) AppendTraced(traceID uint64, streamName string, rows ...Row) error {
	if err := e.writeGate(); err != nil {
		return err
	}
	if isSysName(streamName) {
		return errSysReserved(streamName)
	}
	if st, ok := e.cat.Stream(streamName); ok && st.SystemTime {
		e.stampSystemTime(st, rows)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if traceID != 0 {
		return e.rt.PushBatchCtx(e.tracer.Adopt(traceID), streamName, rows)
	}
	return e.rt.PushBatch(streamName, rows)
}

// stampSystemTime overwrites the CQTIME column of each row with a
// monotonically non-decreasing arrival timestamp from the engine clock
// ("CQTIME SYSTEM" semantics).
func (e *Engine) stampSystemTime(st *catalog.Stream, rows []Row) {
	if !st.SystemTime {
		return
	}
	now := time.Now
	if e.cfg.Now != nil {
		now = e.cfg.Now
	}
	e.sysMu.Lock()
	defer e.sysMu.Unlock()
	for i := range rows {
		ts := now().UnixMicro()
		if last := e.sysClock[st.Name]; ts < last {
			ts = last
		}
		e.sysClock[st.Name] = ts
		rows[i] = rows[i].Clone()
		rows[i][st.CQTimeCol] = types.NewTimestampMicros(ts)
	}
}

// Checkpoint compacts heaps, writes a checkpoint file, and truncates the
// WAL. No-op for in-memory engines.
func (e *Engine) Checkpoint() error {
	if e.log == nil {
		return nil
	}
	start := time.Now()
	if err := e.checkpoint(); err != nil {
		return err
	}
	e.checkpointHist.ObserveSince(start)
	return nil
}

// MustTimestamp parses a timestamp literal or panics; a convenience for
// examples and tests.
func MustTimestamp(s string) time.Time {
	d, err := types.ParseTimestamp(s)
	if err != nil {
		panic(err)
	}
	return d.Time()
}

// usToTime converts microseconds since the epoch to a UTC time.
func usToTime(us int64) time.Time { return time.UnixMicro(us).UTC() }
