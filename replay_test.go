package streamrel

import (
	"fmt"
	"testing"
	"time"
)

// TestReplayArchiveThroughNewCQ: the paper notes that when analysis finds
// a new metric of interest, it is monitored "from then on" — but with a
// raw archive, history can also be replayed through the new continuous
// query: INSERT INTO stream SELECT … FROM archive ORDER BY ts.
func TestReplayArchiveThroughNewCQ(t *testing.T) {
	e := openMem(t)
	err := e.ExecScript(`
		CREATE TABLE raw (url varchar, atime timestamp, client_ip varchar);
		CREATE STREAM replayed (url varchar, atime timestamp CQTIME USER, client_ip varchar);
	`)
	if err != nil {
		t.Fatal(err)
	}
	// A pre-existing archive of events.
	base := MustTimestamp("2009-01-04 00:00:00")
	var rows []Row
	for i := 0; i < 300; i++ {
		rows = append(rows, Row{
			String(fmt.Sprintf("/p%d", i%3)),
			Timestamp(base.Add(time.Duration(i) * time.Second)),
			String("ip"),
		})
	}
	if err := e.BulkInsert("raw", rows); err != nil {
		t.Fatal(err)
	}

	// The "new metric" defined after the fact.
	cq, err := e.Subscribe(`SELECT url, count(*) FROM replayed <ADVANCE '1 minute'> GROUP BY url ORDER BY url`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()

	// Replay history in timestamp order through the stream.
	res, err := e.Exec(`INSERT INTO replayed SELECT url, atime, client_ip FROM raw ORDER BY atime`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 300 {
		t.Fatalf("replayed %d rows", res.RowsAffected)
	}
	e.AdvanceTime("replayed", base.Add(6*time.Minute))

	windows := 0
	var total int64
	for {
		b, ok := cq.TryNext()
		if !ok {
			break
		}
		windows++
		for _, r := range b.Rows {
			total += r[1].Int()
		}
	}
	// Five populated windows plus one empty window at the final heartbeat.
	if windows != 6 || total != 300 {
		t.Fatalf("replay produced %d windows, %d total events", windows, total)
	}
}

// TestDropStreamWithLiveSubscriber: dropping a stream detaches its CQs
// without panics; closing the orphaned CQ afterwards is safe.
func TestDropStreamWithLiveSubscriber(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `DROP STREAM s`)
	// Pushes now fail cleanly.
	if err := e.Append("s", Row{Int(1), Timestamp(MustTimestamp("2009-01-04 00:00:01"))}); err == nil {
		t.Fatal("append to dropped stream should fail")
	}
	cq.Close() // must not panic
	// The name is free for reuse with a different schema.
	mustExec(t, e, `CREATE STREAM s (x varchar, at timestamp CQTIME USER)`)
	if err := e.Append("s", Row{String("a"), Timestamp(MustTimestamp("2009-01-04 00:00:01"))}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryUnderLoad: a realistic crash — tens of thousands of events
// flowing through channels plus direct table DML — recovers to a state
// where the Active Table exactly matches a recomputation from the raw
// archive.
func TestRecoveryUnderLoad(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	err = e.ExecScript(`
		CREATE STREAM s (k bigint, at timestamp CQTIME USER);
		CREATE TABLE raw (k bigint, at timestamp);
		CREATE CHANNEL raw_ch FROM s INTO raw;
		CREATE STREAM counts AS
			SELECT k, count(*) AS n, cq_close(*) AS stime
			FROM s <ADVANCE '1 minute'> GROUP BY k;
		CREATE TABLE counts_t (k bigint, n bigint, stime timestamp);
		CREATE CHANNEL counts_ch FROM counts INTO counts_t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	base := MustTimestamp("2009-01-04 00:00:00").UnixMicro()
	var rows []Row
	for i := int64(0); i < 12_000; i++ {
		rows = append(rows, Row{Int(i % 7), Timestamp(usToTime(base + i*25_000))})
	}
	if err := e.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	lastTS := base + 12_000*25_000
	e.AdvanceTime("s", usToTime(lastTS+60_000_000))
	// Some unrelated table churn for the WAL.
	mustExec(t, e, `CREATE TABLE misc (a bigint)`)
	for i := 0; i < 100; i++ {
		mustExec(t, e, `INSERT INTO misc VALUES (1)`)
	}
	mustExec(t, e, `DELETE FROM misc WHERE a = 1`)
	e.Close()

	e2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// The Active Table must exactly match recomputing per-minute counts
	// from the raw archive (for fully closed windows).
	fromActive := mustQuery(t, e2, `SELECT k, sum(n) FROM counts_t GROUP BY k ORDER BY k`)
	// Scalar subqueries are unsupported; compute the cutoff client-side.
	cut := mustQuery(t, e2, `SELECT max(stime) FROM counts_t`).Data[0][0]
	fromRaw2, err := e2.QueryArgs(`
		SELECT k, count(*) FROM raw WHERE at < $1 GROUP BY k ORDER BY k`,
		Timestamp(cut.Time()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromActive.Data) != len(fromRaw2.Data) {
		t.Fatalf("group counts differ: %d vs %d", len(fromActive.Data), len(fromRaw2.Data))
	}
	for i := range fromActive.Data {
		if fromActive.Data[i].String() != fromRaw2.Data[i].String() {
			t.Fatalf("row %d: active %s vs raw %s",
				i, fromActive.Data[i], fromRaw2.Data[i])
		}
	}
	expectData(t, mustQuery(t, e2, `SELECT count(*) FROM misc`), "0")
}
