// Security: the paper's §4 case study in miniature. The same
// network-security report is produced two ways over identical firewall
// logs — the traditional store-first-query-later way, and continuously
// with the results archived into an Active Table — and the report
// latencies are compared. The paper describes converting such a batch
// query ("over 20 minutes") to a continuous one ("milliseconds"): a
// 5-orders-of-magnitude speedup at production volume.
//
//	go run ./examples/security
package main

import (
	"fmt"
	"log"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

const events = 300_000

func main() {
	gen := func() *workload.SecurityEvents {
		return workload.NewSecurityEvents(workload.SecurityConfig{
			Seed: 99, EventsPerSec: 500,
			Start: streamrel.MustTimestamp("2009-01-04 00:00:00"),
		})
	}

	// ---------------- store-first-query-later ----------------
	batch, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer batch.Close()
	if _, err := batch.Exec(`CREATE TABLE sec_events (
		etime timestamp, src_ip varchar, dst_port bigint, action varchar, bytes bigint)`); err != nil {
		log.Fatal(err)
	}
	if err := batch.BulkInsert("sec_events", gen().Take(events)); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	batchRows, err := batch.Query(`
		SELECT src_ip, count(*) AS denials
		FROM sec_events
		WHERE action = 'deny'
		GROUP BY src_ip
		ORDER BY denials DESC, src_ip
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	batchLatency := time.Since(start)

	// ---------------- continuous analytics ----------------
	cont, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cont.Close()
	err = cont.ExecScript(`
		CREATE STREAM sec_stream (
			etime timestamp CQTIME USER, src_ip varchar, dst_port bigint,
			action varchar, bytes bigint);

		-- The "jellybean query": counted as the beans go into the jar.
		CREATE STREAM deny_now AS
			SELECT src_ip, count(*) AS denials, cq_close(*)
			FROM sec_stream <ADVANCE '1 minute'>
			WHERE action = 'deny'
			GROUP BY src_ip;

		CREATE TABLE deny_archive (src_ip varchar, denials bigint, stime timestamp);
		CREATE CHANNEL deny_ch FROM deny_now INTO deny_archive APPEND;
	`)
	if err != nil {
		log.Fatal(err)
	}
	g := gen()
	if err := cont.Append("sec_stream", g.Take(events)...); err != nil {
		log.Fatal(err)
	}
	cont.AdvanceTime("sec_stream", time.UnixMicro(g.Now()).UTC().Add(time.Minute))
	start = time.Now()
	contRows, err := cont.Query(`
		SELECT src_ip, sum(denials) AS denials
		FROM deny_archive
		GROUP BY src_ip
		ORDER BY denials DESC, src_ip
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	contLatency := time.Since(start)

	fmt.Printf("top denied sources over %d firewall events:\n\n", events)
	fmt.Println("src_ip | denials (both architectures agree)")
	for i := range batchRows.Data {
		fmt.Printf("%s    <->    %s\n", batchRows.Data[i], contRows.Data[i])
	}
	fmt.Printf("\nstore-first report latency:  %v\n", batchLatency.Round(time.Microsecond))
	fmt.Printf("active-table report latency: %v\n", contLatency.Round(time.Microsecond))
	fmt.Printf("speedup: %.0f× (grows with volume — see srbench E2)\n",
		float64(batchLatency)/float64(contLatency))
}
