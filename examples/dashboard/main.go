// Dashboard: an ad-network monitoring scenario showing the breadth of a
// stream-relational system (paper §6): several continuous queries with the
// same shape share one slice aggregation ("Jellybean processing"), a CQ
// enriches the fact stream with a dimension table under window
// consistency, and a REPLACE channel keeps a "latest minute" Active Table
// that a dashboard would poll with plain SQL.
//
//	go run ./examples/dashboard
package main

import (
	"fmt"
	"log"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

func main() {
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	err = eng.ExecScript(`
		CREATE TABLE campaigns (id bigint, advertiser varchar, daily_budget bigint);
		CREATE STREAM imp_stream (
			itime timestamp CQTIME USER, campaign bigint, publisher bigint, cost bigint);

		-- REPLACE channel: the Active Table always holds exactly the
		-- latest minute's totals.
		CREATE STREAM rev_now AS
			SELECT campaign, sum(cost) AS revenue, count(*) AS impressions, cq_close(*)
			FROM imp_stream <ADVANCE '1 minute'>
			GROUP BY campaign;
		CREATE TABLE rev_latest (campaign bigint, revenue bigint, impressions bigint, stime timestamp);
		CREATE CHANNEL rev_ch FROM rev_now INTO rev_latest REPLACE;
	`)
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		if _, err := eng.Exec(fmt.Sprintf(
			`INSERT INTO campaigns VALUES (%d, 'advertiser-%d', %d)`, i, i%8, 500_000+i*1000)); err != nil {
			log.Fatal(err)
		}
	}

	// Three dashboard widgets = three CQs. The first two have identical
	// filter/grouping/aggregates and ADVANCE, so the engine computes their
	// slices once and shares them.
	spend5m, err := eng.Subscribe(`
		SELECT campaign, sum(cost) FROM imp_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
		GROUP BY campaign`)
	if err != nil {
		log.Fatal(err)
	}
	defer spend5m.Close()
	spend15m, err := eng.Subscribe(`
		SELECT campaign, sum(cost) FROM imp_stream <VISIBLE '15 minutes' ADVANCE '1 minute'>
		GROUP BY campaign`)
	if err != nil {
		log.Fatal(err)
	}
	defer spend15m.Close()
	byAdvertiser, err := eng.Subscribe(`
		SELECT c.advertiser, sum(i.cost) AS spend
		FROM imp_stream <ADVANCE '1 minute'> i
		JOIN campaigns c ON i.campaign = c.id
		GROUP BY c.advertiser
		ORDER BY spend DESC
		LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	defer byAdvertiser.Close()

	fmt.Printf("shared aggregation: spend5m=%v spend15m=%v (same slices!)  join CQ shared=%v\n",
		spend5m.SharedAggregation, spend15m.SharedAggregation, byAdvertiser.SharedAggregation)

	// Stream 20 minutes of impressions.
	gen := workload.NewImpressions(workload.ImpressionConfig{
		Seed: 3, Campaigns: 40, EventsPerSec: 300,
		Start: streamrel.MustTimestamp("2009-01-04 12:00:00"),
	})
	if err := eng.Append("imp_stream", gen.Take(360_000)...); err != nil {
		log.Fatal(err)
	}
	eng.AdvanceTime("imp_stream", time.UnixMicro(gen.Now()).UTC().Add(time.Minute))

	stats := eng.Stats()
	fmt.Printf("runtime: %d pipelines, %d shared slice aggregations, %d windows fired\n\n",
		stats.Pipelines, stats.SharedAggs, stats.WindowsFired)

	// Dashboard poll: the REPLACE Active Table holds the latest minute.
	rows, err := eng.Query(`
		SELECT campaign, revenue, impressions FROM rev_latest
		ORDER BY revenue DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== latest minute (REPLACE active table) ==")
	fmt.Println("campaign | revenue | impressions")
	for _, r := range rows.Data {
		fmt.Println(r)
	}

	// The advertiser leaderboard from the enrichment join's last window.
	var last streamrel.Batch
	for {
		b, ok := byAdvertiser.TryNext()
		if !ok {
			break
		}
		last = b
	}
	fmt.Println("\n== top advertisers, final window (stream ⋈ dimension) ==")
	for _, r := range last.Rows {
		fmt.Printf("%s: $%.2f\n", r[0], float64(r[1].Int())/1e6)
	}
}
