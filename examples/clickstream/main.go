// Clickstream: the paper's Examples 3–5 end to end — a derived stream
// (CREATE STREAM … AS), a channel archiving it into an Active Table, ad
// hoc SQL over the Active Table, and the Example 5 stream-table join that
// compares current metrics with historical ones.
//
//	go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

func main() {
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Examples 1, 3, 4: stream → always-on derived stream → channel into
	// an ordinary SQL table, which the channel keeps continuously updated
	// (an Active Table).
	err = eng.ExecScript(`
		CREATE STREAM url_stream (
			url varchar(1024), atime timestamp CQTIME USER, client_ip varchar(50));

		CREATE STREAM urls_now AS
			SELECT url, count(*) AS scnt, cq_close(*)
			FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
			GROUP BY url;

		CREATE TABLE urls_archive (url varchar(1024), scnt bigint, stime timestamp);
		CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND;
		CREATE INDEX urls_archive_stime ON urls_archive (stime);
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Example 5: a continuous query joining the stream's current window
	// against the Active Table's past — "this 5-minute total vs the total
	// ten minutes ago".
	histo, err := eng.Subscribe(`
		SELECT c.scnt AS current_total, h.scnt AS past, c.stime
		FROM (SELECT sum(scnt) AS scnt, cq_close(*) AS stime
		      FROM urls_now <SLICES 1 WINDOWS>) c,
		     urls_archive h
		WHERE c.stime - '10 minutes'::interval = h.stime
		  AND h.url = '/page/0000'`)
	if err != nil {
		log.Fatal(err)
	}
	defer histo.Close()

	// Stream 30 minutes of traffic.
	gen := workload.NewClickstream(workload.ClickConfig{
		Seed: 7, EventsPerSec: 150,
		Start: streamrel.MustTimestamp("2009-01-04 09:00:00"),
	})
	if err := eng.Append("url_stream", gen.Take(270_000)...); err != nil {
		log.Fatal(err)
	}
	eng.AdvanceTime("url_stream", time.UnixMicro(gen.Now()).UTC().Add(time.Minute))

	// The Active Table is a full SQL table: report over it with plain SQL.
	fmt.Println("== ad hoc SQL over the Active Table ==")
	rows, err := eng.Query(`
		SELECT url, max(scnt) AS peak_5min
		FROM urls_archive
		GROUP BY url
		ORDER BY peak_5min DESC
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("url | peak 5-minute hits")
	for _, r := range rows.Data {
		fmt.Printf("%s | %s\n", r[0], r[1])
	}

	fmt.Println("\n== Example 5: current vs 10-minutes-ago (hottest page) ==")
	n := 0
	for _, b := range histo.Drain() {
		for _, r := range b.Rows {
			fmt.Printf("at %s: 5-min site total now %s; page /page/0000 had %s ten minutes ago\n",
				r[2].Time().Format("15:04"), r[0], r[1])
			n++
			if n >= 8 {
				return
			}
		}
	}
}
