// Quickstart: the paper's Examples 1 and 2 — declare a stream and run a
// continuous "top ten URLs over the previous five minutes, every minute"
// query while events arrive.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

func main() {
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Example 1: a stream is an ordered unbounded relation with a CQTIME
	// column.
	_, err = eng.Exec(`CREATE STREAM url_stream (
		url       varchar(1024),
		atime     timestamp CQTIME USER,
		client_ip varchar(50))`)
	if err != nil {
		log.Fatal(err)
	}

	// Example 2: the window clause turns a plain SQL query into a
	// continuous query. Each minute it reports the top ten URLs of the
	// previous five minutes.
	cq, err := eng.Subscribe(`
		SELECT url, count(*) url_count
		FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
		GROUP BY url
		ORDER BY url_count DESC
		LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	defer cq.Close()

	// Feed ten minutes of synthetic clickstream (Zipf-skewed pages).
	gen := workload.NewClickstream(workload.ClickConfig{
		Seed:         42,
		EventsPerSec: 200,
		Start:        streamrel.MustTimestamp("2009-01-04 09:00:00"),
	})
	const total = 120_000 // ≈ 10 minutes at 200 events/s
	if err := eng.Append("url_stream", gen.Take(total)...); err != nil {
		log.Fatal(err)
	}
	// A heartbeat closes the final windows.
	if err := eng.AdvanceTime("url_stream", time.UnixMicro(gen.Now()).UTC().Add(time.Minute)); err != nil {
		log.Fatal(err)
	}

	// Results were computed incrementally as the data streamed in — before
	// any of it was stored. Print each window's leaderboard.
	for {
		batch, ok := cq.TryNext()
		if !ok {
			break
		}
		fmt.Printf("\n== top URLs in the 5 minutes before %s ==\n",
			batch.Close.Format("15:04:05"))
		for i, row := range batch.Rows {
			fmt.Printf("%2d. %-14s %s hits\n", i+1, row[0], row[1])
		}
	}
}
