package streamrel

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openDir(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(Config{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRecoveryTablesAndData(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir)
	mustExec(t, e, `CREATE TABLE t (a bigint, b varchar)`)
	mustExec(t, e, `INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	mustExec(t, e, `DELETE FROM t WHERE a = 1`)
	mustExec(t, e, `UPDATE t SET b = 'z' WHERE a = 2`)
	e.Close()

	e2 := openDir(t, dir)
	defer e2.Close()
	expectData(t, mustQuery(t, e2, `SELECT a, b FROM t`), "2|z")
}

func TestRecoveryDDLObjects(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir)
	err := e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);
		CREATE STREAM d AS SELECT sum(v), cq_close(*) FROM s <ADVANCE '1 minute'>;
		CREATE TABLE arch (total bigint, stime timestamp);
		CREATE CHANNEL ch FROM d INTO arch;
		CREATE VIEW v_arch AS SELECT total FROM arch;
		CREATE INDEX arch_stime ON arch (stime);
	`)
	if err != nil {
		t.Fatal(err)
	}
	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(5), Timestamp(base.Add(time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	e.Close()

	e2 := openDir(t, dir)
	defer e2.Close()
	// All objects exist after recovery.
	expectData(t, mustExec(t, e2, `SHOW STREAMS`).Rows, "d", "s")
	expectData(t, mustExec(t, e2, `SHOW CHANNELS`).Rows, "ch")
	expectData(t, mustExec(t, e2, `SHOW VIEWS`).Rows, "v_arch")
	// Archived window survived.
	expectData(t, mustQuery(t, e2, `SELECT total FROM arch`), "5")
	// The index works after recovery.
	expectData(t, mustQuery(t, e2, `SELECT total FROM arch WHERE stime = timestamp '2009-01-04 00:01:00'`), "5")
	// The CQ keeps running from where it left off.
	e2.Append("s", Row{Int(7), Timestamp(base.Add(61 * time.Second))})
	e2.AdvanceTime("s", base.Add(2*time.Minute))
	expectData(t, mustQuery(t, e2, `SELECT total FROM arch ORDER BY stime`), "5", "7")
}

// TestRecoveryResumesFromActiveTable checks the paper-§4 mechanism: after
// restart the CQ resumes from the Active Table's newest window instead of
// re-emitting archived windows.
func TestRecoveryResumesFromActiveTable(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir)
	e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);
		CREATE STREAM d AS SELECT count(*), cq_close(*) FROM s <ADVANCE '1 minute'>;
		CREATE TABLE arch (n bigint, stime timestamp);
		CREATE CHANNEL ch FROM d INTO arch;
	`)
	base := MustTimestamp("2009-01-04 00:00:00")
	for m := 0; m < 3; m++ {
		e.Append("s", Row{Int(1), Timestamp(base.Add(time.Duration(m)*time.Minute + time.Second))})
	}
	e.AdvanceTime("s", base.Add(3*time.Minute))
	expectData(t, mustQuery(t, e, `SELECT count(*) FROM arch`), "3")
	e.Close()

	e2 := openDir(t, dir)
	defer e2.Close()
	// Heartbeats covering already-archived boundaries must not duplicate.
	e2.AdvanceTime("s", base.Add(3*time.Minute))
	expectData(t, mustQuery(t, e2, `SELECT count(*) FROM arch`), "3")
	// The next genuine window appends exactly one row.
	e2.Append("s", Row{Int(1), Timestamp(base.Add(3*time.Minute + time.Second))})
	e2.AdvanceTime("s", base.Add(4*time.Minute))
	expectData(t, mustQuery(t, e2, `SELECT count(*) FROM arch`), "4")
	expectData(t, mustQuery(t, e2, `SELECT n, stime FROM arch ORDER BY stime DESC LIMIT 1`),
		"1|2009-01-04 00:04:00.000000")
}

func TestCheckpointAndWALTruncate(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir)
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	for i := 0; i < 50; i++ {
		mustExec(t, e, `INSERT INTO t VALUES (1)`)
	}
	mustExec(t, e, `DELETE FROM t WHERE a = 1`)
	mustExec(t, e, `INSERT INTO t VALUES (42)`)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL is now empty; more writes follow the checkpoint.
	info, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil || info.Size() != 0 {
		t.Fatalf("wal after checkpoint: %v size=%d", err, info.Size())
	}
	mustExec(t, e, `INSERT INTO t VALUES (43)`)
	mustExec(t, e, `DELETE FROM t WHERE a = 42`)
	e.Close()

	e2 := openDir(t, dir)
	defer e2.Close()
	expectData(t, mustQuery(t, e2, `SELECT a FROM t ORDER BY a`), "43")
}

func TestCheckpointWithIndexes(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir)
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	mustExec(t, e, `CREATE INDEX ix ON t (a)`)
	for i := 0; i < 20; i++ {
		mustExec(t, e, `INSERT INTO t VALUES (7)`)
	}
	mustExec(t, e, `DELETE FROM t WHERE a = 7`)
	mustExec(t, e, `INSERT INTO t VALUES (9)`)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint rowids must align for replayed deletes.
	mustExec(t, e, `DELETE FROM t WHERE a = 9`)
	mustExec(t, e, `INSERT INTO t VALUES (11)`)
	e.Close()

	e2 := openDir(t, dir)
	defer e2.Close()
	expectData(t, mustQuery(t, e2, `SELECT a FROM t WHERE a >= 0 ORDER BY a`), "11")
}

// TestTornWALTailIgnored simulates a crash mid-commit: the torn trailing
// batch is discarded and everything before it survives.
func TestTornWALTailIgnored(t *testing.T) {
	dir := t.TempDir()
	e := openDir(t, dir)
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	mustExec(t, e, `INSERT INTO t VALUES (1)`)
	mustExec(t, e, `INSERT INTO t VALUES (2)`)
	e.Close()

	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := openDir(t, dir)
	defer e2.Close()
	expectData(t, mustQuery(t, e2, `SELECT a FROM t`), "1")
}

func TestFreshDirIsEmpty(t *testing.T) {
	e := openDir(t, t.TempDir())
	defer e.Close()
	expectData(t, mustExec(t, e, `SHOW TABLES`).Rows)
}
