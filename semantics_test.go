package streamrel

import (
	"testing"
	"time"
)

// TestSystemCQTime: CQTIME SYSTEM streams ignore user-supplied timestamps
// and stamp arrival time, monotonically.
func TestSystemCQTime(t *testing.T) {
	clock := MustTimestamp("2009-01-04 12:00:00")
	e, err := Open(Config{Now: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME SYSTEM)`)
	cq, err := e.Subscribe(`SELECT v, at FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()

	// The user-supplied timestamp (deliberately ancient) must be replaced
	// by the engine clock.
	if err := e.Append("s", Row{Int(1), Timestamp(MustTimestamp("1999-01-01 00:00:00"))}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(30 * time.Second)
	if err := e.Append("s", Row{Int(2), Null}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Minute)
	if err := e.AdvanceTime("s", clock); err != nil {
		t.Fatal(err)
	}
	b, ok := cq.TryNext()
	if !ok || len(b.Rows) != 2 {
		t.Fatalf("batch: %+v ok=%v", b, ok)
	}
	if got := b.Rows[0][1].Time(); got.Format("2006-01-02 15:04:05") != "2009-01-04 12:00:00" {
		t.Fatalf("row 0 stamped %v", got)
	}
	if got := b.Rows[1][1].Time(); got.Format("15:04:05") != "12:00:30" {
		t.Fatalf("row 1 stamped %v", got)
	}
}

// TestSystemCQTimeMonotonic: a clock that goes backwards must not produce
// out-of-order stamps.
func TestSystemCQTimeMonotonic(t *testing.T) {
	clock := MustTimestamp("2009-01-04 12:00:00")
	e, err := Open(Config{Now: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME SYSTEM)`)
	if err := e.Append("s", Row{Int(1), Null}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(-time.Hour) // NTP step backwards
	if err := e.Append("s", Row{Int(2), Null}); err != nil {
		t.Fatalf("monotonic stamping should absorb clock regressions: %v", err)
	}
}

// TestLateRowPolicies exercises the three disorder policies.
func TestLateRowPolicies(t *testing.T) {
	base := MustTimestamp("2009-01-04 00:00:00")
	late := Row{Int(99), Timestamp(base.Add(-time.Minute))}
	onTime := Row{Int(1), Timestamp(base)}

	// Reject (default): error.
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	if err := e.Append("s", onTime); err != nil {
		t.Fatal(err)
	}
	if err := e.Append("s", late); err == nil {
		t.Fatal("reject policy should error")
	}

	// Drop: silently discarded, counted.
	eDrop, err := Open(Config{LateRows: LateDrop})
	if err != nil {
		t.Fatal(err)
	}
	defer eDrop.Close()
	mustExec(t, eDrop, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, _ := eDrop.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	defer cq.Close()
	if err := eDrop.Append("s", onTime); err != nil {
		t.Fatal(err)
	}
	if err := eDrop.Append("s", late); err != nil {
		t.Fatal(err)
	}
	eDrop.AdvanceTime("s", base.Add(time.Minute))
	b, _ := cq.TryNext()
	if b.Rows[0][0].Int() != 1 {
		t.Fatalf("dropped row was counted: %v", b.Rows)
	}
	if eDrop.Stats().LateDropped != 1 {
		t.Fatalf("LateDropped = %d", eDrop.Stats().LateDropped)
	}

	// Clamp: the row lands in the current window.
	eClamp, err := Open(Config{LateRows: LateClamp})
	if err != nil {
		t.Fatal(err)
	}
	defer eClamp.Close()
	mustExec(t, eClamp, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq2, _ := eClamp.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	defer cq2.Close()
	if err := eClamp.Append("s", onTime); err != nil {
		t.Fatal(err)
	}
	if err := eClamp.Append("s", late); err != nil {
		t.Fatal(err)
	}
	eClamp.AdvanceTime("s", base.Add(time.Minute))
	b2, _ := cq2.TryNext()
	if b2.Rows[0][0].Int() != 2 {
		t.Fatalf("clamped row missing: %v", b2.Rows)
	}
}
