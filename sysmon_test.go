package streamrel

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streamrel/internal/metrics"
)

// sysClockAt returns a Config.Now closure backed by a settable fake
// clock, so tests advance CQTIME SYSTEM arrival time deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(start time.Time) *fakeClock { return &fakeClock{t: start} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// TestSysMetricsCQMatchesScrape is the acceptance check for the sysmon
// tentpole: a continuous query over sys.metrics fires with values that
// match a simultaneous registry scrape — the engine's own CQ machinery
// is the alerting rule.
func TestSysMetricsCQMatchesScrape(t *testing.T) {
	clock := newFakeClock(MustTimestamp("2009-01-04 00:00:01"))
	e, err := Open(Config{SysMonInterval: -1, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	mustExec(t, e, `CREATE STREAM u (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT name, max(value) AS v FROM sys.metrics <ADVANCE '5 seconds'> GROUP BY name`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()

	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 10; i++ {
		if err := e.Append("u", Row{Int(int64(i)), Timestamp(base)}); err != nil {
			t.Fatal(err)
		}
	}

	// Scrape and snapshot back to back: Tick gathers the registry before
	// pushing, so both observe the same counter states.
	scrape := map[string]float64{}
	for _, s := range e.Metrics().Gather() {
		if s.Kind != metrics.KindHistogram {
			scrape[s.Name] = s.Value
		}
	}
	if err := e.SysSnapshot(); err != nil {
		t.Fatal(err)
	}
	// A second snapshot past the 5s boundary closes the first window.
	clock.Set(MustTimestamp("2009-01-04 00:00:07"))
	if err := e.SysSnapshot(); err != nil {
		t.Fatal(err)
	}

	b, ok := cq.Next()
	if !ok {
		t.Fatal("sys.metrics CQ closed without a batch")
	}
	got := map[string]float64{}
	for _, r := range b.Rows {
		got[r[0].Str()] = r[1].Float()
	}
	if len(got) == 0 {
		t.Fatal("window fired with no rows")
	}
	// Every non-histogram series with a single label set must round-trip
	// exactly; spot-check the load-bearing ones.
	for _, name := range []string{
		"streamrel_stream_rows_total", // 10 rows into u
		"streamrel_stream_sources",
		"streamrel_stream_pipelines",
	} {
		want, inScrape := scrape[name]
		cqv, inCQ := got[name]
		if !inScrape || !inCQ {
			t.Fatalf("%s: missing from scrape (%v) or CQ batch (%v)", name, inScrape, inCQ)
		}
		if cqv != want {
			t.Errorf("%s: CQ max(value)=%v, scrape=%v", name, cqv, want)
		}
	}
	if got["streamrel_stream_rows_total"] != 10 {
		t.Errorf("streamrel_stream_rows_total through the CQ = %v, want 10", got["streamrel_stream_rows_total"])
	}
}

// TestSysmonNoFeedbackLoop is the anti-amplification regression: rows
// the monitor pushes into sys.* streams must not count in the
// user-facing ingest counters it snapshots, and successive snapshots
// must converge to a constant row count per tick instead of growing.
func TestSysmonNoFeedbackLoop(t *testing.T) {
	clock := newFakeClock(MustTimestamp("2009-01-04 00:00:00"))
	e, err := Open(Config{SysMonInterval: -1, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sysmonRows := func() float64 {
		total := 0.0
		for _, s := range e.Metrics().Gather() {
			switch s.Name {
			case "streamrel_stream_rows_total":
				for _, l := range s.Labels {
					if l.Key == "stream" && strings.HasPrefix(l.Value, "sys.") {
						t.Fatalf("sys stream %q counted in streamrel_stream_rows_total — telemetry feeds back into the signal it reports", l.Value)
					}
				}
			case "streamrel_sysmon_rows_total":
				total += s.Value
			}
		}
		return total
	}

	var deltas []float64
	prev := sysmonRows()
	for i := 0; i < 8; i++ {
		if err := e.SysSnapshot(); err != nil {
			t.Fatal(err)
		}
		cur := sysmonRows()
		deltas = append(deltas, cur-prev)
		prev = cur
	}
	if prev == 0 {
		t.Fatal("streamrel_sysmon_rows_total never moved; internal sources are not counted at all")
	}
	// The registry stops gaining series after the first snapshot, so the
	// per-tick row count must flatline: converging, not self-amplifying.
	for i := 2; i < len(deltas); i++ {
		if deltas[i] != deltas[1] {
			t.Fatalf("snapshot row counts did not converge: deltas=%v", deltas)
		}
	}
}

// TestSysNamespaceReserved locks down the sys.* namespace: user DDL, DML
// and time advancement are rejected, while reading (Subscribe, CHANNEL
// FROM) is allowed.
func TestSysNamespaceReserved(t *testing.T) {
	e, err := Open(Config{SysMonInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for _, stmt := range []string{
		`CREATE TABLE sys.notes (a bigint)`,
		`CREATE STREAM sys.custom (v bigint, at timestamp CQTIME USER)`,
		`CREATE STREAM sys.derived AS SELECT count(*) FROM sys.metrics <ADVANCE '1 minute'>`,
		`CREATE VIEW sys.v AS SELECT 1`,
		`DROP STREAM sys.metrics`,
		`INSERT INTO sys.metrics VALUES (now(), 'x', '', 'gauge', 1.0)`,
	} {
		if _, err := e.Exec(stmt); err == nil || !strings.Contains(err.Error(), "reserved sys namespace") {
			t.Errorf("%s: want reserved-namespace error, got %v", stmt, err)
		}
	}
	if err := e.Append("sys.metrics", Row{Timestamp(time.Now()), String("x"), String(""), String("gauge"), Float(1)}); err == nil {
		t.Error("Append to sys.metrics should be rejected")
	}
	if err := e.AdvanceTime("sys.metrics", time.Now()); err == nil {
		t.Error("AdvanceTime on sys.metrics should be rejected")
	}

	// Reading out is the supported direction: archive telemetry into a
	// user table through a channel.
	mustExec(t, e, `CREATE TABLE metrics_archive (n bigint, stime timestamp)`)
	mustExec(t, e, `CREATE STREAM agg AS SELECT count(*) AS n, cq_close(*) FROM sys.metrics <ADVANCE '1 minute'>`)
	mustExec(t, e, `CREATE CHANNEL arch FROM agg INTO metrics_archive APPEND`)
	if _, err := e.Subscribe(`SELECT count(*) FROM sys.pipelines <ADVANCE '1 minute'>`); err != nil {
		t.Errorf("Subscribe over sys.pipelines should work: %v", err)
	}

	// Channels must not write INTO the namespace.
	if _, err := e.Exec(`CREATE CHANNEL bad FROM agg INTO sys.metrics APPEND`); err == nil {
		t.Error("CREATE CHANNEL INTO sys.* should be rejected")
	}
}

// TestSysmonDisabledByDefault: a default engine has no sys.* streams and
// SysSnapshot reports the monitor is off.
func TestSysmonDisabledByDefault(t *testing.T) {
	e := openMem(t)
	if err := e.SysSnapshot(); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("want disabled error, got %v", err)
	}
	if _, err := e.Subscribe(`SELECT count(*) FROM sys.metrics <ADVANCE '1 minute'>`); err == nil {
		t.Fatal("sys.metrics should not exist when sysmon is off")
	}
}

// TestSysStreamsEphemeral: sys.* rows never reach the WAL, so a durable
// engine restarts with empty telemetry streams but intact user data.
func TestSysStreamsEphemeral(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock(MustTimestamp("2009-01-04 00:00:00"))
	e, err := Open(Config{Dir: dir, SysMonInterval: -1, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	mustExec(t, e, `INSERT INTO t VALUES (1)`)
	for i := 0; i < 3; i++ {
		if err := e.SysSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	e2, err := Open(Config{Dir: dir, SysMonInterval: -1, Now: clock.Now})
	if err != nil {
		t.Fatalf("reopen after sysmon snapshots: %v", err)
	}
	defer e2.Close()
	rows, err := e2.Query(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].Int(); n != 1 {
		t.Fatalf("user data lost across restart: count=%d", n)
	}
	// The streams exist again (recreated, not recovered) and accept
	// snapshots immediately.
	if err := e2.SysSnapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeAlert: a CQ over sys.metrics delivers window results to a
// webhook — the paper's "monitoring is just another continuous query",
// with the sink as the pager.
func TestSubscribeAlert(t *testing.T) {
	type payload struct {
		Rule    string   `json:"rule"`
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	got := make(chan payload, 4)
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var p payload
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			t.Errorf("webhook payload: %v", err)
		}
		got <- p
	}))
	defer ws.Close()

	clock := newFakeClock(MustTimestamp("2009-01-04 00:00:01"))
	e, err := Open(Config{SysMonInterval: -1, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rule := `SELECT name, max(value) AS v FROM sys.metrics <ADVANCE '5 seconds'> GROUP BY name`
	stop, err := e.SubscribeAlert(rule, ws.URL, ws.Client())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if err := e.SysSnapshot(); err != nil {
		t.Fatal(err)
	}
	clock.Set(MustTimestamp("2009-01-04 00:00:07"))
	if err := e.SysSnapshot(); err != nil {
		t.Fatal(err)
	}

	select {
	case p := <-got:
		if p.Rule != rule {
			t.Errorf("alert rule = %q, want %q", p.Rule, rule)
		}
		if len(p.Rows) == 0 {
			t.Error("alert fired with no rows")
		}
		if len(p.Columns) != 2 || p.Columns[0] != "name" {
			t.Errorf("alert columns = %v", p.Columns)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no alert delivered")
	}

	// Delivery is counted.
	found := false
	for _, s := range e.Metrics().Gather() {
		if s.Name == "streamrel_sysmon_alerts_total" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("streamrel_sysmon_alerts_total did not count the delivery")
	}
}

// TestSysPipelinesSnapshot: sys.pipelines carries one row per live CQ
// with its fire mode.
func TestSysPipelinesSnapshot(t *testing.T) {
	clock := newFakeClock(MustTimestamp("2009-01-04 00:00:01"))
	e, err := Open(Config{SysMonInterval: -1, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	mustExec(t, e, `CREATE STREAM u (v bigint, at timestamp CQTIME USER)`)
	ucq, err := e.Subscribe(`SELECT count(*) FROM u <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	defer ucq.Close()

	pcq, err := e.Subscribe(`SELECT source, count(*) AS n FROM sys.pipelines <ADVANCE '5 seconds'> GROUP BY source`)
	if err != nil {
		t.Fatal(err)
	}
	defer pcq.Close()

	if err := e.SysSnapshot(); err != nil {
		t.Fatal(err)
	}
	clock.Set(MustTimestamp("2009-01-04 00:00:07"))
	if err := e.SysSnapshot(); err != nil {
		t.Fatal(err)
	}

	b, ok := pcq.Next()
	if !ok {
		t.Fatal("sys.pipelines CQ closed")
	}
	seen := map[string]int64{}
	for _, r := range b.Rows {
		seen[r[0].Str()] = r[1].Int()
	}
	if seen["u"] == 0 {
		t.Fatalf("sys.pipelines window missing the CQ over u: %v", seen)
	}
}

// TestSysmonTickerLive exercises the background ticker end to end with a
// real (fast) interval — the streams fill without any manual ticks.
func TestSysmonTickerLive(t *testing.T) {
	e, err := Open(Config{SysMonInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var snaps float64
		for _, s := range e.Metrics().Gather() {
			if s.Name == "streamrel_sysmon_snapshots_total" {
				snaps = s.Value
			}
		}
		if snaps >= 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background sysmon ticker took no snapshots")
}
