package streamrel

import (
	"fmt"

	"streamrel/internal/catalog"
	"streamrel/internal/expr"
	"streamrel/internal/sql"
	"streamrel/internal/storage"
	"streamrel/internal/types"
)

// execInsert handles INSERT INTO table|stream VALUES…|SELECT….
// Inserting into a stream is ingestion: rows flow through the continuous
// queries *before* any storage — the paper's core reversal of
// store-first-query-later.
func (e *Engine) execInsert(s *sql.Insert) (*Result, error) {
	// Target resolution: stream or table.
	if st, ok := e.cat.Stream(s.Table); ok {
		rows, err := e.insertSourceRows(s, st.Schema)
		if err != nil {
			return nil, err
		}
		e.stampSystemTime(st, rows)
		e.mu.RLock()
		defer e.mu.RUnlock()
		if err := e.rt.PushBatch(s.Table, rows); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: len(rows)}, nil
	}
	if _, ok := e.cat.Derived(s.Table); ok {
		return nil, fmt.Errorf("streamrel: cannot INSERT into derived stream %q", s.Table)
	}
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("streamrel: relation %q does not exist", s.Table)
	}
	rows, err := e.insertSourceRows(s, t.Schema)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	w := e.beginWrite()
	for _, row := range rows {
		if err := w.insertRow(t, row); err != nil {
			return nil, w.fail(err)
		}
	}
	if err := w.commit(); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(rows)}, nil
}

// insertSourceRows materializes the rows an INSERT provides, mapped onto
// the target schema (missing columns become NULL) and coerced to column
// types.
func (e *Engine) insertSourceRows(s *sql.Insert, schema types.Schema) ([]types.Row, error) {
	// Column mapping.
	targets := make([]int, 0, len(schema))
	if len(s.Columns) == 0 {
		for i := range schema {
			targets = append(targets, i)
		}
	} else {
		for _, name := range s.Columns {
			i := schema.IndexOf(name)
			if i < 0 {
				return nil, fmt.Errorf("streamrel: column %q does not exist", name)
			}
			targets = append(targets, i)
		}
	}

	var srcRows []types.Row
	switch {
	case s.Query != nil:
		res, err := e.querySelect(s.Query)
		if err != nil {
			return nil, err
		}
		srcRows = res.Data
	default:
		for _, exprRow := range s.Rows {
			row := make(types.Row, len(exprRow))
			for i, ex := range exprRow {
				sc, err := expr.Compile(ex, expr.ConstBinder{})
				if err != nil {
					return nil, err
				}
				v, err := sc.Eval(&expr.Ctx{Now: e.cfg.Now})
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}

	out := make([]types.Row, len(srcRows))
	for ri, src := range srcRows {
		if len(src) != len(targets) {
			return nil, fmt.Errorf("streamrel: INSERT row %d has %d values, expected %d",
				ri+1, len(src), len(targets))
		}
		full := make(types.Row, len(schema))
		for i := range full {
			full[i] = types.Null
		}
		for i, pos := range targets {
			full[pos] = src[i]
		}
		coerced, err := coerceRow(full, schema)
		if err != nil {
			return nil, err
		}
		out[ri] = coerced
	}
	return out, nil
}

// execUpdate handles UPDATE table SET … [WHERE …] as MVCC delete+insert.
func (e *Engine) execUpdate(s *sql.Update) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("streamrel: table %q does not exist", s.Table)
	}
	sc := tableScope(t)
	var where *expr.Scalar
	var err error
	if s.Where != nil {
		if where, err = expr.Compile(s.Where, sc); err != nil {
			return nil, err
		}
	}
	type assign struct {
		col int
		val *expr.Scalar
	}
	assigns := make([]assign, len(s.Set))
	for i, a := range s.Set {
		col := t.Schema.IndexOf(a.Column)
		if col < 0 {
			return nil, fmt.Errorf("streamrel: column %q does not exist", a.Column)
		}
		val, err := expr.Compile(a.Value, sc)
		if err != nil {
			return nil, err
		}
		assigns[i] = assign{col, val}
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	w := e.beginWrite()
	// Collect matches under the transaction's own snapshot, then apply.
	type match struct {
		rid storage.RowID
		row types.Row
	}
	var matches []match
	var scanErr error
	t.Heap.Scan(w.tx.Snap, func(rid storage.RowID, row types.Row) bool {
		if where != nil {
			v, err := where.Eval(&expr.Ctx{Row: row, Now: e.cfg.Now})
			if err != nil {
				scanErr = err
				return false
			}
			if v.IsNull() || !v.Bool() {
				return true
			}
		}
		matches = append(matches, match{rid, row})
		return true
	})
	if scanErr != nil {
		return nil, w.fail(scanErr)
	}
	for _, m := range matches {
		newRow := m.row.Clone()
		for _, a := range assigns {
			v, err := a.val.Eval(&expr.Ctx{Row: m.row, Now: e.cfg.Now})
			if err != nil {
				return nil, w.fail(err)
			}
			if !v.IsNull() && v.Type() != t.Schema[a.col].Type {
				if v, err = types.Cast(v, t.Schema[a.col].Type); err != nil {
					return nil, w.fail(err)
				}
			}
			newRow[a.col] = v
		}
		if err := w.deleteRow(t, m.rid); err != nil {
			return nil, w.fail(err)
		}
		if err := w.insertRow(t, newRow); err != nil {
			return nil, w.fail(err)
		}
	}
	if err := w.commit(); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(matches)}, nil
}

// execDelete handles DELETE FROM table [WHERE …].
func (e *Engine) execDelete(s *sql.Delete) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("streamrel: table %q does not exist", s.Table)
	}
	var where *expr.Scalar
	var err error
	if s.Where != nil {
		if where, err = expr.Compile(s.Where, tableScope(t)); err != nil {
			return nil, err
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	w := e.beginWrite()
	var rids []storage.RowID
	var scanErr error
	t.Heap.Scan(w.tx.Snap, func(rid storage.RowID, row types.Row) bool {
		if where != nil {
			v, err := where.Eval(&expr.Ctx{Row: row, Now: e.cfg.Now})
			if err != nil {
				scanErr = err
				return false
			}
			if v.IsNull() || !v.Bool() {
				return true
			}
		}
		rids = append(rids, rid)
		return true
	})
	if scanErr != nil {
		return nil, w.fail(scanErr)
	}
	for _, rid := range rids {
		if err := w.deleteRow(t, rid); err != nil {
			return nil, w.fail(err)
		}
	}
	if err := w.commit(); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(rids)}, nil
}

// execTruncate removes every visible row.
func (e *Engine) execTruncate(s *sql.Truncate) (*Result, error) {
	return e.execDelete(&sql.Delete{Table: s.Table})
}

// schemaBinder resolves column references against one table's schema.
type schemaBinder struct {
	qual   string
	schema types.Schema
}

// ResolveColumn implements expr.Binder.
func (b schemaBinder) ResolveColumn(table, name string) (expr.ColumnBinding, error) {
	if table != "" && table != b.qual {
		return expr.ColumnBinding{}, fmt.Errorf("streamrel: unknown relation %q", table)
	}
	i := b.schema.IndexOf(name)
	if i < 0 {
		return expr.ColumnBinding{}, fmt.Errorf("streamrel: column %q does not exist", name)
	}
	return expr.ColumnBinding{Index: i, Type: b.schema[i].Type}, nil
}

// tableScope builds an expression binder over a table's schema.
func tableScope(t *catalog.Table) expr.Binder {
	return schemaBinder{qual: t.Name, schema: t.Schema}
}

// BulkInsert loads rows into a table through the write path (WAL, indexes,
// MVCC) without per-row SQL parsing. It is the loader used by the
// store-first baseline and by srload.
func (e *Engine) BulkInsert(table string, rows []Row) error {
	if err := e.writeGate(); err != nil {
		return err
	}
	t, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("streamrel: table %q does not exist", table)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	w := e.beginWrite()
	for _, row := range rows {
		coerced, err := coerceRow(row, t.Schema)
		if err != nil {
			return w.fail(err)
		}
		if err := w.insertRow(t, coerced); err != nil {
			return w.fail(err)
		}
	}
	return w.commit()
}
