package streamrel

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestDurabilityMatchesModelProperty drives random DML (inserts, updates,
// deletes, truncates) interleaved with checkpoints against a durable
// engine while maintaining a shadow model, then restarts and verifies the
// recovered table matches the model exactly. This exercises WAL batching,
// RowID-stable replay, checkpoint compaction/index rebuild, and their
// interactions.
func TestDurabilityMatchesModelProperty(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) + 40))
			dir := t.TempDir()
			e, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, e, `CREATE TABLE t (id bigint, v bigint)`)
			mustExec(t, e, `CREATE INDEX t_id ON t (id)`)

			model := map[int64]int64{} // id → v
			nextID := int64(0)
			for op := 0; op < 400; op++ {
				switch r := rng.Intn(100); {
				case r < 55: // insert
					id := nextID
					nextID++
					v := rng.Int63n(1000)
					if _, err := e.ExecArgs(`INSERT INTO t VALUES ($1, $2)`, Int(id), Int(v)); err != nil {
						t.Fatal(err)
					}
					model[id] = v
				case r < 75: // update a random live id
					if len(model) == 0 {
						continue
					}
					id := anyKey(rng, model)
					v := rng.Int63n(1000)
					if _, err := e.ExecArgs(`UPDATE t SET v = $1 WHERE id = $2`, Int(v), Int(id)); err != nil {
						t.Fatal(err)
					}
					model[id] = v
				case r < 90: // delete
					if len(model) == 0 {
						continue
					}
					id := anyKey(rng, model)
					if _, err := e.ExecArgs(`DELETE FROM t WHERE id = $1`, Int(id)); err != nil {
						t.Fatal(err)
					}
					delete(model, id)
				case r < 94: // truncate
					if _, err := e.Exec(`TRUNCATE TABLE t`); err != nil {
						t.Fatal(err)
					}
					model = map[int64]int64{}
				default: // checkpoint
					if err := e.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Verify live state, then crash-restart and verify again.
			check := func(eng *Engine, phase string) {
				t.Helper()
				rows := mustQuery(t, eng, `SELECT id, v FROM t ORDER BY id`)
				want := modelRows(model)
				if len(rows.Data) != len(want) {
					t.Fatalf("%s: %d rows, model has %d", phase, len(rows.Data), len(want))
				}
				for i, r := range rows.Data {
					if r.String() != want[i] {
						t.Fatalf("%s row %d: %s vs model %s", phase, i, r.String(), want[i])
					}
				}
				// The index agrees with the heap.
				if len(model) > 0 {
					id := anyKey(rand.New(rand.NewSource(1)), model)
					got, err := eng.QueryArgs(`SELECT v FROM t WHERE id = $1`, Int(id))
					if err != nil || len(got.Data) != 1 || got.Data[0][0].Int() != model[id] {
						t.Fatalf("%s: index lookup id=%d: %v %v", phase, id, got, err)
					}
				}
			}
			check(e, "live")
			e.Close()
			e2, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			check(e2, "recovered")
		})
	}
}

func anyKey(rng *rand.Rand, m map[int64]int64) int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys[rng.Intn(len(keys))]
}

func modelRows(m map[int64]int64) []string {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%d|%d", k, m[k])
	}
	return out
}
