package streamrel

import (
	"testing"
	"time"
)

// TestRawStreamArchiveChannel: a channel from a *base* stream archives the
// raw feed into a table as rows arrive — the paper's "raw data that has
// been archived away in the database", done by the same channel mechanism.
func TestRawStreamArchiveChannel(t *testing.T) {
	e := openMem(t)
	err := e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);
		CREATE TABLE raw (v bigint, at timestamp);
		CREATE CHANNEL raw_ch FROM s INTO raw APPEND;
		CREATE STREAM totals AS SELECT sum(v), cq_close(*) FROM s <ADVANCE '1 minute'>;
		CREATE TABLE agg (total bigint, stime timestamp);
		CREATE CHANNEL agg_ch FROM totals INTO agg;
	`)
	if err != nil {
		t.Fatal(err)
	}
	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 5; i++ {
		e.Append("s", Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))})
	}
	e.AdvanceTime("s", base.Add(time.Minute))

	// Raw rows landed in the archive table immediately.
	expectData(t, mustQuery(t, e, `SELECT count(*), sum(v) FROM raw`), "5|10")
	// And the aggregate channel still works alongside.
	expectData(t, mustQuery(t, e, `SELECT total FROM agg`), "10")
	// Raw archive agrees with the continuous aggregate (cross-check).
	expectData(t, mustQuery(t, e, `
		SELECT sum(v) FROM raw WHERE at < timestamp '2009-01-04 00:01:00'`), "10")

	// REPLACE from a base stream is rejected.
	if _, err := e.Exec(`CREATE TABLE raw2 (v bigint, at timestamp)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`CREATE CHANNEL bad FROM s INTO raw2 REPLACE`); err == nil {
		t.Fatal("REPLACE from base stream should fail")
	}
	// A base stream feeding a channel cannot be dropped.
	if _, err := e.Exec(`DROP STREAM s`); err == nil {
		t.Fatal("drop of channel-feeding base stream should fail")
	}
	mustExec(t, e, `DROP CHANNEL raw_ch`)
}

// TestRawArchiveRecovery: the raw archive is durable like any table.
func TestRawArchiveRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);
		CREATE TABLE raw (v bigint, at timestamp);
		CREATE CHANNEL raw_ch FROM s INTO raw;
	`)
	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 3; i++ {
		e.Append("s", Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))})
	}
	e.Close()
	e2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	expectData(t, mustQuery(t, e2, `SELECT count(*) FROM raw`), "3")
	// The channel still archives after restart.
	e2.Append("s", Row{Int(9), Timestamp(base.Add(time.Minute))})
	expectData(t, mustQuery(t, e2, `SELECT count(*) FROM raw`), "4")
}
