// Ablation benchmarks for the design choices DESIGN.md calls out: each
// pair isolates one mechanism by running the same workload with the
// mechanism on and off.
package streamrel

import (
	"fmt"
	"testing"
)

// --- Ablation 1: B-tree index vs sequential scan for selective lookups.

func ablationLookupEngine(b *testing.B, withIndex bool) *Engine {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE t (k bigint, v varchar)`)
	var rows []Row
	for i := int64(0); i < 50_000; i++ {
		rows = append(rows, Row{Int(i), String("payload")})
	}
	if err := e.BulkInsert("t", rows); err != nil {
		b.Fatal(err)
	}
	if withIndex {
		mustScript(b, e, `CREATE INDEX t_k ON t (k)`)
	}
	return e
}

func BenchmarkAblationPointLookupIndexed(b *testing.B) {
	e := ablationLookupEngine(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT v FROM t WHERE k = 25000`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPointLookupSeqScan(b *testing.B) {
	e := ablationLookupEngine(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT v FROM t WHERE k = 25000`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 2: WAL durability levels on the insert path.

func benchInsertWAL(b *testing.B, dir string, sync bool) {
	cfg := Config{Dir: dir, SyncWAL: sync}
	e, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if err := e.ExecScript(`CREATE TABLE t (a bigint, s varchar)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(`INSERT INTO t VALUES (1, 'x')`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInsertNoWAL(b *testing.B)   { benchInsertWAL(b, "", false) }
func BenchmarkAblationInsertWAL(b *testing.B)     { benchInsertWAL(b, b.TempDir(), false) }
func BenchmarkAblationInsertWALSync(b *testing.B) { benchInsertWAL(b, b.TempDir(), true) }

// --- Ablation 3: hash join vs nested-loop join on the same equi-join.
// The nested-loop variant expresses equality as `<= AND >=`, which the
// planner cannot turn into hash keys.

func ablationJoinEngine(b *testing.B, rows int) *Engine {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE l (k bigint); CREATE TABLE r (k bigint, v bigint)`)
	var lr, rr []Row
	for i := int64(0); i < int64(rows); i++ {
		lr = append(lr, Row{Int(i)})
		rr = append(rr, Row{Int(i), Int(i * 10)})
	}
	if err := e.BulkInsert("l", lr); err != nil {
		b.Fatal(err)
	}
	if err := e.BulkInsert("r", rr); err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkAblationJoinHash(b *testing.B) {
	e := ablationJoinEngine(b, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT count(*) FROM l, r WHERE l.k = r.k`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJoinNestedLoop(b *testing.B) {
	e := ablationJoinEngine(b, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT count(*) FROM l, r WHERE l.k <= r.k AND l.k >= r.k`); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 4: SQL text path vs prepared bulk path for ingestion.

func BenchmarkAblationIngestSQLText(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE t (a bigint, s varchar)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'x')`, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIngestBulk(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE t (a bigint, s varchar)`)
	rows := make([]Row, b.N)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), String("x")}
	}
	b.ResetTimer()
	if err := e.BulkInsert("t", rows); err != nil {
		b.Fatal(err)
	}
}

// --- Ablation 5: window-close cost for raw-buffer recompute vs shared
// slices, isolating the slice mechanism from fan-out (k=1).

func benchWindowClose(b *testing.B, share bool) {
	e := mustOpen(b, Config{DisableSharing: !share, DisableIVM: true})
	mustScript(b, e, `CREATE STREAM s (k bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT k, count(*) FROM s <VISIBLE '10 minutes' ADVANCE '1 minute'> GROUP BY k`)
	if err != nil {
		b.Fatal(err)
	}
	defer cq.Close()
	base := MustTimestamp("2009-01-04 00:00:00").UnixMicro()
	// Prime ten minutes of data so the sliding extent is full, then per
	// iteration stream one more minute (5,000 rows) and close one window:
	// the unshared path re-reads the whole 10-minute extent per close, the
	// shared path merges ten slice partials.
	const perMinute = 5000
	const gap = 60_000_000 / perMinute
	mint := func(minute int64) []Row {
		rows := make([]Row, perMinute)
		for i := int64(0); i < perMinute; i++ {
			rows[i] = Row{Int(i % 500), Timestamp(usToTime(base + minute*60_000_000 + i*gap))}
		}
		return rows
	}
	for m := int64(0); m < 10; m++ {
		if err := e.Append("s", mint(m)...); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := int64(10 + i)
		if err := e.Append("s", mint(m)...); err != nil {
			b.Fatal(err)
		}
		if err := e.AdvanceTime("s", usToTime(base+(m+1)*60_000_000)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		cq.Drain()
		b.StartTimer()
	}
}

func BenchmarkAblationWindowCloseShared(b *testing.B)   { benchWindowClose(b, true) }
func BenchmarkAblationWindowCloseUnshared(b *testing.B) { benchWindowClose(b, false) }
