package streamrel

import (
	"errors"
	"fmt"

	"streamrel/internal/catalog"
	"streamrel/internal/exec"
	"streamrel/internal/plan"
	"streamrel/internal/sql"
	"streamrel/internal/storage"
	"streamrel/internal/trace"
	"streamrel/internal/txn"
	"streamrel/internal/types"
	"streamrel/internal/wal"
)

// execDDL applies a DDL statement to the catalog and runtime, and (outside
// recovery) logs its SQL text so WAL replay re-executes it (paper §4:
// durable state replays; CQ runtime state is then rebuilt from Active
// Tables).
func (e *Engine) execDDL(stmt sql.Statement, sqlText string) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	skipped, err := e.applyDDL(stmt)
	if err != nil {
		return nil, err
	}
	if !skipped && !e.recovering {
		e.ddlLog = append(e.ddlLog, sqlText)
		if e.log != nil {
			if err := e.log.Append([]wal.Record{{Kind: wal.RecDDL, SQL: sqlText}}); err != nil {
				return nil, err
			}
		}
		if e.hub != nil {
			e.hub.PublishWAL([]wal.Record{{Kind: wal.RecDDL, SQL: sqlText}})
		}
	}
	return &Result{}, nil
}

// applyDDL mutates catalog/runtime state. It returns skipped=true when an
// IF [NOT] EXISTS clause made the statement a no-op.
func (e *Engine) applyDDL(stmt sql.Statement) (skipped bool, err error) {
	switch s := stmt.(type) {
	case *sql.CreateTable:
		schema, _, err := columnsToSchema(s.Columns)
		if err != nil {
			return false, err
		}
		if _, err := e.cat.CreateTable(s.Name, schema); err != nil {
			if s.IfNotExists && errors.As(err, &catalog.ErrExists{}) {
				return true, nil
			}
			return false, err
		}
		return false, nil

	case *sql.CreateStream:
		schema, cqCol, err := columnsToSchema(s.Columns)
		if err != nil {
			return false, err
		}
		if cqCol < 0 {
			return false, fmt.Errorf("streamrel: stream %q needs a CQTIME column (e.g. atime timestamp CQTIME USER)", s.Name)
		}
		system := s.Columns[cqCol].CQTimeSystem
		partCol := -1
		if s.PartitionBy != "" {
			for i, c := range s.Columns {
				if c.Name == s.PartitionBy {
					partCol = i
					break
				}
			}
			if partCol < 0 {
				return false, fmt.Errorf("streamrel: stream %q: PARTITION BY column %q not found", s.Name, s.PartitionBy)
			}
		}
		if _, err := e.cat.CreateStreamPartitioned(s.Name, schema, cqCol, system, partCol); err != nil {
			if s.IfNotExists && errors.As(err, &catalog.ErrExists{}) {
				return true, nil
			}
			return false, err
		}
		if err := e.rt.RegisterSource(s.Name, schema, cqCol); err != nil {
			return false, err
		}
		return false, nil

	case *sql.CreateDerivedStream:
		return e.createDerivedStream(s)

	case *sql.CreateView:
		// Validate the view query plans (against a scratch planner so the
		// stream-leaf bookkeeping does not leak).
		if _, err := (&plan.Planner{Cat: e.cat}).BuildSelect(s.Query); err != nil {
			return false, fmt.Errorf("streamrel: invalid view query: %w", err)
		}
		err := e.cat.CreateView(&catalog.View{Name: s.Name, Query: s.Query})
		if err != nil {
			if s.IfNotExists && errors.As(err, &catalog.ErrExists{}) {
				return true, nil
			}
			return false, err
		}
		return false, nil

	case *sql.CreateChannel:
		return e.createChannel(s)

	case *sql.CreateIndex:
		ix, err := e.cat.CreateIndex(s.Name, s.Table, s.Columns)
		if err != nil {
			if s.IfNotExists && errors.As(err, &catalog.ErrExists{}) {
				return true, nil
			}
			return false, err
		}
		// Backfill from the current table contents.
		t, _ := e.cat.Table(s.Table)
		t.Heap.Scan(e.mgr.SnapshotNow(), func(rid storage.RowID, row types.Row) bool {
			ix.Tree.Insert(ix.KeyOf(row), rid)
			return true
		})
		return false, nil

	case *sql.Drop:
		return e.execDrop(s)
	}
	return false, fmt.Errorf("streamrel: unsupported DDL %T", stmt)
}

// columnsToSchema converts parsed column definitions, returning the CQTIME
// column index (or -1).
func columnsToSchema(cols []sql.ColumnDef) (types.Schema, int, error) {
	schema := make(types.Schema, len(cols))
	cqCol := -1
	seen := map[string]bool{}
	for i, c := range cols {
		if seen[c.Name] {
			return nil, 0, fmt.Errorf("streamrel: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		schema[i] = types.Column{Name: c.Name, Type: c.Type}
		if c.CQTime {
			if cqCol >= 0 {
				return nil, 0, fmt.Errorf("streamrel: multiple CQTIME columns")
			}
			if c.Type != types.TypeTimestamp {
				return nil, 0, fmt.Errorf("streamrel: CQTIME column %q must be TIMESTAMP", c.Name)
			}
			cqCol = i
		}
	}
	return schema, cqCol, nil
}

// createDerivedStream plans the defining query, registers the derived
// source, and starts the always-on pipeline (paper §3.2: a derived stream
// "runs in an always on mode until it is explicitly dropped").
func (e *Engine) createDerivedStream(s *sql.CreateDerivedStream) (bool, error) {
	if _, ok := e.cat.Derived(s.Name); ok && s.IfNotExists {
		return true, nil
	}
	p, err := e.planner.BuildSelect(s.Query)
	if err != nil {
		return false, fmt.Errorf("streamrel: derived stream %q: %w", s.Name, err)
	}
	if p.Stream == nil {
		return false, fmt.Errorf("streamrel: derived stream %q: defining query must read a windowed stream", s.Name)
	}
	d := &catalog.DerivedStream{
		Name:     s.Name,
		Schema:   p.Columns,
		Query:    s.Query,
		CloseCol: p.CloseCol,
	}
	if err := e.cat.CreateDerivedStream(d); err != nil {
		if s.IfNotExists && errors.As(err, &catalog.ErrExists{}) {
			return true, nil
		}
		return false, err
	}
	if err := e.rt.RegisterSource(s.Name, p.Columns, -1); err != nil {
		e.cat.Drop(sql.ObjStream, s.Name)
		return false, err
	}
	pipe, err := e.rt.Subscribe(p, e.rt.DerivedSink(s.Name))
	if err != nil {
		e.rt.DropSource(s.Name)
		e.cat.Drop(sql.ObjStream, s.Name)
		return false, err
	}
	e.derivedPipes[s.Name] = pipe
	return false, nil
}

// createChannel validates schema compatibility and attaches the tap that
// copies derived-stream emissions into the target table, making it an
// Active Table (paper §3.3).
func (e *Engine) createChannel(s *sql.CreateChannel) (bool, error) {
	if _, ok := e.cat.Channel(s.Name); ok && s.IfNotExists {
		return true, nil
	}
	// The source is a derived stream (the paper's Example 4), or a base
	// stream — which archives the raw feed row by row (APPEND only).
	var srcSchema types.Schema
	if d, ok := e.cat.Derived(s.From); ok {
		srcSchema = d.Schema
	} else if bs, ok := e.cat.Stream(s.From); ok {
		if s.Mode == sql.ChannelReplace {
			return false, fmt.Errorf("streamrel: channel %q: REPLACE requires a derived stream (base streams have no emissions)", s.Name)
		}
		srcSchema = bs.Schema
	} else {
		return false, fmt.Errorf("streamrel: channel %q: stream %q does not exist", s.Name, s.From)
	}
	t, ok := e.cat.Table(s.Into)
	if !ok {
		return false, fmt.Errorf("streamrel: channel %q: table %q does not exist", s.Name, s.Into)
	}
	if len(srcSchema) != len(t.Schema) {
		return false, fmt.Errorf("streamrel: channel %q: stream has %d columns, table has %d",
			s.Name, len(srcSchema), len(t.Schema))
	}
	for i := range srcSchema {
		if srcSchema[i].Type != t.Schema[i].Type &&
			srcSchema[i].Type != types.TypeUnknown && t.Schema[i].Type != types.TypeUnknown {
			return false, fmt.Errorf("streamrel: channel %q: column %d is %s in the stream but %s in the table",
				s.Name, i+1, srcSchema[i].Type, t.Schema[i].Type)
		}
	}
	ch := &catalog.Channel{Name: s.Name, From: s.From, Into: s.Into, Mode: s.Mode}
	if err := e.cat.CreateChannel(ch); err != nil {
		if s.IfNotExists && errors.As(err, &catalog.ErrExists{}) {
			return true, nil
		}
		return false, err
	}
	detach, err := e.rt.Tap(s.From, func(tc trace.Ctx, closeTS int64, rows []types.Row) error {
		return e.channelWrite(tc, ch, rows)
	})
	if err != nil {
		e.cat.Drop(sql.ObjChannel, s.Name)
		return false, err
	}
	e.channelTaps[s.Name] = detach
	return false, nil
}

// channelWrite applies one derived-stream emission to the channel's table
// in a transaction: REPLACE diffs the emission against the visible
// contents and applies a replace delta — delete only vanished rows,
// insert only new ones — so an unchanged group costs no heap or WAL
// churn; APPEND just adds. The write transaction makes the update atomic
// at the window boundary; in parallel mode it runs on the producing
// pipeline's worker goroutine (heap, index and WAL are internally
// locked).
func (e *Engine) channelWrite(tc trace.Ctx, ch *catalog.Channel, rows []types.Row) error {
	if e.replicaMode.Load() {
		// A replica's channels stay quiet: the primary's channel writes
		// arrive through the replicated WAL, so writing here would apply
		// every emission twice. Promote re-enables local channel writes.
		return nil
	}
	t, ok := e.cat.Table(ch.Into)
	if !ok {
		return fmt.Errorf("streamrel: channel %q: table %q vanished", ch.Name, ch.Into)
	}
	w := e.beginWrite()
	w.tc = tc
	coerced := make([]types.Row, len(rows))
	for i, row := range rows {
		cr, err := coerceRow(row, t.Schema)
		if err != nil {
			return w.fail(err)
		}
		coerced[i] = cr
	}
	if ch.Mode == sql.ChannelReplace {
		// Replace delta: want holds each new row's multiplicity. Visible
		// rows matching a wanted row are kept (decrement); the rest are
		// deleted. Whatever multiplicity remains is inserted. The table
		// converges to exactly the emission's multiset, as the old
		// delete-all-insert-all did, touching only changed rows.
		want := make(map[string]int, len(coerced))
		for _, cr := range coerced {
			want[cr.Key()]++
		}
		var stale []storage.RowID
		t.Heap.Scan(w.tx.Snap, func(rid storage.RowID, r types.Row) bool {
			if k := r.Key(); want[k] > 0 {
				want[k]--
			} else {
				stale = append(stale, rid)
			}
			return true
		})
		for _, rid := range stale {
			if err := w.deleteRow(t, rid); err != nil {
				return w.fail(err)
			}
		}
		for _, cr := range coerced {
			if k := cr.Key(); want[k] > 0 {
				want[k]--
				if err := w.insertRow(t, cr); err != nil {
					return w.fail(err)
				}
			}
		}
		return w.commit()
	}
	for _, cr := range coerced {
		if err := w.insertRow(t, cr); err != nil {
			return w.fail(err)
		}
	}
	return w.commit()
}

func (e *Engine) execDrop(s *sql.Drop) (bool, error) {
	// Runtime teardown before catalog removal.
	switch s.Kind {
	case sql.ObjStream:
		if pipe, ok := e.derivedPipes[s.Name]; ok {
			if err := e.cat.Drop(s.Kind, s.Name); err != nil {
				return e.dropMissOK(s, err)
			}
			e.rt.Unsubscribe(pipe)
			e.rt.DropSource(s.Name)
			delete(e.derivedPipes, s.Name)
			return false, nil
		}
		if err := e.cat.Drop(s.Kind, s.Name); err != nil {
			return e.dropMissOK(s, err)
		}
		e.rt.DropSource(s.Name)
		return false, nil
	case sql.ObjChannel:
		if err := e.cat.Drop(s.Kind, s.Name); err != nil {
			return e.dropMissOK(s, err)
		}
		if detach, ok := e.channelTaps[s.Name]; ok {
			detach()
			delete(e.channelTaps, s.Name)
		}
		return false, nil
	default:
		if err := e.cat.Drop(s.Kind, s.Name); err != nil {
			return e.dropMissOK(s, err)
		}
		return false, nil
	}
}

func (e *Engine) dropMissOK(s *sql.Drop, err error) (bool, error) {
	if s.IfExists && errors.As(err, &catalog.ErrNotFound{}) {
		return true, nil
	}
	return false, err
}

// ------------------------------------------------------- write txns

// writeTxn couples an MVCC transaction with its WAL batch and index
// maintenance. All effects are logged only at commit, as one atomic batch.
type writeTxn struct {
	e    *Engine
	tx   *txn.Txn
	recs []wal.Record
	// tc carries a channel write's trace context into the WAL append and
	// across the replication wire; zero for untraced writes.
	tc trace.Ctx
	// undo reverts delete stamps if the transaction aborts; inserted
	// versions need no undo (they stay invisible forever).
	undo []func()
	n    int
}

func (e *Engine) beginWrite() *writeTxn {
	return &writeTxn{e: e, tx: e.mgr.Begin()}
}

func (w *writeTxn) insertRow(t *catalog.Table, row types.Row) error {
	rid, err := t.Heap.Insert(w.tx.ID, row)
	if err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		ix.Tree.Insert(ix.KeyOf(row), rid)
	}
	w.recs = append(w.recs, wal.Record{Kind: wal.RecInsert, Table: t.Name, RowID: uint64(rid), Row: row})
	w.n++
	return nil
}

func (w *writeTxn) deleteRow(t *catalog.Table, rid storage.RowID) error {
	if err := t.Heap.Delete(w.tx.ID, rid); err != nil {
		return err
	}
	heap, id := t.Heap, rid
	w.undo = append(w.undo, func() { heap.UndoDelete(w.tx.ID, id) })
	// Index entries stay: MVCC visibility filters them; vacuum rebuilds.
	w.recs = append(w.recs, wal.Record{Kind: wal.RecDelete, Table: t.Name, RowID: uint64(rid)})
	w.n++
	return nil
}

func (w *writeTxn) commit() error {
	if w.e.log != nil && len(w.recs) > 0 {
		if err := w.e.log.AppendCtx(w.tc, w.recs); err != nil {
			return w.fail(err)
		}
	}
	if w.e.hub != nil && len(w.recs) > 0 {
		// The hub commits the transaction inside its commit lock, so the
		// published LSN order matches commit order across transactions
		// (stream ingest publishes under a separate lock and never waits
		// behind a commit).
		return w.e.hub.PublishTxn(w.recs, w.tx.Commit, w.tc.ID)
	}
	return w.tx.Commit()
}

func (w *writeTxn) fail(err error) error {
	for _, u := range w.undo {
		u()
	}
	w.tx.Abort()
	return err
}

// coerceRow casts a row's values to the target schema's types.
func coerceRow(row types.Row, schema types.Schema) (types.Row, error) {
	if len(row) != len(schema) {
		return nil, fmt.Errorf("streamrel: row has %d values, schema needs %d", len(row), len(schema))
	}
	out := make(types.Row, len(row))
	for i, v := range row {
		if v.IsNull() || v.Type() == schema[i].Type || schema[i].Type == types.TypeUnknown {
			out[i] = v
			continue
		}
		c, err := types.Cast(v, schema[i].Type)
		if err != nil {
			return nil, fmt.Errorf("streamrel: column %q: %w", schema[i].Name, err)
		}
		out[i] = c
	}
	return out, nil
}

// execCtx builds an execution context over a fresh snapshot.
func (e *Engine) execCtx() *exec.Ctx {
	return &exec.Ctx{Snap: e.mgr.SnapshotNow(), Now: e.cfg.Now}
}

// execDrain runs a plan to completion.
func execDrain(ctx *exec.Ctx, p *plan.Plan, in plan.Input) ([]types.Row, error) {
	return exec.Drain(ctx, p.Build(in))
}
