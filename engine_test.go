package streamrel

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, e *Engine, sql string) *Rows {
	t.Helper()
	rows, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows
}

func rowStrings(rows *Rows) []string {
	out := make([]string, len(rows.Data))
	for i, r := range rows.Data {
		out[i] = r.String()
	}
	return out
}

func expectData(t *testing.T, rows *Rows, want ...string) {
	t.Helper()
	got := rowStrings(rows)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("got:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func openMem(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestTableCRUD(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE users (id bigint, name varchar, score double)`)
	res := mustExec(t, e, `INSERT INTO users VALUES (1, 'alice', 9.5), (2, 'bob', 7.25)`)
	if res.RowsAffected != 2 {
		t.Fatalf("inserted %d", res.RowsAffected)
	}
	mustExec(t, e, `INSERT INTO users (id, name) VALUES (3, 'carol')`)
	expectData(t, mustQuery(t, e, `SELECT * FROM users ORDER BY id`),
		"1|alice|9.5", "2|bob|7.25", "3|carol|NULL")

	res = mustExec(t, e, `UPDATE users SET score = score + 1 WHERE id <= 2`)
	if res.RowsAffected != 2 {
		t.Fatalf("updated %d", res.RowsAffected)
	}
	expectData(t, mustQuery(t, e, `SELECT score FROM users ORDER BY id`), "10.5", "8.25", "NULL")

	res = mustExec(t, e, `DELETE FROM users WHERE name = 'bob'`)
	if res.RowsAffected != 1 {
		t.Fatalf("deleted %d", res.RowsAffected)
	}
	expectData(t, mustQuery(t, e, `SELECT count(*) FROM users`), "2")

	mustExec(t, e, `TRUNCATE TABLE users`)
	expectData(t, mustQuery(t, e, `SELECT count(*) FROM users`), "0")
}

func TestInsertSelect(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE src (a bigint)`)
	mustExec(t, e, `CREATE TABLE dst (a bigint)`)
	mustExec(t, e, `INSERT INTO src VALUES (1), (2), (3)`)
	res := mustExec(t, e, `INSERT INTO dst SELECT a * 10 FROM src WHERE a > 1`)
	if res.RowsAffected != 2 {
		t.Fatalf("inserted %d", res.RowsAffected)
	}
	expectData(t, mustQuery(t, e, `SELECT a FROM dst ORDER BY a`), "20", "30")
}

func TestTypeCoercionOnInsert(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE ev (at timestamp, amount double)`)
	mustExec(t, e, `INSERT INTO ev VALUES ('2009-01-04 10:00:00', 5)`)
	expectData(t, mustQuery(t, e, `SELECT at, amount FROM ev`),
		"2009-01-04 10:00:00.000000|5.0")
}

func TestIndexedQuery(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE pts (k bigint, v varchar)`)
	for i := 0; i < 100; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO pts VALUES (%d, 'v%d')`, i, i))
	}
	mustExec(t, e, `CREATE INDEX pts_k ON pts (k)`)
	expectData(t, mustQuery(t, e, `SELECT v FROM pts WHERE k = 42`), "v42")
	expectData(t, mustQuery(t, e, `SELECT count(*) FROM pts WHERE k >= 10 AND k <= 19`), "10")
	// Index stays correct across updates and deletes.
	mustExec(t, e, `UPDATE pts SET v = 'new' WHERE k = 42`)
	expectData(t, mustQuery(t, e, `SELECT v FROM pts WHERE k = 42`), "new")
	mustExec(t, e, `DELETE FROM pts WHERE k = 42`)
	expectData(t, mustQuery(t, e, `SELECT count(*) FROM pts WHERE k = 42`), "0")
}

func TestShowAndExplain(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t1 (a bigint)`)
	mustExec(t, e, `CREATE STREAM s1 (x bigint, at timestamp CQTIME USER)`)
	res := mustExec(t, e, `SHOW TABLES`)
	expectData(t, res.Rows, "t1")
	res = mustExec(t, e, `SHOW STREAMS`)
	expectData(t, res.Rows, "s1")

	res = mustExec(t, e, `EXPLAIN SELECT count(*) FROM s1 <ADVANCE '1 minute'>`)
	joined := strings.Join(rowStrings(res.Rows), "\n")
	if !strings.Contains(joined, "Continuous Query") || !strings.Contains(joined, "shared slice aggregation: eligible") {
		t.Fatalf("explain output:\n%s", joined)
	}
	res = mustExec(t, e, `EXPLAIN SELECT * FROM t1`)
	if !strings.Contains(rowStrings(res.Rows)[0], "Snapshot Query") {
		t.Fatal("explain snapshot")
	}
}

// TestPaperExamplesEndToEnd runs the paper's Examples 1–5 as one scenario:
// stream DDL, a direct CQ, a derived stream, a channel into an Active
// Table, and the historical-comparison join.
func TestPaperExamplesEndToEnd(t *testing.T) {
	e := openMem(t)
	// Example 1.
	mustExec(t, e, `CREATE STREAM url_stream (
		url varchar(1024),
		atime timestamp CQTIME USER,
		client_ip varchar(50))`)

	// Example 2: direct CQ.
	top, err := e.Subscribe(`SELECT url, count(*) url_count
		FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
		GROUP by url
		ORDER by url_count desc
		LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	defer top.Close()

	// Example 3: derived stream.
	mustExec(t, e, `CREATE STREAM urls_now as
		SELECT url, count(*) as scnt, cq_close(*)
		FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
		GROUP by url`)

	// Example 4: archive into an Active Table.
	mustExec(t, e, `CREATE TABLE urls_archive (url varchar(1024), scnt bigint, stime timestamp)`)
	mustExec(t, e, `CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND`)

	// Example 5: historical comparison (1 minute ago rather than 1 week,
	// so the test stays small).
	histo, err := e.Subscribe(`select c.scnt, h.scnt, c.stime
		from (select sum(scnt) as scnt, cq_close(*) as stime
		      from urls_now <slices 1 windows>) c,
		     urls_archive h
		where c.stime - '1 minute'::interval = h.stime AND h.url = '/home'`)
	if err != nil {
		t.Fatal(err)
	}
	defer histo.Close()

	base := MustTimestamp("2009-01-04 09:00:00")
	hit := func(url string, offset time.Duration) {
		if err := e.Append("url_stream", Row{String(url), Timestamp(base.Add(offset)), String("10.0.0.1")}); err != nil {
			t.Fatal(err)
		}
	}
	hit("/home", 10*time.Second)
	hit("/home", 20*time.Second)
	hit("/buy", 30*time.Second)
	hit("/home", 70*time.Second) // second minute
	if err := e.AdvanceTime("url_stream", base.Add(3*time.Minute)); err != nil {
		t.Fatal(err)
	}

	// Example 2's CQ fired for minutes 1..3.
	b, ok := top.TryNext()
	if !ok {
		t.Fatal("no window from Example 2 CQ")
	}
	if b.Rows[0].String() != "/home|2" && b.Rows[0].String() != "/home|3" {
		t.Fatalf("unexpected top row: %v", b.Rows[0])
	}

	// The Active Table accumulated per-minute counts.
	rows := mustQuery(t, e, `SELECT url, scnt, stime FROM urls_archive WHERE stime = timestamp '2009-01-04 09:01:00' ORDER BY url`)
	expectData(t, rows, "/buy|1|2009-01-04 09:01:00.000000", "/home|2|2009-01-04 09:01:00.000000")

	// The archive is a full SQL table: aggregate over it.
	rows = mustQuery(t, e, `SELECT max(scnt) FROM urls_archive WHERE url = '/home'`)
	expectData(t, rows, "3")

	// Example 5's join compared current vs minute-ago.
	found := false
	for _, batch := range histo.Drain() {
		for _, r := range batch.Rows {
			if !r[0].IsNull() && !r[1].IsNull() {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("historical comparison join produced no matched rows")
	}
}

func TestChannelReplaceMode(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE STREAM latest AS SELECT sum(v), cq_close(*) FROM s <ADVANCE '1 minute'>`)
	mustExec(t, e, `CREATE TABLE latest_t (total bigint, stime timestamp)`)
	mustExec(t, e, `CREATE CHANNEL ch FROM latest INTO latest_t REPLACE`)

	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(5), Timestamp(base.Add(10 * time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	expectData(t, mustQuery(t, e, `SELECT total FROM latest_t`), "5")

	e.Append("s", Row{Int(7), Timestamp(base.Add(70 * time.Second))})
	e.AdvanceTime("s", base.Add(2*time.Minute))
	// REPLACE: only the newest window remains.
	expectData(t, mustQuery(t, e, `SELECT total FROM latest_t`), "7")
}

func TestStreamingView(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE VIEW big AS SELECT v, at FROM s <ADVANCE '1 minute'> WHERE v > 10`)
	cq, err := e.Subscribe(`SELECT count(*) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(5), Timestamp(base.Add(1 * time.Second))})
	e.Append("s", Row{Int(50), Timestamp(base.Add(2 * time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	b, ok := cq.TryNext()
	if !ok || b.Rows[0][0].Int() != 1 {
		t.Fatalf("streaming view result: %+v ok=%v", b, ok)
	}
}

func TestSnapshotIsolationAcrossWriters(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	mustExec(t, e, `INSERT INTO t VALUES (1)`)
	r1 := mustQuery(t, e, `SELECT count(*) FROM t`)
	mustExec(t, e, `INSERT INTO t VALUES (2)`)
	r2 := mustQuery(t, e, `SELECT count(*) FROM t`)
	expectData(t, r1, "1")
	expectData(t, r2, "2")
}

func TestSubscribeErrors(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	if _, err := e.Subscribe(`SELECT * FROM t`); err == nil {
		t.Fatal("Subscribe on table-only query should fail")
	}
	if _, err := e.Query(`SELECT count(*) FROM missing`); err == nil {
		t.Fatal("query on missing relation")
	}
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	if _, err := e.Query(`SELECT count(*) FROM s <ADVANCE '1 minute'>`); err == nil {
		t.Fatal("Query over stream should fail")
	}
	if _, err := e.Exec(`INSERT INTO nowhere VALUES (1)`); err == nil {
		t.Fatal("insert into missing relation")
	}
	if _, err := e.Exec(`CREATE STREAM bad (v bigint)`); err == nil {
		t.Fatal("stream without CQTIME should fail")
	}
	if _, err := e.Exec(`SELECT 1`); err == nil {
		t.Fatal("Exec of SELECT should direct to Query")
	}
}

func TestDDLGuards(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	if _, err := e.Exec(`CREATE TABLE t (a bigint)`); err == nil {
		t.Fatal("duplicate table")
	}
	mustExec(t, e, `CREATE TABLE IF NOT EXISTS t (a bigint)`)
	mustExec(t, e, `DROP TABLE t`)
	if _, err := e.Exec(`DROP TABLE t`); err == nil {
		t.Fatal("drop missing")
	}
	mustExec(t, e, `DROP TABLE IF EXISTS t`)

	// Channel schema validation.
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE STREAM d AS SELECT v, cq_close(*) FROM s <ADVANCE '1 minute'>`)
	mustExec(t, e, `CREATE TABLE good (v bigint, stime timestamp)`)
	mustExec(t, e, `CREATE TABLE narrow (v bigint)`)
	mustExec(t, e, `CREATE TABLE wrongtype (v varchar, stime timestamp)`)
	if _, err := e.Exec(`CREATE CHANNEL c1 FROM d INTO narrow`); err == nil {
		t.Fatal("arity mismatch channel")
	}
	if _, err := e.Exec(`CREATE CHANNEL c2 FROM d INTO wrongtype`); err == nil {
		t.Fatal("type mismatch channel")
	}
	mustExec(t, e, `CREATE CHANNEL c3 FROM d INTO good`)
	// Cannot drop objects a channel depends on.
	if _, err := e.Exec(`DROP TABLE good`); err == nil {
		t.Fatal("drop channel target")
	}
	if _, err := e.Exec(`DROP STREAM d`); err == nil {
		t.Fatal("drop channel source")
	}
	mustExec(t, e, `DROP CHANNEL c3`)
	mustExec(t, e, `DROP STREAM d`)
	mustExec(t, e, `DROP TABLE good`)
}

func TestDropDerivedStopsEmissions(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE STREAM d AS SELECT count(*), cq_close(*) FROM s <ADVANCE '1 minute'>`)
	mustExec(t, e, `CREATE TABLE sink_t (n bigint, stime timestamp)`)
	mustExec(t, e, `CREATE CHANNEL ch FROM d INTO sink_t`)
	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(1), Timestamp(base.Add(time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	expectData(t, mustQuery(t, e, `SELECT count(*) FROM sink_t`), "1")

	mustExec(t, e, `DROP CHANNEL ch`)
	mustExec(t, e, `DROP STREAM d`)
	e.Append("s", Row{Int(1), Timestamp(base.Add(61 * time.Second))})
	e.AdvanceTime("s", base.Add(2*time.Minute))
	expectData(t, mustQuery(t, e, `SELECT count(*) FROM sink_t`), "1")
}

func TestExecScript(t *testing.T) {
	e := openMem(t)
	err := e.ExecScript(`
		CREATE TABLE a (x bigint);
		INSERT INTO a VALUES (1), (2);
		CREATE TABLE b (y bigint);
		INSERT INTO b SELECT x * 100 FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	expectData(t, mustQuery(t, e, `SELECT y FROM b ORDER BY y`), "100", "200")
	if err := e.ExecScript(`CREATE TABLE c (z bigint); BOGUS;`); err == nil {
		t.Fatal("script error not reported")
	}
}

func TestCQBlockingNext(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Batch, 1)
	go func() {
		b, ok := cq.Next()
		if ok {
			done <- b
		}
		close(done)
	}()
	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(1), Timestamp(base.Add(time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	select {
	case b := <-done:
		if b.Rows[0][0].Int() != 1 {
			t.Fatalf("batch: %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never returned")
	}
	cq.Close()
	if _, ok := cq.Next(); ok {
		// A queued batch may remain; drain and re-check.
		if _, ok := cq.Next(); ok {
			t.Fatal("Next after close and drain should report done")
		}
	}
}
