module streamrel

go 1.22
