package streamrel

import (
	"fmt"
	"testing"
	"time"
)

// Steady-state allocation regression tests for the ingest hot path:
// Append → source.prepare (pooled batch block) → window pending buffer.
// The CQ window is sized so it never fires during the measurement, which
// isolates the per-row buffering cost from fire-time work. Budgets are
// deliberately loose (the measured steady state is well under 1
// alloc/row; the pre-overhaul code sat near 3) so the tests catch a
// reintroduced per-row allocation, not scheduler noise.

const allocBatch = 256

// measureIngestAllocs returns steady-state allocations per row appending
// pre-built 256-row batches into one never-firing CQ.
func measureIngestAllocs(t *testing.T, cfg Config) float64 {
	t.Helper()
	cfg.TraceSampleEvery = -1
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT v, count(*) FROM s
		<VISIBLE 100000000 ROWS ADVANCE 100000000 ROWS> GROUP BY v`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()

	const runs = 50
	// Pre-build every batch: row construction must not count against the
	// engine. AllocsPerRun invokes f runs+1 times; add warmup batches.
	batches := make([][]Row, runs+4)
	ts := MustTimestamp("2009-01-04 00:00:00")
	for i := range batches {
		rows := make([]Row, allocBatch)
		for j := range rows {
			ts = ts.Add(time.Millisecond)
			rows[j] = Row{Int(int64(j)), Timestamp(ts)}
		}
		batches[i] = rows
	}
	idx := 0
	push := func() {
		if err := e.Append("s", batches[idx]...); err != nil {
			t.Fatal(err)
		}
		idx++
	}
	// Warm the batch pools and grow the pending buffer past its first
	// doublings before measuring.
	push()
	push()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	perRun := testing.AllocsPerRun(runs, push)
	return perRun / allocBatch
}

func TestIngestAllocsPerRowSerial(t *testing.T) {
	perRow := measureIngestAllocs(t, Config{})
	t.Logf("serial steady-state: %.3f allocs/row", perRow)
	if perRow > 1.5 {
		t.Fatalf("serial ingest allocates %.3f/row, budget 1.5", perRow)
	}
}

func TestIngestAllocsPerRowWorker(t *testing.T) {
	perRow := measureIngestAllocs(t, Config{ParallelCQ: 2})
	t.Logf("worker-mode steady-state: %.3f allocs/row", perRow)
	if perRow > 1.5 {
		t.Fatalf("worker-mode ingest allocates %.3f/row, budget 1.5", perRow)
	}
}

// TestIngestAllocsReport is a convenience: -run TestIngestAllocsReport -v
// prints both modes side by side for DESIGN.md / README refreshes.
func TestIngestAllocsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("reporting only")
	}
	for _, m := range []struct {
		name string
		cfg  Config
	}{{"serial", Config{}}, {"worker", Config{ParallelCQ: 2}}} {
		fmt.Println(m.name, "allocs/row:", measureIngestAllocs(t, m.cfg))
	}
}
