// Benchmarks mirroring the experiment suite (DESIGN.md §4). Each
// experiment table produced by cmd/srbench has a testing.B counterpart
// here exercising the same code path, so `go test -bench=.` regenerates
// the evaluation's per-operation numbers.
package streamrel

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"streamrel/internal/baseline"
	"streamrel/internal/types"
	"streamrel/internal/workload"
)

// mustOpen opens an in-memory engine for benchmarks.
func mustOpen(b *testing.B, cfg Config) *Engine {
	b.Helper()
	e, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

func mustScript(b *testing.B, e *Engine, script string) {
	b.Helper()
	if err := e.ExecScript(script); err != nil {
		b.Fatal(err)
	}
}

// ------------------------------------------------------------------ F1

// benchWindowIngest measures per-event cost through one CQ with the given
// window clause (Figure 1's window kinds).
func benchWindowIngest(b *testing.B, windowClause string) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`)
	cq, err := e.Subscribe(`SELECT url, count(*) FROM url_stream ` + windowClause + ` GROUP BY url`)
	if err != nil {
		b.Fatal(err)
	}
	defer cq.Close()
	gen := workload.NewClickstream(workload.ClickConfig{Seed: 1, EventsPerSec: 5000})
	rows := gen.Take(b.N)
	b.ResetTimer()
	if err := e.Append("url_stream", rows...); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	cq.Drain()
}

func BenchmarkF1WindowTumbling(b *testing.B) {
	benchWindowIngest(b, `<ADVANCE '1 minute'>`)
}

func BenchmarkF1WindowSliding(b *testing.B) {
	benchWindowIngest(b, `<VISIBLE '5 minutes' ADVANCE '1 minute'>`)
}

func BenchmarkF1WindowRows(b *testing.B) {
	benchWindowIngest(b, `<VISIBLE 10000 ROWS ADVANCE 1000 ROWS>`)
}

// ------------------------------------------------------------------ E1

// e1Batch prepares a store-first engine with n raw security events over a
// fixed 10-minute horizon.
func e1Batch(b *testing.B, n int) *Engine {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE sec_events (
		etime timestamp, src_ip varchar, dst_port bigint, action varchar, bytes bigint)`)
	events := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 11, EventsPerSec: float64(n) / 600}).Take(n)
	if err := e.BulkInsert("sec_events", events); err != nil {
		b.Fatal(err)
	}
	return e
}

// e1Active prepares a continuous engine whose Active Table has absorbed n
// events.
func e1Active(b *testing.B, n int) *Engine {
	e := mustOpen(b, Config{})
	mustScript(b, e, `
		CREATE STREAM sec_stream (etime timestamp CQTIME USER, src_ip varchar, dst_port bigint, action varchar, bytes bigint);
		CREATE STREAM deny_now AS
			SELECT src_ip, count(*) AS denials, cq_close(*)
			FROM sec_stream <ADVANCE '1 minute'>
			WHERE action = 'deny' GROUP BY src_ip;
		CREATE TABLE deny_archive (src_ip varchar, denials bigint, stime timestamp);
		CREATE CHANNEL deny_ch FROM deny_now INTO deny_archive APPEND;
	`)
	gen := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 11, EventsPerSec: float64(n) / 600})
	if err := e.Append("sec_stream", gen.Take(n)...); err != nil {
		b.Fatal(err)
	}
	e.AdvanceTime("sec_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
	return e
}

const e1BatchReport = `SELECT src_ip, count(*) AS denials FROM sec_events
	WHERE action = 'deny' GROUP BY src_ip ORDER BY denials DESC, src_ip LIMIT 10`

const e1ActiveReport = `SELECT src_ip, sum(denials) AS denials FROM deny_archive
	GROUP BY src_ip ORDER BY denials DESC, src_ip LIMIT 10`

// BenchmarkE1SecurityReportBatch: the store-first report latency.
func BenchmarkE1SecurityReportBatch(b *testing.B) {
	e := e1Batch(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(e1BatchReport); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1SecurityReportActive: the same report from the Active Table.
func BenchmarkE1SecurityReportActive(b *testing.B) {
	e := e1Active(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(e1ActiveReport); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------ E2

// BenchmarkE2GrowthBatch: report latency vs raw volume (grows linearly).
func BenchmarkE2GrowthBatch(b *testing.B) {
	for _, n := range []int{25_000, 50_000, 100_000, 200_000} {
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			e := e1Batch(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(e1BatchReport); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2GrowthActive: report latency vs volume (stays near-flat).
func BenchmarkE2GrowthActive(b *testing.B) {
	for _, n := range []int{25_000, 50_000, 100_000, 200_000} {
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			e := e1Active(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(e1ActiveReport); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------------------ E3

// benchSharing measures per-event ingest cost with k identical CQs.
func benchSharing(b *testing.B, k int, share bool) {
	e := mustOpen(b, Config{DisableSharing: !share, DisableIVM: true})
	mustScript(b, e, `CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`)
	for i := 0; i < k; i++ {
		cq, err := e.Subscribe(`SELECT url, count(*), sum(length(client_ip))
			FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url`)
		if err != nil {
			b.Fatal(err)
		}
		defer cq.Close()
	}
	rows := workload.NewClickstream(workload.ClickConfig{Seed: 2, EventsPerSec: 5000}).Take(b.N)
	b.ResetTimer()
	if err := e.Append("url_stream", rows...); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE3SharingShared(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) { benchSharing(b, k, true) })
	}
}

func BenchmarkE3SharingUnshared(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) { benchSharing(b, k, false) })
	}
}

// ------------------------------------------------------------------ E4

// BenchmarkE4MVRefresh: one full periodic-MV recomputation over 100k raw
// events.
func BenchmarkE4MVRefresh(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `
		CREATE TABLE impressions (itime timestamp, campaign bigint, publisher bigint, cost bigint);
		CREATE TABLE mv_rev (campaign bigint, minute timestamp, revenue bigint);
	`)
	rows := workload.NewImpressions(workload.ImpressionConfig{Seed: 4}).Take(100_000)
	if err := e.BulkInsert("impressions", rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(`TRUNCATE TABLE mv_rev`); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Exec(`INSERT INTO mv_rev
			SELECT campaign, date_trunc('minute', itime), sum(cost)
			FROM impressions GROUP BY campaign, date_trunc('minute', itime)`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4ActiveTableMaintain: the continuous equivalent, per event.
func BenchmarkE4ActiveTableMaintain(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `
		CREATE STREAM imp_stream (itime timestamp CQTIME USER, campaign bigint, publisher bigint, cost bigint);
		CREATE STREAM rev_now AS
			SELECT campaign, sum(cost) AS revenue, cq_close(*)
			FROM imp_stream <ADVANCE '1 minute'> GROUP BY campaign;
		CREATE TABLE rev_active (campaign bigint, revenue bigint, stime timestamp);
		CREATE CHANNEL rev_ch FROM rev_now INTO rev_active APPEND;
	`)
	rows := workload.NewImpressions(workload.ImpressionConfig{Seed: 4, EventsPerSec: 5000}).Take(b.N)
	b.ResetTimer()
	if err := e.Append("imp_stream", rows...); err != nil {
		b.Fatal(err)
	}
}

// ------------------------------------------------------------------ E5

// BenchmarkE5JoinEnrichment: stream ⋈ dimension table per-event cost.
func BenchmarkE5JoinEnrichment(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `
		CREATE TABLE campaigns (id bigint, advertiser varchar, daily_budget bigint);
		CREATE STREAM imp_stream (itime timestamp CQTIME USER, campaign bigint, publisher bigint, cost bigint);
	`)
	var dim []Row
	for i := int64(0); i < 50; i++ {
		dim = append(dim, Row{Int(i), String(fmt.Sprintf("adv-%d", i%10)), Int(1000)})
	}
	if err := e.BulkInsert("campaigns", dim); err != nil {
		b.Fatal(err)
	}
	cq, err := e.Subscribe(`SELECT c.advertiser, sum(i.cost)
		FROM imp_stream <ADVANCE '1 minute'> i
		JOIN campaigns c ON i.campaign = c.id GROUP BY c.advertiser`)
	if err != nil {
		b.Fatal(err)
	}
	defer cq.Close()
	rows := workload.NewImpressions(workload.ImpressionConfig{Seed: 6, EventsPerSec: 5000}).Take(b.N)
	b.ResetTimer()
	if err := e.Append("imp_stream", rows...); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE5HistoricalComparison: the Example 5 current-vs-past join,
// per event.
func BenchmarkE5HistoricalComparison(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `
		CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar);
		CREATE STREAM urls_now AS
			SELECT url, count(*) AS scnt, cq_close(*) AS stime
			FROM url_stream <ADVANCE '1 minute'> GROUP BY url;
		CREATE TABLE urls_archive (url varchar, scnt bigint, stime timestamp);
		CREATE CHANNEL urls_ch FROM urls_now INTO urls_archive APPEND;
	`)
	cq, err := e.Subscribe(`
		select c.scnt, h.scnt, c.stime
		from (select sum(scnt) as scnt, cq_close(*) as stime
		      from urls_now <slices 1 windows>) c, urls_archive h
		where c.stime - '1 minute'::interval = h.stime AND h.url = '/page/0001'`)
	if err != nil {
		b.Fatal(err)
	}
	defer cq.Close()
	rows := workload.NewClickstream(workload.ClickConfig{Seed: 6, EventsPerSec: 5000}).Take(b.N)
	b.ResetTimer()
	if err := e.Append("url_stream", rows...); err != nil {
		b.Fatal(err)
	}
}

// ------------------------------------------------------------------ E6

// BenchmarkE6RecoveryRestart: WAL replay + CQ resume for a state with an
// Active Table.
func BenchmarkE6RecoveryRestart(b *testing.B) {
	dir := b.TempDir()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	mustScript(b, e, `
		CREATE STREAM sec_stream (etime timestamp CQTIME USER, src_ip varchar, dst_port bigint, action varchar, bytes bigint);
		CREATE STREAM deny_now AS
			SELECT src_ip, count(*) AS denials, cq_close(*)
			FROM sec_stream <ADVANCE '1 minute'>
			WHERE action = 'deny' GROUP BY src_ip;
		CREATE TABLE deny_archive (src_ip varchar, denials bigint, stime timestamp);
		CREATE CHANNEL deny_ch FROM deny_now INTO deny_archive APPEND;
	`)
	gen := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 9})
	if err := e.Append("sec_stream", gen.Take(100_000)...); err != nil {
		b.Fatal(err)
	}
	e.AdvanceTime("sec_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
	e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e2, err := Open(Config{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e2.Query(e1ActiveReport); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e2.Close()
		b.StartTimer()
	}
}

// BenchmarkE6ColdRecompute: the alternative — recomputing the report from
// the raw archive after restart.
func BenchmarkE6ColdRecompute(b *testing.B) {
	e := e1Batch(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(e1BatchReport); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------ E7

// BenchmarkE7MapReduceRefresh: one MR job over a 100k-event log.
func BenchmarkE7MapReduceRefresh(b *testing.B) {
	mr := &baseline.MapReduce{Dir: b.TempDir(), Partitions: 4}
	rows := workload.NewClickstream(workload.ClickConfig{Seed: 12}).Take(100_000)
	if err := mr.WriteInput("clicks", rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mr.Run("clicks",
			func(row types.Row, emit func(string, types.Row)) {
				emit(row[0].Str(), types.Row{types.NewInt(1)})
			},
			func(key string, values []types.Row, emit func(types.Row)) {
				emit(types.Row{types.NewString(key), types.NewInt(int64(len(values)))})
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7ContinuousRefresh: the continuous equivalent — the metric is
// already maintained; a refresh is reading the Active Table.
func BenchmarkE7ContinuousRefresh(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `
		CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar);
		CREATE STREAM hits_now AS
			SELECT url, count(*) AS hits, cq_close(*)
			FROM url_stream <ADVANCE '1 minute'> GROUP BY url;
		CREATE TABLE hits_archive (url varchar, hits bigint, stime timestamp);
		CREATE CHANNEL hits_ch FROM hits_now INTO hits_archive APPEND;
	`)
	gen := workload.NewClickstream(workload.ClickConfig{Seed: 12, EventsPerSec: 600})
	if err := e.Append("url_stream", gen.Take(100_000)...); err != nil {
		b.Fatal(err)
	}
	e.AdvanceTime("url_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT url, sum(hits) FROM hits_archive GROUP BY url`); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------ E8

// BenchmarkE8WindowCloseLatency: the cost of making one minute's results
// available (the continuous side of the availability-delay table).
func BenchmarkE8WindowCloseLatency(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT count(*), sum(v) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		b.Fatal(err)
	}
	defer cq.Close()
	base := MustTimestamp("2009-01-04 00:00:00")
	// Prime the clock.
	if err := e.Append("s", Row{Int(0), Timestamp(base)}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One heartbeat = one window close + result delivery.
		if err := e.AdvanceTime("s", base.Add(time.Duration(i+1)*time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cq.Pending() < b.N {
		b.Fatalf("expected ≥%d windows, got %d", b.N, cq.Pending())
	}
}

// BenchmarkE8BatchLoadAndReport: the batch side — load a minute's events
// and run the report (what must happen before results are available).
func BenchmarkE8BatchLoadAndReport(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE ev (url varchar, atime timestamp, client_ip varchar)`)
	gen := workload.NewClickstream(workload.ClickConfig{Seed: 13, EventsPerSec: 5000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		minute := gen.Take(2000)
		b.StartTimer()
		if err := e.BulkInsert("ev", minute); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Query(`SELECT url, count(*) FROM ev GROUP BY url ORDER BY 2 DESC LIMIT 10`); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------- core microbench

// BenchmarkIngestNoCQ: raw stream push cost with no subscribers.
func BenchmarkIngestNoCQ(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	rows := make([]Row, b.N)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Timestamp(time.UnixMicro(int64(i) * 1000))}
	}
	b.ResetTimer()
	if err := e.Append("s", rows...); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSnapshotQueryPoint: indexed point lookup.
func BenchmarkSnapshotQueryPoint(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE t (k bigint, v varchar)`)
	var rows []Row
	for i := int64(0); i < 10_000; i++ {
		rows = append(rows, Row{Int(i), String("value")})
	}
	if err := e.BulkInsert("t", rows); err != nil {
		b.Fatal(err)
	}
	mustScript(b, e, `CREATE INDEX t_k ON t (k)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(`SELECT v FROM t WHERE k = 5000`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableInsert: single-row SQL insert path.
func BenchmarkTableInsert(b *testing.B) {
	e := mustOpen(b, Config{})
	mustScript(b, e, `CREATE TABLE t (a bigint, s varchar)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(`INSERT INTO t VALUES (1, 'x')`); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------- parallel fan-out

// benchFanout measures aggregate ingest throughput with k continuous
// queries subscribed to one stream: b.N events flow through every CQ.
// Serial mode runs all k pipelines on the producer; parallel mode runs
// each on its own worker, so on a multicore machine the parallel/serial
// ratio approaches min(k, cores).
func benchFanout(b *testing.B, cqs, parallel int) {
	e := mustOpen(b, Config{DisableSharing: true, ParallelCQ: parallel})
	mustScript(b, e, `CREATE STREAM hits (url varchar, atime timestamp CQTIME USER, client_ip varchar)`)
	for i := 0; i < cqs; i++ {
		// Distinct predicates keep the plans unshareable and the per-CQ
		// work honest.
		cq, err := e.Subscribe(fmt.Sprintf(
			`SELECT client_ip, count(*) FROM hits <VISIBLE 2000 ROWS ADVANCE 500 ROWS> WHERE url <> '/none%d' GROUP BY client_ip`, i))
		if err != nil {
			b.Fatal(err)
		}
		defer cq.Close()
	}
	rows := workload.NewClickstream(workload.ClickConfig{Seed: 3, EventsPerSec: 5000}).Take(b.N)
	b.ResetTimer()
	for off := 0; off < len(rows); off += 256 {
		end := off + 256
		if end > len(rows) {
			end = len(rows)
		}
		if err := e.Append("hits", rows[off:end]...); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

// BenchmarkFanoutSerial: k CQs on one stream, synchronous engine.
func BenchmarkFanoutSerial(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cqs=%d", k), func(b *testing.B) { benchFanout(b, k, 0) })
	}
}

// BenchmarkFanoutParallel: the same fan-out with per-pipeline workers.
// Compare against BenchmarkFanoutSerial at GOMAXPROCS ≥ 4.
func BenchmarkFanoutParallel(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cqs=%d", k), func(b *testing.B) { benchFanout(b, k, 4) })
	}
}

// benchFanoutMultiProducer drives b.RunParallel producers, each feeding
// its own stream+CQ: with sharded source locking, producers to distinct
// streams never contend on a global mutex.
func benchFanoutMultiProducer(b *testing.B, parallel int) {
	const streams = 8
	e := mustOpen(b, Config{DisableSharing: true, ParallelCQ: parallel, LateRows: LateClamp})
	for i := 0; i < streams; i++ {
		mustScript(b, e, fmt.Sprintf(
			`CREATE STREAM p%d (url varchar, atime timestamp CQTIME USER, client_ip varchar)`, i))
		cq, err := e.Subscribe(fmt.Sprintf(
			`SELECT url, count(*) FROM p%d <VISIBLE 2000 ROWS ADVANCE 500 ROWS> GROUP BY url`, i))
		if err != nil {
			b.Fatal(err)
		}
		defer cq.Close()
	}
	var nextID atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("p%d", int(nextID.Add(1)-1)%streams)
		buf := make([]Row, 0, 256)
		ts := int64(0)
		flush := func() {
			if len(buf) == 0 {
				return
			}
			if err := e.Append(name, buf...); err != nil {
				b.Error(err)
			}
			buf = buf[:0]
		}
		for pb.Next() {
			ts += 1000
			buf = append(buf, Row{String("/a"), Timestamp(time.UnixMicro(ts)), String("ip")})
			if len(buf) == cap(buf) {
				flush()
			}
		}
		flush()
	})
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}

func BenchmarkFanoutMultiProducerSerial(b *testing.B)   { benchFanoutMultiProducer(b, 0) }
func BenchmarkFanoutMultiProducerParallel(b *testing.B) { benchFanoutMultiProducer(b, 4) }

// BenchmarkAppendBatch: PushBatch cost by batch size with no subscribers —
// the regression benchmark for hoisting per-batch invariants (source
// resolution, schema arity, timestamp validation) out of the row loop.
func BenchmarkAppendBatch(b *testing.B) {
	for _, size := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("rows=%d", size), func(b *testing.B) {
			e := mustOpen(b, Config{})
			mustScript(b, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
			rows := make([]Row, b.N)
			for i := range rows {
				rows[i] = Row{Int(int64(i)), Timestamp(time.UnixMicro(int64(i) * 1000))}
			}
			b.ResetTimer()
			for off := 0; off < len(rows); off += size {
				end := off + size
				if end > len(rows) {
					end = len(rows)
				}
				if err := e.Append("s", rows[off:end]...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
