package client_test

import (
	"testing"
	"time"

	"streamrel"
	"streamrel/client"
	"streamrel/internal/server"
	"streamrel/internal/types"
)

// startServer boots an in-memory engine behind a TCP server on a random
// port and returns a connected client.
func startServer(t *testing.T) *client.Client {
	return startServerCfg(t, streamrel.Config{})
}

func startServerCfg(t *testing.T, cfg streamrel.Config) *client.Client {
	t.Helper()
	eng, err := streamrel.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientExecQuery(t *testing.T) {
	c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`CREATE TABLE t (a bigint, b varchar)`); err != nil {
		t.Fatal(err)
	}
	n, err := c.Exec(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	if err != nil || n != 2 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	rows, err := c.Query(`SELECT a, b FROM t ORDER BY a DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 || rows.Data[0].String() != "2|y" || rows.Data[1].String() != "1|x" {
		t.Fatalf("rows: %v", rows.Data)
	}
	if rows.Columns[0].Name != "a" {
		t.Fatalf("columns: %v", rows.Columns)
	}
	// Errors come back as errors, connection stays usable.
	if _, err := c.Query(`SELECT * FROM missing`); err == nil {
		t.Fatal("expected error")
	}
	if err := c.Ping(); err != nil {
		t.Fatal("connection should survive a failed request")
	}
}

func TestClientSubscription(t *testing.T) {
	c := startServer(t)
	if _, err := c.Exec(`CREATE STREAM s (v bigint, at timestamp CQTIME USER)`); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(`SELECT count(*), sum(v) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	base := streamrel.MustTimestamp("2009-01-04 00:00:00")
	err = c.Append("s",
		client.Row{types.NewInt(5), types.NewTimestamp(base.Add(time.Second))},
		client.Row{types.NewInt(7), types.NewTimestamp(base.Add(2 * time.Second))},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Advance("s", base.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-sub.C:
		if len(b.Rows) != 1 || b.Rows[0][0].Int() != 2 || b.Rows[0][1].Int() != 12 {
			t.Fatalf("batch: %+v", b)
		}
		if !b.Close.Equal(base.Add(time.Minute)) {
			t.Fatalf("close: %v", b.Close)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no batch arrived")
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	// After close, further heartbeats produce nothing.
	c.Advance("s", base.Add(3*time.Minute))
	select {
	case b, ok := <-sub.C:
		if ok {
			t.Fatalf("batch after close: %+v", b)
		}
	case <-time.After(200 * time.Millisecond):
	}
}

func TestClientValueRoundTrip(t *testing.T) {
	c := startServer(t)
	if _, err := c.Exec(`CREATE TABLE vals (b boolean, i bigint, f double, s varchar, t timestamp, iv interval)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO vals VALUES
		(true, -42, 2.5, 'héllo', timestamp '2009-01-04 09:30:00', interval '90 minutes'),
		(NULL, NULL, NULL, NULL, NULL, NULL)`); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(`SELECT * FROM vals ORDER BY i NULLS LAST`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("rows: %v", rows.Data)
	}
	want := "true|-42|2.5|héllo|2009-01-04 09:30:00.000000|1 hour 30 minutes"
	var got string
	for _, r := range rows.Data {
		if !r[0].IsNull() {
			got = r.String()
		} else {
			for _, d := range r {
				if !d.IsNull() {
					t.Fatalf("NULL row came back with values: %v", r)
				}
			}
		}
	}
	if got != want {
		t.Fatalf("round trip: %q want %q", got, want)
	}
}

func TestConcurrentClients(t *testing.T) {
	c := startServer(t)
	if _, err := c.Exec(`CREATE TABLE t (a bigint)`); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				if _, err := c.Exec(`INSERT INTO t VALUES (1)`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.Query(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 200 {
		t.Fatalf("count = %v", rows.Data[0])
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	eng, _ := streamrel.Open(streamrel.Config{})
	defer eng.Close()
	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Calls now fail rather than hang.
	errCh := make(chan error, 1)
	go func() { errCh <- c.Ping() }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("ping succeeded after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ping hung after server close")
	}
}

func TestClientQueryArgs(t *testing.T) {
	c := startServer(t)
	if _, err := c.Exec(`CREATE TABLE t (a bigint, s varchar)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES ($1, $2), ($3, $4)`,
		types.NewInt(1), types.NewString("x"), types.NewInt(2), types.NewString("y")); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(`SELECT s FROM t WHERE a = $1`, types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str() != "y" {
		t.Fatalf("rows: %v", rows.Data)
	}
	if _, err := c.Query(`SELECT s FROM t WHERE a = $5`, types.NewInt(2)); err == nil {
		t.Fatal("bad placeholder should error over the wire")
	}
}

// TestClientStats drives traffic through the server, then checks that
// the STATS op reflects it: non-zero stream row counters and server
// command-latency histogram series flattened to (metric, value) rows.
func TestClientStats(t *testing.T) {
	// Parallel mode so the work-stealing scheduler's gauges register; the
	// subscribe below creates the pool.
	c := startServerCfg(t, streamrel.Config{ParallelCQ: 4})
	if _, err := c.Exec(`CREATE STREAM s (v bigint, at timestamp CQTIME USER)`); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	base := streamrel.MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 10; i++ {
		if err := c.Append("s", client.Row{types.NewInt(int64(i)), types.NewTimestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Advance("s", base.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	<-sub.C // window fired, so fire metrics exist too

	rows, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 2 || rows.Columns[0].Name != "metric" || rows.Columns[1].Name != "value" {
		t.Fatalf("columns: %v", rows.Columns)
	}
	vals := make(map[string]float64, len(rows.Data))
	for _, r := range rows.Data {
		vals[r[0].Str()] = r[1].Float()
	}
	for metric, min := range map[string]float64{
		`streamrel_stream_rows_total{stream="s"}`:               10,
		`streamrel_server_connections`:                          1,
		`streamrel_server_command_seconds{op="append"}_count`:   10,
		`streamrel_server_command_seconds{op="append"}_p50`:     0,
		`streamrel_pipeline_windows_total{pipe="1",stream="s"}`: 1,
		`streamrel_stream_sources`:                              1,
		`streamrel_sched_workers`:                               0,
		`streamrel_plan_groups`:                                 0,
	} {
		got, ok := vals[metric]
		if !ok {
			t.Errorf("STATS missing %s (have %d rows)", metric, len(rows.Data))
		} else if got < min {
			t.Errorf("%s = %v, want >= %v", metric, got, min)
		}
	}
}
