// Package client is the Go client for a streamrel server: Exec/Query for
// SQL, Append/Advance for stream ingestion, and Subscribe for continuous
// queries whose window batches arrive on a channel.
package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"streamrel/internal/server"
	"streamrel/internal/types"
)

// Value, Row, Column mirror the engine's public value types.
type (
	// Value is a single SQL value.
	Value = types.Datum
	// Row is a tuple of values.
	Row = types.Row
	// Column names and types one result column.
	Column = types.Column
)

// Rows is a materialized query result. Partial marks a scatter-gathered
// result from a shard router that is missing one or more downed shards'
// contributions (single-node servers never set it).
type Rows struct {
	Columns []Column
	Data    []Row
	Partial bool
}

// Batch is one continuous-query window result. Partial has the same
// meaning as Rows.Partial: some shards' window contributions are missing.
type Batch struct {
	Close   time.Time
	Rows    []Row
	Partial bool
}

// Subscription is a running continuous query on the server. Batches
// arrive on C; Close terminates it. WireColumns preserves the schema in
// wire form (with type names) for consumers that re-encode frames, such
// as the shard router.
type Subscription struct {
	Columns     []Column
	WireColumns []server.WireColumn
	C           <-chan Batch

	c      *Client
	handle int64
	ch     chan Batch
	sendMu sync.Mutex // serializes readLoop's batch sends with close(ch)
	closed bool       // guarded by sendMu
}

// Close stops the continuous query.
func (s *Subscription) Close() error {
	_, err := s.c.roundTrip(&server.Request{Op: "unsubscribe", CQ: s.handle})
	s.c.mu.Lock()
	_, ok := s.c.subs[s.handle]
	delete(s.c.subs, s.handle)
	s.c.mu.Unlock()
	if ok {
		// Removed from subs first, so readLoop starts no new sends for
		// this handle; sendMu waits out any send already in flight.
		s.sendMu.Lock()
		s.closed = true
		close(s.ch)
		s.sendMu.Unlock()
	}
	return err
}

// Options configures connection and per-request timeouts.
type Options struct {
	// DialTimeout bounds connection establishment (net.Dialer.Timeout);
	// 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// RPCTimeout bounds each request: the write gets a deadline and the
	// response wait a timer, so a hung server fails the call instead of
	// blocking forever. It does not apply to subscription batches (which
	// arrive whenever windows close) or to replication streams (which set
	// their own read deadlines). 0 disables it.
	RPCTimeout time.Duration
}

// DefaultDialTimeout bounds Dial when Options.DialTimeout is zero.
const DefaultDialTimeout = 10 * time.Second

// Client is a connection to a streamrel server. Safe for concurrent use.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	addr string
	opts Options

	mu      sync.Mutex
	nextID  int64
	pending map[int64]chan *server.Response
	subs    map[int64]*Subscription
	closed  bool
	readErr error
}

// Dial connects to a server with default timeouts.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a server with explicit timeouts.
func DialOptions(addr string, opts Options) (*Client, error) {
	conn, err := dialRaw(addr, opts)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		addr:    addr,
		opts:    opts,
		pending: make(map[int64]chan *server.Response),
		subs:    make(map[int64]*Subscription),
	}
	go c.readLoop()
	return c, nil
}

func dialRaw(addr string, opts Options) (net.Conn, error) {
	dt := opts.DialTimeout
	if dt <= 0 {
		dt = DefaultDialTimeout
	}
	d := net.Dialer{Timeout: dt}
	return d.Dial("tcp", addr)
}

// Close terminates the connection; outstanding calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	dec := json.NewDecoder(bufio.NewReaderSize(c.conn, 1<<20))
	for {
		var resp server.Response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			for h, sub := range c.subs {
				close(sub.ch)
				delete(c.subs, h)
			}
			c.mu.Unlock()
			return
		}
		if resp.Batch {
			c.mu.Lock()
			sub := c.subs[resp.CQ]
			c.mu.Unlock()
			if sub != nil {
				rows := make([]Row, len(resp.Rows))
				ok := true
				for i, wr := range resp.Rows {
					r, err := server.DecodeRow(wr)
					if err != nil {
						ok = false
						break
					}
					rows[i] = r
				}
				if ok {
					sub.sendMu.Lock()
					if !sub.closed {
						sub.ch <- Batch{Close: time.UnixMicro(resp.Close).UTC(), Rows: rows, Partial: resp.Partial}
					}
					sub.sendMu.Unlock()
				}
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			r := resp
			ch <- &r
		}
	}
}

func (c *Client) roundTrip(req *server.Request) (*server.Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("client: closed")
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("client: connection lost: %w", err)
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *server.Response, 1)
	c.pending[req.ID] = ch
	if c.opts.RPCTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opts.RPCTimeout))
	}
	err := c.enc.Encode(req)
	if c.opts.RPCTimeout > 0 {
		c.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.opts.RPCTimeout > 0 {
		t := time.NewTimer(c.opts.RPCTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("client: connection closed")
		}
		if resp.Error != "" {
			return nil, fmt.Errorf("%s", resp.Error)
		}
		return resp, nil
	case <-timeout:
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("client: request timed out after %v", c.opts.RPCTimeout)
	}
}

// Exec runs a DDL/DML statement with optional $n parameters and returns
// the affected row count.
func (c *Client) Exec(sql string, args ...Value) (int, error) {
	resp, err := c.roundTrip(&server.Request{Op: "exec", SQL: sql, Args: encodeArgs(args)})
	if err != nil {
		return 0, err
	}
	return resp.Affected, nil
}

// Query runs a snapshot SELECT with optional $n parameters.
func (c *Client) Query(sql string, args ...Value) (*Rows, error) {
	resp, err := c.roundTrip(&server.Request{Op: "query", SQL: sql, Args: encodeArgs(args)})
	if err != nil {
		return nil, err
	}
	return decodeRows(resp)
}

func encodeArgs(args []Value) []server.WireValue {
	if len(args) == 0 {
		return nil
	}
	return server.EncodeRow(args)
}

func decodeRows(resp *server.Response) (*Rows, error) {
	out := &Rows{Partial: resp.Partial}
	for _, wc := range resp.Columns {
		out.Columns = append(out.Columns, Column{Name: wc.Name})
	}
	for _, wr := range resp.Rows {
		r, err := server.DecodeRow(wr)
		if err != nil {
			return nil, err
		}
		out.Data = append(out.Data, r)
	}
	return out, nil
}

// Append pushes rows into a stream.
func (c *Client) Append(stream string, rows ...Row) error {
	wire := make([][]server.WireValue, len(rows))
	for i, r := range rows {
		wire[i] = server.EncodeRow(r)
	}
	_, err := c.roundTrip(&server.Request{Op: "append", Stream: stream, Rows: wire})
	return err
}

// Do sends one raw protocol request and returns the raw response. It is
// the escape hatch for proxies (the shard router) that forward wire rows
// without decoding them; normal applications use the typed methods. The
// request's ID is assigned by the client.
func (c *Client) Do(req *server.Request) (*server.Response, error) {
	return c.roundTrip(req)
}

// AppendWire pushes already-encoded rows into a stream, optionally
// carrying a trace ID (16-hex) across the hop. It avoids the
// decode/re-encode cost of Append for callers that hold wire rows.
func (c *Client) AppendWire(stream string, rows [][]server.WireValue, traceID string) error {
	_, err := c.roundTrip(&server.Request{Op: "append", Stream: stream, Rows: rows, Trace: traceID})
	return err
}

// Advance delivers a heartbeat moving the stream's clock to ts.
func (c *Client) Advance(stream string, ts time.Time) error {
	_, err := c.roundTrip(&server.Request{Op: "advance", Stream: stream, TS: ts.UnixMicro()})
	return err
}

// Subscribe starts a continuous query (with optional $n parameters);
// batches arrive on the returned subscription's channel.
func (c *Client) Subscribe(sql string, args ...Value) (*Subscription, error) {
	resp, err := c.roundTrip(&server.Request{Op: "subscribe", SQL: sql, Args: encodeArgs(args)})
	if err != nil {
		return nil, err
	}
	ch := make(chan Batch, 1024)
	sub := &Subscription{c: c, handle: resp.CQ, ch: ch, C: ch, WireColumns: resp.Columns}
	for _, wc := range resp.Columns {
		sub.Columns = append(sub.Columns, Column{Name: wc.Name})
	}
	c.mu.Lock()
	c.subs[resp.CQ] = sub
	c.mu.Unlock()
	return sub, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&server.Request{Op: "ping"})
	return err
}

// Promote asks a replica server to promote itself to primary; subsequent
// writes against it succeed.
func (c *Client) Promote() error {
	_, err := c.roundTrip(&server.Request{Op: "promote"})
	return err
}

// ReplStream is an open replication stream: after the JSON handshake the
// connection carries binary frames (internal/repl's format). Conn and R
// are exposed for the frame reader; the caller owns Close.
type ReplStream struct {
	Conn net.Conn
	R    *bufio.Reader
}

// Close terminates the stream.
func (s *ReplStream) Close() error { return s.Conn.Close() }

// Replicate opens a replication stream on a dedicated connection,
// resuming after fromLSN under primary run ID runID ("" and 0 for a
// fresh replica — the primary then starts with a full snapshot).
func (c *Client) Replicate(fromLSN uint64, runID string) (*ReplStream, error) {
	conn, err := dialRaw(c.addr, c.opts)
	if err != nil {
		return nil, err
	}
	if c.opts.RPCTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.opts.RPCTimeout))
	}
	req := &server.Request{ID: 1, Op: "replicate", LSN: fromLSN, Run: runID}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 1<<20)
	line, err := br.ReadBytes('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	var resp server.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Error != "" {
		conn.Close()
		return nil, fmt.Errorf("%s", resp.Error)
	}
	conn.SetDeadline(time.Time{})
	return &ReplStream{Conn: conn, R: br}, nil
}

// Stats returns the server's metrics as (metric, value) rows: counters
// and gauges one row each, histograms flattened into _count, _sum and
// _p50/_p95/_p99 quantile rows.
func (c *Client) Stats() (*Rows, error) {
	resp, err := c.roundTrip(&server.Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	return decodeRows(resp)
}

// Span is one completed trace span from the server's trace ring; spans
// sharing a Trace ID form one batch's journey through the engine.
type Span struct {
	// Trace is the 16-hex-digit trace ID.
	Trace string
	// Stage is the hop name (ingest, enqueue, pickup, window-fire,
	// cq-deliver, wal-append, wal-fsync, replica-apply).
	Stage string
	// Stream is the stream (or table) the hop touched.
	Stream string
	// Pipe identifies the pipeline, 0 when not applicable.
	Pipe int64
	// Start is the hop's wall-clock start.
	Start time.Time
	// Dur is the hop's duration.
	Dur time.Duration
	// Rows is the batch or result size at this hop.
	Rows int
	// Slow marks spans force-recorded by slow-fire detection.
	Slow bool
	// Mode tags window-fire spans with the fire strategy ("incremental",
	// "shared", "reexec"); empty on other stages.
	Mode string
}

// Traces returns the server's completed trace spans, oldest first. Empty
// when tracing is disabled on the server.
func (c *Client) Traces() ([]Span, error) {
	resp, err := c.roundTrip(&server.Request{Op: "trace"})
	if err != nil {
		return nil, err
	}
	out := make([]Span, len(resp.Spans))
	for i, ws := range resp.Spans {
		out[i] = Span{
			Trace:  ws.Trace,
			Stage:  ws.Stage,
			Stream: ws.Stream,
			Pipe:   ws.Pipe,
			Start:  time.UnixMicro(ws.StartUS).UTC(),
			Dur:    time.Duration(ws.DurNS),
			Rows:   ws.Rows,
			Slow:   ws.Slow,
			Mode:   ws.Mode,
		}
	}
	return out, nil
}
