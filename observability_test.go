package streamrel

import (
	"strings"
	"sync"
	"testing"
	"time"

	"streamrel/internal/metrics"
)

// gatherMap flattens the engine's registry into sample-ID → Sample.
func gatherMap(e *Engine) map[string]*metrics.Sample {
	out := map[string]*metrics.Sample{}
	for _, s := range e.Metrics().Gather() {
		out[s.ID()] = s
	}
	return out
}

// TestEngineMetricsEndToEnd drives a durable engine through ingest,
// window fires, a checkpoint and recovery, then checks that every
// subsystem's series is present and non-zero in both Gather and the
// Prometheus text rendering.
func TestEngineMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE TABLE tt (a bigint)`)
	mustExec(t, e, `INSERT INTO tt VALUES (1), (2)`)
	cq, err := e.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 20; i++ {
		if err := e.Append("s", Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AdvanceTime("s", base.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, ok := cq.Next(); !ok {
		t.Fatal("no window batch")
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	m := gatherMap(e)
	for id, wantCount := range map[string]bool{
		`streamrel_stream_rows_total{stream="s"}`:   false,
		`streamrel_wal_appends_total`:               false,
		`streamrel_wal_append_bytes_total`:          false,
		`streamrel_wal_fsync_seconds`:               true,
		`streamrel_checkpoint_seconds`:              true,
		`streamrel_window_fire_seconds{stream="s"}`: true,
		`streamrel_stream_sources`:                  false,
		`streamrel_stream_pipelines`:                false,
	} {
		s, ok := m[id]
		if !ok {
			t.Errorf("missing series %s", id)
			continue
		}
		if wantCount && s.Count == 0 {
			t.Errorf("%s: histogram count = 0", id)
		}
		if !wantCount && s.Value == 0 {
			t.Errorf("%s: value = 0", id)
		}
	}

	// The Prometheus rendering carries the same series, with cumulative
	// buckets for the fsync histogram.
	var b strings.Builder
	if err := e.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE streamrel_wal_fsync_seconds histogram",
		`streamrel_wal_fsync_seconds_bucket{le="+Inf"}`,
		"streamrel_wal_fsync_seconds_count",
		`streamrel_stream_rows_total{stream="s"} 20`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
	cq.Close()
	e.Close()

	// Reopen: recovery replay time lands in a gauge.
	e2, err := Open(Config{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, ok := gatherMap(e2)["streamrel_recovery_replay_seconds"]; !ok {
		t.Error("missing streamrel_recovery_replay_seconds after reopen")
	}
}

// TestStatsSnapshotInvariant hammers a row-window CQ from concurrent
// appenders while a reader polls Stats; every per-pipeline snapshot must
// satisfy windowsFired*advance <= rowsSeen (a fire can only be proven by
// rows already counted — see Pipeline.statsSnapshot).
func TestStatsSnapshotInvariant(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	const advance = 50
	cq, err := e.Subscribe(`SELECT count(*) FROM s <VISIBLE 100 ROWS ADVANCE 50 ROWS>`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()

	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	base := MustTimestamp("2009-01-04 00:00:00")
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// All rows share one timestamp: streams are ordered on
			// CQTIME, and row windows advance on counts, not time.
			for i := 0; i < perWriter; i++ {
				if err := e.Append("s", Row{Int(int64(i)), Timestamp(base)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			st := e.Stats()
			for _, p := range st.PerPipeline {
				if p.WindowsFired*advance > p.RowsSeen {
					t.Errorf("pipeline %s/%d: windowsFired=%d × advance=%d > rowsSeen=%d",
						p.Stream, p.ID, p.WindowsFired, advance, p.RowsSeen)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done

	st := e.Stats()
	if st.RowsProcessed < writers*perWriter {
		t.Fatalf("RowsProcessed = %d, want >= %d", st.RowsProcessed, writers*perWriter)
	}
	if st.WindowsFired == 0 {
		t.Fatal("no windows fired")
	}
}

// TestExplainAnalyze checks the instrumented-executor output: one line
// per operator with row counts, and a clean error for continuous plans.
func TestExplainAnalyze(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t (a bigint, b varchar)`)
	mustExec(t, e, `INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'z')`)
	res := mustExec(t, e, `EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1 ORDER BY a`)
	text := strings.Join(rowStrings(res.Rows), "\n")
	for _, want := range []string{
		"Snapshot Query (SQ): executed",
		"Sort", "Project", "Filter", "SeqScan  (rows=3",
		"output: 2 rows",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q in:\n%s", want, text)
		}
	}

	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	_, err := e.Exec(`EXPLAIN ANALYZE SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("want snapshot-only error, got %v", err)
	}
}
