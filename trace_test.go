package streamrel

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"streamrel/internal/trace"
)

// openTrace opens an engine for the tracing tests, failing the test on error.
func openTrace(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// stagesByTrace groups the recorded span stages by trace ID.
func stagesByTrace(spans []TraceSpan) map[uint64]map[trace.Stage]bool {
	out := make(map[uint64]map[trace.Stage]bool)
	for _, s := range spans {
		m := out[s.Trace]
		if m == nil {
			m = make(map[trace.Stage]bool)
			out[s.Trace] = m
		}
		m[s.Stage] = true
	}
	return out
}

// traceWithStages returns a trace ID whose span set covers every want stage.
func traceWithStages(spans []TraceSpan, want ...trace.Stage) (uint64, bool) {
	for id, stages := range stagesByTrace(spans) {
		ok := true
		for _, st := range want {
			if !stages[st] {
				ok = false
				break
			}
		}
		if ok {
			return id, true
		}
	}
	return 0, false
}

// driveOneWindow creates a stream + CQ, pushes rows, and closes one window.
func driveOneWindow(t *testing.T, e *Engine, rows int) {
	t.Helper()
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < rows; i++ {
		if err := e.Append("s", Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	e.AdvanceTime("s", base.Add(2*time.Minute))
	if _, ok := cq.Next(); !ok {
		t.Fatal("CQ produced no window")
	}
	cq.Close()
}

// TestTraceChainSync is the acceptance check: a sampled batch yields one
// queryable span chain ingest -> enqueue -> window-fire -> cq-deliver.
func TestTraceChainSync(t *testing.T) {
	e := openTrace(t, Config{TraceSampleEvery: 1})
	defer e.Close()
	driveOneWindow(t, e, 3)

	spans := e.Traces()
	if len(spans) == 0 {
		t.Fatal("no spans recorded with TraceSampleEvery=1")
	}
	id, ok := traceWithStages(spans,
		trace.StageIngest, trace.StageEnqueue, trace.StageWindowFire, trace.StageCQDeliver)
	if !ok {
		t.Fatalf("no trace covers ingest/enqueue/window-fire/cq-deliver; spans: %+v", spans)
	}
	for _, s := range spans {
		if s.Trace == id && s.Stage == trace.StageIngest && s.Start == 0 {
			t.Fatal("ingest span missing start timestamp")
		}
	}

	// Trace counters flow through the shared metrics registry.
	g := gatherMap(e)
	if smp := g["streamrel_traces_sampled_total"]; smp == nil || smp.Value < 1 {
		t.Fatalf("streamrel_traces_sampled_total missing or zero: %+v", smp)
	}
	if smp := g["streamrel_trace_ring_spans"]; smp == nil || smp.Value < 4 {
		t.Fatalf("streamrel_trace_ring_spans missing or < 4: %+v", smp)
	}
}

// TestTraceChainParallel checks the worker-pickup hop appears when
// pipelines run on their own goroutines.
func TestTraceChainParallel(t *testing.T) {
	e := openTrace(t, Config{TraceSampleEvery: 1, ParallelCQ: 2, DisableSharing: true})
	defer e.Close()
	driveOneWindow(t, e, 3)

	if _, ok := traceWithStages(e.Traces(),
		trace.StageIngest, trace.StageEnqueue, trace.StagePickup,
		trace.StageWindowFire, trace.StageCQDeliver); !ok {
		t.Fatalf("no trace covers the parallel chain incl. pickup; spans: %+v", e.Traces())
	}
}

// TestTraceWALSpans checks channel writes carry the batch's trace into the
// WAL append + fsync spans.
func TestTraceWALSpans(t *testing.T) {
	e := openTrace(t, Config{Dir: t.TempDir(), SyncWAL: true, TraceSampleEvery: 1})
	defer e.Close()
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE STREAM s_now AS
		SELECT count(*) AS n, cq_close(*) FROM s <ADVANCE '1 minute'>`)
	mustExec(t, e, `CREATE TABLE s_archive (n bigint, stime timestamp)`)
	mustExec(t, e, `CREATE CHANNEL s_ch FROM s_now INTO s_archive APPEND`)

	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 3; i++ {
		if err := e.Append("s", Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	e.AdvanceTime("s", base.Add(2*time.Minute))

	if _, ok := traceWithStages(e.Traces(),
		trace.StageIngest, trace.StageWindowFire, trace.StageWALAppend, trace.StageWALFsync); !ok {
		t.Fatalf("no trace covers ingest -> window-fire -> wal-append -> wal-fsync; spans: %+v", e.Traces())
	}
}

// TestSlowFireForcedTrace checks slow fires bypass sampling: with sampling
// effectively off, a fire over the threshold still gets a trace ID, Slow
// spans, a counter bump, and a structured log line.
func TestSlowFireForcedTrace(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	e := openTrace(t, Config{
		TraceSampleEvery:  1 << 30, // never sample in this test
		SlowFireThreshold: time.Nanosecond,
		Logger:            logger,
	})
	defer e.Close()
	driveOneWindow(t, e, 2)

	slow := false
	for _, s := range e.Traces() {
		if s.Stage == trace.StageWindowFire && s.Slow && s.Trace != 0 {
			slow = true
		}
	}
	if !slow {
		t.Fatalf("no Slow window-fire span with a forced trace ID; spans: %+v", e.Traces())
	}
	if smp := gatherMap(e)["streamrel_slow_fires_total"]; smp == nil || smp.Value < 1 {
		t.Fatalf("streamrel_slow_fires_total missing or zero: %+v", smp)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow window fire") {
		t.Fatalf("slow-fire log line missing; got %q", logged)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestTracingDisabled checks a negative sample rate turns tracing off
// entirely without breaking the pipeline.
func TestTracingDisabled(t *testing.T) {
	e := openTrace(t, Config{TraceSampleEvery: -1})
	defer e.Close()
	if e.Tracer() != nil {
		t.Fatal("tracer built despite negative TraceSampleEvery")
	}
	driveOneWindow(t, e, 3)
	if spans := e.Traces(); len(spans) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(spans))
	}
}

// TestTraceConcurrentReads races concurrent appends against Traces()
// snapshots (run under -race).
func TestTraceConcurrentReads(t *testing.T) {
	e := openTrace(t, Config{TraceSampleEvery: 1, ParallelCQ: 2, DisableSharing: true,
		LateRows: LateClamp, TraceRingSpans: 256})
	defer e.Close()
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 second'>`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	go func() {
		for {
			if _, ok := cq.Next(); !ok {
				return
			}
		}
	}()

	base := MustTimestamp("2009-01-04 00:00:00")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ts := base.Add(time.Duration(w*100+i) * 10 * time.Millisecond)
				if err := e.Append("s", Row{Int(int64(i)), Timestamp(ts)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			e.AdvanceTime("s", base.Add(time.Minute))
			if len(e.Traces()) == 0 {
				t.Fatal("no spans recorded during concurrent load")
			}
			return
		default:
			e.Traces()
		}
	}
}
