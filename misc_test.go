package streamrel

import (
	"strings"
	"testing"
	"time"
)

func TestExplainVariants(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE TABLE d (k bigint)`)

	// A CQ with a join cannot take the shared path; EXPLAIN says so.
	res := mustExec(t, e, `EXPLAIN SELECT count(*) FROM s <ADVANCE '1 minute'> x JOIN d ON x.v = d.k`)
	out := strings.Join(rowStrings(res.Rows), "\n")
	if !strings.Contains(out, "not applicable") {
		t.Fatalf("explain join CQ:\n%s", out)
	}
	// cq_close column position is reported.
	res = mustExec(t, e, `EXPLAIN SELECT v, cq_close(*) FROM s <ADVANCE '1 minute'>`)
	out = strings.Join(rowStrings(res.Rows), "\n")
	if !strings.Contains(out, "cq_close(*) output column: 2") {
		t.Fatalf("explain close col:\n%s", out)
	}
	// EXPLAIN of non-SELECT errors.
	if _, err := e.Exec(`EXPLAIN INSERT INTO d VALUES (1)`); err == nil {
		t.Fatal("EXPLAIN INSERT should error")
	}
}

func TestCheckpointNoopInMemory(t *testing.T) {
	e := openMem(t)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotentAndStopsWork(t *testing.T) {
	e, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("double close")
	}
	// Durable writes after close fail (WAL is closed).
	if _, err := e.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestChannelAtomicityAtBoundary(t *testing.T) {
	// A REPLACE channel's delete+insert is one transaction: a concurrent
	// reader never observes the empty intermediate state. Since window
	// closes are synchronous here, we verify via MVCC: a snapshot taken
	// during the previous window still sees old rows, a snapshot after the
	// close sees exactly the new ones.
	e := openMem(t)
	err := e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);
		CREATE STREAM latest AS SELECT sum(v) AS total, cq_close(*) FROM s <ADVANCE '1 minute'>;
		CREATE TABLE latest_t (total bigint, stime timestamp);
		CREATE CHANNEL ch FROM latest INTO latest_t REPLACE;
	`)
	if err != nil {
		t.Fatal(err)
	}
	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(5), Timestamp(base.Add(time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	expectData(t, mustQuery(t, e, `SELECT count(*), sum(total) FROM latest_t`), "1|5")
	e.Append("s", Row{Int(9), Timestamp(base.Add(61 * time.Second))})
	e.AdvanceTime("s", base.Add(2*time.Minute))
	// Exactly one row at all times after a close — never zero, never two.
	expectData(t, mustQuery(t, e, `SELECT count(*), sum(total) FROM latest_t`), "1|9")
}

func TestShowEmptyKinds(t *testing.T) {
	e := openMem(t)
	for _, what := range []string{"TABLES", "STREAMS", "VIEWS", "CHANNELS"} {
		res := mustExec(t, e, "SHOW "+what)
		if len(res.Rows.Data) != 0 {
			t.Fatalf("SHOW %s on empty catalog: %v", what, res.Rows.Data)
		}
	}
}

func TestInsertIntoDerivedRejected(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE STREAM d AS SELECT count(*), cq_close(*) FROM s <ADVANCE '1 minute'>`)
	if _, err := e.Exec(`INSERT INTO d VALUES (1, timestamp '2009-01-04')`); err == nil {
		t.Fatal("insert into derived stream should fail")
	}
}

func TestStreamingViewOverDerived(t *testing.T) {
	e := openMem(t)
	err := e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);
		CREATE STREAM d AS SELECT v, at FROM s <ADVANCE '1 minute'> WHERE v > 0;
		CREATE VIEW dv AS SELECT v FROM d <SLICES 1 WINDOWS> WHERE v < 100;
	`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := e.Subscribe(`SELECT count(*) FROM dv`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(50), Timestamp(base.Add(time.Second))})
	e.Append("s", Row{Int(500), Timestamp(base.Add(2 * time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	b, ok := cq.TryNext()
	if !ok || b.Rows[0][0].Int() != 1 {
		t.Fatalf("view over derived: %+v ok=%v", b, ok)
	}
}
