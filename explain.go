package streamrel

import (
	"fmt"
	"strings"
	"time"

	"streamrel/internal/exec"
	"streamrel/internal/plan"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// execExplain reports what the planner decided for a statement: snapshot
// vs continuous, the windowed stream, whether the shared slice path
// applies, and the output schema. (Operator-level plan trees are an
// implementation detail; this surfaces the decisions that matter in this
// architecture.)
func (e *Engine) execExplain(s *sql.Explain) (*Result, error) {
	sel, ok := s.Stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("streamrel: EXPLAIN supports SELECT")
	}
	p, err := e.planner.BuildSelect(sel)
	if err != nil {
		return nil, err
	}
	if s.Analyze {
		return e.execExplainAnalyze(p)
	}
	var lines []string
	if p.Stream == nil {
		lines = append(lines, "Snapshot Query (SQ): runs once over an MVCC snapshot")
	} else {
		lines = append(lines, "Continuous Query (CQ): runs per window close")
		lines = append(lines, fmt.Sprintf("  stream: %s %s", p.Stream.Name, p.Stream.Window.String()))
		if _, reason := p.DeltaProgram(); reason != "" {
			lines = append(lines, "  mode: reexec ("+reason+")")
		} else if e.cfg.DisableIVM {
			lines = append(lines, "  mode: reexec (incremental maintenance disabled)")
		} else {
			lines = append(lines, "  mode: incremental (delta-maintained per-group state; fires emit without re-scanning the window)")
		}
		if p.StreamAgg != nil {
			lines = append(lines, "  shared slice aggregation: eligible")
			lines = append(lines, "  fingerprint: "+p.StreamAgg.Fingerprint)
			gkey, subs, skey, sm := e.rt.SharingInfo(p)
			if gkey != "" {
				// Live plan-sharing group this CQ would subscribe to (count
				// is current subscribers; this CQ would be subs+1).
				lines = append(lines, fmt.Sprintf("  shared: %s (%d subscribers)", gkey, subs))
			} else if e.cfg.DisablePlanSharing || e.cfg.DisableSharing {
				lines = append(lines, "  shared: plan sharing disabled")
			}
			if skey != "" {
				lines = append(lines, fmt.Sprintf("  shared slices: %s (%d members)", skey, sm))
			}
		} else {
			lines = append(lines, "  shared slice aggregation: not applicable (per-window plan)")
		}
		if e.cfg.ParallelCQ > 0 {
			lines = append(lines, fmt.Sprintf("  sched: stealing (%d workers, mailbox bound %d)",
				e.rt.SchedWorkers(), e.cfg.ParallelCQ))
		} else {
			lines = append(lines, "  sched: synchronous (producer-driven)")
		}
		if p.CloseCol >= 0 {
			lines = append(lines, fmt.Sprintf("  cq_close(*) output column: %d", p.CloseCol+1))
		}
	}
	lines = append(lines, "  output: "+p.Columns.String())
	rows := make([]Row, len(lines))
	for i, l := range lines {
		rows[i] = Row{types.NewString(l)}
	}
	return &Result{Rows: &Rows{
		Columns: Schema{{Name: "plan", Type: types.TypeString}},
		Data:    rows,
	}}, nil
}

// execExplainAnalyze executes a snapshot query with every operator
// instrumented and reports the tree with per-operator row counts and
// inclusive wall times — the executor-level observability that per-window
// CQ metrics (streamrel_window_fire_seconds) aggregate over time.
func (e *Engine) execExplainAnalyze(p *plan.Plan) (*Result, error) {
	if p.Stream != nil {
		return nil, fmt.Errorf("streamrel: EXPLAIN ANALYZE runs the query once, so it supports snapshot queries; continuous queries report per-window metrics instead (STATS, /metrics)")
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx := e.execCtx()
	start := time.Now()
	root, stats := exec.Instrument(p.Build(plan.Input{}))
	out, err := exec.Drain(ctx, root)
	if err != nil {
		return nil, err
	}
	total := time.Since(start)
	lines := []string{"Snapshot Query (SQ): executed"}
	for _, st := range stats {
		lines = append(lines, fmt.Sprintf("%s%s  (rows=%d, time=%s)",
			strings.Repeat("  ", st.Depth+1), st.Name, st.Rows, st.Elapsed.Round(time.Microsecond)))
	}
	lines = append(lines, fmt.Sprintf("  output: %d rows in %s", len(out), total.Round(time.Microsecond)))
	rows := make([]Row, len(lines))
	for i, l := range lines {
		rows[i] = Row{types.NewString(l)}
	}
	return &Result{Rows: &Rows{
		Columns: Schema{{Name: "plan", Type: types.TypeString}},
		Data:    rows,
	}}, nil
}
