package streamrel

import (
	"fmt"

	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// execExplain reports what the planner decided for a statement: snapshot
// vs continuous, the windowed stream, whether the shared slice path
// applies, and the output schema. (Operator-level plan trees are an
// implementation detail; this surfaces the decisions that matter in this
// architecture.)
func (e *Engine) execExplain(s *sql.Explain) (*Result, error) {
	sel, ok := s.Stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("streamrel: EXPLAIN supports SELECT")
	}
	p, err := e.planner.BuildSelect(sel)
	if err != nil {
		return nil, err
	}
	var lines []string
	if p.Stream == nil {
		lines = append(lines, "Snapshot Query (SQ): runs once over an MVCC snapshot")
	} else {
		lines = append(lines, "Continuous Query (CQ): runs per window close")
		lines = append(lines, fmt.Sprintf("  stream: %s %s", p.Stream.Name, p.Stream.Window.String()))
		if p.StreamAgg != nil {
			lines = append(lines, "  shared slice aggregation: eligible")
			lines = append(lines, "  fingerprint: "+p.StreamAgg.Fingerprint)
		} else {
			lines = append(lines, "  shared slice aggregation: not applicable (per-window plan)")
		}
		if p.CloseCol >= 0 {
			lines = append(lines, fmt.Sprintf("  cq_close(*) output column: %d", p.CloseCol+1))
		}
	}
	lines = append(lines, "  output: "+p.Columns.String())
	rows := make([]Row, len(lines))
	for i, l := range lines {
		rows[i] = Row{types.NewString(l)}
	}
	return &Result{Rows: &Rows{
		Columns: Schema{{Name: "plan", Type: types.TypeString}},
		Data:    rows,
	}}, nil
}
