package streamrel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// ivmBase is a fixed stream origin used across the IVM tests.
var ivmBase = MustTimestamp("2009-01-04 00:00:00").UnixMicro()

// collectBatches drains a CQ's queued batches into comparable strings
// ("close|row|row|…"), one per window fire.
func collectBatches(t *testing.T, cq *CQ) []string {
	t.Helper()
	var out []string
	for {
		b, ok := cq.TryNext()
		if !ok {
			return out
		}
		var sb strings.Builder
		sb.WriteString(b.Close.UTC().Format(time.RFC3339Nano))
		for _, r := range b.Rows {
			sb.WriteString("|")
			sb.WriteString(r.String())
		}
		out = append(out, sb.String())
	}
}

// TestIVMModeSelection pins where the incremental path engages: eligible
// shapes report Incremental, ineligible ones fall back, DisableIVM turns
// it off, and EXPLAIN names the mode with the fallback reason.
func TestIVMModeSelection(t *testing.T) {
	cases := []struct {
		q           string
		incremental bool
	}{
		{`SELECT url, count(*), sum(v), avg(v), min(v), max(v)
			FROM s <VISIBLE '1 minute' ADVANCE '10 seconds'> GROUP BY url`, true},
		{`SELECT count(*) FROM s <VISIBLE '30 seconds' ADVANCE '30 seconds'>`, true},
		{`SELECT sum(v) FROM s <VISIBLE '1 minute' ADVANCE '20 seconds'> WHERE url = '/a'`, true},
		// count(DISTINCT …) has no retract form.
		{`SELECT url, count(distinct v) FROM s <VISIBLE '1 minute' ADVANCE '10 seconds'> GROUP BY url`, false},
		// stddev has no delta form.
		{`SELECT stddev(v) FROM s <VISIBLE '1 minute' ADVANCE '10 seconds'>`, false},
		// Row windows re-execute.
		{`SELECT url, count(*) FROM s <VISIBLE 100 ROWS ADVANCE 10 ROWS> GROUP BY url`, false},
		// VISIBLE not a multiple of ADVANCE.
		{`SELECT count(*) FROM s <VISIBLE '45 seconds' ADVANCE '20 seconds'>`, false},
		// Projection without aggregation re-executes per window.
		{`SELECT url FROM s <VISIBLE '1 minute' ADVANCE '10 seconds'> WHERE v > 3`, false},
	}
	e := openMemMode(t, "incremental")
	mustExec(t, e, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint)`)
	for i, c := range cases {
		cq, err := e.Subscribe(c.q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if cq.Incremental != c.incremental {
			t.Errorf("case %d: Incremental = %v, want %v\n%s", i, cq.Incremental, c.incremental, c.q)
		}
		ex := mustExec(t, e, "EXPLAIN "+c.q)
		plan := strings.Join(rowStrings(ex.Rows), "\n")
		wantMode := "mode: incremental"
		if !c.incremental {
			wantMode = "mode: reexec ("
		}
		if !strings.Contains(plan, wantMode) {
			t.Errorf("case %d: EXPLAIN missing %q:\n%s", i, wantMode, plan)
		}
		cq.Close()
	}

	// DisableIVM restores the old paths and EXPLAIN says so.
	off := openMemMode(t, "shared")
	mustExec(t, off, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint)`)
	cq, err := off.Subscribe(cases[0].q)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	if cq.Incremental {
		t.Error("DisableIVM engine still reports Incremental")
	}
	if !cq.SharedAggregation {
		t.Error("DisableIVM engine should fall back to shared slices for this shape")
	}
	ex := mustExec(t, off, "EXPLAIN "+cases[0].q)
	plan := strings.Join(rowStrings(ex.Rows), "\n")
	if !strings.Contains(plan, "mode: reexec (incremental maintenance disabled)") {
		t.Errorf("EXPLAIN with DisableIVM:\n%s", plan)
	}
}

// ivmWorkloadQueries is the CQ set the equivalence tests run: every delta
// kind, NULL group keys, NULL aggregate inputs, a filter, a scalar
// aggregate (fires defaults over empty windows), and HAVING above the
// delta-maintained state.
var ivmWorkloadQueries = []string{
	`SELECT url, count(*), count(v), sum(v), avg(v), min(v), max(v)
		FROM s <VISIBLE '60 seconds' ADVANCE '10 seconds'> GROUP BY url`,
	`SELECT count(*), sum(v), min(v), max(v) FROM s <VISIBLE '30 seconds' ADVANCE '10 seconds'>`,
	`SELECT url, sum(v) FROM s <VISIBLE '40 seconds' ADVANCE '20 seconds'>
		WHERE v % 3 = 0 GROUP BY url HAVING count(*) > 1`,
	`SELECT url, min(f), max(f), sum(f) FROM s <VISIBLE '50 seconds' ADVANCE '10 seconds'> GROUP BY url`,
}

// ivmRandomRow draws a row with NULLable group key, NULLable bigint and a
// double that stays integer-valued (exact under any add/subtract order,
// so incremental float arithmetic is bit-identical to re-execution).
func ivmRandomRow(rng *rand.Rand, ts int64) Row {
	url := Value(Null)
	if rng.Intn(5) > 0 {
		url = String(fmt.Sprintf("/u%d", rng.Intn(4)))
	}
	v := Value(Null)
	if rng.Intn(4) > 0 {
		v = Int(int64(rng.Intn(100)))
	}
	return Row{url, Timestamp(time.UnixMicro(ts).UTC()), v, Float(float64(rng.Intn(1000)))}
}

// runIVMWorkload feeds a deterministic random event sequence (bursts,
// quiet gaps spanning empty windows, heartbeats) through one engine and
// returns each CQ's full fire transcript.
func runIVMWorkload(t *testing.T, e *Engine, seed int64, parallelFlush bool) [][]string {
	t.Helper()
	mustExec(t, e, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint, f double)`)
	cqs := make([]*CQ, len(ivmWorkloadQueries))
	for i, q := range ivmWorkloadQueries {
		cq, err := e.Subscribe(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		defer cq.Close()
		cqs[i] = cq
	}
	rng := rand.New(rand.NewSource(seed))
	ts := ivmBase
	for step := 0; step < 120; step++ {
		switch rng.Intn(4) {
		case 0: // quiet gap, then a heartbeat that fires empty windows
			ts += int64(rng.Intn(90)+1) * 1_000_000
			e.AdvanceTime("s", time.UnixMicro(ts).UTC())
		default:
			n := rng.Intn(40) + 1
			rows := make([]Row, n)
			for i := range rows {
				ts += int64(rng.Intn(900_000))
				rows[i] = ivmRandomRow(rng, ts)
			}
			if err := e.Append("s", rows...); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.AdvanceTime("s", time.UnixMicro(ts).Add(2*time.Minute).UTC())
	if parallelFlush {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	out := make([][]string, len(cqs))
	for i, cq := range cqs {
		out[i] = collectBatches(t, cq)
	}
	return out
}

// TestIVMEquivalenceReexec is the incremental pipeline against its
// re-exec twin: identical random batches and advances must produce
// byte-identical fire transcripts — including NULL groups, empty-window
// fires and min/max retractions.
func TestIVMEquivalenceReexec(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		inc := openMemMode(t, "incremental")
		ref := openMemMode(t, "reexec")
		got := runIVMWorkload(t, inc, seed, false)
		want := runIVMWorkload(t, ref, seed, false)
		for qi := range ivmWorkloadQueries {
			if len(got[qi]) == 0 {
				t.Fatalf("seed %d query %d: no fires", seed, qi)
			}
			if a, b := strings.Join(got[qi], "\n"), strings.Join(want[qi], "\n"); a != b {
				t.Fatalf("seed %d query %d transcripts differ:\nincremental:\n%s\nreexec:\n%s", seed, qi, a, b)
			}
		}
	}
}

// TestIVMParallelRetraction runs the incremental workload under
// ParallelCQ worker mode — slice expiry (on the worker) racing ingest of
// the same hot groups (on the producer) — and checks the transcripts
// against the serial incremental engine. Run under -race this doubles as
// the expiry-vs-ingest data-race probe for per-pipeline IVM state.
func TestIVMParallelRetraction(t *testing.T) {
	for seed := int64(7); seed <= 9; seed++ {
		par, err := Open(Config{ParallelCQ: 4})
		if err != nil {
			t.Fatal(err)
		}
		serial := openMemMode(t, "incremental")
		got := runIVMWorkload(t, par, seed, true)
		want := runIVMWorkload(t, serial, seed, false)
		for qi := range ivmWorkloadQueries {
			if a, b := strings.Join(got[qi], "\n"), strings.Join(want[qi], "\n"); a != b {
				t.Fatalf("seed %d query %d parallel != serial:\n%s\n--\n%s", seed, qi, a, b)
			}
		}
		par.Close()
	}
}

// TestIVMRecoveryActiveTables proves the restart story: a REPLACE channel
// archives an incremental CQ into an Active Table; after a crash-restart
// the resumed pipeline rebuilds its state from the stream (recovery
// suppresses already-archived closes via the table's cq_close high-water
// mark), and once the window refills past the resume point the Active
// Table is byte-identical to (a) an engine that never restarted and (b)
// the same restart with IVM disabled.
func TestIVMRecoveryActiveTables(t *testing.T) {
	const ddl = `
		CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint);
		CREATE STREAM agg AS
			SELECT cq_close(*) AS closed, url, count(*) AS n, sum(v) AS total
			FROM s <VISIBLE '30 seconds' ADVANCE '10 seconds'> GROUP BY url;
		CREATE TABLE agg_t (closed timestamp, url varchar, n bigint, total bigint);
		CREATE CHANNEL agg_ch FROM agg INTO agg_t REPLACE;
	`
	rows := func(rng *rand.Rand, ts *int64, n int) []Row {
		out := make([]Row, n)
		for i := range out {
			*ts += int64(rng.Intn(800_000) + 1)
			out[i] = Row{String(fmt.Sprintf("/u%d", rng.Intn(3))),
				Timestamp(time.UnixMicro(*ts).UTC()), Int(int64(rng.Intn(50)))}
		}
		return out
	}
	dump := func(e *Engine) string {
		r := mustQuery(t, e, `SELECT * FROM agg_t ORDER BY closed, url`)
		var sb strings.Builder
		for _, row := range r.Data {
			sb.WriteString(row.String() + "\n")
		}
		return sb.String()
	}
	// run drives the same workload with an optional mid-stream restart.
	run := func(dir string, disableIVM, restart bool) string {
		cfg := Config{Dir: dir, DisableIVM: disableIVM}
		e, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ExecScript(ddl); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		ts := ivmBase
		if err := e.Append("s", rows(rng, &ts, 500)...); err != nil {
			t.Fatal(err)
		}
		e.AdvanceTime("s", time.UnixMicro(ts).UTC())
		if restart {
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			if e, err = Open(cfg); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if !disableIVM && st.IncrementalPipes == 0 {
				t.Fatal("restarted engine lost the incremental pipeline")
			}
		}
		// Phase 2 refills the window far past the resume point; the final
		// REPLACE emission then reflects a fully rebuilt state. Advance only
		// one ADVANCE step past the data so the last fired window still
		// covers rows (a later boundary would REPLACE with an empty window).
		if err := e.Append("s", rows(rng, &ts, 2000)...); err != nil {
			t.Fatal(err)
		}
		e.AdvanceTime("s", time.UnixMicro(ts).Add(10*time.Second).UTC())
		out := dump(e)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	straight := run(t.TempDir(), false, false)
	restarted := run(t.TempDir(), false, true)
	reexec := run(t.TempDir(), true, true)
	if straight == "" {
		t.Fatal("empty Active Table")
	}
	if restarted != straight {
		t.Fatalf("restarted IVM Active Table diverged:\nno restart:\n%s\nrestarted:\n%s", straight, restarted)
	}
	if restarted != reexec {
		t.Fatalf("IVM vs reexec restart diverged:\nivm:\n%s\nreexec:\n%s", restarted, reexec)
	}
}

// TestIVMGroupsVanish pins retraction end-to-end: a group whose rows all
// expire stops being emitted, and a scalar aggregate over a drained
// window returns to its SQL defaults (count 0, NULL sum) — exactly what
// re-execution over an empty buffer yields.
func TestIVMGroupsVanish(t *testing.T) {
	e := openMemMode(t, "incremental")
	mustExec(t, e, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint)`)
	grouped, err := e.Subscribe(`SELECT url, count(*) FROM s <VISIBLE '20 seconds' ADVANCE '10 seconds'> GROUP BY url`)
	if err != nil {
		t.Fatal(err)
	}
	defer grouped.Close()
	scalar, err := e.Subscribe(`SELECT count(*), sum(v), min(v) FROM s <VISIBLE '20 seconds' ADVANCE '10 seconds'>`)
	if err != nil {
		t.Fatal(err)
	}
	defer scalar.Close()
	if !grouped.Incremental || !scalar.Incremental {
		t.Fatal("expected incremental pipelines")
	}
	ts := ivmBase
	if err := e.Append("s",
		Row{String("/a"), Timestamp(time.UnixMicro(ts).UTC()), Int(5)},
		Row{String("/b"), Timestamp(time.UnixMicro(ts + 1_000_000).UTC()), Int(7)},
	); err != nil {
		t.Fatal(err)
	}
	// Advance far past the window: every group expires, then empty
	// windows keep firing.
	e.AdvanceTime("s", time.UnixMicro(ts).Add(50*time.Second).UTC())

	gb := collectBatches(t, grouped)
	sb := collectBatches(t, scalar)
	if len(gb) < 4 || len(sb) < 4 {
		t.Fatalf("expected ≥4 fires, got %d grouped / %d scalar", len(gb), len(sb))
	}
	last := gb[len(gb)-1]
	if strings.Contains(last, "/a") || strings.Contains(last, "/b") {
		t.Fatalf("expired groups still emitted: %s", last)
	}
	wantTail := "|0|NULL|NULL"
	if !strings.HasSuffix(sb[len(sb)-1], wantTail) {
		t.Fatalf("drained scalar window = %q, want suffix %q", sb[len(sb)-1], wantTail)
	}
	// Early fires must contain the groups while visible.
	if !strings.Contains(gb[0], "/a") || !strings.Contains(gb[0], "/b") {
		t.Fatalf("first fire missing live groups: %s", gb[0])
	}
}
