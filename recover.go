package streamrel

import (
	"fmt"
	"os"

	"streamrel/internal/sql"
	"streamrel/internal/storage"
	"streamrel/internal/txn"
	"streamrel/internal/types"
	"streamrel/internal/wal"
)

// recover restores durable state from the checkpoint and the WAL, then
// rebuilds continuous-query runtime state from Active Tables (paper §4):
// instead of checkpointing every operator, each derived stream resumes
// just past the newest window its channels archived.
func (e *Engine) recover() error {
	e.recovering = true
	defer func() { e.recovering = false }()

	apply := func(rec wal.Record) error {
		switch rec.Kind {
		case wal.RecDDL:
			stmt, err := sql.Parse(rec.SQL)
			if err != nil {
				return fmt.Errorf("streamrel: recovery: bad DDL %q: %w", rec.SQL, err)
			}
			if _, err := e.applyDDL(stmt); err != nil {
				return fmt.Errorf("streamrel: recovery: %w", err)
			}
			e.ddlLog = append(e.ddlLog, rec.SQL)
		case wal.RecInsert:
			t, ok := e.cat.Table(rec.Table)
			if !ok {
				return fmt.Errorf("streamrel: recovery: insert into unknown table %q", rec.Table)
			}
			// Replay at the logged RowID so numbering (including gaps from
			// aborted transactions) matches what later RecDelete records
			// and replication events reference.
			rid := storage.RowID(rec.RowID)
			replaced, err := t.Heap.InsertAt(txn.Bootstrap, rid, rec.Row)
			if err != nil {
				return err
			}
			if !replaced {
				for _, ix := range t.Indexes {
					ix.Tree.Insert(ix.KeyOf(rec.Row), rid)
				}
			}
		case wal.RecDelete:
			t, ok := e.cat.Table(rec.Table)
			if !ok {
				return fmt.Errorf("streamrel: recovery: delete from unknown table %q", rec.Table)
			}
			if err := t.Heap.Delete(txn.Bootstrap, storage.RowID(rec.RowID)); err != nil {
				return err
			}
		}
		return nil
	}

	if err := wal.Replay(e.checkpointPath(), apply); err != nil {
		return err
	}
	if err := wal.Replay(e.walPath(), apply); err != nil {
		return err
	}
	e.resumeCQs()
	return nil
}

// resumeCQs sets each derived pipeline's resume point from the newest
// cq_close timestamp its channels archived, so restart neither re-emits
// archived windows nor skips future ones.
func (e *Engine) resumeCQs() {
	for _, ch := range e.cat.Channels() {
		d, ok := e.cat.Derived(ch.From)
		if !ok || d.CloseCol < 0 {
			continue
		}
		t, ok := e.cat.Table(ch.Into)
		if !ok {
			continue
		}
		pipe, ok := e.derivedPipes[ch.From]
		if !ok {
			continue
		}
		var maxClose int64
		seen := false
		t.Heap.Scan(e.mgr.SnapshotNow(), func(_ storage.RowID, row types.Row) bool {
			if d.CloseCol < len(row) && row[d.CloseCol].Type() == types.TypeTimestamp {
				if ts := row[d.CloseCol].TimestampMicros(); !seen || ts > maxClose {
					maxClose, seen = ts, true
				}
			}
			return true
		})
		if seen {
			pipe.ResumeAfter(maxClose)
		}
	}
}

// checkpoint compacts every heap (rewriting RowIDs), rebuilds indexes so
// they reference the compacted positions, writes the checkpoint file
// (DDL log + table contents), and truncates the WAL. RowIDs in future WAL
// records then match what replay will reconstruct.
func (e *Engine) checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()

	snap := e.mgr.SnapshotNow()
	tmp := e.checkpointPath() + ".tmp"
	_ = os.Remove(tmp)
	ck, err := wal.Open(tmp, wal.Options{Sync: true})
	if err != nil {
		return err
	}

	var recs []wal.Record
	for _, stmt := range e.ddlLog {
		recs = append(recs, wal.Record{Kind: wal.RecDDL, SQL: stmt})
	}
	if err := ck.Append(recs); err != nil {
		ck.Close()
		return err
	}

	for _, t := range e.cat.Tables() {
		t.Heap.Vacuum(snap)
		for _, ix := range t.Indexes {
			rebuilt := storage.NewBTree()
			t.Heap.Scan(snap, func(rid storage.RowID, row types.Row) bool {
				rebuilt.Insert(ix.KeyOf(row), rid)
				return true
			})
			ix.Tree = rebuilt
		}
		var batch []wal.Record
		t.Heap.Scan(snap, func(rid storage.RowID, row types.Row) bool {
			batch = append(batch, wal.Record{Kind: wal.RecInsert, Table: t.Name, RowID: uint64(rid), Row: row})
			if len(batch) >= 4096 {
				if err := ck.Append(batch); err != nil {
					return false
				}
				batch = batch[:0]
			}
			return true
		})
		if err := ck.Append(batch); err != nil {
			ck.Close()
			return err
		}
	}
	if err := ck.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, e.checkpointPath()); err != nil {
		return err
	}
	if err := e.log.Truncate(); err != nil {
		return err
	}
	if e.hub != nil {
		// Tell replicas to compact at the same point in the event order,
		// so post-checkpoint RowIDs stay aligned on both sides.
		e.hub.PublishCheckpoint()
	}
	return nil
}
