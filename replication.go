package streamrel

import (
	"errors"
	"fmt"
	"os"

	"streamrel/internal/catalog"
	"streamrel/internal/repl"
	"streamrel/internal/sql"
	"streamrel/internal/storage"
	"streamrel/internal/stream"
	"streamrel/internal/trace"
	"streamrel/internal/types"
	"streamrel/internal/wal"
)

// ErrReadReplica is returned by write paths while the engine runs as a
// read replica; Promote lifts the restriction.
var ErrReadReplica = errors.New("streamrel: engine is a read replica; writes are rejected (promote to accept writes)")

// Repl returns the engine's replication hub, or nil when Config.Replicate
// is off. The server wires it to the "replicate" op; tests use it to read
// the current LSN.
func (e *Engine) Repl() *repl.Primary { return e.hub }

// initReplication builds the hub and wires the publish hooks. Called once
// from Open, before any writes.
func (e *Engine) initReplication() {
	e.hub = repl.NewPrimary(repl.Config{Metrics: e.reg, RingSize: e.cfg.ReplRingSize})
	e.hub.Snapshot = e.replicationSnapshot
	// The repl package stays trace-agnostic: the hook narrows the trace
	// context to the bare ID the wire format carries.
	e.rt.OnIngest = func(tc trace.Ctx, stream string, rows []types.Row) {
		e.hub.PublishAppend(stream, rows, tc.ID)
	}
	e.rt.OnAdvance = e.hub.PublishAdvance
}

// writeGate rejects user writes while the engine is a replica. Replicated
// apply bypasses it by calling the internal paths directly.
func (e *Engine) writeGate() error {
	if e.replicaMode.Load() {
		return ErrReadReplica
	}
	return nil
}

// ReplicaMode reports whether the engine currently rejects writes.
func (e *Engine) ReplicaMode() bool { return e.replicaMode.Load() }

// BeginReplica puts the engine into replica mode: user writes are
// rejected, channel taps stop writing tables (the primary's channel
// writes arrive through the replicated WAL instead, avoiding
// double-apply), and the late-row policy becomes clamp so replayed stream
// rows whose timestamps the primary already clamped are accepted
// verbatim.
func (e *Engine) BeginReplica() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.replicaMode.Load() {
		return
	}
	e.prevLate = e.rt.Late
	e.rt.Late = stream.LateClamp
	e.replicaMode.Store(true)
}

// Promote lifts replica mode: the engine accepts writes again and channel
// taps resume writing tables. The caller must have stopped applying
// replicated events first. The engine keeps its own replication hub (and
// run ID), so replicas can chain off a promoted node — their run IDs
// won't match and they will resync from it.
func (e *Engine) Promote() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.replicaMode.Load() {
		return
	}
	e.rt.Late = e.prevLate
	e.replicaMode.Store(false)
}

// ---------------------------------------------------------------- apply

// ApplyReplicated applies one replicated WAL batch: DDL batches re-execute
// their SQL (which also logs and republishes them locally), data batches
// apply insert/delete at the primary's RowIDs in one local transaction.
// Apply is idempotent — re-applying a suffix after a crash or a
// snapshot/live-tail overlap refreshes rows without duplicating them.
func (e *Engine) ApplyReplicated(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if recs[0].Kind == wal.RecDDL {
		for _, rec := range recs {
			if rec.Kind != wal.RecDDL {
				return fmt.Errorf("streamrel: replicated batch mixes DDL and data")
			}
			stmt, err := sql.Parse(rec.SQL)
			if err != nil {
				return fmt.Errorf("streamrel: replicated DDL %q: %w", rec.SQL, err)
			}
			if _, err := e.execDDL(stmt, rec.SQL); err != nil {
				return err
			}
		}
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	w := e.beginWrite()
	for _, rec := range recs {
		t, ok := e.cat.Table(rec.Table)
		if !ok {
			return w.fail(fmt.Errorf("streamrel: replicated write to unknown table %q", rec.Table))
		}
		switch rec.Kind {
		case wal.RecInsert:
			if err := w.insertRowAt(t, storage.RowID(rec.RowID), rec.Row); err != nil {
				return w.fail(err)
			}
		case wal.RecDelete:
			w.deleteRowReplay(t, storage.RowID(rec.RowID))
		default:
			return w.fail(fmt.Errorf("streamrel: replicated batch mixes DDL and data"))
		}
	}
	return w.commit()
}

// ApplyReplicatedAppend pushes replicated stream rows without re-stamping
// CQTIME SYSTEM columns — the primary's arrival timestamps are part of
// the replicated history. The local system clock still advances past them
// so post-promotion appends stay monotonic. A non-zero traceID re-injects
// the primary's trace context so local fires chain onto the same trace.
func (e *Engine) ApplyReplicatedAppend(streamName string, rows []Row, traceID uint64) error {
	if st, ok := e.cat.Stream(streamName); ok && st.SystemTime && len(rows) > 0 {
		last := rows[len(rows)-1]
		if st.CQTimeCol < len(last) && last[st.CQTimeCol].Type() == types.TypeTimestamp {
			ts := last[st.CQTimeCol].TimestampMicros()
			e.sysMu.Lock()
			if ts > e.sysClock[st.Name] {
				e.sysClock[st.Name] = ts
			}
			e.sysMu.Unlock()
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if traceID != 0 && e.tracer != nil {
		return e.rt.PushBatchCtx(e.tracer.Adopt(traceID), streamName, rows)
	}
	return e.rt.PushBatch(streamName, rows)
}

// ApplyReplicatedAdvance applies a replicated heartbeat.
func (e *Engine) ApplyReplicatedAdvance(streamName string, ts int64) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rt.Advance(streamName, ts)
}

// ApplyReplicatedTableNext aligns a table's next RowID with the primary's
// (snapshot epilogue per table; reproduces trailing aborted-txn gaps).
func (e *Engine) ApplyReplicatedTableNext(table string, next uint64) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.cat.Table(table)
	if !ok {
		return fmt.Errorf("streamrel: replicated snapshot references unknown table %q", table)
	}
	t.Heap.EnsureNext(storage.RowID(next))
	return nil
}

// ReplicaCheckpoint runs when the primary checkpointed: both sides
// compact heaps at the same point in the event order, so RowID numbering
// stays aligned. Durable replicas take a full local checkpoint (which
// also truncates their WAL); in-memory replicas just compact.
func (e *Engine) ReplicaCheckpoint() error {
	if e.log != nil {
		return e.Checkpoint()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compactTablesLocked()
	return nil
}

// compactTablesLocked vacuums every heap and rebuilds its indexes against
// the compacted RowIDs. Callers hold e.mu exclusively.
func (e *Engine) compactTablesLocked() {
	snap := e.mgr.SnapshotNow()
	for _, t := range e.cat.Tables() {
		t.Heap.Vacuum(snap)
		for _, ix := range t.Indexes {
			rebuilt := storage.NewBTree()
			t.Heap.Scan(snap, func(rid storage.RowID, row types.Row) bool {
				rebuilt.Insert(ix.KeyOf(row), rid)
				return true
			})
			ix.Tree = rebuilt
		}
	}
}

// ReplicaReset drops every object and clears durable state, preparing the
// engine to receive a full snapshot from a (new) primary. Dependency
// order: channels first, then derived streams, base streams, views,
// tables (indexes go with their tables).
func (e *Engine) ReplicaReset() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ch := range e.cat.Channels() {
		if _, err := e.execDrop(&sql.Drop{Kind: sql.ObjChannel, Name: ch.Name}); err != nil {
			return err
		}
	}
	for _, d := range e.cat.DerivedStreams() {
		if _, err := e.execDrop(&sql.Drop{Kind: sql.ObjStream, Name: d.Name}); err != nil {
			return err
		}
	}
	for _, name := range e.cat.Names("streams") {
		if isSysName(name) {
			// Engine-owned telemetry streams are never part of the
			// primary's snapshot; they survive the reset so the local
			// monitor keeps reporting through the resync.
			continue
		}
		if _, err := e.execDrop(&sql.Drop{Kind: sql.ObjStream, Name: name}); err != nil {
			return err
		}
	}
	for _, name := range e.cat.Names("views") {
		if _, err := e.execDrop(&sql.Drop{Kind: sql.ObjView, Name: name}); err != nil {
			return err
		}
	}
	for _, t := range e.cat.Tables() {
		if _, err := e.execDrop(&sql.Drop{Kind: sql.ObjTable, Name: t.Name}); err != nil {
			return err
		}
	}
	e.ddlLog = nil
	e.sysMu.Lock()
	e.sysClock = make(map[string]int64)
	e.sysMu.Unlock()
	if e.log != nil {
		if err := e.log.Truncate(); err != nil {
			return err
		}
		if err := os.Remove(e.checkpointPath()); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// ----------------------------------------------------------- snapshot

// snapshotBatchRows sizes the row batches inside one snapshot WAL frame;
// a batch also closes early when it reaches repl.MaxEventBytes, so no
// snapshot frame can exceed the replica's frame-size limit.
const snapshotBatchRows = 1024

// replicationSnapshot emits a consistent logical cut of durable state:
// the DDL log, then every table's visible rows as insert records carrying
// their RowIDs, each table closed by a TableNext event. It runs under the
// engine's exclusive lock, so no DDL or checkpoint interleaves — but the
// caller (repl.Primary.ServeConn) only spools the emitted events here and
// streams them after this returns, so the lock is held for the in-memory
// scan, never for the network transfer. Stream events and worker commits
// published concurrently carry LSNs above the snapshot boundary and are
// replayed after it — row apply is idempotent, so the overlap is
// harmless.
func (e *Engine) replicationSnapshot(emit func(repl.Event) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, stmtSQL := range e.ddlLog {
		ev := repl.Event{Kind: repl.KindWAL, Recs: []wal.Record{{Kind: wal.RecDDL, SQL: stmtSQL}}}
		if err := emit(ev); err != nil {
			return err
		}
	}
	snap := e.mgr.SnapshotNow()
	for _, t := range e.cat.Tables() {
		var batch []wal.Record
		var batchBytes int
		var scanErr error
		t.Heap.Scan(snap, func(rid storage.RowID, row types.Row) bool {
			rec := wal.Record{Kind: wal.RecInsert, Table: t.Name, RowID: uint64(rid), Row: row}
			batch = append(batch, rec)
			batchBytes += repl.RecordSize(rec)
			if len(batch) >= snapshotBatchRows || batchBytes >= repl.MaxEventBytes {
				scanErr = emit(repl.Event{Kind: repl.KindWAL, Recs: batch})
				batch, batchBytes = nil, 0
			}
			return scanErr == nil
		})
		if scanErr != nil {
			return scanErr
		}
		if len(batch) > 0 {
			if err := emit(repl.Event{Kind: repl.KindWAL, Recs: batch}); err != nil {
				return err
			}
		}
		ev := repl.Event{Kind: repl.KindTableNext, Table: t.Name, Next: uint64(t.Heap.NextID())}
		if err := emit(ev); err != nil {
			return err
		}
	}
	return nil
}

// ----------------------------------------------------- writeTxn helpers

// insertRowAt is insertRow at an explicit RowID (replicated apply). A
// replaced slot skips index maintenance and WAL logging — the record was
// already applied locally.
func (w *writeTxn) insertRowAt(t *catalog.Table, rid storage.RowID, row types.Row) error {
	replaced, err := t.Heap.InsertAt(w.tx.ID, rid, row)
	if err != nil {
		return err
	}
	if replaced {
		return nil
	}
	for _, ix := range t.Indexes {
		ix.Tree.Insert(ix.KeyOf(row), rid)
	}
	w.recs = append(w.recs, wal.Record{Kind: wal.RecInsert, Table: t.Name, RowID: uint64(rid), Row: row})
	w.n++
	return nil
}

// deleteRowReplay is deleteRow with idempotent semantics: an unknown or
// already-deleted RowID is a no-op (the record was already applied).
func (w *writeTxn) deleteRowReplay(t *catalog.Table, rid storage.RowID) {
	if !t.Heap.DeleteReplay(w.tx.ID, rid) {
		return
	}
	heap, id := t.Heap, rid
	w.undo = append(w.undo, func() { heap.UndoDelete(w.tx.ID, id) })
	w.recs = append(w.recs, wal.Record{Kind: wal.RecDelete, Table: t.Name, RowID: uint64(rid)})
	w.n++
}
