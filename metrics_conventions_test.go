package streamrel

import (
	"strings"
	"testing"
	"time"

	"streamrel/internal/metrics"
)

// TestMetricNamingConventions audits every metric a fully wired engine
// registers: streamrel_ prefix, _total suffix on counters, _seconds suffix
// on (duration) histograms, and the deprecated gauge aliases kept for
// dashboard compatibility.
func TestMetricNamingConventions(t *testing.T) {
	e := openTrace(t, Config{
		Dir:               t.TempDir(),
		SyncWAL:           true,
		Replicate:         true,
		ParallelCQ:        2,
		TraceSampleEvery:  1,
		SlowFireThreshold: time.Hour,
	})
	defer e.Close()
	// Exercise stream, CQ, channel and WAL paths so lazily registered
	// series exist before the audit.
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE STREAM s_now AS
		SELECT count(*) AS n, cq_close(*) FROM s <ADVANCE '1 minute'>`)
	mustExec(t, e, `CREATE TABLE s_archive (n bigint, stime timestamp)`)
	mustExec(t, e, `CREATE CHANNEL s_ch FROM s_now INTO s_archive APPEND`)
	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 5; i++ {
		if err := e.Append("s", Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	e.AdvanceTime("s", base.Add(2*time.Minute))

	samples := e.Metrics().Gather()
	if len(samples) == 0 {
		t.Fatal("engine registered no metrics")
	}
	byName := make(map[string]*metrics.Sample)
	for _, s := range samples {
		byName[s.Name] = s
		if !strings.HasPrefix(s.Name, "streamrel_") {
			t.Errorf("metric %q lacks the streamrel_ prefix", s.Name)
		}
		switch s.Kind {
		case metrics.KindCounter:
			if !strings.HasSuffix(s.Name, "_total") {
				t.Errorf("counter %q should end in _total", s.Name)
			}
		case metrics.KindHistogram:
			if !strings.HasSuffix(s.Name, "_seconds") && !strings.HasSuffix(s.Name, "_batches") {
				t.Errorf("histogram %q should end in a unit suffix (_seconds, _batches)", s.Name)
			}
		case metrics.KindGauge:
			if strings.HasSuffix(s.Name, "_total") {
				t.Errorf("gauge %q must not end in _total", s.Name)
			}
		}
	}

	// The renamed gauges and their deprecated aliases must both exist and
	// agree, so existing dashboards keep working through the rename.
	for alias, canonical := range map[string]string{
		"streamrel_sources":   "streamrel_stream_sources",
		"streamrel_pipelines": "streamrel_stream_pipelines",
	} {
		a, c := byName[alias], byName[canonical]
		if a == nil || c == nil {
			t.Fatalf("missing %s (alias) or %s (canonical): alias=%v canonical=%v", alias, canonical, a, c)
		}
		if a.Value != c.Value {
			t.Errorf("%s=%v disagrees with %s=%v", alias, a.Value, canonical, c.Value)
		}
		if !strings.Contains(a.Help, "deprecated") {
			t.Errorf("alias %s help %q should say it is deprecated", alias, a.Help)
		}
	}

	// Spot-check recently introduced series: tracing, the work-stealing
	// scheduler (created lazily by the first worker-mode subscribe) and
	// plan-level sharing.
	for _, name := range []string{
		"streamrel_traces_sampled_total",
		"streamrel_slow_fires_total",
		"streamrel_trace_ring_spans",
		"streamrel_sched_steals_total",
		"streamrel_sched_parks_total",
		"streamrel_sched_workers",
		"streamrel_sched_runnable",
		"streamrel_plan_groups",
		"streamrel_plan_subscribers",
	} {
		if byName[name] == nil {
			t.Errorf("expected series %s not registered", name)
		}
	}
}
