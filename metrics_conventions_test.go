package streamrel

import (
	"strings"
	"testing"
	"time"

	"streamrel/internal/metrics"
)

// auditNames applies the repo-wide naming rules to one registry's gather:
// streamrel_ prefix, _total suffix on counters, a unit suffix on
// histograms, and no _total on gauges.
func auditNames(t *testing.T, samples []*metrics.Sample) map[string]*metrics.Sample {
	t.Helper()
	byName := make(map[string]*metrics.Sample)
	for _, s := range samples {
		byName[s.Name] = s
		if !strings.HasPrefix(s.Name, "streamrel_") {
			t.Errorf("metric %q lacks the streamrel_ prefix", s.Name)
		}
		switch s.Kind {
		case metrics.KindCounter:
			if !strings.HasSuffix(s.Name, "_total") {
				t.Errorf("counter %q should end in _total", s.Name)
			}
		case metrics.KindHistogram:
			if !strings.HasSuffix(s.Name, "_seconds") && !strings.HasSuffix(s.Name, "_batches") {
				t.Errorf("histogram %q should end in a unit suffix (_seconds, _batches)", s.Name)
			}
		case metrics.KindGauge:
			if strings.HasSuffix(s.Name, "_total") {
				t.Errorf("gauge %q must not end in _total", s.Name)
			}
		}
	}
	return byName
}

// TestMetricNamingConventions audits every metric a fully wired engine
// registers: streamrel_ prefix, _total suffix on counters, _seconds suffix
// on (duration) histograms — across the stream runtime, WAL, replication
// hub, scheduler, tracer and the sysmon self-observability series.
func TestMetricNamingConventions(t *testing.T) {
	e := openTrace(t, Config{
		Dir:               t.TempDir(),
		SyncWAL:           true,
		Replicate:         true,
		ParallelCQ:        2,
		TraceSampleEvery:  1,
		SlowFireThreshold: time.Hour,
		SysMonInterval:    -1, // sys.* streams + sysmon series, no ticker
	})
	defer e.Close()
	// Exercise stream, CQ, channel and WAL paths so lazily registered
	// series exist before the audit.
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, e, `CREATE STREAM s_now AS
		SELECT count(*) AS n, cq_close(*) FROM s <ADVANCE '1 minute'>`)
	mustExec(t, e, `CREATE TABLE s_archive (n bigint, stime timestamp)`)
	mustExec(t, e, `CREATE CHANNEL s_ch FROM s_now INTO s_archive APPEND`)
	base := MustTimestamp("2009-01-04 00:00:00")
	for i := 0; i < 5; i++ {
		if err := e.Append("s", Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	e.AdvanceTime("s", base.Add(2*time.Minute))
	if err := e.SysSnapshot(); err != nil {
		t.Fatal(err)
	}

	samples := e.Metrics().Gather()
	if len(samples) == 0 {
		t.Fatal("engine registered no metrics")
	}
	byName := auditNames(t, samples)

	// The pre-rename gauge aliases are gone: only the canonical
	// streamrel_stream_* names remain.
	for alias, canonical := range map[string]string{
		"streamrel_sources":   "streamrel_stream_sources",
		"streamrel_pipelines": "streamrel_stream_pipelines",
	} {
		if byName[alias] != nil {
			t.Errorf("deprecated alias %s is still registered; it was dropped in favor of %s", alias, canonical)
		}
		if byName[canonical] == nil {
			t.Errorf("canonical series %s not registered", canonical)
		}
	}

	// Spot-check each namespace: tracing, the work-stealing scheduler,
	// plan-level sharing, the replication hub, and the sysmon
	// self-observability series (including the internal-source row counter
	// that keeps sys.* ingest out of streamrel_stream_rows_total).
	for _, name := range []string{
		"streamrel_traces_sampled_total",
		"streamrel_slow_fires_total",
		"streamrel_trace_ring_spans",
		"streamrel_sched_steals_total",
		"streamrel_sched_parks_total",
		"streamrel_sched_workers",
		"streamrel_sched_runnable",
		"streamrel_plan_groups",
		"streamrel_plan_subscribers",
		"streamrel_repl_lsn",
		"streamrel_repl_connected_replicas",
		"streamrel_repl_events_total",
		"streamrel_sysmon_snapshots_total",
		"streamrel_sysmon_errors_total",
		"streamrel_sysmon_snapshot_seconds",
		"streamrel_sysmon_interval_seconds",
		"streamrel_sysmon_rows_total",
	} {
		if byName[name] == nil {
			t.Errorf("expected series %s not registered", name)
		}
	}
}
