package sysmon

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/stream"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// capture collects pushed rows per stream.
type capture struct {
	mu   sync.Mutex
	rows map[string][]types.Row
}

func newCapture() *capture { return &capture{rows: map[string][]types.Row{}} }

func (c *capture) push(stream string, rows []types.Row) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows[stream] = append(c.rows[stream], rows...)
	return nil
}

func (c *capture) count(stream string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rows[stream])
}

func testConfig(cap *capture, reg *metrics.Registry) Config {
	return Config{
		Gather:   reg.Gather,
		Stats:    func() stream.Stats { return stream.Stats{} },
		Spans:    func() []trace.Span { return nil },
		ReplInfo: func() (string, uint64) { return "", 0 },
		Push:     cap.push,
		Metrics:  reg,
	}
}

func TestTickPushesMetricRows(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("streamrel_test_events_total", "events").Add(7)
	reg.Gauge("streamrel_test_depth", "depth").Set(3)
	h := reg.Histogram("streamrel_test_lat_seconds", "latency", nil)
	h.Observe(0.01)
	h.Observe(0.02)

	cap := newCapture()
	m := New(testConfig(cap, reg))
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]types.Row{}
	for _, r := range cap.rows[StreamMetrics] {
		byName[r[1].Str()] = r
	}
	// Counter and gauge: one row each, kind tagged.
	if r, ok := byName["streamrel_test_events_total"]; !ok || r[3].Str() != "counter" || r[4].Float() != 7 {
		t.Errorf("counter row = %v", r)
	}
	if r, ok := byName["streamrel_test_depth"]; !ok || r[3].Str() != "gauge" || r[4].Float() != 3 {
		t.Errorf("gauge row = %v", r)
	}
	// Histogram: flattened to _count/_sum/_p50/_p95/_p99.
	for _, suffix := range []string{"_count", "_sum", "_p50", "_p95", "_p99"} {
		if _, ok := byName["streamrel_test_lat_seconds"+suffix]; !ok {
			t.Errorf("histogram row %s missing", suffix)
		}
	}
	if byName["streamrel_test_lat_seconds_count"][4].Float() != 2 {
		t.Errorf("histogram _count = %v", byName["streamrel_test_lat_seconds_count"][4])
	}
	// The monitor's own series are in the registry, hence in the feed next
	// tick — but this tick's rows must not include this tick's snapshot
	// counter increment (gather-before-push).
	if r, ok := byName["streamrel_sysmon_snapshots_total"]; ok && r[4].Float() != 0 {
		t.Errorf("sys.metrics row observed its own snapshot: %v", r)
	}
}

func TestTickLabelsColumn(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("streamrel_test_rows_total", "rows", metrics.L("stream", "s")).Add(4)
	cap := newCapture()
	m := New(testConfig(cap, reg))
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range cap.rows[StreamMetrics] {
		if r[1].Str() == "streamrel_test_rows_total" {
			found = true
			if want := `{stream="s"}`; r[2].Str() != want {
				t.Errorf("labels column = %q, want %q", r[2].Str(), want)
			}
		}
	}
	if !found {
		t.Fatal("labeled counter not in sys.metrics rows")
	}
}

func TestPipelineRows(t *testing.T) {
	st := stream.Stats{PerPipeline: []stream.PipelineStats{
		{Stream: "a", ID: 1, WindowsFired: 3, RowsSeen: 30},
		{Stream: "b", ID: 2, Incremental: true, QueueDepth: 5},
		{Stream: "c", ID: 3, Shared: true, PlanShared: true},
	}}
	rows := pipelineRows(st)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if mode := rows[0][6].Str(); mode != "reexec" {
		t.Errorf("mode[0] = %q", mode)
	}
	if mode := rows[1][6].Str(); mode != "incremental" {
		t.Errorf("mode[1] = %q", mode)
	}
	if mode := rows[2][6].Str(); mode != "shared+plan" {
		t.Errorf("mode[2] = %q", mode)
	}
	if rows[1][5].Int() != 5 {
		t.Errorf("queue_depth = %v", rows[1][5])
	}
}

func TestSlowFireDedup(t *testing.T) {
	spans := []trace.Span{
		{Trace: 1, Stage: "window-fire", Start: 100, Slow: true},
		{Trace: 2, Stage: "window-fire", Start: 200, Slow: true},
		{Trace: 3, Stage: "window-fire", Start: 300, Slow: false}, // not slow
	}
	rows, hw := slowFireRows(spans, 0)
	if len(rows) != 2 || hw != 200 {
		t.Fatalf("first pass: rows=%d hw=%d", len(rows), hw)
	}
	// Second pass with one new slow span: only it is emitted.
	spans = append(spans, trace.Span{Trace: 4, Stage: "window-fire", Start: 400, Slow: true})
	rows, hw = slowFireRows(spans, hw)
	if len(rows) != 1 || hw != 400 {
		t.Fatalf("second pass: rows=%d hw=%d", len(rows), hw)
	}
	if rows[0][1].Str() != trace.FormatID(4) {
		t.Errorf("wrong span emitted: %v", rows[0])
	}
}

func TestReplRows(t *testing.T) {
	if rows := replRows(func() (string, uint64) { return "", 0 }, nil); rows != nil {
		t.Fatalf("role-less node should emit nothing, got %v", rows)
	}
	samples := []*metrics.Sample{
		{Name: "streamrel_repl_lag_lsn", Value: 12},
		{Name: "streamrel_repl_lag_seconds", Value: 0.25},
	}
	rows := replRows(func() (string, uint64) { return "replica", 90 }, samples)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[1].Str() != "replica" || r[2].Int() != 90 || r[3].Float() != 12 || r[4].Float() != 0.25 {
		t.Errorf("repl row = %v", r)
	}
}

func TestTickErrorCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("streamrel_test_total", "x").Inc()
	cfg := testConfig(newCapture(), reg)
	cfg.Push = func(string, []types.Row) error { return fmt.Errorf("closed") }
	m := New(cfg)
	if err := m.Tick(); err == nil {
		t.Fatal("want push error")
	}
	var errs float64
	for _, s := range reg.Gather() {
		if s.Name == "streamrel_sysmon_errors_total" {
			errs = s.Value
		}
	}
	if errs != 1 {
		t.Fatalf("errors counter = %v", errs)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	cap := newCapture()
	cfg := testConfig(cap, reg)
	cfg.Interval = time.Millisecond
	m := New(cfg)
	m.Start()
	deadline := time.Now().Add(5 * time.Second)
	for cap.count(StreamMetrics) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cap.count(StreamMetrics) == 0 {
		t.Fatal("ticker never pushed")
	}
	m.Stop()
	m.Stop() // idempotent
	n := cap.count(StreamMetrics)
	time.Sleep(10 * time.Millisecond)
	if cap.count(StreamMetrics) != n {
		t.Fatal("ticker still pushing after Stop")
	}

	// Stop before Start must not hang; Start after Stop is a no-op.
	m2 := New(cfg)
	m2.Stop()
	m2.Start()
}
