// Package sysmon turns the engine's telemetry into data: a Monitor
// periodically snapshots the metrics registry, the stream runtime's
// pipeline counters, slow-fire trace events, and replication position into
// reserved engine-created sys.* streams. The engine's own CQ machinery
// then aggregates, windows and alerts on them — "everything is a
// continuous query", including watching the system itself (paper §2).
//
// The Monitor never touches engine internals directly: every input is an
// injected closure (Config), and output rows leave through Config.Push —
// the engine's internal append path, which stamps CQTIME SYSTEM arrival
// time and skips the WAL, replication, tracing and user-facing row
// counters (see stream.RegisterInternalSource), so telemetry about the
// system never amplifies the signals it reports.
package sysmon

import (
	"log/slog"
	"strings"
	"sync"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/stream"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// Reserved stream names. The engine creates these at Open when sysmon is
// enabled; user DDL/DML against the sys.* namespace is rejected.
const (
	StreamMetrics   = "sys.metrics"
	StreamPipelines = "sys.pipelines"
	StreamSlowFires = "sys.slow_fires"
	StreamRepl      = "sys.repl"
)

// DefaultInterval is the snapshot period streamreld uses when -sysmon is
// enabled without an explicit interval.
const DefaultInterval = time.Second

// StreamDef describes one reserved telemetry stream. CQTimeCol is always
// 0 (the leading ts column, CQTIME SYSTEM — the engine stamps arrival).
type StreamDef struct {
	Name      string
	Schema    types.Schema
	CQTimeCol int
}

// Streams returns the reserved sys.* stream definitions in creation order.
func Streams() []StreamDef {
	ts := types.Column{Name: "ts", Type: types.TypeTimestamp}
	return []StreamDef{
		{Name: StreamMetrics, Schema: types.Schema{
			ts,
			{Name: "name", Type: types.TypeString},
			{Name: "labels", Type: types.TypeString},
			{Name: "kind", Type: types.TypeString},
			{Name: "value", Type: types.TypeFloat},
		}},
		// Column names avoid SQL keywords (stream, rows) so alert rules can
		// reference them unquoted.
		{Name: StreamPipelines, Schema: types.Schema{
			ts,
			{Name: "source", Type: types.TypeString},
			{Name: "pipeline", Type: types.TypeInt},
			{Name: "windows_fired", Type: types.TypeInt},
			{Name: "rows_seen", Type: types.TypeInt},
			{Name: "queue_depth", Type: types.TypeInt},
			{Name: "mode", Type: types.TypeString},
		}},
		{Name: StreamSlowFires, Schema: types.Schema{
			ts,
			{Name: "trace", Type: types.TypeString},
			{Name: "stage", Type: types.TypeString},
			{Name: "source", Type: types.TypeString},
			{Name: "pipeline", Type: types.TypeInt},
			{Name: "start_us", Type: types.TypeInt},
			{Name: "dur_ns", Type: types.TypeInt},
			{Name: "row_count", Type: types.TypeInt},
		}},
		{Name: StreamRepl, Schema: types.Schema{
			ts,
			{Name: "role", Type: types.TypeString},
			{Name: "last_lsn", Type: types.TypeInt},
			{Name: "lag_lsn", Type: types.TypeFloat},
			{Name: "lag_seconds", Type: types.TypeFloat},
		}},
	}
}

// Config wires a Monitor to its engine without importing it.
type Config struct {
	// Gather snapshots the metrics registry (metrics.Registry.Gather).
	Gather func() []*metrics.Sample
	// Stats snapshots the stream runtime's counters.
	Stats func() stream.Stats
	// Spans returns the completed trace-span ring (nil or empty when
	// tracing is off); the Monitor extracts newly seen slow fires.
	Spans func() []trace.Span
	// ReplInfo reports this node's replication role ("primary",
	// "replica", or "" when replication is off) and last LSN.
	ReplInfo func() (role string, lsn uint64)
	// Push appends stamped rows to one sys.* stream. It must route
	// through the engine's internal append path (CQTIME SYSTEM stamping,
	// no WAL, no replication publish).
	Push func(stream string, rows []types.Row) error
	// Now overrides the wall clock (tests); nil uses time.Now.
	Now func() time.Time
	// Interval is the snapshot period for Start; <= 0 means ticks happen
	// only via explicit Tick calls.
	Interval time.Duration
	// Metrics registers the Monitor's own series (snapshot count and
	// latency); nil skips registration.
	Metrics *metrics.Registry
	// Logger receives snapshot errors; nil uses slog.Default.
	Logger *slog.Logger
}

// Monitor periodically snapshots engine telemetry into sys.* streams.
type Monitor struct {
	cfg Config

	snapshots *metrics.Counter
	errors    *metrics.Counter
	dur       *metrics.Histogram

	// mu serializes ticks (the ticker goroutine and explicit Tick calls).
	mu sync.Mutex
	// lastSlowStart is the high-water Start of slow spans already
	// emitted, so each slow fire reaches sys.slow_fires once.
	lastSlowStart int64

	// lifeMu guards the Start/Stop state machine.
	lifeMu  sync.Mutex
	started bool
	stopped bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds a Monitor. Call Start for periodic snapshots, or Tick for
// explicit ones (tests, REPL helpers).
func New(cfg Config) *Monitor {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	m := &Monitor{
		cfg:       cfg,
		snapshots: &metrics.Counter{},
		errors:    &metrics.Counter{},
		// dur stays nil without a registry (Histogram is nil-safe; the
		// zero value is not, its bucket slices are unallocated).
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		m.snapshots = reg.Counter("streamrel_sysmon_snapshots_total",
			"telemetry snapshots taken into sys.* streams")
		m.errors = reg.Counter("streamrel_sysmon_errors_total",
			"telemetry snapshots that failed to append")
		m.dur = reg.Histogram("streamrel_sysmon_snapshot_seconds",
			"duration of one telemetry snapshot (gather + append)", metrics.DefLatencyBuckets)
		reg.Gauge("streamrel_sysmon_interval_seconds",
			"configured snapshot interval (0 = manual ticks only)").
			Set(cfg.Interval.Seconds())
	}
	return m
}

// Start launches the ticker goroutine. No-op when Interval <= 0 or after
// Stop.
func (m *Monitor) Start() {
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if m.started || m.stopped || m.cfg.Interval <= 0 {
		return
	}
	m.started = true
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				if err := m.Tick(); err != nil {
					m.cfg.Logger.Warn("sysmon snapshot failed", "err", err)
				}
			}
		}
	}()
}

// Stop halts the ticker and waits for its in-flight snapshot. Safe to
// call multiple times, and before Start.
func (m *Monitor) Stop() {
	m.lifeMu.Lock()
	if m.stopped {
		m.lifeMu.Unlock()
		return
	}
	m.stopped = true
	started := m.started
	m.lifeMu.Unlock()
	close(m.stop)
	if started {
		<-m.done
	}
}

// Tick takes one snapshot: gathers every input and appends the resulting
// rows to the sys.* streams. The registry gather happens first, so a
// sys.metrics row never observes the effects of its own snapshot.
func (m *Monitor) Tick() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	samples := m.cfg.Gather()

	var firstErr error
	push := func(stream string, rows []types.Row) {
		if len(rows) == 0 {
			return
		}
		if err := m.cfg.Push(stream, rows); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	push(StreamMetrics, metricRows(samples))
	if m.cfg.Stats != nil {
		push(StreamPipelines, pipelineRows(m.cfg.Stats()))
	}
	if m.cfg.Spans != nil {
		rows, hw := slowFireRows(m.cfg.Spans(), m.lastSlowStart)
		m.lastSlowStart = hw
		push(StreamSlowFires, rows)
	}
	if m.cfg.ReplInfo != nil {
		push(StreamRepl, replRows(m.cfg.ReplInfo, samples))
	}

	m.snapshots.Inc()
	m.dur.ObserveSince(start)
	if firstErr != nil {
		m.errors.Inc()
	}
	return firstErr
}

// tsPlaceholder fills the CQTIME SYSTEM column; the engine's append path
// overwrites it with the stamped arrival time.
func tsPlaceholder() types.Datum { return types.NewTimestampMicros(0) }

// metricRows flattens gathered samples into sys.metrics rows. Counters and
// gauges become one row each; histograms flatten the way the stats wire op
// does: _count, _sum and interpolated p50/p95/p99 quantile rows.
func metricRows(samples []*metrics.Sample) []types.Row {
	rows := make([]types.Row, 0, len(samples))
	add := func(s *metrics.Sample, suffix, kind string, v float64) {
		rows = append(rows, types.Row{
			tsPlaceholder(),
			types.NewString(s.Name + suffix),
			types.NewString(labelsOf(s)),
			types.NewString(kind),
			types.NewFloat(v),
		})
	}
	for _, s := range samples {
		switch s.Kind {
		case metrics.KindHistogram:
			add(s, "_count", "histogram", float64(s.Count))
			add(s, "_sum", "histogram", s.Sum)
			add(s, "_p50", "histogram", s.Quantile(0.50))
			add(s, "_p95", "histogram", s.Quantile(0.95))
			add(s, "_p99", "histogram", s.Quantile(0.99))
		case metrics.KindCounter:
			add(s, "", "counter", s.Value)
		default:
			add(s, "", "gauge", s.Value)
		}
	}
	return rows
}

// labelsOf renders a sample's labels as the {k="v",…} suffix of its series
// ID (empty for unlabeled series).
func labelsOf(s *metrics.Sample) string {
	id := s.ID()
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[i:]
	}
	return ""
}

// pipelineRows converts one runtime stats snapshot into sys.pipelines rows.
func pipelineRows(st stream.Stats) []types.Row {
	rows := make([]types.Row, 0, len(st.PerPipeline))
	for _, ps := range st.PerPipeline {
		mode := "reexec"
		switch {
		case ps.Incremental:
			mode = "incremental"
		case ps.Shared:
			mode = "shared"
		}
		if ps.PlanShared {
			mode += "+plan"
		}
		rows = append(rows, types.Row{
			tsPlaceholder(),
			types.NewString(ps.Stream),
			types.NewInt(ps.ID),
			types.NewInt(ps.WindowsFired),
			types.NewInt(ps.RowsSeen),
			types.NewInt(int64(ps.QueueDepth)),
			types.NewString(mode),
		})
	}
	return rows
}

// slowFireRows extracts slow spans newer than sinceStart, returning the
// rows and the new high-water Start. The span ring is small and scanned
// whole; ties on Start are deduped conservatively (a second slow span with
// the same Start as the high water may be skipped — acceptable for an
// alerting feed).
func slowFireRows(spans []trace.Span, sinceStart int64) ([]types.Row, int64) {
	var rows []types.Row
	hw := sinceStart
	for _, sp := range spans {
		if !sp.Slow || sp.Start <= sinceStart {
			continue
		}
		if sp.Start > hw {
			hw = sp.Start
		}
		rows = append(rows, types.Row{
			tsPlaceholder(),
			types.NewString(trace.FormatID(sp.Trace)),
			types.NewString(string(sp.Stage)),
			types.NewString(sp.Stream),
			types.NewInt(sp.Pipe),
			types.NewInt(sp.Start),
			types.NewInt(sp.Dur),
			types.NewInt(int64(sp.Rows)),
		})
	}
	return rows, hw
}

// replRows builds the sys.repl row: the node's role and LSN position, with
// lag read from the replica runner's gauges when present in the same
// registry (streamrel_repl_lag_lsn / streamrel_repl_lag_seconds).
func replRows(info func() (string, uint64), samples []*metrics.Sample) []types.Row {
	role, lsn := info()
	if role == "" {
		return nil
	}
	lagLSN, lagSec := 0.0, 0.0
	for _, s := range samples {
		switch s.Name {
		case "streamrel_repl_lag_lsn":
			lagLSN = s.Value
		case "streamrel_repl_lag_seconds":
			lagSec = s.Value
		}
	}
	return []types.Row{{
		tsPlaceholder(),
		types.NewString(role),
		types.NewInt(int64(lsn)),
		types.NewFloat(lagLSN),
		types.NewFloat(lagSec),
	}}
}
