package sysmon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/types"
)

// Alert is the JSON payload a webhook sink POSTs for one window close of
// an alerting CQ: the rule's SQL, the window boundary, and the firing rows
// rendered with the rule's column names.
type Alert struct {
	Rule    string    `json:"rule"`
	CloseTS time.Time `json:"close_ts"`
	Columns []string  `json:"columns"`
	Rows    [][]any   `json:"rows"`
	Node    string    `json:"node,omitempty"`
}

// WebhookSink delivers alerting-CQ batches to an HTTP endpoint as JSON.
// Failures are counted, not retried — an alert channel is a lossy
// best-effort feed, and the CQ keeps running regardless.
type WebhookSink struct {
	URL    string
	Client *http.Client
	// Node tags the payload with the emitting node's identity (optional).
	Node string

	sent   *metrics.Counter
	failed *metrics.Counter
}

// NewWebhookSink builds a sink; nil client uses a 5-second-timeout
// default. reg (optional) registers streamrel_sysmon_alerts_total and
// streamrel_sysmon_alert_errors_total.
func NewWebhookSink(url string, client *http.Client, reg *metrics.Registry) *WebhookSink {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	s := &WebhookSink{URL: url, Client: client,
		sent: &metrics.Counter{}, failed: &metrics.Counter{}}
	if reg != nil {
		s.sent = reg.Counter("streamrel_sysmon_alerts_total",
			"alert webhook deliveries attempted")
		s.failed = reg.Counter("streamrel_sysmon_alert_errors_total",
			"alert webhook deliveries that failed")
	}
	return s
}

// Deliver POSTs one window's rows. Columns come from the CQ schema; rows
// are rendered to JSON-friendly values.
func (s *WebhookSink) Deliver(rule string, closeTS time.Time, schema types.Schema, rows []types.Row) error {
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Name
	}
	out := make([][]any, len(rows))
	for i, r := range rows {
		vals := make([]any, len(r))
		for j, v := range r {
			vals[j] = jsonValue(v)
		}
		out[i] = vals
	}
	body, err := json.Marshal(Alert{Rule: rule, CloseTS: closeTS, Columns: cols, Rows: out, Node: s.Node})
	if err != nil {
		return err
	}
	s.sent.Inc()
	resp, err := s.Client.Post(s.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		s.failed.Inc()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		s.failed.Inc()
		return fmt.Errorf("sysmon: webhook %s returned %s", s.URL, resp.Status)
	}
	return nil
}

// jsonValue converts a datum to a JSON-encodable Go value.
func jsonValue(v types.Datum) any {
	if v.IsNull() {
		return nil
	}
	switch v.Type() {
	case types.TypeInt:
		return v.Int()
	case types.TypeFloat:
		// JSON has no NaN/Inf; telemetry legitimately produces them
		// (quantiles of empty histograms). Null keeps the payload valid.
		if f := v.Float(); !math.IsNaN(f) && !math.IsInf(f, 0) {
			return f
		}
		return nil
	case types.TypeBool:
		return v.Bool()
	case types.TypeTimestamp:
		return v.Time().UTC().Format(time.RFC3339Nano)
	case types.TypeString:
		return v.Str()
	default:
		return v.String()
	}
}
