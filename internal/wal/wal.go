// Package wal implements the engine's write-ahead log and checkpoint
// files.
//
// Design: transactions buffer their effects and write them to the log as a
// single atomic batch at commit time, so the log contains only committed
// work. A file starts with an 8-byte magic+version header (so a record
// format change is an explicit error on open/replay, never a misparse);
// each batch after it is [length u32][crc32 u32][payload]. A torn or
// corrupt final batch is discarded on recovery, which makes crash
// atomicity a property of the file format rather than of replay logic.
//
// Recovery of *runtime* CQ state deliberately does not live here: per the
// paper (§4), continuous-query state is rebuilt from Active Tables after
// durable state is restored, instead of checkpointing every operator.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// RecordKind tags one logical record inside a batch.
type RecordKind uint8

// Record kinds.
const (
	// RecDDL carries the SQL text of a DDL statement; replay re-executes it.
	RecDDL RecordKind = iota + 1
	// RecInsert carries (table, row).
	RecInsert
	// RecDelete carries (table, rowid).
	RecDelete
)

// Record is one logical change. RecInsert and RecDelete both carry the
// heap RowID of the affected version, so replay (and a replica applying
// the same records) reconstructs the exact numbering the primary used —
// including gaps left by aborted transactions — and later deletes by
// RowID resolve correctly.
type Record struct {
	Kind  RecordKind
	Table string
	SQL   string
	Row   types.Row
	RowID uint64
}

// Every log and checkpoint file starts with an 8-byte header — a 6-byte
// magic plus a little-endian uint16 format version — so a record-encoding
// change is an explicit open/replay error instead of a silently misparsed
// batch that replay would discard as an "uncommitted tail", dropping
// committed data on upgrade.
var fileMagic = [6]byte{'S', 'R', 'W', 'A', 'L', 'F'}

// FormatVersion is the record-format version this build reads and writes.
// Version 2 added the explicit RowID uvarint to RecInsert records;
// version-1 files predate headers entirely and are rejected by their
// missing magic.
const FormatVersion = 2

const headerSize = 8

func fileHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, fileMagic[:])
	binary.LittleEndian.PutUint16(h[6:], FormatVersion)
	return h
}

// errTornHeader marks a file shorter than one header whose bytes are a
// prefix of the expected header: a crash between creating the file and
// appending the first batch. Nothing was committed; the file is logically
// empty.
var errTornHeader = errors.New("wal: torn file header")

// checkHeader validates the leading bytes of a non-empty file.
func checkHeader(path string, h []byte) error {
	if len(h) < headerSize {
		if len(fileHeader()) >= len(h) && string(fileHeader()[:len(h)]) == string(h) {
			return errTornHeader
		}
		return fmt.Errorf("wal: %s: unrecognized file format (pre-versioning streamrel log, or not a log)", path)
	}
	if string(h[:6]) != string(fileMagic[:]) {
		return fmt.Errorf("wal: %s: unrecognized file format (pre-versioning streamrel log, or not a log)", path)
	}
	if v := binary.LittleEndian.Uint16(h[6:8]); v != FormatVersion {
		return fmt.Errorf("wal: %s: format version %d, this build reads version %d", path, v, FormatVersion)
	}
	return nil
}

// Log is an append-only write-ahead log over a single file.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	sync bool // fsync every batch
	hdr  bool // format header present on disk

	// Metric handles; nil (no-op) without a registry in Options.
	appends     *metrics.Counter
	appendBytes *metrics.Counter
	fsyncHist   *metrics.Histogram

	tracer *trace.Tracer
}

// Options configures log behaviour.
type Options struct {
	// Sync forces an fsync after every committed batch. Off by default:
	// the experiments in the paper concern CPU-path efficiency, and fsync
	// noise would dominate micro-benchmarks. Crash tests turn it on.
	Sync bool
	// Metrics registers append/fsync series in this registry; nil
	// disables WAL instrumentation.
	Metrics *metrics.Registry
	// Trace records wal-append/wal-fsync spans for sampled batches; nil
	// disables them.
	Trace *trace.Tracer
}

// Open opens (creating if needed) the log at path. A non-empty file whose
// header is missing (pre-versioning format) or carries a different
// FormatVersion is refused with an explicit error rather than misread.
func Open(path string, opts Options) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	hdr := false
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	} else if fi.Size() > 0 {
		buf := make([]byte, headerSize)
		n, _ := f.ReadAt(buf, 0)
		switch err := checkHeader(path, buf[:n]); {
		case err == nil:
			hdr = true
		case errors.Is(err, errTornHeader):
			// Crash before the first batch: logically empty; start over.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
		default:
			f.Close()
			return nil, err
		}
	}
	return &Log{
		f:      f,
		path:   path,
		sync:   opts.Sync,
		hdr:    hdr,
		tracer: opts.Trace,
		appends: opts.Metrics.Counter("streamrel_wal_appends_total",
			"committed batches appended to the write-ahead log"),
		appendBytes: opts.Metrics.Counter("streamrel_wal_append_bytes_total",
			"payload bytes appended to the write-ahead log"),
		fsyncHist: opts.Metrics.Histogram("streamrel_wal_fsync_seconds",
			"latency of the fsync after each committed batch", nil),
	}, nil
}

// Append atomically writes one committed batch of records.
func (l *Log) Append(recs []Record) error {
	return l.AppendCtx(trace.Ctx{}, recs)
}

// AppendCtx is Append carrying a trace context: a sampled batch records a
// wal-append span (header + payload write) and, under Sync, a wal-fsync
// span.
func (l *Log) AppendCtx(tc trace.Ctx, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	traced := tc.ID != 0 && l.tracer != nil
	payload := EncodeRecords(recs)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if !l.hdr {
		// First batch in this file: lead with the format header. A crash
		// between these writes leaves a torn header or torn first batch,
		// both of which read back as an empty log.
		if _, err := l.f.Write(fileHeader()); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.hdr = true
	}
	var writeStart time.Time
	if traced {
		writeStart = time.Now()
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if traced {
		l.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageWALAppend,
			Stream: recs[0].Table, Start: writeStart.UnixMicro(),
			Dur: time.Since(writeStart).Nanoseconds(), Rows: len(recs)})
	}
	if l.sync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.fsyncHist.ObserveSince(start)
		if traced {
			l.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageWALFsync,
				Stream: recs[0].Table, Start: start.UnixMicro(),
				Dur: time.Since(start).Nanoseconds(), Rows: len(recs)})
		}
	}
	l.appends.Inc()
	l.appendBytes.Add(int64(len(hdr) + len(payload)))
	return nil
}

// Close closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Truncate discards the log contents; called after a checkpoint captures
// the state the log described.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.hdr = false // next Append re-writes the format header
	return nil
}

// maxBatchBytes bounds a single batch payload during replay so a corrupt
// length prefix cannot provoke a huge allocation.
const maxBatchBytes = 1 << 30

// Replay reads every intact committed batch from the log at path, calling
// apply for each record in order. A corrupt or torn trailing batch ends
// replay without error (it is, by construction, an uncommitted tail). A
// missing file replays zero records.
func Replay(path string, apply func(Record) error) error {
	_, err := ReplayFrom(path, 0, apply)
	return err
}

// ReplayFrom streams intact committed batches starting at byte offset in
// the log at path, calling apply for each record, and returns the offset
// just past the last intact batch. It reads batch-by-batch through a
// buffered reader rather than loading the whole file, so replay memory is
// bounded by the largest single batch; the returned offset lets a caller
// resume tailing the log incrementally. offset must sit on a batch
// boundary (0, or a value ReplayFrom previously returned). A torn or
// corrupt tail ends replay without error; a missing file replays zero
// records and returns offset unchanged. A file without a valid format
// header (pre-versioning, foreign, or a different FormatVersion) is an
// explicit error, never a silently truncated replay.
func ReplayFrom(path string, offset int64, apply func(Record) error) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return offset, nil
	}
	if err != nil {
		return offset, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	hbuf := make([]byte, headerSize)
	n, _ := io.ReadFull(f, hbuf)
	if n == 0 {
		return offset, nil // empty file: zero records
	}
	if err := checkHeader(path, hbuf[:n]); err != nil {
		if errors.Is(err, errTornHeader) {
			return offset, nil // crash before the first batch: logically empty
		}
		return offset, err
	}
	if offset < headerSize {
		offset = headerSize // offset 0 means "from the first batch"
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return offset, fmt.Errorf("wal: %w", err)
	}
	rd := bufio.NewReaderSize(f, 1<<20)
	end := offset
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return end, nil // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxBatchBytes {
			return end, nil // corrupt length: treat as uncommitted tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			return end, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return end, nil // corrupt batch: treat as uncommitted tail
		}
		recs, err := DecodeRecords(payload)
		if err != nil {
			return end, nil // undecodable despite CRC: stop conservatively
		}
		for _, r := range recs {
			if err := apply(r); err != nil {
				return end, err
			}
		}
		end += int64(8 + n)
	}
}

// ----------------------------------------------------------- encoding

// EncodeRecords serializes a batch of records into the WAL payload
// format. Exported because replication frames carry the same encoding.
func EncodeRecords(recs []Record) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, r := range recs {
		buf = append(buf, byte(r.Kind))
		switch r.Kind {
		case RecDDL:
			buf = appendString(buf, r.SQL)
		case RecInsert:
			buf = appendString(buf, r.Table)
			buf = binary.AppendUvarint(buf, r.RowID)
			buf = types.EncodeRow(buf, r.Row)
		case RecDelete:
			buf = appendString(buf, r.Table)
			buf = binary.AppendUvarint(buf, r.RowID)
		}
	}
	return buf
}

// DecodeRecords parses a WAL payload produced by EncodeRecords. Arbitrary
// (torn, corrupt, adversarial) input yields an error, never a panic or an
// unbounded allocation.
func DecodeRecords(buf []byte) ([]Record, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, errors.New("wal: bad record count")
	}
	buf = buf[k:]
	// Every record costs at least one byte, so a count beyond the
	// remaining bytes is corrupt; checking here keeps the allocation
	// below proportional to the input.
	if n > uint64(len(buf)) {
		return nil, errors.New("wal: record count exceeds payload")
	}
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(buf) == 0 {
			return nil, errors.New("wal: truncated record")
		}
		r := Record{Kind: RecordKind(buf[0])}
		buf = buf[1:]
		var err error
		switch r.Kind {
		case RecDDL:
			r.SQL, buf, err = readString(buf)
		case RecInsert:
			r.Table, buf, err = readString(buf)
			if err == nil {
				r.RowID, buf, err = readUvarint(buf)
			}
			if err == nil {
				r.Row, buf, err = types.DecodeRow(buf)
			}
		case RecDelete:
			r.Table, buf, err = readString(buf)
			if err == nil {
				r.RowID, buf, err = readUvarint(buf)
			}
		default:
			return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, nil, errors.New("wal: bad uvarint")
	}
	return v, buf[k:], nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf[k:])) < n {
		return "", nil, errors.New("wal: bad string")
	}
	return string(buf[k : k+int(n)]), buf[k+int(n):], nil
}
