// Package wal implements the engine's write-ahead log and checkpoint
// files.
//
// Design: transactions buffer their effects and write them to the log as a
// single atomic batch at commit time, so the log contains only committed
// work. A file starts with an 8-byte magic+version header (so a record
// format change is an explicit error on open/replay, never a misparse);
// each batch after it is [length u32][crc32 u32][payload]. A torn or
// corrupt final batch is discarded on recovery, which makes crash
// atomicity a property of the file format rather than of replay logic.
//
// Recovery of *runtime* CQ state deliberately does not live here: per the
// paper (§4), continuous-query state is rebuilt from Active Tables after
// durable state is restored, instead of checkpointing every operator.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// RecordKind tags one logical record inside a batch.
type RecordKind uint8

// Record kinds.
const (
	// RecDDL carries the SQL text of a DDL statement; replay re-executes it.
	RecDDL RecordKind = iota + 1
	// RecInsert carries (table, row).
	RecInsert
	// RecDelete carries (table, rowid).
	RecDelete
)

// Record is one logical change. RecInsert and RecDelete both carry the
// heap RowID of the affected version, so replay (and a replica applying
// the same records) reconstructs the exact numbering the primary used —
// including gaps left by aborted transactions — and later deletes by
// RowID resolve correctly.
type Record struct {
	Kind  RecordKind
	Table string
	SQL   string
	Row   types.Row
	RowID uint64
}

// Every log and checkpoint file starts with an 8-byte header — a 6-byte
// magic plus a little-endian uint16 format version — so a record-encoding
// change is an explicit open/replay error instead of a silently misparsed
// batch that replay would discard as an "uncommitted tail", dropping
// committed data on upgrade.
var fileMagic = [6]byte{'S', 'R', 'W', 'A', 'L', 'F'}

// FormatVersion is the record-format version this build reads and writes.
// Version 2 added the explicit RowID uvarint to RecInsert records;
// version-1 files predate headers entirely and are rejected by their
// missing magic.
const FormatVersion = 2

const headerSize = 8

func fileHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, fileMagic[:])
	binary.LittleEndian.PutUint16(h[6:], FormatVersion)
	return h
}

// errTornHeader marks a file shorter than one header whose bytes are a
// prefix of the expected header: a crash between creating the file and
// appending the first batch. Nothing was committed; the file is logically
// empty.
var errTornHeader = errors.New("wal: torn file header")

// checkHeader validates the leading bytes of a non-empty file.
func checkHeader(path string, h []byte) error {
	if len(h) < headerSize {
		if len(fileHeader()) >= len(h) && string(fileHeader()[:len(h)]) == string(h) {
			return errTornHeader
		}
		return fmt.Errorf("wal: %s: unrecognized file format (pre-versioning streamrel log, or not a log)", path)
	}
	if string(h[:6]) != string(fileMagic[:]) {
		return fmt.Errorf("wal: %s: unrecognized file format (pre-versioning streamrel log, or not a log)", path)
	}
	if v := binary.LittleEndian.Uint16(h[6:8]); v != FormatVersion {
		return fmt.Errorf("wal: %s: format version %d, this build reads version %d", path, v, FormatVersion)
	}
	return nil
}

// commitGroup is one generation of the group-commit protocol: the frames
// of every batch staged while the previous generation was being written,
// flushed to disk as a single Write (and, under Sync, a single Sync).
// Waiters block on done; err and the span timings are written by the
// leader before done closes and are read-only afterwards.
type commitGroup struct {
	buf  []byte        // concatenated complete frames: [len][crc][payload]...
	n    int           // batches staged in this group
	done chan struct{} // closed once the group is durable (or failed)
	err  error

	// Timings of the single write/sync, so traced committers can record
	// spans for the group their batch rode in.
	writeStart time.Time
	writeDur   time.Duration
	syncStart  time.Time
	syncDur    time.Duration
}

// Log is an append-only write-ahead log over a single file.
//
// Commit protocol (group commit): a committer encodes its batch into a
// complete frame OUTSIDE the lock (pooled buffer), then stages the frame
// into the current commitGroup under a short critical section. The first
// committer to find no write in flight becomes the leader: it claims the
// group, writes all staged frames with one Write and one Sync, wakes the
// group's waiters, and loops while new batches piled up behind it.
// Everyone else just waits on its group's done channel. The result is one
// fsync per group rather than per batch, with no dedicated writer
// goroutine.
type Log struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when writing falls to false
	f    *os.File
	path string
	sync bool // fsync every group
	hdr  bool // format header present on disk

	maxDelay time.Duration // leader's pre-claim wait (Options.GroupCommitMaxDelay)

	cur     *commitGroup // group accepting new frames; nil if none staged
	writing bool         // a leader is writing/syncing outside mu
	closing bool         // Close in progress: reject new appends so the leader can drain

	// lastFrame is the previous frame's encoded size, used to pre-size
	// pooled encode buffers. Invariant (while mu is free): cur != nil ⇒
	// writing, so Close/Truncate only need to wait for !writing.
	lastFrame atomic.Int64

	// Metric handles; nil (no-op) without a registry in Options.
	appends     *metrics.Counter
	appendBytes *metrics.Counter
	fsyncHist   *metrics.Histogram
	groupHist   *metrics.Histogram

	tracer *trace.Tracer
}

// Options configures log behaviour.
type Options struct {
	// Sync forces an fsync after every committed group. Off by default:
	// the experiments in the paper concern CPU-path efficiency, and fsync
	// noise would dominate micro-benchmarks. Crash tests turn it on.
	Sync bool
	// GroupCommitMaxDelay is how long a group-commit leader waits before
	// claiming the current generation, letting concurrent committers pile
	// more batches into the group it is about to write. 0 (default)
	// claims immediately — concurrency alone still forms groups. Only
	// meaningful with Sync, where the fsync is the cost being amortized.
	GroupCommitMaxDelay time.Duration
	// Metrics registers append/fsync series in this registry; nil
	// disables WAL instrumentation.
	Metrics *metrics.Registry
	// Trace records wal-append/wal-fsync spans for sampled batches; nil
	// disables them.
	Trace *trace.Tracer
}

// encBuf is a pooled frame-encoding buffer; see AppendCtx.
type encBuf struct{ b []byte }

var encPool = sync.Pool{New: func() any { return new(encBuf) }}

// Open opens (creating if needed) the log at path. A non-empty file whose
// header is missing (pre-versioning format) or carries a different
// FormatVersion is refused with an explicit error rather than misread.
func Open(path string, opts Options) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	hdr := false
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	} else if fi.Size() > 0 {
		buf := make([]byte, headerSize)
		n, _ := f.ReadAt(buf, 0)
		switch err := checkHeader(path, buf[:n]); {
		case err == nil:
			hdr = true
		case errors.Is(err, errTornHeader):
			// Crash before the first batch: logically empty; start over.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
		default:
			f.Close()
			return nil, err
		}
	}
	l := &Log{
		f:        f,
		path:     path,
		sync:     opts.Sync,
		hdr:      hdr,
		maxDelay: opts.GroupCommitMaxDelay,
		tracer:   opts.Trace,
		appends: opts.Metrics.Counter("streamrel_wal_appends_total",
			"committed batches appended to the write-ahead log"),
		appendBytes: opts.Metrics.Counter("streamrel_wal_append_bytes_total",
			"payload bytes appended to the write-ahead log"),
		fsyncHist: opts.Metrics.Histogram("streamrel_wal_fsync_seconds",
			"latency of the fsync after each committed group", nil),
		groupHist: opts.Metrics.Histogram("streamrel_wal_group_commit_batches",
			"committed batches merged into each group-commit write",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// Append atomically writes one committed batch of records.
func (l *Log) Append(recs []Record) error {
	return l.AppendCtx(trace.Ctx{}, recs)
}

// AppendCtx is Append carrying a trace context: a sampled batch records a
// wal-append span (the group's write) and, under Sync, a wal-fsync span
// (the group's sync — shared with every batch that rode the same group).
//
// Encoding happens entirely outside the lock, into a pooled buffer
// pre-sized from the previous frame. The critical section is only "copy
// the finished frame into the current group"; the file write and fsync
// happen outside the lock too, serialized by the leader/writing handoff.
func (l *Log) AppendCtx(tc trace.Ctx, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}

	// Encode the complete frame — [len u32][crc u32][payload] — outside
	// the lock, in a pooled buffer.
	eb := encPool.Get().(*encBuf)
	if hint := int(l.lastFrame.Load()); cap(eb.b) < hint {
		eb.b = make([]byte, 0, hint)
	}
	frame := appendFrame(eb.b[:0], recs)
	l.lastFrame.Store(int64(len(frame)))

	l.mu.Lock()
	if l.f == nil || l.closing {
		l.mu.Unlock()
		eb.b = frame[:0]
		encPool.Put(eb)
		return errors.New("wal: closed")
	}
	if l.cur == nil {
		l.cur = &commitGroup{done: make(chan struct{})}
	}
	g := l.cur
	g.buf = append(g.buf, frame...)
	g.n++
	eb.b = frame[:0]
	encPool.Put(eb)

	if l.writing {
		// A leader is already on the file; it will pick this group up
		// when it finishes the generation in flight.
		l.mu.Unlock()
		<-g.done
	} else {
		l.lead()
	}
	if g.err != nil {
		return g.err
	}
	if tc.ID != 0 && l.tracer != nil {
		l.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageWALAppend,
			Stream: recs[0].Table, Start: g.writeStart.UnixMicro(),
			Dur: g.writeDur.Nanoseconds(), Rows: len(recs)})
		if l.sync {
			l.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageWALFsync,
				Stream: recs[0].Table, Start: g.syncStart.UnixMicro(),
				Dur: g.syncDur.Nanoseconds(), Rows: len(recs)})
		}
	}
	return nil
}

// lead runs the group-commit leader loop. Called with mu held and
// l.writing false; returns with mu released, after every group staged up
// to the moment it stops has been written (or failed) and its waiters
// woken. While the leader is outside the lock, l.writing guards the file
// against concurrent Close/Truncate.
func (l *Log) lead() {
	l.writing = true
	for l.cur != nil {
		if l.maxDelay > 0 && l.sync {
			// Hold the door: let concurrent committers stage into the
			// group we are about to write, amortizing the fsync further.
			l.mu.Unlock()
			time.Sleep(l.maxDelay)
			l.mu.Lock()
		}
		g := l.cur
		l.cur = nil
		needHdr := !l.hdr
		l.mu.Unlock()

		g.err = l.writeGroup(g, needHdr)

		l.mu.Lock()
		if g.err == nil && needHdr {
			l.hdr = true
		}
		close(g.done)
	}
	l.writing = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// writeGroup flushes one claimed group with a single Write (plus the
// one-time file header) and, under Sync, a single Sync. Runs outside mu;
// the caller's writing flag keeps the file exclusively ours.
func (l *Log) writeGroup(g *commitGroup, needHdr bool) error {
	if needHdr {
		// First batch in this file: lead with the format header. A crash
		// between these writes leaves a torn header or torn first batch,
		// both of which read back as an empty log.
		if _, err := l.f.Write(fileHeader()); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	g.writeStart = time.Now()
	if _, err := l.f.Write(g.buf); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	g.writeDur = time.Since(g.writeStart)
	if l.sync {
		g.syncStart = time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		g.syncDur = time.Since(g.syncStart)
		l.fsyncHist.Observe(g.syncDur.Seconds())
	}
	l.appends.Add(int64(g.n))
	l.appendBytes.Add(int64(len(g.buf)))
	l.groupHist.Observe(float64(g.n))
	return nil
}

// Close closes the log file. New appends are rejected immediately, then
// the in-flight group-commit leader drains every staged batch, so all
// acknowledged (and staged) work is on disk before the file handle goes
// away — and Close cannot be starved by a continuous commit storm.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.closing = true
	for l.writing {
		l.cond.Wait()
	}
	// Invariant: !writing ⇒ cur == nil, so no staged group is stranded.
	err := l.f.Close()
	l.f = nil
	return err
}

// Truncate discards the log contents; called after a checkpoint captures
// the state the log described. Waits out any in-flight group commit so
// the truncation cannot interleave with a leader's write.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.writing {
		l.cond.Wait()
	}
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.hdr = false // next Append re-writes the format header
	return nil
}

// maxBatchBytes bounds a single batch payload during replay so a corrupt
// length prefix cannot provoke a huge allocation.
const maxBatchBytes = 1 << 30

// Replay reads every intact committed batch from the log at path, calling
// apply for each record in order. A corrupt or torn trailing batch ends
// replay without error (it is, by construction, an uncommitted tail). A
// missing file replays zero records.
func Replay(path string, apply func(Record) error) error {
	_, err := ReplayFrom(path, 0, apply)
	return err
}

// ReplayFrom streams intact committed batches starting at byte offset in
// the log at path, calling apply for each record, and returns the offset
// just past the last intact batch. It reads batch-by-batch through a
// buffered reader rather than loading the whole file, so replay memory is
// bounded by the largest single batch; the returned offset lets a caller
// resume tailing the log incrementally. offset must sit on a batch
// boundary (0, or a value ReplayFrom previously returned). A torn or
// corrupt tail ends replay without error; a missing file replays zero
// records and returns offset unchanged. A file without a valid format
// header (pre-versioning, foreign, or a different FormatVersion) is an
// explicit error, never a silently truncated replay.
func ReplayFrom(path string, offset int64, apply func(Record) error) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return offset, nil
	}
	if err != nil {
		return offset, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	hbuf := make([]byte, headerSize)
	n, _ := io.ReadFull(f, hbuf)
	if n == 0 {
		return offset, nil // empty file: zero records
	}
	if err := checkHeader(path, hbuf[:n]); err != nil {
		if errors.Is(err, errTornHeader) {
			return offset, nil // crash before the first batch: logically empty
		}
		return offset, err
	}
	if offset < headerSize {
		offset = headerSize // offset 0 means "from the first batch"
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return offset, fmt.Errorf("wal: %w", err)
	}
	rd := bufio.NewReaderSize(f, 1<<20)
	end := offset
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return end, nil // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxBatchBytes {
			return end, nil // corrupt length: treat as uncommitted tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			return end, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return end, nil // corrupt batch: treat as uncommitted tail
		}
		recs, err := DecodeRecords(payload)
		if err != nil {
			return end, nil // undecodable despite CRC: stop conservatively
		}
		for _, r := range recs {
			if err := apply(r); err != nil {
				return end, err
			}
		}
		end += int64(8 + n)
	}
}

// ----------------------------------------------------------- encoding

// appendFrame appends one complete on-disk frame — [length u32][crc32
// u32][payload] — for a batch of records to dst and returns the extended
// slice. The 8-byte header is reserved up front and back-filled once the
// payload length and checksum are known, so the whole frame is built in
// one buffer with no intermediate copy.
func appendFrame(dst []byte, recs []Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = AppendRecords(dst, recs)
	payload := dst[start+8:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// EncodeRecords serializes a batch of records into the WAL payload
// format. Exported because replication frames carry the same encoding.
func EncodeRecords(recs []Record) []byte {
	return AppendRecords(nil, recs)
}

// AppendRecords is EncodeRecords appending into an existing buffer, for
// callers (the WAL hot path) that reuse pooled buffers across batches.
func AppendRecords(buf []byte, recs []Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = append(buf, byte(r.Kind))
		switch r.Kind {
		case RecDDL:
			buf = appendString(buf, r.SQL)
		case RecInsert:
			buf = appendString(buf, r.Table)
			buf = binary.AppendUvarint(buf, r.RowID)
			buf = types.EncodeRow(buf, r.Row)
		case RecDelete:
			buf = appendString(buf, r.Table)
			buf = binary.AppendUvarint(buf, r.RowID)
		}
	}
	return buf
}

// DecodeRecords parses a WAL payload produced by EncodeRecords. Arbitrary
// (torn, corrupt, adversarial) input yields an error, never a panic or an
// unbounded allocation.
func DecodeRecords(buf []byte) ([]Record, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, errors.New("wal: bad record count")
	}
	buf = buf[k:]
	// Every record costs at least one byte, so a count beyond the
	// remaining bytes is corrupt; checking here keeps the allocation
	// below proportional to the input.
	if n > uint64(len(buf)) {
		return nil, errors.New("wal: record count exceeds payload")
	}
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(buf) == 0 {
			return nil, errors.New("wal: truncated record")
		}
		r := Record{Kind: RecordKind(buf[0])}
		buf = buf[1:]
		var err error
		switch r.Kind {
		case RecDDL:
			r.SQL, buf, err = readString(buf)
		case RecInsert:
			r.Table, buf, err = readString(buf)
			if err == nil {
				r.RowID, buf, err = readUvarint(buf)
			}
			if err == nil {
				r.Row, buf, err = types.DecodeRow(buf)
			}
		case RecDelete:
			r.Table, buf, err = readString(buf)
			if err == nil {
				r.RowID, buf, err = readUvarint(buf)
			}
		default:
			return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, nil, errors.New("wal: bad uvarint")
	}
	return v, buf[k:], nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf[k:])) < n {
		return "", nil, errors.New("wal: bad string")
	}
	return string(buf[k : k+int(n)]), buf[k+int(n):], nil
}
