package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/types"
)

// TestGroupCommitConcurrent hammers the log from many committers with
// Sync on and verifies (a) every acknowledged batch replays, in a
// per-goroutine order consistent with commit order, and (b) the group
// histogram accounts for every batch. Run under -race this also checks
// the leader/follower handoff for data races.
func TestGroupCommitConcurrent(t *testing.T) {
	const goroutines = 8
	const batches = 25
	reg := metrics.NewRegistry()
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{Sync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				recs := []Record{{
					Kind: RecInsert, Table: fmt.Sprintf("t%d", g),
					RowID: uint64(b), Row: types.Row{types.NewInt(int64(b))},
				}}
				if err := l.Append(recs); err != nil {
					t.Errorf("append g=%d b=%d: %v", g, b, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	next := map[string]uint64{}
	total := 0
	if err := Replay(path, func(r Record) error {
		if r.RowID != next[r.Table] {
			return fmt.Errorf("%s: replayed RowID %d, want %d", r.Table, r.RowID, next[r.Table])
		}
		next[r.Table]++
		total++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := goroutines * batches; total != want {
		t.Fatalf("replayed %d records, want %d", total, want)
	}

	var groups, batched int64
	for _, s := range reg.Gather() {
		if s.Name == "streamrel_wal_group_commit_batches" {
			groups = s.Count
			batched = int64(s.Sum)
		}
	}
	if groups == 0 {
		t.Fatal("no group-commit groups observed")
	}
	if batched != int64(goroutines*batches) {
		t.Fatalf("group histogram sums to %d batches, want %d", batched, goroutines*batches)
	}
}

// TestGroupCommitCloseDuringCommit closes the log while committers are
// mid-flight. The invariant: an Append that returned nil must replay; an
// Append that returned an error must have been rejected cleanly (no
// partial frame corrupting the tail for earlier acked batches).
func TestGroupCommitCloseDuringCommit(t *testing.T) {
	const goroutines = 6
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	var acked [goroutines]int64 // highest RowID acked per goroutine, -1 none
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		acked[g] = -1
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := int64(0); ; b++ {
				select {
				case <-stop:
					return
				default:
				}
				err := l.Append([]Record{{
					Kind: RecInsert, Table: fmt.Sprintf("t%d", g),
					RowID: uint64(b), Row: types.Row{types.NewInt(b)},
				}})
				if err != nil {
					return // closed under us — fine, batch b is unacked
				}
				atomic.StoreInt64(&acked[g], b)
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond) // let commits overlap
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Post-close appends fail explicitly.
	if err := l.Append([]Record{{Kind: RecDDL, SQL: "x"}}); err == nil {
		t.Fatal("append after close succeeded")
	}

	seen := map[string]int64{}
	for g := 0; g < goroutines; g++ {
		seen[fmt.Sprintf("t%d", g)] = -1
	}
	if err := Replay(path, func(r Record) error {
		if want := seen[r.Table] + 1; int64(r.RowID) != want {
			return fmt.Errorf("%s: replayed RowID %d, want %d", r.Table, r.RowID, want)
		}
		seen[r.Table]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		table := fmt.Sprintf("t%d", g)
		if seen[table] < acked[g] {
			t.Errorf("%s: acked through RowID %d but replayed through %d", table, acked[g], seen[table])
		}
	}
}

// TestGroupCommitMaxDelay: a leader configured to hold the door still
// commits everything durably, and concurrent committers merge into
// multi-batch groups.
func TestGroupCommitMaxDelay(t *testing.T) {
	const goroutines = 4
	const batches = 10
	reg := metrics.NewRegistry()
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{Sync: true, GroupCommitMaxDelay: time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if err := l.Append([]Record{{
					Kind: RecInsert, Table: "t", RowID: uint64(g*batches + b),
					Row: types.Row{types.NewInt(int64(b))},
				}}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	if err := Replay(path, func(Record) error { total++; return nil }); err != nil {
		t.Fatal(err)
	}
	if want := goroutines * batches; total != want {
		t.Fatalf("replayed %d records, want %d", total, want)
	}
	var groups int64
	var sum float64
	for _, s := range reg.Gather() {
		if s.Name == "streamrel_wal_group_commit_batches" {
			groups, sum = s.Count, s.Sum
		}
	}
	if groups == 0 || int64(sum) != int64(goroutines*batches) {
		t.Fatalf("histogram: %d groups summing %g batches, want sum %d", groups, sum, goroutines*batches)
	}
	if float64(groups) >= sum {
		t.Logf("no batching observed (%d groups for %g batches) — legal but unexpected under MaxDelay", groups, sum)
	}
}

// TestTruncateWaitsForLeader: Truncate during a commit storm must not
// interleave with a leader's write (which would corrupt the file). After
// the dust settles the log replays only post-truncate records.
func TestTruncateWaitsForLeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; ; b++ {
				select {
				case <-stop:
					return
				default:
				}
				// The log stays open for the whole storm, so any error
				// here is a real bug.
				if err := l.Append([]Record{{Kind: RecDDL, SQL: "stmt"}}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if err := l.Truncate(); err != nil {
			t.Errorf("truncate: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The file must still parse cleanly from the front (no interleaved
	// garbage): Replay stops at a torn tail but must not error.
	if err := Replay(path, func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
