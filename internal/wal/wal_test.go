package wal

import (
	"os"
	"path/filepath"
	"testing"

	"streamrel/internal/types"
)

func row(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Record{
		{{Kind: RecDDL, SQL: "CREATE TABLE t (a bigint)"}},
		{{Kind: RecInsert, Table: "t", Row: row(1)},
			{Kind: RecInsert, Table: "t", Row: row(2)}},
		{{Kind: RecDelete, Table: "t", RowID: 0}},
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	if got[0].Kind != RecDDL || got[0].SQL != "CREATE TABLE t (a bigint)" {
		t.Fatalf("record 0: %+v", got[0])
	}
	if got[1].Kind != RecInsert || got[1].Table != "t" || got[1].Row[0].Int() != 1 {
		t.Fatalf("record 1: %+v", got[1])
	}
	if got[3].Kind != RecDelete || got[3].RowID != 0 {
		t.Fatalf("record 3: %+v", got[3])
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := Replay(filepath.Join(t.TempDir(), "absent"), func(Record) error {
		t.Fatal("should not be called")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path, Options{Sync: true})
	l.Append([]Record{{Kind: RecInsert, Table: "t", Row: row(1)}})
	l.Append([]Record{{Kind: RecInsert, Table: "t", Row: row(2)}})
	l.Close()

	// Truncate mid-way through the second batch to simulate a crash during
	// the write.
	data, _ := os.ReadFile(path)
	for cut := len(data) - 1; cut > len(data)-10 && cut > 0; cut-- {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(got) != 1 || got[0].Row[0].Int() != 1 {
			t.Fatalf("cut=%d: replayed %d records, want exactly the first batch", cut, len(got))
		}
	}
}

func TestCorruptBatchDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path, Options{})
	l.Append([]Record{{Kind: RecInsert, Table: "t", Row: row(1)}})
	l.Append([]Record{{Kind: RecInsert, Table: "t", Row: row(2)}})
	l.Close()
	data, _ := os.ReadFile(path)
	// Flip a bit in the second batch's payload.
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	var got []Record
	if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(got))
	}
}

func TestTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path, Options{})
	l.Append([]Record{{Kind: RecInsert, Table: "t", Row: row(1)}})
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	l.Append([]Record{{Kind: RecInsert, Table: "t", Row: row(9)}})
	l.Close()
	var got []Record
	Replay(path, func(r Record) error { got = append(got, r); return nil })
	if len(got) != 1 || got[0].Row[0].Int() != 9 {
		t.Fatalf("after truncate: %+v", got)
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path, Options{})
	if err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	info, _ := os.Stat(path)
	if info.Size() != 0 {
		t.Fatal("empty append wrote bytes")
	}
}

func TestPreVersioningFileRefused(t *testing.T) {
	// A v1-style file has no header: it starts straight at a batch's
	// [len u32][crc u32]. Both Open and Replay must refuse it explicitly
	// instead of misparsing (and silently truncating) the replay.
	path := filepath.Join(t.TempDir(), "wal")
	payload := EncodeRecords([]Record{{Kind: RecDDL, SQL: "CREATE TABLE t (a bigint)"}})
	var raw []byte
	raw = append(raw, byte(len(payload)), 0, 0, 0)
	raw = append(raw, 0xde, 0xad, 0xbe, 0xef) // crc (value irrelevant)
	raw = append(raw, payload...)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(Record) error { return nil }); err == nil {
		t.Fatal("Replay accepted a pre-versioning file")
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a pre-versioning file")
	}
}

func TestFormatVersionMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	hdr := fileHeader()
	hdr[6], hdr[7] = 0xff, 0x7f // future version
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path, func(Record) error { return nil }); err == nil {
		t.Fatal("Replay accepted a mismatched format version")
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a mismatched format version")
	}
}

func TestTornHeaderIsEmptyLog(t *testing.T) {
	// A crash between creating the file and finishing the first append can
	// leave a prefix of the header; that is a logically empty log, and the
	// file must remain usable.
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, fileHeader()[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d records from a torn header", n)
	}
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{{Kind: RecInsert, Table: "t", Row: row(5)}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var got []Record
	if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Row[0].Int() != 5 {
		t.Fatalf("after torn-header reset: %+v", got)
	}
}

func TestAppendAfterCloseErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path, Options{})
	l.Close()
	if err := l.Append([]Record{{Kind: RecDDL, SQL: "x"}}); err == nil {
		t.Fatal("append after close should error")
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close should be fine")
	}
}

func TestMixedDatumTypesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := Open(path, Options{})
	in := types.Row{
		types.NewInt(-5), types.NewFloat(2.5), types.NewString("héllo"),
		types.True, types.Null, types.NewTimestampMicros(123456789),
		types.NewIntervalMicros(-60_000_000),
	}
	l.Append([]Record{{Kind: RecInsert, Table: "t", Row: in}})
	l.Close()
	var got types.Row
	Replay(path, func(r Record) error { got = r.Row; return nil })
	if !types.RowsEqual(in, got) {
		t.Fatalf("round trip: %v vs %v", in, got)
	}
}
