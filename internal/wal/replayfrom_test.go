package wal

import (
	"os"
	"path/filepath"
	"testing"

	"streamrel/internal/types"
)

// TestReplayFromOffsets appends three batches and checks that replaying
// from each batch boundary yields exactly the remaining records, and that
// the returned end offset equals the file size.
func TestReplayFromOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Record{
		{{Kind: RecDDL, SQL: "CREATE TABLE t (a bigint)"}},
		{{Kind: RecInsert, Table: "t", RowID: 0, Row: row(1)},
			{Kind: RecInsert, Table: "t", RowID: 1, Row: row(2)}},
		{{Kind: RecDelete, Table: "t", RowID: 0}},
	}
	var bounds []int64 // file size after each batch
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	wantRemaining := []int{4, 3, 1, 0}
	offsets := append([]int64{0}, bounds...)
	for i, off := range offsets {
		var got []Record
		end, err := ReplayFrom(path, off, func(r Record) error { got = append(got, r); return nil })
		if err != nil {
			t.Fatalf("ReplayFrom(%d): %v", off, err)
		}
		if len(got) != wantRemaining[i] {
			t.Fatalf("ReplayFrom(%d): %d records, want %d", off, len(got), wantRemaining[i])
		}
		if end != bounds[len(bounds)-1] {
			t.Fatalf("ReplayFrom(%d): end %d, want %d", off, end, bounds[len(bounds)-1])
		}
	}

	// RowIDs survive the round trip.
	var got []Record
	if _, err := ReplayFrom(path, bounds[0], func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if got[0].RowID != 0 || got[1].RowID != 1 {
		t.Fatalf("rowids: %d, %d", got[0].RowID, got[1].RowID)
	}
}

// TestReplayFromTornTail checks that garbage after the last complete
// batch is ignored and the end offset points at the valid prefix, so a
// subsequent append resumes from a clean boundary.
func TestReplayFromTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{{Kind: RecInsert, Table: "t", RowID: 7, Row: row(42)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	valid := fi.Size()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe}) // torn header
	f.Close()

	n := 0
	end, err := ReplayFrom(path, 0, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || end != valid {
		t.Fatalf("n=%d end=%d, want 1 record and end %d", n, end, valid)
	}
}

// FuzzDecodeRecords checks the batch decoder never panics or
// over-allocates on arbitrary bytes, and that valid encodings round-trip.
func FuzzDecodeRecords(f *testing.F) {
	seed := [][]Record{
		{{Kind: RecDDL, SQL: "CREATE TABLE t (a bigint)"}},
		{{Kind: RecInsert, Table: "t", RowID: 3, Row: types.Row{types.NewInt(1), types.NewString("x")}}},
		{{Kind: RecDelete, Table: "t", RowID: 9}},
		{{Kind: RecInsert, Table: "t", RowID: 0, Row: types.Row{types.Null}},
			{Kind: RecDelete, Table: "t", RowID: 0}},
	}
	for _, recs := range seed {
		f.Add(EncodeRecords(recs))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same shape.
		again, err := DecodeRecords(EncodeRecords(recs))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip: %d records, want %d", len(again), len(recs))
		}
	})
}
