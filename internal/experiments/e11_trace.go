package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// E11 measures end-to-end tracing overhead: the same k-CQ ingest workload
// with tracing disabled, at the default 1/256 batch sampling, and tracing
// every batch. The span pipeline is designed to be lock-cheap on the hot
// path (one atomic add per batch when unsampled), so the default rate
// should cost well under 5% of ingest throughput; tracing every batch
// bounds the worst case.
func E11(s Scale) (*Table, error) {
	n := s.n(120_000)
	const k = 4
	const reps = 5
	t := &Table{
		ID:     "E11",
		Title:  "tracing overhead: ingest throughput vs span sample rate",
		Header: []string{"sampling", "ingest", "rate", "vs off"},
	}
	t.Metrics = map[string]float64{}

	run := func(sampleEvery int) (time.Duration, error) {
		eng, err := streamrel.Open(streamrel.Config{
			DisableSharing:   true,
			TraceSampleEvery: sampleEvery,
		})
		if err != nil {
			return 0, err
		}
		defer eng.Close()
		if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
			return 0, err
		}
		var cqs []*streamrel.CQ
		for i := 0; i < k; i++ {
			cq, err := eng.Subscribe(fmt.Sprintf(`SELECT client_ip, count(*)
				FROM url_stream <VISIBLE 2000 ROWS ADVANCE 500 ROWS>
				WHERE url <> '/none%d' GROUP BY client_ip`, i))
			if err != nil {
				return 0, err
			}
			cqs = append(cqs, cq)
		}
		rows := workload.NewClickstream(workload.ClickConfig{Seed: 11, EventsPerSec: 400}).Take(n)
		start := time.Now()
		for off := 0; off < len(rows); off += 256 {
			end := off + 256
			if end > len(rows) {
				end = len(rows)
			}
			if err := eng.Append("url_stream", rows[off:end]...); err != nil {
				return 0, err
			}
		}
		if err := eng.Flush(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		for _, cq := range cqs {
			cq.Close()
		}
		return elapsed, nil
	}

	configs := []struct {
		label  string
		metric string
		every  int
	}{
		{"off", "off", -1},
		{"1/256 (default)", "default", 0},
		{"1/1 (every batch)", "every", 1},
	}
	// Interleave the configs round-robin and keep each config's best
	// rep: overhead this small is easily swamped by a single GC pause or
	// background load, and interleaving exposes every config to the same
	// machine conditions instead of measuring drift between phases.
	mins := make([]time.Duration, len(configs))
	for r := 0; r < reps; r++ {
		for i, c := range configs {
			d, err := run(c.every)
			if err != nil {
				return nil, err
			}
			if mins[i] == 0 || d < mins[i] {
				mins[i] = d
			}
		}
	}
	off := mins[0]
	for i, c := range configs {
		d := mins[i]
		overhead := float64(d-off) / float64(off) * 100
		t.Metrics[fmt.Sprintf("trace_%s_ingest_s", c.metric)] = d.Seconds()
		t.Metrics[fmt.Sprintf("trace_%s_rate_rows_per_s", c.metric)] = float64(n) / d.Seconds()
		if c.every >= 0 {
			t.Metrics[fmt.Sprintf("trace_%s_overhead_pct", c.metric)] = overhead
		}
		vs := "—"
		if c.every >= 0 {
			vs = fmt.Sprintf("%+.1f%%", overhead)
		}
		t.Rows = append(t.Rows, []string{c.label, fmtDur(d), fmtRate(n, d), vs})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d rows, %d unshared CQs, batches of 256, best of %d interleaved runs per config", n, k, reps),
		"unsampled batches still pay one atomic counter add and a timestamp; sampled batches record spans into a mutex-guarded ring",
		"true overhead sits at or below the run-to-run noise floor, so small negative percentages are expected")
	return t, nil
}
