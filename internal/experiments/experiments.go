// Package experiments implements the paper's evaluation suite. The CIDR
// paper is a vision paper with one conceptual figure and one quantified
// case study; DESIGN.md §4 maps every figure and quantified claim to an
// experiment here (F1, E1–E8). cmd/srbench prints each experiment's table;
// bench_test.go mirrors them as testing.B benchmarks.
//
// All experiments run the real engine end to end: the "store-first" side
// is the same engine used batch-style (bulk load, then snapshot query), so
// comparisons isolate the architectural variable rather than
// implementation quality.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result, printable as the paper would report
// it.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics carries machine-readable scalars (latency quantiles and
	// the like) into the -json report alongside the formatted rows.
	Metrics map[string]float64 `json:"Metrics,omitempty"`
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(t.Metrics) > 0 {
		keys := make([]string, 0, len(t.Metrics))
		for k := range t.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "metric: %s = %g\n", k, t.Metrics[k])
		}
	}
	return b.String()
}

// Scale adjusts experiment sizes: 1.0 is the default laptop-scale run;
// benchmarks use smaller scales.
type Scale float64

func (s Scale) n(base int) int {
	v := int(float64(base) * float64(s))
	if v < 1 {
		return 1
	}
	return v
}

// fmtDur renders a duration with enough precision to compare across many
// orders of magnitude.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return d.Round(time.Second).String()
	}
}

func fmtRate(n int, d time.Duration) string {
	if d <= 0 {
		return "∞"
	}
	r := float64(n) / d.Seconds()
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f/s", r)
	}
}

func fmtX(x float64) string {
	switch {
	case x >= 100:
		return fmt.Sprintf("%.0f×", x)
	default:
		return fmt.Sprintf("%.1f×", x)
	}
}

// All runs every experiment at the given scale.
func All(s Scale) ([]*Table, error) {
	runs := []func(Scale) (*Table, error){
		F1, E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13, E14, E15, E16,
	}
	out := make([]*Table, 0, len(runs))
	for _, run := range runs {
		t, err := run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
