package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamrel"
	"streamrel/client"
	"streamrel/internal/server"
	"streamrel/internal/shard"
	"streamrel/internal/types"
)

// E13 is the horizontal scale-out ladder: the same keyed, durable ingest
// workload driven by many concurrent producers against (a) one engine
// directly and (b) the shard router over 1, 2 and 4 shard engines, all
// over loopback TCP with SyncWAL on and a raw archive channel so every
// committed batch pays a txn commit + WAL fsync.
//
// This measures the paper's network-effect pressure applied to writes.
// The workload is the adversarial-but-realistic one for a single node:
// many clients each pushing small keyed batches as events happen, so the
// per-append fixed cost (source lock, txn commit, WAL write + fsync,
// archive channel) dominates the per-row cost and concurrent producers
// serialize behind the stream source lock. The router changes the shape
// of the work: it splits each batch by PARTITION BY key and its
// coalescing sender drains everything queued behind a busy shard into
// ONE wire append — router-level group commit — so the per-append fixed
// cost amortizes across producers, and with N > 1 the shards' WAL lanes
// overlap. Reported per rung: end-to-end ingest rows/s
// (durability-acked) and the window fire latency seen by a merged CQ
// subscription (wall-clock window close → merged batch delivery, which
// for the router includes the cross-shard watermark wait).
//
// On a single-core host the ladder still shows the router-level group
// commit win (router ×1 and ×2 beat direct), but rungs cannot scale
// with N: each extra shard duplicates engine fixed overhead while
// adding no CPU. On multi-core hosts the ×2 and ×4 rungs additionally
// overlap shard CPU.
func E13(s Scale) (*Table, error) {
	n := s.n(12_000)
	const producers = 32

	t := &Table{
		ID:    "E13",
		Title: "shard scale-out: keyed durable ingest, direct vs router over N shards",
		Header: []string{"topology", "shards", "rows", "ingest", "rate",
			"fire p50", "fire p95", "windows"},
		Metrics: map[string]float64{},
	}

	type rung struct {
		label  string
		shards int
		router bool
		metric string
	}
	rungs := []rung{
		{"direct", 1, false, "direct"},
		{"router", 1, true, "shard1"},
		{"router", 2, true, "shard2"},
		{"router", 4, true, "shard4"},
	}
	rates := map[string]float64{}
	for _, r := range rungs {
		elapsed, fires, err := shardRun(n, producers, r.shards, r.router)
		if err != nil {
			return nil, fmt.Errorf("%s ×%d: %w", r.label, r.shards, err)
		}
		p50, p95 := quantileDur(fires, 0.50), quantileDur(fires, 0.95)
		t.Rows = append(t.Rows, []string{
			r.label, fmt.Sprintf("%d", r.shards), fmt.Sprintf("%d", n),
			fmtDur(elapsed), fmtRate(n, elapsed),
			fmtDurOrDash(p50), fmtDurOrDash(p95), fmt.Sprintf("%d", len(fires)),
		})
		rates[r.metric] = rate(n, elapsed)
		t.Metrics[r.metric+"_rows_per_s"] = rates[r.metric]
		if len(fires) > 0 {
			t.Metrics[r.metric+"_fire_p95_s"] = p95.Seconds()
		}
	}
	if rates["direct"] > 0 {
		for _, m := range []string{"shard1", "shard2", "shard4"} {
			t.Metrics[m+"_speedup_vs_direct"] = rates[m] / rates["direct"]
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d concurrent producers over loopback TCP, batches of %d keyed rows each, SyncWAL on", producers, shardBatch),
		"every rung archives the base stream to a table via an APPEND channel: each committed append pays a txn commit + WAL fsync",
		"the router's coalescing sender drains all sub-batches queued behind a busy shard into one append (router-level group commit), amortizing the per-append fixed cost across producers",
		"fire latency is wall-clock window close → (merged) CQ batch delivery; router rungs include the cross-shard watermark wait",
	)
	return t, nil
}

// shardBatch is the rows-per-Append micro-batch each producer sends.
const shardBatch = 4

// shardRun boots nShards durable engines behind loopback servers
// (fronted by the router when useRouter is set), drives n keyed rows
// from concurrent producers, and returns the producer-phase wall time
// plus the observed window fire latencies.
func shardRun(n, producers, nShards int, useRouter bool) (time.Duration, []time.Duration, error) {
	var addrs []string
	var engines []*streamrel.Engine
	var servers []*server.Server
	defer func() {
		for i := range servers {
			servers[i].Close()
			engines[i].Close()
		}
	}()
	for i := 0; i < nShards; i++ {
		dir, err := os.MkdirTemp("", "srbench-e13-")
		if err != nil {
			return 0, nil, err
		}
		defer os.RemoveAll(dir)
		eng, err := streamrel.Open(streamrel.Config{
			Dir: dir, SyncWAL: true, TraceSampleEvery: -1,
		})
		if err != nil {
			return 0, nil, err
		}
		srv := server.New(eng)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			eng.Close()
			return 0, nil, err
		}
		go srv.Serve()
		engines = append(engines, eng)
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}

	front := addrs[0]
	if useRouter {
		r, err := shard.NewRouter(shard.Options{Addrs: addrs, TraceSampleEvery: -1})
		if err != nil {
			return 0, nil, err
		}
		defer r.Close()
		if up := r.WaitReady(10 * time.Second); up < nShards {
			return 0, nil, fmt.Errorf("only %d of %d shards up", up, nShards)
		}
		front, err = r.Listen("127.0.0.1:0")
		if err != nil {
			return 0, nil, err
		}
		go r.Serve()
	}

	admin, err := client.Dial(front)
	if err != nil {
		return 0, nil, err
	}
	defer admin.Close()
	for _, stmt := range []string{
		`CREATE STREAM s (k varchar(16), v bigint, at timestamp CQTIME SYSTEM) PARTITION BY k`,
		`CREATE TABLE raw (k varchar(16), v bigint, at timestamp)`,
		`CREATE CHANNEL raw_ch FROM s INTO raw APPEND`,
	} {
		if _, err := admin.Exec(stmt); err != nil {
			return 0, nil, fmt.Errorf("%s: %w", stmt, err)
		}
	}

	// The merged CQ: with CQTIME SYSTEM, closes are wall-clock-aligned
	// 250ms boundaries, so close→delivery is the fire latency.
	sub, err := admin.Subscribe(`SELECT count(*) AS c, cq_close(*) FROM s <ADVANCE '250 milliseconds'>`)
	if err != nil {
		return 0, nil, err
	}
	var fmu sync.Mutex
	var fires []time.Duration
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for b := range sub.C {
			lat := time.Since(b.Close)
			fmu.Lock()
			fires = append(fires, lat)
			fmu.Unlock()
		}
	}()

	var next int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(front)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer c.Close()
			rows := make([]client.Row, shardBatch)
			for {
				lo := int(atomic.AddInt64(&next, shardBatch)) - shardBatch
				if lo >= n {
					return
				}
				for i := range rows {
					id := lo + i
					rows[i] = client.Row{
						types.NewString(fmt.Sprintf("k%02d", id%64)),
						types.NewInt(int64(id)),
						types.NewTimestamp(time.Now()), // overwritten: CQTIME SYSTEM
					}
				}
				if err := c.Append("s", rows...); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, nil, err
	}

	sub.Close()
	<-subDone
	fmu.Lock()
	defer fmu.Unlock()
	return elapsed, fires, nil
}

// quantileDur returns the q-quantile of the samples, or 0 if empty.
func quantileDur(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(d))
	copy(cp, d)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	i := int(q * float64(len(cp)-1))
	return cp[i]
}

func fmtDurOrDash(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmtDur(d)
}
