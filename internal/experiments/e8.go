package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// E8 quantifies §1.2 ("Less Time"): the result-availability delay for a
// metric under batch reporting at period T versus a continuous query with
// one-minute windows. For a consumer asking "what happened in minute m",
// the delay is the gap between the end of minute m and the moment a
// correct answer is queryable. With batch-period T the answer appears only
// at the next batch run; with continuous processing it appears at the next
// window close.
func E8(s Scale) (*Table, error) {
	n := s.n(120_000)
	// Stream time covered by n events at the configured rate.
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.ExecScript(`
		CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar);
		CREATE STREAM hits_now AS
			SELECT count(*) AS hits, cq_close(*) AS stime
			FROM url_stream <ADVANCE '1 minute'>;
		CREATE TABLE hits_active (hits bigint, stime timestamp);
		CREATE CHANNEL hits_ch FROM hits_now INTO hits_active APPEND;
	`); err != nil {
		return nil, err
	}
	gen := workload.NewClickstream(workload.ClickConfig{Seed: 13, EventsPerSec: 300})
	startTS := gen.Now()
	rows := gen.Take(n)
	if err := eng.Append("url_stream", rows...); err != nil {
		return nil, err
	}
	eng.AdvanceTime("url_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
	res, err := eng.Query(`SELECT count(*) FROM hits_active`)
	if err != nil {
		return nil, err
	}
	minutes := res.Data[0][0].Int()
	span := time.Duration(gen.Now()-startTS) * time.Microsecond

	// Availability delay for a metric about minute m: the time from the
	// end of minute m until a correct answer exists. Continuous: the
	// window closes at the minute boundary, so the delay is processing
	// time (microseconds here; effectively zero in stream time). Batch at
	// period T: minute m's data is only queryable after the next batch
	// load+report at the following T boundary — on average T/2, worst T.
	mk := func(policy string, avg, worst time.Duration) []string {
		return []string{policy, fmtDur(avg), fmtDur(worst)}
	}
	t := &Table{
		ID:     "E8",
		Title:  "§1.2 result-availability delay: when is \"minute m\" queryable?",
		Header: []string{"reporting policy", "avg delay (stream time)", "worst delay"},
		Rows: [][]string{
			mk("next-day batch (T = 24h)", 12*time.Hour, 24*time.Hour),
			mk("hourly batch (T = 1h)", 30*time.Minute, time.Hour),
			mk("15-minute batch", 450*time.Second, 15*time.Minute),
			mk("continuous, 1-minute windows", 0, 0),
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured over %d events spanning %s of stream time; %d one-minute windows were queryable at their boundary",
			n, fmtDur(span), minutes),
		"batch delays are the structural floor of store-first reporting (data is not queryable until loaded and reported), independent of hardware")
	return t, nil
}
