package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// E2 quantifies §1.1 ("More Data"): as event volume grows — the paper's
// 10×-per-year hyper-growth, modeled as increasing arrival rate over a
// fixed 10-minute reporting horizon — the store-first report cost grows
// with it, while the continuous architecture's report cost stays flat: the
// report reads an Active Table whose size tracks metric groups × windows,
// not events.
func E2(s Scale) (*Table, error) {
	const spanSeconds = 600 // fixed 10-minute horizon
	volumes := []int{s.n(50_000), s.n(100_000), s.n(200_000), s.n(400_000)}
	t := &Table{
		ID:     "E2",
		Title:  "§1.1 growth sweep: report latency vs event volume",
		Header: []string{"events", "store-first report", "continuous report", "gap"},
	}
	for _, n := range volumes {
		// Store-first.
		batch, err := streamrel.Open(streamrel.Config{})
		if err != nil {
			return nil, err
		}
		batch.Exec(`CREATE TABLE sec_events (
			etime timestamp, src_ip varchar, dst_port bigint, action varchar, bytes bigint)`)
		rate := float64(n) / spanSeconds
		events := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 11, EventsPerSec: rate}).Take(n)
		if err := batch.BulkInsert("sec_events", events); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := batch.Query(securityReportBatch); err != nil {
			return nil, err
		}
		batchLat := time.Since(start)
		batch.Close()

		// Continuous.
		cont, err := streamrel.Open(streamrel.Config{})
		if err != nil {
			return nil, err
		}
		if err := cont.ExecScript(`
			CREATE STREAM sec_stream (
				etime timestamp CQTIME USER, src_ip varchar, dst_port bigint,
				action varchar, bytes bigint);
			CREATE STREAM deny_now AS
				SELECT src_ip, count(*) AS denials, cq_close(*)
				FROM sec_stream <ADVANCE '1 minute'>
				WHERE action = 'deny'
				GROUP BY src_ip;
			CREATE TABLE deny_archive (src_ip varchar, denials bigint, stime timestamp);
			CREATE CHANNEL deny_ch FROM deny_now INTO deny_archive APPEND;
		`); err != nil {
			return nil, err
		}
		gen := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 11, EventsPerSec: rate})
		if err := cont.Append("sec_stream", gen.Take(n)...); err != nil {
			return nil, err
		}
		cont.AdvanceTime("sec_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
		start = time.Now()
		if _, err := cont.Query(securityReportActive); err != nil {
			return nil, err
		}
		contLat := time.Since(start)
		cont.Close()

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmtDur(batchLat), fmtDur(contLat),
			fmtX(float64(batchLat) / float64(contLat)),
		})
	}
	t.Notes = append(t.Notes,
		"store-first latency grows linearly with volume; the continuous report grows only with groups × windows, so the gap widens with volume")
	return t, nil
}
