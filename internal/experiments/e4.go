package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/baseline"
	"streamrel/internal/workload"
)

// E4 compares Active Tables with periodically refreshed materialized
// views (§5). Both maintain "revenue per campaign per minute" from an
// impression feed. The MV recomputes from the raw table on a timer
// (paying a full-table scan each refresh, and serving stale data between
// refreshes); the Active Table is maintained incrementally at window
// closes with bounded staleness (≤ ADVANCE).
func E4(s Scale) (*Table, error) {
	n := s.n(200_000)
	periods := []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute}
	t := &Table{
		ID:     "E4",
		Title:  "§5 materialized views: periodic refresh vs Active Table",
		Header: []string{"strategy", "maintenance time", "refreshes", "max staleness", "avg staleness"},
	}

	const mvRefreshSQL = `
		INSERT INTO mv_rev
		SELECT campaign, date_trunc('minute', itime), sum(cost)
		FROM impressions
		GROUP BY campaign, date_trunc('minute', itime)`

	for _, period := range periods {
		eng, err := streamrel.Open(streamrel.Config{})
		if err != nil {
			return nil, err
		}
		if err := eng.ExecScript(`
			CREATE TABLE impressions (itime timestamp, campaign bigint, publisher bigint, cost bigint);
			CREATE TABLE mv_rev (campaign bigint, minute timestamp, revenue bigint);
		`); err != nil {
			return nil, err
		}
		var maintain time.Duration
		mv := &baseline.PeriodicMV{
			Period: period.Microseconds(),
			Refresh: func() error {
				start := time.Now()
				if _, err := eng.Exec(`TRUNCATE TABLE mv_rev`); err != nil {
					return err
				}
				_, err := eng.Exec(mvRefreshSQL)
				maintain += time.Since(start)
				return err
			},
		}
		gen := workload.NewImpressions(workload.ImpressionConfig{Seed: 4, EventsPerSec: 600})
		const chunk = 1000
		var staleSum, staleMax, samples int64
		for done := 0; done < n; done += chunk {
			rows := gen.Take(chunk)
			if err := eng.BulkInsert("impressions", rows); err != nil {
				return nil, err
			}
			now := gen.Now()
			if _, err := mv.Observe(now); err != nil {
				return nil, err
			}
			st := mv.Staleness(now)
			staleSum += st
			samples++
			if st > staleMax {
				staleMax = st
			}
		}
		eng.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("MV refresh %v", period),
			fmtDur(maintain),
			fmt.Sprintf("%d", mv.Refreshes()),
			fmtDur(time.Duration(staleMax) * time.Microsecond),
			fmtDur(time.Duration(staleSum/maxInt64(samples, 1)) * time.Microsecond),
		})
	}

	// Active Table: continuous per-minute aggregation.
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.ExecScript(`
		CREATE STREAM imp_stream (itime timestamp CQTIME USER, campaign bigint, publisher bigint, cost bigint);
		CREATE STREAM rev_now AS
			SELECT campaign, sum(cost) AS revenue, cq_close(*)
			FROM imp_stream <ADVANCE '1 minute'>
			GROUP BY campaign;
		CREATE TABLE rev_active (campaign bigint, revenue bigint, stime timestamp);
		CREATE CHANNEL rev_ch FROM rev_now INTO rev_active APPEND;
	`); err != nil {
		return nil, err
	}
	gen := workload.NewImpressions(workload.ImpressionConfig{Seed: 4, EventsPerSec: 600})
	rows := gen.Take(n)
	start := time.Now()
	if err := eng.Append("imp_stream", rows...); err != nil {
		return nil, err
	}
	eng.AdvanceTime("imp_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
	maintain := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"Active Table (1m windows)",
		fmtDur(maintain),
		"continuous",
		"1m (bounded)",
		"30s (bounded)",
	})
	t.Notes = append(t.Notes,
		"MV staleness grows with refresh period and each refresh rescans the raw table; the Active Table's staleness is bounded by ADVANCE",
		"Active Table maintenance time includes full ingest (it replaces the load step, not just the refresh)")
	return t, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
