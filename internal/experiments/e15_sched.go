package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/workload"
)

// E15 measures the multi-tenancy tentpole: the work-stealing CQ scheduler
// plus plan-level sharing, at CQ counts the one-goroutine-per-pipeline
// engine could not reach. The ladder crosses CQ count (100 / 1k / 10k)
// with plan population (shared: all k CQs are the same dashboard query;
// unique: k distinct plans), and reports for each rung the time to
// register all k CQs, the time the LAST registration alone took (it must
// stay O(ms) — registration cost may not grow with existing membership),
// ingest throughput, and window-fire latency quantiles.
//
// Every rung runs twice — synchronous engine and work-stealing scheduler —
// and each subscriber's full fire transcript is hashed and compared
// byte-for-byte across the two runs BEFORE any speedup is reported: the
// scheduler must be a pure performance change.
//
// Expected shape: with plan sharing, the shared column's ingest rate is
// nearly flat in k (the source delivers to ONE host pipeline; per-CQ cost
// is one sink call per fire), so 10k identical dashboards ingest at ≥50%
// of the 100-CQ rate. Unique plans pay O(k) per row — that is the floor
// sharing removes — so the unique rungs stop at 1k.
func E15(s Scale) (*Table, error) {
	// Shared rungs amortize the per-fire fan-out (k sink calls) over the
	// rows between fires, so they get the full row count; unique rungs pay
	// k pipeline visits PER ROW (the floor sharing removes), so they run a
	// smaller ingest to keep the ladder minutes, not hours.
	nShared := s.n(240_000)
	nUnique := s.n(16_000)
	type rung struct {
		k      int
		shared bool
		n      int
	}
	rungs := []rung{
		{100, true, nShared}, {1000, true, nShared}, {10000, true, nShared},
		{100, false, nUnique}, {1000, false, nUnique},
	}

	t := &Table{
		ID:    "E15",
		Title: "work-stealing scheduler + plan sharing: k CQs, registration / ingest / fire latency",
		Header: []string{"k CQs", "plans", "reg all", "last reg", "serial rate",
			"stealing rate", "speedup", "fire p50", "fire p99"},
	}
	t.Metrics = map[string]float64{}

	type runOut struct {
		regAll, regLast, ingest time.Duration
		p50, p99                float64
		fires                   int64
		allocsPerFire           float64
		hashes                  []uint64
	}
	run := func(k int, shared bool, parallel, n int) (*runOut, error) {
		reg := metrics.NewRegistry()
		eng, err := streamrel.Open(streamrel.Config{ParallelCQ: parallel, Metrics: reg})
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
			return nil, err
		}
		cqs := make([]*streamrel.CQ, k)
		regStart := time.Now()
		var lastReg time.Duration
		for i := 0; i < k; i++ {
			q := `SELECT url, count(*) AS hits
				FROM url_stream <VISIBLE '60 seconds' ADVANCE '20 seconds'> GROUP BY url`
			if !shared {
				// A distinct predicate over a NON-grouped column defeats both
				// sharing layers: a url predicate would be hoisted into a
				// per-subscriber residual and the "unique" rung would secretly
				// collapse into one subsumption group.
				q = fmt.Sprintf(`SELECT url, count(*) AS hits
					FROM url_stream <VISIBLE '60 seconds' ADVANCE '20 seconds'>
					WHERE client_ip <> '10.9.9.%d' GROUP BY url`, i)
			}
			t0 := time.Now()
			if cqs[i], err = eng.Subscribe(q); err != nil {
				return nil, err
			}
			lastReg = time.Since(t0)
		}
		regAll := time.Since(regStart)
		rows := workload.NewClickstream(workload.ClickConfig{Seed: 15, EventsPerSec: 2000}).Take(n)
		// Collect registration garbage (k pipelines' worth) before the timed
		// region so the ingest clock doesn't pay k-proportional GC debt.
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for off := 0; off < len(rows); off += 256 {
			end := off + 256
			if end > len(rows) {
				end = len(rows)
			}
			if err := eng.Append("url_stream", rows[off:end]...); err != nil {
				return nil, err
			}
		}
		// Heartbeat past the last event so every trailing window closes
		// deterministically before transcripts are taken.
		last := time.UnixMicro(rows[len(rows)-1][1].TimestampMicros())
		if err := eng.AdvanceTime("url_stream", last.Add(30*time.Second)); err != nil {
			return nil, err
		}
		if err := eng.Flush(); err != nil {
			return nil, err
		}
		ingest := time.Since(start)
		runtime.ReadMemStats(&ms1)

		out := &runOut{regAll: regAll, regLast: lastReg, ingest: ingest,
			hashes: make([]uint64, k)}
		for i, cq := range cqs {
			h := fnv.New64a()
			for {
				b, ok := cq.TryNext()
				if !ok {
					break
				}
				fmt.Fprintf(h, "c=%d\n", b.Close.UnixMicro())
				for _, r := range b.Rows {
					fmt.Fprintln(h, r.String())
				}
				out.fires++
			}
			out.hashes[i] = h.Sum64()
			cq.Close()
		}
		if out.fires > 0 {
			out.allocsPerFire = float64(ms1.Mallocs-ms0.Mallocs) / float64(out.fires)
		}
		out.p50, _, out.p99, _ = fireQuantiles(reg)
		return out, nil
	}

	for _, r := range rungs {
		// Shared rungs finish in ~100ms, where a single GC cycle can swing
		// the rate tens of percent; report best-of-2 so the k100 vs k10000
		// ratio reflects capability, not collection timing. Unique rungs are
		// the expensive ones and carry no acceptance ratio: one attempt.
		attempts := 1
		if r.shared {
			attempts = 2
		}
		best := func(parallel int) (*runOut, error) {
			var b *runOut
			for a := 0; a < attempts; a++ {
				o, err := run(r.k, r.shared, parallel, r.n)
				if err != nil {
					return nil, err
				}
				if b == nil || o.ingest < b.ingest {
					b = o
				}
			}
			return b, nil
		}
		serial, err := best(0)
		if err != nil {
			return nil, err
		}
		stealing, err := best(8)
		if err != nil {
			return nil, err
		}
		// Equivalence gate: every subscriber's transcript must match
		// byte-for-byte (via its hash) before the speedup means anything.
		if serial.fires != stealing.fires {
			return nil, fmt.Errorf("E15 k=%d shared=%v: serial fired %d batches, stealing %d",
				r.k, r.shared, serial.fires, stealing.fires)
		}
		for i := range serial.hashes {
			if serial.hashes[i] != stealing.hashes[i] {
				return nil, fmt.Errorf("E15 k=%d shared=%v: subscriber %d transcript diverges between serial and stealing",
					r.k, r.shared, i)
			}
		}
		plans := "unique"
		if r.shared {
			plans = "shared"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.k), plans,
			fmtDur(serial.regAll), fmtDur(serial.regLast),
			fmtRate(r.n, serial.ingest), fmtRate(r.n, stealing.ingest),
			fmtX(float64(serial.ingest) / float64(stealing.ingest)),
			fmtDur(time.Duration(stealing.p50 * float64(time.Second))),
			fmtDur(time.Duration(stealing.p99 * float64(time.Second))),
		})
		key := fmt.Sprintf("sched_%s_k%d", plans, r.k)
		t.Metrics[key+"_rows_per_s"] = float64(r.n) / stealing.ingest.Seconds()
		t.Metrics[key+"_serial_rows_per_s"] = float64(r.n) / serial.ingest.Seconds()
		t.Metrics[key+"_last_subscribe_ms"] = float64(serial.regLast.Nanoseconds()) / 1e6
		t.Metrics[key+"_fire_p50_s"] = stealing.p50
		t.Metrics[key+"_fire_p99_s"] = stealing.p99
		t.Metrics[key+"_allocs_per_fire"] = stealing.allocsPerFire
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; stealing speedup is bounded by min(pipelines, cores), so single-core hosts report ≈1.0×",
			runtime.GOMAXPROCS(0)),
		"serial and stealing runs are transcript-compared per subscriber (hash of every fire) before speedups are reported",
		fmt.Sprintf("unique-plan rungs stop at 1k and ingest %d rows (shared rungs: %d): without sharing each row visits all k pipelines, the O(k) floor plan sharing removes", nUnique, nShared),
		"acceptance: shared_k10000 rate ≥ 0.5 × shared_k100 rate; shared_k10000_last_subscribe_ms stays single-digit")
	return t, nil
}
