package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// E5 measures the stream-table combinations §3.3 and §6 call out: (a)
// enriching fact data with dimension-table data inside a CQ, and (b) the
// Example 5 historical comparison — current metrics joined against the
// Active Table's past metrics.
func E5(s Scale) (*Table, error) {
	n := s.n(150_000)
	t := &Table{
		ID:     "E5",
		Title:  "§3.3/§6 stream-table joins: dimension enrichment and historical comparison",
		Header: []string{"query", "events", "windows", "output rows", "ingest time", "throughput"},
	}

	// (a) Enrichment join: impressions ⋈ campaigns dimension.
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		return nil, err
	}
	if err := eng.ExecScript(`
		CREATE TABLE campaigns (id bigint, advertiser varchar, daily_budget bigint);
		CREATE STREAM imp_stream (itime timestamp CQTIME USER, campaign bigint, publisher bigint, cost bigint);
	`); err != nil {
		return nil, err
	}
	var dim []streamrel.Row
	for i := int64(0); i < 50; i++ {
		dim = append(dim, streamrel.Row{
			streamrel.Int(i), streamrel.String(fmt.Sprintf("advertiser-%d", i%10)),
			streamrel.Int(1_000_000 + i*10_000),
		})
	}
	if err := eng.BulkInsert("campaigns", dim); err != nil {
		return nil, err
	}
	cq, err := eng.Subscribe(`
		SELECT c.advertiser, sum(i.cost) AS spend
		FROM imp_stream <ADVANCE '1 minute'> i
		JOIN campaigns c ON i.campaign = c.id
		GROUP BY c.advertiser`)
	if err != nil {
		return nil, err
	}
	gen := workload.NewImpressions(workload.ImpressionConfig{Seed: 6, EventsPerSec: 500})
	rows := gen.Take(n)
	start := time.Now()
	if err := eng.Append("imp_stream", rows...); err != nil {
		return nil, err
	}
	eng.AdvanceTime("imp_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
	elapsed := time.Since(start)
	windows, out := 0, 0
	for _, b := range cq.Drain() {
		windows++
		out += len(b.Rows)
	}
	cq.Close()
	eng.Close()
	t.Rows = append(t.Rows, []string{
		"enrichment (stream ⋈ dim)", fmt.Sprintf("%d", n), fmt.Sprintf("%d", windows),
		fmt.Sprintf("%d", out), fmtDur(elapsed), fmtRate(n, elapsed),
	})

	// (b) Historical comparison (Example 5): current window total joined
	// with the total archived ADVANCE ago.
	eng2, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		return nil, err
	}
	defer eng2.Close()
	if err := eng2.ExecScript(`
		CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar);
		CREATE STREAM urls_now AS
			SELECT url, count(*) AS scnt, cq_close(*) AS stime
			FROM url_stream <ADVANCE '1 minute'>
			GROUP BY url;
		CREATE TABLE urls_archive (url varchar, scnt bigint, stime timestamp);
		CREATE CHANNEL urls_ch FROM urls_now INTO urls_archive APPEND;
	`); err != nil {
		return nil, err
	}
	histo, err := eng2.Subscribe(`
		select c.scnt, h.scnt, c.stime
		from (select sum(scnt) as scnt, cq_close(*) as stime
		      from urls_now <slices 1 windows>) c,
		     urls_archive h
		where c.stime - '1 minute'::interval = h.stime AND h.url = '/page/0001'`)
	if err != nil {
		return nil, err
	}
	gen2 := workload.NewClickstream(workload.ClickConfig{Seed: 6, EventsPerSec: 400})
	rows2 := gen2.Take(n)
	start = time.Now()
	if err := eng2.Append("url_stream", rows2...); err != nil {
		return nil, err
	}
	eng2.AdvanceTime("url_stream", time.UnixMicro(gen2.Now()+60_000_000).UTC())
	elapsed = time.Since(start)
	windows, out = 0, 0
	for _, b := range histo.Drain() {
		windows++
		out += len(b.Rows)
	}
	histo.Close()
	t.Rows = append(t.Rows, []string{
		"historical (Example 5)", fmt.Sprintf("%d", n), fmt.Sprintf("%d", windows),
		fmt.Sprintf("%d", out), fmtDur(elapsed), fmtRate(n, elapsed),
	})
	t.Notes = append(t.Notes,
		"both queries run under window consistency: each window close sees a boundary snapshot of the tables")
	return t, nil
}
