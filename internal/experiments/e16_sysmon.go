package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// E16 measures self-observability overhead: the same k-CQ ingest workload
// with sysmon off, at the production default 1-second snapshot interval,
// and at an aggressive 10ms interval (100 snapshots/s — two orders of
// magnitude denser than production, bounding the worst case). A snapshot
// gathers the whole metrics registry, the per-pipeline stats and the trace
// ring, then appends the rows through the internal sys.* path, so its cost
// scales with series count, not ingest rate; the default interval must
// stay within the ≤3% overhead claim. A second measurement pins
// allocations per snapshot (budget-gated in BENCH_budget.json).
func E16(s Scale) (*Table, error) {
	n := s.n(120_000)
	const k = 4
	const reps = 5
	t := &Table{
		ID:     "E16",
		Title:  "sysmon overhead: ingest throughput vs telemetry snapshot interval",
		Header: []string{"sysmon", "ingest", "rate", "vs off"},
	}
	t.Metrics = map[string]float64{}

	run := func(interval time.Duration) (time.Duration, error) {
		eng, err := streamrel.Open(streamrel.Config{
			DisableSharing: true,
			SysMonInterval: interval,
		})
		if err != nil {
			return 0, err
		}
		defer eng.Close()
		if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
			return 0, err
		}
		var cqs []*streamrel.CQ
		for i := 0; i < k; i++ {
			cq, err := eng.Subscribe(fmt.Sprintf(`SELECT client_ip, count(*)
				FROM url_stream <VISIBLE 2000 ROWS ADVANCE 500 ROWS>
				WHERE url <> '/none%d' GROUP BY client_ip`, i))
			if err != nil {
				return 0, err
			}
			cqs = append(cqs, cq)
		}
		rows := workload.NewClickstream(workload.ClickConfig{Seed: 16, EventsPerSec: 400}).Take(n)
		start := time.Now()
		for off := 0; off < len(rows); off += 256 {
			end := off + 256
			if end > len(rows) {
				end = len(rows)
			}
			if err := eng.Append("url_stream", rows[off:end]...); err != nil {
				return 0, err
			}
		}
		if err := eng.Flush(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		for _, cq := range cqs {
			cq.Close()
		}
		return elapsed, nil
	}

	configs := []struct {
		label    string
		metric   string
		interval time.Duration
	}{
		{"off", "off", 0},
		{"1s (default)", "default", time.Second},
		{"10ms (aggressive)", "aggressive", 10 * time.Millisecond},
	}
	// Interleave the configs round-robin and keep each config's best rep
	// (same method as E11): overhead this small is easily swamped by one
	// GC pause, and interleaving exposes every config to the same machine
	// conditions instead of measuring drift between phases.
	mins := make([]time.Duration, len(configs))
	for r := 0; r < reps; r++ {
		for i, c := range configs {
			d, err := run(c.interval)
			if err != nil {
				return nil, err
			}
			if mins[i] == 0 || d < mins[i] {
				mins[i] = d
			}
		}
	}
	off := mins[0]
	for i, c := range configs {
		d := mins[i]
		overhead := float64(d-off) / float64(off) * 100
		t.Metrics[fmt.Sprintf("sysmon_%s_ingest_s", c.metric)] = d.Seconds()
		t.Metrics[fmt.Sprintf("sysmon_%s_rate_rows_per_s", c.metric)] = float64(n) / d.Seconds()
		vs := "—"
		if c.interval > 0 {
			t.Metrics[fmt.Sprintf("sysmon_%s_overhead_pct", c.metric)] = overhead
			vs = fmt.Sprintf("%+.1f%%", overhead)
		}
		t.Rows = append(t.Rows, []string{c.label, fmtDur(d), fmtRate(n, d), vs})
	}

	// Allocations per snapshot, measured on a manual-tick engine with the
	// same schema and CQ fan-out so the registry holds a realistic series
	// population. Deterministic, hence budget-gateable where the overhead
	// percentage is noise-bound.
	allocs, err := sysmonAllocsPerSnapshot(k)
	if err != nil {
		return nil, err
	}
	t.Metrics["sysmon_allocs_per_snapshot"] = allocs
	t.Rows = append(t.Rows, []string{"allocs/snapshot", fmt.Sprintf("%.0f", allocs), "—", "—"})

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d rows, %d unshared CQs, batches of 256, best of %d interleaved runs per config", n, k, reps),
		"a snapshot's cost scales with registry series count, not ingest rate; sys.* appends skip WAL, replication and tracing",
		"true overhead sits at or below the run-to-run noise floor, so small negative percentages are expected")
	return t, nil
}

// sysmonAllocsPerSnapshot measures heap allocations of one explicit
// SysSnapshot on an engine with k pipelines' worth of telemetry.
func sysmonAllocsPerSnapshot(k int) (float64, error) {
	eng, err := streamrel.Open(streamrel.Config{
		DisableSharing: true,
		SysMonInterval: -1, // sys.* streams live, ticks manual
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
		return 0, err
	}
	for i := 0; i < k; i++ {
		cq, err := eng.Subscribe(fmt.Sprintf(`SELECT client_ip, count(*)
			FROM url_stream <VISIBLE 2000 ROWS ADVANCE 500 ROWS>
			WHERE url <> '/none%d' GROUP BY client_ip`, i))
		if err != nil {
			return 0, err
		}
		defer cq.Close()
	}
	rows := workload.NewClickstream(workload.ClickConfig{Seed: 16, EventsPerSec: 400}).Take(4096)
	if err := eng.Append("url_stream", rows...); err != nil {
		return 0, err
	}
	// Warm the snapshot path, then measure the steady state the way E12
	// measures allocs/row: whole-process Mallocs delta over N snapshots.
	const warm, measured = 5, 50
	for i := 0; i < warm; i++ {
		if err := eng.SysSnapshot(); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < measured; i++ {
		if err := eng.SysSnapshot(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / measured, nil
}
