package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// securityReportSQL is the §4 case study's report: top denied sources.
const securityReportBatch = `
	SELECT src_ip, count(*) AS denials
	FROM sec_events
	WHERE action = 'deny'
	GROUP BY src_ip
	ORDER BY denials DESC, src_ip
	LIMIT 10`

const securityReportActive = `
	SELECT src_ip, sum(denials) AS denials
	FROM deny_archive
	GROUP BY src_ip
	ORDER BY denials DESC, src_ip
	LIMIT 10`

// E1 reproduces the paper's §4 network-security case study: a batch report
// that took "over 20 minutes" ran "in milliseconds" once the query was run
// continuously and its results stored in an Active Table. We run the same
// report both ways over identical synthetic firewall logs and report the
// per-report latency and the speedup factor. Absolute numbers shrink with
// laptop-scale data; the orders-of-magnitude gap is the reproduced shape,
// and E2 shows it widening with volume.
func E1(s Scale) (*Table, error) {
	n := s.n(400_000)

	// ---- Store-first-query-later: load raw events, query at report time.
	batch, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		return nil, err
	}
	defer batch.Close()
	if _, err := batch.Exec(`CREATE TABLE sec_events (
		etime timestamp, src_ip varchar, dst_port bigint, action varchar, bytes bigint)`); err != nil {
		return nil, err
	}
	gen := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 11, EventsPerSec: float64(n) / 600})
	events := gen.Take(n)
	loadStart := time.Now()
	if err := batch.BulkInsert("sec_events", events); err != nil {
		return nil, err
	}
	loadTime := time.Since(loadStart)
	qStart := time.Now()
	batchRows, err := batch.Query(securityReportBatch)
	if err != nil {
		return nil, err
	}
	batchLatency := time.Since(qStart)

	// ---- Continuous Analytics: per-minute deny counts flow into an
	// Active Table as events arrive; the report reads the table.
	cont, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		return nil, err
	}
	defer cont.Close()
	err = cont.ExecScript(`
		CREATE STREAM sec_stream (
			etime timestamp CQTIME USER, src_ip varchar, dst_port bigint,
			action varchar, bytes bigint);
		CREATE STREAM deny_now AS
			SELECT src_ip, count(*) AS denials, cq_close(*)
			FROM sec_stream <ADVANCE '1 minute'>
			WHERE action = 'deny'
			GROUP BY src_ip;
		CREATE TABLE deny_archive (src_ip varchar, denials bigint, stime timestamp);
		CREATE CHANNEL deny_ch FROM deny_now INTO deny_archive APPEND;
	`)
	if err != nil {
		return nil, err
	}
	gen2 := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 11, EventsPerSec: float64(n) / 600})
	events2 := gen2.Take(n)
	ingestStart := time.Now()
	if err := cont.Append("sec_stream", events2...); err != nil {
		return nil, err
	}
	if err := cont.AdvanceTime("sec_stream", time.UnixMicro(gen2.Now()+60_000_000).UTC()); err != nil {
		return nil, err
	}
	ingestTime := time.Since(ingestStart)
	qStart = time.Now()
	contRows, err := cont.Query(securityReportActive)
	if err != nil {
		return nil, err
	}
	contLatency := time.Since(qStart)

	// Both architectures must agree on the report itself.
	if err := sameTopReport(batchRows, contRows); err != nil {
		return nil, err
	}

	speedup := float64(batchLatency) / float64(contLatency)
	t := &Table{
		ID:     "E1",
		Title:  "§4 case study: network-security report, store-first vs Continuous Analytics",
		Header: []string{"architecture", "events", "ingest+maintain", "report latency", "speedup"},
	}
	t.Rows = [][]string{
		{"store-first-query-later", fmt.Sprintf("%d", n), fmtDur(loadTime), fmtDur(batchLatency), "1.0×"},
		{"continuous + active table", fmt.Sprintf("%d", n), fmtDur(ingestTime), fmtDur(contLatency), fmtX(speedup)},
	}
	t.Notes = append(t.Notes,
		"reports verified identical across architectures",
		"paper reports ~5 orders of magnitude at production volume; the gap grows with data size (see E2)")
	return t, nil
}

// sameTopReport verifies the two architectures computed the same top-k.
func sameTopReport(a, b *streamrel.Rows) error {
	if len(a.Data) != len(b.Data) {
		return fmt.Errorf("experiments: report mismatch: %d vs %d rows", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		if a.Data[i].String() != b.Data[i].String() {
			return fmt.Errorf("experiments: report row %d differs: %s vs %s",
				i, a.Data[i].String(), b.Data[i].String())
		}
	}
	return nil
}
