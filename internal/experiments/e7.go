package experiments

import (
	"fmt"
	"os"
	"time"

	"streamrel"
	"streamrel/internal/baseline"
	"streamrel/internal/types"
	"streamrel/internal/workload"
)

// E7 compares map/reduce-style batch processing (§1.3, §5) with
// continuous processing for the same metric: per-URL hit counts over a
// growing event log. The MR job rescans the full input file and
// materializes shuffle partitions on every refresh; the CQ touches each
// event exactly once. Reported: total work to produce R successive
// refreshes of the metric.
func E7(s Scale) (*Table, error) {
	chunkEvents := s.n(40_000)
	const refreshes = 5
	dir, err := os.MkdirTemp("", "streamrel-e7-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	gen := workload.NewClickstream(workload.ClickConfig{Seed: 12, EventsPerSec: 600})
	chunks := make([][]types.Row, refreshes)
	for i := range chunks {
		chunks[i] = gen.Take(chunkEvents)
	}

	// Map/reduce: append the new chunk, then re-run the job over the full
	// file, once per refresh.
	mr := &baseline.MapReduce{Dir: dir, Partitions: 4}
	var mrTotal time.Duration
	var lastMRRows int
	for i := 0; i < refreshes; i++ {
		if err := mr.AppendInput("clicks", chunks[i]); err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := mr.Run("clicks",
			func(row types.Row, emit func(string, types.Row)) {
				emit(row[0].Str(), types.Row{types.NewInt(1)})
			},
			func(key string, values []types.Row, emit func(types.Row)) {
				emit(types.Row{types.NewString(key), types.NewInt(int64(len(values)))})
			})
		if err != nil {
			return nil, err
		}
		mrTotal += time.Since(start)
		lastMRRows = len(out)
	}

	// Continuous: the same metric maintained incrementally; refresh points
	// are just heartbeats (results are already in the Active Table).
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.ExecScript(`
		CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar);
		CREATE STREAM hits_now AS
			SELECT url, count(*) AS hits, cq_close(*)
			FROM url_stream <ADVANCE '1 minute'>
			GROUP BY url;
		CREATE TABLE hits_archive (url varchar, hits bigint, stime timestamp);
		CREATE CHANNEL hits_ch FROM hits_now INTO hits_archive APPEND;
	`); err != nil {
		return nil, err
	}
	var cqTotal time.Duration
	gen2 := workload.NewClickstream(workload.ClickConfig{Seed: 12, EventsPerSec: 600})
	for i := 0; i < refreshes; i++ {
		chunk := gen2.Take(chunkEvents)
		start := time.Now()
		if err := eng.Append("url_stream", chunk...); err != nil {
			return nil, err
		}
		eng.AdvanceTime("url_stream", time.UnixMicro(gen2.Now()).UTC())
		if _, err := eng.Query(`SELECT url, sum(hits) FROM hits_archive GROUP BY url`); err != nil {
			return nil, err
		}
		cqTotal += time.Since(start)
	}

	n := chunkEvents * refreshes
	t := &Table{
		ID:     "E7",
		Title:  "§5 map/reduce comparison: R successive metric refreshes over a growing log",
		Header: []string{"architecture", "events", "refreshes", "total time", "per-refresh (last)", "notes"},
		Rows: [][]string{
			{"map/reduce batch", fmt.Sprintf("%d", n), fmt.Sprintf("%d", refreshes), fmtDur(mrTotal),
				fmtDur(mrTotal / refreshes), fmt.Sprintf("%d result rows; full rescan per job", lastMRRows)},
			{"continuous + active table", fmt.Sprintf("%d", n), fmt.Sprintf("%d", refreshes), fmtDur(cqTotal),
				fmtDur(cqTotal / refreshes), "each event touched once"},
			{"speedup", "", "", fmtX(float64(mrTotal) / float64(cqTotal)), "", ""},
		},
	}
	t.Notes = append(t.Notes,
		"MR cost per refresh grows with log size (rescan + shuffle materialization); continuous cost per refresh is constant in history size")
	return t, nil
}
