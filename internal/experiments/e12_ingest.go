package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/workload"
)

// E12 is the canonical ingest ladder: one table, two rungs, every cell a
// number future PRs are held to (cmd/srbench -budget).
//
// The memory rung measures the pure hot path — PushBatch through window
// buffering and firing for k ∈ {1,4,16} continuous queries, serial vs
// per-pipeline workers, no durability — reporting rows/s and steady-state
// heap allocations per ingested row (runtime.MemStats.Mallocs delta).
//
// The durable rung adds the write-ahead log: a base stream archived to a
// table via an APPEND channel, so every ingested batch commits a txn and
// appends to the WAL. Sync off isolates commit-path CPU; Sync on measures
// fsync amortization (batched channel writes + WAL group commit).
func E12(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "ingest hot path: rows/s and allocs/row across fan-out, workers, durability",
		Header: []string{"rung", "k CQs", "mode", "sync", "ingest", "rate",
			"allocs/row"},
		Metrics: map[string]float64{},
	}

	memN := s.n(100_000)
	for _, k := range []int{1, 4, 16} {
		for _, mode := range []string{"serial", "parallel"} {
			elapsed, allocs, _, err := ingestRun(ingestConfig{
				n: memN, k: k, parallel: mode == "parallel",
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				"memory", fmt.Sprintf("%d", k), mode, "-",
				fmtDur(elapsed), fmtRate(memN, elapsed), fmtAllocs(allocs),
			})
			t.Metrics[fmt.Sprintf("mem_k%d_%s_rows_per_s", k, mode)] = rate(memN, elapsed)
			t.Metrics[fmt.Sprintf("mem_k%d_%s_allocs_per_row", k, mode)] = allocs
		}
	}

	for _, sync := range []bool{false, true} {
		n := s.n(40_000)
		if sync {
			n = s.n(4_000)
		}
		syncLabel := "off"
		if sync {
			syncLabel = "on"
		}
		for _, mode := range []string{"serial", "parallel"} {
			elapsed, allocs, reg, err := ingestRun(ingestConfig{
				n: n, k: 1, parallel: mode == "parallel",
				durable: true, sync: sync,
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				"durable", "1", mode, syncLabel,
				fmtDur(elapsed), fmtRate(n, elapsed), fmtAllocs(allocs),
			})
			t.Metrics[fmt.Sprintf("durable_sync%s_%s_rows_per_s", syncLabel, mode)] = rate(n, elapsed)
			t.Metrics[fmt.Sprintf("durable_sync%s_%s_allocs_per_row", syncLabel, mode)] = allocs
			if sync {
				if mean, ok := histMean(reg, "streamrel_wal_group_commit_batches"); ok {
					t.Metrics[fmt.Sprintf("durable_syncon_%s_group_batches_mean", mode)] = mean
				}
			}
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; batches of %d rows per Append", runtime.GOMAXPROCS(0), ingestBatch),
		"memory rung: in-memory engine, tracing disabled, sharing disabled (k distinct plans)",
		"durable rung: base stream archived via APPEND channel, so every batch commits a txn + WAL append",
		"allocs/row is the whole-process Mallocs delta over the append loop, including worker goroutines")
	return t, nil
}

// ingestBatch is the rows-per-Append micro-batch size used across the
// ladder (matches E9 and the replication experiments).
const ingestBatch = 256

type ingestConfig struct {
	n        int
	k        int  // number of subscribed CQs
	parallel bool // Config.ParallelCQ
	durable  bool // Dir + raw archive channel
	sync     bool // Config.SyncWAL
}

// ingestRun opens a fresh engine per the config, ingests n clickstream
// rows in micro-batches, and returns elapsed wall time (append loop +
// Flush) and heap allocations per row.
func ingestRun(c ingestConfig) (time.Duration, float64, *metrics.Registry, error) {
	reg := metrics.NewRegistry()
	cfg := streamrel.Config{
		DisableSharing:   true,
		Metrics:          reg,
		TraceSampleEvery: -1,
	}
	if c.parallel {
		cfg.ParallelCQ = 4
	}
	var dir string
	if c.durable {
		var err error
		dir, err = os.MkdirTemp("", "srbench-e12-")
		if err != nil {
			return 0, 0, nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
		cfg.SyncWAL = c.sync
	}
	eng, err := streamrel.Open(cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	defer eng.Close()
	if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
		return 0, 0, nil, err
	}
	if c.durable {
		if err := eng.ExecScript(`
			CREATE TABLE raw_archive (url varchar, atime timestamp, client_ip varchar);
			CREATE CHANNEL raw_ch FROM url_stream INTO raw_archive APPEND;
		`); err != nil {
			return 0, 0, nil, err
		}
	}
	var cqs []*streamrel.CQ
	for i := 0; i < c.k; i++ {
		cq, err := eng.Subscribe(fmt.Sprintf(`SELECT client_ip, count(*)
			FROM url_stream <VISIBLE 2000 ROWS ADVANCE 500 ROWS>
			WHERE url <> '/none%d' GROUP BY client_ip`, i))
		if err != nil {
			return 0, 0, nil, err
		}
		cqs = append(cqs, cq)
	}
	rows := workload.NewClickstream(workload.ClickConfig{Seed: 12, EventsPerSec: 400}).Take(c.n)

	// Warm up pools and lazy init outside the measured window, then
	// settle the heap so the Mallocs delta reflects steady state.
	warm := rows[:min(ingestBatch, len(rows))]
	if err := eng.Append("url_stream", warm...); err != nil {
		return 0, 0, nil, err
	}
	if err := eng.Flush(); err != nil {
		return 0, 0, nil, err
	}
	rows = rows[len(warm):]
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	for off := 0; off < len(rows); off += ingestBatch {
		end := off + ingestBatch
		if end > len(rows) {
			end = len(rows)
		}
		if err := eng.Append("url_stream", rows[off:end]...); err != nil {
			return 0, 0, nil, err
		}
	}
	if err := eng.Flush(); err != nil {
		return 0, 0, nil, err
	}
	elapsed := time.Since(start)

	runtime.ReadMemStats(&after)
	allocsPerRow := float64(after.Mallocs-before.Mallocs) / float64(max(len(rows), 1))
	for _, cq := range cqs {
		cq.Close()
	}
	return elapsed, allocsPerRow, reg, nil
}

// histMean returns the mean observation of a named histogram, if present.
func histMean(reg *metrics.Registry, name string) (float64, bool) {
	for _, s := range reg.Gather() {
		if s.Name == name && s.Count > 0 {
			return s.Sum / float64(s.Count), true
		}
	}
	return 0, false
}

func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

func fmtAllocs(a float64) string {
	return fmt.Sprintf("%.1f", a)
}
