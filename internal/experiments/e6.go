package experiments

import (
	"fmt"
	"os"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// E6 measures the paper's §4 recovery claim: a stream-relational system
// can rebuild runtime state "from disk automatically" using Active Tables
// instead of per-operator checkpoints. We crash an engine mid-stream and
// compare: (a) restart + first report from the Active Table, versus (b)
// recomputing the same report from the raw archived events.
func E6(s Scale) (*Table, error) {
	n := s.n(200_000)
	dir, err := os.MkdirTemp("", "streamrel-e6-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	eng, err := streamrel.Open(streamrel.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	if err := eng.ExecScript(`
		CREATE TABLE sec_raw (etime timestamp, src_ip varchar, dst_port bigint, action varchar, bytes bigint);
		CREATE STREAM sec_stream (etime timestamp CQTIME USER, src_ip varchar, dst_port bigint, action varchar, bytes bigint);
		CREATE STREAM deny_now AS
			SELECT src_ip, count(*) AS denials, cq_close(*)
			FROM sec_stream <ADVANCE '1 minute'>
			WHERE action = 'deny'
			GROUP BY src_ip;
		CREATE TABLE deny_archive (src_ip varchar, denials bigint, stime timestamp);
		CREATE CHANNEL deny_ch FROM deny_now INTO deny_archive APPEND;
	`); err != nil {
		return nil, err
	}
	gen := workload.NewSecurityEvents(workload.SecurityConfig{Seed: 9})
	events := gen.Take(n)
	// Both the raw archive (store-first side) and the stream receive the
	// events, as a deployment that archives raw data would do.
	if err := eng.BulkInsert("sec_raw", events); err != nil {
		return nil, err
	}
	if err := eng.Append("sec_stream", events...); err != nil {
		return nil, err
	}
	eng.AdvanceTime("sec_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
	// Crash: no clean shutdown beyond closing the WAL file handle.
	eng.Close()

	// (a) Restart: recovery replays the WAL and resumes CQs from the
	// Active Table; the first report is a table lookup.
	start := time.Now()
	e2, err := streamrel.Open(streamrel.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	defer e2.Close()
	recoverTime := time.Since(start)
	start = time.Now()
	activeRows, err := e2.Query(securityReportActive)
	if err != nil {
		return nil, err
	}
	activeReport := time.Since(start)

	// (b) Cold recompute of the same report from the raw archive.
	start = time.Now()
	rawRows, err := e2.Query(`
		SELECT src_ip, count(*) AS denials
		FROM sec_raw
		WHERE action = 'deny'
		GROUP BY src_ip
		ORDER BY denials DESC, src_ip
		LIMIT 10`)
	if err != nil {
		return nil, err
	}
	recompute := time.Since(start)
	if err := sameTopReport(activeRows, rawRows); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "E6",
		Title:  "§4 recovery: rebuild from Active Tables vs recompute from raw archive",
		Header: []string{"step", "time"},
		Rows: [][]string{
			{"restart (WAL replay + CQ resume points)", fmtDur(recoverTime)},
			{"first report from Active Table", fmtDur(activeReport)},
			{"same report recomputed from raw archive", fmtDur(recompute)},
			{"report speedup (active vs recompute)", fmtX(float64(recompute) / float64(activeReport))},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("events before crash: %d; reports verified identical", n),
		"no per-operator checkpoint code exists: each CQ resumes past max(stime) found in its channel's table")
	return t, nil
}
