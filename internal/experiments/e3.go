package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// E3 measures the paper's shared ("Jellybean") processing (§2.2, refs
// [4],[12]): k continuous queries with the same shape over one stream.
// With sharing, per-slice aggregation is computed once; without, each CQ
// pays the full per-event cost. Expected shape: unshared cost grows
// linearly in k, shared cost grows sub-linearly (only window-close merge
// work scales with k).
func E3(s Scale) (*Table, error) {
	n := s.n(150_000)
	ks := []int{1, 2, 4, 8, 16}
	t := &Table{
		ID:     "E3",
		Title:  "§2.2 shared processing: k identical CQs, shared vs unshared slice aggregation",
		Header: []string{"k CQs", "unshared ingest", "shared ingest", "speedup", "shared aggs"},
	}
	run := func(k int, share bool) (time.Duration, int, error) {
		eng, err := streamrel.Open(streamrel.Config{DisableSharing: !share, DisableIVM: true})
		if err != nil {
			return 0, 0, err
		}
		defer eng.Close()
		if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
			return 0, 0, err
		}
		var cqs []*streamrel.CQ
		for i := 0; i < k; i++ {
			cq, err := eng.Subscribe(`SELECT url, count(*), sum(length(client_ip))
				FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url`)
			if err != nil {
				return 0, 0, err
			}
			cqs = append(cqs, cq)
		}
		gen := workload.NewClickstream(workload.ClickConfig{Seed: 2, EventsPerSec: 400})
		rows := gen.Take(n)
		start := time.Now()
		if err := eng.Append("url_stream", rows...); err != nil {
			return 0, 0, err
		}
		eng.AdvanceTime("url_stream", time.UnixMicro(gen.Now()+60_000_000).UTC())
		elapsed := time.Since(start)
		stats := eng.Stats()
		for _, cq := range cqs {
			cq.Close()
		}
		return elapsed, stats.SharedAggs, nil
	}
	for _, k := range ks {
		unshared, _, err := run(k, false)
		if err != nil {
			return nil, err
		}
		shared, aggs, err := run(k, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), fmtDur(unshared), fmtDur(shared),
			fmtX(float64(unshared) / float64(shared)),
			fmt.Sprintf("%d", aggs),
		})
	}
	t.Notes = append(t.Notes,
		"identical fingerprints collapse onto one slice aggregation; speedup approaches k for large k")
	return t, nil
}
