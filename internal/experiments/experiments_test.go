package experiments

import "testing"

// TestAllExperimentsSmall runs the full suite at a tiny scale: every
// experiment must execute end to end, produce a well-formed table, and
// pass its internal correctness cross-checks (e.g. E1/E6 verify batch and
// continuous reports are identical).
func TestAllExperimentsSmall(t *testing.T) {
	tables, err := All(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 17 {
		t.Fatalf("expected 17 experiments, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("malformed table: %+v", tab)
		}
		if seen[tab.ID] {
			t.Fatalf("duplicate experiment id %s", tab.ID)
		}
		seen[tab.ID] = true
		if tab.String() == "" {
			t.Fatal("empty rendering")
		}
	}
	for _, id := range []string{"F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"} {
		if !seen[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestScale(t *testing.T) {
	if Scale(0.001).n(100) != 1 {
		t.Fatal("scale floor")
	}
	if Scale(2).n(100) != 200 {
		t.Fatal("scale up")
	}
}
