package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/server"
	"streamrel/replica"
)

// E10 measures log-shipping replication under live ingest: a primary
// serving the replication stream over loopback TCP while a read replica
// applies it. Reported: ingest throughput with a replica attached, time
// for the replica to drain the remaining lag once ingest stops, and the
// per-frame apply-lag distribution (primary publish wall clock to replica
// apply), which is the paper's freshness argument applied to a scale-out
// read path: a replica's continuous queries see events a few milliseconds
// after the primary, not a batch period later.
func E10(s Scale) (*Table, error) {
	n := s.n(60_000)

	peng, err := streamrel.Open(streamrel.Config{Replicate: true})
	if err != nil {
		return nil, err
	}
	defer peng.Close()
	srv := server.New(peng)
	srv.Replicate = peng.Repl().ServeConn
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve()
	defer srv.Close()

	ddl := []string{
		`CREATE STREAM s (v bigint, at timestamp CQTIME USER)`,
		`CREATE STREAM agg AS SELECT sum(v) AS total, cq_close(*) AS w FROM s <ADVANCE '1 minute'>`,
		`CREATE TABLE agg_t (total bigint, w timestamp)`,
		`CREATE CHANNEL ch FROM agg INTO agg_t APPEND`,
	}
	for _, stmt := range ddl {
		if _, err := peng.Exec(stmt); err != nil {
			return nil, err
		}
	}

	rreg := metrics.NewRegistry()
	reng, err := streamrel.Open(streamrel.Config{Replicate: true, Metrics: rreg})
	if err != nil {
		return nil, err
	}
	defer reng.Close()
	rep, err := replica.New(replica.Options{Addr: addr, Engine: reng})
	if err != nil {
		return nil, err
	}
	rep.Start()
	defer rep.Stop()
	// Let the replica finish its bootstrap snapshot first, so the measured
	// ingest streams to it live instead of being absorbed by the snapshot.
	if err := rep.WaitCaughtUp(30 * time.Second); err != nil {
		return nil, err
	}

	// Ingest with the replica attached: batches of 64 rows, one simulated
	// second apart, windows closing every minute.
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	const batch = 64
	rows := make([]streamrel.Row, batch)
	ingestStart := time.Now()
	sent := 0
	for tick := 0; sent < n; tick++ {
		ts := base.Add(time.Duration(tick) * time.Second)
		for i := range rows {
			rows[i] = streamrel.Row{streamrel.Int(int64(sent + i)), streamrel.Timestamp(ts)}
		}
		if err := peng.Append("s", rows...); err != nil {
			return nil, err
		}
		sent += batch
	}
	ingest := time.Since(ingestStart)

	drainStart := time.Now()
	if err := rep.WaitFor(peng.Repl().LSN(), 60*time.Second); err != nil {
		return nil, err
	}
	drain := time.Since(drainStart)

	var p50, p95, p99 float64
	var frames, snaps float64
	for _, smp := range rreg.Gather() {
		switch smp.Name {
		case "streamrel_repl_apply_lag_seconds":
			if smp.Count > 0 {
				p50, p95, p99 = smp.Quantile(0.50), smp.Quantile(0.95), smp.Quantile(0.99)
			}
		case "streamrel_repl_frames_applied_total":
			frames = smp.Value
		case "streamrel_repl_snapshots_received_total":
			snaps = smp.Value
		}
	}

	t := &Table{
		ID:    "E10",
		Title: "replication: replica apply lag under live ingest",
		Header: []string{"rows", "ingest (replica attached)", "rate", "drain to lag 0",
			"apply-lag p50", "p95", "p99"},
		Rows: [][]string{{
			fmt.Sprintf("%d", sent), fmtDur(ingest), fmtRate(sent, ingest), fmtDur(drain),
			fmtDur(time.Duration(p50 * float64(time.Second))),
			fmtDur(time.Duration(p95 * float64(time.Second))),
			fmtDur(time.Duration(p99 * float64(time.Second))),
		}},
		Notes: []string{
			fmt.Sprintf("%.0f frames applied, %.0f snapshot(s), final lag %d LSNs",
				frames, snaps, rep.LagLSN()),
			"apply lag is primary publish wall clock → replica apply, per frame",
		},
		Metrics: map[string]float64{
			"rows":                float64(sent),
			"ingest_rows_per_sec": float64(sent) / ingest.Seconds(),
			"drain_seconds":       drain.Seconds(),
			"apply_lag_p50_s":     p50,
			"apply_lag_p95_s":     p95,
			"apply_lag_p99_s":     p99,
			"frames_applied":      frames,
		},
	}
	return t, nil
}
