package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"streamrel"
)

// E14 measures what incremental view maintenance buys on the paper's
// canonical shape — a wide window advancing in small steps. A re-executing
// pipeline pays O(window rows) on every fire, so widening VISIBLE at a
// fixed ADVANCE makes each fire proportionally slower even though the
// output barely changes. The delta-compiled path (internal/ivm) pays
// O(batch) on arrival and O(groups) on fire, so fire latency is flat in
// window width. The ladder holds ADVANCE at 1 second and widens VISIBLE
// from 10s to 60s over a skewed 10k-group stream, reporting mean fire
// latency and heap allocations per fire for both modes — and fails if the
// two modes' emitted windows are not byte-identical, so the speedup is
// never reported over diverging answers.
func E14(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "incremental maintenance: fire latency vs window width (ADVANCE 1s)",
		Header: []string{"visible", "mode", "mean fire", "allocs/fire",
			"rows/fire", "speedup"},
		Metrics: map[string]float64{},
	}

	groups := s.n(10_000)
	rowsPerSec := s.n(3_000)
	const measuredFires = 12
	base := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC).UnixMicro()

	for _, visibleSec := range []int{10, 30, 60} {
		totalSec := visibleSec + measuredFires
		batches := ivmBatches(visibleSec, totalSec, rowsPerSec, groups, base)

		reexec, err := ivmRun(batches, visibleSec, base, false)
		if err != nil {
			return nil, err
		}
		inc, err := ivmRun(batches, visibleSec, base, true)
		if err != nil {
			return nil, err
		}
		if inc.transcript != reexec.transcript {
			return nil, fmt.Errorf("E14: VISIBLE %ds: incremental and re-exec emissions diverged", visibleSec)
		}
		if inc.transcript == "" {
			return nil, fmt.Errorf("E14: VISIBLE %ds: no windows fired", visibleSec)
		}

		speedup := float64(reexec.meanFire) / float64(inc.meanFire)
		vis := fmt.Sprintf("%ds", visibleSec)
		t.Rows = append(t.Rows,
			[]string{vis, "reexec", fmtDur(reexec.meanFire), fmtAllocs(reexec.allocsPerFire),
				fmt.Sprintf("%.0f", reexec.rowsPerFire), "-"},
			[]string{vis, "incremental", fmtDur(inc.meanFire), fmtAllocs(inc.allocsPerFire),
				fmt.Sprintf("%.0f", inc.rowsPerFire), fmtX(speedup)},
		)
		t.Metrics[fmt.Sprintf("v%d_reexec_fire_ms", visibleSec)] = float64(reexec.meanFire) / 1e6
		t.Metrics[fmt.Sprintf("v%d_incremental_fire_ms", visibleSec)] = float64(inc.meanFire) / 1e6
		t.Metrics[fmt.Sprintf("v%d_speedup", visibleSec)] = speedup
		t.Metrics[fmt.Sprintf("v%d_incremental_allocs_per_fire", visibleSec)] = inc.allocsPerFire
		// The budget-gated form: allocations per emitted row, which is
		// stable across -scale (raw allocs/fire grows with the group
		// count and would need a budget per scale).
		if inc.rowsPerFire > 0 {
			t.Metrics[fmt.Sprintf("v%d_incremental_allocs_per_emitted_row", visibleSec)] =
				inc.allocsPerFire / inc.rowsPerFire
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; %d rows/s over %d skewed groups; count+sum GROUP BY; %d measured fires after the window fills",
			runtime.GOMAXPROCS(0), rowsPerSec, groups, measuredFires),
		"re-exec re-aggregates every visible row per fire: latency grows with VISIBLE",
		"incremental applies insert deltas on arrival, retract deltas on slice expiry, emits from materialized state: latency flat in VISIBLE",
		"both modes' window emissions compared byte for byte before reporting")
	return t, nil
}

// ivmBatches generates one deterministic batch per simulated second. Keys
// follow a cubed-uniform skew (a few hot groups, a long tail) and values
// are small ints, so sums stay exact in both modes.
func ivmBatches(visibleSec, totalSec, rowsPerSec, groups int, base int64) [][]streamrel.Row {
	rng := rand.New(rand.NewSource(14))
	out := make([][]streamrel.Row, totalSec)
	for sec := range out {
		batch := make([]streamrel.Row, rowsPerSec)
		for i := range batch {
			ts := base + int64(sec)*1_000_000 + int64(i)*int64(1_000_000/rowsPerSec)
			k := int64(float64(groups) * math.Pow(rng.Float64(), 3))
			batch[i] = streamrel.Row{
				streamrel.Int(k),
				streamrel.Timestamp(time.UnixMicro(ts).UTC()),
				streamrel.Int(int64(rng.Intn(100))),
			}
		}
		out[sec] = batch
	}
	return out
}

type ivmResult struct {
	meanFire      time.Duration
	allocsPerFire float64
	rowsPerFire   float64
	transcript    string
}

// ivmRun feeds the batches through one engine — incremental or re-exec —
// advancing the watermark one second at a time. Fires inside the first
// visibleSec seconds warm the window; the rest are measured: the
// AdvanceTime call is the fire (synchronous mode), so its wall time and
// Mallocs delta are the per-fire cost.
func ivmRun(batches [][]streamrel.Row, visibleSec int, base int64, incremental bool) (ivmResult, error) {
	var res ivmResult
	cfg := streamrel.Config{TraceSampleEvery: -1, DisableSharing: true}
	if !incremental {
		cfg.DisableIVM = true
	}
	eng, err := streamrel.Open(cfg)
	if err != nil {
		return res, err
	}
	defer eng.Close()
	if _, err := eng.Exec(`CREATE STREAM s (k bigint, at timestamp CQTIME USER, v bigint)`); err != nil {
		return res, err
	}
	cq, err := eng.Subscribe(fmt.Sprintf(
		`SELECT k, count(*) AS n, sum(v) AS total FROM s <VISIBLE '%d seconds' ADVANCE '1 second'> GROUP BY k`,
		visibleSec))
	if err != nil {
		return res, err
	}
	defer cq.Close()
	if cq.Incremental != incremental {
		return res, fmt.Errorf("E14: pipeline mode = incremental:%v, want %v", cq.Incremental, incremental)
	}

	var fires int
	var total time.Duration
	var mallocs uint64
	var ms runtime.MemStats
	for sec, batch := range batches {
		if err := eng.Append("s", batch...); err != nil {
			return res, err
		}
		boundary := time.UnixMicro(base + int64(sec+1)*1_000_000).UTC()
		if sec < visibleSec {
			eng.AdvanceTime("s", boundary)
			continue
		}
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		eng.AdvanceTime("s", boundary)
		total += time.Since(start)
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - before
		fires++
	}
	if fires == 0 {
		return res, fmt.Errorf("E14: nothing measured")
	}

	var sb strings.Builder
	emitted := 0
	for {
		b, ok := cq.TryNext()
		if !ok {
			break
		}
		sb.WriteString(b.Close.UTC().Format(time.RFC3339Nano))
		for _, r := range b.Rows {
			sb.WriteByte('\n')
			sb.WriteString(r.String())
		}
		sb.WriteByte('\n')
		if b.Close.UnixMicro() > base+int64(visibleSec)*1_000_000 {
			emitted += len(b.Rows)
		}
	}
	res.meanFire = total / time.Duration(fires)
	res.allocsPerFire = float64(mallocs) / float64(fires)
	res.rowsPerFire = float64(emitted) / float64(fires)
	res.transcript = sb.String()
	return res, nil
}
