package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/workload"
)

// fireQuantiles pulls the streamrel_window_fire_seconds histogram out of
// a run's registry and returns its p50/p95/p99 in seconds. These measure
// push-to-fire latency: the clock starts when a window-close task begins
// on the pushing (or worker) goroutine and stops when the batch reaches
// the subscriber.
func fireQuantiles(reg *metrics.Registry) (p50, p95, p99 float64, ok bool) {
	for _, s := range reg.Gather() {
		if s.Name == "streamrel_window_fire_seconds" && s.Count > 0 {
			return s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), true
		}
	}
	return 0, 0, 0, false
}

// E9 measures parallel CQ fan-out: k distinct continuous queries over one
// stream, ingested by the synchronous engine (every pipeline runs on the
// producer) versus the parallel engine (each pipeline on its own worker
// goroutine, Config.ParallelCQ). Expected shape: serial ingest cost grows
// linearly in k; with enough cores, parallel ingest cost stays near the
// single-CQ cost until k exceeds the core count. The speedup column is
// therefore bounded by min(k, GOMAXPROCS) — on a single-core host both
// modes are equal and the experiment only demonstrates that worker
// execution costs nothing it shouldn't.
func E9(s Scale) (*Table, error) {
	n := s.n(120_000)
	ks := []int{1, 4, 8}
	t := &Table{
		ID:    "E9",
		Title: "parallel fan-out: k distinct CQs, synchronous vs per-pipeline workers",
		Header: []string{"k CQs", "serial ingest", "serial rate", "parallel ingest",
			"parallel rate", "speedup"},
	}
	t.Metrics = map[string]float64{}
	run := func(k, parallel int, mode string) (time.Duration, error) {
		reg := metrics.NewRegistry()
		eng, err := streamrel.Open(streamrel.Config{DisableSharing: true, ParallelCQ: parallel, Metrics: reg})
		if err != nil {
			return 0, err
		}
		defer eng.Close()
		if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
			return 0, err
		}
		var cqs []*streamrel.CQ
		for i := 0; i < k; i++ {
			// Distinct predicates keep the k plans unshareable.
			cq, err := eng.Subscribe(fmt.Sprintf(`SELECT client_ip, count(*)
				FROM url_stream <VISIBLE 2000 ROWS ADVANCE 500 ROWS>
				WHERE url <> '/none%d' GROUP BY client_ip`, i))
			if err != nil {
				return 0, err
			}
			cqs = append(cqs, cq)
		}
		rows := workload.NewClickstream(workload.ClickConfig{Seed: 9, EventsPerSec: 400}).Take(n)
		start := time.Now()
		for off := 0; off < len(rows); off += 256 {
			end := off + 256
			if end > len(rows) {
				end = len(rows)
			}
			if err := eng.Append("url_stream", rows[off:end]...); err != nil {
				return 0, err
			}
		}
		if err := eng.Flush(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		for _, cq := range cqs {
			cq.Close()
		}
		if p50, p95, p99, ok := fireQuantiles(reg); ok {
			t.Metrics[fmt.Sprintf("%s_k%d_push_to_fire_p50_s", mode, k)] = p50
			t.Metrics[fmt.Sprintf("%s_k%d_push_to_fire_p95_s", mode, k)] = p95
			t.Metrics[fmt.Sprintf("%s_k%d_push_to_fire_p99_s", mode, k)] = p99
		}
		return elapsed, nil
	}
	for _, k := range ks {
		serial, err := run(k, 0, "serial")
		if err != nil {
			return nil, err
		}
		parallel, err := run(k, 4, "parallel")
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmtDur(serial), fmtRate(n, serial),
			fmtDur(parallel), fmtRate(n, parallel),
			fmtX(float64(serial) / float64(parallel)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; speedup is bounded by min(k, cores), so single-core hosts report ≈1.0×",
			runtime.GOMAXPROCS(0)),
		"per-CQ results are byte-identical across modes (see TestFanoutParallelMatchesSerial)")
	return t, nil
}
