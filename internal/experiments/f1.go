package experiments

import (
	"fmt"
	"time"

	"streamrel"
	"streamrel/internal/workload"
)

// F1 reproduces Figure 1: a window clause turns a stream into a sequence
// of relations, each evaluated by the ordinary relational plan. The table
// verifies the sequence semantics (windows fired, rows per window) and
// measures per-window-kind throughput.
func F1(s Scale) (*Table, error) {
	n := s.n(200_000)
	kinds := []struct {
		name  string
		query string
	}{
		{"tumbling 1m", `SELECT url, count(*) FROM url_stream <ADVANCE '1 minute'> GROUP BY url`},
		{"sliding 5m/1m", `SELECT url, count(*) FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url`},
		{"sliding 30m/1m", `SELECT url, count(*) FROM url_stream <VISIBLE '30 minutes' ADVANCE '1 minute'> GROUP BY url`},
		{"rows 10k/1k", `SELECT url, count(*) FROM url_stream <VISIBLE 10000 ROWS ADVANCE 1000 ROWS> GROUP BY url`},
		{"filter only", `SELECT url, atime FROM url_stream <ADVANCE '1 minute'> WHERE url LIKE '/page/000%'`},
	}
	t := &Table{
		ID:     "F1",
		Title:  "Windows produce a sequence of tables (Fig. 1): window kinds, correctness and throughput",
		Header: []string{"window", "events", "windows fired", "result rows", "ingest time", "throughput"},
	}
	for _, k := range kinds {
		eng, err := streamrel.Open(streamrel.Config{})
		if err != nil {
			return nil, err
		}
		if _, err := eng.Exec(`CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`); err != nil {
			return nil, err
		}
		cq, err := eng.Subscribe(k.query)
		if err != nil {
			return nil, err
		}
		gen := workload.NewClickstream(workload.ClickConfig{Seed: 1, EventsPerSec: 150})
		rows := gen.Take(n)
		start := time.Now()
		if err := eng.Append("url_stream", rows...); err != nil {
			return nil, err
		}
		if err := eng.AdvanceTime("url_stream", time.UnixMicro(gen.Now()+60_000_000).UTC()); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		windows, resultRows := 0, 0
		for _, b := range cq.Drain() {
			windows++
			resultRows += len(b.Rows)
		}
		cq.Close()
		eng.Close()
		t.Rows = append(t.Rows, []string{
			k.name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", windows),
			fmt.Sprintf("%d", resultRows), fmtDur(elapsed), fmtRate(n, elapsed),
		})
	}
	t.Notes = append(t.Notes,
		"each window close materializes one relation and runs the same iterator operators a snapshot query uses")
	return t, nil
}
