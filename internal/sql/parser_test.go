package sql

import (
	"strings"
	"testing"

	"streamrel/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func mustParseSelect(t *testing.T, src string) *Select {
	t.Helper()
	s, ok := mustParse(t, src).(*Select)
	if !ok {
		t.Fatalf("Parse(%q): not a SELECT", src)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize(`SELECT url, count(*) FROM s <VISIBLE '5 minutes'> -- comment
		WHERE x >= 1.5 /* block */ AND y <> 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Text)
	}
	joined := strings.Join(kinds, " ")
	want := `select url , count ( * ) from s < visible 5 minutes > where x >= 1.5 and y <> it's`
	if joined != want {
		t.Fatalf("tokens = %q\nwant %q", joined, want)
	}
}

func TestLexerQuotedIdent(t *testing.T) {
	toks, err := Tokenize(`"Mixed Case" "with""quote"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "Mixed Case" || toks[1].Text != `with"quote` {
		t.Fatalf("got %v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"unterminated`, "a @ b"} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("Tokenize(%q) should fail", bad)
		}
	}
}

// TestPaperExample1 parses the paper's Example 1 DDL verbatim.
func TestPaperExample1(t *testing.T) {
	s := mustParse(t, `CREATE STREAM url_stream (
		url varchar(1024),
		atime timestamp CQTIME USER,
		client_ip varchar(50)
	)`).(*CreateStream)
	if s.Name != "url_stream" || len(s.Columns) != 3 {
		t.Fatalf("got %+v", s)
	}
	if !s.Columns[1].CQTime || s.Columns[1].Type != types.TypeTimestamp {
		t.Fatalf("atime should be the CQTIME column: %+v", s.Columns[1])
	}
	if s.Columns[0].Type != types.TypeString {
		t.Fatal("url should be VARCHAR")
	}
}

// TestPartitionBy parses the sharded-stream DDL variant.
func TestPartitionBy(t *testing.T) {
	s := mustParse(t, `CREATE STREAM url_stream (
		url varchar(1024),
		atime timestamp CQTIME USER,
		client_ip varchar(50)
	) PARTITION BY client_ip`).(*CreateStream)
	if s.PartitionBy != "client_ip" {
		t.Fatalf("PartitionBy = %q, want client_ip", s.PartitionBy)
	}
	plain := mustParse(t, `CREATE STREAM s (v int, at timestamp CQTIME USER)`).(*CreateStream)
	if plain.PartitionBy != "" {
		t.Fatalf("PartitionBy = %q, want empty", plain.PartitionBy)
	}
	for _, bad := range []string{
		`CREATE STREAM s (v int, at timestamp CQTIME USER) PARTITION BY missing`,
		`CREATE STREAM s (v int, at timestamp CQTIME USER) PARTITION BY at`,
		`CREATE STREAM s (v int, at timestamp CQTIME USER) PARTITION`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestPaperExample2 parses the paper's Example 2 continuous query verbatim.
func TestPaperExample2(t *testing.T) {
	q := mustParseSelect(t, `SELECT url, count(*) url_count
		FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
		GROUP by url
		ORDER by url_count desc
		LIMIT 10`)
	if len(q.Items) != 2 || q.Items[1].Alias != "url_count" {
		t.Fatalf("projection: %+v", q.Items)
	}
	bt := q.From[0].(*BaseTable)
	if bt.Name != "url_stream" || bt.Window == nil {
		t.Fatal("missing window")
	}
	if bt.Window.Kind != WindowTime || bt.Window.Visible != 5*60_000_000 || bt.Window.Advance != 60_000_000 {
		t.Fatalf("window: %+v", bt.Window)
	}
	if len(q.GroupBy) != 1 || len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Fatal("group/order")
	}
	if lim, ok := q.Limit.(*Literal); !ok || lim.Val.Int() != 10 {
		t.Fatal("limit")
	}
}

// TestPaperExample3 parses the derived-stream DDL.
func TestPaperExample3(t *testing.T) {
	s := mustParse(t, `CREATE STREAM urls_now as
		SELECT url, count(*) as scnt, cq_close(*)
		FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
		GROUP by url`).(*CreateDerivedStream)
	if s.Name != "urls_now" {
		t.Fatal("name")
	}
	fc := s.Query.Items[2].Expr.(*FuncCall)
	if fc.Name != "cq_close" || !fc.Star {
		t.Fatalf("cq_close(*): %+v", fc)
	}
}

// TestPaperExample4 parses the channel DDL.
func TestPaperExample4(t *testing.T) {
	c := mustParse(t, `CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND`).(*CreateChannel)
	if c.Name != "urls_channel" || c.From != "urls_now" || c.Into != "urls_archive" || c.Mode != ChannelAppend {
		t.Fatalf("%+v", c)
	}
	c2 := mustParse(t, `CREATE CHANNEL ch FROM s INTO t REPLACE`).(*CreateChannel)
	if c2.Mode != ChannelReplace {
		t.Fatal("replace mode")
	}
}

// TestPaperExample5 parses the historical-comparison stream-table join
// (with the interval expression spelled unambiguously).
func TestPaperExample5(t *testing.T) {
	q := mustParseSelect(t, `select c.scnt, h.scnt, c.stime
		from (select sum(scnt) as scnt, cq_close(*) as stime
		      from urls_now <slices 1 windows>) c,
		     urls_archive h
		where c.stime - '1 week'::interval = h.stime`)
	if len(q.From) != 2 {
		t.Fatalf("from: %d items", len(q.From))
	}
	sub := q.From[0].(*Subquery)
	if sub.Alias != "c" {
		t.Fatal("subquery alias")
	}
	w := sub.Query.From[0].(*BaseTable).Window
	if w.Kind != WindowSlices || w.Visible != 1 {
		t.Fatalf("slices window: %+v", w)
	}
	if q.From[1].(*BaseTable).Alias != "h" {
		t.Fatal("table alias")
	}
	// where: ((c.stime - cast('1 week' as interval)) = h.stime)
	be := q.Where.(*BinaryExpr)
	if be.Op != OpEq {
		t.Fatal("where op")
	}
	if _, ok := be.L.(*BinaryExpr).R.(*CastExpr); !ok {
		t.Fatal("interval cast")
	}
}

func TestRowWindow(t *testing.T) {
	q := mustParseSelect(t, `SELECT count(*) FROM s <VISIBLE 100 ROWS ADVANCE 10 ROWS>`)
	w := q.From[0].(*BaseTable).Window
	if w.Kind != WindowRows || w.Visible != 100 || w.Advance != 10 {
		t.Fatalf("%+v", w)
	}
}

func TestTumblingDefaults(t *testing.T) {
	q := mustParseSelect(t, `SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	w := q.From[0].(*BaseTable).Window
	if w.Visible != w.Advance || w.Visible != 60_000_000 {
		t.Fatalf("tumbling default: %+v", w)
	}
	q = mustParseSelect(t, `SELECT count(*) FROM s <VISIBLE '2 minutes'>`)
	w = q.From[0].(*BaseTable).Window
	if w.Visible != w.Advance || w.Visible != 120_000_000 {
		t.Fatalf("tumbling default: %+v", w)
	}
}

func TestWindowErrors(t *testing.T) {
	bad := []string{
		`SELECT 1 FROM s <VISIBLE '5 minutes' ADVANCE 10 ROWS>`, // mixed
		`SELECT 1 FROM s <>`,
		`SELECT 1 FROM s <VISIBLE '0 seconds'>`,
		`SELECT 1 FROM s <SLICES 0 WINDOWS>`,
		`SELECT 1 FROM s <VISIBLE 'nonsense'>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestJoins(t *testing.T) {
	q := mustParseSelect(t, `SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y`)
	j := q.From[0].(*Join)
	if j.Type != JoinLeft {
		t.Fatal("outer join should be top")
	}
	inner := j.Left.(*Join)
	if inner.Type != JoinInner {
		t.Fatal("inner join nested")
	}
	q = mustParseSelect(t, `SELECT * FROM a CROSS JOIN b`)
	if q.From[0].(*Join).Type != JoinCross {
		t.Fatal("cross join")
	}
	if q.From[0].(*Join).On != nil {
		t.Fatal("cross join has no ON")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr(`a + b * c - d`)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "((a + (b * c)) - d)" {
		t.Fatalf("got %s", got)
	}
	e, _ = ParseExpr(`a or b and not c = d`)
	if got := e.String(); got != "(a OR (b AND (NOT (c = d))))" {
		t.Fatalf("got %s", got)
	}
	e, _ = ParseExpr(`-a % 3`)
	if got := e.String(); got != "((-a) % 3)" {
		t.Fatalf("got %s", got)
	}
	e, _ = ParseExpr(`a || b || c`)
	if got := e.String(); got != "((a || b) || c)" {
		t.Fatalf("got %s", got)
	}
}

func TestExpressionForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{`x is null`, "(x IS NULL)"},
		{`x is not null`, "(x IS NOT NULL)"},
		{`x between 1 and 10`, "(x BETWEEN 1 AND 10)"},
		{`x not between 1 and 10`, "(x NOT BETWEEN 1 AND 10)"},
		{`x in (1, 2, 3)`, "(x IN (1, 2, 3))"},
		{`x not in ('a')`, "(x NOT IN ('a'))"},
		{`x like 'a%'`, "(x LIKE 'a%')"},
		{`x not like 'a%'`, "(x NOT LIKE 'a%')"},
		{`cast(x as bigint)`, "CAST(x AS BIGINT)"},
		{`x::varchar`, "CAST(x AS VARCHAR)"},
		{`case when a then 1 else 2 end`, "CASE WHEN a THEN 1 ELSE 2 END"},
		{`case x when 1 then 'a' when 2 then 'b' end`, "CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END"},
		{`count(distinct x)`, "count(DISTINCT x)"},
		{`interval '2 hours'`, "2 hours"},
		{`f(a, b)`, "f(a, b)"},
		{`t.col`, "t.col"},
		{`it''s`, "its"}, // double-quote escape handled by lexer… see below
	}
	for _, c := range cases[:len(cases)-1] {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("ParseExpr(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestInsertForms(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`).(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	ins = mustParse(t, `INSERT INTO t SELECT * FROM u`).(*Insert)
	if ins.Query == nil {
		t.Fatal("insert-select")
	}
}

func TestUpdateDelete(t *testing.T) {
	up := mustParse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id = 3`).(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	del := mustParse(t, `DELETE FROM t WHERE a < 5`).(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("%+v", del)
	}
	del = mustParse(t, `DELETE FROM t`).(*Delete)
	if del.Where != nil {
		t.Fatal("no where")
	}
}

func TestDropForms(t *testing.T) {
	d := mustParse(t, `DROP TABLE IF EXISTS t`).(*Drop)
	if d.Kind != ObjTable || !d.IfExists {
		t.Fatalf("%+v", d)
	}
	for src, kind := range map[string]ObjectKind{
		`DROP STREAM s`:  ObjStream,
		`DROP VIEW v`:    ObjView,
		`DROP CHANNEL c`: ObjChannel,
		`DROP INDEX i`:   ObjIndex,
	} {
		if got := mustParse(t, src).(*Drop).Kind; got != kind {
			t.Errorf("%s: kind %v", src, got)
		}
	}
}

func TestSetOperations(t *testing.T) {
	q := mustParseSelect(t, `SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1`)
	if q.SetOp == nil || q.SetOp.Kind != SetUnion || !q.SetOp.All {
		t.Fatalf("%+v", q.SetOp)
	}
	if len(q.OrderBy) != 1 {
		t.Fatal("order by belongs to the chain")
	}
	q = mustParseSelect(t, `SELECT a FROM t EXCEPT SELECT a FROM u`)
	if q.SetOp.Kind != SetExcept || q.SetOp.All {
		t.Fatal("except")
	}
	q = mustParseSelect(t, `SELECT a FROM t INTERSECT SELECT a FROM u`)
	if q.SetOp.Kind != SetIntersect {
		t.Fatal("intersect")
	}
}

func TestMiscStatements(t *testing.T) {
	if s := mustParse(t, `SHOW TABLES`).(*Show); s.What != "tables" {
		t.Fatal("show")
	}
	if _, ok := mustParse(t, `EXPLAIN SELECT 1`).(*Explain); !ok {
		t.Fatal("explain")
	}
	if tr := mustParse(t, `TRUNCATE TABLE t`).(*Truncate); tr.Table != "t" {
		t.Fatal("truncate")
	}
	ci := mustParse(t, `CREATE INDEX i ON t (a, b)`).(*CreateIndex)
	if ci.Table != "t" || len(ci.Columns) != 2 {
		t.Fatal("create index")
	}
	v := mustParse(t, `CREATE VIEW v AS SELECT a FROM t`).(*CreateView)
	if v.Name != "v" {
		t.Fatal("create view")
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (a bigint);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM t`,
		`CREATE TABLE t (a cqtime_not_a_type)`,
		`CREATE TABLE t (a bigint cqtime user)`, // cqtime only on streams
		`INSERT INTO t`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM (SELECT 1`,
		`DROP t`,
		`SELECT 1 2`,
		`UPDATE t SET`,
		`CASE WHEN END`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSelectItemForms(t *testing.T) {
	q := mustParseSelect(t, `SELECT *, t.*, a AS x, b y FROM t`)
	if !q.Items[0].Star {
		t.Fatal("star")
	}
	if q.Items[1].TableStar != "t" {
		t.Fatal("table star")
	}
	if q.Items[2].Alias != "x" || q.Items[3].Alias != "y" {
		t.Fatal("aliases")
	}
}

func TestWalkExprs(t *testing.T) {
	e, err := ParseExpr(`case when a + 1 > 2 then f(b) else c in (1, d) end`)
	if err != nil {
		t.Fatal(err)
	}
	var cols []string
	WalkExprs(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			cols = append(cols, c.Name)
		}
		return true
	})
	if strings.Join(cols, ",") != "a,b,c,d" {
		t.Fatalf("cols = %v", cols)
	}
}

func TestWindowSpecString(t *testing.T) {
	cases := []struct {
		w    WindowSpec
		want string
	}{
		{WindowSpec{Kind: WindowTime, Visible: 300_000_000, Advance: 60_000_000},
			"<VISIBLE '5 minutes' ADVANCE '1 minute'>"},
		{WindowSpec{Kind: WindowRows, Visible: 100, Advance: 10},
			"<VISIBLE 100 ROWS ADVANCE 10 ROWS>"},
		{WindowSpec{Kind: WindowSlices, Visible: 3, Advance: 1},
			"<SLICES 3 WINDOWS>"},
	}
	for _, c := range cases {
		if got := c.w.String(); got != c.want {
			t.Errorf("got %s, want %s", got, c.want)
		}
	}
}
