// Package sql implements the lexer, AST and parser for the TruSQL dialect
// described in the paper: standard SQL extended with streams, window
// clauses (<VISIBLE … ADVANCE …>, <SLICES n WINDOWS>), derived streams,
// streaming views and channels.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a lexical token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokString // 'quoted'
	TokNumber
	TokSymbol // punctuation and operators
	TokParam  // $1, $2, … positional parameter (Text holds the digits)
)

// Token is one lexical token. For TokKeyword and TokIdent, Text is
// lower-cased unless the identifier was double-quoted.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

// keywords is the reserved-word list. Words not in this set lex as
// identifiers; the parser treats several of these contextually.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "offset": true, "as": true,
	"and": true, "or": true, "not": true, "is": true, "null": true,
	"true": true, "false": true, "in": true, "like": true, "between": true,
	"case": true, "when": true, "then": true, "else": true, "end": true,
	"cast": true, "create": true, "table": true, "stream": true, "view": true,
	"channel": true, "index": true, "drop": true, "insert": true, "into": true,
	"values": true, "update": true, "set": true, "delete": true,
	"join": true, "inner": true, "left": true, "right": true, "full": true,
	"outer": true, "cross": true, "on": true, "using": true,
	"distinct": true, "all": true, "asc": true, "desc": true,
	"union": true, "except": true, "intersect": true,
	"visible": true, "advance": true, "slices": true, "windows": true,
	"rows": true, "cqtime": true, "user": true, "system": true,
	"append": true, "replace": true, "if": true, "exists": true,
	"interval": true, "timestamp": true, "show": true, "explain": true,
	"analyze": true,
	"tables":  true, "streams": true, "views": true, "channels": true,
	"begin": true, "commit": true, "rollback": true, "truncate": true,
	"nulls": true, "first": true, "last": true, "primary": true, "key": true,
	"partition": true,
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token. At end of input it returns TokEOF forever.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexIdent(start), nil
	case c == '"':
		return l.lexQuotedIdent(start)
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	case c == '$':
		return l.lexParam(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.src) {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '$' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) lexIdent(start int) Token {
	for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
		l.pos++
	}
	text := strings.ToLower(l.src[start:l.pos])
	kind := TokIdent
	if keywords[text] {
		kind = TokKeyword
	}
	return Token{Kind: kind, Text: text, Pos: start}
}

func (l *Lexer) lexQuotedIdent(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokIdent, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	sawDot, sawExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !sawDot && !sawExp:
			sawDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !sawExp && l.pos > start:
			sawExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if text == "." {
		return Token{}, fmt.Errorf("sql: invalid number at offset %d", start)
	}
	return Token{Kind: TokNumber, Text: text, Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

func (l *Lexer) lexParam(start int) (Token, error) {
	l.pos++ // '$'
	digits := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == digits {
		return Token{}, fmt.Errorf("sql: expected digits after '$' at offset %d", start)
	}
	return Token{Kind: TokParam, Text: l.src[digits:l.pos], Pos: start}, nil
}

// twoCharSymbols are the multi-character operators, longest match first.
var twoCharSymbols = []string{"::", "<=", ">=", "<>", "!=", "||"}

func (l *Lexer) lexSymbol(start int) (Token, error) {
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.pos += len(s)
			return Token{Kind: TokSymbol, Text: s, Pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '*', '+', '-', '/', '%', '=', '<', '>', '.':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
	r := rune(c)
	if r > unicode.MaxASCII {
		r = '?'
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", r, start)
}

// Tokenize lexes the whole input; used by tests.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return out, nil
		}
		out = append(out, t)
	}
}
