package sql

import (
	"fmt"
	"strings"

	"streamrel/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// Expr is any scalar expression node.
type Expr interface {
	exprNode()
	String() string
}

// ---------------------------------------------------------------- DDL/DML

// ColumnDef is one column in a CREATE TABLE or CREATE STREAM.
type ColumnDef struct {
	Name   string
	Type   types.Type
	CQTime bool // marked CQTIME; streams only
	// CQTimeSystem marks "CQTIME SYSTEM": the engine stamps arrival time
	// instead of trusting the inserted value.
	CQTimeSystem bool
}

// CreateTable is CREATE TABLE name (cols…).
type CreateTable struct {
	Name        string
	Columns     []ColumnDef
	IfNotExists bool
}

// CreateStream is CREATE STREAM name (cols…) with exactly one CQTIME column.
// PartitionBy names the column a shard router hashes to place rows
// (CREATE STREAM … PARTITION BY col); empty means unpartitioned.
type CreateStream struct {
	Name        string
	Columns     []ColumnDef
	PartitionBy string
	IfNotExists bool
}

// CreateDerivedStream is CREATE STREAM name AS select — an always-on CQ.
type CreateDerivedStream struct {
	Name        string
	Query       *Select
	IfNotExists bool
}

// CreateView is CREATE VIEW name AS select. If the query references a
// stream it is a Streaming View, instantiated when used (paper §3.2).
type CreateView struct {
	Name        string
	Query       *Select
	IfNotExists bool
}

// ChannelMode selects how a channel writes into its table (paper §3.3).
type ChannelMode int

// Channel modes.
const (
	ChannelAppend  ChannelMode = iota // add new results to the table
	ChannelReplace                    // each window's results replace the previous
)

func (m ChannelMode) String() string {
	if m == ChannelReplace {
		return "REPLACE"
	}
	return "APPEND"
}

// CreateChannel is CREATE CHANNEL name FROM stream INTO table APPEND|REPLACE.
type CreateChannel struct {
	Name        string
	From        string // derived stream name
	Into        string // table name (becomes an Active Table)
	Mode        ChannelMode
	IfNotExists bool
}

// CreateIndex is CREATE INDEX name ON table (cols…).
type CreateIndex struct {
	Name        string
	Table       string
	Columns     []string
	IfNotExists bool
}

// ObjectKind names a droppable catalog object class.
type ObjectKind int

// Object kinds.
const (
	ObjTable ObjectKind = iota
	ObjStream
	ObjView
	ObjChannel
	ObjIndex
)

func (k ObjectKind) String() string {
	switch k {
	case ObjTable:
		return "TABLE"
	case ObjStream:
		return "STREAM"
	case ObjView:
		return "VIEW"
	case ObjChannel:
		return "CHANNEL"
	case ObjIndex:
		return "INDEX"
	}
	return "?"
}

// Drop is DROP kind name.
type Drop struct {
	Kind     ObjectKind
	Name     string
	IfExists bool
}

// Insert is INSERT INTO table [(cols…)] VALUES… | select.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr // literal rows; nil if Query is set
	Query   *Select
}

// Update is UPDATE table SET col = expr… [WHERE…].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause item.
type Assignment struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM table [WHERE…].
type Delete struct {
	Table string
	Where Expr
}

// Truncate is TRUNCATE table.
type Truncate struct{ Table string }

// Show is SHOW TABLES|STREAMS|VIEWS|CHANNELS.
type Show struct{ What string }

// Explain wraps a statement for plan display. With Analyze the statement
// is executed and per-operator row counts and timings are reported.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*CreateTable) stmtNode()         {}
func (*CreateStream) stmtNode()        {}
func (*CreateDerivedStream) stmtNode() {}
func (*CreateView) stmtNode()          {}
func (*CreateChannel) stmtNode()       {}
func (*CreateIndex) stmtNode()         {}
func (*Drop) stmtNode()                {}
func (*Insert) stmtNode()              {}
func (*Update) stmtNode()              {}
func (*Delete) stmtNode()              {}
func (*Truncate) stmtNode()            {}
func (*Show) stmtNode()                {}
func (*Explain) stmtNode()             {}
func (*Select) stmtNode()              {}

// ---------------------------------------------------------------- SELECT

// Select is a (possibly continuous) query block. Set operations chain via
// SetOp.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // joined with CROSS semantics when >1 (plus WHERE)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
	SetOp    *SetOp // optional trailing UNION/EXCEPT/INTERSECT
}

// SetOpKind distinguishes UNION, EXCEPT and INTERSECT.
type SetOpKind int

// Set operation kinds.
const (
	SetUnion SetOpKind = iota
	SetExcept
	SetIntersect
)

// SetOp chains a set operation onto a select.
type SetOp struct {
	Kind  SetOpKind
	All   bool
	Right *Select
}

// SelectItem is one projection: expr [AS alias], *, or table.*.
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	TableStar string // "t" for t.*
}

// NullsOrder is the explicit NULLS FIRST/LAST request on an ORDER BY key.
type NullsOrder int

// Nulls placements. Default follows the total order (NULLs first
// ascending, last descending).
const (
	NullsDefault NullsOrder = iota
	NullsFirst
	NullsLast
)

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr  Expr
	Desc  bool
	Nulls NullsOrder
}

// TableRef is a FROM-clause item.
type TableRef interface{ tableRefNode() }

// BaseTable references a named table, stream, view or derived stream,
// optionally with a window specification (streams only).
type BaseTable struct {
	Name   string
	Alias  string
	Window *WindowSpec
}

// Subquery is a parenthesized select in FROM.
type Subquery struct {
	Query *Select
	Alias string
}

// JoinType enumerates join variants.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

func (t JoinType) String() string {
	switch t {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT"
	case JoinRight:
		return "RIGHT"
	case JoinFull:
		return "FULL"
	case JoinCross:
		return "CROSS"
	}
	return "?"
}

// Join is an explicit JOIN in FROM.
type Join struct {
	Type  JoinType
	Left  TableRef
	Right TableRef
	On    Expr
}

func (*BaseTable) tableRefNode() {}
func (*Subquery) tableRefNode()  {}
func (*Join) tableRefNode()      {}

// WindowKind distinguishes the window clause forms.
type WindowKind int

// Window kinds.
const (
	// WindowTime: VISIBLE and ADVANCE are interval microseconds over the
	// stream's CQTIME attribute.
	WindowTime WindowKind = iota
	// WindowRows: VISIBLE and ADVANCE are row counts.
	WindowRows
	// WindowSlices: <SLICES n WINDOWS> — the last n window-emissions of a
	// derived stream; advances one emission at a time.
	WindowSlices
)

// WindowSpec is the parsed window clause attached to a stream reference.
// The paper's Example 2 uses <VISIBLE '5 minutes' ADVANCE '1 minute'>;
// Example 5 uses <SLICES 1 WINDOWS>.
type WindowSpec struct {
	Kind    WindowKind
	Visible int64 // micros (WindowTime) or rows (WindowRows) or windows (WindowSlices)
	Advance int64 // micros or rows; for WindowSlices fixed at 1 emission
}

func (w *WindowSpec) String() string {
	switch w.Kind {
	case WindowTime:
		return fmt.Sprintf("<VISIBLE '%s' ADVANCE '%s'>",
			types.FormatInterval(w.Visible), types.FormatInterval(w.Advance))
	case WindowRows:
		return fmt.Sprintf("<VISIBLE %d ROWS ADVANCE %d ROWS>", w.Visible, w.Advance)
	case WindowSlices:
		return fmt.Sprintf("<SLICES %d WINDOWS>", w.Visible)
	}
	return "<?>"
}

// ---------------------------------------------------------------- exprs

// Literal is a constant.
type Literal struct{ Val types.Datum }

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct{ Table, Name string }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpConcat
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "AND", OpOr: "OR", OpConcat: "||",
}

func (o BinOp) String() string { return binOpNames[o] }

// BinaryExpr is L op R.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota
	OpNot
)

// UnaryExpr is op E.
type UnaryExpr struct {
	Op UnaryOp
	E  Expr
}

// FuncCall is name(args…); Star marks count(*)-style calls.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

// CastExpr is E::type or CAST(E AS type).
type CastExpr struct {
	E  Expr
	To types.Type
}

// IsNullExpr is E IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Neg bool
}

// BetweenExpr is E [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Neg       bool
}

// InExpr is E [NOT] IN (list…).
type InExpr struct {
	E    Expr
	List []Expr
	Neg  bool
}

// LikeExpr is E [NOT] LIKE pattern.
type LikeExpr struct {
	E, Pattern Expr
	Neg        bool
}

// CaseWhen is one WHEN … THEN … arm.
type CaseWhen struct{ Cond, Result Expr }

// CaseExpr is CASE [operand] WHEN… [ELSE…] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

func (*Literal) exprNode()     {}
func (*ColumnRef) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*FuncCall) exprNode()    {}
func (*CastExpr) exprNode()    {}
func (*IsNullExpr) exprNode()  {}
func (*BetweenExpr) exprNode() {}
func (*InExpr) exprNode()      {}
func (*LikeExpr) exprNode()    {}
func (*CaseExpr) exprNode()    {}

func (e *Literal) String() string {
	if e.Val.Type() == types.TypeString {
		return "'" + strings.ReplaceAll(e.Val.Str(), "'", "''") + "'"
	}
	return e.Val.String()
}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

func (e *UnaryExpr) String() string {
	if e.Op == OpNot {
		return "(NOT " + e.E.String() + ")"
	}
	return "(-" + e.E.String() + ")"
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(args, ", ") + ")"
}

func (e *CastExpr) String() string {
	return "CAST(" + e.E.String() + " AS " + e.To.String() + ")"
}

func (e *IsNullExpr) String() string {
	if e.Neg {
		return "(" + e.E.String() + " IS NOT NULL)"
	}
	return "(" + e.E.String() + " IS NULL)"
}

func (e *BetweenExpr) String() string {
	n := ""
	if e.Neg {
		n = "NOT "
	}
	return "(" + e.E.String() + " " + n + "BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, a := range e.List {
		items[i] = a.String()
	}
	n := ""
	if e.Neg {
		n = "NOT "
	}
	return "(" + e.E.String() + " " + n + "IN (" + strings.Join(items, ", ") + "))"
}

func (e *LikeExpr) String() string {
	n := ""
	if e.Neg {
		n = "NOT "
	}
	return "(" + e.E.String() + " " + n + "LIKE " + e.Pattern.String() + ")"
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.String())
	}
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// WalkExprs visits every expression in the tree rooted at e, depth-first.
// The visitor returns false to stop descending into a node's children.
func WalkExprs(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		WalkExprs(n.L, visit)
		WalkExprs(n.R, visit)
	case *UnaryExpr:
		WalkExprs(n.E, visit)
	case *FuncCall:
		for _, a := range n.Args {
			WalkExprs(a, visit)
		}
	case *CastExpr:
		WalkExprs(n.E, visit)
	case *IsNullExpr:
		WalkExprs(n.E, visit)
	case *BetweenExpr:
		WalkExprs(n.E, visit)
		WalkExprs(n.Lo, visit)
		WalkExprs(n.Hi, visit)
	case *InExpr:
		WalkExprs(n.E, visit)
		for _, a := range n.List {
			WalkExprs(a, visit)
		}
	case *LikeExpr:
		WalkExprs(n.E, visit)
		WalkExprs(n.Pattern, visit)
	case *CaseExpr:
		WalkExprs(n.Operand, visit)
		for _, w := range n.Whens {
			WalkExprs(w.Cond, visit)
			WalkExprs(w.Result, visit)
		}
		WalkExprs(n.Else, visit)
	}
}
