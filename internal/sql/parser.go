package sql

import (
	"fmt"
	"strconv"
	"strings"

	"streamrel/internal/types"
)

// Parser is a recursive-descent parser over a pre-lexed token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	parsed, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	out := make([]Statement, len(parsed))
	for i, p := range parsed {
		out[i] = p.Stmt
	}
	return out, nil
}

// ParsedStmt pairs a statement with its source text, so callers (the WAL)
// can log the exact SQL for replay.
type ParsedStmt struct {
	Stmt Statement
	Text string
}

// ParseScript parses a semicolon-separated script, retaining each
// statement's source text.
func ParseScript(src string) ([]ParsedStmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	var stmts []ParsedStmt
	for {
		for p.acceptSymbol(";") {
		}
		if p.peek().Kind == TokEOF {
			break
		}
		start := p.peek().Pos
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		end := len(src)
		if p.pos < len(p.toks) {
			end = p.toks[p.pos].Pos
		}
		stmts = append(stmts, ParsedStmt{Stmt: s, Text: strings.TrimSpace(src[start:end])})
		if !p.acceptSymbol(";") && p.peek().Kind != TokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
	return stmts, nil
}

// ParseExpr parses a standalone scalar expression; used by tests and tools.
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected input after expression")
	}
	return e, nil
}

// --------------------------------------------------------------- helpers

func (p *Parser) peek() Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return Token{Kind: TokEOF, Pos: len(p.src)}
}

func (p *Parser) peekAt(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return Token{Kind: TokEOF, Pos: len(p.src)}
}

func (p *Parser) next() Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.peek()
	loc := fmt.Sprintf(" near offset %d", t.Pos)
	if t.Kind != TokEOF {
		loc = fmt.Sprintf(" near %q (offset %d)", t.Text, t.Pos)
	}
	return fmt.Errorf("sql: "+format+loc, args...)
}

func (p *Parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *Parser) acceptSymbol(s string) bool {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == s {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *Parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

// parseIdent accepts an identifier, or a keyword usable as an identifier in
// this dialect (e.g. a column named "key").
func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	// Allow a few non-reserved keywords as identifiers.
	if t.Kind == TokKeyword {
		switch t.Text {
		case "user", "system", "key", "first", "last", "visible", "advance",
			"slices", "windows", "append", "replace", "show", "tables",
			"streams", "views", "channels":
			p.pos++
			return t.Text, nil
		}
	}
	return "", p.errf("expected identifier")
}

// parseRelName accepts a relation name: a bare identifier, or a
// dot-qualified pair like sys.metrics (folded into one "a.b" name — the
// catalog treats the qualified form as the full name; only the reserved
// sys namespace uses it today).
func (p *Parser) parseRelName() (string, error) {
	name, err := p.parseIdent()
	if err != nil {
		return "", err
	}
	if p.peek().Kind == TokSymbol && p.peek().Text == "." {
		p.pos++
		rest, err := p.parseIdent()
		if err != nil {
			return "", err
		}
		return name + "." + rest, nil
	}
	return name, nil
}

// --------------------------------------------------------------- stmts

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected a statement")
	}
	switch t.Text {
	case "select":
		return p.parseSelect()
	case "create":
		return p.parseCreate()
	case "drop":
		return p.parseDrop()
	case "insert":
		return p.parseInsert()
	case "update":
		return p.parseUpdate()
	case "delete":
		return p.parseDelete()
	case "truncate":
		p.pos++
		p.acceptKeyword("table")
		name, err := p.parseRelName()
		if err != nil {
			return nil, err
		}
		return &Truncate{Table: name}, nil
	case "show":
		p.pos++
		w := p.next()
		switch w.Text {
		case "tables", "streams", "views", "channels":
			return &Show{What: w.Text}, nil
		}
		return nil, p.errf("expected TABLES, STREAMS, VIEWS or CHANNELS")
	case "explain":
		p.pos++
		analyze := p.acceptKeyword("analyze")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	}
	return nil, p.errf("unsupported statement %q", t.Text)
}

func (p *Parser) parseCreate() (Statement, error) {
	p.pos++ // create
	switch {
	case p.acceptKeyword("table"):
		return p.parseCreateTable()
	case p.acceptKeyword("stream"):
		return p.parseCreateStream()
	case p.acceptKeyword("view"):
		return p.parseCreateView()
	case p.acceptKeyword("channel"):
		return p.parseCreateChannel()
	case p.acceptKeyword("index"):
		return p.parseCreateIndex()
	}
	return nil, p.errf("expected TABLE, STREAM, VIEW, CHANNEL or INDEX after CREATE")
}

func (p *Parser) parseIfNotExists() (bool, error) {
	if p.acceptKeyword("if") {
		if err := p.expectKeyword("not"); err != nil {
			return false, err
		}
		if err := p.expectKeyword("exists"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *Parser) parseCreateTable() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColumnDefs(false)
	if err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols, IfNotExists: ine}, nil
}

func (p *Parser) parseCreateStream() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("as") {
		if err := p.expectKeyword("select"); err != nil {
			return nil, err
		}
		p.pos-- // parseSelect consumes SELECT itself
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateDerivedStream{Name: name, Query: q, IfNotExists: ine}, nil
	}
	cols, err := p.parseColumnDefs(true)
	if err != nil {
		return nil, err
	}
	var partBy string
	if p.acceptKeyword("partition") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		partBy, err = p.parseIdent()
		if err != nil {
			return nil, err
		}
		found := false
		for _, c := range cols {
			if c.Name == partBy {
				if c.CQTime {
					return nil, p.errf("PARTITION BY column %q cannot be the CQTIME column", partBy)
				}
				found = true
			}
		}
		if !found {
			return nil, p.errf("PARTITION BY column %q is not a column of the stream", partBy)
		}
	}
	return &CreateStream{Name: name, Columns: cols, PartitionBy: partBy, IfNotExists: ine}, nil
}

func (p *Parser) parseColumnDefs(stream bool) ([]ColumnDef, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		col := ColumnDef{Name: name, Type: typ}
		if p.acceptKeyword("cqtime") {
			if !stream {
				return nil, p.errf("CQTIME is only valid on streams")
			}
			// "CQTIME USER": timestamps supplied in the data; "CQTIME
			// SYSTEM": assigned by the engine at arrival. USER is the
			// default.
			if !p.acceptKeyword("user") && p.acceptKeyword("system") {
				col.CQTimeSystem = true
			}
			col.CQTime = true
		}
		cols = append(cols, col)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

// parseTypeName maps SQL type spellings to types.Type. Length arguments
// like varchar(1024) parse and are ignored (all strings are unbounded).
func (p *Parser) parseTypeName() (types.Type, error) {
	t := p.next()
	if t.Kind != TokIdent && t.Kind != TokKeyword {
		return types.TypeUnknown, p.errf("expected type name")
	}
	var typ types.Type
	switch t.Text {
	case "int", "integer", "bigint", "smallint", "int4", "int8":
		typ = types.TypeInt
	case "float", "double", "real", "numeric", "decimal", "float8":
		typ = types.TypeFloat
	case "varchar", "text", "char", "string":
		typ = types.TypeString
	case "bool", "boolean":
		typ = types.TypeBool
	case "timestamp", "timestamptz", "datetime":
		typ = types.TypeTimestamp
	case "interval":
		typ = types.TypeInterval
	default:
		return types.TypeUnknown, fmt.Errorf("sql: unknown type %q (offset %d)", t.Text, t.Pos)
	}
	// Optional precision/length arguments.
	if p.acceptSymbol("(") {
		for {
			n := p.next()
			if n.Kind != TokNumber {
				return types.TypeUnknown, p.errf("expected number in type modifier")
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return types.TypeUnknown, err
		}
	}
	// "double precision"
	if t.Text == "double" {
		p.acceptKeyword("precision")
		if pk := p.peek(); pk.Kind == TokIdent && pk.Text == "precision" {
			p.pos++
		}
	}
	return typ, nil
}

func (p *Parser) parseCreateView() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateView{Name: name, Query: q, IfNotExists: ine}, nil
}

func (p *Parser) parseCreateChannel() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	into, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	mode := ChannelAppend
	switch {
	case p.acceptKeyword("append"):
	case p.acceptKeyword("replace"):
		mode = ChannelReplace
	}
	return &CreateChannel{Name: name, From: from, Into: into, Mode: mode, IfNotExists: ine}, nil
}

func (p *Parser) parseCreateIndex() (Statement, error) {
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols, IfNotExists: ine}, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.pos++ // drop
	var kind ObjectKind
	switch {
	case p.acceptKeyword("table"):
		kind = ObjTable
	case p.acceptKeyword("stream"):
		kind = ObjStream
	case p.acceptKeyword("view"):
		kind = ObjView
	case p.acceptKeyword("channel"):
		kind = ObjChannel
	case p.acceptKeyword("index"):
		kind = ObjIndex
	default:
		return nil, p.errf("expected object kind after DROP")
	}
	ifExists := false
	if p.acceptKeyword("if") {
		if err := p.expectKeyword("exists"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	return &Drop{Kind: kind, Name: name, IfExists: ifExists}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.pos++ // insert
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.acceptSymbol("(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("values") {
		var rows [][]Expr
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if !p.acceptSymbol(",") {
				break
			}
		}
		return &Insert{Table: table, Columns: cols, Rows: rows}, nil
	}
	if p.peekKeyword("select") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Insert{Table: table, Columns: cols, Query: q}, nil
	}
	return nil, p.errf("expected VALUES or SELECT")
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.pos++ // update
	table, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	var assigns []Assignment
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, Assignment{Column: col, Value: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	var where Expr
	if p.acceptKeyword("where") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &Update{Table: table, Set: assigns, Where: where}, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.pos++ // delete
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	var where Expr
	if p.acceptKeyword("where") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &Delete{Table: table, Where: where}, nil
}

// --------------------------------------------------------------- select

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &Select{}
	if p.acceptKeyword("distinct") {
		s.Distinct = true
	} else {
		p.acceptKeyword("all")
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("from") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	var err error
	if p.acceptKeyword("where") {
		if s.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		if s.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	// Set operations bind before ORDER BY/LIMIT of the overall query.
	for {
		var kind SetOpKind
		switch {
		case p.acceptKeyword("union"):
			kind = SetUnion
		case p.acceptKeyword("except"):
			kind = SetExcept
		case p.acceptKeyword("intersect"):
			kind = SetIntersect
		default:
			goto setDone
		}
		all := p.acceptKeyword("all")
		right, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		// Chain onto the deepest select.
		leaf := s
		for leaf.SetOp != nil {
			leaf = leaf.SetOp.Right
		}
		leaf.SetOp = &SetOp{Kind: kind, All: all, Right: right}
	}
setDone:
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			if p.acceptKeyword("nulls") {
				switch {
				case p.acceptKeyword("first"):
					item.Nulls = NullsFirst
				case p.acceptKeyword("last"):
					item.Nulls = NullsLast
				default:
					return nil, p.errf("expected FIRST or LAST")
				}
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		if s.Limit, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("offset") {
		if s.Offset, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// parseSelectCore parses the right side of a set operation: a SELECT block
// without trailing ORDER BY / LIMIT (those belong to the whole chain).
func (p *Parser) parseSelectCore() (*Select, error) {
	if p.acceptSymbol("(") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &Select{}
	if p.acceptKeyword("distinct") {
		s.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("from") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	var err error
	if p.acceptKeyword("where") {
		if s.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		if s.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.peek().Kind == TokIdent && p.peekAt(1).Kind == TokSymbol && p.peekAt(1).Text == "." &&
		p.peekAt(2).Kind == TokSymbol && p.peekAt(2).Text == "*" {
		t := p.next()
		p.next()
		p.next()
		return SelectItem{TableStar: t.Text}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		a, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseTableRef parses one FROM item including trailing JOIN chains.
func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("join"):
			jt = JoinInner
		case p.acceptKeyword("inner"):
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = JoinInner
		case p.acceptKeyword("left"):
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		case p.acceptKeyword("right"):
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = JoinRight
		case p.acceptKeyword("full"):
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = JoinFull
		case p.acceptKeyword("cross"):
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &Join{Type: jt, Left: left, Right: right}
		if jt != JoinCross {
			if err := p.expectKeyword("on"); err != nil {
				return nil, err
			}
			if j.On, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		left = j
	}
}

func (p *Parser) parseTablePrimary() (TableRef, error) {
	if p.acceptSymbol("(") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		sub := &Subquery{Query: q}
		if p.acceptKeyword("as") {
			a, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			sub.Alias = a
		} else if p.peek().Kind == TokIdent {
			sub.Alias = p.next().Text
		}
		return sub, nil
	}
	name, err := p.parseRelName()
	if err != nil {
		return nil, err
	}
	bt := &BaseTable{Name: name}
	// Window clause: '<' VISIBLE … | SLICES … '>' — only valid right here,
	// where a comparison operator cannot occur.
	if p.peek().Kind == TokSymbol && p.peek().Text == "<" {
		w, err := p.parseWindowSpec()
		if err != nil {
			return nil, err
		}
		bt.Window = w
	}
	if p.acceptKeyword("as") {
		a, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		bt.Alias = a
	} else if p.peek().Kind == TokIdent {
		bt.Alias = p.next().Text
	}
	// Window may also follow the alias (both orders appear in practice).
	if bt.Window == nil && p.peek().Kind == TokSymbol && p.peek().Text == "<" {
		w, err := p.parseWindowSpec()
		if err != nil {
			return nil, err
		}
		bt.Window = w
	}
	return bt, nil
}

// parseWindowSpec parses the paper's window clause:
//
//	<VISIBLE '5 minutes' ADVANCE '1 minute'>
//	<VISIBLE 100 ROWS ADVANCE 10 ROWS>
//	<SLICES 1 WINDOWS>
//
// VISIBLE without ADVANCE (or vice versa) means a tumbling window.
func (p *Parser) parseWindowSpec() (*WindowSpec, error) {
	if err := p.expectSymbol("<"); err != nil {
		return nil, err
	}
	w := &WindowSpec{}
	if p.acceptKeyword("slices") {
		n := p.next()
		if n.Kind != TokNumber {
			return nil, p.errf("expected window count after SLICES")
		}
		cnt, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil || cnt <= 0 {
			return nil, p.errf("invalid SLICES count %q", n.Text)
		}
		if err := p.expectKeyword("windows"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(">"); err != nil {
			return nil, err
		}
		return &WindowSpec{Kind: WindowSlices, Visible: cnt, Advance: 1}, nil
	}
	var haveVisible, haveAdvance bool
	var rowBased, timeBased bool
	for {
		switch {
		case p.acceptKeyword("visible"):
			v, isRows, err := p.parseWindowExtent()
			if err != nil {
				return nil, err
			}
			w.Visible, haveVisible = v, true
			rowBased = rowBased || isRows
			timeBased = timeBased || !isRows
		case p.acceptKeyword("advance"):
			v, isRows, err := p.parseWindowExtent()
			if err != nil {
				return nil, err
			}
			w.Advance, haveAdvance = v, true
			rowBased = rowBased || isRows
			timeBased = timeBased || !isRows
		default:
			goto finish
		}
	}
finish:
	if err := p.expectSymbol(">"); err != nil {
		return nil, err
	}
	if !haveVisible && !haveAdvance {
		return nil, p.errf("window clause needs VISIBLE and/or ADVANCE")
	}
	if rowBased && timeBased {
		return nil, p.errf("window clause mixes time and row extents")
	}
	if rowBased {
		w.Kind = WindowRows
	} else {
		w.Kind = WindowTime
	}
	if !haveVisible {
		w.Visible = w.Advance // tumbling
	}
	if !haveAdvance {
		w.Advance = w.Visible // tumbling
	}
	if w.Visible <= 0 || w.Advance <= 0 {
		return nil, p.errf("window extents must be positive")
	}
	return w, nil
}

// parseWindowExtent parses either an interval string literal ('5 minutes')
// or "<n> ROWS". It returns the magnitude and whether it was row-based.
func (p *Parser) parseWindowExtent() (int64, bool, error) {
	t := p.peek()
	switch t.Kind {
	case TokString:
		p.pos++
		d, err := types.ParseInterval(t.Text)
		if err != nil {
			return 0, false, fmt.Errorf("sql: window extent: %w", err)
		}
		return d.IntervalMicros(), false, nil
	case TokNumber:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return 0, false, p.errf("invalid row count %q", t.Text)
		}
		if err := p.expectKeyword("rows"); err != nil {
			return 0, false, err
		}
		return n, true, nil
	}
	return 0, false, p.errf("expected interval literal or row count")
}

// --------------------------------------------------------------- exprs

// parseExpr parses with standard SQL precedence:
// OR < AND < NOT < comparison/IS/LIKE/BETWEEN/IN < add < mul < unary < cast.
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, E: e}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol {
			if op, ok := cmpOps[t.Text]; ok {
				p.pos++
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &BinaryExpr{Op: op, L: l, R: r}
				continue
			}
		}
		if p.acceptKeyword("is") {
			neg := p.acceptKeyword("not")
			if err := p.expectKeyword("null"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{E: l, Neg: neg}
			continue
		}
		neg := false
		save := p.pos
		if p.acceptKeyword("not") {
			neg = true
		}
		switch {
		case p.acceptKeyword("between"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{E: l, Lo: lo, Hi: hi, Neg: neg}
			continue
		case p.acceptKeyword("in"):
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			l = &InExpr{E: l, List: list, Neg: neg}
			continue
		case p.acceptKeyword("like"):
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &LikeExpr{E: l, Pattern: pat, Neg: neg}
			continue
		}
		if neg {
			p.pos = save // the NOT belongs to an outer context
		}
		return l, nil
	}
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return l, nil
		}
		var op BinOp
		switch t.Text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return l, nil
		}
		var op BinOp
		switch t.Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, E: e}, nil
	}
	p.acceptSymbol("+")
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("::") {
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		e = &CastExpr{E: e, To: typ}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.Text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.Text)
		}
		return &Literal{Val: types.NewInt(n)}, nil
	case TokString:
		p.pos++
		return &Literal{Val: types.NewString(t.Text)}, nil
	case TokParam:
		p.pos++
		idx, err := strconv.Atoi(t.Text)
		if err != nil || idx < 1 {
			return nil, p.errf("invalid parameter $%s", t.Text)
		}
		return &Param{Index: idx}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case TokKeyword:
		switch t.Text {
		case "null":
			p.pos++
			return &Literal{Val: types.Null}, nil
		case "true":
			p.pos++
			return &Literal{Val: types.True}, nil
		case "false":
			p.pos++
			return &Literal{Val: types.False}, nil
		case "interval":
			p.pos++
			lit := p.next()
			if lit.Kind != TokString {
				return nil, p.errf("expected string after INTERVAL")
			}
			d, err := types.ParseInterval(lit.Text)
			if err != nil {
				return nil, err
			}
			return &Literal{Val: d}, nil
		case "timestamp":
			p.pos++
			lit := p.next()
			if lit.Kind != TokString {
				return nil, p.errf("expected string after TIMESTAMP")
			}
			d, err := types.ParseTimestamp(lit.Text)
			if err != nil {
				return nil, err
			}
			return &Literal{Val: d}, nil
		case "cast":
			p.pos++
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("as"); err != nil {
				return nil, err
			}
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &CastExpr{E: e, To: typ}, nil
		case "case":
			return p.parseCase()
		}
	}
	// Identifier: column ref or function call. Also a few keywords usable
	// as identifiers (user, key, …).
	name, err := p.parseIdent()
	if err != nil {
		return nil, p.errf("expected expression")
	}
	if p.acceptSymbol("(") {
		fc := &FuncCall{Name: name}
		if p.acceptSymbol("*") {
			fc.Star = true
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if !p.acceptSymbol(")") {
			if p.acceptKeyword("distinct") {
				fc.Distinct = true
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		return fc, nil
	}
	if p.acceptSymbol(".") {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

func (p *Parser) parseCase() (Expr, error) {
	p.pos++ // case
	c := &CaseExpr{}
	if !p.peekKeyword("when") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}
