package sql

import (
	"fmt"

	"streamrel/internal/types"
)

// Param is a positional query parameter ($1, $2, …). Parameters are bound
// to literal values with BindParams before planning.
type Param struct{ Index int }

func (*Param) exprNode() {}

// String renders the placeholder.
func (p *Param) String() string { return fmt.Sprintf("$%d", p.Index) }

// BindParams returns a copy of the statement with every $n placeholder
// replaced by the corresponding value from args (1-based). It errors on
// out-of-range placeholders and on unused trailing arguments.
func BindParams(stmt Statement, args []types.Datum) (Statement, error) {
	maxSeen := 0
	bind := func(e Expr) (Expr, error) {
		if e == nil {
			return nil, nil
		}
		var bindErr error
		out := rewriteParams(e, func(p *Param) Expr {
			if p.Index < 1 || p.Index > len(args) {
				bindErr = fmt.Errorf("sql: parameter $%d out of range (%d arguments)", p.Index, len(args))
				return p
			}
			if p.Index > maxSeen {
				maxSeen = p.Index
			}
			return &Literal{Val: args[p.Index-1]}
		})
		return out, bindErr
	}

	var err error
	var out Statement
	switch s := stmt.(type) {
	case *Select:
		var sel *Select
		sel, err = bindSelect(s, bind)
		out = sel
	case *Insert:
		ins := *s
		if s.Query != nil {
			ins.Query, err = bindSelect(s.Query, bind)
		} else {
			ins.Rows = make([][]Expr, len(s.Rows))
			for i, row := range s.Rows {
				ins.Rows[i] = make([]Expr, len(row))
				for j, e := range row {
					if ins.Rows[i][j], err = bind(e); err != nil {
						return nil, err
					}
				}
			}
		}
		out = &ins
	case *Update:
		up := *s
		up.Set = make([]Assignment, len(s.Set))
		for i, a := range s.Set {
			up.Set[i] = a
			if up.Set[i].Value, err = bind(a.Value); err != nil {
				return nil, err
			}
		}
		if up.Where, err = bind(s.Where); err != nil {
			return nil, err
		}
		out = &up
	case *Delete:
		del := *s
		if del.Where, err = bind(s.Where); err != nil {
			return nil, err
		}
		out = &del
	default:
		if len(args) > 0 {
			return nil, fmt.Errorf("sql: this statement kind does not take parameters")
		}
		return stmt, nil
	}
	if err != nil {
		return nil, err
	}
	if maxSeen < len(args) {
		return nil, fmt.Errorf("sql: %d arguments supplied but only $%d used", len(args), maxSeen)
	}
	return out, nil
}

// bindSelect rewrites parameters throughout a select block (recursively
// through FROM and set operations).
func bindSelect(s *Select, bind func(Expr) (Expr, error)) (*Select, error) {
	out := *s
	var err error
	out.Items = make([]SelectItem, len(s.Items))
	for i, item := range s.Items {
		out.Items[i] = item
		if item.Expr != nil {
			if out.Items[i].Expr, err = bind(item.Expr); err != nil {
				return nil, err
			}
		}
	}
	out.From = make([]TableRef, len(s.From))
	for i, ref := range s.From {
		if out.From[i], err = bindTableRef(ref, bind); err != nil {
			return nil, err
		}
	}
	if out.Where, err = bind(s.Where); err != nil {
		return nil, err
	}
	out.GroupBy = make([]Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		if out.GroupBy[i], err = bind(g); err != nil {
			return nil, err
		}
	}
	if out.Having, err = bind(s.Having); err != nil {
		return nil, err
	}
	out.OrderBy = make([]OrderItem, len(s.OrderBy))
	for i, o := range s.OrderBy {
		out.OrderBy[i] = o
		if out.OrderBy[i].Expr, err = bind(o.Expr); err != nil {
			return nil, err
		}
	}
	if out.Limit, err = bind(s.Limit); err != nil {
		return nil, err
	}
	if out.Offset, err = bind(s.Offset); err != nil {
		return nil, err
	}
	if s.SetOp != nil {
		right, err := bindSelect(s.SetOp.Right, bind)
		if err != nil {
			return nil, err
		}
		out.SetOp = &SetOp{Kind: s.SetOp.Kind, All: s.SetOp.All, Right: right}
	}
	return &out, nil
}

func bindTableRef(ref TableRef, bind func(Expr) (Expr, error)) (TableRef, error) {
	switch r := ref.(type) {
	case *BaseTable:
		return r, nil
	case *Subquery:
		q, err := bindSelect(r.Query, bind)
		if err != nil {
			return nil, err
		}
		return &Subquery{Query: q, Alias: r.Alias}, nil
	case *Join:
		left, err := bindTableRef(r.Left, bind)
		if err != nil {
			return nil, err
		}
		right, err := bindTableRef(r.Right, bind)
		if err != nil {
			return nil, err
		}
		on, err := bind(r.On)
		if err != nil {
			return nil, err
		}
		return &Join{Type: r.Type, Left: left, Right: right, On: on}, nil
	}
	return ref, nil
}

// rewriteParams substitutes parameter nodes throughout an expression.
func rewriteParams(e Expr, repl func(*Param) Expr) Expr {
	switch n := e.(type) {
	case *Param:
		return repl(n)
	case *Literal, *ColumnRef:
		return e
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, L: rewriteParams(n.L, repl), R: rewriteParams(n.R, repl)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, E: rewriteParams(n.E, repl)}
	case *FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rewriteParams(a, repl)
		}
		return &FuncCall{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}
	case *CastExpr:
		return &CastExpr{E: rewriteParams(n.E, repl), To: n.To}
	case *IsNullExpr:
		return &IsNullExpr{E: rewriteParams(n.E, repl), Neg: n.Neg}
	case *BetweenExpr:
		return &BetweenExpr{E: rewriteParams(n.E, repl), Lo: rewriteParams(n.Lo, repl),
			Hi: rewriteParams(n.Hi, repl), Neg: n.Neg}
	case *InExpr:
		list := make([]Expr, len(n.List))
		for i, a := range n.List {
			list[i] = rewriteParams(a, repl)
		}
		return &InExpr{E: rewriteParams(n.E, repl), List: list, Neg: n.Neg}
	case *LikeExpr:
		return &LikeExpr{E: rewriteParams(n.E, repl), Pattern: rewriteParams(n.Pattern, repl), Neg: n.Neg}
	case *CaseExpr:
		whens := make([]CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = CaseWhen{Cond: rewriteParams(w.Cond, repl), Result: rewriteParams(w.Result, repl)}
		}
		var operand, els Expr
		if n.Operand != nil {
			operand = rewriteParams(n.Operand, repl)
		}
		if n.Else != nil {
			els = rewriteParams(n.Else, repl)
		}
		return &CaseExpr{Operand: operand, Whens: whens, Else: els}
	}
	return e
}
