package sql

import (
	"strings"
	"testing"

	"streamrel/internal/types"
)

func TestLexParams(t *testing.T) {
	toks, err := Tokenize(`$1 $23`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokParam || toks[0].Text != "1" {
		t.Fatalf("%+v", toks[0])
	}
	if toks[1].Kind != TokParam || toks[1].Text != "23" {
		t.Fatalf("%+v", toks[1])
	}
	if _, err := Tokenize(`$x`); err == nil {
		t.Fatal("bare $ should fail")
	}
}

func TestParseParams(t *testing.T) {
	e, err := ParseExpr(`a = $1 AND b BETWEEN $2 AND $3`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	WalkExprs(e, func(x Expr) bool {
		if _, ok := x.(*Param); ok {
			n++
		}
		return true
	})
	// WalkExprs doesn't visit Param specially; count via String instead.
	if !strings.Contains(e.String(), "$1") {
		t.Fatalf("params lost: %s", e.String())
	}
}

func TestBindParamsSelect(t *testing.T) {
	stmt, err := Parse(`SELECT a + $1 FROM t WHERE b = $2 GROUP BY a + $1 HAVING count(*) > $3 ORDER BY 1 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindParams(stmt, []types.Datum{
		types.NewInt(10), types.NewString("x"), types.NewInt(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := bound.(*Select)
	if sel.Items[0].Expr.String() != "(a + 10)" {
		t.Fatalf("items: %s", sel.Items[0].Expr.String())
	}
	if sel.Where.String() != "(b = 'x')" {
		t.Fatalf("where: %s", sel.Where.String())
	}
	if sel.Having.String() != "(count(*) > 2)" {
		t.Fatalf("having: %s", sel.Having.String())
	}
	// The original AST is untouched.
	if !strings.Contains(stmt.(*Select).Where.String(), "$2") {
		t.Fatal("BindParams mutated the original statement")
	}
}

func TestBindParamsSubqueryAndJoin(t *testing.T) {
	stmt, _ := Parse(`SELECT * FROM (SELECT a FROM t WHERE a > $1) s JOIN u ON s.a = u.a AND u.b = $2`)
	bound, err := BindParams(stmt, []types.Datum{types.NewInt(1), types.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(boundString(bound), "$") {
		t.Fatalf("unbound params remain: %s", boundString(bound))
	}
}

func boundString(stmt Statement) string {
	sel := stmt.(*Select)
	var parts []string
	for _, item := range sel.Items {
		if item.Expr != nil {
			parts = append(parts, item.Expr.String())
		}
	}
	var collect func(TableRef)
	collect = func(r TableRef) {
		switch n := r.(type) {
		case *Subquery:
			if n.Query.Where != nil {
				parts = append(parts, n.Query.Where.String())
			}
		case *Join:
			collect(n.Left)
			collect(n.Right)
			if n.On != nil {
				parts = append(parts, n.On.String())
			}
		}
	}
	for _, r := range sel.From {
		collect(r)
	}
	return strings.Join(parts, " ")
}

func TestBindParamsDML(t *testing.T) {
	stmt, _ := Parse(`INSERT INTO t VALUES ($1, $2)`)
	bound, err := BindParams(stmt, []types.Datum{types.NewInt(1), types.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	ins := bound.(*Insert)
	if ins.Rows[0][0].String() != "1" || ins.Rows[0][1].String() != "2" {
		t.Fatalf("%v", ins.Rows)
	}

	stmt, _ = Parse(`UPDATE t SET a = $1 WHERE b = $2`)
	bound, err = BindParams(stmt, []types.Datum{types.NewInt(1), types.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	up := bound.(*Update)
	if up.Set[0].Value.String() != "1" || up.Where.String() != "(b = 2)" {
		t.Fatalf("%+v", up)
	}

	stmt, _ = Parse(`DELETE FROM t WHERE a IN ($1, $2)`)
	if _, err := BindParams(stmt, []types.Datum{types.NewInt(1), types.NewInt(2)}); err != nil {
		t.Fatal(err)
	}

	stmt, _ = Parse(`INSERT INTO t SELECT a FROM u WHERE a = $1`)
	if _, err := BindParams(stmt, []types.Datum{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestBindParamsErrors(t *testing.T) {
	stmt, _ := Parse(`SELECT $2 FROM t`)
	if _, err := BindParams(stmt, []types.Datum{types.NewInt(1)}); err == nil {
		t.Fatal("out of range")
	}
	stmt, _ = Parse(`SELECT $1 FROM t`)
	if _, err := BindParams(stmt, []types.Datum{types.NewInt(1), types.NewInt(2)}); err == nil {
		t.Fatal("unused trailing arg")
	}
	stmt, _ = Parse(`CREATE TABLE t (a bigint)`)
	if _, err := BindParams(stmt, []types.Datum{types.NewInt(1)}); err == nil {
		t.Fatal("DDL with args")
	}
	// DDL with zero args passes through unchanged.
	if out, err := BindParams(stmt, nil); err != nil || out != stmt {
		t.Fatal("DDL without args should pass through")
	}
}

func TestBindParamsInCaseAndSetOps(t *testing.T) {
	stmt, _ := Parse(`SELECT CASE WHEN a > $1 THEN $2 ELSE $3 END FROM t
		UNION SELECT b FROM u WHERE b < $4`)
	bound, err := BindParams(stmt, []types.Datum{
		types.NewInt(1), types.NewString("hi"), types.NewString("lo"), types.NewInt(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := bound.(*Select)
	if strings.Contains(sel.Items[0].Expr.String(), "$") {
		t.Fatal("case params unbound")
	}
	if strings.Contains(sel.SetOp.Right.Where.String(), "$") {
		t.Fatal("set-op params unbound")
	}
}

func TestParseScriptTextSpans(t *testing.T) {
	parsed, err := ParseScript(`
		CREATE TABLE a (x bigint);  -- comment
		INSERT INTO a VALUES (1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("%d statements", len(parsed))
	}
	if parsed[0].Text != "CREATE TABLE a (x bigint)" {
		t.Fatalf("text 0: %q", parsed[0].Text)
	}
	if parsed[1].Text != "INSERT INTO a VALUES (1)" {
		t.Fatalf("text 1: %q", parsed[1].Text)
	}
}
