// Package repl implements log-shipping replication for streamrel.
//
// The primary assigns a monotonic log sequence number (LSN) to every
// committed WAL batch and every stream ingest/advance event, keeps the
// most recent events in a bounded in-memory ring, and streams them to
// replicas as length-prefixed CRC-guarded binary frames over a connection
// hijacked from the JSON wire protocol (the "replicate" op). A replica
// that is too far behind the ring receives a logical snapshot of the
// primary's durable state first (DDL + table rows with explicit RowIDs),
// then the live tail. Replication epochs are identified by a random run
// ID: a replica presenting an LSN from a different run is resynced from a
// fresh snapshot.
//
// Event ordering is the primary's commit order: stream events are
// published under each source's delivery lock, and WAL events are
// published while the transaction commits, so a replica applying events
// in frame order reconstructs an exact prefix of the primary's history.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"streamrel/internal/types"
	"streamrel/internal/wal"
)

// Kind tags one replication event.
type Kind uint8

// Event kinds.
const (
	// KindWAL carries one committed WAL batch (DDL, inserts, deletes).
	// During a snapshot the LSN is 0 (state, not history).
	KindWAL Kind = iota + 1
	// KindAppend carries rows accepted into a base stream.
	KindAppend
	// KindAdvance carries an effective heartbeat on a base stream.
	KindAdvance
	// KindCheckpoint tells the replica the primary compacted its heaps;
	// the replica runs the same deterministic compaction so RowID
	// numbering stays aligned.
	KindCheckpoint
	// KindSnapBegin opens a logical snapshot; Run is the primary's run ID.
	// The replica discards local state when it had any.
	KindSnapBegin
	// KindSnapEnd closes a snapshot; LSN is the boundary — live events
	// follow from LSN+1.
	KindSnapEnd
	// KindResume confirms an incremental catch-up from the replica's LSN;
	// Run is the primary's run ID.
	KindResume
	// KindPing is a keepalive carrying the primary's current LSN and wall
	// clock, letting an idle replica compute lag.
	KindPing
	// KindTableNext, inside a snapshot, sets a table's next RowID so the
	// replica reproduces trailing gaps left by aborted transactions.
	KindTableNext
)

// Event is one replication frame's logical content.
type Event struct {
	Kind Kind
	// LSN is the event's sequence number (0 for snapshot state frames).
	LSN uint64
	// Wall is the primary's clock at publish time, unix microseconds;
	// replicas subtract it from their clock for the seconds-lag gauge.
	Wall int64
	// Trace carries the trace ID of the batch (or transaction) this event
	// originated from, 0 when untraced; replicas record a replica-apply
	// span under it so the primary's span chain closes remotely.
	Trace uint64

	Recs   []wal.Record // KindWAL
	Stream string       // KindAppend, KindAdvance
	Rows   []types.Row  // KindAppend
	TS     int64        // KindAdvance
	Run    string       // KindSnapBegin, KindResume
	Table  string       // KindTableNext
	Next   uint64       // KindTableNext
}

// maxFramePayload bounds a frame payload so a corrupt length prefix
// cannot provoke a huge allocation on either end.
const maxFramePayload = 256 << 20

// AppendFrame appends the wire encoding of ev to dst:
// [len u32][crc32 u32][payload], payload = [kind u8][lsn uvarint]
// [wall varint][trace uvarint][kind-specific body].
func AppendFrame(dst []byte, ev *Event) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholders
	dst = append(dst, byte(ev.Kind))
	dst = binary.AppendUvarint(dst, ev.LSN)
	dst = binary.AppendVarint(dst, ev.Wall)
	dst = binary.AppendUvarint(dst, ev.Trace)
	switch ev.Kind {
	case KindWAL:
		dst = append(dst, wal.EncodeRecords(ev.Recs)...)
	case KindAppend:
		dst = appendString(dst, ev.Stream)
		dst = binary.AppendUvarint(dst, uint64(len(ev.Rows)))
		for _, r := range ev.Rows {
			dst = types.EncodeRow(dst, r)
		}
	case KindAdvance:
		dst = appendString(dst, ev.Stream)
		dst = binary.AppendVarint(dst, ev.TS)
	case KindSnapBegin, KindResume:
		dst = appendString(dst, ev.Run)
	case KindTableNext:
		dst = appendString(dst, ev.Table)
		dst = binary.AppendUvarint(dst, ev.Next)
	case KindCheckpoint, KindSnapEnd, KindPing:
		// header only
	}
	payload := dst[start+8:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// ReadEvent reads one frame from r, verifying length and CRC. It returns
// io.EOF (or io.ErrUnexpectedEOF) when the stream ends; any malformed
// frame is an error, never a panic.
func ReadEvent(r *bufio.Reader) (*Event, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFramePayload {
		return nil, fmt.Errorf("repl: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, errors.New("repl: frame CRC mismatch")
	}
	return DecodeEvent(payload)
}

// DecodeEvent parses a frame payload (the bytes covered by the CRC).
// Arbitrary input yields an error, never a panic or unbounded allocation.
func DecodeEvent(payload []byte) (*Event, error) {
	if len(payload) == 0 {
		return nil, errors.New("repl: empty frame")
	}
	ev := &Event{Kind: Kind(payload[0])}
	buf := payload[1:]
	var err error
	if ev.LSN, buf, err = readUvarint(buf); err != nil {
		return nil, err
	}
	if ev.Wall, buf, err = readVarint(buf); err != nil {
		return nil, err
	}
	if ev.Trace, buf, err = readUvarint(buf); err != nil {
		return nil, err
	}
	switch ev.Kind {
	case KindWAL:
		if ev.Recs, err = wal.DecodeRecords(buf); err != nil {
			return nil, err
		}
	case KindAppend:
		if ev.Stream, buf, err = readString(buf); err != nil {
			return nil, err
		}
		var n uint64
		if n, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if n > uint64(len(buf)) {
			return nil, errors.New("repl: row count exceeds payload")
		}
		ev.Rows = make([]types.Row, 0, n)
		for i := uint64(0); i < n; i++ {
			var row types.Row
			if row, buf, err = types.DecodeRow(buf); err != nil {
				return nil, err
			}
			ev.Rows = append(ev.Rows, row)
		}
		if len(buf) != 0 {
			return nil, errors.New("repl: trailing bytes in append frame")
		}
	case KindAdvance:
		if ev.Stream, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if ev.TS, _, err = readVarint(buf); err != nil {
			return nil, err
		}
	case KindSnapBegin, KindResume:
		if ev.Run, _, err = readString(buf); err != nil {
			return nil, err
		}
	case KindTableNext:
		if ev.Table, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if ev.Next, _, err = readUvarint(buf); err != nil {
			return nil, err
		}
	case KindCheckpoint, KindSnapEnd, KindPing:
		// header only
	default:
		return nil, fmt.Errorf("repl: unknown frame kind %d", ev.Kind)
	}
	return ev, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf[k:])) < n {
		return "", nil, errors.New("repl: bad string")
	}
	return string(buf[k : k+int(n)]), buf[k+int(n):], nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, nil, errors.New("repl: bad uvarint")
	}
	return v, buf[k:], nil
}

func readVarint(buf []byte) (int64, []byte, error) {
	v, k := binary.Varint(buf)
	if k <= 0 {
		return 0, nil, errors.New("repl: bad varint")
	}
	return v, buf[k:], nil
}
