package repl

import (
	"bufio"
	"net"
	"testing"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/types"
	"streamrel/internal/wal"
)

func testPrimary(t *testing.T, cfg Config) *Primary {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.PingEvery == 0 {
		cfg.PingEvery = time.Hour // keep pings out of deterministic reads
	}
	return NewPrimary(cfg)
}

// serve runs ServeConn in the background and returns the replica-side
// frame reader plus a cleanup joining the goroutine.
func serve(t *testing.T, p *Primary, fromLSN uint64, runID string) (*bufio.Reader, func()) {
	t.Helper()
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.ServeConn(server, fromLSN, runID)
		server.Close()
	}()
	return bufio.NewReader(client), func() {
		client.Close()
		// Wake the tail loop (pings are off in tests) so the failed write
		// ends ServeConn.
		p.PublishAdvance("_wake", 0)
		<-done
	}
}

func mustRead(t *testing.T, r *bufio.Reader) *Event {
	t.Helper()
	ev, err := ReadEvent(r)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestPrimaryIncrementalCatchup publishes events before a replica
// connects with a matching run ID; the replica must get a Resume frame,
// the ring backlog in order, then live events — with monotonic LSNs.
func TestPrimaryIncrementalCatchup(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 16})
	p.PublishAppend("s", []types.Row{{types.NewInt(1)}}, 0)
	p.PublishAdvance("s", 60)
	p.PublishWAL([]wal.Record{{Kind: wal.RecDDL, SQL: "CREATE TABLE t (a bigint)"}})

	r, cleanup := serve(t, p, 0, p.RunID())
	defer cleanup()

	if ev := mustRead(t, r); ev.Kind != KindResume || ev.Run != p.RunID() {
		t.Fatalf("want resume, got %+v", ev)
	}
	wantKinds := []Kind{KindAppend, KindAdvance, KindWAL}
	for i, k := range wantKinds {
		ev := mustRead(t, r)
		if ev.Kind != k || ev.LSN != uint64(i+1) {
			t.Fatalf("backlog %d: got kind %d lsn %d, want kind %d lsn %d", i, ev.Kind, ev.LSN, k, i+1)
		}
	}
	// Live tail.
	p.PublishAppend("s", []types.Row{{types.NewInt(2)}}, 0)
	if ev := mustRead(t, r); ev.Kind != KindAppend || ev.LSN != 4 {
		t.Fatalf("live event: %+v", ev)
	}
}

// TestPrimarySnapshotWhenStale connects a replica whose resume point the
// ring no longer covers; the primary must serve a full snapshot bounded
// by SnapBegin/SnapEnd, then live events from the boundary.
func TestPrimarySnapshotWhenStale(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 2})
	p.Snapshot = func(emit func(Event) error) error {
		if err := emit(Event{Kind: KindWAL, Recs: []wal.Record{{Kind: wal.RecDDL, SQL: "CREATE TABLE t (a bigint)"}}}); err != nil {
			return err
		}
		return emit(Event{Kind: KindTableNext, Table: "t", Next: 3})
	}
	for i := 0; i < 5; i++ {
		p.PublishAppend("s", []types.Row{{types.NewInt(int64(i))}}, 0)
	}

	// Fresh replica (no run ID): snapshot path.
	r, cleanup := serve(t, p, 0, "")
	defer cleanup()
	if ev := mustRead(t, r); ev.Kind != KindSnapBegin || ev.Run != p.RunID() {
		t.Fatalf("want snapbegin, got %+v", ev)
	}
	if ev := mustRead(t, r); ev.Kind != KindWAL || ev.LSN != 0 {
		t.Fatalf("want snapshot WAL state frame, got %+v", ev)
	}
	if ev := mustRead(t, r); ev.Kind != KindTableNext || ev.Table != "t" || ev.Next != 3 {
		t.Fatalf("want tablenext, got %+v", ev)
	}
	if ev := mustRead(t, r); ev.Kind != KindSnapEnd || ev.LSN != 5 {
		t.Fatalf("want snapend at boundary 5, got %+v", ev)
	}
	p.PublishAdvance("s", 99)
	if ev := mustRead(t, r); ev.Kind != KindAdvance || ev.LSN != 6 {
		t.Fatalf("live event after snapshot: %+v", ev)
	}
}

// TestPrimaryRunMismatchForcesSnapshot: a matching LSN under a stale run
// ID must not resume incrementally.
func TestPrimaryRunMismatchForcesSnapshot(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 16})
	p.Snapshot = func(emit func(Event) error) error { return nil }
	p.PublishAdvance("s", 1)

	r, cleanup := serve(t, p, 1, "someotherrun0000")
	defer cleanup()
	if ev := mustRead(t, r); ev.Kind != KindSnapBegin {
		t.Fatalf("want snapshot on run mismatch, got %+v", ev)
	}
}

// TestChunkEnd covers the greedy event splitter: budget respected, at
// least one item per event, oversized singletons travel alone.
func TestChunkEnd(t *testing.T) {
	sizes := []int{4, 4, 4, 20, 1, 1}
	size := func(i int) int { return sizes[i] }
	var ends []int
	for start := 0; start < len(sizes); {
		end := chunkEnd(start, len(sizes), 10, size)
		ends = append(ends, end)
		start = end
	}
	// [4 4] [4] [20] [1 1]: 4+4=8 fits, +4 would be 12; 20 alone; 1+1 fits.
	want := []int{2, 3, 4, 6}
	if len(ends) != len(want) {
		t.Fatalf("chunks %v, want %v", ends, want)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("chunks %v, want %v", ends, want)
		}
	}
}

// TestOversizedBatchSplitsAcrossEvents publishes one append batch and one
// WAL batch whose encodings exceed MaxEventBytes; each must arrive as
// several consecutive events that concatenate back to the original, so no
// frame can ever exceed the replica's frame-size limit (which would wedge
// replication in a permanent reconnect loop).
func TestOversizedBatchSplitsAcrossEvents(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 16})
	r, cleanup := serve(t, p, 0, p.RunID())
	defer cleanup()
	if ev := mustRead(t, r); ev.Kind != KindResume {
		t.Fatalf("want resume, got %+v", ev)
	}

	big := string(make([]byte, 13<<20)) // 3 rows à ~13MB: 2+1 per 32MB budget
	rows := []types.Row{
		{types.NewInt(1), types.NewString(big)},
		{types.NewInt(2), types.NewString(big)},
		{types.NewInt(3), types.NewString(big)},
	}
	p.PublishAppend("s", rows, 0)
	var gotRows int
	for lsn := uint64(1); lsn <= 2; lsn++ {
		ev := mustRead(t, r)
		if ev.Kind != KindAppend || ev.LSN != lsn || ev.Stream != "s" {
			t.Fatalf("append chunk: kind %d lsn %d", ev.Kind, ev.LSN)
		}
		for _, row := range ev.Rows {
			gotRows++
			if row[0].Int() != int64(gotRows) {
				t.Fatalf("row %d out of order", gotRows)
			}
		}
	}
	if gotRows != 3 {
		t.Fatalf("append rows after split: %d, want 3", gotRows)
	}

	recs := []wal.Record{
		{Kind: wal.RecInsert, Table: "t", RowID: 1, Row: rows[0]},
		{Kind: wal.RecInsert, Table: "t", RowID: 2, Row: rows[1]},
		{Kind: wal.RecInsert, Table: "t", RowID: 3, Row: rows[2]},
	}
	if err := p.PublishTxn(recs, nil, 0); err != nil {
		t.Fatal(err)
	}
	var gotRecs int
	for lsn := uint64(3); lsn <= 4; lsn++ {
		ev := mustRead(t, r)
		if ev.Kind != KindWAL || ev.LSN != lsn {
			t.Fatalf("wal chunk: kind %d lsn %d", ev.Kind, ev.LSN)
		}
		for _, rec := range ev.Recs {
			gotRecs++
			if rec.RowID != uint64(gotRecs) {
				t.Fatalf("record %d out of order", gotRecs)
			}
		}
	}
	if gotRecs != 3 {
		t.Fatalf("wal records after split: %d, want 3", gotRecs)
	}
	if lsn := p.LSN(); lsn != 4 {
		t.Fatalf("lsn after splits: %d, want 4", lsn)
	}

	// Empty appends publish nothing (a zero-row event would be a no-op on
	// the replica anyway).
	p.PublishAppend("s", nil, 0)
	if lsn := p.LSN(); lsn != 4 {
		t.Fatalf("lsn after empty append: %d, want 4", lsn)
	}
}

// TestSnapshotSpooledBeforeNetworkWrites pins the locking contract of the
// snapshot path: the producer (which runs under the engine's exclusive
// lock) must return before any network write, so a replica that requests
// a snapshot and then stops reading can never freeze the engine. The
// producer emits more than the 64KB writer buffer into a pipe nobody
// reads — streaming inside the producer would block it forever.
func TestSnapshotSpooledBeforeNetworkWrites(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 2})
	released := make(chan struct{})
	p.Snapshot = func(emit func(Event) error) error {
		defer close(released)
		row := types.Row{types.NewString(string(make([]byte, 32<<10)))}
		for i := 0; i < 8; i++ {
			if err := emit(Event{Kind: KindWAL, Recs: []wal.Record{
				{Kind: wal.RecInsert, Table: "t", RowID: uint64(i), Row: row},
			}}); err != nil {
				return err
			}
		}
		return nil
	}
	server, client := net.Pipe() // client side never reads
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.ServeConn(server, 0, "")
		server.Close()
	}()
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot producer still blocked: network transfer ran inside it")
	}
	client.Close() // sever the stuck transfer; ServeConn must return
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ServeConn did not return after the replica connection closed")
	}
}
