package repl

import (
	"bufio"
	"net"
	"testing"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/types"
	"streamrel/internal/wal"
)

func testPrimary(t *testing.T, cfg Config) *Primary {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.PingEvery == 0 {
		cfg.PingEvery = time.Hour // keep pings out of deterministic reads
	}
	return NewPrimary(cfg)
}

// serve runs ServeConn in the background and returns the replica-side
// frame reader plus a cleanup joining the goroutine.
func serve(t *testing.T, p *Primary, fromLSN uint64, runID string) (*bufio.Reader, func()) {
	t.Helper()
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.ServeConn(server, fromLSN, runID)
		server.Close()
	}()
	return bufio.NewReader(client), func() {
		client.Close()
		// Wake the tail loop (pings are off in tests) so the failed write
		// ends ServeConn.
		p.PublishAdvance("_wake", 0)
		<-done
	}
}

func mustRead(t *testing.T, r *bufio.Reader) *Event {
	t.Helper()
	ev, err := ReadEvent(r)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestPrimaryIncrementalCatchup publishes events before a replica
// connects with a matching run ID; the replica must get a Resume frame,
// the ring backlog in order, then live events — with monotonic LSNs.
func TestPrimaryIncrementalCatchup(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 16})
	p.PublishAppend("s", []types.Row{{types.NewInt(1)}})
	p.PublishAdvance("s", 60)
	p.PublishWAL([]wal.Record{{Kind: wal.RecDDL, SQL: "CREATE TABLE t (a bigint)"}})

	r, cleanup := serve(t, p, 0, p.RunID())
	defer cleanup()

	if ev := mustRead(t, r); ev.Kind != KindResume || ev.Run != p.RunID() {
		t.Fatalf("want resume, got %+v", ev)
	}
	wantKinds := []Kind{KindAppend, KindAdvance, KindWAL}
	for i, k := range wantKinds {
		ev := mustRead(t, r)
		if ev.Kind != k || ev.LSN != uint64(i+1) {
			t.Fatalf("backlog %d: got kind %d lsn %d, want kind %d lsn %d", i, ev.Kind, ev.LSN, k, i+1)
		}
	}
	// Live tail.
	p.PublishAppend("s", []types.Row{{types.NewInt(2)}})
	if ev := mustRead(t, r); ev.Kind != KindAppend || ev.LSN != 4 {
		t.Fatalf("live event: %+v", ev)
	}
}

// TestPrimarySnapshotWhenStale connects a replica whose resume point the
// ring no longer covers; the primary must serve a full snapshot bounded
// by SnapBegin/SnapEnd, then live events from the boundary.
func TestPrimarySnapshotWhenStale(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 2})
	p.Snapshot = func(emit func(Event) error) error {
		if err := emit(Event{Kind: KindWAL, Recs: []wal.Record{{Kind: wal.RecDDL, SQL: "CREATE TABLE t (a bigint)"}}}); err != nil {
			return err
		}
		return emit(Event{Kind: KindTableNext, Table: "t", Next: 3})
	}
	for i := 0; i < 5; i++ {
		p.PublishAppend("s", []types.Row{{types.NewInt(int64(i))}})
	}

	// Fresh replica (no run ID): snapshot path.
	r, cleanup := serve(t, p, 0, "")
	defer cleanup()
	if ev := mustRead(t, r); ev.Kind != KindSnapBegin || ev.Run != p.RunID() {
		t.Fatalf("want snapbegin, got %+v", ev)
	}
	if ev := mustRead(t, r); ev.Kind != KindWAL || ev.LSN != 0 {
		t.Fatalf("want snapshot WAL state frame, got %+v", ev)
	}
	if ev := mustRead(t, r); ev.Kind != KindTableNext || ev.Table != "t" || ev.Next != 3 {
		t.Fatalf("want tablenext, got %+v", ev)
	}
	if ev := mustRead(t, r); ev.Kind != KindSnapEnd || ev.LSN != 5 {
		t.Fatalf("want snapend at boundary 5, got %+v", ev)
	}
	p.PublishAdvance("s", 99)
	if ev := mustRead(t, r); ev.Kind != KindAdvance || ev.LSN != 6 {
		t.Fatalf("live event after snapshot: %+v", ev)
	}
}

// TestPrimaryRunMismatchForcesSnapshot: a matching LSN under a stale run
// ID must not resume incrementally.
func TestPrimaryRunMismatchForcesSnapshot(t *testing.T) {
	p := testPrimary(t, Config{RingSize: 16})
	p.Snapshot = func(emit func(Event) error) error { return nil }
	p.PublishAdvance("s", 1)

	r, cleanup := serve(t, p, 1, "someotherrun0000")
	defer cleanup()
	if ev := mustRead(t, r); ev.Kind != KindSnapBegin {
		t.Fatalf("want snapshot on run mismatch, got %+v", ev)
	}
}
