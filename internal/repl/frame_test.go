package repl

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"streamrel/internal/types"
	"streamrel/internal/wal"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindWAL, LSN: 1, Wall: 1111, Recs: []wal.Record{
			{Kind: wal.RecDDL, SQL: "CREATE TABLE t (a bigint)"},
			{Kind: wal.RecInsert, Table: "t", RowID: 4, Row: types.Row{types.NewInt(7), types.NewString("x")}},
			{Kind: wal.RecDelete, Table: "t", RowID: 2},
		}},
		{Kind: KindAppend, LSN: 2, Wall: 2222, Stream: "s", Rows: []types.Row{
			{types.NewInt(1), types.NewTimestampMicros(60_000_000)},
			{types.Null, types.NewFloat(1.5)},
		}},
		{Kind: KindAdvance, LSN: 3, Wall: 3333, Stream: "s", TS: 120_000_000},
		{Kind: KindCheckpoint, LSN: 4, Wall: 4444},
		{Kind: KindSnapBegin, Wall: 1, Run: "cafebabe01020304"},
		{Kind: KindSnapEnd, LSN: 9, Wall: 2},
		{Kind: KindResume, LSN: 5, Wall: 3, Run: "cafebabe01020304"},
		{Kind: KindPing, LSN: 10, Wall: 99},
		{Kind: KindTableNext, Table: "t", Next: 17},
	}
}

// TestFrameRoundTrip encodes every event kind into one byte stream and
// reads it back, field for field.
func TestFrameRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf []byte
	for i := range events {
		buf = AppendFrame(buf, &events[i])
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i := range events {
		got, err := ReadEvent(r)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(*got, events[i]) {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, *got, events[i])
		}
	}
	if _, err := ReadEvent(r); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

// TestReadEventCorruptCRC flips a payload byte and expects a CRC error.
func TestReadEventCorruptCRC(t *testing.T) {
	ev := Event{Kind: KindAdvance, LSN: 1, Wall: 5, Stream: "s", TS: 42}
	buf := AppendFrame(nil, &ev)
	buf[len(buf)-1] ^= 0x01
	if _, err := ReadEvent(bufio.NewReader(bytes.NewReader(buf))); err == nil {
		t.Fatal("corrupt frame decoded without error")
	}
}

// TestReadEventTruncated cuts a frame short at every byte boundary; each
// prefix must error, never hang or panic.
func TestReadEventTruncated(t *testing.T) {
	ev := Event{Kind: KindAppend, LSN: 2, Wall: 7, Stream: "s",
		Rows: []types.Row{{types.NewInt(9)}}}
	buf := AppendFrame(nil, &ev)
	for n := 0; n < len(buf); n++ {
		if _, err := ReadEvent(bufio.NewReader(bytes.NewReader(buf[:n]))); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
}

// FuzzDecodeEvent checks the payload decoder never panics on arbitrary
// bytes and that valid payloads round-trip through AppendFrame.
func FuzzDecodeEvent(f *testing.F) {
	for _, ev := range sampleEvents() {
		frame := AppendFrame(nil, &ev)
		f.Add(frame[8:]) // payload without the length/crc header
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		ev, err := DecodeEvent(payload)
		if err != nil {
			return
		}
		frame := AppendFrame(nil, ev)
		again, err := ReadEvent(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != ev.Kind || again.LSN != ev.LSN {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, ev)
		}
	})
}
