package repl

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/types"
	"streamrel/internal/wal"
)

// SnapshotFunc produces a logical snapshot of the engine's durable state
// by emitting events (KindWAL with LSN 0, KindTableNext). The engine sets
// it on the Primary at startup; it runs with the engine's exclusive lock
// held so the snapshot is a consistent cut. ServeConn spools the emitted
// events and performs all network writes after it returns, so the lock is
// held only for the in-memory scan — never for a network transfer.
type SnapshotFunc func(emit func(Event) error) error

// Config configures a Primary.
type Config struct {
	// Metrics registers replication series; nil disables them.
	Metrics *metrics.Registry
	// RingSize is how many recent events the replication ring retains for
	// incremental catch-up; 0 means DefaultRingSize.
	RingSize int
	// SubBuffer is each subscriber's channel depth; 0 means
	// DefaultSubBuffer. A subscriber that falls this far behind is
	// dropped back to ring catch-up (and to a disconnect if the ring has
	// moved on), so a slow replica never stalls ingest.
	SubBuffer int
	// PingEvery is the live-tail keepalive interval; 0 means one second.
	PingEvery time.Duration
}

// Default sizing for the replication ring and subscriber queues.
const (
	DefaultRingSize  = 8192
	DefaultSubBuffer = 1024
)

type subscriber struct {
	ch chan Event
}

// Primary assigns LSNs, retains the event ring, and fans events out to
// connected replicas. Publish methods block only on the (short) critical
// section; subscriber channels are never sent to while full — an
// overflowing subscriber is dropped instead, which is the backpressure
// contract that keeps ingest independent of replica speed.
type Primary struct {
	// Snapshot is the engine's snapshot producer; set once at startup
	// before the server accepts replicate requests.
	Snapshot SnapshotFunc

	// commitMu serializes transaction commit+publish pairs so a
	// transaction that depends on another's writes always receives a
	// later LSN — without making stream ingest (PublishAppend and
	// PublishAdvance, which take only mu) wait behind commit work such as
	// MVCC visibility publication. mu itself is only ever held for the
	// short ring-append critical section.
	commitMu sync.Mutex

	mu   sync.Mutex
	lsn  uint64
	run  string
	ring []Event // circular buffer, capacity ringSize
	head int     // index of the oldest retained event
	subs map[*subscriber]struct{}

	subBuf    int
	pingEvery time.Duration

	connected *metrics.Gauge
	frames    *metrics.Counter
	events    *metrics.Counter
	snaps     *metrics.Counter
	overflows *metrics.Counter
}

// NewPrimary creates a replication hub with a fresh random run ID.
func NewPrimary(cfg Config) *Primary {
	ringSize := cfg.RingSize
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	subBuf := cfg.SubBuffer
	if subBuf <= 0 {
		subBuf = DefaultSubBuffer
	}
	pingEvery := cfg.PingEvery
	if pingEvery <= 0 {
		pingEvery = time.Second
	}
	p := &Primary{
		run:       newRunID(),
		ring:      make([]Event, 0, ringSize),
		subs:      make(map[*subscriber]struct{}),
		subBuf:    subBuf,
		pingEvery: pingEvery,
		connected: cfg.Metrics.Gauge("streamrel_repl_connected_replicas",
			"replicas currently streaming from this primary"),
		frames: cfg.Metrics.Counter("streamrel_repl_frames_sent_total",
			"replication frames written to replicas"),
		events: cfg.Metrics.Counter("streamrel_repl_events_total",
			"replication events published (committed batches + stream events)"),
		snaps: cfg.Metrics.Counter("streamrel_repl_snapshots_served_total",
			"full logical snapshots streamed to replicas"),
		overflows: cfg.Metrics.Counter("streamrel_repl_subscriber_overflows_total",
			"replicas dropped back to catch-up because their queue overflowed"),
	}
	cfg.Metrics.GaugeFunc("streamrel_repl_lsn",
		"latest log sequence number assigned by this primary",
		func() float64 { return float64(p.LSN()) })
	return p
}

func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for uniqueness; fall back
		// to a constant that still forces resync against other runs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// RunID returns this primary's replication epoch identifier.
func (p *Primary) RunID() string { return p.run }

// LSN returns the most recently assigned sequence number.
func (p *Primary) LSN() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lsn
}

// MaxEventBytes caps the approximate payload size of one published event.
// Oversized WAL batches and stream appends are split across several
// events at publish time, so no frame can approach maxFramePayload (which
// a replica would reject, wedging replication in a reconnect loop —
// wal.Replay's batch bound is larger than the frame bound). Snapshot
// producers apply the same budget to the batches they emit.
const MaxEventBytes = 32 << 20

// RecordSize estimates a WAL record's encoded size; it over-counts
// varints slightly, which only makes splits more conservative.
func RecordSize(r wal.Record) int {
	n := 16 + len(r.Table) + len(r.SQL)
	for _, d := range r.Row {
		n += 11
		if d.Type() == types.TypeString {
			n += len(d.Str())
		}
	}
	return n
}

func rowSize(row types.Row) int {
	n := 10
	for _, d := range row {
		n += 11
		if d.Type() == types.TypeString {
			n += len(d.Str())
		}
	}
	return n
}

// PublishTxn commits a transaction and publishes its WAL batch, atomic
// with respect to LSN order: commitMu is held across commit and
// publication, so a transaction that saw this one's writes commits — and
// sequences — strictly after it. A batch larger than MaxEventBytes is
// split across consecutive LSNs; a replica applies each chunk as its own
// local transaction, which is safe because apply is idempotent and the
// resume point advances per event. traceID (0 = untraced) rides the
// published events so replicas close the batch's span chain.
func (p *Primary) PublishTxn(recs []wal.Record, commit func() error, traceID uint64) error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	if commit != nil {
		if err := commit(); err != nil {
			return err
		}
	}
	p.publishWAL(recs, traceID)
	return nil
}

// PublishWAL publishes an already-committed WAL batch (DDL).
func (p *Primary) PublishWAL(recs []wal.Record) {
	p.commitMu.Lock()
	p.publishWAL(recs, 0)
	p.commitMu.Unlock()
}

// chunkEnd returns the end index of the event starting at start: items
// are taken greedily while the byte budget holds, and every event carries
// at least one item (a single item beyond the budget travels alone).
func chunkEnd(start, n, budget int, size func(int) int) int {
	end, total := start, 0
	for end < n && (end == start || total+size(end) <= budget) {
		total += size(end)
		end++
	}
	return end
}

func (p *Primary) publishWAL(recs []wal.Record, traceID uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for start := 0; start < len(recs); {
		end := chunkEnd(start, len(recs), MaxEventBytes, func(i int) int { return RecordSize(recs[i]) })
		p.publishLocked(Event{Kind: KindWAL, Recs: recs[start:end], Trace: traceID})
		start = end
	}
}

// PublishAppend publishes rows accepted into a base stream. Called under
// the source's delivery lock, which fixes the per-stream event order.
// Oversized appends split like WAL batches do. traceID (0 = untraced)
// carries the batch's trace context to replicas.
func (p *Primary) PublishAppend(stream string, rows []types.Row, traceID uint64) {
	if len(rows) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for start := 0; start < len(rows); {
		end := chunkEnd(start, len(rows), MaxEventBytes, func(i int) int { return rowSize(rows[i]) })
		p.publishLocked(Event{Kind: KindAppend, Stream: stream, Rows: rows[start:end], Trace: traceID})
		start = end
	}
}

// PublishAdvance publishes an effective heartbeat.
func (p *Primary) PublishAdvance(stream string, ts int64) {
	p.mu.Lock()
	p.publishLocked(Event{Kind: KindAdvance, Stream: stream, TS: ts})
	p.mu.Unlock()
}

// PublishCheckpoint publishes a checkpoint marker; replicas compact their
// heaps at the same point in the event order so RowIDs stay aligned.
func (p *Primary) PublishCheckpoint() {
	p.mu.Lock()
	p.publishLocked(Event{Kind: KindCheckpoint})
	p.mu.Unlock()
}

func (p *Primary) publishLocked(ev Event) {
	p.lsn++
	ev.LSN = p.lsn
	ev.Wall = time.Now().UnixMicro()
	// Ring append (circular).
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, ev)
	} else {
		p.ring[p.head] = ev
		p.head = (p.head + 1) % len(p.ring)
	}
	p.events.Inc()
	for sub := range p.subs {
		select {
		case sub.ch <- ev:
		default:
			// Slow replica: cut it loose rather than block ingest. Its
			// serving goroutine sees the closed channel and retries from
			// the ring (or disconnects, forcing a reconnect + resync).
			delete(p.subs, sub)
			close(sub.ch)
			p.overflows.Inc()
		}
	}
}

// oldestLocked returns the LSN of the oldest ring event, or lsn+1 when
// the ring is empty (every "future" LSN is trivially covered).
func (p *Primary) oldestLocked() uint64 {
	if len(p.ring) == 0 {
		return p.lsn + 1
	}
	return p.lsn - uint64(len(p.ring)) + 1
}

// attach registers a new subscriber and decides how it catches up: an
// incremental backlog copied from the ring when the replica's run ID
// matches and the ring still covers fromLSN+1, otherwise a full snapshot.
// Registration and the decision share one critical section, so the
// backlog plus the subscription covers every event with no gap.
func (p *Primary) attach(fromLSN uint64, runID string) (sub *subscriber, backlog []Event, boundary uint64, needSnap bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sub = &subscriber{ch: make(chan Event, p.subBuf)}
	if runID == p.run && fromLSN <= p.lsn && fromLSN+1 >= p.oldestLocked() {
		for i := 0; i < len(p.ring); i++ {
			ev := p.ring[(p.head+i)%len(p.ring)]
			if ev.LSN > fromLSN {
				backlog = append(backlog, ev)
			}
		}
	} else {
		needSnap = true
	}
	boundary = p.lsn
	p.subs[sub] = struct{}{}
	return sub, backlog, boundary, needSnap
}

func (p *Primary) detach(sub *subscriber) {
	p.mu.Lock()
	if _, ok := p.subs[sub]; ok {
		delete(p.subs, sub)
		close(sub.ch)
	}
	p.mu.Unlock()
}

// writeDeadline bounds each flush to a replica so a hung connection
// cannot pin its serving goroutine.
const writeDeadline = 30 * time.Second

// ServeConn streams replication frames to one replica until the
// connection fails or the replica falls irrecoverably behind. fromLSN is
// the last LSN the replica has applied under runID ("", 0 for a fresh
// replica). The caller owns conn and closes it afterwards; ServeConn
// blocks for the lifetime of the stream.
func (p *Primary) ServeConn(conn net.Conn, fromLSN uint64, runID string) error {
	if p == nil {
		return fmt.Errorf("repl: replication is not enabled on this server")
	}
	p.connected.Add(1)
	defer p.connected.Add(-1)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var buf []byte
	send := func(ev *Event) error {
		buf = AppendFrame(buf[:0], ev)
		// A deadline on every write, not just on flush: bufio flushes to
		// conn implicitly whenever its buffer fills, so a replica that
		// stops reading must never pin this goroutine indefinitely.
		conn.SetWriteDeadline(time.Now().Add(writeDeadline))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		p.frames.Inc()
		return nil
	}
	flush := func() error {
		conn.SetWriteDeadline(time.Now().Add(writeDeadline))
		return bw.Flush()
	}

	for attempt := 0; ; attempt++ {
		sub, backlog, boundary, needSnap := p.attach(fromLSN, runID)
		lastSent := fromLSN
		if needSnap {
			if attempt > 0 {
				// The replica overflowed its queue and the ring has already
				// moved past what it saw: a second snapshot would likely
				// just overflow again. Disconnect; the replica reconnects
				// and resyncs at its own pace.
				p.detach(sub)
				return fmt.Errorf("repl: replica too slow for ring of %d events", cap(p.ring))
			}
			if p.Snapshot == nil {
				p.detach(sub)
				return fmt.Errorf("repl: no snapshot producer configured")
			}
			// Spool the snapshot first: the producer runs under the
			// engine's exclusive lock, and streaming to the network from
			// inside it would let one wedged or slow replica freeze every
			// read and write on the primary for the whole transfer. The
			// spool shares the heap's immutable row slices, so it costs
			// O(rows) pointers, not a data copy. Events published while the
			// transfer runs queue in sub.ch and replay after SnapEnd; apply
			// is idempotent, so the overlap is harmless.
			var spool []Event
			if err := p.Snapshot(func(ev Event) error { spool = append(spool, ev); return nil }); err != nil {
				p.detach(sub)
				return err
			}
			if err := send(&Event{Kind: KindSnapBegin, Run: p.run}); err != nil {
				p.detach(sub)
				return err
			}
			for i := range spool {
				if err := send(&spool[i]); err != nil {
					p.detach(sub)
					return err
				}
			}
			if err := send(&Event{Kind: KindSnapEnd, LSN: boundary}); err != nil {
				p.detach(sub)
				return err
			}
			p.snaps.Inc()
			lastSent = boundary
		} else {
			if err := send(&Event{Kind: KindResume, Run: p.run, LSN: fromLSN}); err != nil {
				p.detach(sub)
				return err
			}
			for i := range backlog {
				if err := send(&backlog[i]); err != nil {
					p.detach(sub)
					return err
				}
				lastSent = backlog[i].LSN
			}
		}
		if err := flush(); err != nil {
			p.detach(sub)
			return err
		}

		overflowed, err := p.tail(sub, send, flush, &lastSent)
		p.detach(sub)
		if err != nil {
			return err
		}
		if !overflowed {
			return nil
		}
		// Queue overflow: retry incrementally from the last frame this
		// replica actually received.
		fromLSN, runID = lastSent, p.run
	}
}

// tail streams live events from sub until the channel closes (overflow)
// or a write fails, interleaving pings so an idle replica still observes
// the primary's LSN and clock.
func (p *Primary) tail(sub *subscriber, send func(*Event) error, flush func() error, lastSent *uint64) (overflowed bool, err error) {
	ticker := time.NewTicker(p.pingEvery)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return true, nil
			}
			if err := send(&ev); err != nil {
				return false, err
			}
			*lastSent = ev.LSN
			// Opportunistically drain whatever is queued before flushing,
			// so a burst becomes one syscall.
		drain:
			for {
				select {
				case ev, ok := <-sub.ch:
					if !ok {
						// Flush what we have, then report the overflow.
						if err := flush(); err != nil {
							return false, err
						}
						return true, nil
					}
					if err := send(&ev); err != nil {
						return false, err
					}
					*lastSent = ev.LSN
				default:
					break drain
				}
			}
			if err := flush(); err != nil {
				return false, err
			}
		case <-ticker.C:
			if err := send(&Event{Kind: KindPing, LSN: p.LSN(), Wall: time.Now().UnixMicro()}); err != nil {
				return false, err
			}
			if err := flush(); err != nil {
				return false, err
			}
		}
	}
}
