package stream

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"streamrel/internal/catalog"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

func mustDerived(name string, schema types.Schema) *catalog.DerivedStream {
	return &catalog.DerivedStream{Name: name, Schema: schema, CloseCol: -1}
}

// TestTumblingPartitionProperty: tumbling windows partition the stream —
// every event is counted in exactly one window, so the window counts sum
// to the number of events. Randomized over gap distributions and advances.
func TestTumblingPartitionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		advMinutes := 1 + r.Intn(4)
		n := 200 + r.Intn(800)
		e := newEnv(t, trial%2 == 0)
		_, out := e.subscribe(t, fmt.Sprintf(
			`SELECT count(*) FROM url_stream <ADVANCE '%d minutes'>`, advMinutes))
		ts := int64(100 * minute)
		for i := 0; i < n; i++ {
			ts += int64(r.Intn(int(minute / 2)))
			e.hit(t, "/x", ts, "ip")
		}
		e.rt.Advance("url_stream", ts+10*int64(advMinutes)*minute)
		var sum int64
		for _, b := range *out {
			for _, row := range b.rows {
				sum += row[0].Int()
			}
		}
		if sum != int64(n) {
			t.Fatalf("trial %d (adv=%dm, n=%d): windows counted %d events",
				trial, advMinutes, n, sum)
		}
	}
}

// TestSlidingMultiplicityProperty: with VISIBLE = k·ADVANCE, every event
// appears in exactly k windows (once the stream has fully passed), so the
// counts sum to k·n.
func TestSlidingMultiplicityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		k := 2 + r.Intn(4)
		n := 200 + r.Intn(500)
		e := newEnv(t, trial%2 == 0)
		_, out := e.subscribe(t, fmt.Sprintf(
			`SELECT count(*) FROM url_stream <VISIBLE '%d minutes' ADVANCE '1 minute'>`, k))
		ts := int64(100 * minute)
		for i := 0; i < n; i++ {
			ts += int64(r.Intn(int(minute / 4)))
			e.hit(t, "/x", ts, "ip")
		}
		// Push time far enough that every event has exited the extent.
		e.rt.Advance("url_stream", ts+int64(k+2)*minute)
		var sum int64
		for _, b := range *out {
			for _, row := range b.rows {
				sum += row[0].Int()
			}
		}
		if sum != int64(k*n) {
			t.Fatalf("trial %d (k=%d, n=%d): counted %d, want %d", trial, k, n, sum, k*n)
		}
	}
}

// TestFloorDivQuick: floorDiv is real floored division for any inputs.
func TestFloorDivQuick(t *testing.T) {
	f := func(a int64, b int64) bool {
		b = b%1000 + 1001 // positive divisor
		q := floorDiv(a, b)
		return q*b <= a && (q+1)*b > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPruneKeepsExactlyTheLiveExtent: after a close at c, the pipeline's
// buffer holds only rows a future window can still read.
func TestPruneKeepsExactlyTheLiveExtent(t *testing.T) {
	e := newEnv(t, false) // unshared so the raw buffer is in use
	pipe, _ := e.subscribe(t, `SELECT count(*) FROM url_stream <VISIBLE '3 minutes' ADVANCE '1 minute'>`)
	for m := 0; m < 10; m++ {
		e.hit(t, "/x", int64(100+m)*minute+1, "ip")
	}
	e.rt.Advance("url_stream", 110*minute)
	// Next close is 111m covering [108m, 111m): only rows ≥ 108m survive.
	for _, tr := range pipe.pending {
		if tr.ts < 108*minute {
			t.Fatalf("stale row at %d retained", tr.ts)
		}
	}
	if len(pipe.pending) != 2 { // rows at 108m+1, 109m+1
		t.Fatalf("pending = %d rows", len(pipe.pending))
	}
}

// TestSharedSliceGC: slices older than every member's extent are dropped.
func TestSharedSliceGC(t *testing.T) {
	e := newEnv(t, true)
	pipe, _ := e.subscribe(t, `SELECT url, count(*) FROM url_stream <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url`)
	if !pipe.Shared() {
		t.Fatal("expected shared path")
	}
	// The CQ is a plan-group member; the slice state lives on its host.
	host := pipe.pg.host
	for m := 0; m < 30; m++ {
		e.hit(t, "/x", int64(100+m)*minute+1, "ip")
	}
	if got := len(host.shared.slices); got > 5 {
		t.Fatalf("shared slice map grew to %d entries (GC not working)", got)
	}
}

// TestRowWindowNeverExceedsVisible guards the ring-buffer bound.
func TestRowWindowNeverExceedsVisible(t *testing.T) {
	e := newEnv(t, true)
	pipe, out := e.subscribe(t, `SELECT count(*) FROM url_stream <VISIBLE 50 ROWS ADVANCE 7 ROWS>`)
	for i := 0; i < 500; i++ {
		e.hit(t, "/x", int64(1000+i)*1000, "ip")
	}
	if len(pipe.rowBuf) > 50 {
		t.Fatalf("row buffer grew to %d", len(pipe.rowBuf))
	}
	for _, b := range *out {
		if c := b.rows[0][0].Int(); c > 50 {
			t.Fatalf("window reported %d rows (> VISIBLE)", c)
		}
	}
}

// TestEmissionBufferBounded: SLICES windows retain only the last n
// emissions.
func TestEmissionBufferBounded(t *testing.T) {
	e := newEnv(t, true)
	schema := types.Schema{{Name: "v", Type: types.TypeInt}}
	if err := e.rt.RegisterSource("d", schema, -1); err != nil {
		t.Fatal(err)
	}
	// Plan a slices CQ by hand through the catalog.
	e.cat.CreateDerivedStream(mustDerived("d", schema))
	pipe, _ := e.subscribe(t, `SELECT count(*) FROM d <SLICES 3 WINDOWS>`)
	for i := 0; i < 20; i++ {
		rows := []types.Row{{types.NewInt(int64(i))}}
		if err := e.rt.emitDerived(trace.Ctx{}, "d", int64(i+1)*minute, rows); err != nil {
			t.Fatal(err)
		}
	}
	if len(pipe.emissions) > 3 {
		t.Fatalf("emission buffer grew to %d", len(pipe.emissions))
	}
}
