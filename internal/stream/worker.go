package stream

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/trace"
)

// Worker execution for parallel continuous-query mode. Each worker-mode
// pipeline owns a mailbox — a FIFO of micro-batch tasks — and the shared
// work-stealing pool (sched.go) runs at most one worker inside a mailbox
// at a time, so tasks — and therefore rows and window closes — are applied
// in exactly the order the producer enqueued them, keeping per-pipeline
// results identical to the synchronous engine. The mailbox bound gives
// blocking backpressure on the producer path: a producer outrunning a
// slow CQ parks on that CQ's mailbox instead of growing memory without
// bound. Enqueues from inside the pool (derived-stream cascades, flush
// barriers) are exempt from the bound so pool workers never block on a
// mailbox — a bounded cascade enqueue could deadlock the pool when every
// worker waits on a mailbox only another pool worker could drain.

type taskKind uint8

const (
	// taskBatch applies a prepared micro-batch of stream rows.
	taskBatch taskKind = iota
	// taskAdvance is a heartbeat: close windows up to ts.
	taskAdvance
	// taskEmission is one derived-stream emission: the batch plus the
	// emission boundary for SLICES-window consumers.
	taskEmission
	// taskFlush is a barrier: the worker closes done once everything
	// enqueued before it has been applied.
	taskFlush
)

type task struct {
	kind  taskKind
	batch []tsRow
	// block owns batch's backing storage when the batch rode in on a
	// pooled block; the worker releases its reference after the task is
	// applied (or dropped by a stopped mailbox's drain). nil for advance
	// and flush tasks.
	block  *batchBlock
	ts     int64
	emRows int // taskEmission: row count of the emission
	done   chan struct{}
	tc     trace.Ctx
	enqNS  int64 // sampled tasks: wall-clock ns at enqueue, for the pickup span
}

// Mailbox claim states. The state machine is the scheduler's claim token:
// idle → queued happens on the enqueue that finds the mailbox idle (that
// enqueue submits the pipeline to the pool, exactly once), queued →
// running when a worker claims it, running → idle when the drain empties
// the queue (or → queued again when the worker requeues after its
// quantum).
type mboxState uint8

const (
	mboxIdle mboxState = iota
	mboxQueued
	mboxRunning
)

// mailbox is one pipeline's task queue. q[head:] are pending tasks; size
// mirrors that count atomically for lock-free depth reads (metrics,
// soleIdleWorker).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond // producers blocked on bound; stop waiting for running
	q       []task
	head    int
	size    atomic.Int64
	state   mboxState
	bound   int // producer backpressure threshold, in tasks
	stopped bool
}

func (m *mailbox) depth() int { return int(m.size.Load()) }

// startWorker switches the pipeline into mailbox mode with the given
// backpressure bound. Called under the source lock before the pipeline is
// added to the fan-out list, so no task can precede it.
func (p *Pipeline) startWorker(bound int) {
	m := &mailbox{bound: bound}
	m.cond = sync.NewCond(&m.mu)
	p.mbox = m
	p.rt.ensureSched()
	if p.rt.reg != nil {
		p.unregQueueGauge = p.rt.reg.GaugeFunc("streamrel_pipeline_queue_depth",
			"micro-batch tasks queued for a pipeline worker",
			func() float64 { return float64(m.depth()) },
			metrics.L("stream", p.src.name),
			metrics.L("pipe", strconv.FormatInt(p.id, 10)))
	}
}

// enqueue appends a task to the mailbox and, when the mailbox was idle,
// submits the pipeline to the scheduler. bounded enqueues (the base-stream
// producer path) block while the mailbox is at its bound — backpressure —
// and must never be used from a pool worker. Callers hold the source lock;
// a stopped mailbox drops the task (its pipeline is already detached).
func (p *Pipeline) enqueue(t task, bounded bool) {
	m := p.mbox
	m.mu.Lock()
	if bounded {
		for m.size.Load() >= int64(m.bound) && !m.stopped {
			m.cond.Wait()
		}
	}
	if m.stopped {
		m.mu.Unlock()
		dropTask(t)
		return
	}
	if t.kind != taskFlush {
		p.enqueued.Add(1)
	}
	m.q = append(m.q, t)
	m.size.Add(1)
	submit := m.state == mboxIdle
	if submit {
		m.state = mboxQueued
	}
	m.mu.Unlock()
	if submit {
		p.rt.sched.submit(p)
	}
}

// runMailbox drains this pipeline's mailbox on a pool worker. At most one
// worker runs here at a time (the state machine's claim token), so tasks
// apply strictly in enqueue order. After a failure the drain keeps
// consuming (dropping work) so producers never block forever on a
// poisoned mailbox; the source sweeps the pipeline out and surfaces the
// error on the next Push/Advance/Quiesce/Close. Block references are
// released even for dropped work, and applied counts every non-flush task
// — after its effects are complete — so the producer's idle check
// (soleIdleWorker) is exact.
func (p *Pipeline) runMailbox() {
	m := p.mbox
	n := 0
	m.mu.Lock()
	m.state = mboxRunning
	for {
		if m.stopped {
			for m.head < len(m.q) {
				t := m.q[m.head]
				m.q[m.head] = task{}
				m.head++
				m.size.Add(-1)
				dropTask(t)
			}
		}
		if m.head >= len(m.q) {
			m.q, m.head = m.q[:0], 0
			break
		}
		if n >= schedQuantum {
			// Quantum spent: requeue so runnable peers get this worker.
			m.state = mboxQueued
			m.mu.Unlock()
			p.rt.sched.submit(p)
			return
		}
		t := m.q[m.head]
		m.q[m.head] = task{}
		m.head++
		m.size.Add(-1)
		m.cond.Signal() // one slot freed: wake a bounded producer
		m.mu.Unlock()
		n++
		if t.kind == taskFlush {
			close(t.done)
		} else {
			if !p.failed.Load() {
				if err := p.apply(t); err != nil {
					p.failErr = err
					p.failed.Store(true)
				}
			}
			if t.block != nil {
				t.block.release()
			}
			p.applied.Add(1)
		}
		m.mu.Lock()
	}
	m.state = mboxIdle
	m.cond.Broadcast() // wake stop() waiting for the drain to finish
	m.mu.Unlock()
}

// dropTask releases a dropped task's resources so stop/enqueue-after-stop
// never leak pooled blocks or strand a flush barrier.
func dropTask(t task) {
	if t.kind == taskFlush {
		close(t.done)
		return
	}
	if t.block != nil {
		t.block.release()
	}
}

// stop marks the mailbox stopped, drops queued work and waits for any
// in-flight task to finish, then detaches per-pipeline gauges. Safe to
// call multiple times; synchronous pipelines only detach gauges.
func (p *Pipeline) stop() {
	p.stopOnce.Do(func() {
		if p.unregIVMGauges != nil {
			p.unregIVMGauges()
		}
		if p.mbox == nil {
			return
		}
		m := p.mbox
		m.mu.Lock()
		m.stopped = true
		for m.head < len(m.q) {
			t := m.q[m.head]
			m.q[m.head] = task{}
			m.head++
			m.size.Add(-1)
			dropTask(t)
		}
		m.q, m.head = m.q[:0], 0
		m.cond.Broadcast() // unblock bounded producers
		for m.state == mboxRunning {
			m.cond.Wait()
		}
		m.mu.Unlock()
		if p.unregQueueGauge != nil {
			p.unregQueueGauge()
		}
	})
}

// takeErr returns the worker's failure, if any, consuming it.
func (p *Pipeline) takeErr() error {
	if !p.failed.Load() {
		return nil
	}
	err := p.failErr
	p.failErr = nil
	p.failed.Store(false)
	return err
}

func (p *Pipeline) apply(t task) error {
	switch t.kind {
	case taskBatch:
		p.pickup(t)
		return p.processBatch(t.batch, t.tc)
	case taskAdvance:
		return p.advanceTo(t.ts)
	case taskEmission:
		p.pickup(t)
		if err := p.processBatch(t.batch, t.tc); err != nil {
			return err
		}
		return p.endEmission(t.ts, t.emRows)
	}
	return nil
}

// pickup records the queue-wait span for a sampled task: the time between
// the producer's enqueue and a pool worker dequeuing it.
func (p *Pipeline) pickup(t task) {
	if t.tc.ID == 0 || t.enqNS == 0 || p.rt.tracer == nil {
		return
	}
	p.rt.tracer.Record(trace.Span{Trace: t.tc.ID, Stage: trace.StagePickup,
		Stream: p.src.name, Pipe: p.id, Start: t.enqNS / 1000,
		Dur: time.Now().UnixNano() - t.enqNS, Rows: len(t.batch)})
}
