package stream

import (
	"strconv"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/trace"
)

// Worker execution for parallel continuous-query mode. Each non-shared
// pipeline gets one dedicated goroutine fed by a bounded task queue; a
// single worker per pipeline means tasks — and therefore rows and window
// closes — are applied in exactly the order the producer enqueued them,
// so per-pipeline results are identical to the synchronous engine. The
// bounded queue gives blocking backpressure: a producer outrunning a slow
// CQ parks on that CQ's queue instead of growing memory without bound.

type taskKind uint8

const (
	// taskBatch applies a prepared micro-batch of stream rows.
	taskBatch taskKind = iota
	// taskAdvance is a heartbeat: close windows up to ts.
	taskAdvance
	// taskEmission is one derived-stream emission: the batch plus the
	// emission boundary for SLICES-window consumers.
	taskEmission
	// taskFlush is a barrier: the worker closes done once everything
	// enqueued before it has been applied.
	taskFlush
)

type task struct {
	kind  taskKind
	batch []tsRow
	// block owns batch's backing storage when the batch rode in on a
	// pooled block; the worker releases its reference after the task is
	// applied (or dropped by a failed worker's drain). nil for advance
	// and flush tasks.
	block  *batchBlock
	ts     int64
	emRows int // taskEmission: row count of the emission
	done   chan struct{}
	tc     trace.Ctx
	enqNS  int64 // sampled tasks: wall-clock ns at enqueue, for the pickup span
}

// startWorker switches the pipeline into worker mode with a queue of the
// given depth. Called under the source lock before the pipeline is added
// to the fan-out list, so no task can precede it.
func (p *Pipeline) startWorker(depth int) {
	p.tasks = make(chan task, depth)
	p.workerDone = make(chan struct{})
	if p.rt.reg != nil {
		tasks := p.tasks // capture: gauge must not chase a nil field after stop
		p.unregQueueGauge = p.rt.reg.GaugeFunc("streamrel_pipeline_queue_depth",
			"micro-batch tasks queued for a pipeline worker",
			func() float64 { return float64(len(tasks)) },
			metrics.L("stream", p.src.name),
			metrics.L("pipe", strconv.FormatInt(p.id, 10)))
	}
	go p.workerLoop()
}

// enqueue hands a task to the worker, blocking when the queue is full
// (backpressure). Callers hold the source lock; a failed worker keeps
// draining its queue until stopped, so this cannot deadlock.
func (p *Pipeline) enqueue(t task) {
	if t.kind != taskFlush {
		p.enqueued.Add(1)
	}
	p.tasks <- t
}

// stop closes the queue and waits for the worker to exit, detaching any
// per-pipeline gauges. Safe to call multiple times; synchronous pipelines
// only detach gauges.
func (p *Pipeline) stop() {
	p.stopOnce.Do(func() {
		if p.unregIVMGauges != nil {
			p.unregIVMGauges()
		}
		if p.tasks == nil {
			return
		}
		close(p.tasks)
		<-p.workerDone
		if p.unregQueueGauge != nil {
			p.unregQueueGauge()
		}
	})
}

// takeErr returns the worker's failure, if any, consuming it.
func (p *Pipeline) takeErr() error {
	if !p.failed.Load() {
		return nil
	}
	err := p.failErr
	p.failErr = nil
	p.failed.Store(false)
	return err
}

// workerLoop applies tasks in order until the queue is closed. After a
// failure the worker keeps draining (dropping work) so producers never
// block forever on a poisoned queue; the source sweeps the pipeline out
// and surfaces the error on the next Push/Advance/Quiesce/Close. Block
// references are released even for dropped work, and applied counts
// every non-flush task — after its effects are complete — so the
// producer's idle check (soleIdleWorker) is exact.
func (p *Pipeline) workerLoop() {
	defer close(p.workerDone)
	for t := range p.tasks {
		if t.kind == taskFlush {
			close(t.done)
			continue
		}
		if !p.failed.Load() {
			if err := p.apply(t); err != nil {
				p.failErr = err
				p.failed.Store(true)
			}
		}
		if t.block != nil {
			t.block.release()
		}
		p.applied.Add(1)
	}
}

func (p *Pipeline) apply(t task) error {
	switch t.kind {
	case taskBatch:
		p.pickup(t)
		return p.processBatch(t.batch, t.tc)
	case taskAdvance:
		return p.advanceTo(t.ts)
	case taskEmission:
		p.pickup(t)
		if err := p.processBatch(t.batch, t.tc); err != nil {
			return err
		}
		return p.endEmission(t.ts, t.emRows)
	}
	return nil
}

// pickup records the queue-wait span for a sampled task: the time between
// the producer's enqueue and this worker dequeuing it.
func (p *Pipeline) pickup(t task) {
	if t.tc.ID == 0 || t.enqNS == 0 || p.rt.tracer == nil {
		return
	}
	p.rt.tracer.Record(trace.Span{Trace: t.tc.ID, Stage: trace.StagePickup,
		Stream: p.src.name, Pipe: p.id, Start: t.enqNS / 1000,
		Dur: time.Now().UnixNano() - t.enqNS, Rows: len(t.batch)})
}
