package stream

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamrel/internal/exec"
	"streamrel/internal/ivm"
	"streamrel/internal/metrics"
	"streamrel/internal/plan"
	"streamrel/internal/sql"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// tsRow is a buffered stream row with its extracted timestamp.
type tsRow struct {
	ts  int64
	row types.Row
}

// Pipeline is one running continuous query: it buffers stream rows into
// the window defined by its plan and evaluates the plan at every window
// close, sending results to its sink.
type Pipeline struct {
	rt   *Runtime
	src  *source
	plan *plan.Plan
	win  sql.WindowSpec
	sink Sink

	// Time windows: rows retained for the sliding extent, plus the next
	// boundary to close.
	pending   []tsRow
	nextClose int64
	started   bool

	// Row windows: the last `visible` rows; countdown to the next close.
	rowBuf       []tsRow
	sinceAdvance int64

	// SLICES windows: the last n emissions of a derived stream.
	emissions []emission

	// Shared slice aggregation (nil when not applicable or disabled).
	shared *sharedAgg

	// Plan-level sharing (see planshare.go). pg is set on a member: the
	// pipeline is a subscriber of a shared host and receives no row
	// delivery of its own. hosting is set on the host pipeline that owns
	// the group's window state and fans post stages out at each close.
	pg      *planGroup
	hosting *planGroup

	// Incremental view maintenance (nil when not applicable or disabled):
	// the pipeline maintains materialized per-group aggregates and fires
	// from state instead of re-executing the plan over the window.
	ivm *ivm.State
	// ivmTouched counts distinct groups changed per fire
	// (streamrel_ivm_groups_touched_total); nil without a registry.
	ivmTouched *metrics.Counter
	// unregIVMGauges detaches the state-size gauges on stop.
	unregIVMGauges func()

	// resumeAfter suppresses closes at or before this boundary; recovery
	// sets it from the Active Table's high-water mark (paper §4).
	resumeAfter int64

	// Trace state, touched only on the goroutine that applies this
	// pipeline's input (worker, or producer under the source lock). tc is
	// the most recent sampled context since the last fire — the next fire
	// is attributed to it; oldestIngest is the earliest unfired batch's
	// ingest time (wall ns), the start of the push-to-fire latency the
	// slow-fire threshold is checked against. Both reset at each fire.
	tc           trace.Ctx
	oldestIngest int64

	// Worker execution (parallel mode only; mbox == nil means the
	// pipeline runs synchronously on the producer). The work-stealing
	// pool runs at most one worker inside the mailbox at a time and
	// applies tasks in queue order, so per-pipeline results match the
	// synchronous engine exactly.
	mbox     *mailbox
	stopOnce sync.Once
	enqueued atomic.Int64
	// applied counts non-flush tasks the worker has fully processed;
	// enqueued == applied with an empty queue means the worker is idle,
	// which lets the producer bypass the queue (soleIdleWorker).
	applied atomic.Int64
	failed  atomic.Bool // failErr is written before the Store, read after the Load
	failErr error

	// id labels this pipeline in metric series and Stats.PerPipeline.
	id int64
	// windowsFired and rowsSeen are always non-nil; with a registry they
	// are the registered streamrel_pipeline_{windows,rows}_total series,
	// so Stats and /metrics read the same counters.
	windowsFired *metrics.Counter
	rowsSeen     *metrics.Counter
	// fireHist observes window-fire latency (plan execution + sink
	// delivery); nil without a registry.
	fireHist *metrics.Histogram
	// unregQueueGauge detaches the queue-depth gauge on stop.
	unregQueueGauge func()
}

type emission struct {
	ts   int64
	rows []types.Row
}

// newPipeline validates the window against the source and joins a plan
// group, an incremental state or a shared slice aggregation when the plan
// shape allows it.
func newPipeline(rt *Runtime, src *source, p *plan.Plan, sink Sink) (*Pipeline, error) {
	return buildPipeline(rt, src, p, sink, true)
}

// buildPipeline is newPipeline with plan-group membership controllable:
// group hosts are themselves built through it with allowGroup=false so
// the host gets real window state (IVM preferred, shared slices
// otherwise) instead of recursively joining its own group. Callers hold
// src.mu.
func buildPipeline(rt *Runtime, src *source, p *plan.Plan, sink Sink, allowGroup bool) (*Pipeline, error) {
	w := p.Stream.Window
	pipe := &Pipeline{rt: rt, src: src, plan: p, win: w, sink: sink, resumeAfter: -1 << 62}
	pipe.id = rt.nextPipeID.Add(1)
	if rt.reg != nil {
		labels := []metrics.Label{
			metrics.L("stream", src.name),
			metrics.L("pipe", strconv.FormatInt(pipe.id, 10)),
		}
		pipe.rowsSeen = rt.reg.Counter("streamrel_pipeline_rows_total",
			"rows delivered to a continuous-query pipeline", labels...)
		pipe.windowsFired = rt.reg.Counter("streamrel_pipeline_windows_total",
			"window closes evaluated by a continuous-query pipeline", labels...)
		pipe.fireHist = rt.reg.Histogram("streamrel_window_fire_seconds",
			"window-fire latency: plan execution plus sink delivery", nil,
			metrics.L("stream", src.name))
	} else {
		pipe.rowsSeen, pipe.windowsFired = &metrics.Counter{}, &metrics.Counter{}
	}
	switch w.Kind {
	case sql.WindowTime:
		if w.Visible <= 0 || w.Advance <= 0 {
			return nil, fmt.Errorf("stream: window extents must be positive")
		}
	case sql.WindowRows:
		if w.Visible <= 0 || w.Advance <= 0 {
			return nil, fmt.Errorf("stream: window extents must be positive")
		}
		if w.Advance > w.Visible {
			return nil, fmt.Errorf("stream: row window ADVANCE larger than VISIBLE is not supported")
		}
	case sql.WindowSlices:
		if src.cqtimeCol >= 0 {
			return nil, fmt.Errorf("stream: <SLICES n WINDOWS> applies to derived streams")
		}
	}

	// Plan-level sharing: CQs with the shareable aggregate shape, the same
	// slice fingerprint and the same window geometry subscribe to one host
	// pipeline (the first such CQ creates it) instead of building their own
	// window state. The check runs before IVM so 10k identical dashboards
	// maintain ONE delta state; the host itself is built through the normal
	// tail below and so prefers IVM, falling back to shared slices.
	if allowGroup && rt.planShare && rt.sharing && p.StreamAgg != nil &&
		w.Kind == sql.WindowTime && w.Visible%w.Advance == 0 {
		key := planGroupKey(p.StreamAgg.Fingerprint, w.Advance, w.Visible)
		g, ok := src.groups[key]
		if !ok {
			host, err := buildPipeline(rt, src, p, nil, false)
			if err != nil {
				return nil, err
			}
			g = &planGroup{key: key, host: host}
			host.hosting = g
			src.groups[key] = g
			if rt.parallel > 0 && host.shared == nil {
				host.startWorker(rt.parallel)
				src.workers++
			}
			src.pipes = append(src.pipes, host)
		}
		g.attach(pipe, p.StreamAgg.PostKey)
		pipe.pg = g
		return pipe, nil
	}

	// Incremental view maintenance: delta-eligible plans maintain
	// materialized per-group aggregates and fire in O(groups) instead of
	// re-scanning O(window rows). Takes precedence over shared slices when
	// both apply — a fire from state beats a per-fire slice merge on the
	// wide-window/small-advance dashboard shape (E14); identical-shape CQs
	// give up slice sharing's per-row dedup in exchange.
	if rt.ivm {
		if st, reason := ivm.Compile(p); reason == "" {
			pipe.ivm = st
			if rt.reg != nil {
				pipe.ivmTouched = rt.reg.Counter("streamrel_ivm_groups_touched_total",
					"distinct groups changed between incremental window fires",
					metrics.L("stream", src.name))
				labels := []metrics.Label{
					metrics.L("stream", src.name),
					metrics.L("pipe", strconv.FormatInt(pipe.id, 10)),
				}
				unregGroups := rt.reg.GaugeFunc("streamrel_ivm_state_groups",
					"materialized groups held by an incremental pipeline",
					func() float64 { return float64(st.GroupsN.Load()) }, labels...)
				unregSlices := rt.reg.GaugeFunc("streamrel_ivm_state_slices",
					"live slices held by an incremental pipeline",
					func() float64 { return float64(st.SlicesN.Load()) }, labels...)
				pipe.unregIVMGauges = func() { unregGroups(); unregSlices() }
			}
			return pipe, nil
		}
	}

	// Shared slice aggregation: time windows whose VISIBLE is a multiple
	// of ADVANCE, with the shareable plan shape.
	if rt.sharing && p.StreamAgg != nil && w.Kind == sql.WindowTime && w.Visible%w.Advance == 0 {
		key := fmt.Sprintf("%s@%d", p.StreamAgg.Fingerprint, w.Advance)
		agg, ok := src.shared[key]
		if !ok {
			agg = newSharedAgg(key, p.StreamAgg, w.Advance)
			src.shared[key] = agg
		}
		agg.attach(pipe)
		pipe.shared = agg
	}
	return pipe, nil
}

// Plan returns the pipeline's compiled plan.
func (p *Pipeline) Plan() *plan.Plan { return p.plan }

// Shared reports whether this pipeline aggregates via shared slices. A
// plan-group member reports its host's strategy: that is where its
// aggregation actually runs.
func (p *Pipeline) Shared() bool {
	if p.pg != nil {
		return p.pg.host.shared != nil
	}
	return p.shared != nil
}

// Incremental reports whether this pipeline maintains its aggregate
// incrementally and fires from materialized state (delegated to the host
// for plan-group members).
func (p *Pipeline) Incremental() bool {
	if p.pg != nil {
		return p.pg.host.ivm != nil
	}
	return p.ivm != nil
}

// PlanShared reports plan-level sharing membership: the group key
// (fingerprint@advance/visible) and the current subscriber count.
func (p *Pipeline) PlanShared() (key string, members int, ok bool) {
	if p.pg == nil {
		return "", 0, false
	}
	return p.pg.key, int(p.pg.n.Load()), true
}

// SliceShared reports shared-slice membership for EXPLAIN: the slice key
// (fingerprint@advance) and how many pipelines feed off that state. A
// plan-group member reports through its host.
func (p *Pipeline) SliceShared() (key string, members int, ok bool) {
	host := p
	if p.pg != nil {
		host = p.pg.host
	}
	if host.shared == nil {
		return "", 0, false
	}
	p.src.mu.Lock()
	n := len(host.shared.members)
	p.src.mu.Unlock()
	return host.shared.key, n, true
}

// mode names the fire strategy for trace spans and stats.
func (p *Pipeline) mode() string {
	switch {
	case p.ivm != nil:
		return "incremental"
	case p.shared != nil:
		return "shared"
	default:
		return "reexec"
	}
}

// ResumeAfter suppresses window closes at or before ts; used by recovery
// so an Active Table is not fed duplicate windows after restart.
func (p *Pipeline) ResumeAfter(ts int64) {
	p.resumeAfter = ts
	if p.win.Kind == sql.WindowTime {
		// Start the boundary clock just past the resume point.
		p.nextClose = p.alignUp(ts + 1)
		p.started = true
		if p.pg != nil {
			// A plan-group member never fires itself: the host's clock must
			// cover the member's resume point, and when members resume from
			// different high-water marks the earliest one wins so no close
			// any member still needs is skipped (fanout suppresses per
			// member).
			h := p.pg.host
			nc := h.alignUp(ts + 1)
			if !h.started || nc < h.nextClose {
				h.nextClose = nc
				h.started = true
			}
		}
	}
}

// processBatch applies one prepared micro-batch: each row first proves
// every earlier window boundary complete, then lands in the buffer — the
// same interleaving row-at-a-time delivery produced, amortized to one call
// per batch per pipeline.
func (p *Pipeline) processBatch(batch []tsRow, tc trace.Ctx) error {
	p.noteBatch(tc)
	for _, tr := range batch {
		if err := p.advanceTo(tr.ts); err != nil {
			return err
		}
		if err := p.push(tr.row, tr.ts); err != nil {
			return err
		}
	}
	return nil
}

// noteBatch folds an arriving batch's trace context into the pipeline's
// pending fire attribution. The fire a batch triggers is the one its
// arrival proves complete, so the context is noted before any boundary
// closes.
func (p *Pipeline) noteBatch(tc trace.Ctx) {
	if p.rt.tracer == nil {
		return
	}
	if p.oldestIngest == 0 && tc.Ingest != 0 {
		p.oldestIngest = tc.Ingest
	}
	if tc.ID != 0 {
		p.tc = tc
	}
}

// push buffers one row (already proven in-order by the source).
func (p *Pipeline) push(row types.Row, ts int64) error {
	p.rowsSeen.Inc()
	switch p.win.Kind {
	case sql.WindowTime:
		if !p.started {
			p.nextClose = p.alignUp(ts + 1)
			p.started = true
		}
		if p.ivm != nil {
			return p.ivm.Insert(row, ts)
		}
		if p.shared == nil {
			p.pending = append(p.pending, tsRow{ts, row})
		}
		return nil
	case sql.WindowRows:
		p.rowBuf = append(p.rowBuf, tsRow{ts, row})
		if len(p.rowBuf) > int(p.win.Visible) {
			p.rowBuf = p.rowBuf[1:]
		}
		p.sinceAdvance++
		if p.sinceAdvance >= p.win.Advance {
			p.sinceAdvance = 0
			return p.fireRows(ts)
		}
		return nil
	case sql.WindowSlices:
		// Rows accumulate into the current emission; endEmission seals it.
		n := len(p.emissions)
		if n == 0 || p.emissions[n-1].ts != ts {
			p.emissions = append(p.emissions, emission{ts: ts})
			n++
		}
		p.emissions[n-1].rows = append(p.emissions[n-1].rows, row)
		return nil
	}
	return fmt.Errorf("stream: unknown window kind")
}

// advanceTo fires every time-window boundary at or before ts.
func (p *Pipeline) advanceTo(ts int64) error {
	if p.win.Kind != sql.WindowTime {
		return nil
	}
	if !p.started {
		// No data yet: set the clock so the first boundary is after ts
		// (there is nothing to report before data or a later heartbeat).
		p.nextClose = p.alignUp(ts + 1)
		p.started = true
		return nil
	}
	for p.nextClose <= ts {
		c := p.nextClose
		p.nextClose += p.win.Advance
		if c <= p.resumeAfter {
			p.prune(c)
			if p.ivm != nil {
				// Suppressed closes still expire slices, so the state
				// tracks the window even while recovery mutes output.
				if err := p.ivm.Expire(c + p.win.Advance - p.win.Visible); err != nil {
					return err
				}
			}
			continue
		}
		if err := p.fireTime(c); err != nil {
			return err
		}
	}
	return nil
}

// alignUp returns the smallest multiple of ADVANCE that is >= ts.
func (p *Pipeline) alignUp(ts int64) int64 {
	adv := p.win.Advance
	q := floorDiv(ts, adv)
	if q*adv < ts {
		q++
	}
	return q * adv
}

// fireTime evaluates the window closing at boundary c: rows with
// timestamps in [c-VISIBLE, c). The window materialization rides in a
// pooled container, released once the plan has drained — operators copy
// row references into fresh output rows and never retain the input
// slice itself.
func (p *Pipeline) fireTime(c int64) error {
	if p.hosting != nil {
		return p.fireGroup(p.hosting, c)
	}
	if p.ivm != nil {
		aggRows, touched, err := p.ivm.Fire()
		if err != nil {
			return err
		}
		if p.ivmTouched != nil {
			p.ivmTouched.Add(int64(touched))
		}
		if err := p.runPost(c, aggRows, true); err != nil {
			return err
		}
		// Retract the slice that just left the window.
		return p.ivm.Expire(c + p.win.Advance - p.win.Visible)
	}
	if p.shared != nil {
		aggRows, err := p.shared.windowRows(c, p.win.Visible)
		if err != nil {
			return err
		}
		return p.runPost(c, aggRows, false)
	}
	lo := c - p.win.Visible
	rb := getRowsBlock(len(p.pending))
	for _, tr := range p.pending {
		if tr.ts >= lo && tr.ts < c {
			rb.rows = append(rb.rows, tr.row)
		}
	}
	p.prune(c)
	err := p.run(c, rb.rows)
	rb.put()
	return err
}

// prune drops buffered rows no window after boundary c can see.
func (p *Pipeline) prune(c int64) {
	keepFrom := c + p.win.Advance - p.win.Visible
	i := 0
	for i < len(p.pending) && p.pending[i].ts < keepFrom {
		i++
	}
	if i > 0 {
		p.pending = append(p.pending[:0], p.pending[i:]...)
	}
}

// fireRows evaluates a row-count window: the last VISIBLE rows as of the
// row that completed the ADVANCE count. cq_close is that row's timestamp.
// The materialization is pooled; see fireTime.
func (p *Pipeline) fireRows(ts int64) error {
	if ts <= p.resumeAfter {
		return nil
	}
	rb := getRowsBlock(len(p.rowBuf))
	for _, tr := range p.rowBuf {
		rb.rows = append(rb.rows, tr.row)
	}
	err := p.run(ts, rb.rows)
	rb.put()
	return err
}

// endEmission seals the current derived-stream emission and, for SLICES
// windows, fires over the last n emissions.
func (p *Pipeline) endEmission(ts int64, rowCount int) error {
	if p.win.Kind != sql.WindowSlices {
		return nil
	}
	// Ensure an (possibly empty) emission exists for ts.
	n := len(p.emissions)
	if n == 0 || p.emissions[n-1].ts != ts {
		p.emissions = append(p.emissions, emission{ts: ts})
		n++
	}
	// Retain only the last `Visible` emissions.
	if over := n - int(p.win.Visible); over > 0 {
		p.emissions = append(p.emissions[:0], p.emissions[over:]...)
	}
	if ts <= p.resumeAfter {
		return nil
	}
	total := 0
	for _, em := range p.emissions {
		total += len(em.rows)
	}
	rb := getRowsBlock(total)
	for _, em := range p.emissions {
		rb.rows = append(rb.rows, em.rows...)
	}
	err := p.run(ts, rb.rows)
	rb.put()
	return err
}

// run executes the full plan over the window's rows and emits the result.
func (p *Pipeline) run(c int64, rows []types.Row) error {
	return p.fire(c, func() exec.Operator { return p.plan.Build(plan.Input{WindowRows: rows}) })
}

// runPost executes only the post-aggregation stage over merged shared
// slice results.
func (p *Pipeline) runPost(c int64, aggRows []types.Row, presorted bool) error {
	return p.fire(c, func() exec.Operator { return p.plan.StreamAgg.PostBuild(aggRows, presorted) })
}

// fire evaluates one window close and delivers the result to the sink,
// recording window-fire and cq-deliver spans when the fire is attributed
// to a sampled batch, and force-recording (plus logging) fires whose
// push-to-fire latency exceeds the slow-fire threshold.
func (p *Pipeline) fire(c int64, build func() exec.Operator) error {
	tr := p.rt.tracer
	var start time.Time
	if p.fireHist != nil || tr != nil {
		start = time.Now()
	}
	ctx := p.rt.snapshotCtx(c)
	out, err := exec.Drain(ctx, build())
	if err != nil {
		return fmt.Errorf("stream: window close at %d: %w", c, err)
	}
	p.windowsFired.Inc()
	if tr == nil {
		err = p.sink(trace.Ctx{}, c, out)
		if p.fireHist != nil {
			p.fireHist.ObserveSince(start)
		}
		return err
	}
	execDone := time.Now()
	tc, slow := p.takeFireCtx(tr, execDone)
	err = p.sink(tc, c, out)
	end := time.Now()
	if p.fireHist != nil {
		p.fireHist.Observe(end.Sub(start).Seconds())
	}
	if tc.ID != 0 {
		tr.Record(trace.Span{Trace: tc.ID, Stage: trace.StageWindowFire, Stream: p.src.name,
			Pipe: p.id, Start: start.UnixMicro(), Dur: execDone.Sub(start).Nanoseconds(),
			Rows: len(out), Slow: slow, Mode: p.mode()})
		tr.Record(trace.Span{Trace: tc.ID, Stage: trace.StageCQDeliver, Stream: p.src.name,
			Pipe: p.id, Start: execDone.UnixMicro(), Dur: end.Sub(execDone).Nanoseconds(),
			Rows: len(out), Slow: slow})
	}
	if slow {
		tr.SlowFire(p.src.name, p.id, tc.ID, time.Duration(end.UnixNano()-tc.Ingest),
			execDone.Sub(start), end.Sub(execDone), len(out))
	}
	return err
}

// takeFireCtx consumes the pending trace attribution for one fire. The
// returned context keeps the oldest unfired ingest time so downstream
// consumers (derived streams, channels) measure latency from original
// ingest. A fire over the slow threshold gets a fresh trace ID when its
// batch was unsampled — slow fires bypass sampling.
func (p *Pipeline) takeFireCtx(tr *trace.Tracer, execDone time.Time) (trace.Ctx, bool) {
	tc := trace.Ctx{ID: p.tc.ID, Ingest: p.oldestIngest}
	p.tc = trace.Ctx{}
	p.oldestIngest = 0
	slow := false
	if th := tr.Threshold(); th > 0 && tc.Ingest != 0 && execDone.UnixNano()-tc.Ingest > int64(th) {
		slow = true
		if tc.ID == 0 {
			tc.ID = tr.NewID()
		}
	}
	return tc, slow
}
