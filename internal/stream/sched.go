package stream

import (
	"runtime"
	"sync"
	"sync/atomic"

	"streamrel/internal/metrics"
)

// Work-stealing scheduler for parallel continuous-query mode.
//
// Pipelines are scheduled as actors: the unit of work handed to the pool
// is a *Pipeline whose mailbox has input, never an individual task. A
// pipeline is claimed by at most one worker at a time and its mailbox is
// drained in FIFO order, so rows and window closes are applied exactly in
// producer order — per-CQ results stay byte-identical to the synchronous
// engine while N runnable pipelines use up to `workers` cores. This
// replaces the one-goroutine-per-pipeline model: 10k registered CQs cost
// 10k idle mailboxes, not 10k parked goroutine stacks, and wake-up work
// is bounded by the worker pool.
//
// Topology: one bounded deque per worker. A producer submits a runnable
// pipeline to a deque chosen round-robin; the owning worker pops from the
// front (FIFO fairness), and an idle worker steals the back half of the
// first non-empty victim deque it finds (steal-half amortizes the steal
// lock against future polls). Idle workers park on a single condition
// variable; a submit bumps a generation counter and signals, and a parked
// worker re-scans before sleeping so no submit is lost.
type scheduler struct {
	deques []schedDeque

	mu     sync.Mutex // guards gen, parked, closed
	cond   *sync.Cond
	gen    uint64 // bumped per submit; parked workers re-scan on change
	parked int
	closed bool

	rr       atomic.Uint64 // round-robin submit cursor
	runnable atomic.Int64  // pipelines sitting in deques (queue depth)
	wg       sync.WaitGroup

	// steals counts victim deques robbed; parks counts worker sleeps.
	// Both are cheap single-writer-ish counters; nil-safe via zero values.
	steals *metrics.Counter
	parks  *metrics.Counter
	unreg  []func()
}

// schedDeque is one worker's run queue of claimable pipelines. head
// indexes the next front pop; stealers take the back half.
type schedDeque struct {
	mu   sync.Mutex
	q    []*Pipeline
	head int
}

// schedQuantum is the number of mailbox tasks a worker applies before
// requeueing the pipeline, so one hot CQ cannot monopolize a worker while
// runnable peers wait (round-robin fairness at task granularity).
const schedQuantum = 32

func newScheduler(workers int, reg *metrics.Registry) *scheduler {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &scheduler{
		deques: make([]schedDeque, workers),
		steals: &metrics.Counter{},
		parks:  &metrics.Counter{},
	}
	s.cond = sync.NewCond(&s.mu)
	if reg != nil {
		s.steals = reg.Counter("streamrel_sched_steals_total",
			"pipeline batches stolen from another worker's deque")
		s.parks = reg.Counter("streamrel_sched_parks_total",
			"times a scheduler worker parked with no runnable pipelines")
		s.unreg = append(s.unreg,
			reg.GaugeFunc("streamrel_sched_workers",
				"scheduler worker pool size",
				func() float64 { return float64(workers) }),
			reg.GaugeFunc("streamrel_sched_runnable",
				"pipelines queued in scheduler deques awaiting a worker",
				func() float64 { return float64(s.runnable.Load()) }))
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// submit makes a pipeline claimable. Called exactly once per mailbox
// idle→queued transition (the mailbox state machine is the claim token),
// so a pipeline is never in two deques.
func (s *scheduler) submit(p *Pipeline) {
	d := &s.deques[int(s.rr.Add(1))%len(s.deques)]
	d.mu.Lock()
	d.q = append(d.q, p)
	d.mu.Unlock()
	s.runnable.Add(1)
	s.mu.Lock()
	s.gen++
	if s.parked > 0 {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// poll returns the next pipeline for worker i: front of its own deque, or
// the back half of the first non-empty victim (the first stolen pipeline
// runs now, the rest land in i's deque).
func (s *scheduler) poll(i int) *Pipeline {
	if p := s.deques[i].pop(); p != nil {
		s.runnable.Add(-1)
		return p
	}
	n := len(s.deques)
	for off := 1; off < n; off++ {
		v := &s.deques[(i+off)%n]
		stolen := v.stealHalf()
		if len(stolen) == 0 {
			continue
		}
		s.steals.Inc()
		s.runnable.Add(-1)
		if len(stolen) > 1 {
			d := &s.deques[i]
			d.mu.Lock()
			d.q = append(d.q, stolen[1:]...)
			d.mu.Unlock()
		}
		return stolen[0]
	}
	return nil
}

func (d *schedDeque) pop() *Pipeline {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.q) {
		return nil
	}
	p := d.q[d.head]
	d.q[d.head] = nil
	d.head++
	if d.head == len(d.q) {
		d.q, d.head = d.q[:0], 0
	}
	return p
}

// stealHalf removes and returns the back half (rounded up) of the deque.
func (d *schedDeque) stealHalf() []*Pipeline {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.q) - d.head
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	cut := len(d.q) - take
	stolen := append([]*Pipeline(nil), d.q[cut:]...)
	for i := cut; i < len(d.q); i++ {
		d.q[i] = nil
	}
	d.q = d.q[:cut]
	if d.head == len(d.q) {
		d.q, d.head = d.q[:0], 0
	}
	return stolen
}

// worker claims runnable pipelines and drains their mailboxes until the
// scheduler closes. The gen-check before parking closes the race between
// a fruitless scan and a concurrent submit.
func (s *scheduler) worker(i int) {
	defer s.wg.Done()
	for {
		p := s.poll(i)
		if p == nil {
			s.mu.Lock()
			g := s.gen
			s.mu.Unlock()
			if p = s.poll(i); p == nil {
				s.mu.Lock()
				for s.gen == g && !s.closed {
					s.parked++
					s.parks.Inc()
					s.cond.Wait()
					s.parked--
				}
				closed := s.closed
				s.mu.Unlock()
				if closed {
					// Final sweep: claim leftovers so stopped mailboxes
					// settle to idle before the pool exits.
					for {
						q := s.poll(i)
						if q == nil {
							return
						}
						q.runMailbox()
					}
				}
				continue
			}
		}
		p.runMailbox()
	}
}

// close stops the pool after runtime teardown has stopped every pipeline.
// Workers claim whatever is still queued (stopped mailboxes drain to
// idle), then exit.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	for _, u := range s.unreg {
		u()
	}
}
