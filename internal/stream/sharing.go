package stream

import (
	"sort"

	"streamrel/internal/expr"
	"streamrel/internal/plan"
	"streamrel/internal/types"
)

// sharedAgg is one shared slice computation: all continuous queries over
// the same stream with the same (filter, grouping, aggregates) fingerprint
// and the same ADVANCE granularity aggregate each slice exactly once, then
// combine per-window. This is the paper's shared on-the-fly aggregation
// ([12], and [4]'s slice sharing): with k identical-shape CQs the per-row
// work is paid once instead of k times.
type sharedAgg struct {
	key     string
	spec    *plan.StreamAgg
	advance int64
	members []*Pipeline

	slices     map[int64]*sliceState // keyed by slice start timestamp
	maxVisible int64
	lastTS     int64
}

type sliceState struct {
	start  int64
	groups map[string]*sliceGroup
}

type sliceGroup struct {
	keys types.Row
	accs []expr.Acc
}

func newSharedAgg(key string, spec *plan.StreamAgg, advance int64) *sharedAgg {
	return &sharedAgg{
		key:     key,
		spec:    spec,
		advance: advance,
		slices:  make(map[int64]*sliceState),
	}
}

func (a *sharedAgg) attach(p *Pipeline) {
	a.members = append(a.members, p)
	if p.win.Visible > a.maxVisible {
		a.maxVisible = p.win.Visible
	}
}

func (a *sharedAgg) detach(p *Pipeline) {
	for i, m := range a.members {
		if m == p {
			a.members = append(a.members[:i], a.members[i+1:]...)
			break
		}
	}
	a.maxVisible = 0
	for _, m := range a.members {
		if m.win.Visible > a.maxVisible {
			a.maxVisible = m.win.Visible
		}
	}
}

// push folds one row into its slice's partial aggregates — once,
// regardless of how many member CQs will consume it.
func (a *sharedAgg) push(row types.Row, ts int64) error {
	ec := &expr.Ctx{Row: row}
	if a.spec.Pred != nil {
		v, err := a.spec.Pred.Eval(ec)
		if err != nil {
			return err
		}
		if v.IsNull() || !v.Bool() {
			return nil
		}
	}
	start := floorDiv(ts, a.advance) * a.advance
	sl, ok := a.slices[start]
	if !ok {
		sl = &sliceState{start: start, groups: make(map[string]*sliceGroup)}
		a.slices[start] = sl
	}
	keys := make(types.Row, len(a.spec.GroupBy))
	for i, g := range a.spec.GroupBy {
		v, err := g.Eval(ec)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	k := keys.Key()
	grp, ok := sl.groups[k]
	if !ok {
		grp = &sliceGroup{keys: keys, accs: make([]expr.Acc, len(a.spec.Aggs))}
		for i, spec := range a.spec.Aggs {
			acc, err := expr.NewAcc(spec)
			if err != nil {
				return err
			}
			grp.accs[i] = acc
		}
		sl.groups[k] = grp
	}
	for i, spec := range a.spec.Aggs {
		v := types.True
		if spec.Arg != nil {
			var err error
			if v, err = spec.Arg.Eval(ec); err != nil {
				return err
			}
		}
		if err := grp.accs[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

// advanceTo garbage-collects slices no member window can ever read again.
func (a *sharedAgg) advanceTo(ts int64) {
	a.lastTS = ts
	horizon := ts - a.maxVisible - a.advance
	for start := range a.slices {
		if start < horizon {
			delete(a.slices, start)
		}
	}
}

// windowRows merges the slices covering [c-visible, c) into final
// aggregate rows (group keys ++ results), sorted by group key for
// determinism. Scalar aggregates over an empty window still produce one
// default row, matching exec.HashAgg.
func (a *sharedAgg) windowRows(c, visible int64) ([]types.Row, error) {
	type winGroup struct {
		keys types.Row
		accs []expr.Acc
	}
	groups := make(map[string]*winGroup)
	for start := c - visible; start < c; start += a.advance {
		sl, ok := a.slices[start]
		if !ok {
			continue
		}
		// Merge in ascending slice order (the loop order) so order-
		// sensitive aggregates (first/last) behave like direct evaluation.
		keys := make([]string, 0, len(sl.groups))
		for k := range sl.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sg := sl.groups[k]
			wg, ok := groups[k]
			if !ok {
				wg = &winGroup{keys: sg.keys, accs: make([]expr.Acc, len(a.spec.Aggs))}
				for i, spec := range a.spec.Aggs {
					acc, err := expr.NewAcc(spec)
					if err != nil {
						return nil, err
					}
					wg.accs[i] = acc
				}
				groups[k] = wg
			}
			for i := range wg.accs {
				if err := wg.accs[i].Merge(sg.accs[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(groups) == 0 && len(a.spec.GroupBy) == 0 {
		// Scalar aggregate over an empty window: defaults.
		accs := make([]expr.Acc, len(a.spec.Aggs))
		for i, spec := range a.spec.Aggs {
			acc, err := expr.NewAcc(spec)
			if err != nil {
				return nil, err
			}
			accs[i] = acc
		}
		groups[""] = &winGroup{accs: accs}
	}
	out := make([]types.Row, 0, len(groups))
	for _, wg := range groups {
		row := make(types.Row, 0, len(wg.keys)+len(wg.accs))
		row = append(row, wg.keys...)
		for _, acc := range wg.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	nk := len(a.spec.GroupBy)
	sort.SliceStable(out, func(i, j int) bool {
		return types.CompareRows(out[i][:nk], out[j][:nk]) < 0
	})
	return out, nil
}

// floorDiv is integer division rounding toward negative infinity, so
// pre-epoch timestamps slice correctly.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
