package stream

import (
	"sync"
	"sync/atomic"

	"streamrel/internal/types"
)

// Pooled containers for the ingest hot path. Two rules make the pooling
// safe (see DESIGN.md "Ingest hot path"):
//
//  1. Row values (types.Row and the datums inside) are immutable and
//     shared freely; only the CONTAINERS — []tsRow batch slices and
//     []types.Row window materializations — are pooled. Nothing
//     downstream may retain a pooled container: pipelines copy tsRow
//     values into their own buffers, operators copy Row slice headers
//     into fresh output rows, taps insert rows into the heap.
//  2. A pooled container is returned only by its owner: the producer for
//     a batch block (after every synchronous subscriber ran), each
//     worker for its reference (after apply), the firing pipeline for a
//     window block (after the plan drained).
//
// Containers are cleared of row references before going back to the pool
// so a pooled slice cannot keep a dead batch's rows live.

// batchBlock is one prepared micro-batch with a reference count. The
// producer holds one reference; fan-out to worker pipelines takes one
// more per enqueue, released by the worker after the task is applied
// (or dropped by a failed worker's drain). When the count reaches zero
// the container returns to the pool.
type batchBlock struct {
	rows []tsRow
	refs atomic.Int32
}

var batchPool = sync.Pool{New: func() any { return new(batchBlock) }}

// getBatchBlock returns an empty block with capacity for capHint rows
// and the producer's reference already counted.
func getBatchBlock(capHint int) *batchBlock {
	b := batchPool.Get().(*batchBlock)
	if cap(b.rows) < capHint {
		b.rows = make([]tsRow, 0, capHint)
	} else {
		b.rows = b.rows[:0]
	}
	b.refs.Store(1)
	return b
}

func (b *batchBlock) retain() { b.refs.Add(1) }

// release drops one reference; the last one clears the row references
// and pools the container.
func (b *batchBlock) release() {
	if b.refs.Add(-1) != 0 {
		return
	}
	for i := range b.rows {
		b.rows[i] = tsRow{}
	}
	b.rows = b.rows[:0]
	batchPool.Put(b)
}

// rowsBlock is a pooled []types.Row container for transient row lists:
// window materializations handed to the plan (released after the fire
// drains) and per-batch tap deliveries (released after the tap returns).
type rowsBlock struct {
	rows []types.Row
}

var rowsPool = sync.Pool{New: func() any { return new(rowsBlock) }}

func getRowsBlock(capHint int) *rowsBlock {
	b := rowsPool.Get().(*rowsBlock)
	if cap(b.rows) < capHint {
		b.rows = make([]types.Row, 0, capHint)
	} else {
		b.rows = b.rows[:0]
	}
	return b
}

func (b *rowsBlock) put() {
	for i := range b.rows {
		b.rows[i] = nil
	}
	b.rows = b.rows[:0]
	rowsPool.Put(b)
}
