package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"streamrel/internal/catalog"
	"streamrel/internal/plan"
	"streamrel/internal/sql"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// newParallelEnv is newEnv with worker execution enabled.
func newParallelEnv(t *testing.T, sharing bool, depth int) *env {
	t.Helper()
	e := newEnv(t, sharing)
	e.rt.SetParallel(depth)
	return e
}

// runScenario drives one deterministic workload — batched pushes with
// duplicate timestamps, heartbeats, a quiet gap — against a set of CQs and
// returns each CQ's flattened output.
func runScenario(t *testing.T, e *env, queries []string) [][]string {
	t.Helper()
	outs := make([]*[]batch, len(queries))
	for i, q := range queries {
		_, outs[i] = e.subscribe(t, q)
	}
	rng := rand.New(rand.NewSource(7))
	urls := []string{"/a", "/b", "/c", "/d"}
	ts := 10 * minute
	for step := 0; step < 40; step++ {
		n := 1 + rng.Intn(5)
		rows := make([]types.Row, n)
		for i := range rows {
			if rng.Intn(3) > 0 { // duplicates keep some rows on one timestamp
				ts += int64(rng.Intn(20)) * 1000
			}
			rows[i] = types.Row{
				types.NewString(urls[rng.Intn(len(urls))]),
				types.NewTimestampMicros(ts),
				types.NewString(fmt.Sprintf("ip%d", rng.Intn(3))),
			}
		}
		if err := e.rt.PushBatch("url_stream", rows); err != nil {
			t.Fatal(err)
		}
		if step == 20 {
			ts += 5 * minute // quiet gap: several empty windows
			if err := e.rt.Advance("url_stream", ts); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.rt.Advance("url_stream", ts+10*minute); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.Quiesce(); err != nil {
		t.Fatal(err)
	}
	got := make([][]string, len(outs))
	for i, out := range outs {
		got[i] = flatten(*out)
	}
	return got
}

// TestParallelMatchesSerial fans one source out to CQs of every window
// kind and checks that worker execution produces byte-identical results to
// the synchronous engine, with and without shared aggregation.
func TestParallelMatchesSerial(t *testing.T) {
	queries := []string{
		`SELECT url, count(*) FROM url_stream <ADVANCE '1 minute'> GROUP BY url`,
		`SELECT count(*) FROM url_stream <VISIBLE '3 minutes' ADVANCE '1 minute'>`,
		`SELECT url, count(*) FROM url_stream <VISIBLE '2 minutes' ADVANCE '2 minutes'> GROUP BY url`,
		`SELECT count(*) FROM url_stream <VISIBLE 7 ROWS ADVANCE 3 ROWS>`,
		`SELECT url FROM url_stream <VISIBLE 4 ROWS ADVANCE 4 ROWS> WHERE url = '/a'`,
	}
	for _, sharing := range []bool{false, true} {
		serial := runScenario(t, newEnv(t, sharing), queries)
		parallel := runScenario(t, newParallelEnv(t, sharing, 4), queries)
		for i := range queries {
			expect(t, parallel[i], serial[i]...)
		}
	}
}

// TestParallelSinkErrorDetaches checks the failure contract: a sink
// failing on a worker does not poison the producer — the error surfaces on
// a later Push, the pipeline detaches, and other CQs keep running.
func TestParallelSinkErrorDetaches(t *testing.T) {
	e := newParallelEnv(t, false, 2)
	_, healthy := e.subscribe(t, `SELECT url, count(*) FROM url_stream <ADVANCE '1 minute'> GROUP BY url`)

	boom := errors.New("sink exploded")
	stmt := `SELECT count(*) FROM url_stream <ADVANCE '1 minute'>`
	pl := mustPlan(t, e, stmt)
	if _, err := e.rt.Subscribe(pl, func(trace.Ctx, int64, []types.Row) error { return boom }); err != nil {
		t.Fatal(err)
	}
	if got := e.rt.Stats().Pipelines; got != 2 {
		t.Fatalf("pipelines = %d, want 2", got)
	}

	e.hit(t, "/a", 10*minute, "ip1")
	e.hit(t, "/a", 11*minute+1, "ip1") // closes [10m,11m) for both CQs; failing sink errors on its worker

	// The failure surfaces on a subsequent producer call once the worker
	// has recorded it.
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err = e.rt.Quiesce(); err != nil {
			break
		}
	}
	if !errors.Is(err, boom) {
		t.Fatalf("expected sink error to surface, got %v", err)
	}
	if got := e.rt.Stats().Pipelines; got != 1 {
		t.Fatalf("pipelines after failure = %d, want 1", got)
	}

	// The healthy CQ keeps producing.
	e.hit(t, "/b", 12*minute+1, "ip1")
	if err := e.rt.Advance("url_stream", 13*minute); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.Quiesce(); err != nil {
		t.Fatal(err)
	}
	got := flatten(*healthy)
	expect(t, got, "11:/a|1", "12:/a|1", "13:/b|1")
}

// TestParallelBackpressureOrder pairs a depth-1 queue with a slow sink:
// the producer must block rather than drop or reorder, and the sink must
// observe every window close in boundary order.
func TestParallelBackpressureOrder(t *testing.T) {
	e := newParallelEnv(t, false, 1)
	var mu sync.Mutex
	var closes []int64
	pl := mustPlan(t, e, `SELECT count(*) FROM url_stream <ADVANCE '1 minute'>`)
	if _, err := e.rt.Subscribe(pl, func(_ trace.Ctx, c int64, _ []types.Row) error {
		time.Sleep(time.Millisecond)
		mu.Lock()
		closes = append(closes, c)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	const windows = 50
	for i := 0; i <= windows; i++ {
		e.hit(t, "/a", int64(10+i)*minute, "ip1")
	}
	if err := e.rt.Quiesce(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(closes) != windows {
		t.Fatalf("got %d closes, want %d", len(closes), windows)
	}
	for i := 1; i < len(closes); i++ {
		if closes[i] != closes[i-1]+minute {
			t.Fatalf("closes out of order at %d: %v", i, closes[:i+1])
		}
	}
}

// TestParallelUnsubscribeAndClose checks worker teardown: Unsubscribe
// stops a worker without affecting others, Close drains the rest, and both
// are idempotent.
func TestParallelUnsubscribeAndClose(t *testing.T) {
	e := newParallelEnv(t, false, 2)
	pipe, _ := e.subscribe(t, `SELECT count(*) FROM url_stream <ADVANCE '1 minute'>`)
	_, out := e.subscribe(t, `SELECT url FROM url_stream <VISIBLE 1 ROWS ADVANCE 1 ROWS>`)

	e.hit(t, "/a", 10*minute, "ip1")
	e.rt.Unsubscribe(pipe)
	e.rt.Unsubscribe(pipe) // idempotent
	if got := e.rt.Stats().Pipelines; got != 1 {
		t.Fatalf("pipelines = %d, want 1", got)
	}
	e.hit(t, "/b", 11*minute, "ip1")
	if err := e.rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	expect(t, flatten(*out), "10:/a", "11:/b")
	if _, err := e.rt.Subscribe(pipe.Plan(), func(trace.Ctx, int64, []types.Row) error { return nil }); err == nil {
		t.Fatal("Subscribe after Close should fail")
	}
}

// TestParallelDerivedCascade runs a derived stream whose consumer also has
// a worker: the upstream worker's emission must flow through the derived
// source into the downstream worker, and Quiesce must wait for the whole
// cascade.
func TestParallelDerivedCascade(t *testing.T) {
	e := newParallelEnv(t, false, 2)
	schema := types.Schema{
		{Name: "n", Type: types.TypeInt},
		{Name: "stime", Type: types.TypeTimestamp},
	}
	if err := e.rt.RegisterSource("counts", schema, -1); err != nil {
		t.Fatal(err)
	}
	e.cat.CreateDerivedStream(&catalog.DerivedStream{Name: "counts", Schema: schema, CloseCol: 1})

	// Upstream CQ emits into the derived source from its worker.
	pl := mustPlan(t, e, `SELECT count(*), cq_close(*) FROM url_stream <ADVANCE '1 minute'>`)
	if _, err := e.rt.Subscribe(pl, e.rt.DerivedSink("counts")); err != nil {
		t.Fatal(err)
	}
	_, out := e.subscribe(t, `SELECT sum(n) FROM counts <SLICES 2 WINDOWS>`)

	e.hit(t, "/a", 10*minute, "ip1")
	e.hit(t, "/b", 10*minute+1, "ip1")
	e.hit(t, "/c", 11*minute+1, "ip1")
	if err := e.rt.Advance("url_stream", 13*minute); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.Quiesce(); err != nil {
		t.Fatal(err)
	}
	expect(t, flatten(*out),
		"11:2", // first emission alone
		"12:3", // windows closing at 11m (2 rows) + 12m (1 row)
		"13:1") // 12m (1 row) + 13m (0 rows, empty emission)
}

// mustPlan compiles a CQ statement without subscribing it.
func mustPlan(t *testing.T, e *env, src string) *plan.Plan {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pl, err := (&plan.Planner{Cat: e.cat}).BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return pl
}
