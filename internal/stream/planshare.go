package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamrel/internal/exec"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// Plan-level sharing: continuous queries whose plans are identical after
// canonicalization — or subsumed: same stream, window and slice
// fingerprint with a per-subscriber residual filter/projection — register
// as subscribers of ONE shared host pipeline instead of spawning their
// own. The host owns the window state (incremental IVM state when the
// plan is delta-eligible, shared slice partials otherwise) and, at each
// window close, computes the merged aggregate rows once; subscribers are
// grouped by their post-stage key (residual filters, HAVING, projection,
// ORDER BY, LIMIT) and each distinct post stage runs once, its output
// delivered to every subscriber in that set. 10k identical dashboards
// therefore maintain one delta state and execute one plan per fire —
// per-CQ cost is one sink call — while subsumed variants add only their
// own post stage.
//
// Subscribers ("members") are not in the source fan-out list: they see no
// row delivery, hold no buffers and get no mailbox, so ingest cost does
// not scale with membership. Member sinks run on whatever goroutine fires
// the host (producer in synchronous mode, a pool worker or the producer
// in parallel mode); rows in a delivered batch are shared across the
// set's members and must be treated as immutable.
type planGroup struct {
	key  string
	host *Pipeline

	// mu serializes fanout against attach/detach, so unsubscribing one
	// member never races a fire delivering to it.
	mu   sync.Mutex
	sets []*postSet
	n    atomic.Int64 // member count, readable without mu

	// outs is fanout's per-fire scratch (guarded by mu).
	outs []setOut
}

// postSet is the subscribers sharing one canonical post stage.
type postSet struct {
	key     string
	members []*Pipeline
	run     []*Pipeline // per-fire scratch: live members (guarded by group mu)
}

type setOut struct {
	out []types.Row
	run []*Pipeline
}

// planGroupKey identifies one shared pipeline: slice fingerprint plus the
// exact window geometry (members share window state, so the window must
// match exactly — unlike slice sharing, which only requires ADVANCE).
func planGroupKey(fp string, advance, visible int64) string {
	return fmt.Sprintf("%s@%d/%d", fp, advance, visible)
}

func (g *planGroup) attach(m *Pipeline, postKey string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range g.sets {
		if s.key == postKey {
			s.members = append(s.members, m)
			g.n.Add(1)
			return
		}
	}
	g.sets = append(g.sets, &postSet{key: postKey, members: []*Pipeline{m}})
	g.n.Add(1)
}

func (g *planGroup) detach(m *Pipeline) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for si, s := range g.sets {
		for i, x := range s.members {
			if x == m {
				last := len(s.members) - 1
				s.members[i] = s.members[last]
				s.members[last] = nil
				s.members = s.members[:last]
				if len(s.members) == 0 {
					g.sets = append(g.sets[:si], g.sets[si+1:]...)
				}
				g.n.Add(-1)
				return
			}
		}
	}
}

// clearMembers empties the group (host failure cascade) and returns the
// orphaned members.
func (g *planGroup) clearMembers() []*Pipeline {
	g.mu.Lock()
	defer g.mu.Unlock()
	var ms []*Pipeline
	for _, s := range g.sets {
		ms = append(ms, s.members...)
	}
	g.sets = nil
	g.n.Store(0)
	return ms
}

// fireGroup is the host's window close: compute the merged aggregate rows
// once from the host's state, then fan the post stages out to members.
func (p *Pipeline) fireGroup(g *planGroup, c int64) error {
	if p.ivm != nil {
		aggRows, touched, err := p.ivm.Fire()
		if err != nil {
			return err
		}
		if p.ivmTouched != nil {
			p.ivmTouched.Add(int64(touched))
		}
		if err := g.fanout(p, c, aggRows, true); err != nil {
			return err
		}
		return p.ivm.Expire(c + p.win.Advance - p.win.Visible)
	}
	if p.shared != nil {
		aggRows, err := p.shared.windowRows(c, p.win.Visible)
		if err != nil {
			return err
		}
		return g.fanout(p, c, aggRows, false)
	}
	return fmt.Errorf("stream: plan-group host has no shared window state")
}

// fanout runs one post stage per distinct PostKey over the host's merged
// aggregate rows and delivers each output to its set's live members. A
// member whose post stage or sink fails is marked failed and skipped —
// isolation: one subscriber's failure never disturbs the host's state or
// its peers — and the source sweeps it out on the next producer call.
// Trace spans and the fire histogram are recorded once per host fire
// (member count is a fan-out width, not extra windows).
func (g *planGroup) fanout(host *Pipeline, c int64, aggRows []types.Row, presorted bool) error {
	tr := host.rt.tracer
	var start time.Time
	if host.fireHist != nil || tr != nil {
		start = time.Now()
	}
	ctx := host.rt.snapshotCtx(c)
	g.mu.Lock()
	defer g.mu.Unlock()
	outs := g.outs[:0]
	rows := 0
	for _, set := range g.sets {
		run := set.run[:0]
		for _, m := range set.members {
			if c > m.resumeAfter && !m.failed.Load() {
				run = append(run, m)
			}
		}
		set.run = run
		if len(run) == 0 {
			continue
		}
		out, err := exec.Drain(ctx, run[0].plan.StreamAgg.PostBuild(aggRows, presorted))
		if err != nil {
			err = fmt.Errorf("stream: window close at %d: %w", c, err)
			for _, m := range run {
				m.failErr = err
				m.failed.Store(true)
				host.src.failedMembers.Add(1)
			}
			continue
		}
		rows += len(out)
		outs = append(outs, setOut{out: out, run: run})
	}
	g.outs = outs
	host.windowsFired.Inc()
	if tr == nil {
		g.deliver(host, trace.Ctx{}, c, outs)
		if host.fireHist != nil {
			host.fireHist.ObserveSince(start)
		}
		return nil
	}
	execDone := time.Now()
	tc, slow := host.takeFireCtx(tr, execDone)
	g.deliver(host, tc, c, outs)
	end := time.Now()
	if host.fireHist != nil {
		host.fireHist.Observe(end.Sub(start).Seconds())
	}
	if tc.ID != 0 {
		tr.Record(trace.Span{Trace: tc.ID, Stage: trace.StageWindowFire, Stream: host.src.name,
			Pipe: host.id, Start: start.UnixMicro(), Dur: execDone.Sub(start).Nanoseconds(),
			Rows: rows, Slow: slow, Mode: host.mode()})
		tr.Record(trace.Span{Trace: tc.ID, Stage: trace.StageCQDeliver, Stream: host.src.name,
			Pipe: host.id, Start: execDone.UnixMicro(), Dur: end.Sub(execDone).Nanoseconds(),
			Rows: rows, Slow: slow})
	}
	if slow {
		tr.SlowFire(host.src.name, host.id, tc.ID, time.Duration(end.UnixNano()-tc.Ingest),
			execDone.Sub(start), end.Sub(execDone), rows)
	}
	return nil
}

// deliver hands each set's output to its members. The output slice is
// shared across a set (rows are immutable); a failing sink marks only its
// own member.
func (g *planGroup) deliver(host *Pipeline, tc trace.Ctx, c int64, outs []setOut) {
	for _, so := range outs {
		for _, m := range so.run {
			if m.failed.Load() {
				continue
			}
			if err := m.sink(tc, c, so.out); err != nil {
				m.failErr = err
				m.failed.Store(true)
				host.src.failedMembers.Add(1)
				continue
			}
			m.windowsFired.Inc()
		}
	}
}
