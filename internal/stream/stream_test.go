package stream

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"streamrel/internal/catalog"
	"streamrel/internal/plan"
	"streamrel/internal/sql"
	"streamrel/internal/trace"
	"streamrel/internal/txn"
	"streamrel/internal/types"
)

const minute = int64(60_000_000) // microseconds

// batch is one captured window result.
type batch struct {
	close int64
	rows  []types.Row
}

type env struct {
	cat *catalog.Catalog
	mgr *txn.Manager
	rt  *Runtime
}

func newEnv(t *testing.T, sharing bool) *env {
	t.Helper()
	e := &env{cat: catalog.New(), mgr: txn.NewManager(), rt: NewRuntime(txnMgr(), sharing)}
	e.rt.mgr = e.mgr
	if _, err := e.cat.CreateStream("url_stream", types.Schema{
		{Name: "url", Type: types.TypeString},
		{Name: "atime", Type: types.TypeTimestamp},
		{Name: "client_ip", Type: types.TypeString},
	}, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.RegisterSource("url_stream", types.Schema{
		{Name: "url", Type: types.TypeString},
		{Name: "atime", Type: types.TypeTimestamp},
		{Name: "client_ip", Type: types.TypeString},
	}, 1); err != nil {
		t.Fatal(err)
	}
	return e
}

func txnMgr() *txn.Manager { return txn.NewManager() }

// subscribe compiles a CQ and collects its output batches.
func (e *env) subscribe(t *testing.T, src string) (*Pipeline, *[]batch) {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := &plan.Planner{Cat: e.cat}
	pl, err := p.BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	out := &[]batch{}
	pipe, err := e.rt.Subscribe(pl, func(_ trace.Ctx, c int64, rows []types.Row) error {
		*out = append(*out, batch{c, rows})
		return nil
	})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	return pipe, out
}

// hit pushes one url_stream event.
func (e *env) hit(t *testing.T, url string, ts int64, ip string) {
	t.Helper()
	err := e.rt.Push("url_stream", types.Row{
		types.NewString(url), types.NewTimestampMicros(ts), types.NewString(ip),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func flatten(bs []batch) []string {
	var out []string
	for _, b := range bs {
		for _, r := range b.rows {
			out = append(out, fmt.Sprintf("%d:%s", b.close/minute, r.String()))
		}
	}
	return out
}

func expect(t *testing.T, got []string, want ...string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("got:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestTumblingWindowCounts exercises Figure 1: each window produces a
// relation; the query runs over each in turn.
func TestTumblingWindowCounts(t *testing.T) {
	e := newEnv(t, true)
	_, out := e.subscribe(t, `SELECT url, count(*) FROM url_stream <ADVANCE '1 minute'> GROUP BY url`)

	e.hit(t, "/a", 10*minute+1, "ip1")
	e.hit(t, "/a", 10*minute+2, "ip2")
	e.hit(t, "/b", 10*minute+3, "ip1")
	// Nothing fires until time passes the boundary.
	if len(*out) != 0 {
		t.Fatalf("window fired early: %v", *out)
	}
	e.hit(t, "/c", 11*minute+1, "ip1") // proves window [10m,11m) complete
	expect(t, flatten(*out), "11:/a|2", "11:/b|1")

	// Heartbeat closes the next window without data beyond /c.
	if err := e.rt.Advance("url_stream", 12*minute); err != nil {
		t.Fatal(err)
	}
	expect(t, flatten(*out), "11:/a|2", "11:/b|1", "12:/c|1")
}

// TestSlidingWindow checks VISIBLE 3m ADVANCE 1m contents.
func TestSlidingWindow(t *testing.T) {
	e := newEnv(t, false)
	_, out := e.subscribe(t, `SELECT count(*) FROM url_stream <VISIBLE '3 minutes' ADVANCE '1 minute'>`)

	e.hit(t, "/a", 10*minute, "x")            // in windows closing at 11,12,13
	e.hit(t, "/b", 11*minute+30_000_000, "x") // in 12,13,14
	e.rt.Advance("url_stream", 15*minute)
	// Closes at 11..15: counts 1,2,2,1,0.
	expect(t, flatten(*out), "11:1", "12:2", "13:2", "14:1", "15:0")
}

// TestScalarAggEmptyWindow: scalar aggregates produce a default row even
// for empty windows, like a snapshot query over an empty table.
func TestScalarAggEmptyWindow(t *testing.T) {
	for _, sharing := range []bool{true, false} {
		e := newEnv(t, sharing)
		pipe, out := e.subscribe(t, `SELECT count(*), sum(length(url)) FROM url_stream <ADVANCE '1 minute'>`)
		if sharing != pipe.Shared() {
			t.Fatalf("sharing=%v but pipe.Shared()=%v", sharing, pipe.Shared())
		}
		e.rt.Advance("url_stream", 10*minute) // starts the clock
		e.rt.Advance("url_stream", 12*minute)
		got := flatten(*out)
		expect(t, got, "11:0|NULL", "12:0|NULL")
	}
}

// TestGroupedEmptyWindowProducesNoRows.
func TestGroupedEmptyWindowProducesNoRows(t *testing.T) {
	e := newEnv(t, true)
	_, out := e.subscribe(t, `SELECT url, count(*) FROM url_stream <ADVANCE '1 minute'> GROUP BY url`)
	e.rt.Advance("url_stream", 10*minute)
	e.rt.Advance("url_stream", 11*minute)
	if n := len(*out); n != 1 || len((*out)[0].rows) != 0 {
		t.Fatalf("expected one empty batch, got %+v", *out)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	e := newEnv(t, true)
	e.subscribe(t, `SELECT count(*) FROM url_stream <ADVANCE '1 minute'>`)
	e.hit(t, "/a", 10*minute, "x")
	err := e.rt.Push("url_stream", types.Row{
		types.NewString("/b"), types.NewTimestampMicros(9 * minute), types.NewString("x"),
	})
	if err == nil {
		t.Fatal("out-of-order row accepted")
	}
	// Equal timestamps are fine.
	e.hit(t, "/c", 10*minute, "x")
}

func TestCQCloseValue(t *testing.T) {
	e := newEnv(t, true)
	_, out := e.subscribe(t, `SELECT url, count(*) AS scnt, cq_close(*) FROM url_stream <ADVANCE '1 minute'> GROUP BY url`)
	e.hit(t, "/a", 10*minute+5, "x")
	e.rt.Advance("url_stream", 11*minute)
	rows := (*out)[0].rows
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0][2].TimestampMicros() != 11*minute {
		t.Fatalf("cq_close = %v, want 11 minutes", rows[0][2])
	}
}

func TestRowWindow(t *testing.T) {
	e := newEnv(t, true)
	_, out := e.subscribe(t, `SELECT count(*), min(url), max(url) FROM url_stream <VISIBLE 3 ROWS ADVANCE 2 ROWS>`)
	for i := 0; i < 6; i++ {
		e.hit(t, fmt.Sprintf("/u%d", i), int64(i+1)*minute, "x")
	}
	// Fires after rows 2, 4, 6 with the last min(3, seen) rows visible.
	got := flatten(*out)
	expect(t, got,
		"2:2|/u0|/u1",
		"4:3|/u1|/u3",
		"6:3|/u3|/u5")
}

// TestSharedMatchesUnshared is the central sharing property: identical
// queries, shared vs unshared, over identical random input, produce
// identical batches.
func TestSharedMatchesUnshared(t *testing.T) {
	queries := []string{
		`SELECT url, count(*) FROM url_stream <VISIBLE '3 minutes' ADVANCE '1 minute'> GROUP BY url`,
		`SELECT url, count(*), sum(length(client_ip)), min(client_ip), max(client_ip)
		   FROM url_stream <VISIBLE '2 minutes' ADVANCE '1 minute'>
		   WHERE url LIKE '/p%' GROUP BY url HAVING count(*) >= 1`,
		`SELECT count(distinct url) FROM url_stream <VISIBLE '4 minutes' ADVANCE '2 minutes'>`,
		`SELECT url, avg(length(client_ip)) FROM url_stream <ADVANCE '1 minute'> GROUP BY url ORDER BY url`,
		`SELECT url, stddev(length(client_ip)) FROM url_stream <VISIBLE '3 minutes' ADVANCE '1 minute'> GROUP BY url`,
	}
	r := rand.New(rand.NewSource(42))
	var events []types.Row
	ts := 100 * minute
	for i := 0; i < 2000; i++ {
		ts += int64(r.Intn(3000000)) // 0-3s gaps
		events = append(events, types.Row{
			types.NewString(fmt.Sprintf("/p%d", r.Intn(20))),
			types.NewTimestampMicros(ts),
			types.NewString(fmt.Sprintf("10.0.0.%d", r.Intn(50))),
		})
	}
	end := ts + 10*minute

	for qi, q := range queries {
		var results [2][]batch
		for mode := 0; mode < 2; mode++ {
			e := newEnv(t, mode == 0)
			pipe, out := e.subscribe(t, q)
			if mode == 0 && !pipe.Shared() {
				t.Fatalf("query %d: expected shared path", qi)
			}
			if mode == 1 && pipe.Shared() {
				t.Fatalf("query %d: sharing disabled but still shared", qi)
			}
			for _, ev := range events {
				if err := e.rt.Push("url_stream", ev); err != nil {
					t.Fatal(err)
				}
			}
			e.rt.Advance("url_stream", end)
			results[mode] = *out
		}
		a, b := flatten(results[0]), flatten(results[1])
		if strings.Join(a, "\n") != strings.Join(b, "\n") {
			t.Errorf("query %d: shared and unshared outputs differ\nshared: %d lines\nunshared: %d lines",
				qi, len(a), len(b))
			for i := 0; i < len(a) && i < len(b); i++ {
				if a[i] != b[i] {
					t.Errorf("first diff at %d: shared=%q unshared=%q", i, a[i], b[i])
					break
				}
			}
		}
	}
}

// TestSharingDeduplicatesWork: k identical CQs share one slice
// aggregation.
func TestSharingDeduplicatesWork(t *testing.T) {
	e := newEnv(t, true)
	const k = 5
	var outs []*[]batch
	for i := 0; i < k; i++ {
		_, out := e.subscribe(t, `SELECT url, count(*) FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url`)
		outs = append(outs, out)
	}
	// Plan-level sharing folds the k identical CQs into ONE group host;
	// that host is the sole member of the slice aggregation.
	st := e.rt.Stats()
	if st.PlanGroups != 1 || st.PlanSubscribers != k {
		t.Fatalf("stats: %+v", st)
	}
	if st.SharedAggs != 1 || st.SharedMembers != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Pipelines != k {
		t.Fatalf("stats: %+v", st)
	}
	e.hit(t, "/a", 10*minute, "x")
	e.rt.Advance("url_stream", 11*minute)
	for i, out := range outs {
		if len(*out) != 1 || len((*out)[0].rows) != 1 {
			t.Fatalf("subscriber %d: %+v", i, *out)
		}
	}
	// Different window extents still share slices when ADVANCE matches:
	// the new extent gets its own plan group whose host joins the SAME
	// slice aggregation — the two sharing layers compose.
	_, _ = e.subscribe(t, `SELECT url, count(*) FROM url_stream <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url`)
	if st := e.rt.Stats(); st.SharedAggs != 1 || st.SharedMembers != 2 ||
		st.PlanGroups != 2 || st.PlanSubscribers != k+1 {
		t.Fatalf("stats after mixed-visible subscribe: %+v", st)
	}
}

func TestUnsubscribe(t *testing.T) {
	e := newEnv(t, true)
	pipe, out := e.subscribe(t, `SELECT count(*) FROM url_stream <ADVANCE '1 minute'>`)
	e.hit(t, "/a", 10*minute, "x")
	e.rt.Unsubscribe(pipe)
	e.rt.Advance("url_stream", 12*minute)
	if len(*out) != 0 {
		t.Fatalf("unsubscribed pipeline fired: %v", *out)
	}
	if st := e.rt.Stats(); st.Pipelines != 0 || st.SharedAggs != 0 {
		t.Fatalf("stats after unsubscribe: %+v", st)
	}
}

func TestResumeAfterSuppressesOldWindows(t *testing.T) {
	e := newEnv(t, false)
	pipe, out := e.subscribe(t, `SELECT count(*) FROM url_stream <ADVANCE '1 minute'>`)
	pipe.ResumeAfter(11 * minute)
	e.hit(t, "/a", 10*minute+1, "x")
	e.rt.Advance("url_stream", 13*minute)
	// Window closing at 11 suppressed; 12 and 13 fire.
	got := flatten(*out)
	expect(t, got, "12:0", "13:0")
}

func TestSlicesWindowOverDerived(t *testing.T) {
	e := newEnv(t, true)
	// Register a derived-style source (timestamps supplied per emission).
	schema := types.Schema{
		{Name: "url", Type: types.TypeString},
		{Name: "scnt", Type: types.TypeInt},
		{Name: "stime", Type: types.TypeTimestamp},
	}
	if err := e.rt.RegisterSource("urls_now", schema, -1); err != nil {
		t.Fatal(err)
	}
	e.cat.CreateDerivedStream(&catalog.DerivedStream{Name: "urls_now", Schema: schema, CloseCol: 2})

	_, out := e.subscribe(t, `SELECT sum(scnt), cq_close(*) FROM urls_now <SLICES 2 WINDOWS>`)

	emit := func(c int64, counts ...int64) {
		var rows []types.Row
		for i, n := range counts {
			rows = append(rows, types.Row{
				types.NewString(fmt.Sprintf("/u%d", i)), types.NewInt(n), types.NewTimestampMicros(c),
			})
		}
		// emitDerived locks the derived source itself, so it may be
		// called from any goroutine.
		if err := e.rt.emitDerived(trace.Ctx{}, "urls_now", c, rows); err != nil {
			t.Fatal(err)
		}
	}
	emit(11*minute, 3, 4) // window = last 2 emissions (only 1 so far): sum=7
	emit(12*minute, 5)    // sum over last 2 emissions = 12
	emit(13*minute, 1)    // sum = 6

	got := flatten(*out)
	expect(t, got,
		"11:7|1970-01-01 00:11:00.000000",
		"12:12|1970-01-01 00:12:00.000000",
		"13:6|1970-01-01 00:13:00.000000")
}

func TestRuntimeErrors(t *testing.T) {
	e := newEnv(t, true)
	if err := e.rt.Push("nope", types.Row{}); err == nil {
		t.Fatal("push to unknown stream")
	}
	if err := e.rt.Advance("nope", 0); err == nil {
		t.Fatal("advance unknown stream")
	}
	if err := e.rt.RegisterSource("url_stream", nil, 0); err == nil {
		t.Fatal("duplicate source")
	}
	if err := e.rt.Push("url_stream", types.Row{types.NewString("x")}); err == nil {
		t.Fatal("arity mismatch")
	}
	// Wrong type in CQTIME column.
	err := e.rt.Push("url_stream", types.Row{
		types.NewString("/a"), types.NewInt(5), types.NewString("x"),
	})
	if err == nil {
		t.Fatal("non-timestamp cqtime accepted")
	}
}

func TestPushBatch(t *testing.T) {
	e := newEnv(t, true)
	_, out := e.subscribe(t, `SELECT count(*) FROM url_stream <ADVANCE '1 minute'>`)
	rows := []types.Row{
		{types.NewString("/a"), types.NewTimestampMicros(10 * minute), types.NewString("x")},
		{types.NewString("/b"), types.NewTimestampMicros(10*minute + 1), types.NewString("x")},
		{types.NewString("/c"), types.NewTimestampMicros(11 * minute), types.NewString("x")},
	}
	if err := e.rt.PushBatch("url_stream", rows); err != nil {
		t.Fatal(err)
	}
	expect(t, flatten(*out), "11:2")
}

// TestWindowConsistency: table updates become visible to a CQ only at
// window boundaries (paper §4 / ref [6]).
func TestWindowConsistency(t *testing.T) {
	e := newEnv(t, false)
	dim, err := e.cat.CreateTable("dim", types.Schema{
		{Name: "url", Type: types.TypeString},
		{Name: "label", Type: types.TypeString},
	})
	if err != nil {
		t.Fatal(err)
	}
	insert := func(url, label string) {
		tx := e.mgr.Begin()
		dim.Heap.Insert(tx.ID, types.Row{types.NewString(url), types.NewString(label)})
		tx.Commit()
	}
	insert("/a", "alpha")

	_, out := e.subscribe(t, `
		SELECT s.url, d.label FROM url_stream <ADVANCE '1 minute'> s
		LEFT JOIN dim d ON s.url = d.url`)

	e.hit(t, "/a", 10*minute, "x")
	e.hit(t, "/b", 10*minute+1, "x")
	e.rt.Advance("url_stream", 11*minute)
	// First window: /b unmatched.
	expect(t, flatten(*out), "11:/a|alpha", "11:/b|NULL")

	// Update the table between boundaries: visible at the NEXT boundary.
	insert("/b", "beta")
	e.hit(t, "/b", 11*minute+1, "x")
	e.rt.Advance("url_stream", 12*minute)
	expect(t, flatten(*out), "11:/a|alpha", "11:/b|NULL", "12:/b|beta")
}
