// Package stream implements the continuous-query runtime: stream sources,
// window processing ("windows produce a sequence of tables", paper Fig. 1),
// derived streams, channels into Active Tables, and shared slice-based
// aggregation across continuous queries (paper refs [4],[12]).
//
// Execution model: stream time is driven by data (CQTIME values) and by
// explicit heartbeats. Sources require non-decreasing timestamps; when
// time reaches a window boundary, the window's rows are materialized as a
// relation and the query plan — the same iterator operators used by
// snapshot queries — runs over it under a fresh MVCC snapshot (window
// consistency, paper §4).
//
// Concurrency: the runtime keeps a read-mostly source registry behind an
// RWMutex, and each source carries its own mutex, so pushes to distinct
// streams never contend. Within one source, delivery has two modes. In the
// default synchronous mode every subscribed pipeline runs on the pushing
// goroutine in subscription order, which makes whole-engine execution
// deterministic. With SetParallel, each non-shared pipeline instead gets a
// bounded mailbox of micro-batches (blocking backpressure on producers)
// drained by a work-stealing scheduler: a fixed pool of workers (default
// GOMAXPROCS, see SetSchedWorkers) with per-worker deques and steal-half
// rebalancing, so 10k mostly idle pipelines cost 10k mailboxes, not 10k
// goroutines. A mailbox is executed by at most one worker at a time and
// rows for a given pipeline are still applied in arrival order, so per-CQ
// results are identical to the synchronous mode, while fan-out to N
// continuous queries uses up to GOMAXPROCS cores instead of one.
//
// On top of delivery, plan-level sharing (SetPlanSharing) folds continuous
// queries whose canonical plans are identical — or subsumed, differing
// only in residual filters/projections hoisted past the aggregate — into
// one host pipeline that owns the window state; subscribers receive the
// host's fires through per-shape post stages (see planshare.go).
package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamrel/internal/exec"
	"streamrel/internal/metrics"
	"streamrel/internal/plan"
	"streamrel/internal/sql"
	"streamrel/internal/trace"
	"streamrel/internal/txn"
	"streamrel/internal/types"
)

// Sink receives the rows produced by one window close of a continuous
// query, together with the trace context of the sampled batch that
// proved the window complete (the zero Ctx when none was sampled) — so
// downstream hops (channel WAL writes, derived-stream deliveries) join
// the same span chain. In parallel mode a sink runs on whichever
// scheduler worker is executing its pipeline's mailbox; it must not call
// back into the pipeline's own stream.
type Sink func(tc trace.Ctx, closeTS int64, rows []types.Row) error

// LatePolicy decides what happens to a row whose timestamp precedes the
// stream's high-water mark. The paper's streams are "ordered on an
// attribute"; real feeds occasionally violate that, so deployments choose
// a policy.
type LatePolicy uint8

// Late-row policies.
const (
	// LateReject returns an error to the producer (default: disorder is a
	// bug in the feed).
	LateReject LatePolicy = iota
	// LateDrop silently discards late rows, counting them in Stats.
	LateDrop
	// LateClamp advances the row's timestamp to the high-water mark so it
	// lands in the current window.
	LateClamp
)

// Runtime owns every stream source and continuous query.
//
// Locking order: Runtime.mu (registry) is never held while a source mutex
// is taken for delivery; source mutexes are acquired one at a time except
// through derived-stream emission, where the producer-side lock of the
// derived source is taken while an upstream source's lock (or worker) is
// active. Derived streams form a DAG, so that ordering is acyclic.
type Runtime struct {
	mu      sync.RWMutex // guards sources map and closed flag
	sources map[string]*source
	closed  bool

	mgr *txn.Manager
	// Sharing enables shared slice aggregation across CQs with identical
	// fingerprints (the paper's "Jellybean" shared processing). It can be
	// disabled to measure its benefit (experiment E3).
	sharing bool
	// ivm enables incremental view maintenance: delta-eligible pipelines
	// maintain materialized per-group aggregates and fire from state.
	ivm bool
	// planShare enables plan-level sharing: CQs with identical (or
	// subsumed) canonical plans subscribe to one shared host pipeline
	// instead of spawning their own (see planshare.go). Defaults to the
	// sharing flag; requires sharing for the host's fallback state.
	planShare bool
	// parallel is the per-pipeline mailbox backpressure bound in
	// micro-batches; 0 keeps the fully synchronous engine.
	parallel int
	// schedWorkers sizes the work-stealing pool (0 = GOMAXPROCS); the
	// pool itself is created lazily on the first worker-mode subscribe.
	schedWorkers int
	schedMu      sync.Mutex
	sched        *scheduler
	now          func() time.Time
	// Late is the disorder policy applied to all sources. Set before
	// pushing begins.
	Late LatePolicy

	// OnIngest, when set, observes every batch accepted into a base stream
	// (after validation and late-policy filtering) along with its trace
	// context, and OnAdvance observes every effective heartbeat. Both run
	// under the source lock, so the observation order is exactly the
	// delivery order for that stream. Replication ships these events to
	// replicas (carrying the trace ID across the wire); derived-stream
	// emissions are deliberately not reported, because a replica
	// re-derives them by running its own pipelines. Set both before
	// pushing begins.
	OnIngest  func(tc trace.Ctx, stream string, rows []types.Row)
	OnAdvance func(stream string, ts int64)

	// tracer samples batches into the end-to-end span pipeline; nil
	// disables tracing. Set before pushing begins.
	tracer *trace.Tracer

	// reg is the metrics registry; nil disables registration (standalone
	// handles keep counting for Stats). Set before sources register.
	reg *metrics.Registry
	// lateDropped counts rows discarded by LateDrop. It doubles as the
	// streamrel_stream_late_dropped_total series when a registry is set.
	lateDropped *metrics.Counter
	// nextPipeID labels pipelines in per-pipeline metric series.
	nextPipeID atomic.Int64
}

// NewRuntime creates a runtime bound to the transaction manager (window
// consistency takes its snapshots there).
func NewRuntime(mgr *txn.Manager, sharing bool) *Runtime {
	return &Runtime{
		sources:     make(map[string]*source),
		mgr:         mgr,
		sharing:     sharing,
		planShare:   sharing,
		now:         time.Now,
		lateDropped: &metrics.Counter{},
	}
}

// SetPlanSharing toggles plan-level sharing independently of slice
// sharing (experiments isolate the two layers). It has no effect when
// slice sharing is disabled — a group host needs the shared machinery as
// its fallback window state. Call once, before subscribing.
func (r *Runtime) SetPlanSharing(on bool) { r.planShare = on }

// SetMetrics binds the runtime to a metrics registry so stream, pipeline
// and window-fire series register there. Call once, before sources are
// registered; a nil registry keeps instrumentation local (Stats still
// works, nothing is exported).
func (r *Runtime) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r.reg = reg
	r.lateDropped = reg.Counter("streamrel_stream_late_dropped_total",
		"rows discarded by the LateDrop disorder policy")
	sources := func() float64 {
		r.mu.RLock()
		n := len(r.sources)
		r.mu.RUnlock()
		return float64(n)
	}
	pipelines := func() float64 {
		n := 0
		for _, src := range r.snapshotSources() {
			src.mu.Lock()
			n += len(src.pipes) - len(src.groups) + len(src.members)
			src.mu.Unlock()
		}
		return float64(n)
	}
	reg.GaugeFunc("streamrel_stream_sources", "registered stream sources", sources)
	reg.GaugeFunc("streamrel_stream_pipelines", "live continuous-query pipelines", pipelines)
	reg.GaugeFunc("streamrel_plan_groups",
		"plan-sharing groups (one shared host pipeline each)", func() float64 {
			n := 0
			for _, src := range r.snapshotSources() {
				src.mu.Lock()
				n += len(src.groups)
				src.mu.Unlock()
			}
			return float64(n)
		})
	reg.GaugeFunc("streamrel_plan_subscribers",
		"continuous queries subscribed to plan-sharing groups", func() float64 {
			n := 0
			for _, src := range r.snapshotSources() {
				src.mu.Lock()
				n += len(src.members)
				src.mu.Unlock()
			}
			return float64(n)
		})
}

// SetTracer binds the runtime to a tracer: ingested batches get sampled
// trace contexts and every hop records spans. Call once, before pushing
// begins; nil keeps tracing disabled.
func (r *Runtime) SetTracer(t *trace.Tracer) { r.tracer = t }

// SetIVM enables incremental view maintenance: every subsequently
// subscribed pipeline whose plan is delta-eligible (plan.DeltaProgram)
// maintains materialized per-group aggregates — insert deltas per row,
// retract deltas per expired slice — and fires from state in O(groups)
// instead of re-executing over O(window rows). Eligible pipelines prefer
// this over shared slice aggregation. Call once, before subscribing.
func (r *Runtime) SetIVM(on bool) { r.ivm = on }

// SetParallel switches the runtime into parallel continuous-query mode:
// every subsequently subscribed non-shared pipeline gets a mailbox fed
// with micro-batch tasks (bounded at depth on the producer path —
// blocking backpressure) and is executed by the shared work-stealing
// worker pool. Pipelines that join a shared slice aggregation keep
// running synchronously on the producer — the shared state is the point
// of sharing. Call once, before subscribing.
func (r *Runtime) SetParallel(depth int) {
	if depth < 1 {
		depth = 0
	}
	r.parallel = depth
}

// SetSchedWorkers sizes the work-stealing pool used in parallel mode; 0
// (the default) means GOMAXPROCS. Call once, before subscribing.
func (r *Runtime) SetSchedWorkers(n int) { r.schedWorkers = n }

// SchedWorkers reports the effective pool size for EXPLAIN and stats.
func (r *Runtime) SchedWorkers() int {
	if r.schedWorkers > 0 {
		return r.schedWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// ensureSched creates the work-stealing pool on the first worker-mode
// subscribe (by then SetMetrics and SetSchedWorkers have run).
func (r *Runtime) ensureSched() {
	r.schedMu.Lock()
	if r.sched == nil {
		r.sched = newScheduler(r.schedWorkers, r.reg)
	}
	r.schedMu.Unlock()
}

// Parallel reports whether parallel continuous-query mode is enabled.
func (r *Runtime) Parallel() bool { return r.parallel > 0 }

// source is the fan-out point for one stream (base or derived). Its mutex
// serializes pushes, heartbeats, subscription changes and tap changes for
// this stream only.
type source struct {
	name      string
	schema    types.Schema
	cqtimeCol int // -1: timestamps supplied by the pusher (derived streams)

	mu      sync.Mutex
	lastTS  int64
	hasTS   bool
	pipes   []*Pipeline
	workers int // number of pipes with a worker goroutine
	taps    []*Sink
	shared  map[string]*sharedAgg // key: fingerprint + advance

	// Plan-level sharing. Group hosts live in pipes (they are the ones
	// fed rows); members live only here, so delivery cost is O(hosts) no
	// matter how many CQs subscribe. failedMembers counts members whose
	// post stage or sink failed asynchronously during a fanout, letting
	// sweepFailedLocked skip the member scan on the common path. retired
	// holds hosts detached under the source lock (a host must never be
	// stopped while it is held); whoever drops the lock stops them.
	groups        map[string]*planGroup // key: fingerprint @ advance / visible
	members       []*Pipeline
	failedMembers atomic.Int64
	retired       []*Pipeline

	// rows counts validated rows accepted into this stream
	// (streamrel_stream_rows_total{stream=…}; nil without a registry).
	rows *metrics.Counter

	// internal marks engine-owned telemetry streams (the sys.* namespace):
	// their ingest is excluded from user-facing stream counters, the
	// tracer, and replication, so telemetry about the system never feeds
	// back into the signals it reports (no self-amplification).
	internal bool
}

// RegisterSource declares a stream. cqtimeCol is the index of the CQTIME
// column, or -1 when timestamps arrive out of band (derived streams).
func (r *Runtime) RegisterSource(name string, schema types.Schema, cqtimeCol int) error {
	return r.registerSource(name, schema, cqtimeCol, false)
}

// RegisterInternalSource declares an engine-owned telemetry stream. Its
// rows count under streamrel_sysmon_rows_total (not the user-facing
// streamrel_stream_rows_total), and its batches skip trace sampling and
// replication publish — see source.internal.
func (r *Runtime) RegisterInternalSource(name string, schema types.Schema, cqtimeCol int) error {
	return r.registerSource(name, schema, cqtimeCol, true)
}

func (r *Runtime) registerSource(name string, schema types.Schema, cqtimeCol int, internal bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[name]; ok {
		return fmt.Errorf("stream: source %q already registered", name)
	}
	rowsName, rowsHelp := "streamrel_stream_rows_total", "rows accepted into a stream after validation"
	if internal {
		rowsName, rowsHelp = "streamrel_sysmon_rows_total", "telemetry rows self-ingested into a sys.* stream"
	}
	r.sources[name] = &source{
		name:      name,
		schema:    schema,
		cqtimeCol: cqtimeCol,
		internal:  internal,
		shared:    make(map[string]*sharedAgg),
		groups:    make(map[string]*planGroup),
		rows:      r.reg.Counter(rowsName, rowsHelp, metrics.L("stream", name)),
	}
	return nil
}

// DropSource removes a stream, detaches its subscribers and stops their
// workers.
func (r *Runtime) DropSource(name string) {
	r.mu.Lock()
	src := r.sources[name]
	delete(r.sources, name)
	r.mu.Unlock()
	if src == nil {
		return
	}
	src.mu.Lock()
	pipes := src.pipes
	pipes = append(pipes, src.members...)
	pipes = append(pipes, src.retired...)
	src.pipes, src.workers = nil, 0
	src.members, src.retired = nil, nil
	src.groups = make(map[string]*planGroup)
	src.mu.Unlock()
	for _, pipe := range pipes {
		pipe.stop()
	}
}

// HasSource reports whether name is a registered stream.
func (r *Runtime) HasSource(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.sources[name]
	return ok
}

// lookup resolves a source name under the registry read lock.
func (r *Runtime) lookup(stream string) (*source, error) {
	r.mu.RLock()
	src, ok := r.sources[stream]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("stream: unknown stream %q", stream)
	}
	return src, nil
}

// snapshotSources copies the registry contents under the read lock.
func (r *Runtime) snapshotSources() []*source {
	r.mu.RLock()
	out := make([]*source, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s)
	}
	r.mu.RUnlock()
	return out
}

// Subscribe attaches a compiled continuous query to its stream and returns
// the pipeline handle. The plan must reference a stream.
//
// Subscription-time semantics: a new CQ starts observing from the next
// arriving event. Its earliest windows may be partial with respect to
// history — in unshared mode the buffer starts empty; in shared mode the
// first windows may additionally see slices retained for longer-extent
// members. Queries needing exact history replay it from an archive table
// instead (INSERT INTO stream SELECT … ORDER BY ts).
func (r *Runtime) Subscribe(p *plan.Plan, sink Sink) (*Pipeline, error) {
	if p.Stream == nil {
		return nil, fmt.Errorf("stream: plan is not a continuous query")
	}
	r.mu.RLock()
	src, ok := r.sources[p.Stream.Name]
	closed := r.closed
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("stream: unknown stream %q", p.Stream.Name)
	}
	if closed {
		return nil, fmt.Errorf("stream: runtime is closed")
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	pipe, err := newPipeline(r, src, p, sink)
	if err != nil {
		return nil, err
	}
	if pipe.pg != nil {
		// Plan-group member: the host (created on demand inside
		// newPipeline) is the subscriber the source delivers to; the
		// member only receives post-stage fanout, so it joins the member
		// list and nothing else — registration cost is O(1) in the
		// existing subscriber count.
		src.members = append(src.members, pipe)
		return pipe, nil
	}
	if r.parallel > 0 && pipe.shared == nil {
		pipe.startWorker(r.parallel)
		src.workers++
	}
	src.pipes = append(src.pipes, pipe)
	return pipe, nil
}

// Unsubscribe detaches a pipeline and stops its worker, discarding any
// queued but unprocessed input.
func (r *Runtime) Unsubscribe(pipe *Pipeline) {
	src := pipe.src
	src.mu.Lock()
	src.detachLocked(pipe)
	retired := src.retired
	src.retired = nil
	src.mu.Unlock()
	pipe.stop()
	for _, h := range retired {
		h.stop()
	}
}

// detachLocked removes a pipeline from the fan-out lists. Detaching the
// last member of a plan group retires its host (the caller stops retired
// hosts after releasing s.mu); detaching a failed host orphans its
// members. Callers hold s.mu.
func (s *source) detachLocked(pipe *Pipeline) {
	if g := pipe.pg; g != nil {
		for i, m := range s.members {
			if m == pipe {
				s.members = append(s.members[:i], s.members[i+1:]...)
				break
			}
		}
		if pipe.failed.Load() {
			s.failedMembers.Add(-1)
		}
		g.detach(pipe)
		if g.n.Load() == 0 && s.groups[g.key] == g {
			s.detachLocked(g.host)
			s.retired = append(s.retired, g.host)
		}
		return
	}
	if g := pipe.hosting; g != nil {
		if s.groups[g.key] == g {
			delete(s.groups, g.key)
		}
		// Host failure cascade: the members' window state is gone, so they
		// are orphaned (their single shared error surfaces via the host).
		for _, m := range g.clearMembers() {
			for i, x := range s.members {
				if x == m {
					s.members = append(s.members[:i], s.members[i+1:]...)
					break
				}
			}
			if m.failed.Load() {
				s.failedMembers.Add(-1)
			}
		}
	}
	for i, p := range s.pipes {
		if p == pipe {
			s.pipes = append(s.pipes[:i], s.pipes[i+1:]...)
			if pipe.mbox != nil {
				s.workers--
			}
			break
		}
	}
	if pipe.shared != nil {
		pipe.shared.detach(pipe)
		if len(pipe.shared.members) == 0 {
			delete(s.shared, pipe.shared.key)
		}
	}
}

// sweepFailedLocked detaches pipelines whose workers failed asynchronously
// and returns their errors, so a failing sink surfaces on the next
// Push/Advance instead of poisoning the producer forever. Callers hold
// s.mu.
func (s *source) sweepFailedLocked() error {
	var errs []error
	for i := 0; i < len(s.pipes); {
		p := s.pipes[i]
		if p.mbox != nil && p.failed.Load() {
			s.detachLocked(p)
			p.stop() // failed workers only drain, so this returns promptly
			if err := p.takeErr(); err != nil {
				errs = append(errs, err)
			}
			continue
		}
		i++
	}
	// Plan-group members fail asynchronously inside fanout (their post
	// stage or sink); the counter keeps this scan off the common path.
	if s.failedMembers.Load() > 0 {
		for i := 0; i < len(s.members); {
			m := s.members[i]
			if m.failed.Load() {
				s.detachLocked(m)
				m.stop()
				if err := m.takeErr(); err != nil {
					errs = append(errs, err)
				}
				continue
			}
			i++
		}
	}
	return errors.Join(errs...)
}

// failLocked detaches a synchronously failing pipeline and propagates the
// error to the producer. Callers hold s.mu.
func (s *source) failLocked(pipe *Pipeline, err error) error {
	s.detachLocked(pipe)
	return err
}

// Push appends one row to a base stream. The row's CQTIME column supplies
// its timestamp; timestamps must be non-decreasing (the paper's streams
// are "ordered on an attribute").
func (r *Runtime) Push(stream string, row types.Row) error {
	src, err := r.lookup(stream)
	if err != nil {
		return err
	}
	one := [1]types.Row{row}
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.deliver(r, trace.Ctx{}, one[:], 0, false)
}

// PushBatch appends rows in order. Per-batch invariants — source
// resolution, schema arity, timestamp extraction and the late policy — are
// validated in one pre-pass, so an invalid row rejects the whole batch
// before anything is delivered; window advance and delivery then happen
// once per batch per pipeline instead of once per row.
func (r *Runtime) PushBatch(stream string, rows []types.Row) error {
	return r.PushBatchCtx(trace.Ctx{}, stream, rows)
}

// PushBatchCtx is PushBatch with an externally assigned trace context:
// a replica re-injects the primary's trace ID here so the local apply
// hops join the primary's span chain. A zero Ctx lets the runtime's own
// tracer make the sampling decision.
func (r *Runtime) PushBatchCtx(tc trace.Ctx, stream string, rows []types.Row) error {
	src, err := r.lookup(stream)
	if err != nil {
		return err
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.deliver(r, tc, rows, 0, false)
}

// prepare validates a batch and stamps each row with its timestamp,
// applying the late policy against a running high-water mark. On success
// the source clock advances; on error nothing is delivered and the clock
// is untouched. The returned block is pooled and refcounted: the caller
// owns one reference (release when done) and takes more for each worker
// the batch is handed to. Callers hold s.mu.
func (s *source) prepare(r *Runtime, rows []types.Row, explicitTS int64, explicit bool) (*batchBlock, error) {
	block := getBatchBlock(len(rows))
	batch := block.rows
	fail := func(err error) (*batchBlock, error) {
		block.rows = batch
		block.release()
		return nil, err
	}
	arity := len(s.schema)
	hwm, has := s.lastTS, s.hasTS
	for _, row := range rows {
		if len(row) != arity {
			return fail(fmt.Errorf("stream: %s: row has %d columns, schema has %d",
				s.name, len(row), arity))
		}
		var ts int64
		switch {
		case explicit:
			ts = explicitTS
		case s.cqtimeCol >= 0:
			d := row[s.cqtimeCol]
			if d.Type() != types.TypeTimestamp {
				return fail(fmt.Errorf("stream: %s: CQTIME column is %s, want TIMESTAMP", s.name, d.Type()))
			}
			ts = d.TimestampMicros()
		default:
			return fail(fmt.Errorf("stream: %s: no CQTIME column and no explicit timestamp", s.name))
		}
		if has && ts < hwm {
			switch r.Late {
			case LateDrop:
				r.lateDropped.Inc()
				continue
			case LateClamp:
				ts = hwm
			default:
				return fail(fmt.Errorf("stream: %s: out-of-order timestamp %d < %d (streams are ordered on CQTIME)",
					s.name, ts, hwm))
			}
		}
		hwm, has = ts, true
		batch = append(batch, tsRow{ts, row})
	}
	s.lastTS, s.hasTS = hwm, has
	block.rows = batch
	return block, nil
}

// soleIdleWorker returns this source's single subscribing pipeline when
// its worker can be bypassed: exactly one pipeline, it runs in worker
// mode, it has not failed, and the worker has no backlog — nothing
// queued and everything enqueued already applied. In that state the
// producer applies the task inline, skipping the channel hand-off whose
// wake-up latency makes k=1 parallel mode slower than serial. Memory
// ordering: applied is incremented after the worker's last mutation of
// pipeline state, so enqueued == applied proves those writes are visible
// here; the next enqueue (channel send) publishes the producer's inline
// mutations back to the worker. Callers hold s.mu.
func (s *source) soleIdleWorker() (*Pipeline, bool) {
	if s.workers != 1 || len(s.pipes) != 1 {
		return nil, false
	}
	p := s.pipes[0]
	if p.mbox == nil || p.failed.Load() || p.mbox.depth() != 0 {
		return nil, false
	}
	if p.enqueued.Load() != p.applied.Load() {
		return nil, false
	}
	return p, true
}

// failInlineLocked detaches a worker pipeline that failed while being
// run inline on the producer and stops its (idle) worker. Callers hold
// s.mu.
func (s *source) failInlineLocked(pipe *Pipeline, err error) error {
	s.detachLocked(pipe)
	pipe.stop()
	return err
}

// deliver fans one validated batch out to every subscriber. A row at ts
// proves every window closing at or before ts complete, so each pipeline
// fires those closes before buffering the row — per pipeline, rows and
// closes interleave exactly as in row-at-a-time delivery. Callers hold
// s.mu.
func (s *source) deliver(r *Runtime, tc trace.Ctx, rows []types.Row, explicitTS int64, explicit bool) error {
	if err := s.sweepFailedLocked(); err != nil {
		return err
	}
	block, err := s.prepare(r, rows, explicitTS, explicit)
	if err != nil {
		return err
	}
	defer block.release()
	batch := block.rows
	if len(batch) == 0 {
		return nil
	}
	// Sampling decision at ingest: a batch without an externally assigned
	// context (replica re-injection, derived emission) rolls the dice
	// here. Unsampled batches still get an ingest timestamp so slow-fire
	// latency is measurable for every fire.
	if r.tracer != nil && tc.ID == 0 && tc.Ingest == 0 && !s.internal {
		tc = r.tracer.Begin(s.name, len(batch))
	}
	s.rows.Add(int64(len(batch)))
	if r.OnIngest != nil && s.cqtimeCol >= 0 && !s.internal {
		// The batch entered the stream (the clock advanced) even if a
		// subscriber sink fails below, so the event is published before
		// fan-out. Copy the rows out of the pooled batch block: the
		// observer may retain the slice.
		accepted := make([]types.Row, len(batch))
		for i := range batch {
			accepted[i] = batch[i].row
		}
		r.OnIngest(tc, s.name, accepted)
	}
	// Hand the batch to worker pipelines first so they chew on it while
	// the producer walks the synchronous subscribers — except when the
	// source's single subscriber has an idle worker, where applying
	// inline skips the queue hand-off entirely.
	if pipe, ok := s.soleIdleWorker(); ok {
		if tc.ID != 0 {
			// Inline delivery skips the queue; zero-duration enqueue and
			// pickup markers keep the parallel-mode span chain uniform.
			now := time.Now().UnixMicro()
			r.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageEnqueue,
				Stream: s.name, Pipe: pipe.id, Start: now, Rows: len(batch)})
			r.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StagePickup,
				Stream: s.name, Pipe: pipe.id, Start: now, Rows: len(batch)})
		}
		if err := pipe.processBatch(batch, tc); err != nil {
			return s.failInlineLocked(pipe, err)
		}
	} else {
		s.fanOutWorkers(r, tc, task{kind: taskBatch, batch: batch, block: block}, true)
	}
	// Base-stream taps archive the raw feed; one call per batch turns
	// the channel's transaction (and WAL append + fsync) per ROW into
	// one per BATCH. Taps run before shared members step so a window
	// firing mid-batch sees the whole batch archived — the ordering
	// synchronous non-shared pipelines always observed.
	if !explicit && s.cqtimeCol >= 0 && len(s.taps) > 0 {
		rb := getRowsBlock(len(batch))
		for _, tr := range batch {
			rb.rows = append(rb.rows, tr.row)
		}
		last := batch[len(batch)-1].ts
		for _, tap := range s.taps {
			if err := (*tap)(tc, last, rb.rows); err != nil {
				rb.put()
				return err
			}
		}
		rb.put()
	}
	// Shared aggregation members keep exact per-row interleaving with the
	// shared slice state.
	if len(s.shared) > 0 {
		for _, pipe := range s.pipes {
			if pipe.shared != nil {
				pipe.noteBatch(tc)
				if tc.ID != 0 {
					// Shared members consume the batch row-at-a-time on
					// this goroutine; the enqueue span is a zero-duration
					// hand-off marker keeping the chain uniform.
					r.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageEnqueue,
						Stream: s.name, Pipe: pipe.id, Start: time.Now().UnixMicro(), Rows: len(batch)})
				}
			}
		}
		for _, tr := range batch {
			if err := s.stepSharedLocked(tr); err != nil {
				return err
			}
		}
	}
	// Synchronous non-shared pipelines: the whole batch, one pipeline at a
	// time.
	for _, pipe := range s.pipes {
		if pipe.mbox != nil || pipe.shared != nil {
			continue
		}
		if tc.ID != 0 {
			// Synchronous delivery has no queue; the enqueue span is a
			// zero-duration hand-off marker keeping the chain uniform.
			r.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageEnqueue,
				Stream: s.name, Pipe: pipe.id, Start: time.Now().UnixMicro(), Rows: len(batch)})
		}
		if err := pipe.processBatch(batch, tc); err != nil {
			return s.failLocked(pipe, err)
		}
	}
	return nil
}

// fanOutWorkers enqueues one task on every worker pipeline, recording an
// enqueue span (duration = backpressure wait) for sampled batches. Each
// enqueue takes one reference on the task's batch block; the worker
// releases it after applying (or dropping) the task. bounded applies the
// mailbox backpressure bound — true only on the external producer path,
// never for work originating inside the worker pool (see worker.go).
func (s *source) fanOutWorkers(r *Runtime, tc trace.Ctx, t task, bounded bool) {
	t.tc = tc
	for _, pipe := range s.pipes {
		if pipe.mbox == nil {
			continue
		}
		if t.block != nil {
			t.block.retain()
		}
		if tc.ID == 0 {
			pipe.enqueue(t, bounded)
			continue
		}
		start := time.Now()
		t.enqNS = start.UnixNano()
		pipe.enqueue(t, bounded)
		r.tracer.Record(trace.Span{Trace: tc.ID, Stage: trace.StageEnqueue,
			Stream: s.name, Pipe: pipe.id, Start: start.UnixMicro(),
			Dur: time.Since(start).Nanoseconds(), Rows: len(t.batch)})
	}
}

// stepSharedLocked applies one row to the shared slice aggregations and
// their member pipelines in the order row-at-a-time delivery used: member
// closes fire against the slice state before the row is folded in.
func (s *source) stepSharedLocked(tr tsRow) error {
	for _, pipe := range s.pipes {
		if pipe.shared == nil {
			continue
		}
		if err := pipe.advanceTo(tr.ts); err != nil {
			return s.failLocked(pipe, err)
		}
	}
	for _, agg := range s.shared {
		agg.advanceTo(tr.ts)
	}
	for _, pipe := range s.pipes {
		if pipe.shared == nil {
			continue
		}
		if err := pipe.push(tr.row, tr.ts); err != nil {
			return s.failLocked(pipe, err)
		}
	}
	for _, agg := range s.shared {
		if err := agg.push(tr.row, tr.ts); err != nil {
			return err
		}
	}
	return nil
}

// Advance moves a stream's clock to ts (a heartbeat), closing any windows
// whose boundary has been reached even if no data arrived.
func (r *Runtime) Advance(stream string, ts int64) error {
	src, err := r.lookup(stream)
	if err != nil {
		return err
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.advanceLocked(r, ts)
}

func (s *source) advanceLocked(r *Runtime, ts int64) error {
	if err := s.sweepFailedLocked(); err != nil {
		return err
	}
	if s.hasTS && ts < s.lastTS {
		return nil // stale heartbeat: ignore
	}
	s.lastTS, s.hasTS = ts, true
	if r.OnAdvance != nil && s.cqtimeCol >= 0 {
		r.OnAdvance(s.name, ts)
	}
	for _, pipe := range s.pipes {
		if pipe.mbox != nil {
			if inline, ok := s.soleIdleWorker(); ok && inline == pipe {
				if err := pipe.advanceTo(ts); err != nil {
					return s.failInlineLocked(pipe, err)
				}
				continue
			}
			pipe.enqueue(task{kind: taskAdvance, ts: ts}, true)
			continue
		}
		if err := pipe.advanceTo(ts); err != nil {
			return s.failLocked(pipe, err)
		}
	}
	for _, agg := range s.shared {
		agg.advanceTo(ts)
	}
	return nil
}

// Tap attaches a raw sink to a stream. On a derived stream the sink
// receives every emission (close timestamp + rows); on a base stream it
// receives each pushed row. Channels use taps to copy stream contents into
// tables (paper §3.3); a base-stream channel archives the raw feed. The
// returned function detaches the tap.
func (r *Runtime) Tap(stream string, sink Sink) (func(), error) {
	src, err := r.lookup(stream)
	if err != nil {
		return nil, err
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	src.taps = append(src.taps, &sink)
	handle := &sink
	return func() {
		src.mu.Lock()
		defer src.mu.Unlock()
		for i, t := range src.taps {
			if t == handle {
				src.taps = append(src.taps[:i], src.taps[i+1:]...)
				return
			}
		}
	}, nil
}

// DerivedSink returns the sink that feeds a derived stream's source. The
// engine wires it as the sink of the derived stream's always-on pipeline.
// Emission takes the derived source's own lock, so the sink may run on any
// goroutine — the producer in synchronous mode, the upstream pipeline's
// worker in parallel mode.
func (r *Runtime) DerivedSink(stream string) Sink {
	return func(tc trace.Ctx, closeTS int64, rows []types.Row) error {
		return r.emitDerived(tc, stream, closeTS, rows)
	}
}

// emitDerived delivers one emission of a derived stream into its source:
// all rows share the emission timestamp closeTS, and the emission boundary
// itself is signalled for SLICES-window consumers. The upstream fire's
// trace context rides along, so a sampled base-stream batch's chain
// continues through every derived stream it cascades into.
func (r *Runtime) emitDerived(tc trace.Ctx, stream string, closeTS int64, rows []types.Row) error {
	r.mu.RLock()
	src, ok := r.sources[stream]
	r.mu.RUnlock()
	if !ok {
		// The derived stream has been dropped; discard silently.
		return nil
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	if err := src.sweepFailedLocked(); err != nil {
		return err
	}
	block, err := src.prepare(r, rows, closeTS, true)
	if err != nil {
		return err
	}
	defer block.release()
	batch := block.rows
	src.rows.Add(int64(len(batch)))
	if pipe, ok := src.soleIdleWorker(); ok {
		if err := pipe.processBatch(batch, tc); err != nil {
			return src.failInlineLocked(pipe, err)
		}
		if err := pipe.endEmission(closeTS, len(rows)); err != nil {
			return src.failInlineLocked(pipe, err)
		}
	} else {
		// Unbounded: emissions may originate on a pool worker, which must
		// never block on another pipeline's mailbox bound (deadlock).
		src.fanOutWorkers(r, tc, task{kind: taskEmission, batch: batch, block: block,
			ts: closeTS, emRows: len(rows)}, false)
	}
	for _, pipe := range src.pipes {
		if pipe.mbox == nil && pipe.shared != nil {
			pipe.noteBatch(tc)
		}
	}
	for _, tr := range batch {
		if err := src.stepSharedLocked(tr); err != nil {
			return err
		}
	}
	for _, pipe := range src.pipes {
		if pipe.mbox != nil || pipe.shared != nil {
			continue
		}
		if err := pipe.processBatch(batch, tc); err != nil {
			return src.failLocked(pipe, err)
		}
	}
	for _, pipe := range src.pipes {
		if pipe.mbox != nil {
			continue
		}
		if err := pipe.endEmission(closeTS, len(rows)); err != nil {
			return src.failLocked(pipe, err)
		}
	}
	for _, tap := range src.taps {
		if err := (*tap)(tc, closeTS, rows); err != nil {
			return err
		}
	}
	return nil
}

// Quiesce blocks until every pipeline worker has drained all input
// enqueued before the call — including work that cascades through derived
// streams — then reports any asynchronous pipeline failures, detaching the
// failed pipelines. With no workers it only sweeps for failures. Quiesce
// does not prevent concurrent producers; callers wanting a true barrier
// stop pushing first.
func (r *Runtime) Quiesce() error {
	for {
		before := r.tasksEnqueued()
		r.flushWorkers()
		if r.tasksEnqueued() == before {
			break
		}
	}
	var errs []error
	for _, src := range r.snapshotSources() {
		src.mu.Lock()
		if err := src.sweepFailedLocked(); err != nil {
			errs = append(errs, err)
		}
		retired := src.retired
		src.retired = nil
		src.mu.Unlock()
		for _, h := range retired {
			h.stop()
		}
	}
	return errors.Join(errs...)
}

// tasksEnqueued sums the lifetime task counts of every worker pipeline;
// Quiesce uses it to detect cascaded work between flush passes.
func (r *Runtime) tasksEnqueued() int64 {
	var n int64
	for _, src := range r.snapshotSources() {
		src.mu.Lock()
		for _, p := range src.pipes {
			if p.mbox != nil {
				n += p.enqueued.Load()
			}
		}
		src.mu.Unlock()
	}
	return n
}

// flushWorkers pushes one barrier through every worker queue and waits for
// all of them.
func (r *Runtime) flushWorkers() {
	for _, src := range r.snapshotSources() {
		var dones []chan struct{}
		src.mu.Lock()
		for _, p := range src.pipes {
			if p.mbox == nil {
				continue
			}
			done := make(chan struct{})
			// Unbounded: the flush barrier must not add backpressure (and
			// Quiesce may run concurrently with a blocked producer).
			p.enqueue(task{kind: taskFlush, done: done}, false)
			dones = append(dones, done)
		}
		src.mu.Unlock()
		for _, done := range dones {
			<-done
		}
	}
}

// Close drains every pipeline worker, stops them, detaches all pipelines
// and returns any asynchronous failures that had not yet been surfaced.
// Producers must have stopped; pushing after Close returns an error for
// unknown streams only if the source registry was also torn down, so the
// engine gates Close behind its own writer lock.
func (r *Runtime) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()

	// Graceful drain first, so cascaded emissions still find their
	// consumers attached.
	for {
		before := r.tasksEnqueued()
		r.flushWorkers()
		if r.tasksEnqueued() == before {
			break
		}
	}
	var errs []error
	var pipes []*Pipeline
	for _, src := range r.snapshotSources() {
		src.mu.Lock()
		pipes = append(pipes, src.pipes...)
		pipes = append(pipes, src.members...)
		pipes = append(pipes, src.retired...)
		src.pipes, src.workers = nil, 0
		src.members, src.retired = nil, nil
		src.groups = make(map[string]*planGroup)
		src.mu.Unlock()
	}
	for _, pipe := range pipes {
		pipe.stop()
		if err := pipe.takeErr(); err != nil {
			errs = append(errs, err)
		}
	}
	r.schedMu.Lock()
	sched := r.sched
	r.schedMu.Unlock()
	if sched != nil {
		sched.close()
	}
	return errors.Join(errs...)
}

// SharingInfo reports the live sharing state the given plan would join if
// subscribed now: the plan-group key with its current subscriber count
// and the slice-sharing key with its member count. Empty keys mean the
// corresponding layer does not apply (shape ineligible or disabled);
// EXPLAIN renders this without subscribing anything.
func (r *Runtime) SharingInfo(p *plan.Plan) (groupKey string, subscribers int, sliceKey string, sliceMembers int) {
	if p.Stream == nil || p.StreamAgg == nil {
		return "", 0, "", 0
	}
	w := p.Stream.Window
	if w.Kind != sql.WindowTime || w.Advance <= 0 || w.Visible%w.Advance != 0 {
		return "", 0, "", 0
	}
	src, err := r.lookup(p.Stream.Name)
	if err != nil {
		return "", 0, "", 0
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	if r.sharing {
		sliceKey = fmt.Sprintf("%s@%d", p.StreamAgg.Fingerprint, w.Advance)
		if agg := src.shared[sliceKey]; agg != nil {
			sliceMembers = len(agg.members)
		}
		if r.planShare {
			groupKey = planGroupKey(p.StreamAgg.Fingerprint, w.Advance, w.Visible)
			if g := src.groups[groupKey]; g != nil {
				subscribers = int(g.n.Load())
			}
		}
	}
	return groupKey, subscribers, sliceKey, sliceMembers
}

// snapshotCtx builds the per-window execution context: a fresh snapshot at
// the window boundary (window consistency) plus the closing timestamp for
// cq_close(*).
func (r *Runtime) snapshotCtx(closeTS int64) *exec.Ctx {
	return &exec.Ctx{
		Snap:        r.mgr.SnapshotNow(),
		WindowClose: types.NewTimestampMicros(closeTS),
		Now:         r.now,
	}
}

// Stats reports runtime counters for tests and the REPL.
type Stats struct {
	Sources int
	// Pipelines counts user-facing continuous queries: plan-group members
	// and standalone pipelines. Internal group hosts are excluded.
	Pipelines     int
	SharedAggs    int
	SharedMembers int
	// PlanGroups counts plan-sharing groups (one shared host pipeline
	// each); PlanSubscribers counts the CQs subscribed to them.
	PlanGroups      int
	PlanSubscribers int
	// IncrementalPipes counts pipelines firing from materialized IVM state.
	IncrementalPipes int
	WindowsFired     int64
	RowsProcessed    int64
	SliceHitShares   int64
	LateDropped      int64
	// Scheduler counters (parallel mode; zero when the work-stealing pool
	// was never created). SchedWorkers is the pool size, SchedRunnable the
	// pipelines queued awaiting a worker, SchedSteals/SchedParks the
	// lifetime steal and park counts — the streamrel_sched_* series.
	SchedWorkers  int
	SchedRunnable int64
	SchedSteals   int64
	SchedParks    int64
	// PerPipeline lists one consistent counter snapshot per live
	// pipeline; the totals above are sums over it.
	PerPipeline []PipelineStats
}

// PipelineStats is one pipeline's counter snapshot. The pair
// (WindowsFired, RowsSeen) is read in an order that preserves the
// producer-side invariant — rows are counted before the window fire they
// contribute to — so for a row window with ADVANCE a,
// WindowsFired*a <= RowsSeen holds in every snapshot.
type PipelineStats struct {
	Stream       string
	ID           int64
	WindowsFired int64
	RowsSeen     int64
	// QueueDepth is the number of queued micro-batch tasks (parallel
	// mode); 0 for synchronous pipelines.
	QueueDepth int
	Shared     bool
	// Incremental marks pipelines firing from materialized IVM state.
	Incremental bool
	// PlanShared marks plan-group members: Shared/Incremental then name
	// the host's strategy and RowsSeen mirrors the host's intake.
	PlanShared bool
}

// statsSnapshot reads this pipeline's counters as one consistent pass.
// Load order matters: the producer increments rowsSeen before any fire
// those rows prove, so loading windowsFired first guarantees the returned
// pair never shows more fires than its rows justify.
func (p *Pipeline) statsSnapshot() PipelineStats {
	if g := p.pg; g != nil {
		// Member snapshot: its own fires, the host's row intake (rows the
		// shared pipeline consumed on this CQ's behalf). Member fires
		// trail host fires, which trail the host's row count, so the load
		// order preserves the invariant above.
		ps := PipelineStats{
			Stream:      p.src.name,
			ID:          p.id,
			Shared:      g.host.shared != nil,
			Incremental: g.host.ivm != nil,
			PlanShared:  true,
		}
		ps.WindowsFired = p.windowsFired.Value()
		ps.RowsSeen = g.host.rowsSeen.Value()
		return ps
	}
	ps := PipelineStats{
		Stream:      p.src.name,
		ID:          p.id,
		Shared:      p.shared != nil,
		Incremental: p.ivm != nil,
	}
	ps.WindowsFired = p.windowsFired.Value()
	ps.RowsSeen = p.rowsSeen.Value()
	if p.mbox != nil {
		ps.QueueDepth = p.mbox.depth()
	}
	return ps
}

// Stats returns a snapshot of runtime counters. Per-pipeline counters are
// atomics, so this only takes each source's lock long enough to copy its
// subscriber list — it never stops delivery across the whole runtime.
func (r *Runtime) Stats() Stats {
	var s Stats
	s.LateDropped = r.lateDropped.Value()
	r.schedMu.Lock()
	if r.sched != nil {
		s.SchedWorkers = len(r.sched.deques)
		s.SchedRunnable = r.sched.runnable.Load()
		s.SchedSteals = r.sched.steals.Value()
		s.SchedParks = r.sched.parks.Value()
	}
	r.schedMu.Unlock()
	sources := r.snapshotSources()
	s.Sources = len(sources)
	for _, src := range sources {
		src.mu.Lock()
		s.Pipelines += len(src.pipes) - len(src.groups) + len(src.members)
		s.SharedAggs += len(src.shared)
		for _, agg := range src.shared {
			s.SharedMembers += len(agg.members)
		}
		s.PlanGroups += len(src.groups)
		s.PlanSubscribers += len(src.members)
		pipes := append([]*Pipeline(nil), src.pipes...)
		pipes = append(pipes, src.members...)
		src.mu.Unlock()
		for _, pipe := range pipes {
			if pipe.hosting != nil {
				// Internal group hosts are an implementation detail; their
				// work is attributed to their members.
				continue
			}
			ps := pipe.statsSnapshot()
			s.WindowsFired += ps.WindowsFired
			s.RowsProcessed += ps.RowsSeen
			if ps.Incremental {
				s.IncrementalPipes++
			}
			s.PerPipeline = append(s.PerPipeline, ps)
		}
	}
	return s
}
