// Package stream implements the continuous-query runtime: stream sources,
// window processing ("windows produce a sequence of tables", paper Fig. 1),
// derived streams, channels into Active Tables, and shared slice-based
// aggregation across continuous queries (paper refs [4],[12]).
//
// Execution model: stream time is driven by data (CQTIME values) and by
// explicit heartbeats. Sources require non-decreasing timestamps; when
// time reaches a window boundary, the window's rows are materialized as a
// relation and the query plan — the same iterator operators used by
// snapshot queries — runs over it under a fresh MVCC snapshot (window
// consistency, paper §4). All processing is synchronous on the pushing
// goroutine, which makes results deterministic.
package stream

import (
	"fmt"
	"sync"
	"time"

	"streamrel/internal/exec"
	"streamrel/internal/plan"
	"streamrel/internal/txn"
	"streamrel/internal/types"
)

// Sink receives the rows produced by one window close of a continuous
// query.
type Sink func(closeTS int64, rows []types.Row) error

// LatePolicy decides what happens to a row whose timestamp precedes the
// stream's high-water mark. The paper's streams are "ordered on an
// attribute"; real feeds occasionally violate that, so deployments choose
// a policy.
type LatePolicy uint8

// Late-row policies.
const (
	// LateReject returns an error to the producer (default: disorder is a
	// bug in the feed).
	LateReject LatePolicy = iota
	// LateDrop silently discards late rows, counting them in Stats.
	LateDrop
	// LateClamp advances the row's timestamp to the high-water mark so it
	// lands in the current window.
	LateClamp
)

// Runtime owns every stream source and continuous query.
type Runtime struct {
	mu      sync.Mutex
	sources map[string]*source
	mgr     *txn.Manager
	// Sharing enables shared slice aggregation across CQs with identical
	// fingerprints (the paper's "Jellybean" shared processing). It can be
	// disabled to measure its benefit (experiment E3).
	sharing bool
	now     func() time.Time
	// Late is the disorder policy applied to all sources.
	Late        LatePolicy
	lateDropped int64
}

// NewRuntime creates a runtime bound to the transaction manager (window
// consistency takes its snapshots there).
func NewRuntime(mgr *txn.Manager, sharing bool) *Runtime {
	return &Runtime{
		sources: make(map[string]*source),
		mgr:     mgr,
		sharing: sharing,
		now:     time.Now,
	}
}

// source is the fan-out point for one stream (base or derived).
type source struct {
	name      string
	schema    types.Schema
	cqtimeCol int // -1: timestamps supplied by the pusher (derived streams)
	lastTS    int64
	hasTS     bool
	pipes     []*Pipeline
	taps      []*Sink
	shared    map[string]*sharedAgg // key: fingerprint + advance
}

// RegisterSource declares a stream. cqtimeCol is the index of the CQTIME
// column, or -1 when timestamps arrive out of band (derived streams).
func (r *Runtime) RegisterSource(name string, schema types.Schema, cqtimeCol int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sources[name]; ok {
		return fmt.Errorf("stream: source %q already registered", name)
	}
	r.sources[name] = &source{
		name:      name,
		schema:    schema,
		cqtimeCol: cqtimeCol,
		shared:    make(map[string]*sharedAgg),
	}
	return nil
}

// DropSource removes a stream and detaches its subscribers.
func (r *Runtime) DropSource(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sources, name)
}

// HasSource reports whether name is a registered stream.
func (r *Runtime) HasSource(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sources[name]
	return ok
}

// Subscribe attaches a compiled continuous query to its stream and returns
// the pipeline handle. The plan must reference a stream.
//
// Subscription-time semantics: a new CQ starts observing from the next
// arriving event. Its earliest windows may be partial with respect to
// history — in unshared mode the buffer starts empty; in shared mode the
// first windows may additionally see slices retained for longer-extent
// members. Queries needing exact history replay it from an archive table
// instead (INSERT INTO stream SELECT … ORDER BY ts).
func (r *Runtime) Subscribe(p *plan.Plan, sink Sink) (*Pipeline, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.Stream == nil {
		return nil, fmt.Errorf("stream: plan is not a continuous query")
	}
	src, ok := r.sources[p.Stream.Name]
	if !ok {
		return nil, fmt.Errorf("stream: unknown stream %q", p.Stream.Name)
	}
	pipe, err := newPipeline(r, src, p, sink)
	if err != nil {
		return nil, err
	}
	src.pipes = append(src.pipes, pipe)
	return pipe, nil
}

// Unsubscribe detaches a pipeline.
func (r *Runtime) Unsubscribe(pipe *Pipeline) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src := pipe.src
	for i, p := range src.pipes {
		if p == pipe {
			src.pipes = append(src.pipes[:i], src.pipes[i+1:]...)
			break
		}
	}
	if pipe.shared != nil {
		pipe.shared.detach(pipe)
		if len(pipe.shared.members) == 0 {
			delete(src.shared, pipe.shared.key)
		}
	}
}

// Push appends one row to a base stream. The row's CQTIME column supplies
// its timestamp; timestamps must be non-decreasing (the paper's streams
// are "ordered on an attribute").
func (r *Runtime) Push(stream string, row types.Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushLocked(stream, row, 0, false)
}

// PushBatch appends rows in order; one lock acquisition for the batch.
func (r *Runtime) PushBatch(stream string, rows []types.Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, row := range rows {
		if err := r.pushLocked(stream, row, 0, false); err != nil {
			return err
		}
	}
	return nil
}

// pushLocked delivers one row. explicitTS is used for derived-stream
// emissions (cqtimeCol == -1). Callers hold r.mu.
func (r *Runtime) pushLocked(stream string, row types.Row, explicitTS int64, explicit bool) error {
	src, ok := r.sources[stream]
	if !ok {
		return fmt.Errorf("stream: unknown stream %q", stream)
	}
	if len(row) != len(src.schema) {
		return fmt.Errorf("stream: %s: row has %d columns, schema has %d",
			stream, len(row), len(src.schema))
	}
	var ts int64
	switch {
	case explicit:
		ts = explicitTS
	case src.cqtimeCol >= 0:
		d := row[src.cqtimeCol]
		if d.Type() != types.TypeTimestamp {
			return fmt.Errorf("stream: %s: CQTIME column is %s, want TIMESTAMP", stream, d.Type())
		}
		ts = d.TimestampMicros()
	default:
		return fmt.Errorf("stream: %s: no CQTIME column and no explicit timestamp", stream)
	}
	if src.hasTS && ts < src.lastTS {
		switch r.Late {
		case LateDrop:
			r.lateDropped++
			return nil
		case LateClamp:
			ts = src.lastTS
		default:
			return fmt.Errorf("stream: %s: out-of-order timestamp %d < %d (streams are ordered on CQTIME)",
				stream, ts, src.lastTS)
		}
	}
	src.lastTS, src.hasTS = ts, true

	// A row at ts proves every window closing at or before ts is complete:
	// fire those closes first, then buffer the row.
	for _, pipe := range src.pipes {
		if err := pipe.advanceTo(ts); err != nil {
			return err
		}
	}
	for _, agg := range src.shared {
		agg.advanceTo(ts)
	}
	for _, pipe := range src.pipes {
		if err := pipe.push(row, ts); err != nil {
			return err
		}
	}
	for _, agg := range src.shared {
		if err := agg.push(row, ts); err != nil {
			return err
		}
	}
	// Base-stream taps archive raw rows as they arrive (derived-stream
	// taps fire per emission in emitDerived instead).
	if !explicit && src.cqtimeCol >= 0 {
		for _, tap := range src.taps {
			if err := (*tap)(ts, []types.Row{row}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Advance moves a stream's clock to ts (a heartbeat), closing any windows
// whose boundary has been reached even if no data arrived.
func (r *Runtime) Advance(stream string, ts int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.advanceLocked(stream, ts)
}

func (r *Runtime) advanceLocked(stream string, ts int64) error {
	src, ok := r.sources[stream]
	if !ok {
		return fmt.Errorf("stream: unknown stream %q", stream)
	}
	if src.hasTS && ts < src.lastTS {
		return nil // stale heartbeat: ignore
	}
	src.lastTS, src.hasTS = ts, true
	for _, pipe := range src.pipes {
		if err := pipe.advanceTo(ts); err != nil {
			return err
		}
	}
	for _, agg := range src.shared {
		agg.advanceTo(ts)
	}
	return nil
}

// Tap attaches a raw sink to a stream. On a derived stream the sink
// receives every emission (close timestamp + rows); on a base stream it
// receives each pushed row. Channels use taps to copy stream contents into
// tables (paper §3.3); a base-stream channel archives the raw feed. The
// returned function detaches the tap.
func (r *Runtime) Tap(stream string, sink Sink) (func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.sources[stream]
	if !ok {
		return nil, fmt.Errorf("stream: unknown stream %q", stream)
	}
	src.taps = append(src.taps, &sink)
	handle := &sink
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		for i, t := range src.taps {
			if t == handle {
				src.taps = append(src.taps[:i], src.taps[i+1:]...)
				return
			}
		}
	}, nil
}

// DerivedSink returns the sink that feeds a derived stream's source. The
// engine wires it as the sink of the derived stream's always-on pipeline;
// it must only be invoked from within pipeline sinks (the runtime lock is
// already held there).
func (r *Runtime) DerivedSink(stream string) Sink {
	return func(closeTS int64, rows []types.Row) error {
		return r.emitDerived(stream, closeTS, rows)
	}
}

// emitDerived delivers one emission of a derived stream into its source:
// all rows share the emission timestamp closeTS, and the emission boundary
// itself is signalled for SLICES-window consumers.
func (r *Runtime) emitDerived(stream string, closeTS int64, rows []types.Row) error {
	src, ok := r.sources[stream]
	if !ok {
		// The derived stream has been dropped; discard silently.
		return nil
	}
	for _, row := range rows {
		if err := r.pushLocked(stream, row, closeTS, true); err != nil {
			return err
		}
	}
	for _, pipe := range src.pipes {
		if err := pipe.endEmission(closeTS, len(rows)); err != nil {
			return err
		}
	}
	for _, tap := range src.taps {
		if err := (*tap)(closeTS, rows); err != nil {
			return err
		}
	}
	return nil
}

// snapshotCtx builds the per-window execution context: a fresh snapshot at
// the window boundary (window consistency) plus the closing timestamp for
// cq_close(*).
func (r *Runtime) snapshotCtx(closeTS int64) *exec.Ctx {
	return &exec.Ctx{
		Snap:        r.mgr.SnapshotNow(),
		WindowClose: types.NewTimestampMicros(closeTS),
		Now:         r.now,
	}
}

// Stats reports runtime counters for tests and the REPL.
type Stats struct {
	Sources        int
	Pipelines      int
	SharedAggs     int
	SharedMembers  int
	WindowsFired   int64
	RowsProcessed  int64
	SliceHitShares int64
	LateDropped    int64
}

// Stats returns a snapshot of runtime counters.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Stats
	s.Sources = len(r.sources)
	s.LateDropped = r.lateDropped
	for _, src := range r.sources {
		s.Pipelines += len(src.pipes)
		s.SharedAggs += len(src.shared)
		for _, agg := range src.shared {
			s.SharedMembers += len(agg.members)
		}
		for _, pipe := range src.pipes {
			s.WindowsFired += pipe.windowsFired
			s.RowsProcessed += pipe.rowsSeen
		}
	}
	return s
}
