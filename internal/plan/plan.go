// Package plan turns parsed SELECT statements into executable operator
// trees. One planner serves both worlds: a snapshot query plans to a tree
// rooted in table scans; a continuous query plans to the *same* tree shape
// with a window-fed relation as the stream leaf (paper §2.3/§4 — CQ plans
// reuse the standard relational operators).
//
// The planner also detects the shared-aggregation shape (a plain aggregate
// over a single windowed stream) and exposes its pieces so the stream
// runtime can evaluate per-slice partial aggregates shared across
// continuous queries (paper refs [4], [12]).
package plan

import (
	"fmt"
	"strings"

	"streamrel/internal/catalog"
	"streamrel/internal/exec"
	"streamrel/internal/expr"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// Input carries per-execution inputs into a built plan: the rows of the
// current window for the plan's stream leaf (nil for snapshot queries).
type Input struct {
	WindowRows []types.Row
}

// StreamInfo describes the (single) windowed stream a continuous query
// reads.
type StreamInfo struct {
	Name      string // base or derived stream name
	Schema    types.Schema
	CQTimeCol int // index of the CQTIME column; -1 for derived streams without one
	Window    sql.WindowSpec
}

// StreamAgg exposes the pieces of a shareable aggregation plan: aggregate
// (with optional filter) directly over the stream leaf. The stream runtime
// computes per-slice partials with Pred/GroupBy/Aggs, merges them at each
// window close, and feeds the merged groups through PostBuild for HAVING,
// projection, ORDER BY and LIMIT.
type StreamAgg struct {
	Pred    *expr.Scalar // nil if no WHERE
	GroupBy []*expr.Scalar
	Aggs    []expr.AggSpec
	// PostBuild assembles the operators that run over the aggregated rows
	// (group keys ++ agg results). presorted says the rows already arrive
	// in group-key order (the incremental path emits straight from its
	// sorted state), letting the plan skip the determinism re-sort.
	PostBuild func(aggRows []types.Row, presorted bool) exec.Operator
	// Fingerprint identifies the sliceable computation: two CQs with equal
	// fingerprints over the same stream can share slice partials. WHERE
	// conjuncts hoisted into the post stage (see PostKey) are excluded, so
	// subsumed plans — same grouping, per-subscriber residual filter —
	// fingerprint identically and share state.
	Fingerprint string
	// PostKey canonically identifies the post-aggregation stage (hoisted
	// residual WHERE conjuncts, HAVING, projection, DISTINCT, ORDER BY,
	// LIMIT). Plan-level sharing groups CQs by (Fingerprint, window) —
	// one shared pipeline and state — and runs one post stage per
	// distinct PostKey within the group.
	PostKey string
}

// Plan is a compiled query.
type Plan struct {
	// Columns names and types the output.
	Columns types.Schema
	// Stream is non-nil for continuous queries.
	Stream *StreamInfo
	// StreamAgg is non-nil when the plan has the shareable aggregate shape.
	StreamAgg *StreamAgg
	// CloseCol is the output column produced by cq_close(*), or -1; it is
	// how recovery locates the archived window timestamp (paper §4).
	CloseCol int
	// Build assembles a fresh operator tree for one execution.
	Build func(in Input) exec.Operator
}

// Planner compiles statements against a catalog.
type Planner struct {
	Cat *catalog.Catalog
}

// BuildSelect compiles a SELECT (snapshot or continuous).
func (p *Planner) BuildSelect(sel *sql.Select) (*Plan, error) {
	b := &builder{cat: p.Cat}
	n, err := b.buildSelect(sel, true)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Columns:   n.schema,
		Stream:    b.stream,
		StreamAgg: n.streamAgg,
		CloseCol:  n.closeCol,
		Build:     n.build,
	}, nil
}

// builder holds per-query planning state.
type builder struct {
	cat    *catalog.Catalog
	stream *StreamInfo
	// viewDepth guards against recursive view definitions.
	viewDepth int
}

// node is a planned (sub)tree.
type node struct {
	schema    types.Schema
	build     func(in Input) exec.Operator
	streamAgg *StreamAgg
	// closeCol is the output column carrying cq_close(*), or -1.
	closeCol int

	// State for ORDER BY planning above this node: the scope expressions
	// may be compiled against (input scope, or post-aggregation scope), a
	// rewrite applied before compiling (aggregate rewriting), and the
	// pieces needed to add hidden sort columns.
	preScope     *scope
	preBuild     func(in Input) exec.Operator
	preRewrite   func(sql.Expr) (sql.Expr, error)
	projExprs    []*expr.Scalar
	distinct     bool
	aggPostScope *scope
}

// ------------------------------------------------------------- scopes

// scopeCol is one resolvable column: qualifier (alias), name, type and
// position in the concatenated input row.
type scopeCol struct {
	qual string
	name string
	typ  types.Type
}

// scope resolves column references against an ordered column list.
type scope struct {
	cols []scopeCol
}

// ResolveColumn implements expr.Binder.
func (s *scope) ResolveColumn(table, name string) (expr.ColumnBinding, error) {
	found := -1
	for i, c := range s.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.qual != table {
			continue
		}
		if found >= 0 {
			return expr.ColumnBinding{}, fmt.Errorf("plan: column reference %q is ambiguous", refName(table, name))
		}
		found = i
	}
	if found < 0 {
		return expr.ColumnBinding{}, fmt.Errorf("plan: column %q does not exist", refName(table, name))
	}
	return expr.ColumnBinding{Index: found, Type: s.cols[found].typ}, nil
}

func refName(table, name string) string {
	if table != "" {
		return table + "." + name
	}
	return name
}

// schemaOf converts scope columns to an output schema.
func (s *scope) schema() types.Schema {
	out := make(types.Schema, len(s.cols))
	for i, c := range s.cols {
		out[i] = types.Column{Name: c.name, Type: c.typ}
	}
	return out
}

func scopeFrom(qual string, schema types.Schema) *scope {
	cols := make([]scopeCol, len(schema))
	for i, c := range schema {
		cols[i] = scopeCol{qual: qual, name: c.Name, typ: c.Type}
	}
	return &scope{cols: cols}
}

func concatScopes(a, b *scope) *scope {
	cols := make([]scopeCol, 0, len(a.cols)+len(b.cols))
	cols = append(cols, a.cols...)
	cols = append(cols, b.cols...)
	return &scope{cols: cols}
}

// ------------------------------------------------------------- helpers

// splitConjuncts flattens a predicate into AND-ed conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op == sql.OpAnd {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []sql.Expr{e}
}

// andAll rebuilds a conjunction; nil for an empty list.
func andAll(es []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &sql.BinaryExpr{Op: sql.OpAnd, L: out, R: e}
		}
	}
	return out
}

// columnRefs collects every column reference in e.
func columnRefs(e sql.Expr) []*sql.ColumnRef {
	var out []*sql.ColumnRef
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if c, ok := x.(*sql.ColumnRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// refsResolvable reports whether every column reference in e resolves in s.
func refsResolvable(e sql.Expr, s *scope) bool {
	for _, c := range columnRefs(e) {
		if _, err := s.ResolveColumn(c.Table, c.Name); err != nil {
			return false
		}
	}
	return true
}

// isConst reports whether e contains no column references (it may still
// reference per-execution context like now() or cq_close(*), which is fine
// for bounds evaluated at Open time).
func isConst(e sql.Expr) bool { return len(columnRefs(e)) == 0 }

// containsAggregate reports whether e contains an aggregate call.
func containsAggregate(e sql.Expr) bool {
	found := false
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if fc, ok := x.(*sql.FuncCall); ok && expr.IsAggregate(fc.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// rewriteExpr returns a copy of e with every node for which repl returns a
// replacement substituted (top-down; replaced subtrees are not descended).
func rewriteExpr(e sql.Expr, repl func(sql.Expr) (sql.Expr, bool)) sql.Expr {
	if e == nil {
		return nil
	}
	if r, ok := repl(e); ok {
		return r
	}
	switch n := e.(type) {
	case *sql.Literal, *sql.ColumnRef:
		return e
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: n.Op, L: rewriteExpr(n.L, repl), R: rewriteExpr(n.R, repl)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: n.Op, E: rewriteExpr(n.E, repl)}
	case *sql.FuncCall:
		args := make([]sql.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rewriteExpr(a, repl)
		}
		return &sql.FuncCall{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}
	case *sql.CastExpr:
		return &sql.CastExpr{E: rewriteExpr(n.E, repl), To: n.To}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{E: rewriteExpr(n.E, repl), Neg: n.Neg}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{E: rewriteExpr(n.E, repl), Lo: rewriteExpr(n.Lo, repl),
			Hi: rewriteExpr(n.Hi, repl), Neg: n.Neg}
	case *sql.InExpr:
		list := make([]sql.Expr, len(n.List))
		for i, a := range n.List {
			list[i] = rewriteExpr(a, repl)
		}
		return &sql.InExpr{E: rewriteExpr(n.E, repl), List: list, Neg: n.Neg}
	case *sql.LikeExpr:
		return &sql.LikeExpr{E: rewriteExpr(n.E, repl), Pattern: rewriteExpr(n.Pattern, repl), Neg: n.Neg}
	case *sql.CaseExpr:
		whens := make([]sql.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = sql.CaseWhen{Cond: rewriteExpr(w.Cond, repl), Result: rewriteExpr(w.Result, repl)}
		}
		return &sql.CaseExpr{Operand: rewriteExpr(n.Operand, repl), Whens: whens, Else: rewriteExpr(n.Else, repl)}
	}
	return e
}

// outName derives the output column name for a projection item.
func outName(item sql.SelectItem, idx int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sql.ColumnRef:
		return e.Name
	case *sql.FuncCall:
		return strings.ToLower(e.Name)
	case *sql.CastExpr:
		if c, ok := e.E.(*sql.ColumnRef); ok {
			return c.Name
		}
	}
	return fmt.Sprintf("column%d", idx+1)
}

// evalConstInt evaluates a constant integer expression (LIMIT/OFFSET).
func evalConstInt(e sql.Expr, what string) (int64, error) {
	s, err := expr.Compile(e, expr.ConstBinder{})
	if err != nil {
		return 0, fmt.Errorf("plan: %s: %w", what, err)
	}
	v, err := s.Eval(&expr.Ctx{})
	if err != nil {
		return 0, fmt.Errorf("plan: %s: %w", what, err)
	}
	if v.Type() != types.TypeInt {
		return 0, fmt.Errorf("plan: %s must be an integer", what)
	}
	if v.Int() < 0 {
		return 0, fmt.Errorf("plan: %s must not be negative", what)
	}
	return v.Int(), nil
}
