package plan

import (
	"fmt"

	"streamrel/internal/catalog"
	"streamrel/internal/exec"
	"streamrel/internal/expr"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// relNode is a planned FROM item.
type relNode struct {
	scope *scope
	build func(in Input) exec.Operator
	// table is set when this node is still a bare table scan, making it a
	// valid target for predicate pushdown and index selection.
	table *catalog.Table
	// isStream marks the plan's windowed stream leaf.
	isStream bool
	// outer marks trees containing outer joins; WHERE pushdown into them
	// is unsound and is skipped.
	outer bool
}

// buildTableRef plans one FROM item.
func (b *builder) buildTableRef(ref sql.TableRef) (*relNode, error) {
	switch r := ref.(type) {
	case *sql.BaseTable:
		return b.buildBaseTable(r)
	case *sql.Subquery:
		n, err := b.buildSelect(r.Query, false)
		if err != nil {
			return nil, err
		}
		return &relNode{
			scope: scopeFrom(r.Alias, n.schema),
			build: n.build,
		}, nil
	case *sql.Join:
		return b.buildJoin(r)
	}
	return nil, fmt.Errorf("plan: unsupported FROM item %T", ref)
}

func (b *builder) buildBaseTable(r *sql.BaseTable) (*relNode, error) {
	alias := r.Alias
	if alias == "" {
		alias = r.Name
	}

	// Views expand inline. A view over streams is a Streaming View,
	// instantiated per use (paper §3.2) — expansion gives exactly that.
	if v, ok := b.cat.View(r.Name); ok {
		if r.Window != nil {
			return nil, fmt.Errorf("plan: window clause on view %q", r.Name)
		}
		b.viewDepth++
		if b.viewDepth > 16 {
			return nil, fmt.Errorf("plan: view nesting too deep (recursive view?)")
		}
		n, err := b.buildSelect(v.Query, false)
		b.viewDepth--
		if err != nil {
			return nil, fmt.Errorf("plan: expanding view %q: %w", r.Name, err)
		}
		return &relNode{scope: scopeFrom(alias, n.schema), build: n.build}, nil
	}

	// Base streams and derived streams become the plan's stream leaf.
	if s, ok := b.cat.Stream(r.Name); ok {
		return b.streamLeaf(r, alias, s.Schema, s.CQTimeCol)
	}
	if d, ok := b.cat.Derived(r.Name); ok {
		return b.streamLeaf(r, alias, d.Schema, d.CloseCol)
	}

	t, ok := b.cat.Table(r.Name)
	if !ok {
		return nil, fmt.Errorf("plan: relation %q does not exist", r.Name)
	}
	if r.Window != nil {
		return nil, fmt.Errorf("plan: window clause on table %q (windows apply to streams)", r.Name)
	}
	heap := t.Heap
	return &relNode{
		scope: scopeFrom(alias, t.Schema),
		build: func(Input) exec.Operator { return &exec.SeqScan{Heap: heap} },
		table: t,
	}, nil
}

func (b *builder) streamLeaf(r *sql.BaseTable, alias string, schema types.Schema, timeCol int) (*relNode, error) {
	if r.Window == nil {
		return nil, fmt.Errorf("plan: stream %q requires a window clause (e.g. <VISIBLE '5 minutes' ADVANCE '1 minute'>)", r.Name)
	}
	if b.stream != nil {
		return nil, fmt.Errorf("plan: query references more than one windowed stream (%q and %q)", b.stream.Name, r.Name)
	}
	b.stream = &StreamInfo{
		Name:      r.Name,
		Schema:    schema,
		CQTimeCol: timeCol,
		Window:    *r.Window,
	}
	return &relNode{
		scope:    scopeFrom(alias, schema),
		build:    func(in Input) exec.Operator { return &exec.Relation{Rows: in.WindowRows} },
		isStream: true,
	}, nil
}

// buildJoin plans an explicit JOIN … ON tree.
func (b *builder) buildJoin(j *sql.Join) (*relNode, error) {
	left, err := b.buildTableRef(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.buildTableRef(j.Right)
	if err != nil {
		return nil, err
	}
	var jt exec.JoinType
	switch j.Type {
	case sql.JoinInner:
		jt = exec.JoinInner
	case sql.JoinLeft:
		jt = exec.JoinLeft
	case sql.JoinRight:
		jt = exec.JoinRight
	case sql.JoinFull:
		jt = exec.JoinFull
	case sql.JoinCross:
		jt = exec.JoinCross
	}
	n, err := b.combine(left, right, jt, splitConjuncts(j.On))
	if err != nil {
		return nil, err
	}
	if j.Type != sql.JoinInner && j.Type != sql.JoinCross {
		n.outer = true
	}
	return n, nil
}

// combine joins two planned relations under the given type with the given
// ON conjuncts, extracting hash keys from equi-conditions.
func (b *builder) combine(left, right *relNode, jt exec.JoinType, conds []sql.Expr) (*relNode, error) {
	joined := concatScopes(left.scope, right.scope)
	var leftKeys, rightKeys []*expr.Scalar
	var residual []sql.Expr
	for _, c := range conds {
		lk, rk, ok := b.equiKeys(c, left.scope, right.scope)
		if ok {
			leftKeys = append(leftKeys, lk)
			rightKeys = append(rightKeys, rk)
			continue
		}
		residual = append(residual, c)
	}
	lw, rw := len(left.scope.cols), len(right.scope.cols)

	if len(leftKeys) > 0 {
		var res *expr.Scalar
		if len(residual) > 0 {
			var err error
			if res, err = expr.Compile(andAll(residual), joined); err != nil {
				return nil, err
			}
		}
		lb, rb := left.build, right.build
		return &relNode{
			scope: joined,
			outer: left.outer || right.outer,
			build: func(in Input) exec.Operator {
				return &exec.HashJoin{
					Left: lb(in), Right: rb(in),
					LeftKeys: leftKeys, RightKeys: rightKeys,
					Type: jt, Residual: res,
					LeftWidth: lw, RightWidth: rw,
				}
			},
		}, nil
	}

	// No equi keys: nested loop. Full outer without keys is unsupported.
	if jt == exec.JoinFull {
		return nil, fmt.Errorf("plan: FULL JOIN requires an equality condition")
	}
	var pred *expr.Scalar
	if len(residual) > 0 {
		var err error
		if pred, err = expr.Compile(andAll(residual), joined); err != nil {
			return nil, err
		}
	}
	if jt == exec.JoinRight {
		// a RIGHT JOIN b ≡ b LEFT JOIN a with columns restored afterwards.
		swapped, err := b.combine(right, left, exec.JoinLeft, conds)
		if err != nil {
			return nil, err
		}
		sb := swapped.build
		reorder := make([]*expr.Scalar, lw+rw)
		for i := 0; i < lw; i++ {
			reorder[i] = columnScalar(rw+i, left.scope.cols[i].typ)
		}
		for i := 0; i < rw; i++ {
			reorder[lw+i] = columnScalar(i, right.scope.cols[i].typ)
		}
		return &relNode{
			scope: joined,
			outer: true,
			build: func(in Input) exec.Operator {
				return &exec.Project{Child: sb(in), Exprs: reorder}
			},
		}, nil
	}
	lb, rb := left.build, right.build
	return &relNode{
		scope: joined,
		outer: left.outer || right.outer || jt == exec.JoinLeft,
		build: func(in Input) exec.Operator {
			return &exec.NestedLoopJoin{
				Left: lb(in), Right: rb(in),
				Pred: pred, Type: jt, RightWidth: rw,
			}
		},
	}, nil
}

// columnScalar projects input column i.
func columnScalar(i int, t types.Type) *expr.Scalar {
	return &expr.Scalar{Type: t, Eval: func(ctx *expr.Ctx) (types.Datum, error) {
		return ctx.Row[i], nil
	}}
}

// equiKeys recognizes `l = r` conjuncts where one side resolves purely in
// the left scope and the other purely in the right, returning the compiled
// key expressions.
func (b *builder) equiKeys(c sql.Expr, left, right *scope) (*expr.Scalar, *expr.Scalar, bool) {
	be, ok := c.(*sql.BinaryExpr)
	if !ok || be.Op != sql.OpEq {
		return nil, nil, false
	}
	try := func(lexpr, rexpr sql.Expr) (*expr.Scalar, *expr.Scalar, bool) {
		if !refsResolvable(lexpr, left) || !refsResolvable(rexpr, right) {
			return nil, nil, false
		}
		// Keys must reference at least one column (constant = constant is
		// not a join key).
		if isConst(lexpr) && isConst(rexpr) {
			return nil, nil, false
		}
		lk, err := expr.Compile(lexpr, left)
		if err != nil {
			return nil, nil, false
		}
		rk, err := expr.Compile(rexpr, right)
		if err != nil {
			return nil, nil, false
		}
		return lk, rk, true
	}
	if lk, rk, ok := try(be.L, be.R); ok {
		return lk, rk, true
	}
	if lk, rk, ok := try(be.R, be.L); ok {
		return lk, rk, true
	}
	return nil, nil, false
}

// pushFilter applies conjuncts to a relation, using an index when the
// relation is a bare table scan and a conjunct bounds an indexed column.
func (b *builder) pushFilter(rel *relNode, conds []sql.Expr) (*relNode, error) {
	if len(conds) == 0 {
		return rel, nil
	}
	remaining := conds
	if rel.table != nil {
		var err error
		rel, remaining, err = b.tryIndex(rel, conds)
		if err != nil {
			return nil, err
		}
	}
	if len(remaining) == 0 {
		return rel, nil
	}
	pred, err := expr.Compile(andAll(remaining), rel.scope)
	if err != nil {
		return nil, err
	}
	inner := rel.build
	return &relNode{
		scope:    rel.scope,
		isStream: rel.isStream,
		outer:    rel.outer,
		build: func(in Input) exec.Operator {
			return &exec.Filter{Child: inner(in), Pred: pred}
		},
	}, nil
}

// tryIndex looks for conjuncts of the form `col op const` over the first
// column of an index on rel's table and converts the scan to an index
// range scan. Returns the (possibly replaced) relation and the conjuncts
// not absorbed into bounds.
func (b *builder) tryIndex(rel *relNode, conds []sql.Expr) (*relNode, []sql.Expr, error) {
	t := rel.table
	type bound struct {
		e  sql.Expr
		op sql.BinOp
	}
	best := -1 // index into t.Indexes
	var lo, hi sql.Expr
	var used map[sql.Expr]bool

	for ixPos, ix := range t.Indexes {
		firstCol := t.Schema[ix.Columns[0]].Name
		var cLo, cHi sql.Expr
		cUsed := map[sql.Expr]bool{}
		eq := false
		for _, c := range conds {
			be, ok := c.(*sql.BinaryExpr)
			if !ok {
				continue
			}
			var colSide, constSide sql.Expr
			var op sql.BinOp
			if cr, ok := be.L.(*sql.ColumnRef); ok && cr.Name == firstCol && isConst(be.R) &&
				(cr.Table == "" || cr.Table == rel.scope.cols[0].qual) {
				colSide, constSide, op = be.L, be.R, be.Op
			} else if cr, ok := be.R.(*sql.ColumnRef); ok && cr.Name == firstCol && isConst(be.L) &&
				(cr.Table == "" || cr.Table == rel.scope.cols[0].qual) {
				colSide, constSide, op = be.R, be.L, flipOp(be.Op)
			} else {
				continue
			}
			_ = colSide
			switch op {
			case sql.OpEq:
				cLo, cHi, eq = constSide, constSide, true
				cUsed[c] = true
			case sql.OpGe, sql.OpGt:
				if cLo == nil {
					cLo = constSide
					cUsed[c] = true
					if op == sql.OpGt {
						// Strict bound kept as a residual filter too; the
						// index delivers >=, the filter tightens to >.
						cUsed[c] = false
					}
				}
			case sql.OpLe, sql.OpLt:
				if cHi == nil {
					cHi = constSide
					cUsed[c] = true
					if op == sql.OpLt {
						cUsed[c] = false
					}
				}
			}
			if eq {
				break
			}
		}
		if cLo == nil && cHi == nil {
			continue
		}
		// Prefer equality matches, then any bounded index.
		if best == -1 || eq {
			best = ixPos
			lo, hi = cLo, cHi
			used = cUsed
			if eq {
				break
			}
		}
	}
	if best == -1 {
		return rel, conds, nil
	}
	ix := t.Indexes[best]
	var loS, hiS *expr.Scalar
	var err error
	if lo != nil {
		if loS, err = expr.Compile(lo, expr.ConstBinder{}); err != nil {
			return nil, nil, err
		}
	}
	if hi != nil {
		if hiS, err = expr.Compile(hi, expr.ConstBinder{}); err != nil {
			return nil, nil, err
		}
	}
	heap, tree := t.Heap, ix.Tree
	newRel := &relNode{
		scope: rel.scope,
		build: func(Input) exec.Operator {
			return &exec.IndexScan{Heap: heap, Tree: tree, Lo: loS, Hi: hiS}
		},
	}
	var remaining []sql.Expr
	for _, c := range conds {
		if !used[c] {
			remaining = append(remaining, c)
		}
	}
	return newRel, remaining, nil
}

func flipOp(op sql.BinOp) sql.BinOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	}
	return op
}

// buildFrom plans the whole FROM clause plus WHERE pushdown, returning the
// joined relation and the conjuncts that could not be pushed or converted
// to join conditions (they become a post-join filter — normally empty).
func (b *builder) buildFrom(refs []sql.TableRef, where sql.Expr) (*relNode, []sql.Expr, error) {
	if len(refs) == 0 {
		// FROM-less SELECT: a single empty row.
		return &relNode{
			scope: &scope{},
			build: func(Input) exec.Operator {
				return &exec.Values{Rows: []types.Row{{}}}
			},
		}, splitConjuncts(where), nil
	}
	rels := make([]*relNode, len(refs))
	for i, r := range refs {
		n, err := b.buildTableRef(r)
		if err != nil {
			return nil, nil, err
		}
		rels[i] = n
	}
	conds := splitConjuncts(where)
	pending := make([]sql.Expr, len(conds))
	copy(pending, conds)

	// Push single-relation conjuncts into inner-join-safe relations.
	for i, rel := range rels {
		if rel.outer {
			continue
		}
		var mine, rest []sql.Expr
		for _, c := range pending {
			if len(columnRefs(c)) > 0 && refsResolvable(c, rel.scope) && exclusiveTo(c, rel, rels) {
				mine = append(mine, c)
			} else {
				rest = append(rest, c)
			}
		}
		if len(mine) > 0 {
			var err error
			if rels[i], err = b.pushFilter(rel, mine); err != nil {
				return nil, nil, err
			}
			pending = rest
		}
	}

	// Left-deep fold over the comma list, converting applicable conjuncts
	// into join conditions as relations become available.
	acc := rels[0]
	for _, next := range rels[1:] {
		joinedScope := concatScopes(acc.scope, next.scope)
		var conds, rest []sql.Expr
		for _, c := range pending {
			if refsResolvable(c, joinedScope) && !refsResolvable(c, acc.scope) && !refsResolvable(c, next.scope) {
				conds = append(conds, c)
			} else {
				rest = append(rest, c)
			}
		}
		pending = rest
		var err error
		if acc, err = b.combine(acc, next, exec.JoinInner, conds); err != nil {
			return nil, nil, err
		}
	}
	return acc, pending, nil
}

// exclusiveTo reports whether c's columns resolve in rel but in no other
// relation (an unqualified name could otherwise bind ambiguously later).
func exclusiveTo(c sql.Expr, rel *relNode, all []*relNode) bool {
	for _, other := range all {
		if other == rel {
			continue
		}
		for _, ref := range columnRefs(c) {
			if _, err := other.scope.ResolveColumn(ref.Table, ref.Name); err == nil {
				return false
			}
		}
	}
	return true
}
