package plan

import (
	"fmt"
	"strings"

	"streamrel/internal/exec"
	"streamrel/internal/expr"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// aggColPrefix qualifies the synthetic scope holding aggregation output.
const aggQual = "#agg"

// buildAggregate plans GROUP BY / aggregate queries. The aggregation
// output row layout is [group keys…, aggregate results…]; every post-
// aggregation expression (projection, HAVING, ORDER BY) is rewritten to
// reference that layout.
func (b *builder) buildAggregate(sel *sql.Select, rel *relNode, streamOnly bool) (*node, error) {
	inScope := rel.scope

	// Resolve GROUP BY items: positions and aliases refer to the select
	// list; anything else is an expression over the input.
	groupExprs := make([]sql.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		groupExprs[i] = g
		if lit, ok := g.(*sql.Literal); ok && lit.Val.Type() == types.TypeInt {
			pos := int(lit.Val.Int())
			if pos < 1 || pos > len(sel.Items) || sel.Items[pos-1].Expr == nil {
				return nil, fmt.Errorf("plan: GROUP BY position %d out of range", pos)
			}
			groupExprs[i] = sel.Items[pos-1].Expr
			continue
		}
		if cr, ok := g.(*sql.ColumnRef); ok && cr.Table == "" {
			if _, err := inScope.ResolveColumn("", cr.Name); err != nil {
				// Not an input column: try select-list aliases.
				for _, item := range sel.Items {
					if item.Alias == cr.Name && item.Expr != nil {
						groupExprs[i] = item.Expr
						break
					}
				}
			}
		}
		if containsAggregate(groupExprs[i]) {
			return nil, fmt.Errorf("plan: aggregate functions are not allowed in GROUP BY")
		}
	}

	// Collect the distinct aggregate calls appearing anywhere post-GROUP.
	var aggCalls []*sql.FuncCall
	seen := map[string]bool{}
	collect := func(e sql.Expr) {
		sql.WalkExprs(e, func(x sql.Expr) bool {
			if fc, ok := x.(*sql.FuncCall); ok && expr.IsAggregate(fc.Name) {
				if !seen[fc.String()] {
					seen[fc.String()] = true
					aggCalls = append(aggCalls, fc)
				}
				return false
			}
			return true
		})
	}
	for _, item := range sel.Items {
		if item.Star || item.TableStar != "" {
			return nil, fmt.Errorf("plan: * is not allowed with GROUP BY or aggregates")
		}
		collect(item.Expr)
	}
	collect(sel.Having)
	for _, o := range sel.OrderBy {
		collect(o.Expr)
	}

	// Compile group keys and aggregate arguments over the input scope.
	compiledGroups := make([]*expr.Scalar, len(groupExprs))
	for i, g := range groupExprs {
		s, err := expr.Compile(g, inScope)
		if err != nil {
			return nil, err
		}
		compiledGroups[i] = s
	}
	aggSpecs := make([]expr.AggSpec, len(aggCalls))
	for i, fc := range aggCalls {
		spec := expr.AggSpec{Name: strings.ToLower(fc.Name), Star: fc.Star, Distinct: fc.Distinct}
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("plan: %s takes exactly one argument", fc.Name)
			}
			if containsAggregate(fc.Args[0]) {
				return nil, fmt.Errorf("plan: aggregate calls cannot be nested")
			}
			arg, err := expr.Compile(fc.Args[0], inScope)
			if err != nil {
				return nil, err
			}
			spec.Arg = arg
		}
		aggSpecs[i] = spec
	}

	// The post-aggregation scope: group keys then aggregate results,
	// addressed via the synthetic #agg qualifier.
	postCols := make([]scopeCol, 0, len(groupExprs)+len(aggSpecs))
	for i, g := range groupExprs {
		name := fmt.Sprintf("#g%d", i)
		if cr, ok := g.(*sql.ColumnRef); ok {
			name = cr.Name
		}
		postCols = append(postCols, scopeCol{qual: aggQual, name: name, typ: compiledGroups[i].Type})
		_ = name
	}
	for i, spec := range aggSpecs {
		postCols = append(postCols, scopeCol{qual: aggQual, name: fmt.Sprintf("#a%d", i), typ: spec.ResultType()})
	}
	postScope := &scope{cols: postCols}

	// rewrite maps post-aggregation AST onto the agg output layout.
	rewrite := func(e sql.Expr) (sql.Expr, error) {
		var rewriteErr error
		out := rewriteExpr(e, func(x sql.Expr) (sql.Expr, bool) {
			// Aggregate call → its output column.
			if fc, ok := x.(*sql.FuncCall); ok && expr.IsAggregate(fc.Name) {
				for i, call := range aggCalls {
					if call.String() == fc.String() {
						return &sql.ColumnRef{Table: aggQual, Name: fmt.Sprintf("#a%d", i)}, true
					}
				}
				rewriteErr = fmt.Errorf("plan: unexpected aggregate %s", fc)
				return x, true
			}
			// Whole group expression → its key column.
			for i, g := range groupExprs {
				if sameExpr(x, g, inScope) {
					if cr, ok := g.(*sql.ColumnRef); ok {
						return &sql.ColumnRef{Table: aggQual, Name: cr.Name}, true
					}
					return &sql.ColumnRef{Table: aggQual, Name: fmt.Sprintf("#g%d", i)}, true
				}
			}
			return x, false
		})
		return out, rewriteErr
	}

	compilePost := func(e sql.Expr) (*expr.Scalar, error) {
		r, err := rewrite(e)
		if err != nil {
			return nil, err
		}
		s, err := expr.Compile(r, postScope)
		if err != nil {
			// The usual cause: a column not wrapped in an aggregate and not
			// in GROUP BY.
			return nil, fmt.Errorf("plan: %q must appear in the GROUP BY clause or be used in an aggregate function", e.String())
		}
		return s, nil
	}

	// HAVING.
	var having *expr.Scalar
	if sel.Having != nil {
		var err error
		if having, err = compilePost(sel.Having); err != nil {
			return nil, err
		}
	}

	// Projection over the agg output.
	var projExprs []*expr.Scalar
	var schema types.Schema
	closeCol := -1
	for _, item := range sel.Items {
		s, err := compilePost(item.Expr)
		if err != nil {
			return nil, err
		}
		if isCQClose(item.Expr) && closeCol == -1 {
			closeCol = len(projExprs)
		}
		schema = append(schema, types.Column{Name: outName(item, len(projExprs)), Type: s.Type})
		projExprs = append(projExprs, s)
	}

	inner := rel.build
	sortedOutput := len(sel.OrderBy) == 0 // deterministic output when unsorted
	buildAbove := func(aggOp exec.Operator) exec.Operator {
		var op exec.Operator = aggOp
		if having != nil {
			op = &exec.Filter{Child: op, Pred: having}
		}
		op = &exec.Project{Child: op, Exprs: projExprs}
		if sel.Distinct {
			op = &exec.Distinct{Child: op}
		}
		return op
	}
	aggStage := func(in Input) exec.Operator {
		var op exec.Operator = &exec.HashAgg{
			Child:        inner(in),
			GroupBy:      compiledGroups,
			Aggs:         aggSpecs,
			SortedOutput: sortedOutput,
		}
		if having != nil {
			op = &exec.Filter{Child: op, Pred: having}
		}
		return op
	}
	n := &node{
		schema:   schema,
		closeCol: closeCol,
		build: func(in Input) exec.Operator {
			agg := &exec.HashAgg{
				Child:        inner(in),
				GroupBy:      compiledGroups,
				Aggs:         aggSpecs,
				SortedOutput: sortedOutput,
			}
			return buildAbove(agg)
		},
		preScope:   postScope,
		preBuild:   aggStage,
		projExprs:  projExprs,
		distinct:   sel.Distinct,
		preRewrite: rewrite,
	}

	// Shared-aggregation fast path (paper refs [4],[12]): aggregation
	// directly over the windowed stream. The runtime computes per-slice
	// partials once per (stream, fingerprint) and merges at window close;
	// PostBuild runs everything above the aggregation.
	if streamOnly && b.stream != nil && !anyUsesWindowContext(sel, groupExprs, aggCalls) {
		fp := fingerprint(b.stream.Name, sel, groupExprs, aggCalls)
		var pred *expr.Scalar
		if sel.Where != nil {
			var err error
			if pred, err = expr.Compile(sel.Where, inScope); err != nil {
				return nil, err
			}
		}
		n.streamAgg = &StreamAgg{
			Pred:        pred,
			GroupBy:     compiledGroups,
			Aggs:        aggSpecs,
			Fingerprint: fp,
			PostBuild: func(aggRows []types.Row, presorted bool) exec.Operator {
				if sortedOutput && !presorted {
					return buildAbove(&exec.Sort{Child: &exec.Relation{Rows: aggRows}, Keys: sortKeysForWidth(len(compiledGroups), compiledGroups)})
				}
				return buildAbove(&exec.Relation{Rows: aggRows})
			},
		}
		n.aggPostScope = postScope
	}
	return n, nil
}

// sortKeysForWidth sorts agg output rows by their group-key columns so the
// shared path matches HashAgg's SortedOutput determinism.
func sortKeysForWidth(n int, groups []*expr.Scalar) []exec.SortKey {
	keys := make([]exec.SortKey, n)
	for i := 0; i < n; i++ {
		keys[i] = exec.SortKey{Expr: columnScalar(i, groups[i].Type)}
	}
	return keys
}

// sameExpr reports structural equality of two expressions, resolving
// column references through the scope so "u.url" and "url" match when they
// bind to the same column.
func sameExpr(a, c sql.Expr, sc *scope) bool {
	ca, okA := a.(*sql.ColumnRef)
	cb, okB := c.(*sql.ColumnRef)
	if okA && okB {
		ba, errA := sc.ResolveColumn(ca.Table, ca.Name)
		bb, errB := sc.ResolveColumn(cb.Table, cb.Name)
		if errA == nil && errB == nil {
			return ba.Index == bb.Index
		}
	}
	return a.String() == c.String()
}

// fingerprint canonically identifies a shareable slice computation.
func fingerprint(stream string, sel *sql.Select, groups []sql.Expr, aggs []*sql.FuncCall) string {
	var b strings.Builder
	b.WriteString(stream)
	b.WriteString("|W:")
	if sel.Where != nil {
		b.WriteString(sel.Where.String())
	}
	b.WriteString("|G:")
	for _, g := range groups {
		b.WriteString(g.String())
		b.WriteByte(';')
	}
	b.WriteString("|A:")
	for _, a := range aggs {
		b.WriteString(a.String())
		b.WriteByte(';')
	}
	return b.String()
}

// anyUsesWindowContext reports whether the slice-evaluated parts of the
// query (WHERE, group keys, aggregate arguments) reference cq_close(*),
// which is only known at window close — such plans cannot take the shared
// slice path.
func anyUsesWindowContext(sel *sql.Select, groups []sql.Expr, aggs []*sql.FuncCall) bool {
	uses := func(e sql.Expr) bool {
		found := false
		sql.WalkExprs(e, func(x sql.Expr) bool {
			if fc, ok := x.(*sql.FuncCall); ok && strings.ToLower(fc.Name) == "cq_close" {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if sel.Where != nil && uses(sel.Where) {
		return true
	}
	for _, g := range groups {
		if uses(g) {
			return true
		}
	}
	for _, fc := range aggs {
		for _, arg := range fc.Args {
			if uses(arg) {
				return true
			}
		}
	}
	return false
}
