package plan

import (
	"fmt"
	"sort"
	"strings"

	"streamrel/internal/exec"
	"streamrel/internal/expr"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// aggColPrefix qualifies the synthetic scope holding aggregation output.
const aggQual = "#agg"

// buildAggregate plans GROUP BY / aggregate queries. The aggregation
// output row layout is [group keys…, aggregate results…]; every post-
// aggregation expression (projection, HAVING, ORDER BY) is rewritten to
// reference that layout.
func (b *builder) buildAggregate(sel *sql.Select, rel *relNode, streamOnly bool) (*node, error) {
	inScope := rel.scope

	// Resolve GROUP BY items: positions and aliases refer to the select
	// list; anything else is an expression over the input.
	groupExprs := make([]sql.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		groupExprs[i] = g
		if lit, ok := g.(*sql.Literal); ok && lit.Val.Type() == types.TypeInt {
			pos := int(lit.Val.Int())
			if pos < 1 || pos > len(sel.Items) || sel.Items[pos-1].Expr == nil {
				return nil, fmt.Errorf("plan: GROUP BY position %d out of range", pos)
			}
			groupExprs[i] = sel.Items[pos-1].Expr
			continue
		}
		if cr, ok := g.(*sql.ColumnRef); ok && cr.Table == "" {
			if _, err := inScope.ResolveColumn("", cr.Name); err != nil {
				// Not an input column: try select-list aliases.
				for _, item := range sel.Items {
					if item.Alias == cr.Name && item.Expr != nil {
						groupExprs[i] = item.Expr
						break
					}
				}
			}
		}
		if containsAggregate(groupExprs[i]) {
			return nil, fmt.Errorf("plan: aggregate functions are not allowed in GROUP BY")
		}
	}

	// Collect the distinct aggregate calls appearing anywhere post-GROUP.
	var aggCalls []*sql.FuncCall
	seen := map[string]bool{}
	collect := func(e sql.Expr) {
		sql.WalkExprs(e, func(x sql.Expr) bool {
			if fc, ok := x.(*sql.FuncCall); ok && expr.IsAggregate(fc.Name) {
				if !seen[fc.String()] {
					seen[fc.String()] = true
					aggCalls = append(aggCalls, fc)
				}
				return false
			}
			return true
		})
	}
	for _, item := range sel.Items {
		if item.Star || item.TableStar != "" {
			return nil, fmt.Errorf("plan: * is not allowed with GROUP BY or aggregates")
		}
		collect(item.Expr)
	}
	collect(sel.Having)
	for _, o := range sel.OrderBy {
		collect(o.Expr)
	}

	// Compile group keys and aggregate arguments over the input scope.
	compiledGroups := make([]*expr.Scalar, len(groupExprs))
	for i, g := range groupExprs {
		s, err := expr.Compile(g, inScope)
		if err != nil {
			return nil, err
		}
		compiledGroups[i] = s
	}
	aggSpecs := make([]expr.AggSpec, len(aggCalls))
	for i, fc := range aggCalls {
		spec := expr.AggSpec{Name: strings.ToLower(fc.Name), Star: fc.Star, Distinct: fc.Distinct}
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("plan: %s takes exactly one argument", fc.Name)
			}
			if containsAggregate(fc.Args[0]) {
				return nil, fmt.Errorf("plan: aggregate calls cannot be nested")
			}
			arg, err := expr.Compile(fc.Args[0], inScope)
			if err != nil {
				return nil, err
			}
			spec.Arg = arg
		}
		aggSpecs[i] = spec
	}

	// The post-aggregation scope: group keys then aggregate results,
	// addressed via the synthetic #agg qualifier.
	postCols := make([]scopeCol, 0, len(groupExprs)+len(aggSpecs))
	for i, g := range groupExprs {
		name := fmt.Sprintf("#g%d", i)
		if cr, ok := g.(*sql.ColumnRef); ok {
			name = cr.Name
		}
		postCols = append(postCols, scopeCol{qual: aggQual, name: name, typ: compiledGroups[i].Type})
		_ = name
	}
	for i, spec := range aggSpecs {
		postCols = append(postCols, scopeCol{qual: aggQual, name: fmt.Sprintf("#a%d", i), typ: spec.ResultType()})
	}
	postScope := &scope{cols: postCols}

	// rewrite maps post-aggregation AST onto the agg output layout.
	rewrite := func(e sql.Expr) (sql.Expr, error) {
		var rewriteErr error
		out := rewriteExpr(e, func(x sql.Expr) (sql.Expr, bool) {
			// Aggregate call → its output column.
			if fc, ok := x.(*sql.FuncCall); ok && expr.IsAggregate(fc.Name) {
				for i, call := range aggCalls {
					if call.String() == fc.String() {
						return &sql.ColumnRef{Table: aggQual, Name: fmt.Sprintf("#a%d", i)}, true
					}
				}
				rewriteErr = fmt.Errorf("plan: unexpected aggregate %s", fc)
				return x, true
			}
			// Whole group expression → its key column.
			for i, g := range groupExprs {
				if sameExpr(x, g, inScope) {
					if cr, ok := g.(*sql.ColumnRef); ok {
						return &sql.ColumnRef{Table: aggQual, Name: cr.Name}, true
					}
					return &sql.ColumnRef{Table: aggQual, Name: fmt.Sprintf("#g%d", i)}, true
				}
			}
			return x, false
		})
		return out, rewriteErr
	}

	compilePost := func(e sql.Expr) (*expr.Scalar, error) {
		r, err := rewrite(e)
		if err != nil {
			return nil, err
		}
		s, err := expr.Compile(r, postScope)
		if err != nil {
			// The usual cause: a column not wrapped in an aggregate and not
			// in GROUP BY.
			return nil, fmt.Errorf("plan: %q must appear in the GROUP BY clause or be used in an aggregate function", e.String())
		}
		return s, nil
	}

	// HAVING.
	var having *expr.Scalar
	if sel.Having != nil {
		var err error
		if having, err = compilePost(sel.Having); err != nil {
			return nil, err
		}
	}

	// Projection over the agg output.
	var projExprs []*expr.Scalar
	var schema types.Schema
	closeCol := -1
	for _, item := range sel.Items {
		s, err := compilePost(item.Expr)
		if err != nil {
			return nil, err
		}
		if isCQClose(item.Expr) && closeCol == -1 {
			closeCol = len(projExprs)
		}
		schema = append(schema, types.Column{Name: outName(item, len(projExprs)), Type: s.Type})
		projExprs = append(projExprs, s)
	}

	inner := rel.build
	sortedOutput := len(sel.OrderBy) == 0 // deterministic output when unsorted
	buildAbove := func(aggOp exec.Operator) exec.Operator {
		var op exec.Operator = aggOp
		if having != nil {
			op = &exec.Filter{Child: op, Pred: having}
		}
		op = &exec.Project{Child: op, Exprs: projExprs}
		if sel.Distinct {
			op = &exec.Distinct{Child: op}
		}
		return op
	}
	aggStage := func(in Input) exec.Operator {
		var op exec.Operator = &exec.HashAgg{
			Child:        inner(in),
			GroupBy:      compiledGroups,
			Aggs:         aggSpecs,
			SortedOutput: sortedOutput,
		}
		if having != nil {
			op = &exec.Filter{Child: op, Pred: having}
		}
		return op
	}
	n := &node{
		schema:   schema,
		closeCol: closeCol,
		build: func(in Input) exec.Operator {
			agg := &exec.HashAgg{
				Child:        inner(in),
				GroupBy:      compiledGroups,
				Aggs:         aggSpecs,
				SortedOutput: sortedOutput,
			}
			return buildAbove(agg)
		},
		preScope:   postScope,
		preBuild:   aggStage,
		projExprs:  projExprs,
		distinct:   sel.Distinct,
		preRewrite: rewrite,
	}

	// Shared-aggregation fast path (paper refs [4],[12]): aggregation
	// directly over the windowed stream. The runtime computes per-slice
	// partials once per (stream, fingerprint) and merges at window close;
	// PostBuild runs everything above the aggregation.
	//
	// Subsumption widening: WHERE conjuncts expressible over the
	// post-aggregation scope — they reference only GROUP BY expressions,
	// so they are constant within a group — are hoisted out of the slice
	// computation (and its fingerprint) into the post stage. A group
	// whose key fails such a predicate would contribute no output either
	// way, so filtering the merged group rows is equivalent to filtering
	// the input rows; this lets `WHERE url='/a' … GROUP BY url` share
	// slice state (and a plan-level pipeline) with the unfiltered
	// `… GROUP BY url`. The full plan (Build) keeps the WHERE pre-agg.
	if streamOnly && b.stream != nil && !anyUsesWindowContext(sel, groupExprs, aggCalls) {
		var baseConjs, residConjs []sql.Expr
		var residual []*expr.Scalar
		for _, c := range splitConjuncts(sel.Where) {
			// Scalar aggregates (no GROUP BY) never hoist: they emit a
			// default row over an empty window, and a pre-agg filter that
			// empties the window must NOT suppress that row the way a
			// post-agg filter would.
			if len(groupExprs) > 0 && !containsAggregate(c) && !usesCQClose(c) {
				if r, rerr := rewrite(c); rerr == nil {
					if s, cerr := expr.Compile(r, postScope); cerr == nil {
						residConjs = append(residConjs, c)
						residual = append(residual, s)
						continue
					}
				}
			}
			baseConjs = append(baseConjs, c)
		}
		baseWhere := andAll(baseConjs)
		fp := fingerprint(b.stream.Name, baseWhere, groupExprs, aggCalls)
		var pred *expr.Scalar
		if baseWhere != nil {
			var err error
			if pred, err = expr.Compile(baseWhere, inScope); err != nil {
				return nil, err
			}
		}
		n.streamAgg = &StreamAgg{
			Pred:        pred,
			GroupBy:     compiledGroups,
			Aggs:        aggSpecs,
			Fingerprint: fp,
			PostKey:     postKeyString(residConjs, sel),
			PostBuild: func(aggRows []types.Row, presorted bool) exec.Operator {
				var op exec.Operator = &exec.Relation{Rows: aggRows}
				if sortedOutput && !presorted {
					op = &exec.Sort{Child: op, Keys: sortKeysForWidth(len(compiledGroups), compiledGroups)}
				}
				for _, rs := range residual {
					op = &exec.Filter{Child: op, Pred: rs}
				}
				return buildAbove(op)
			},
		}
		n.aggPostScope = postScope
	}
	return n, nil
}

// postKeyString canonically identifies a plan's post-aggregation stage:
// hoisted residual conjuncts (sorted — conjunction commutes), HAVING,
// projection expressions (aliases excluded: they name, not compute) and
// DISTINCT. ORDER BY and LIMIT are appended by the callers that plan
// them. Two CQs with equal fingerprints and equal post keys are
// identical after canonicalization and can share one post execution.
func postKeyString(resid []sql.Expr, sel *sql.Select) string {
	rs := make([]string, len(resid))
	for i, c := range resid {
		rs[i] = c.String()
	}
	sort.Strings(rs)
	var b strings.Builder
	b.WriteString("R:")
	for _, s := range rs {
		b.WriteString(s)
		b.WriteByte(';')
	}
	b.WriteString("|H:")
	if sel.Having != nil {
		b.WriteString(sel.Having.String())
	}
	b.WriteString("|S:")
	for _, item := range sel.Items {
		b.WriteString(item.Expr.String())
		b.WriteByte(';')
	}
	if sel.Distinct {
		b.WriteString("|D")
	}
	return b.String()
}

// sortKeysForWidth sorts agg output rows by their group-key columns so the
// shared path matches HashAgg's SortedOutput determinism.
func sortKeysForWidth(n int, groups []*expr.Scalar) []exec.SortKey {
	keys := make([]exec.SortKey, n)
	for i := 0; i < n; i++ {
		keys[i] = exec.SortKey{Expr: columnScalar(i, groups[i].Type)}
	}
	return keys
}

// sameExpr reports structural equality of two expressions, resolving
// column references through the scope so "u.url" and "url" match when they
// bind to the same column.
func sameExpr(a, c sql.Expr, sc *scope) bool {
	ca, okA := a.(*sql.ColumnRef)
	cb, okB := c.(*sql.ColumnRef)
	if okA && okB {
		ba, errA := sc.ResolveColumn(ca.Table, ca.Name)
		bb, errB := sc.ResolveColumn(cb.Table, cb.Name)
		if errA == nil && errB == nil {
			return ba.Index == bb.Index
		}
	}
	return a.String() == c.String()
}

// fingerprint canonically identifies a shareable slice computation. where
// is the base (non-hoisted) part of the WHERE clause.
func fingerprint(stream string, where sql.Expr, groups []sql.Expr, aggs []*sql.FuncCall) string {
	var b strings.Builder
	b.WriteString(stream)
	b.WriteString("|W:")
	if where != nil {
		b.WriteString(where.String())
	}
	b.WriteString("|G:")
	for _, g := range groups {
		b.WriteString(g.String())
		b.WriteByte(';')
	}
	b.WriteString("|A:")
	for _, a := range aggs {
		b.WriteString(a.String())
		b.WriteByte(';')
	}
	return b.String()
}

// anyUsesWindowContext reports whether the slice-evaluated parts of the
// query (WHERE, group keys, aggregate arguments) reference cq_close(*),
// which is only known at window close — such plans cannot take the shared
// slice path.
func anyUsesWindowContext(sel *sql.Select, groups []sql.Expr, aggs []*sql.FuncCall) bool {
	if sel.Where != nil && usesCQClose(sel.Where) {
		return true
	}
	for _, g := range groups {
		if usesCQClose(g) {
			return true
		}
	}
	for _, fc := range aggs {
		for _, arg := range fc.Args {
			if usesCQClose(arg) {
				return true
			}
		}
	}
	return false
}

// usesCQClose reports whether the expression references cq_close(*),
// which is only known at window close.
func usesCQClose(e sql.Expr) bool {
	found := false
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if fc, ok := x.(*sql.FuncCall); ok && strings.ToLower(fc.Name) == "cq_close" {
			found = true
			return false
		}
		return true
	})
	return found
}
