package plan

import (
	"strings"
	"testing"

	"streamrel/internal/catalog"
	"streamrel/internal/exec"
	"streamrel/internal/sql"
	"streamrel/internal/storage"
	"streamrel/internal/txn"
	"streamrel/internal/types"
)

// testEnv builds a catalog with small populated tables:
//
//	emp(id INT, name STRING, dept STRING, salary INT)
//	dept(name STRING, budget INT)
//	url_stream(url STRING, atime TIMESTAMP cqtime, client_ip STRING)
type testEnv struct {
	cat *catalog.Catalog
	mgr *txn.Manager
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	env := &testEnv{cat: catalog.New(), mgr: txn.NewManager()}
	emp, err := env.cat.CreateTable("emp", types.Schema{
		{Name: "id", Type: types.TypeInt},
		{Name: "name", Type: types.TypeString},
		{Name: "dept", Type: types.TypeString},
		{Name: "salary", Type: types.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	dept, err := env.cat.CreateTable("dept", types.Schema{
		{Name: "name", Type: types.TypeString},
		{Name: "budget", Type: types.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.cat.CreateStream("url_stream", types.Schema{
		{Name: "url", Type: types.TypeString},
		{Name: "atime", Type: types.TypeTimestamp},
		{Name: "client_ip", Type: types.TypeString},
	}, 1, false); err != nil {
		t.Fatal(err)
	}
	rows := []types.Row{
		{types.NewInt(1), types.NewString("alice"), types.NewString("eng"), types.NewInt(100)},
		{types.NewInt(2), types.NewString("bob"), types.NewString("eng"), types.NewInt(80)},
		{types.NewInt(3), types.NewString("carol"), types.NewString("sales"), types.NewInt(90)},
		{types.NewInt(4), types.NewString("dave"), types.NewString("sales"), types.NewInt(60)},
		{types.NewInt(5), types.NewString("erin"), types.NewString("hr"), types.NewInt(70)},
	}
	for _, r := range rows {
		if _, err := emp.Heap.Insert(txn.Bootstrap, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []types.Row{
		{types.NewString("eng"), types.NewInt(1000)},
		{types.NewString("sales"), types.NewInt(500)},
	} {
		if _, err := dept.Heap.Insert(txn.Bootstrap, r); err != nil {
			t.Fatal(err)
		}
	}
	return env
}

// query plans and runs a snapshot SELECT, returning the output rows.
func (env *testEnv) query(t *testing.T, src string) ([]types.Row, *Plan) {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p := &Planner{Cat: env.cat}
	plan, err := p.BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	rows, err := exec.Drain(&exec.Ctx{Snap: env.mgr.SnapshotNow()}, plan.Build(Input{}))
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return rows, plan
}

func (env *testEnv) mustFail(t *testing.T, src string) {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		return // parse error counts
	}
	p := &Planner{Cat: env.cat}
	if _, err := p.BuildSelect(stmt.(*sql.Select)); err == nil {
		t.Errorf("plan %q should fail", src)
	}
}

func rowsToStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func expectRows(t *testing.T, got []types.Row, want ...string) {
	t.Helper()
	gs := rowsToStrings(got)
	if strings.Join(gs, "\n") != strings.Join(want, "\n") {
		t.Fatalf("rows:\n%s\nwant:\n%s", strings.Join(gs, "\n"), strings.Join(want, "\n"))
	}
}

func TestSimpleSelect(t *testing.T) {
	env := newEnv(t)
	rows, plan := env.query(t, `SELECT name, salary FROM emp WHERE salary >= 80 ORDER BY salary DESC`)
	expectRows(t, rows, "alice|100", "carol|90", "bob|80")
	if plan.Columns[0].Name != "name" || plan.Columns[1].Type != types.TypeInt {
		t.Fatalf("schema: %v", plan.Columns)
	}
	if plan.Stream != nil {
		t.Fatal("table query should not be a CQ")
	}
}

func TestSelectStar(t *testing.T) {
	env := newEnv(t)
	rows, plan := env.query(t, `SELECT * FROM dept ORDER BY name`)
	expectRows(t, rows, "eng|1000", "sales|500")
	if len(plan.Columns) != 2 || plan.Columns[1].Name != "budget" {
		t.Fatalf("schema: %v", plan.Columns)
	}
}

func TestExpressionsInProjection(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT upper(name), salary * 2 AS double_pay FROM emp WHERE id = 1`)
	expectRows(t, rows, "ALICE|200")
}

func TestFromlessSelect(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT 1 + 1, 'x'`)
	expectRows(t, rows, "2|x")
}

func TestOrderByForms(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT name, salary FROM emp ORDER BY 2 DESC LIMIT 2`)
	expectRows(t, rows, "alice|100", "carol|90")
	rows, _ = env.query(t, `SELECT name, salary AS pay FROM emp ORDER BY pay LIMIT 1`)
	expectRows(t, rows, "dave|60")
	// Hidden-column sort: ORDER BY an expression not in the output.
	rows, _ = env.query(t, `SELECT name FROM emp ORDER BY salary % 7, name LIMIT 2`)
	if len(rows) != 2 {
		t.Fatal("hidden sort")
	}
}

func TestLimitOffset(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1`)
	expectRows(t, rows, "2", "3")
}

func TestDistinct(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT DISTINCT dept FROM emp ORDER BY dept`)
	expectRows(t, rows, "eng", "hr", "sales")
}

func TestAggregates(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT count(*), sum(salary), avg(salary), min(salary), max(salary) FROM emp`)
	expectRows(t, rows, "5|400|80.0|60|100")
}

func TestGroupBy(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT dept, count(*) AS n, sum(salary) FROM emp GROUP BY dept ORDER BY dept`)
	expectRows(t, rows, "eng|2|180", "hr|1|70", "sales|2|150")
}

func TestGroupByUnsortedIsDeterministic(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT dept, count(*) FROM emp GROUP BY dept`)
	expectRows(t, rows, "eng|2", "hr|1", "sales|2")
}

func TestGroupByPositionAndAlias(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT dept AS d, count(*) FROM emp GROUP BY 1 ORDER BY 1`)
	expectRows(t, rows, "eng|2", "hr|1", "sales|2")
	rows, _ = env.query(t, `SELECT dept AS d, count(*) FROM emp GROUP BY d ORDER BY d`)
	expectRows(t, rows, "eng|2", "hr|1", "sales|2")
}

func TestHaving(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT dept, count(*) FROM emp GROUP BY dept HAVING count(*) > 1 ORDER BY dept`)
	expectRows(t, rows, "eng|2", "sales|2")
}

func TestGroupByExpression(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT salary / 50, count(*) FROM emp GROUP BY salary / 50 ORDER BY 1`)
	expectRows(t, rows, "1|4", "2|1")
}

func TestOrderByAggregate(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT dept FROM emp GROUP BY dept ORDER BY count(*) DESC, dept LIMIT 2`)
	expectRows(t, rows, "eng", "sales")
}

func TestAggregateValidation(t *testing.T) {
	env := newEnv(t)
	env.mustFail(t, `SELECT name, count(*) FROM emp GROUP BY dept`)
	env.mustFail(t, `SELECT count(sum(salary)) FROM emp`)
	env.mustFail(t, `SELECT * FROM emp GROUP BY dept`)
	env.mustFail(t, `SELECT dept FROM emp GROUP BY count(*)`)
}

func TestImplicitJoin(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `
		SELECT e.name, d.budget FROM emp e, dept d
		WHERE e.dept = d.name AND e.salary > 80 ORDER BY e.name`)
	expectRows(t, rows, "alice|1000", "carol|500")
}

func TestExplicitJoin(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `
		SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.name
		ORDER BY e.name`)
	expectRows(t, rows, "alice|1000", "bob|1000", "carol|500", "dave|500")
}

func TestLeftJoin(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `
		SELECT e.name, d.budget FROM emp e LEFT JOIN dept d ON e.dept = d.name
		ORDER BY e.name`)
	expectRows(t, rows, "alice|1000", "bob|1000", "carol|500", "dave|500", "erin|NULL")
}

func TestRightJoin(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `
		SELECT e.name, d.name FROM dept d RIGHT JOIN emp e ON e.dept = d.name
		ORDER BY e.name`)
	expectRows(t, rows, "alice|eng", "bob|eng", "carol|sales", "dave|sales", "erin|NULL")
}

func TestFullJoin(t *testing.T) {
	env := newEnv(t)
	// hr has employees but no dept row; add a dept with no employees.
	d, _ := env.cat.Table("dept")
	d.Heap.Insert(txn.Bootstrap, types.Row{types.NewString("legal"), types.NewInt(50)})
	rows, _ := env.query(t, `
		SELECT e.dept, d.name FROM (SELECT DISTINCT dept FROM emp) e
		FULL JOIN dept d ON e.dept = d.name ORDER BY 1, 2`)
	expectRows(t, rows, "NULL|legal", "eng|eng", "hr|NULL", "sales|sales")
}

func TestCrossJoin(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT count(*) FROM emp CROSS JOIN dept`)
	expectRows(t, rows, "10")
}

func TestNonEquiJoin(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `
		SELECT e.name FROM emp e, dept d WHERE e.dept = d.name AND e.salary < d.budget / 8
		ORDER BY e.name`)
	expectRows(t, rows, "alice", "bob", "dave")
}

func TestSubqueryInFrom(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `
		SELECT d, total FROM (SELECT dept AS d, sum(salary) AS total FROM emp GROUP BY dept) t
		WHERE total > 100 ORDER BY d`)
	expectRows(t, rows, "eng|180", "sales|150")
}

func TestSetOperations(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT dept FROM emp UNION SELECT name FROM dept ORDER BY 1`)
	expectRows(t, rows, "eng", "hr", "sales")
	rows, _ = env.query(t, `SELECT dept FROM emp EXCEPT SELECT name FROM dept`)
	expectRows(t, rows, "hr")
	rows, _ = env.query(t, `SELECT DISTINCT dept FROM emp INTERSECT SELECT name FROM dept ORDER BY 1`)
	expectRows(t, rows, "eng", "sales")
}

func TestViewExpansion(t *testing.T) {
	env := newEnv(t)
	stmt, _ := sql.Parse(`SELECT name, salary FROM emp WHERE dept = 'eng'`)
	env.cat.CreateView(&catalog.View{Name: "eng_emps", Query: stmt.(*sql.Select)})
	rows, _ := env.query(t, `SELECT name FROM eng_emps WHERE salary > 90`)
	expectRows(t, rows, "alice")
}

func TestIndexSelection(t *testing.T) {
	env := newEnv(t)
	ix, err := env.cat.CreateIndex("emp_salary", "emp", []string{"salary"})
	if err != nil {
		t.Fatal(err)
	}
	// Backfill the index manually (the engine normally does this).
	emp, _ := env.cat.Table("emp")
	emp.Heap.Scan(env.mgr.SnapshotNow(), func(rid storage.RowID, r types.Row) bool {
		ix.Tree.Insert(ix.KeyOf(r), rid)
		return true
	})
	// Equality via index.
	rows, _ := env.query(t, `SELECT name FROM emp WHERE salary = 90`)
	expectRows(t, rows, "carol")
	// Range via index plus residual filter.
	rows, _ = env.query(t, `SELECT name FROM emp WHERE salary >= 70 AND salary < 100 AND dept <> 'hr' ORDER BY name`)
	expectRows(t, rows, "bob", "carol")
	// Reversed operand order.
	rows, _ = env.query(t, `SELECT name FROM emp WHERE 100 <= salary`)
	expectRows(t, rows, "alice")
}

func TestStreamQueryPlanning(t *testing.T) {
	env := newEnv(t)
	stmt, _ := sql.Parse(`SELECT url, count(*) AS n FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>
		GROUP BY url ORDER BY n DESC LIMIT 10`)
	p := &Planner{Cat: env.cat}
	plan, err := p.BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stream == nil || plan.Stream.Name != "url_stream" || plan.Stream.CQTimeCol != 1 {
		t.Fatalf("stream info: %+v", plan.Stream)
	}
	if plan.StreamAgg == nil {
		t.Fatal("expected shared-aggregation fast path")
	}
	// Execute the plan against a synthetic window.
	win := []types.Row{
		{types.NewString("/a"), types.NewTimestampMicros(1), types.NewString("ip1")},
		{types.NewString("/a"), types.NewTimestampMicros(2), types.NewString("ip2")},
		{types.NewString("/b"), types.NewTimestampMicros(3), types.NewString("ip1")},
	}
	rows, err := exec.Drain(&exec.Ctx{Snap: env.mgr.SnapshotNow()}, plan.Build(Input{WindowRows: win}))
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, rows, "/a|2", "/b|1")
}

func TestStreamAggFastPathDisabledByJoin(t *testing.T) {
	env := newEnv(t)
	stmt, _ := sql.Parse(`SELECT count(*) FROM url_stream <VISIBLE '1 minute'> u, dept d`)
	p := &Planner{Cat: env.cat}
	plan, err := p.BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if plan.StreamAgg != nil {
		t.Fatal("join query must not take the shared-agg path")
	}
	if plan.Stream == nil {
		t.Fatal("still a CQ")
	}
}

func TestStreamErrors(t *testing.T) {
	env := newEnv(t)
	env.mustFail(t, `SELECT * FROM url_stream`)                                                           // no window
	env.mustFail(t, `SELECT * FROM emp <VISIBLE '1 minute'>`)                                             // window on table
	env.mustFail(t, `SELECT 1 FROM url_stream <VISIBLE '1 minute'> a, url_stream <VISIBLE '1 minute'> b`) // two streams
}

func TestPlannerErrors(t *testing.T) {
	env := newEnv(t)
	env.mustFail(t, `SELECT * FROM nonexistent`)
	env.mustFail(t, `SELECT bogus FROM emp`)
	env.mustFail(t, `SELECT name FROM emp, dept`) // ambiguous "name"
	env.mustFail(t, `SELECT id FROM emp ORDER BY 99`)
	env.mustFail(t, `SELECT id FROM emp LIMIT 'x'`)
	env.mustFail(t, `SELECT id FROM emp LIMIT -1`)
	env.mustFail(t, `SELECT id FROM emp UNION SELECT id, name FROM emp`)
}

func TestCQCloseColumnDetection(t *testing.T) {
	env := newEnv(t)
	stmt, _ := sql.Parse(`SELECT url, count(*) AS scnt, cq_close(*) FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url`)
	p := &Planner{Cat: env.cat}
	plan, err := p.BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if plan.CloseCol != 2 {
		t.Fatalf("CloseCol = %d, want 2", plan.CloseCol)
	}
	if plan.Columns[2].Name != "cq_close" || plan.Columns[2].Type != types.TypeTimestamp {
		t.Fatalf("cq_close column: %+v", plan.Columns[2])
	}
}

func TestCaseInsensitiveColumns(t *testing.T) {
	env := newEnv(t)
	rows, _ := env.query(t, `SELECT NAME FROM EMP WHERE ID = 1`)
	expectRows(t, rows, "alice")
}
