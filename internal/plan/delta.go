package plan

import (
	"fmt"

	"streamrel/internal/exec"
	"streamrel/internal/sql"
)

// DeltaProgram reports whether this plan qualifies for incremental view
// maintenance and, when it does, how each aggregate is maintained. A plan
// qualifies when it is a filter/project/group-by aggregate directly over
// one time-windowed stream (the StreamAgg shape) whose VISIBLE is a
// multiple of ADVANCE, with every aggregate in COUNT/SUM/AVG/MIN/MAX and
// no DISTINCT — AVG decomposes into SUM+COUNT, MIN/MAX keep per-slice
// partials re-merged on expiry. The returned reason is non-empty exactly
// when the plan must fall back to re-execution; EXPLAIN surfaces it.
func (p *Plan) DeltaProgram() ([]exec.DeltaKind, string) {
	if p.Stream == nil {
		return nil, "not a continuous query"
	}
	if p.StreamAgg == nil {
		return nil, "plan is not a filter/group-by aggregate directly over the stream"
	}
	w := p.Stream.Window
	if w.Kind != sql.WindowTime {
		return nil, "window is not a time window"
	}
	if w.Visible <= 0 || w.Advance <= 0 || w.Visible%w.Advance != 0 {
		return nil, "VISIBLE is not a multiple of ADVANCE"
	}
	kinds := make([]exec.DeltaKind, len(p.StreamAgg.Aggs))
	for i, a := range p.StreamAgg.Aggs {
		if a.Distinct {
			return nil, fmt.Sprintf("%s(DISTINCT …) has no retract form", a.Name)
		}
		switch a.Name {
		case "count":
			kinds[i] = exec.DeltaCount
		case "sum":
			kinds[i] = exec.DeltaSum
		case "avg":
			kinds[i] = exec.DeltaAvg
		case "min":
			kinds[i] = exec.DeltaMin
		case "max":
			kinds[i] = exec.DeltaMax
		default:
			return nil, fmt.Sprintf("aggregate %s has no delta form", a.Name)
		}
	}
	return kinds, ""
}
