package plan

import (
	"fmt"
	"strings"

	"streamrel/internal/exec"
	"streamrel/internal/expr"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// buildSelect plans one SELECT block (with any chained set operations).
// top marks the outermost block, which owns ORDER BY/LIMIT.
func (b *builder) buildSelect(sel *sql.Select, top bool) (*node, error) {
	n, err := b.buildSelectCore(sel)
	if err != nil {
		return nil, err
	}

	// Chained set operations.
	for setOp := sel.SetOp; setOp != nil; setOp = setOp.Right.SetOp {
		right, err := b.buildSelectCore(setOp.Right)
		if err != nil {
			return nil, err
		}
		if len(right.schema) != len(n.schema) {
			return nil, fmt.Errorf("plan: set operation inputs have %d and %d columns",
				len(n.schema), len(right.schema))
		}
		var kind exec.SetOpKind
		switch setOp.Kind {
		case sql.SetUnion:
			kind = exec.SetUnion
		case sql.SetExcept:
			kind = exec.SetExcept
		case sql.SetIntersect:
			kind = exec.SetIntersect
		}
		lb, rb := n.build, right.build
		all := setOp.All
		n = &node{
			schema:   n.schema,
			closeCol: -1,
			build: func(in Input) exec.Operator {
				return &exec.SetOp{Kind: kind, All: all, Left: lb(in), Right: rb(in)}
			},
		}
	}

	// ORDER BY / LIMIT / OFFSET belong to the whole chain.
	if len(sel.OrderBy) > 0 {
		if n, err = b.applyOrderBy(n, sel); err != nil {
			return nil, err
		}
	}
	if sel.Limit != nil || sel.Offset != nil {
		limit := int64(-1)
		offset := int64(0)
		if sel.Limit != nil {
			if limit, err = evalConstInt(sel.Limit, "LIMIT"); err != nil {
				return nil, err
			}
		}
		if sel.Offset != nil {
			if offset, err = evalConstInt(sel.Offset, "OFFSET"); err != nil {
				return nil, err
			}
		}
		inner := n.build
		n = &node{
			schema:    n.schema,
			streamAgg: n.streamAgg,
			closeCol:  n.closeCol,
			build: func(in Input) exec.Operator {
				return &exec.Limit{Child: inner(in), Count: limit, Offset: offset}
			},
		}
		if n.streamAgg != nil {
			post := n.streamAgg.PostBuild
			n.streamAgg.PostBuild = func(rows []types.Row, presorted bool) exec.Operator {
				return &exec.Limit{Child: post(rows, presorted), Count: limit, Offset: offset}
			}
			n.streamAgg.PostKey += fmt.Sprintf("|L:%d,%d", limit, offset)
		}
	}
	return n, nil
}

// buildSelectCore plans items/from/where/group/having of one block.
func (b *builder) buildSelectCore(sel *sql.Select) (*node, error) {
	hadStream := b.stream != nil

	rel, postConds, err := b.buildFrom(sel.From, sel.Where)
	if err != nil {
		return nil, err
	}
	if len(postConds) > 0 {
		if rel, err = b.pushFilter(rel, postConds); err != nil {
			return nil, err
		}
	}

	// Shared-aggregation candidacy: a single windowed stream as the only
	// FROM item, with the whole WHERE applicable at the leaf.
	streamOnlyFrom := !hadStream && b.stream != nil &&
		len(sel.From) == 1 && rel.isStreamShape()

	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if item.Expr != nil && containsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	if sel.Having != nil {
		hasAgg = true
	}

	if !hasAgg {
		return b.buildProjection(sel, rel)
	}
	return b.buildAggregate(sel, rel, streamOnlyFrom)
}

// isStreamShape reports whether the relation is the stream leaf, possibly
// wrapped in filters (pushFilter preserves isStream).
func (r *relNode) isStreamShape() bool { return r.isStream }

// buildProjection plans the non-aggregate projection (+DISTINCT).
func (b *builder) buildProjection(sel *sql.Select, rel *relNode) (*node, error) {
	exprs, schema, closeCol, err := b.compileItems(sel.Items, rel.scope)
	if err != nil {
		return nil, err
	}
	inner := rel.build
	n := &node{
		schema:   schema,
		closeCol: closeCol,
		build: func(in Input) exec.Operator {
			return &exec.Project{Child: inner(in), Exprs: exprs}
		},
	}
	if sel.Distinct {
		pb := n.build
		n.build = func(in Input) exec.Operator { return &exec.Distinct{Child: pb(in)} }
	}
	// Stash the pre-projection scope for ORDER BY hidden columns.
	n.preScope = rel.scope
	n.preBuild = rel.build
	n.projExprs = exprs
	n.distinct = sel.Distinct
	return n, nil
}

// compileItems compiles the projection list, expanding stars.
func (b *builder) compileItems(items []sql.SelectItem, sc *scope) ([]*expr.Scalar, types.Schema, int, error) {
	var exprs []*expr.Scalar
	var schema types.Schema
	closeCol := -1
	for _, item := range items {
		switch {
		case item.Star:
			for i, c := range sc.cols {
				exprs = append(exprs, columnScalar(i, c.typ))
				schema = append(schema, types.Column{Name: c.name, Type: c.typ})
			}
		case item.TableStar != "":
			found := false
			for i, c := range sc.cols {
				if c.qual == item.TableStar {
					exprs = append(exprs, columnScalar(i, c.typ))
					schema = append(schema, types.Column{Name: c.name, Type: c.typ})
					found = true
				}
			}
			if !found {
				return nil, nil, -1, fmt.Errorf("plan: relation %q not found for %s.*", item.TableStar, item.TableStar)
			}
		default:
			s, err := expr.Compile(item.Expr, sc)
			if err != nil {
				return nil, nil, -1, err
			}
			if isCQClose(item.Expr) && closeCol == -1 {
				closeCol = len(exprs)
			}
			schema = append(schema, types.Column{Name: outName(item, len(exprs)), Type: s.Type})
			exprs = append(exprs, s)
		}
	}
	return exprs, schema, closeCol, nil
}

func isCQClose(e sql.Expr) bool {
	fc, ok := e.(*sql.FuncCall)
	return ok && strings.ToLower(fc.Name) == "cq_close"
}

// applyOrderBy sorts the output. Keys resolve (in priority order) as:
// output position (ORDER BY 1), output column name/alias, or an arbitrary
// expression over the pre-projection scope (added as hidden sort columns).
func (b *builder) applyOrderBy(n *node, sel *sql.Select) (*node, error) {
	outScope := scopeFrom("", n.schema)
	var keys []exec.SortKey
	var hidden []*expr.Scalar

	for _, item := range sel.OrderBy {
		nf := item.Nulls == sql.NullsFirst
		nl := item.Nulls == sql.NullsLast
		// ORDER BY <position>.
		if lit, ok := item.Expr.(*sql.Literal); ok && lit.Val.Type() == types.TypeInt {
			pos := int(lit.Val.Int())
			if pos < 1 || pos > len(n.schema) {
				return nil, fmt.Errorf("plan: ORDER BY position %d out of range", pos)
			}
			keys = append(keys, exec.SortKey{Expr: columnScalar(pos-1, n.schema[pos-1].Type), Desc: item.Desc, NullsFirst: nf, NullsLast: nl})
			continue
		}
		// Output column name or alias.
		if cr, ok := item.Expr.(*sql.ColumnRef); ok && cr.Table == "" {
			if cb, err := outScope.ResolveColumn("", cr.Name); err == nil {
				keys = append(keys, exec.SortKey{Expr: columnScalar(cb.Index, cb.Type), Desc: item.Desc, NullsFirst: nf, NullsLast: nl})
				continue
			}
		}
		// Arbitrary expression over the pre-projection scope.
		if n.preScope == nil {
			return nil, fmt.Errorf("plan: ORDER BY expression %q must reference output columns here", item.Expr.String())
		}
		if n.distinct {
			return nil, fmt.Errorf("plan: ORDER BY expressions must appear in the select list with DISTINCT")
		}
		oe := item.Expr
		if n.preRewrite != nil {
			var err error
			if oe, err = n.preRewrite(oe); err != nil {
				return nil, err
			}
		}
		s, err := expr.Compile(oe, n.preScope)
		if err != nil {
			return nil, err
		}
		// Hidden column at position len(schema)+len(hidden).
		pos := len(n.schema) + len(hidden)
		hidden = append(hidden, s)
		keys = append(keys, exec.SortKey{Expr: columnScalar(pos, s.Type), Desc: item.Desc, NullsFirst: nf, NullsLast: nl})
	}

	schema := n.schema
	width := len(schema)
	var build func(in Input) exec.Operator
	if len(hidden) == 0 {
		inner := n.build
		build = func(in Input) exec.Operator {
			return &exec.Sort{Child: inner(in), Keys: keys}
		}
	} else {
		if n.preBuild == nil {
			return nil, fmt.Errorf("plan: ORDER BY expression not supported for this query shape")
		}
		// Re-project with hidden columns, sort, then strip them.
		all := append(append([]*expr.Scalar{}, n.projExprs...), hidden...)
		pre := n.preBuild
		strip := make([]*expr.Scalar, width)
		for i := range strip {
			strip[i] = columnScalar(i, schema[i].Type)
		}
		build = func(in Input) exec.Operator {
			proj := &exec.Project{Child: pre(in), Exprs: all}
			sorted := &exec.Sort{Child: proj, Keys: keys}
			return &exec.Project{Child: sorted, Exprs: strip}
		}
	}

	out := &node{
		schema:    schema,
		streamAgg: n.streamAgg,
		closeCol:  n.closeCol,
		build:     build,
	}
	if n.streamAgg != nil && n.aggPostScope != nil && len(hidden) == 0 {
		// Mirror the sort into the shared-aggregation fast path.
		post := n.streamAgg.PostBuild
		var ob strings.Builder
		ob.WriteString("|O:")
		for _, item := range sel.OrderBy {
			ob.WriteString(item.Expr.String())
			if item.Desc {
				ob.WriteString(" desc")
			}
			switch item.Nulls {
			case sql.NullsFirst:
				ob.WriteString(" nf")
			case sql.NullsLast:
				ob.WriteString(" nl")
			}
			ob.WriteByte(';')
		}
		out.streamAgg = &StreamAgg{
			Pred:        n.streamAgg.Pred,
			GroupBy:     n.streamAgg.GroupBy,
			Aggs:        n.streamAgg.Aggs,
			Fingerprint: n.streamAgg.Fingerprint,
			PostKey:     n.streamAgg.PostKey + ob.String(),
			PostBuild: func(rows []types.Row, presorted bool) exec.Operator {
				return &exec.Sort{Child: post(rows, presorted), Keys: keys}
			},
		}
	} else if n.streamAgg != nil {
		// Hidden-column sorts are not mirrored; drop the fast path.
		out.streamAgg = nil
	}
	return out, nil
}
