package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedSample is one series line of a Prometheus text exposition:
// name, labels, and value. Histogram _bucket/_sum/_count lines parse as
// individual samples (the flat wire shape).
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ID renders the parsed series identity the way seriesID does, so parsed
// scrapes compare against local Gather output.
func (p *ParsedSample) ID() string {
	labels := make([]Label, 0, len(p.Labels))
	for k, v := range p.Labels {
		labels = append(labels, Label{Key: k, Value: v})
	}
	return seriesID(p.Name, sortLabels(labels))
}

// ParseExposition parses (and thereby validates) a Prometheus text-format
// scrape: HELP/TYPE comments, metric lines, label syntax, float values. It
// returns every sample line, or the first syntax error with its line
// number. The conventions test and cluster smoke use it to fail on
// malformed exposition from any /metrics endpoint.
func ParseExposition(r io.Reader) ([]ParsedSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []ParsedSample
	typed := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("metrics: line %d: unknown TYPE %q", lineNo, rest)
				}
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("metrics: line %d: duplicate TYPE for %q", lineNo, name)
				}
				typed[name] = rest
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseComment splits "# HELP name text" / "# TYPE name kind". Other
// comments pass through with kind "".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	switch {
	case strings.HasPrefix(body, "HELP "):
		fields := strings.SplitN(body[len("HELP "):], " ", 2)
		if len(fields) == 0 || !validMetricName(fields[0]) {
			return "", "", "", fmt.Errorf("malformed HELP comment %q", line)
		}
		return "HELP", fields[0], "", nil
	case strings.HasPrefix(body, "TYPE "):
		fields := strings.Fields(body[len("TYPE "):])
		if len(fields) != 2 || !validMetricName(fields[0]) {
			return "", "", "", fmt.Errorf("malformed TYPE comment %q", line)
		}
		return "TYPE", fields[0], fields[1], nil
	default:
		return "", "", "", nil
	}
}

// parseSampleLine parses `name{k="v",…} value` (labels optional).
func parseSampleLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed metric line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed metric line %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",…} block starting at text[0]=='{' into dst,
// returning the index just past the closing brace.
func parseLabels(text string, dst map[string]string) (int, error) {
	i := 1
	for {
		// Allow {} and trailing comma tolerance is NOT given: match the
		// writer's exact shape.
		if i < len(text) && text[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(text) && isNameChar(text[i], i == start) {
			i++
		}
		if i == start || i >= len(text) || text[i] != '=' {
			return 0, fmt.Errorf("malformed label name")
		}
		key := text[start:i]
		i++ // '='
		if i >= len(text) || text[i] != '"' {
			return 0, fmt.Errorf("unquoted label value")
		}
		i++
		var val strings.Builder
		for i < len(text) && text[i] != '"' {
			if text[i] == '\\' {
				i++
				if i >= len(text) {
					return 0, fmt.Errorf("truncated escape")
				}
				switch text[i] {
				case '\\', '"':
					val.WriteByte(text[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c", text[i])
				}
				i++
				continue
			}
			val.WriteByte(text[i])
			i++
		}
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if _, dup := dst[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		dst[key] = val.String()
		switch {
		case i < len(text) && text[i] == ',':
			i++
		case i < len(text) && text[i] == '}':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("malformed label separator")
		}
	}
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0) {
			return false
		}
	}
	return name != ""
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// sortLabels orders labels by key (the series-identity order).
func sortLabels(labels []Label) []Label {
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j].Key < labels[j-1].Key; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	return labels
}
