package metrics

import (
	"strings"
	"testing"
)

// TestParseRoundTrip: WritePrometheus output must parse back losslessly —
// every gathered counter/gauge value and every histogram _bucket/_sum/_count
// line appears as a parsed sample.
func TestParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("streamrel_test_events_total", "events", L("stream", "s"), L("op", "append")).Add(42)
	reg.Gauge("streamrel_test_depth", "queue depth").Set(7.5)
	h := reg.Histogram("streamrel_test_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition failed to parse: %v\n%s", err, b.String())
	}
	byID := map[string]float64{}
	for i := range parsed {
		byID[parsed[i].ID()] = parsed[i].Value
	}
	want := map[string]float64{
		`streamrel_test_events_total{op="append",stream="s"}`: 42,
		`streamrel_test_depth`:                                7.5,
		`streamrel_test_lat_seconds_bucket{le="0.001"}`:       0,
		`streamrel_test_lat_seconds_bucket{le="0.01"}`:        1,
		`streamrel_test_lat_seconds_bucket{le="0.1"}`:         2,
		`streamrel_test_lat_seconds_bucket{le="+Inf"}`:        3,
		`streamrel_test_lat_seconds_count`:                    3,
		`streamrel_test_lat_seconds_sum`:                      5.055,
	}
	for id, v := range want {
		got, ok := byID[id]
		if !ok {
			t.Errorf("series %s missing from parse; have %v", id, byID)
		} else if got != v {
			t.Errorf("series %s = %v, want %v", id, got, v)
		}
	}
}

// TestParseFederatedOutput: the router's federation path (WithLabel to tag
// the shard, WriteSamples to render) must produce valid exposition with the
// shard label intact.
func TestParseFederatedOutput(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("streamrel_test_rows_total", "rows", L("stream", "s")).Add(3)
	var tagged []*Sample
	for _, s := range reg.Gather() {
		tagged = append(tagged, s.WithLabel("shard", "1"))
	}
	var b strings.Builder
	WriteSamples(&b, tagged)
	parsed, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("federated exposition failed to parse: %v\n%s", err, b.String())
	}
	found := false
	for i := range parsed {
		if parsed[i].Name == "streamrel_test_rows_total" {
			found = true
			if parsed[i].Labels["shard"] != "1" || parsed[i].Labels["stream"] != "s" {
				t.Errorf("labels = %v", parsed[i].Labels)
			}
		}
	}
	if !found {
		t.Fatal("tagged series missing")
	}
}

func TestParseLabelEscapes(t *testing.T) {
	in := `streamrel_x{msg="a\"b\\c\nd"} 1` + "\n"
	parsed, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed[0].Labels["msg"]; got != "a\"b\\c\nd" {
		t.Errorf("unescaped value = %q", got)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown TYPE":       "# TYPE streamrel_x widget\nstreamrel_x 1\n",
		"duplicate TYPE":     "# TYPE streamrel_x counter\n# TYPE streamrel_x counter\n",
		"malformed TYPE":     "# TYPE streamrel_x\n",
		"bad HELP name":      "# HELP 9bad text\n",
		"no value":           "streamrel_x\n",
		"bad value":          "streamrel_x oops\n",
		"unquoted label":     "streamrel_x{a=1} 1\n",
		"duplicate label":    `streamrel_x{a="1",a="2"} 1` + "\n",
		"bad escape":         `streamrel_x{a="\t"} 1` + "\n",
		"unterminated label": `streamrel_x{a="1 1` + "\n",
		"bad separator":      `streamrel_x{a="1"b="2"} 1` + "\n",
		"bad name":           "9streamrel 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want parse error for %q", name, in)
		}
	}
	// A trailing timestamp and non-HELP/TYPE comments are legal.
	ok := "# scraped by test\nstreamrel_x 1 1690000000\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("legal input rejected: %v", err)
	}
}
