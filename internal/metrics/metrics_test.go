package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "help a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same identity returns the same handle.
	if r.Counter("a_total", "") != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	// Distinct labels are distinct series.
	c2 := r.Counter("b_total", "", L("k", "v1"))
	c3 := r.Counter("b_total", "", L("k", "v2"))
	if c2 == c3 {
		t.Fatalf("distinct labels shared a series")
	}

	g := r.Gauge("g", "help g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	r.GaugeFunc("f", "", func() float64 { return 1 })()
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry gathered %v", got)
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("WritePrometheus on nil registry: %v", err)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 50; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05) // second bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // +Inf bucket
	}
	samples := r.Gather()
	if len(samples) != 1 {
		t.Fatalf("gathered %d samples, want 1", len(samples))
	}
	s := samples[0]
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := 50*0.005 + 40*0.05 + 10*5.0
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
	wantCum := []int64{50, 90, 90, 100}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	// p50 lands inside the first bucket (rank 50 of 50 there).
	if q := s.Quantile(0.50); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %g, want within (0, 0.01]", q)
	}
	// p95 lands in the +Inf bucket and clamps to the last finite bound.
	if q := s.Quantile(0.95); q != 1 {
		t.Fatalf("p95 = %g, want clamp to 1", q)
	}
	if q := (&Sample{Kind: KindHistogram}).Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty histogram quantile = %g, want NaN", q)
	}
}

func TestGaugeFuncAndUnregister(t *testing.T) {
	r := NewRegistry()
	depth := 7
	unreg := r.GaugeFunc("queue_depth", "queued tasks", func() float64 { return float64(depth) },
		L("pipe", "1"))
	got := r.Gather()
	if len(got) != 1 || got[0].Value != 7 {
		t.Fatalf("gauge func gathered %+v", got)
	}
	unreg()
	if got := r.Gather(); len(got) != 0 {
		t.Fatalf("after unregister gathered %d samples", len(got))
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestPrometheusGolden pins the full text exposition format.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_rows_total", "rows ingested", L("stream", "s1")).Add(12)
	r.Counter("app_rows_total", "rows ingested", L("stream", "s2")).Add(3)
	r.Gauge("app_connections", "open connections").Set(2)
	h := r.Histogram("app_fsync_seconds", "fsync latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP app_connections open connections`,
		`# TYPE app_connections gauge`,
		`app_connections 2`,
		`# HELP app_fsync_seconds fsync latency`,
		`# TYPE app_fsync_seconds histogram`,
		`app_fsync_seconds_bucket{le="0.001"} 2`,
		`app_fsync_seconds_bucket{le="0.01"} 2`,
		`app_fsync_seconds_bucket{le="+Inf"} 3`,
		`app_fsync_seconds_sum 0.501`,
		`app_fsync_seconds_count 3`,
		`# HELP app_rows_total rows ingested`,
		`# TYPE app_rows_total counter`,
		`app_rows_total{stream="s1"} 12`,
		`app_rows_total{stream="s2"} 3`,
		``,
	}, "\n")
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "hits_total 1") {
		t.Fatalf("body missing counter:\n%s", body)
	}
}

// TestConcurrentObserveAndGather races writers against snapshotters; run
// under -race it checks the lock-free hot path, and it verifies no
// observations are lost.
func TestConcurrentObserveAndGather(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000
	c := r.Counter("ops_total", "")
	h := r.Histogram("lat_seconds", "", nil)
	g := r.Gauge("depth", "")

	var writers sync.WaitGroup
	stop := make(chan struct{})
	snapshotterDone := make(chan struct{})
	// Snapshot continuously while writers hammer the metrics.
	go func() {
		defer close(snapshotterDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Gather() {
				if s.Kind == KindHistogram {
					// Cumulative buckets must be monotone in any snapshot.
					last := int64(0)
					for _, b := range s.Buckets {
						if b.Count < last {
							t.Errorf("non-monotone cumulative buckets: %v", s.Buckets)
							return
						}
						last = b.Count
					}
				}
			}
			_ = r.Counter("ops_total", "") // concurrent get-or-create
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	writers.Wait()
	close(stop)
	<-snapshotterDone

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %g, want 0", got)
	}
}
