// Package metrics is the engine's observability backbone: a stdlib-only
// registry of named counters, gauges, and fixed-bucket histograms.
//
// Design constraints, in order:
//
//  1. The hot path (Observe/Add/Inc on a handle the caller already holds)
//     is lock-free: plain atomic adds, plus one CAS loop for histogram
//     sums. No map lookups, no allocation, no locks.
//  2. Reads are snapshot-on-read: Gather copies every atomic into a plain
//     Sample slice, so exposition never blocks writers.
//  3. Instrumentation is optional: every method is nil-receiver safe, so
//     code paths constructed without a registry (internal tests, ad-hoc
//     tools) carry nil handles at the cost of one branch.
//
// Metric identity is name plus a sorted label set, Prometheus-style
// (`streamrel_pipeline_rows_total{pipe="3",stream="url_stream"}`).
// Registration is get-or-create: asking for the same identity returns the
// same handle, so restarts of a component keep accumulating into its
// series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric types in snapshots and exposition.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing integer. The zero value is ready
// to use; registry-issued counters share one instance per identity.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta (which must be non-negative to keep the counter
// monotonic; this is not enforced on the hot path). Nil-safe.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (queue depths, connection
// counts, last-recovery duration).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop. Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper bounds, sorted
// ascending, implicit +Inf last) and tracks their sum. Observe is
// lock-free: one atomic add for the bucket, one atomic add for the count,
// one CAS loop for the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Latency buckets are few (~20) and mostly hit the low end, so a
	// linear scan beats binary search in practice and stays branch-simple.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
// Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// DefLatencyBuckets covers 10µs to 10s exponentially — wide enough for
// in-memory window fires (microseconds) and fsync stalls (milliseconds to
// seconds) with one shared scale, so dashboards can overlay them.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// series is one registered metric instance.
type series struct {
	name    string
	labels  []Label // sorted by key
	kind    Kind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64 // non-nil for callback gauges
	hist    *Histogram
}

// Registry holds named metrics. All registration methods are
// get-or-create and safe for concurrent use; handles returned are shared.
// A nil *Registry is valid and returns nil handles, disabling
// instrumentation for the code path that holds it.
type Registry struct {
	mu   sync.Mutex
	help map[string]string  // family name -> help text
	kind map[string]Kind    // family name -> kind (mismatches panic)
	byID map[string]*series // name + rendered labels -> series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		help: make(map[string]string),
		kind: make(map[string]Kind),
		byID: make(map[string]*series),
	}
}

// Counter returns the counter for name+labels, creating it if needed.
// Nil-safe: a nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	var c *Counter
	r.lookup(name, help, KindCounter, labels, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
		c = s.counter
	})
	return c
}

// Gauge returns the gauge for name+labels, creating it if needed.
// Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	var g *Gauge
	r.lookup(name, help, KindGauge, labels, func(s *series) {
		if s.gauge == nil && s.gaugeFn == nil {
			s.gauge = &Gauge{}
		}
		g = s.gauge
	})
	return g
}

// GaugeFunc registers a callback gauge evaluated at Gather time (e.g. a
// queue depth read with len(ch)). It returns an unregister function for
// components with bounded lifetimes. Nil-safe: a nil registry returns a
// no-op unregister.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) func() {
	if r == nil {
		return func() {}
	}
	var id string
	r.lookup(name, help, KindGauge, labels, func(s *series) {
		s.gauge, s.gaugeFn = nil, fn
		id = seriesID(name, s.labels)
	})
	return func() { r.unregister(id) }
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds (nil means DefLatencyBuckets). Buckets are
// fixed at first registration. Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	var h *Histogram
	r.lookup(name, help, KindHistogram, labels, func(s *series) {
		if s.hist == nil {
			if buckets == nil {
				buckets = DefLatencyBuckets
			}
			bounds := append([]float64(nil), buckets...)
			sort.Float64s(bounds)
			s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		}
		h = s.hist
	})
	return h
}

// lookup finds or creates the series, enforcing one kind per family name.
// init runs with the registry lock held: series handle fields may only be
// read or written inside it (Gather snapshots them under the same lock).
func (r *Registry) lookup(name, help string, kind Kind, labels []Label, init func(*series)) {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	id := seriesID(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kind[name]; ok && k != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s", name, kind, k))
	}
	r.kind[name] = kind
	if help != "" && r.help[name] == "" {
		r.help[name] = help
	}
	s, ok := r.byID[id]
	if !ok {
		s = &series{name: name, labels: sorted, kind: kind}
		r.byID[id] = s
	}
	init(s)
}

// unregister removes one series (help/kind for the family remain).
func (r *Registry) unregister(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byID, id)
}

// seriesID renders the unique identity of one series.
func seriesID(name string, sorted []Label) string {
	if len(sorted) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
