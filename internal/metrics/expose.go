package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot: the count of
// observations <= UpperBound.
type Bucket struct {
	UpperBound float64
	Count      int64
}

// Sample is the snapshot of one series, self-contained and inert: the
// atomics have been copied out, so holders can format or aggregate it
// without touching live metrics.
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	Help   string

	// Counter / gauge value.
	Value float64

	// Histogram fields (Kind == KindHistogram). Buckets are cumulative
	// and end with the +Inf bucket, whose count equals Count.
	Count   int64
	Sum     float64
	Buckets []Bucket
}

// ID renders the series identity (name plus sorted labels).
func (s *Sample) ID() string { return seriesID(s.Name, s.Labels) }

// Quantile estimates the q-quantile (0 < q < 1) of a histogram sample by
// linear interpolation inside the owning bucket, the same estimate
// Prometheus's histogram_quantile computes. Observations beyond the last
// finite bound clamp to it. Returns NaN for non-histograms or empty
// histograms.
func (s *Sample) Quantile(q float64) float64 {
	if s.Kind != KindHistogram || s.Count == 0 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if i == len(s.Buckets)-1 {
			// +Inf bucket: clamp to the last finite bound.
			if len(s.Buckets) >= 2 {
				return s.Buckets[len(s.Buckets)-2].UpperBound
			}
			return math.NaN()
		}
		lo, below := 0.0, int64(0)
		if i > 0 {
			lo, below = s.Buckets[i-1].UpperBound, s.Buckets[i-1].Count
		}
		width := b.UpperBound - lo
		inBucket := b.Count - below
		if inBucket <= 0 {
			return b.UpperBound
		}
		return lo + width*(rank-float64(below))/float64(inBucket)
	}
	return math.NaN()
}

// Gather snapshots every registered series, sorted by name then label
// identity. Nil-safe: a nil registry gathers nothing.
func (r *Registry) Gather() []*Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Copy each series by value: handle fields (counter/gauge/gaugeFn/hist)
	// are written under r.mu by lookup's init callbacks, so they must be
	// read under it too. The atomics behind the copied pointers are then
	// loaded lock-free below.
	all := make([]series, 0, len(r.byID))
	for _, s := range r.byID {
		all = append(all, *s)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	out := make([]*Sample, 0, len(all))
	for _, s := range all {
		smp := &Sample{Name: s.name, Labels: s.labels, Kind: s.kind, Help: help[s.name]}
		switch {
		case s.counter != nil:
			smp.Value = float64(s.counter.Value())
		case s.gaugeFn != nil:
			smp.Value = s.gaugeFn()
		case s.gauge != nil:
			smp.Value = s.gauge.Value()
		case s.hist != nil:
			h := s.hist
			smp.Sum = math.Float64frombits(h.sum.Load())
			cum := int64(0)
			smp.Buckets = make([]Bucket, 0, len(h.counts))
			for i := range h.counts {
				cum += h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				smp.Buckets = append(smp.Buckets, Bucket{UpperBound: ub, Count: cum})
			}
			// The per-bucket loads race with concurrent Observe calls;
			// make the snapshot internally consistent by taking the +Inf
			// cumulative count as authoritative.
			smp.Count = cum
		}
		out = append(out, smp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, s := range r.Gather() {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, s *Sample) error {
	switch s.Kind {
	case KindHistogram:
		for _, b := range s.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s %d\n",
				seriesID(s.Name+"_bucket", withLabel(s.Labels, "le", le)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesID(s.Name+"_sum", s.Labels), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesID(s.Name+"_count", s.Labels), s.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s %s\n", s.ID(), formatFloat(s.Value))
		return err
	}
}

// WithLabel returns a copy of the sample with one extra label (re-sorted
// into identity order). Federating routers use it to tag per-shard scrapes
// with shard="N" before merging.
func (s *Sample) WithLabel(key, value string) *Sample {
	out := *s
	out.Labels = withLabel(s.Labels, key, value)
	return &out
}

// WriteSamples renders an arbitrary sample list in the Prometheus text
// exposition format: samples are sorted by family then series identity,
// HELP/TYPE emitted once per family. It is WritePrometheus for samples
// that did not come from one local registry — the router's federation
// endpoint merges per-shard Gathers and renders them here.
func WriteSamples(w io.Writer, samples []*Sample) error {
	sorted := append([]*Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].ID() < sorted[j].ID()
	})
	lastFamily := ""
	for _, s := range sorted {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

// withLabel returns labels plus one extra, re-sorted.
func withLabel(labels []Label, key, value string) []Label {
	out := append(append([]Label(nil), labels...), Label{Key: key, Value: value})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry at any path in the Prometheus text format;
// mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String())
	})
}
