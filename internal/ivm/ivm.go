// Package ivm is the engine's incremental view maintenance subsystem: a
// delta compiler plus a materialized aggregate state store, following
// DBToaster-style delta processing (PAPERS.md). Where the re-execution
// path scans every window row at every fire — O(window) even when the
// advance touched a handful of groups — an incremental pipeline keeps one
// running accumulator per group, applies insert deltas as rows arrive and
// retract deltas as slices expire, and fires by emitting the materialized
// state directly: O(groups) per fire, O(changed groups) maintenance per
// advance, independent of window width.
//
// State is two-layered. The window layer (groups) holds one retractable
// accumulator set per live group and is what fires emit. The slice layer
// (slices) holds per-slice per-group partials — the retraction source:
// when a slice falls out of the window, subtractable aggregates
// (COUNT/SUM/AVG — AVG via its SUM+COUNT decomposition) subtract the
// expired partial from the window accumulator, while MIN/MAX, which have
// no inverse, re-merge the surviving slice partials in ascending slice
// order (reproducing arrival-order tie behavior, since streams are
// in-order). A group leaves the state when its last window row expires,
// so a vanished group stops emitting exactly as re-execution would.
//
// The stream runtime consults Compile at pipeline registration;
// non-qualifying plans (plan.Plan.DeltaProgram says why) fall back to the
// existing re-execution or shared-slice paths untouched.
package ivm

import (
	"sort"
	"sync/atomic"

	"streamrel/internal/exec"
	"streamrel/internal/expr"
	"streamrel/internal/plan"
	"streamrel/internal/types"
)

// State is the materialized aggregate state of one incremental pipeline.
// All methods except the exported atomic gauges are called only on the
// goroutine that applies the pipeline's input (its worker in parallel
// mode, otherwise the producer under the source lock).
type State struct {
	spec    *plan.StreamAgg
	kinds   []exec.DeltaKind
	advance int64
	visible int64

	slices map[int64]*slice  // keyed by slice start timestamp
	groups map[string]*group // window-level materialized accumulators

	// ordered keeps the groups sorted by key (types.CompareRows order,
	// matching exec.HashAgg's SortedOutput). It is maintained
	// incrementally: new groups collect in pending and are merged in at
	// the next fire, removed groups are tombstoned in place and compacted
	// then. A skewed stream adds a few tail groups every advance, and a
	// full re-sort per fire was the dominant fire cost at 10k+ groups;
	// the merge costs O(groups) pointer copies and only as many key
	// comparisons as it takes to place the newcomers.
	ordered []*group
	pending []*group
	scratch []*group
	removed int

	// dirty tracks the distinct groups touched since the last fire — the
	// streamrel_ivm_groups_touched_total increment per fire.
	dirty map[string]struct{}

	keyScratch types.Row

	// fireBacking/fireRows are the output materialization, reused across
	// fires (see Fire's aliasing contract).
	fireBacking []types.Datum
	fireRows    []types.Row

	// anyMerge is true when at least one aggregate is non-subtractable
	// (min/max), so expiry needs the surviving slice order.
	anyMerge bool

	// GroupsN and SlicesN mirror len(groups) / len(slices) for metric
	// gauges, which read from other goroutines.
	GroupsN atomic.Int64
	SlicesN atomic.Int64
}

type slice struct {
	start  int64
	groups map[string]*sliceGroup
}

type sliceGroup struct {
	keys types.Row
	rows int64 // rows that passed the filter into this group, this slice
	accs []exec.DeltaAcc
}

type group struct {
	keys types.Row
	rows int64 // live (unexpired) filtered rows across the window
	accs []exec.DeltaAcc
	dead bool // expired out; awaiting compaction from ordered/pending
}

// Compile inspects a planned CQ and returns its delta state, or the
// reason it must fall back to re-execution (exactly one is set).
func Compile(p *plan.Plan) (*State, string) {
	kinds, reason := p.DeltaProgram()
	if reason != "" {
		return nil, reason
	}
	s := &State{
		spec:    p.StreamAgg,
		kinds:   kinds,
		advance: p.Stream.Window.Advance,
		visible: p.Stream.Window.Visible,
		slices:  make(map[int64]*slice),
		groups:  make(map[string]*group),
		dirty:   make(map[string]struct{}),
	}
	for _, k := range kinds {
		if !k.Subtractable() {
			s.anyMerge = true
		}
	}
	return s, ""
}

func (s *State) newAccs() []exec.DeltaAcc {
	accs := make([]exec.DeltaAcc, len(s.kinds))
	for i, k := range s.kinds {
		accs[i] = exec.NewDeltaAcc(k, s.spec.Aggs[i])
	}
	return accs
}

// Insert applies one arriving row as an insert delta: evaluate the filter
// and group keys once, then fold the aggregate arguments into both the
// row's slice partial (the future retraction) and the window accumulator.
func (s *State) Insert(row types.Row, ts int64) error {
	ec := &expr.Ctx{Row: row}
	if s.spec.Pred != nil {
		v, err := s.spec.Pred.Eval(ec)
		if err != nil {
			return err
		}
		if v.IsNull() || !v.Bool() {
			return nil
		}
	}
	if s.keyScratch == nil {
		s.keyScratch = make(types.Row, len(s.spec.GroupBy))
	}
	for i, g := range s.spec.GroupBy {
		v, err := g.Eval(ec)
		if err != nil {
			return err
		}
		s.keyScratch[i] = v
	}
	k := s.keyScratch.Key()

	start := floorDiv(ts, s.advance) * s.advance
	sl, ok := s.slices[start]
	if !ok {
		sl = &slice{start: start, groups: make(map[string]*sliceGroup)}
		s.slices[start] = sl
		s.SlicesN.Add(1)
	}
	sg, ok := sl.groups[k]
	if !ok {
		sg = &sliceGroup{keys: s.keyScratch.Clone(), accs: s.newAccs()}
		sl.groups[k] = sg
	}
	g, ok := s.groups[k]
	if !ok {
		g = &group{keys: sg.keys, accs: s.newAccs()}
		s.groups[k] = g
		s.pending = append(s.pending, g)
		s.GroupsN.Add(1)
	}
	sg.rows++
	g.rows++
	s.dirty[k] = struct{}{}

	for i, spec := range s.spec.Aggs {
		v := types.True
		if spec.Arg != nil {
			var err error
			if v, err = spec.Arg.Eval(ec); err != nil {
				return err
			}
		}
		if err := sg.accs[i].Add(v); err != nil {
			return err
		}
		if err := g.accs[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

// Fire materializes the closing window directly from state: one row per
// live group (group keys ++ aggregate results), sorted by group key,
// carved out of one flat backing array so a fire costs zero steady-state
// allocations. The returned rows alias state-owned storage and are valid
// only until the next Fire — the caller must finish draining the plan
// built over them first (the plan always re-materializes through a
// Project, so nothing downstream retains them). Scalar aggregates over
// an empty window produce the SQL default row, matching exec.HashAgg.
// touched reports the distinct groups changed since the previous fire.
// By construction (boundaries fire in order, Expire runs after each) the
// state holds exactly the slices of the closing window [c-VISIBLE, c).
func (s *State) Fire() (rows []types.Row, touched int, err error) {
	touched = len(s.dirty)
	clear(s.dirty)
	if len(s.groups) == 0 && len(s.spec.GroupBy) == 0 {
		accs := s.newAccs()
		row := make(types.Row, len(accs))
		for i, a := range accs {
			row[i] = a.Result()
		}
		return []types.Row{row}, touched, nil
	}
	s.maintainOrder()
	width := len(s.spec.GroupBy) + len(s.spec.Aggs)
	need := len(s.ordered) * width
	if cap(s.fireBacking) < need {
		s.fireBacking = make([]types.Datum, need)
	}
	backing := s.fireBacking[:0:need]
	out := s.fireRows[:0]
	for _, g := range s.ordered {
		at := len(backing)
		backing = append(backing, g.keys...)
		for _, a := range g.accs {
			backing = append(backing, a.Result())
		}
		out = append(out, types.Row(backing[at:at+width:at+width]))
	}
	s.fireRows = out
	return out, touched, nil
}

// maintainOrder folds pending group additions into the sorted order and
// compacts tombstoned removals, in one linear pass. A group key re-added
// after its removal gets a fresh *group, so a tombstone and its live
// successor can coexist until compaction; the tombstone is simply
// skipped.
func (s *State) maintainOrder() {
	if len(s.pending) == 0 && s.removed == 0 {
		return
	}
	add := s.pending[:0]
	for _, g := range s.pending {
		if !g.dead {
			add = append(add, g)
		}
	}
	sort.Slice(add, func(i, j int) bool {
		return types.CompareRows(add[i].keys, add[j].keys) < 0
	})
	merged := s.scratch[:0]
	ai := 0
	for _, g := range s.ordered {
		if g.dead {
			continue
		}
		for ai < len(add) && types.CompareRows(add[ai].keys, g.keys) < 0 {
			merged = append(merged, add[ai])
			ai++
		}
		merged = append(merged, g)
	}
	merged = append(merged, add[ai:]...)
	s.ordered, s.scratch = merged, s.ordered[:0]
	s.pending = s.pending[:0]
	s.removed = 0
}

// Expire applies retract deltas for every slice starting before keepFrom
// (the first slice the next window can still see): subtractable
// aggregates subtract the expired partial; min/max re-merge the surviving
// per-slice partials for the groups the expired slice held. Groups whose
// last live row expired are dropped.
func (s *State) Expire(keepFrom int64) error {
	var expired []*slice
	for start, sl := range s.slices {
		if start < keepFrom {
			expired = append(expired, sl)
			delete(s.slices, start)
		}
	}
	if len(expired) == 0 {
		return nil
	}
	s.SlicesN.Add(-int64(len(expired)))
	sort.Slice(expired, func(i, j int) bool { return expired[i].start < expired[j].start })

	// Surviving slice starts in ascending order, for min/max re-merge.
	var survivors []int64
	if s.anyMerge {
		for start := range s.slices {
			survivors = append(survivors, start)
		}
		sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	}

	for _, sl := range expired {
		for k, sg := range sl.groups {
			g, ok := s.groups[k]
			if !ok {
				continue // unreachable: every slice row is a window row
			}
			g.rows -= sg.rows
			s.dirty[k] = struct{}{}
			if g.rows <= 0 {
				delete(s.groups, k)
				g.dead = true
				s.removed++
				s.GroupsN.Add(-1)
				continue
			}
			for i, kind := range s.kinds {
				if kind.Subtractable() {
					if err := g.accs[i].Sub(sg.accs[i]); err != nil {
						return err
					}
					continue
				}
				acc := exec.NewDeltaAcc(kind, s.spec.Aggs[i])
				for _, start := range survivors {
					if osg, ok := s.slices[start].groups[k]; ok {
						if err := acc.Merge(osg.accs[i]); err != nil {
							return err
						}
					}
				}
				g.accs[i] = acc
			}
		}
	}
	return nil
}

// floorDiv is integer division rounding toward negative infinity, so
// pre-epoch timestamps slice correctly (same as the stream runtime's).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
