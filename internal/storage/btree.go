package storage

import (
	"sort"
	"sync"

	"streamrel/internal/types"
)

// btreeDegree is the maximum number of children per interior node. Chosen
// for cache-friendliness; correctness does not depend on it.
const btreeDegree = 64

// item is one (key, rowid) pair. Duplicate keys are allowed; ties break on
// RowID so every item is unique and deletable.
type item struct {
	key types.Row
	rid RowID
}

func itemLess(a, b item) bool {
	if c := types.CompareRows(a.key, b.key); c != 0 {
		return c < 0
	}
	return a.rid < b.rid
}

// node is a B-tree node. Leaf nodes have no children.
type node struct {
	items    []item
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// BTree is an in-memory B-tree keyed by datum rows, mapping to heap RowIDs.
// It backs CREATE INDEX and is also used by the sorted side of merge
// strategies. Safe for concurrent use.
type BTree struct {
	mu   sync.RWMutex
	root *node
	size int
}

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{root: &node{}} }

// Len returns the number of entries.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Insert adds (key, rid).
func (t *BTree) Insert(key types.Row, rid RowID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	it := item{key: key, rid: rid}
	if len(t.root.items) >= btreeDegree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, it)
	t.size++
}

func (t *BTree) splitChild(parent *node, i int) {
	child := parent.children[i]
	mid := len(child.items) / 2
	midItem := child.items[mid]
	right := &node{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	parent.items = append(parent.items, item{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = midItem
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *BTree) insertNonFull(n *node, it item) {
	i := sort.Search(len(n.items), func(j int) bool { return itemLess(it, n.items[j]) })
	if n.leaf() {
		n.items = append(n.items, item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return
	}
	if len(n.children[i].items) >= btreeDegree-1 {
		t.splitChild(n, i)
		if itemLess(n.items[i], it) {
			i++
		}
	}
	t.insertNonFull(n.children[i], it)
}

// Delete removes (key, rid) if present, reporting whether it was found.
// Deletion uses lazy rebalancing (no merge): nodes may become sparse but
// never invalid. Index lifetime matches table lifetime here, and sparse
// nodes only cost memory, not correctness.
func (t *BTree) Delete(key types.Row, rid RowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	it := item{key: key, rid: rid}
	if t.deleteFrom(t.root, it) {
		t.size--
		// Collapse a root that lost all items but kept one child.
		for len(t.root.items) == 0 && !t.root.leaf() {
			t.root = t.root.children[0]
		}
		return true
	}
	return false
}

func (t *BTree) deleteFrom(n *node, it item) bool {
	i := sort.Search(len(n.items), func(j int) bool { return !itemLess(n.items[j], it) })
	if i < len(n.items) && !itemLess(it, n.items[i]) && !itemLess(n.items[i], it) {
		// Found at position i.
		if n.leaf() {
			n.items = append(n.items[:i], n.items[i+1:]...)
			return true
		}
		// Replace with predecessor (rightmost of left subtree) and delete it
		// there.
		pred := n.children[i]
		for !pred.leaf() {
			pred = pred.children[len(pred.children)-1]
		}
		n.items[i] = pred.items[len(pred.items)-1]
		return t.deleteFrom(n.children[i], n.items[i])
	}
	if n.leaf() {
		return false
	}
	return t.deleteFrom(n.children[i], it)
}

// AscendRange visits entries with lo <= key <= hi in order; nil bounds are
// open. fn returns false to stop.
func (t *BTree) AscendRange(lo, hi types.Row, fn func(types.Row, RowID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.ascend(t.root, lo, hi, fn)
}

func (t *BTree) ascend(n *node, lo, hi types.Row, fn func(types.Row, RowID) bool) bool {
	start := 0
	if lo != nil {
		start = sort.Search(len(n.items), func(j int) bool {
			return types.CompareRows(n.items[j].key, lo) >= 0
		})
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			if !t.ascend(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		it := n.items[i]
		if hi != nil && types.CompareRows(it.key, hi) > 0 {
			return false
		}
		if !fn(it.key, it.rid) {
			return false
		}
		// Descendants of children[i+1] are all >= items[i] >= lo; stop
		// re-checking lo for them.
		lo = nil
	}
	return true
}

// Ascend visits every entry in key order.
func (t *BTree) Ascend(fn func(types.Row, RowID) bool) { t.AscendRange(nil, nil, fn) }

// SeekEqual visits entries whose key equals key.
func (t *BTree) SeekEqual(key types.Row, fn func(RowID) bool) {
	t.AscendRange(key, key, func(_ types.Row, rid RowID) bool { return fn(rid) })
}
