// Package storage implements the persistent structures of the engine: MVCC
// heap tables and B-tree secondary indexes. Per the paper's unification
// principle (§2.3), "stored data is simply streaming data that has been
// entered into persistent structures such as tables and indexes" — this
// package is those structures.
package storage

import (
	"fmt"
	"sync"

	"streamrel/internal/txn"
	"streamrel/internal/types"
)

// RowID identifies a row version within a heap. RowIDs are stable for the
// life of the heap (versions are never moved), which lets indexes reference
// them and lets the WAL name them during replay.
type RowID uint64

// version is one MVCC row version.
type version struct {
	xmin txn.ID
	xmax txn.ID
	row  types.Row
}

// Heap is an append-only, versioned row store. Deletes stamp xmax; updates
// are delete+insert. A background vacuum is unnecessary at the scale this
// engine targets, but Vacuum is provided for long-running processes.
type Heap struct {
	mu       sync.RWMutex
	name     string
	schema   types.Schema
	versions []version
	liveEst  int // rough count of versions with xmax == 0
}

// NewHeap creates an empty heap for the given schema.
func NewHeap(name string, schema types.Schema) *Heap {
	return &Heap{name: name, schema: schema}
}

// Name returns the heap's table name.
func (h *Heap) Name() string { return h.name }

// Schema returns the heap's schema.
func (h *Heap) Schema() types.Schema { return h.schema }

// Insert appends a new row version owned by tx and returns its RowID.
// The row must match the schema arity; the caller has already type-checked.
func (h *Heap) Insert(tx txn.ID, row types.Row) (RowID, error) {
	if len(row) != len(h.schema) {
		return 0, fmt.Errorf("storage: %s: row has %d columns, schema has %d",
			h.name, len(row), len(h.schema))
	}
	h.mu.Lock()
	id := RowID(len(h.versions))
	h.versions = append(h.versions, version{xmin: tx, row: row})
	h.liveEst++
	h.mu.Unlock()
	return id, nil
}

// InsertAt places a row version owned by tx at an explicit RowID. Replay
// and replication apply use it so local numbering matches what the
// primary logged, including gaps left by aborted transactions: any gap
// below id is padded with never-visible versions (xmin 0, which no
// snapshot sees). Re-applying a record whose slot is already occupied
// refreshes the stored row but keeps the existing visibility stamps, and
// reports replaced=true so the caller can skip index maintenance — this
// makes apply idempotent across an overlap of snapshot and live tail.
func (h *Heap) InsertAt(tx txn.ID, id RowID, row types.Row) (replaced bool, err error) {
	if len(row) != len(h.schema) {
		return false, fmt.Errorf("storage: %s: row has %d columns, schema has %d",
			h.name, len(row), len(h.schema))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for RowID(len(h.versions)) < id {
		h.versions = append(h.versions, version{})
	}
	if int(id) == len(h.versions) {
		h.versions = append(h.versions, version{xmin: tx, row: row})
		h.liveEst++
		return false, nil
	}
	v := &h.versions[id]
	if v.xmin == 0 {
		*v = version{xmin: tx, row: row}
		h.liveEst++
		return false, nil
	}
	v.row = row
	return true, nil
}

// DeleteReplay stamps id deleted like Delete, but tolerates
// re-application: a missing or already-deleted version reports
// applied=false instead of erroring, so a replayed log suffix can overlap
// work already applied.
func (h *Heap) DeleteReplay(tx txn.ID, id RowID) (applied bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(id) >= len(h.versions) {
		return false
	}
	v := &h.versions[id]
	if v.xmin == 0 || v.xmax != 0 {
		return false
	}
	v.xmax = tx
	h.liveEst--
	return true
}

// NextID returns the RowID the next Insert will assign.
func (h *Heap) NextID() RowID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return RowID(len(h.versions))
}

// EnsureNext pads the heap with never-visible versions until the next
// Insert would assign RowID n. Replication snapshots use it so a replica
// continues the primary's numbering even when the trailing versions were
// invisible (aborted) and therefore absent from the snapshot.
func (h *Heap) EnsureNext(n RowID) {
	h.mu.Lock()
	for RowID(len(h.versions)) < n {
		h.versions = append(h.versions, version{})
	}
	h.mu.Unlock()
}

// Delete stamps the version as deleted by tx. Deleting an already-deleted
// version is an error (write-write conflict surfaced to the caller).
func (h *Heap) Delete(tx txn.ID, id RowID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(id) >= len(h.versions) {
		return fmt.Errorf("storage: %s: no row %d", h.name, id)
	}
	v := &h.versions[id]
	if v.xmax != 0 {
		return fmt.Errorf("storage: %s: row %d concurrently deleted", h.name, id)
	}
	v.xmax = tx
	h.liveEst--
	return nil
}

// UndoDelete clears a delete stamp set by an aborted transaction.
func (h *Heap) UndoDelete(tx txn.ID, id RowID) {
	h.mu.Lock()
	if int(id) < len(h.versions) && h.versions[id].xmax == tx {
		h.versions[id].xmax = 0
		h.liveEst++
	}
	h.mu.Unlock()
}

// Get returns the row for id if it is visible under snap.
func (h *Heap) Get(snap txn.Snapshot, id RowID) (types.Row, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if int(id) >= len(h.versions) {
		return nil, false
	}
	v := h.versions[id]
	if !snap.VisibleVersion(v.xmin, v.xmax) {
		return nil, false
	}
	return v.row, true
}

// Scan calls fn for every version visible under snap, in insertion order.
// fn returns false to stop early. The row passed to fn must not be
// mutated.
func (h *Heap) Scan(snap txn.Snapshot, fn func(RowID, types.Row) bool) {
	h.mu.RLock()
	n := len(h.versions)
	h.mu.RUnlock()
	// Versions beyond n were created after the scan began and are invisible
	// to any snapshot the caller can hold; index only up to n. Individual
	// version reads take the lock briefly so concurrent appends don't block
	// the whole scan.
	for i := 0; i < n; i++ {
		h.mu.RLock()
		v := h.versions[i]
		h.mu.RUnlock()
		if !snap.VisibleVersion(v.xmin, v.xmax) {
			continue
		}
		if !fn(RowID(i), v.row) {
			return
		}
	}
}

// Count returns the number of rows visible under snap.
func (h *Heap) Count(snap txn.Snapshot) int {
	n := 0
	h.Scan(snap, func(RowID, types.Row) bool { n++; return true })
	return n
}

// LiveEstimate returns an O(1) approximation of live row count for the
// planner's join-side selection.
func (h *Heap) LiveEstimate() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.liveEst < 0 {
		return 0
	}
	return h.liveEst
}

// Vacuum removes versions invisible to every snapshot at or after horizon
// and returns the number removed. RowIDs are NOT stable across Vacuum, so
// callers must rebuild indexes afterwards; the engine only vacuums during
// checkpoints when it holds an exclusive lock.
func (h *Heap) Vacuum(horizon txn.Snapshot) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	kept := h.versions[:0]
	removed := 0
	for _, v := range h.versions {
		if v.xmax != 0 && !horizon.VisibleVersion(v.xmin, 0) {
			// Created by an aborted txn or already deleted and invisible.
		}
		visible := horizon.VisibleVersion(v.xmin, v.xmax)
		if visible {
			// Freeze: owner is historic now.
			kept = append(kept, version{xmin: txn.Bootstrap, row: v.row})
		} else {
			removed++
		}
	}
	h.versions = kept
	h.liveEst = len(kept)
	return removed
}

// SnapshotRows returns all rows visible under snap; used by checkpoints.
func (h *Heap) SnapshotRows(snap txn.Snapshot) []types.Row {
	var out []types.Row
	h.Scan(snap, func(_ RowID, r types.Row) bool {
		out = append(out, r)
		return true
	})
	return out
}
