package storage

import (
	"math/rand"
	"sort"
	"testing"

	"streamrel/internal/txn"
	"streamrel/internal/types"
)

func intRow(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestHeapInsertScanVisibility(t *testing.T) {
	mgr := txn.NewManager()
	h := NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})

	tx1 := mgr.Begin()
	if _, err := h.Insert(tx1.ID, intRow(1)); err != nil {
		t.Fatal(err)
	}

	// Before commit, another snapshot sees nothing.
	if n := h.Count(mgr.SnapshotNow()); n != 0 {
		t.Fatalf("uncommitted row visible: count=%d", n)
	}
	// The owning txn sees its own write.
	if n := h.Count(tx1.Snap); n != 1 {
		t.Fatalf("own write invisible: count=%d", n)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := h.Count(mgr.SnapshotNow()); n != 1 {
		t.Fatalf("committed row invisible: count=%d", n)
	}

	// A snapshot taken before the commit of a concurrent txn must not see
	// its rows.
	tx2 := mgr.Begin()
	early := mgr.SnapshotNow()
	if _, err := h.Insert(tx2.ID, intRow(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := h.Count(early); n != 1 {
		t.Fatalf("snapshot isolation violated: count=%d", n)
	}
	if n := h.Count(mgr.SnapshotNow()); n != 2 {
		t.Fatalf("count=%d", n)
	}
}

func TestHeapAbortInvisible(t *testing.T) {
	mgr := txn.NewManager()
	h := NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})
	tx := mgr.Begin()
	if _, err := h.Insert(tx.ID, intRow(9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := h.Count(mgr.SnapshotNow()); n != 0 {
		t.Fatalf("aborted row visible: count=%d", n)
	}
}

func TestHeapDelete(t *testing.T) {
	mgr := txn.NewManager()
	h := NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})
	tx := mgr.Begin()
	id, _ := h.Insert(tx.ID, intRow(1))
	tx.Commit()

	before := mgr.SnapshotNow()
	tx2 := mgr.Begin()
	if err := h.Delete(tx2.ID, id); err != nil {
		t.Fatal(err)
	}
	// Deleter no longer sees it; old snapshot still does.
	if _, ok := h.Get(tx2.Snap, id); ok {
		t.Fatal("deleter still sees row")
	}
	if _, ok := h.Get(before, id); !ok {
		t.Fatal("old snapshot lost the row before commit")
	}
	tx2.Commit()
	if _, ok := h.Get(before, id); !ok {
		t.Fatal("pre-delete snapshot must keep seeing the row (MVCC)")
	}
	if _, ok := h.Get(mgr.SnapshotNow(), id); ok {
		t.Fatal("row visible after committed delete")
	}
	// Double delete errors.
	tx3 := mgr.Begin()
	if err := h.Delete(tx3.ID, id); err == nil {
		t.Fatal("double delete should error")
	}
	tx3.Abort()
}

func TestHeapUndoDelete(t *testing.T) {
	mgr := txn.NewManager()
	h := NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})
	tx := mgr.Begin()
	id, _ := h.Insert(tx.ID, intRow(1))
	tx.Commit()

	tx2 := mgr.Begin()
	h.Delete(tx2.ID, id)
	tx2.Abort()
	h.UndoDelete(tx2.ID, id)
	if _, ok := h.Get(mgr.SnapshotNow(), id); !ok {
		t.Fatal("row should be visible after aborted delete is undone")
	}
}

func TestHeapSchemaMismatch(t *testing.T) {
	h := NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})
	if _, err := h.Insert(txn.Bootstrap, intRow(1, 2)); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if err := h.Delete(txn.Bootstrap, 99); err == nil {
		t.Fatal("deleting nonexistent row should error")
	}
}

func TestHeapVacuum(t *testing.T) {
	mgr := txn.NewManager()
	h := NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})
	tx := mgr.Begin()
	var ids []RowID
	for i := int64(0); i < 10; i++ {
		id, _ := h.Insert(tx.ID, intRow(i))
		ids = append(ids, id)
	}
	tx.Commit()
	tx2 := mgr.Begin()
	for _, id := range ids[:5] {
		h.Delete(tx2.ID, id)
	}
	tx2.Commit()
	removed := h.Vacuum(mgr.SnapshotNow())
	if removed != 5 {
		t.Fatalf("Vacuum removed %d, want 5", removed)
	}
	if n := h.Count(mgr.SnapshotNow()); n != 5 {
		t.Fatalf("count after vacuum = %d", n)
	}
}

func TestBTreeBasics(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 100; i++ {
		bt.Insert(intRow(i%10, i), RowID(i))
	}
	if bt.Len() != 100 {
		t.Fatalf("Len = %d", bt.Len())
	}
	// SeekEqual on composite prefix needs full key here; check exact key.
	var got []RowID
	bt.SeekEqual(intRow(3, 13), func(r RowID) bool { got = append(got, r); return true })
	if len(got) != 1 || got[0] != 13 {
		t.Fatalf("SeekEqual = %v", got)
	}
	// Range scan.
	var keys []int64
	bt.AscendRange(intRow(2, 0), intRow(2, 99), func(k types.Row, _ RowID) bool {
		keys = append(keys, k[1].Int())
		return true
	})
	if len(keys) != 10 {
		t.Fatalf("range scan found %d, want 10", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("range scan out of order")
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 50; i++ {
		bt.Insert(intRow(7), RowID(i))
	}
	n := 0
	bt.SeekEqual(intRow(7), func(RowID) bool { n++; return true })
	if n != 50 {
		t.Fatalf("found %d duplicates, want 50", n)
	}
	if !bt.Delete(intRow(7), RowID(25)) {
		t.Fatal("delete of existing entry failed")
	}
	if bt.Delete(intRow(7), RowID(25)) {
		t.Fatal("second delete should report not found")
	}
	n = 0
	bt.SeekEqual(intRow(7), func(RowID) bool { n++; return true })
	if n != 49 {
		t.Fatalf("found %d after delete, want 49", n)
	}
}

func TestBTreeEarlyStop(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 200; i++ {
		bt.Insert(intRow(i), RowID(i))
	}
	n := 0
	bt.Ascend(func(types.Row, RowID) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestBTreeMatchesModel is a property test: random inserts and deletes
// against a sorted-slice model must agree on full-order iteration.
func TestBTreeMatchesModel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	bt := NewBTree()
	type entry struct {
		k   int64
		rid RowID
	}
	var model []entry
	for op := 0; op < 10000; op++ {
		if r.Intn(3) != 0 || len(model) == 0 {
			k := int64(r.Intn(500))
			rid := RowID(op)
			bt.Insert(intRow(k), rid)
			model = append(model, entry{k, rid})
		} else {
			i := r.Intn(len(model))
			e := model[i]
			if !bt.Delete(intRow(e.k), e.rid) {
				t.Fatalf("op %d: model entry missing from tree", op)
			}
			model = append(model[:i], model[i+1:]...)
		}
	}
	sort.Slice(model, func(i, j int) bool {
		if model[i].k != model[j].k {
			return model[i].k < model[j].k
		}
		return model[i].rid < model[j].rid
	})
	if bt.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", bt.Len(), len(model))
	}
	i := 0
	bt.Ascend(func(k types.Row, rid RowID) bool {
		if i >= len(model) {
			t.Fatalf("tree has extra entries")
		}
		if k[0].Int() != model[i].k || rid != model[i].rid {
			t.Fatalf("position %d: tree (%d,%d) vs model (%d,%d)",
				i, k[0].Int(), rid, model[i].k, model[i].rid)
		}
		i++
		return true
	})
	if i != len(model) {
		t.Fatalf("tree iterated %d, model %d", i, len(model))
	}
	// Range queries agree with the model too.
	for trial := 0; trial < 50; trial++ {
		lo := int64(r.Intn(500))
		hi := lo + int64(r.Intn(100))
		want := 0
		for _, e := range model {
			if e.k >= lo && e.k <= hi {
				want++
			}
		}
		got := 0
		bt.AscendRange(intRow(lo), intRow(hi), func(types.Row, RowID) bool { got++; return true })
		if got != want {
			t.Fatalf("range [%d,%d]: got %d, want %d", lo, hi, got, want)
		}
	}
}

func TestSnapshotRows(t *testing.T) {
	mgr := txn.NewManager()
	h := NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})
	tx := mgr.Begin()
	for i := int64(0); i < 3; i++ {
		h.Insert(tx.ID, intRow(i))
	}
	tx.Commit()
	rows := h.SnapshotRows(mgr.SnapshotNow())
	if len(rows) != 3 {
		t.Fatalf("SnapshotRows = %d rows", len(rows))
	}
	if h.LiveEstimate() != 3 {
		t.Fatalf("LiveEstimate = %d", h.LiveEstimate())
	}
}
