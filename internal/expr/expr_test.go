package expr

import (
	"math"
	"strings"
	"testing"

	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// testBinder resolves single-letter columns a..e to row positions 0..4,
// all typed INT except d (FLOAT) and s (STRING at position 5).
type testBinder struct{}

func (testBinder) ResolveColumn(table, name string) (ColumnBinding, error) {
	switch name {
	case "a":
		return ColumnBinding{0, types.TypeInt}, nil
	case "b":
		return ColumnBinding{1, types.TypeInt}, nil
	case "c":
		return ColumnBinding{2, types.TypeInt}, nil
	case "d":
		return ColumnBinding{3, types.TypeFloat}, nil
	case "n":
		return ColumnBinding{4, types.TypeInt}, nil // holds NULL in tests
	case "s":
		return ColumnBinding{5, types.TypeString}, nil
	}
	return ColumnBinding{}, sqlErr(name)
}

func sqlErr(name string) error { return &unknownColumn{name} }

type unknownColumn struct{ name string }

func (e *unknownColumn) Error() string { return "unknown column " + e.name }

var testRow = types.Row{
	types.NewInt(2), types.NewInt(3), types.NewInt(-1),
	types.NewFloat(2.5), types.Null, types.NewString("hello world"),
}

func evalStr(t *testing.T, src string) types.Datum {
	t.Helper()
	ast, err := sql.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	s, err := Compile(ast, testBinder{})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := s.Eval(&Ctx{Row: testRow})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestScalarEval(t *testing.T) {
	cases := []struct {
		src  string
		want types.Datum
	}{
		{"1 + 2 * 3", types.NewInt(7)},
		{"a + b", types.NewInt(5)},
		{"a - b", types.NewInt(-1)},
		{"a * d", types.NewFloat(5)},
		{"b / a", types.NewInt(1)},
		{"b % a", types.NewInt(1)},
		{"-c", types.NewInt(1)},
		{"a = 2", types.True},
		{"a <> 2", types.False},
		{"a < b", types.True},
		{"a >= b", types.False},
		{"a = 2 and b = 3", types.True},
		{"a = 0 or b = 3", types.True},
		{"not a = 2", types.False},
		{"n is null", types.True},
		{"a is null", types.False},
		{"a is not null", types.True},
		{"a between 1 and 3", types.True},
		{"a not between 1 and 3", types.False},
		{"a in (1, 2, 3)", types.True},
		{"a in (5, 6)", types.False},
		{"a not in (5, 6)", types.True},
		{"s like 'hello%'", types.True},
		{"s like '%world'", types.True},
		{"s like 'h_llo%'", types.True},
		{"s like 'xyz%'", types.False},
		{"s not like 'xyz%'", types.True},
		{"case when a = 2 then 'two' else 'other' end", types.NewString("two")},
		{"case a when 1 then 'one' when 2 then 'two' end", types.NewString("two")},
		{"case a when 9 then 'nine' end", types.Null},
		{"cast(a as varchar)", types.NewString("2")},
		{"a::double", types.NewFloat(2)},
		{"'12'::bigint + 1", types.NewInt(13)},
		{"s || '!'", types.NewString("hello world!")},
		{"null is null", types.True},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && types.Compare(got, c.want) != 0) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	cases := []struct {
		src  string
		want types.Datum // Null means NULL
	}{
		{"n = 1", types.Null},
		{"n and true", types.Null},
		{"n = 1 and false", types.False}, // NULL AND false = false
		{"n = 1 or true", types.True},    // NULL OR true = true
		{"n = 1 or false", types.Null},
		{"not (n = 1)", types.Null},
		{"n + 1", types.Null},
		{"n in (1, 2)", types.Null},
		{"1 in (2, n)", types.Null}, // no match, NULL present
		{"1 in (1, n)", types.True}, // match wins
		{"n between 1 and 2", types.Null},
		{"n like 'x'", types.Null},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.IsNull() != c.want.IsNull() {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
			continue
		}
		if !got.IsNull() && types.Compare(got, c.want) != 0 {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBuiltinFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want types.Datum
	}{
		{"lower('ABC')", types.NewString("abc")},
		{"upper('abc')", types.NewString("ABC")},
		{"length(s)", types.NewInt(11)},
		{"trim('  x ')", types.NewString("x")},
		{"replace(s, 'world', 'go')", types.NewString("hello go")},
		{"substr(s, 1, 5)", types.NewString("hello")},
		{"substr(s, 7)", types.NewString("world")},
		{"strpos(s, 'world')", types.NewInt(7)},
		{"concat('a', 1, 'b')", types.NewString("a1b")},
		{"abs(-5)", types.NewInt(5)},
		{"abs(c)", types.NewInt(1)},
		{"floor(2.7)", types.NewFloat(2)},
		{"ceil(2.1)", types.NewFloat(3)},
		{"round(2.567, 2)", types.NewFloat(2.57)},
		{"sqrt(9.0)", types.NewFloat(3)},
		{"power(2, 10)", types.NewFloat(1024)},
		{"sign(-3)", types.NewInt(-1)},
		{"coalesce(n, a)", types.NewInt(2)},
		{"coalesce(n, n)", types.Null},
		{"nullif(a, 2)", types.Null},
		{"nullif(a, 9)", types.NewInt(2)},
		{"greatest(1, 5, 3)", types.NewInt(5)},
		{"least(4, 2, 8)", types.NewInt(2)},
		{"epoch(timestamp '1970-01-01 00:00:01')", types.NewFloat(1)},
		{"date_trunc('minute', timestamp '2009-01-04 09:30:45')",
			mustTS(t, "2009-01-04 09:30:00")},
		{"date_trunc('hour', timestamp '2009-01-04 09:30:45')",
			mustTS(t, "2009-01-04 09:00:00")},
		{"date_trunc('day', timestamp '2009-01-04 09:30:45')",
			mustTS(t, "2009-01-04")},
		{"year(timestamp '2009-01-04 09:30:45')", types.NewInt(2009)},
		{"month(timestamp '2009-01-04 09:30:45')", types.NewInt(1)},
		{"day(timestamp '2009-01-04 09:30:45')", types.NewInt(4)},
		{"hour(timestamp '2009-01-04 09:30:45')", types.NewInt(9)},
		{"minute(timestamp '2009-01-04 09:30:45')", types.NewInt(30)},
		{"second(timestamp '2009-01-04 09:30:45')", types.NewInt(45)},
		{"dow(timestamp '2009-01-04 09:30:45')", types.NewInt(0)}, // Sunday
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && types.Compare(got, c.want) != 0) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func mustTS(t *testing.T, s string) types.Datum {
	t.Helper()
	d, err := types.ParseTimestamp(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCQClose(t *testing.T) {
	ast, _ := sql.ParseExpr("cq_close(*)")
	s, err := Compile(ast, testBinder{})
	if err != nil {
		t.Fatal(err)
	}
	close := types.NewTimestampMicros(42_000_000)
	v, err := s.Eval(&Ctx{Row: testRow, WindowClose: close})
	if err != nil {
		t.Fatal(err)
	}
	if types.Compare(v, close) != 0 {
		t.Fatalf("cq_close = %v", v)
	}
	if s.Type != types.TypeTimestamp {
		t.Fatal("cq_close type")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"zzz",           // unknown column
		"nosuchfunc(1)", // unknown function
		"sum(a)",        // aggregate in scalar context
		"lower(1, 2)",   // arity
		"lower(*)",      // star on scalar
		"'a' < 1",       // incomparable static types
	}
	for _, src := range bad {
		ast, err := sql.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(ast, testBinder{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	for _, src := range []string{"a / 0", "b % 0", "sqrt(-1.0)", "ln(0.0)"} {
		ast, _ := sql.ParseExpr(src)
		s, err := Compile(ast, testBinder{})
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, err := s.Eval(&Ctx{Row: testRow}); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"a", "", false},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "____", false},
		{"abc", "___", true},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ppx", false},
		{"/index.html", "/%.html", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// ---------------------------------------------------------------- aggs

func addAll(t *testing.T, a Acc, vs ...types.Datum) {
	t.Helper()
	for _, v := range vs {
		if err := a.Add(v); err != nil {
			t.Fatal(err)
		}
	}
}

func newAcc(t *testing.T, name string, distinct bool) Acc {
	t.Helper()
	a, err := NewAcc(AggSpec{Name: name, Star: name == "count" && !distinct, Distinct: distinct})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func ints(vs ...int64) []types.Datum {
	out := make([]types.Datum, len(vs))
	for i, v := range vs {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestAggregates(t *testing.T) {
	count := newAcc(t, "count", false)
	addAll(t, count, ints(1, 2, 3)...)
	addAll(t, count, types.Null) // count(*) counts NULLs
	if count.Result().Int() != 4 {
		t.Fatalf("count(*) = %v", count.Result())
	}

	countX, _ := NewAcc(AggSpec{Name: "count"})
	addAll(t, countX, ints(1, 2)...)
	addAll(t, countX, types.Null) // count(x) skips NULLs
	if countX.Result().Int() != 2 {
		t.Fatalf("count(x) = %v", countX.Result())
	}

	sum := newAcc(t, "sum", false)
	addAll(t, sum, ints(1, 2, 3)...)
	if sum.Result().Int() != 6 {
		t.Fatalf("sum = %v", sum.Result())
	}

	sumF := newAcc(t, "sum", false)
	addAll(t, sumF, types.NewInt(1), types.NewFloat(0.5))
	if sumF.Result().Float() != 1.5 {
		t.Fatalf("mixed sum = %v", sumF.Result())
	}

	empty := newAcc(t, "sum", false)
	if !empty.Result().IsNull() {
		t.Fatal("sum of nothing should be NULL")
	}

	avg := newAcc(t, "avg", false)
	addAll(t, avg, ints(1, 2, 3, 4)...)
	if avg.Result().Float() != 2.5 {
		t.Fatalf("avg = %v", avg.Result())
	}

	min := newAcc(t, "min", false)
	addAll(t, min, ints(5, 2, 9)...)
	if min.Result().Int() != 2 {
		t.Fatalf("min = %v", min.Result())
	}

	max := newAcc(t, "max", false)
	addAll(t, max, types.NewString("b"), types.NewString("z"), types.NewString("a"))
	if max.Result().Str() != "z" {
		t.Fatalf("max = %v", max.Result())
	}

	sd := newAcc(t, "stddev", false)
	addAll(t, sd, ints(2, 4, 4, 4, 5, 5, 7, 9)...)
	if got := sd.Result().Float(); math.Abs(got-2.138089935299395) > 1e-9 {
		t.Fatalf("stddev = %v", got)
	}

	one := newAcc(t, "stddev", false)
	addAll(t, one, ints(5)...)
	if !one.Result().IsNull() {
		t.Fatal("stddev of one value should be NULL")
	}

	first := newAcc(t, "first", false)
	addAll(t, first, ints(7, 8, 9)...)
	if first.Result().Int() != 7 {
		t.Fatalf("first = %v", first.Result())
	}
	last := newAcc(t, "last", false)
	addAll(t, last, ints(7, 8, 9)...)
	if last.Result().Int() != 9 {
		t.Fatalf("last = %v", last.Result())
	}
}

func TestCountDistinct(t *testing.T) {
	cd := newAcc(t, "count", true)
	addAll(t, cd, ints(1, 2, 2, 3, 3, 3)...)
	addAll(t, cd, types.Null)
	if cd.Result().Int() != 3 {
		t.Fatalf("count(distinct) = %v", cd.Result())
	}
	sd := newAcc(t, "sum", true)
	addAll(t, sd, ints(5, 5, 7)...)
	if sd.Result().Int() != 12 {
		t.Fatalf("sum(distinct) = %v", sd.Result())
	}
}

// TestMergeEqualsDirect is the core sharing property: splitting any input
// across two accumulators and merging must equal accumulating directly.
func TestMergeEqualsDirect(t *testing.T) {
	inputs := []types.Datum{
		types.NewInt(4), types.NewInt(-2), types.NewInt(4), types.Null,
		types.NewInt(11), types.NewInt(0), types.NewInt(7), types.NewInt(7),
	}
	for _, name := range []string{"count", "sum", "avg", "min", "max", "stddev", "variance", "first", "last"} {
		for _, distinct := range []bool{false, true} {
			if distinct && (name == "first" || name == "last") {
				continue // order-sensitive; distinct not meaningful
			}
			for split := 0; split <= len(inputs); split++ {
				direct := newAcc(t, name, distinct)
				left := newAcc(t, name, distinct)
				right := newAcc(t, name, distinct)
				addAll(t, direct, inputs...)
				addAll(t, left, inputs[:split]...)
				addAll(t, right, inputs[split:]...)
				if err := left.Merge(right); err != nil {
					t.Fatalf("%s merge: %v", name, err)
				}
				want, got := direct.Result(), left.Result()
				if want.IsNull() != got.IsNull() {
					t.Fatalf("%s distinct=%v split=%d: merged %v, direct %v", name, distinct, split, got, want)
				}
				if !want.IsNull() {
					// Compare with tolerance for float aggregates.
					if want.Type().Numeric() && got.Type().Numeric() {
						if math.Abs(want.Float()-got.Float()) > 1e-9 {
							t.Fatalf("%s distinct=%v split=%d: merged %v, direct %v", name, distinct, split, got, want)
						}
					} else if types.Compare(want, got) != 0 {
						t.Fatalf("%s distinct=%v split=%d: merged %v, direct %v", name, distinct, split, got, want)
					}
				}
			}
		}
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	a := newAcc(t, "sum", false)
	b := newAcc(t, "count", false)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different accumulator types should error")
	}
}

func TestAggSpecResultType(t *testing.T) {
	if (AggSpec{Name: "count"}).ResultType() != types.TypeInt {
		t.Fatal("count type")
	}
	if (AggSpec{Name: "avg"}).ResultType() != types.TypeFloat {
		t.Fatal("avg type")
	}
	s := &Scalar{Type: types.TypeInterval}
	if (AggSpec{Name: "sum", Arg: s}).ResultType() != types.TypeInterval {
		t.Fatal("sum type follows arg")
	}
}

func TestIsAggregateAndScalar(t *testing.T) {
	for _, n := range []string{"count", "sum", "avg", "min", "max", "stddev"} {
		if !IsAggregate(n) || !IsAggregate(strings.ToUpper(n)) {
			t.Errorf("IsAggregate(%s)", n)
		}
	}
	if IsAggregate("lower") || !IsScalarFunc("lower") || !IsScalarFunc("cq_close") {
		t.Fatal("classification")
	}
}
