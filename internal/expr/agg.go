package expr

import (
	"fmt"
	"math"
	"strings"

	"streamrel/internal/types"
)

// aggregate names recognized by the planner.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"stddev": true, "variance": true, "first": true, "last": true,
}

// IsAggregate reports whether name is an aggregate function.
func IsAggregate(name string) bool { return aggregateNames[strings.ToLower(name)] }

// AggSpec describes one aggregate call extracted from a query.
type AggSpec struct {
	Name     string  // lower-cased aggregate name
	Arg      *Scalar // nil for count(*)
	Star     bool
	Distinct bool
}

// ResultType returns the aggregate's static output type.
func (s AggSpec) ResultType() types.Type {
	switch s.Name {
	case "count":
		return types.TypeInt
	case "avg", "stddev", "variance":
		return types.TypeFloat
	case "sum", "min", "max", "first", "last":
		if s.Arg != nil {
			return s.Arg.Type
		}
		return types.TypeUnknown
	}
	return types.TypeUnknown
}

// Acc is an aggregate accumulator. Accumulators are mergeable: Merge
// combines another accumulator of the same spec into this one. That
// property is what lets window slices be aggregated once and combined per
// window (shared slice aggregation, paper refs [4],[12]).
type Acc interface {
	// Add folds one input value in. For count(*) the value is ignored.
	Add(v types.Datum) error
	// Merge combines a partial accumulator produced by the same spec.
	Merge(other Acc) error
	// Result returns the aggregate value for everything added so far.
	Result() types.Datum
}

// NewAcc returns a fresh accumulator for the spec.
func NewAcc(spec AggSpec) (Acc, error) {
	var inner Acc
	switch spec.Name {
	case "count":
		inner = &countAcc{star: spec.Star}
	case "sum":
		inner = &sumAcc{}
	case "avg":
		inner = &avgAcc{}
	case "min":
		inner = &minmaxAcc{want: -1}
	case "max":
		inner = &minmaxAcc{want: 1}
	case "stddev":
		inner = &momentsAcc{stddev: true}
	case "variance":
		inner = &momentsAcc{}
	case "first":
		inner = &firstLastAcc{first: true}
	case "last":
		inner = &firstLastAcc{}
	default:
		return nil, fmt.Errorf("expr: unknown aggregate %q", spec.Name)
	}
	if spec.Distinct {
		if spec.Star {
			return nil, fmt.Errorf("expr: %s(DISTINCT *) is not valid", spec.Name)
		}
		return &distinctAcc{seen: make(map[string]types.Datum), inner: inner}, nil
	}
	return inner, nil
}

// countAcc implements count(*) and count(x).
type countAcc struct {
	star bool
	n    int64
}

func (a *countAcc) Add(v types.Datum) error {
	if a.star || !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) Merge(other Acc) error {
	o, ok := other.(*countAcc)
	if !ok {
		return mergeTypeErr(a, other)
	}
	a.n += o.n
	return nil
}

func (a *countAcc) Result() types.Datum { return types.NewInt(a.n) }

// sumAcc implements sum over ints, floats and intervals. Empty input
// yields NULL per SQL.
type sumAcc struct {
	seen    bool
	isFloat bool
	isIval  bool
	i       int64
	f       float64
}

func (a *sumAcc) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	switch v.Type() {
	case types.TypeInt:
		a.i += v.Int()
		a.f += float64(v.Int())
	case types.TypeFloat:
		a.isFloat = true
		a.f += v.Float()
	case types.TypeInterval:
		a.isIval = true
		a.i += v.IntervalMicros()
	default:
		return fmt.Errorf("expr: sum over %s", v.Type())
	}
	a.seen = true
	return nil
}

func (a *sumAcc) Merge(other Acc) error {
	o, ok := other.(*sumAcc)
	if !ok {
		return mergeTypeErr(a, other)
	}
	a.seen = a.seen || o.seen
	a.isFloat = a.isFloat || o.isFloat
	a.isIval = a.isIval || o.isIval
	a.i += o.i
	a.f += o.f
	return nil
}

func (a *sumAcc) Result() types.Datum {
	switch {
	case !a.seen:
		return types.Null
	case a.isIval:
		return types.NewIntervalMicros(a.i)
	case a.isFloat:
		return types.NewFloat(a.f)
	default:
		return types.NewInt(a.i)
	}
}

// avgAcc implements avg as (sum, count).
type avgAcc struct {
	n int64
	f float64
}

func (a *avgAcc) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	if !v.Type().Numeric() {
		return fmt.Errorf("expr: avg over %s", v.Type())
	}
	a.n++
	a.f += v.Float()
	return nil
}

func (a *avgAcc) Merge(other Acc) error {
	o, ok := other.(*avgAcc)
	if !ok {
		return mergeTypeErr(a, other)
	}
	a.n += o.n
	a.f += o.f
	return nil
}

func (a *avgAcc) Result() types.Datum {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat(a.f / float64(a.n))
}

// minmaxAcc implements min (want=-1) and max (want=+1).
type minmaxAcc struct {
	want int
	seen bool
	best types.Datum
}

func (a *minmaxAcc) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	if !a.seen {
		a.best, a.seen = v, true
		return nil
	}
	if !types.Comparable(v.Type(), a.best.Type()) {
		return fmt.Errorf("expr: min/max over mixed types %s and %s", v.Type(), a.best.Type())
	}
	if c := types.Compare(v, a.best); (a.want < 0 && c < 0) || (a.want > 0 && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minmaxAcc) Merge(other Acc) error {
	o, ok := other.(*minmaxAcc)
	if !ok {
		return mergeTypeErr(a, other)
	}
	if o.seen {
		return a.Add(o.best)
	}
	return nil
}

func (a *minmaxAcc) Result() types.Datum {
	if !a.seen {
		return types.Null
	}
	return a.best
}

// momentsAcc implements sample variance and stddev via (n, Σx, Σx²),
// which merges exactly.
type momentsAcc struct {
	stddev bool
	n      int64
	sum    float64
	sumsq  float64
}

func (a *momentsAcc) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	if !v.Type().Numeric() {
		return fmt.Errorf("expr: stddev/variance over %s", v.Type())
	}
	x := v.Float()
	a.n++
	a.sum += x
	a.sumsq += x * x
	return nil
}

func (a *momentsAcc) Merge(other Acc) error {
	o, ok := other.(*momentsAcc)
	if !ok {
		return mergeTypeErr(a, other)
	}
	a.n += o.n
	a.sum += o.sum
	a.sumsq += o.sumsq
	return nil
}

func (a *momentsAcc) Result() types.Datum {
	if a.n < 2 {
		return types.Null
	}
	n := float64(a.n)
	variance := (a.sumsq - a.sum*a.sum/n) / (n - 1)
	if variance < 0 {
		variance = 0 // floating point noise
	}
	if a.stddev {
		return types.NewFloat(math.Sqrt(variance))
	}
	return types.NewFloat(variance)
}

// firstLastAcc keeps the first or last non-NULL value in arrival order.
// Merge assumes "other" accumulated later input, which holds for slice
// merging (slices merge in time order).
type firstLastAcc struct {
	first bool
	seen  bool
	val   types.Datum
}

func (a *firstLastAcc) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	if a.first && a.seen {
		return nil
	}
	a.val, a.seen = v, true
	return nil
}

func (a *firstLastAcc) Merge(other Acc) error {
	o, ok := other.(*firstLastAcc)
	if !ok {
		return mergeTypeErr(a, other)
	}
	if !o.seen {
		return nil
	}
	if a.first && a.seen {
		return nil
	}
	a.val, a.seen = o.val, true
	return nil
}

func (a *firstLastAcc) Result() types.Datum {
	if !a.seen {
		return types.Null
	}
	return a.val
}

// distinctAcc wraps another accumulator, feeding it each distinct value
// exactly once. Merging unions the seen-sets and replays the union into a
// fresh inner accumulator, which keeps DISTINCT exact under slice sharing.
type distinctAcc struct {
	seen  map[string]types.Datum
	inner Acc
}

func (a *distinctAcc) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	k := types.Row{v}.Key()
	if _, ok := a.seen[k]; ok {
		return nil
	}
	a.seen[k] = v
	return a.inner.Add(v)
}

func (a *distinctAcc) Merge(other Acc) error {
	o, ok := other.(*distinctAcc)
	if !ok {
		return mergeTypeErr(a, other)
	}
	for k, v := range o.seen {
		if _, ok := a.seen[k]; !ok {
			a.seen[k] = v
			if err := a.inner.Add(v); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *distinctAcc) Result() types.Datum { return a.inner.Result() }

func mergeTypeErr(a, b Acc) error {
	return fmt.Errorf("expr: cannot merge %T into %T", b, a)
}
