package expr

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// likeToRegexp converts a LIKE pattern into an anchored regexp — the
// reference implementation MatchLike must agree with.
func likeToRegexp(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteByte('^')
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			b.WriteString("(?s).*")
		case '_':
			b.WriteString("(?s).")
		default:
			b.WriteString(regexp.QuoteMeta(string(pattern[i])))
		}
	}
	b.WriteByte('$')
	return regexp.MustCompile(b.String())
}

// TestMatchLikeAgainstRegexpProperty checks MatchLike against the regexp
// semantics over random small alphabets (small alphabets maximize
// collisions and backtracking edge cases).
func TestMatchLikeAgainstRegexpProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	randFrom := func(alphabet string, max int) string {
		n := r.Intn(max)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 20000; i++ {
		s := randFrom("ab", 10)
		p := randFrom("ab%_", 8)
		want := likeToRegexp(p).MatchString(s)
		if got := MatchLike(s, p); got != want {
			t.Fatalf("MatchLike(%q, %q) = %v, regexp says %v", s, p, got, want)
		}
	}
}

// TestMatchLikeQuick uses testing/quick over arbitrary ASCII-ish inputs
// with literal-only patterns derived from the input (self-match and
// prefix/suffix variants must always hold).
func TestMatchLikeQuick(t *testing.T) {
	f := func(raw string) bool {
		// Strip the wildcards so the pattern is literal.
		s := strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, raw)
		if !MatchLike(s, s) {
			return false
		}
		if !MatchLike(s, "%") {
			return false
		}
		if !MatchLike(s, s+"%") {
			return false
		}
		if !MatchLike(s, "%"+s) {
			return false
		}
		if len(s) > 0 && MatchLike(s, s+"_") {
			return false // one extra required char can never match
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
