// Package expr compiles SQL expressions into evaluable closures and
// implements the aggregate accumulators. Accumulators are *mergeable*
// (partial states combine associatively), which is what makes the paper's
// shared, slice-based window aggregation possible (refs [4], [12]):
// per-slice partials are computed once and merged per window close.
package expr

import (
	"fmt"
	"time"

	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// Ctx carries per-row and per-window evaluation state.
type Ctx struct {
	// Row is the current input row.
	Row types.Row
	// WindowClose is the timestamp of the closing window boundary; it is
	// what cq_close(*) returns (paper Example 3). Null outside CQs.
	WindowClose types.Datum
	// Now returns the current time for now(); nil means wall clock.
	Now func() time.Time
}

// Scalar is a compiled scalar expression.
type Scalar struct {
	Eval func(ctx *Ctx) (types.Datum, error)
	Type types.Type // best-effort static type; TypeUnknown if undetermined
}

// Binder resolves column references to positions in the input row during
// compilation. It is implemented by the planner's scopes.
type Binder interface {
	ResolveColumn(table, name string) (ColumnBinding, error)
}

// ColumnBinding is the result of resolving a column reference.
type ColumnBinding struct {
	Index int
	Type  types.Type
}

// Compile turns an AST expression into a Scalar. Aggregate function calls
// are rejected here; the planner extracts them first and rewrites their
// occurrences into column references over aggregate output.
func Compile(e sql.Expr, b Binder) (*Scalar, error) {
	switch n := e.(type) {
	case *sql.Literal:
		v := n.Val
		return &Scalar{
			Eval: func(*Ctx) (types.Datum, error) { return v, nil },
			Type: v.Type(),
		}, nil

	case *sql.ColumnRef:
		cb, err := b.ResolveColumn(n.Table, n.Name)
		if err != nil {
			return nil, err
		}
		idx := cb.Index
		return &Scalar{
			Eval: func(ctx *Ctx) (types.Datum, error) {
				if idx >= len(ctx.Row) {
					return types.Null, fmt.Errorf("expr: column index %d out of range", idx)
				}
				return ctx.Row[idx], nil
			},
			Type: cb.Type,
		}, nil

	case *sql.BinaryExpr:
		return compileBinary(n, b)

	case *sql.UnaryExpr:
		inner, err := Compile(n.E, b)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case sql.OpNeg:
			return &Scalar{
				Eval: func(ctx *Ctx) (types.Datum, error) {
					v, err := inner.Eval(ctx)
					if err != nil {
						return types.Null, err
					}
					return types.Neg(v)
				},
				Type: inner.Type,
			}, nil
		case sql.OpNot:
			return &Scalar{
				Eval: func(ctx *Ctx) (types.Datum, error) {
					v, err := inner.Eval(ctx)
					if err != nil {
						return types.Null, err
					}
					if v.IsNull() {
						return types.Null, nil
					}
					return types.NewBool(!v.Bool()), nil
				},
				Type: types.TypeBool,
			}, nil
		}
		return nil, fmt.Errorf("expr: unknown unary operator")

	case *sql.CastExpr:
		inner, err := Compile(n.E, b)
		if err != nil {
			return nil, err
		}
		to := n.To
		return &Scalar{
			Eval: func(ctx *Ctx) (types.Datum, error) {
				v, err := inner.Eval(ctx)
				if err != nil {
					return types.Null, err
				}
				return types.Cast(v, to)
			},
			Type: to,
		}, nil

	case *sql.IsNullExpr:
		inner, err := Compile(n.E, b)
		if err != nil {
			return nil, err
		}
		neg := n.Neg
		return &Scalar{
			Eval: func(ctx *Ctx) (types.Datum, error) {
				v, err := inner.Eval(ctx)
				if err != nil {
					return types.Null, err
				}
				return types.NewBool(v.IsNull() != neg), nil
			},
			Type: types.TypeBool,
		}, nil

	case *sql.BetweenExpr:
		// e BETWEEN lo AND hi  ≡  e >= lo AND e <= hi, with 3VL.
		rewritten := &sql.BinaryExpr{
			Op: sql.OpAnd,
			L:  &sql.BinaryExpr{Op: sql.OpGe, L: n.E, R: n.Lo},
			R:  &sql.BinaryExpr{Op: sql.OpLe, L: n.E, R: n.Hi},
		}
		s, err := Compile(rewritten, b)
		if err != nil {
			return nil, err
		}
		if !n.Neg {
			return s, nil
		}
		return Compile(&sql.UnaryExpr{Op: sql.OpNot, E: rewritten}, b)

	case *sql.InExpr:
		return compileIn(n, b)

	case *sql.LikeExpr:
		return compileLike(n, b)

	case *sql.CaseExpr:
		return compileCase(n, b)

	case *sql.FuncCall:
		if IsAggregate(n.Name) {
			return nil, fmt.Errorf("expr: aggregate %s not allowed here", n.Name)
		}
		return compileFunc(n, b)

	case *sql.Param:
		return nil, fmt.Errorf("expr: unbound parameter $%d (pass arguments via QueryArgs/ExecArgs/SubscribeArgs)", n.Index)
	}
	return nil, fmt.Errorf("expr: unsupported expression %T", e)
}

func compileBinary(n *sql.BinaryExpr, b Binder) (*Scalar, error) {
	l, err := Compile(n.L, b)
	if err != nil {
		return nil, err
	}
	r, err := Compile(n.R, b)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case sql.OpAnd, sql.OpOr:
		isOr := n.Op == sql.OpOr
		return &Scalar{Type: types.TypeBool, Eval: func(ctx *Ctx) (types.Datum, error) {
			lv, err := l.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			// Short-circuit: for OR, true wins; for AND, false wins.
			if !lv.IsNull() && lv.Bool() == isOr {
				return types.NewBool(isOr), nil
			}
			rv, err := r.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			if !rv.IsNull() && rv.Bool() == isOr {
				return types.NewBool(isOr), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(!isOr), nil
		}}, nil

	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		op := n.Op
		if !types.Comparable(l.Type, r.Type) && l.Type != types.TypeUnknown && r.Type != types.TypeUnknown {
			return nil, fmt.Errorf("expr: cannot compare %s with %s", l.Type, r.Type)
		}
		return &Scalar{Type: types.TypeBool, Eval: func(ctx *Ctx) (types.Datum, error) {
			lv, err := l.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			rv, err := r.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			if !types.Comparable(lv.Type(), rv.Type()) {
				return types.Null, fmt.Errorf("expr: cannot compare %s with %s", lv.Type(), rv.Type())
			}
			c := types.Compare(lv, rv)
			var out bool
			switch op {
			case sql.OpEq:
				out = c == 0
			case sql.OpNe:
				out = c != 0
			case sql.OpLt:
				out = c < 0
			case sql.OpLe:
				out = c <= 0
			case sql.OpGt:
				out = c > 0
			case sql.OpGe:
				out = c >= 0
			}
			return types.NewBool(out), nil
		}}, nil

	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod, sql.OpConcat:
		op := n.Op
		typ := arithType(op, l.Type, r.Type)
		return &Scalar{Type: typ, Eval: func(ctx *Ctx) (types.Datum, error) {
			lv, err := l.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			rv, err := r.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			switch op {
			case sql.OpAdd:
				return types.Add(lv, rv)
			case sql.OpSub:
				return types.Sub(lv, rv)
			case sql.OpMul:
				return types.Mul(lv, rv)
			case sql.OpDiv:
				return types.Div(lv, rv)
			case sql.OpMod:
				return types.Mod(lv, rv)
			default: // OpConcat
				if lv.IsNull() || rv.IsNull() {
					return types.Null, nil
				}
				ls, err := types.Cast(lv, types.TypeString)
				if err != nil {
					return types.Null, err
				}
				rs, err := types.Cast(rv, types.TypeString)
				if err != nil {
					return types.Null, err
				}
				return types.NewString(ls.Str() + rs.Str()), nil
			}
		}}, nil
	}
	return nil, fmt.Errorf("expr: unsupported binary operator %v", n.Op)
}

// arithType infers the static result type of arithmetic.
func arithType(op sql.BinOp, l, r types.Type) types.Type {
	if op == sql.OpConcat {
		return types.TypeString
	}
	switch {
	case l == types.TypeInt && r == types.TypeInt:
		if op == sql.OpDiv {
			return types.TypeInt
		}
		return types.TypeInt
	case l.Numeric() && r.Numeric():
		return types.TypeFloat
	case l == types.TypeTimestamp && r == types.TypeInterval,
		l == types.TypeInterval && r == types.TypeTimestamp:
		return types.TypeTimestamp
	case l == types.TypeTimestamp && r == types.TypeTimestamp && op == sql.OpSub:
		return types.TypeInterval
	case l == types.TypeInterval || r == types.TypeInterval:
		return types.TypeInterval
	}
	return types.TypeUnknown
}

func compileIn(n *sql.InExpr, b Binder) (*Scalar, error) {
	e, err := Compile(n.E, b)
	if err != nil {
		return nil, err
	}
	list := make([]*Scalar, len(n.List))
	for i, le := range n.List {
		if list[i], err = Compile(le, b); err != nil {
			return nil, err
		}
	}
	neg := n.Neg
	return &Scalar{Type: types.TypeBool, Eval: func(ctx *Ctx) (types.Datum, error) {
		v, err := e.Eval(ctx)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.Null, nil
		}
		sawNull := false
		for _, item := range list {
			iv, err := item.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if types.Comparable(v.Type(), iv.Type()) && types.Compare(v, iv) == 0 {
				return types.NewBool(!neg), nil
			}
		}
		if sawNull {
			return types.Null, nil
		}
		return types.NewBool(neg), nil
	}}, nil
}

func compileLike(n *sql.LikeExpr, b Binder) (*Scalar, error) {
	e, err := Compile(n.E, b)
	if err != nil {
		return nil, err
	}
	p, err := Compile(n.Pattern, b)
	if err != nil {
		return nil, err
	}
	neg := n.Neg
	return &Scalar{Type: types.TypeBool, Eval: func(ctx *Ctx) (types.Datum, error) {
		ev, err := e.Eval(ctx)
		if err != nil {
			return types.Null, err
		}
		pv, err := p.Eval(ctx)
		if err != nil {
			return types.Null, err
		}
		if ev.IsNull() || pv.IsNull() {
			return types.Null, nil
		}
		if ev.Type() != types.TypeString || pv.Type() != types.TypeString {
			return types.Null, fmt.Errorf("expr: LIKE requires strings")
		}
		return types.NewBool(MatchLike(ev.Str(), pv.Str()) != neg), nil
	}}, nil
}

// MatchLike implements SQL LIKE: '%' matches any run, '_' matches one
// character (byte-oriented, adequate for ASCII workloads).
func MatchLike(s, pattern string) bool {
	// Iterative two-pointer algorithm with backtracking on the last '%'.
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func compileCase(n *sql.CaseExpr, b Binder) (*Scalar, error) {
	var operand *Scalar
	var err error
	if n.Operand != nil {
		if operand, err = Compile(n.Operand, b); err != nil {
			return nil, err
		}
	}
	type arm struct{ cond, result *Scalar }
	arms := make([]arm, len(n.Whens))
	var typ types.Type = types.TypeUnknown
	for i, w := range n.Whens {
		c, err := Compile(w.Cond, b)
		if err != nil {
			return nil, err
		}
		r, err := Compile(w.Result, b)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{c, r}
		if typ == types.TypeUnknown {
			typ = r.Type
		}
	}
	var elseS *Scalar
	if n.Else != nil {
		if elseS, err = Compile(n.Else, b); err != nil {
			return nil, err
		}
		if typ == types.TypeUnknown {
			typ = elseS.Type
		}
	}
	return &Scalar{Type: typ, Eval: func(ctx *Ctx) (types.Datum, error) {
		var opv types.Datum
		if operand != nil {
			if opv, err = operand.Eval(ctx); err != nil {
				return types.Null, err
			}
		}
		for _, a := range arms {
			cv, err := a.cond.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			matched := false
			if operand != nil {
				matched = !opv.IsNull() && !cv.IsNull() &&
					types.Comparable(opv.Type(), cv.Type()) && types.Compare(opv, cv) == 0
			} else {
				matched = !cv.IsNull() && cv.Bool()
			}
			if matched {
				return a.result.Eval(ctx)
			}
		}
		if elseS != nil {
			return elseS.Eval(ctx)
		}
		return types.Null, nil
	}}, nil
}

// ConstBinder rejects all column references; it compiles constant
// expressions (e.g. literal rows in INSERT … VALUES).
type ConstBinder struct{}

// ResolveColumn always fails.
func (ConstBinder) ResolveColumn(table, name string) (ColumnBinding, error) {
	if table != "" {
		name = table + "." + name
	}
	return ColumnBinding{}, fmt.Errorf("expr: column %q not allowed in this context", name)
}
