package expr

import (
	"fmt"
	"math"
	"strings"
	"time"

	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// scalarFunc is the implementation of one builtin scalar function.
type scalarFunc struct {
	minArgs, maxArgs int
	typ              func(args []types.Type) types.Type
	eval             func(ctx *Ctx, args []types.Datum) (types.Datum, error)
}

func fixedType(t types.Type) func([]types.Type) types.Type {
	return func([]types.Type) types.Type { return t }
}

func firstArgType(args []types.Type) types.Type {
	if len(args) > 0 {
		return args[0]
	}
	return types.TypeUnknown
}

// nullIfAnyNull wraps an eval that wants non-NULL inputs.
func nullIfAnyNull(f func(ctx *Ctx, args []types.Datum) (types.Datum, error)) func(*Ctx, []types.Datum) (types.Datum, error) {
	return func(ctx *Ctx, args []types.Datum) (types.Datum, error) {
		for _, a := range args {
			if a.IsNull() {
				return types.Null, nil
			}
		}
		return f(ctx, args)
	}
}

var scalarFuncs = map[string]scalarFunc{
	"lower": {1, 1, fixedType(types.TypeString), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewString(strings.ToLower(a[0].Str())), nil
		})},
	"upper": {1, 1, fixedType(types.TypeString), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewString(strings.ToUpper(a[0].Str())), nil
		})},
	"length": {1, 1, fixedType(types.TypeInt), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewInt(int64(len(a[0].Str()))), nil
		})},
	"trim": {1, 1, fixedType(types.TypeString), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewString(strings.TrimSpace(a[0].Str())), nil
		})},
	"replace": {3, 3, fixedType(types.TypeString), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewString(strings.ReplaceAll(a[0].Str(), a[1].Str(), a[2].Str())), nil
		})},
	"substr": {2, 3, fixedType(types.TypeString), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			s := a[0].Str()
			start := int(a[1].Int()) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				return types.NewString(""), nil
			}
			end := len(s)
			if len(a) == 3 {
				if n := int(a[2].Int()); n >= 0 && start+n < end {
					end = start + n
				}
			}
			return types.NewString(s[start:end]), nil
		})},
	"strpos": {2, 2, fixedType(types.TypeInt), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewInt(int64(strings.Index(a[0].Str(), a[1].Str()) + 1)), nil
		})},
	"concat": {1, 16, fixedType(types.TypeString),
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			var b strings.Builder
			for _, d := range a {
				if d.IsNull() {
					continue
				}
				s, err := types.Cast(d, types.TypeString)
				if err != nil {
					return types.Null, err
				}
				b.WriteString(s.Str())
			}
			return types.NewString(b.String()), nil
		}},
	"abs": {1, 1, firstArgType, nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			switch a[0].Type() {
			case types.TypeInt:
				v := a[0].Int()
				if v < 0 {
					v = -v
				}
				return types.NewInt(v), nil
			case types.TypeFloat:
				return types.NewFloat(math.Abs(a[0].Float())), nil
			case types.TypeInterval:
				v := a[0].IntervalMicros()
				if v < 0 {
					v = -v
				}
				return types.NewIntervalMicros(v), nil
			}
			return types.Null, fmt.Errorf("expr: abs on %s", a[0].Type())
		})},
	"floor": {1, 1, fixedType(types.TypeFloat), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewFloat(math.Floor(a[0].Float())), nil
		})},
	"ceil": {1, 1, fixedType(types.TypeFloat), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewFloat(math.Ceil(a[0].Float())), nil
		})},
	"round": {1, 2, fixedType(types.TypeFloat), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			n := 0
			if len(a) == 2 {
				n = int(a[1].Int())
			}
			scale := math.Pow(10, float64(n))
			return types.NewFloat(math.Round(a[0].Float()*scale) / scale), nil
		})},
	"sqrt": {1, 1, fixedType(types.TypeFloat), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			v := a[0].Float()
			if v < 0 {
				return types.Null, fmt.Errorf("expr: sqrt of negative value")
			}
			return types.NewFloat(math.Sqrt(v)), nil
		})},
	"power": {2, 2, fixedType(types.TypeFloat), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewFloat(math.Pow(a[0].Float(), a[1].Float())), nil
		})},
	"ln": {1, 1, fixedType(types.TypeFloat), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			v := a[0].Float()
			if v <= 0 {
				return types.Null, fmt.Errorf("expr: ln of non-positive value")
			}
			return types.NewFloat(math.Log(v)), nil
		})},
	"sign": {1, 1, fixedType(types.TypeInt), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			v := a[0].Float()
			switch {
			case v > 0:
				return types.NewInt(1), nil
			case v < 0:
				return types.NewInt(-1), nil
			}
			return types.NewInt(0), nil
		})},
	"coalesce": {1, 16, firstArgType,
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			for _, d := range a {
				if !d.IsNull() {
					return d, nil
				}
			}
			return types.Null, nil
		}},
	"nullif": {2, 2, firstArgType,
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			if !a[0].IsNull() && !a[1].IsNull() &&
				types.Comparable(a[0].Type(), a[1].Type()) && types.Compare(a[0], a[1]) == 0 {
				return types.Null, nil
			}
			return a[0], nil
		}},
	"greatest": {1, 16, firstArgType, nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			best := a[0]
			for _, d := range a[1:] {
				if types.Compare(d, best) > 0 {
					best = d
				}
			}
			return best, nil
		})},
	"least": {1, 16, firstArgType, nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			best := a[0]
			for _, d := range a[1:] {
				if types.Compare(d, best) < 0 {
					best = d
				}
			}
			return best, nil
		})},
	"date_trunc": {2, 2, fixedType(types.TypeTimestamp), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			unit := strings.ToLower(a[0].Str())
			us := a[1].TimestampMicros()
			var width int64
			switch unit {
			case "second":
				width = 1_000_000
			case "minute":
				width = 60_000_000
			case "hour":
				width = 3_600_000_000
			case "day":
				width = 86_400_000_000
			case "week":
				width = 7 * 86_400_000_000
			default:
				return types.Null, fmt.Errorf("expr: date_trunc: unknown unit %q", unit)
			}
			trunc := us - mod(us, width)
			return types.NewTimestampMicros(trunc), nil
		})},
	"epoch": {1, 1, fixedType(types.TypeFloat), nullIfAnyNull(
		func(_ *Ctx, a []types.Datum) (types.Datum, error) {
			return types.NewFloat(float64(a[0].TimestampMicros()) / 1e6), nil
		})},
	"year":   {1, 1, fixedType(types.TypeInt), timePart(func(t time.Time) int64 { return int64(t.Year()) })},
	"month":  {1, 1, fixedType(types.TypeInt), timePart(func(t time.Time) int64 { return int64(t.Month()) })},
	"day":    {1, 1, fixedType(types.TypeInt), timePart(func(t time.Time) int64 { return int64(t.Day()) })},
	"hour":   {1, 1, fixedType(types.TypeInt), timePart(func(t time.Time) int64 { return int64(t.Hour()) })},
	"minute": {1, 1, fixedType(types.TypeInt), timePart(func(t time.Time) int64 { return int64(t.Minute()) })},
	"second": {1, 1, fixedType(types.TypeInt), timePart(func(t time.Time) int64 { return int64(t.Second()) })},
	"dow":    {1, 1, fixedType(types.TypeInt), timePart(func(t time.Time) int64 { return int64(t.Weekday()) })},
	"now": {0, 0, fixedType(types.TypeTimestamp),
		func(ctx *Ctx, _ []types.Datum) (types.Datum, error) {
			if ctx.Now != nil {
				return types.NewTimestamp(ctx.Now()), nil
			}
			return types.NewTimestamp(time.Now()), nil
		}},
}

// timePart builds an eval extracting one calendar field from a timestamp
// (UTC).
func timePart(f func(time.Time) int64) func(*Ctx, []types.Datum) (types.Datum, error) {
	return nullIfAnyNull(func(_ *Ctx, a []types.Datum) (types.Datum, error) {
		if a[0].Type() != types.TypeTimestamp {
			return types.Null, fmt.Errorf("expr: calendar function needs a timestamp, got %s", a[0].Type())
		}
		return types.NewInt(f(a[0].Time())), nil
	})
}

// mod is a floored modulo that behaves for negative timestamps.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// IsScalarFunc reports whether name is a builtin scalar function.
func IsScalarFunc(name string) bool {
	if name == "cq_close" {
		return true
	}
	_, ok := scalarFuncs[name]
	return ok
}

func compileFunc(n *sql.FuncCall, b Binder) (*Scalar, error) {
	name := strings.ToLower(n.Name)
	if name == "cq_close" {
		// cq_close(*) returns the closing window boundary (paper §3.2). It
		// reads per-window context rather than the row.
		if !n.Star && len(n.Args) > 0 {
			return nil, fmt.Errorf("expr: cq_close takes (*)")
		}
		return &Scalar{Type: types.TypeTimestamp, Eval: func(ctx *Ctx) (types.Datum, error) {
			return ctx.WindowClose, nil
		}}, nil
	}
	f, ok := scalarFuncs[name]
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %q", n.Name)
	}
	if n.Star {
		return nil, fmt.Errorf("expr: %s does not take (*)", n.Name)
	}
	if len(n.Args) < f.minArgs || len(n.Args) > f.maxArgs {
		return nil, fmt.Errorf("expr: %s expects %d..%d arguments, got %d",
			n.Name, f.minArgs, f.maxArgs, len(n.Args))
	}
	compiled := make([]*Scalar, len(n.Args))
	argTypes := make([]types.Type, len(n.Args))
	for i, a := range n.Args {
		s, err := Compile(a, b)
		if err != nil {
			return nil, err
		}
		compiled[i] = s
		argTypes[i] = s.Type
	}
	eval := f.eval
	return &Scalar{Type: f.typ(argTypes), Eval: func(ctx *Ctx) (types.Datum, error) {
		args := make([]types.Datum, len(compiled))
		for i, c := range compiled {
			v, err := c.Eval(ctx)
			if err != nil {
				return types.Null, err
			}
			args[i] = v
		}
		return eval(ctx, args)
	}}, nil
}
