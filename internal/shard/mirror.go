package shard

import (
	"sync"

	"streamrel/internal/sql"
)

// streamMeta is what the router needs to know about one partitioned base
// stream: the partition column's name and schema position.
type streamMeta struct {
	partCol string
	partIdx int
}

// mirror is the router's shadow of the cluster catalog, maintained from
// the DDL that flows through the router (which is also what keeps the
// shards' schemas identical — DDL applied behind the router's back
// breaks the routing invariants, so don't).
//
// It answers two questions: which base streams are partitioned (and on
// which column), and which derived relations — derived streams, views,
// channel-fed Active Tables — carry partitioned data and therefore need
// scatter-gather.
type mirror struct {
	mu sync.RWMutex
	// part: partitioned base stream name → partition metadata.
	part map[string]streamMeta
	// feeds: derived stream / view / Active Table name → the partitioned
	// base stream whose rows (transitively) feed it.
	feeds map[string]string
	// derivedSQL: derived stream name → its defining query, for resolving
	// chains when a channel or view builds on a derived stream.
	derived map[string]*sql.Select
}

func newMirror() *mirror {
	return &mirror{
		part:    make(map[string]streamMeta),
		feeds:   make(map[string]string),
		derived: make(map[string]*sql.Select),
	}
}

// observe updates the mirror after stmt was applied on every shard.
func (m *mirror) observe(stmt sql.Statement) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch s := stmt.(type) {
	case *sql.CreateStream:
		if s.PartitionBy == "" {
			return
		}
		for i, c := range s.Columns {
			if c.Name == s.PartitionBy {
				m.part[s.Name] = streamMeta{partCol: s.PartitionBy, partIdx: i}
				return
			}
		}
	case *sql.CreateDerivedStream:
		if base := m.baseOfSelectLocked(s.Query); base != "" {
			m.feeds[s.Name] = base
		}
		m.derived[s.Name] = s.Query
	case *sql.CreateView:
		if base := m.baseOfSelectLocked(s.Query); base != "" {
			m.feeds[s.Name] = base
		}
	case *sql.CreateChannel:
		if base := m.baseOfLocked(s.From); base != "" {
			m.feeds[s.Into] = base
		}
	case *sql.Drop:
		delete(m.part, s.Name)
		delete(m.feeds, s.Name)
		delete(m.derived, s.Name)
	}
}

// baseOf resolves a relation name to the partitioned base stream feeding
// it ("" when the relation holds replicated or single-shard data).
func (m *mirror) baseOf(name string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.baseOfLocked(name)
}

func (m *mirror) baseOfLocked(name string) string {
	if _, ok := m.part[name]; ok {
		return name
	}
	return m.feeds[name]
}

// partMeta returns the partition metadata of a partitioned base stream.
func (m *mirror) partMeta(stream string) (streamMeta, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	sm, ok := m.part[stream]
	return sm, ok
}

// partColOf returns the partition column name of the base stream feeding
// relation name ("" when not partitioned).
func (m *mirror) partColOf(name string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	base := m.baseOfLocked(name)
	if base == "" {
		return ""
	}
	return m.part[base].partCol
}

// baseOfSelect resolves the (first) partitioned base stream a query
// reads from, walking joins, subqueries and derived-stream references.
func (m *mirror) baseOfSelect(sel *sql.Select) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.baseOfSelectLocked(sel)
}

func (m *mirror) baseOfSelectLocked(sel *sql.Select) string {
	if sel == nil {
		return ""
	}
	for _, ref := range sel.From {
		if base := m.baseOfRefLocked(ref); base != "" {
			return base
		}
	}
	if sel.SetOp != nil {
		return m.baseOfSelectLocked(sel.SetOp.Right)
	}
	return ""
}

func (m *mirror) baseOfRefLocked(ref sql.TableRef) string {
	switch r := ref.(type) {
	case *sql.BaseTable:
		return m.baseOfLocked(r.Name)
	case *sql.Subquery:
		return m.baseOfSelectLocked(r.Query)
	case *sql.Join:
		if base := m.baseOfRefLocked(r.Left); base != "" {
			return base
		}
		return m.baseOfRefLocked(r.Right)
	}
	return ""
}

// isPartitionedStream reports whether name is a partitioned base stream.
func (m *mirror) isPartitionedStream(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.part[name]
	return ok
}
