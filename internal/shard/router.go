package shard

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"sync"
	"time"

	"streamrel/client"
	"streamrel/internal/metrics"
	"streamrel/internal/server"
	"streamrel/internal/sql"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// Options configures a Router.
type Options struct {
	// Addrs lists the shard servers in shard-map order. The order IS the
	// shard map: restarting the router with a different order re-homes
	// keys and corrupts per-key locality.
	Addrs []string
	// Log receives structured diagnostics; nil silences them.
	Log *slog.Logger
	// Client sets per-shard connection timeouts.
	Client client.Options
	// TraceSampleEvery samples one in N routed appends for tracing (0 =
	// trace.DefaultSampleEvery, negative = off).
	TraceSampleEvery int
}

// Router speaks the streamrel client protocol in front of N shards:
// appends split by partition key, snapshot queries scatter-gather with a
// merge step, CQ subscriptions merge per-shard window results on close.
// DDL broadcasts to every shard (and must flow through the router so its
// catalog mirror stays truthful). Unpartitioned relations live on shard
// 0 by convention.
type Router struct {
	shardMap Map
	shards   []*shardConn
	mir      *mirror
	reg      *metrics.Registry
	tracer   *trace.Tracer
	log      *slog.Logger

	lis net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	appendRows  *metrics.Counter
	appendHist  *metrics.Histogram
	partialCtr  *metrics.Counter
	scatterHist *metrics.Histogram
	connGauge   *metrics.Gauge
}

// NewRouter builds a router over the given shard addresses and starts
// the per-shard connection managers (dialing in the background).
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Addrs) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard address")
	}
	reg := metrics.NewRegistry()
	r := &Router{
		shardMap: Map{Addrs: opts.Addrs},
		mir:      newMirror(),
		reg:      reg,
		log:      opts.Log,
		conns:    make(map[net.Conn]struct{}),
	}
	if opts.TraceSampleEvery >= 0 {
		r.tracer = trace.New(trace.Options{
			SampleEvery: opts.TraceSampleEvery,
			Metrics:     reg,
			Logger:      opts.Log,
		})
	}
	r.appendRows = reg.Counter("streamrel_router_append_rows_total",
		"rows accepted by the router's append path")
	r.appendHist = reg.Histogram("streamrel_router_append_seconds",
		"keyed append latency through the router, split to last shard ack", nil)
	r.partialCtr = reg.Counter("streamrel_router_partial_results_total",
		"responses flagged partial because one or more shards were down")
	r.scatterHist = reg.Histogram("streamrel_router_scatter_seconds",
		"scatter-gather snapshot query latency, fan-out to merge", nil)
	r.connGauge = reg.Gauge("streamrel_server_connections", "open client connections")
	for i, addr := range opts.Addrs {
		sc := newShardConn(i, addr, opts.Client, reg, opts.Log)
		r.shards = append(r.shards, sc)
		go sc.connect()
	}
	return r, nil
}

// Metrics returns the router's registry (per-shard health, queue depth,
// routed rows, latency series) for a /metrics endpoint.
func (r *Router) Metrics() *metrics.Registry { return r.reg }

// Tracer returns the router's tracer (nil when tracing is off).
func (r *Router) Tracer() *trace.Tracer { return r.tracer }

// WaitReady blocks until every shard connection is up or the timeout
// elapses; it returns the number of healthy shards.
func (r *Router) WaitReady(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		up := 0
		for _, sc := range r.shards {
			if sc.up() {
				up++
			}
		}
		if up == len(r.shards) || time.Now().After(deadline) {
			return up
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Listen binds the router's client listener.
func (r *Router) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	r.lis = lis
	return lis.Addr().String(), nil
}

// Serve accepts client connections until Close. Blocks.
func (r *Router) Serve() error {
	for {
		conn, err := r.lis.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		r.mu.Lock()
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		go r.handle(conn)
	}
}

// Close stops the router: listener, client sessions, shard connections.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	for _, sc := range r.shards {
		sc.close()
	}
	if r.lis != nil {
		return r.lis.Close()
	}
	return nil
}

// rsession is one client connection's state on the router.
type rsession struct {
	r    *Router
	conn net.Conn
	wmu  sync.Mutex
	enc  *json.Encoder

	nextCQ int64
	subs   map[int64]*routedSub
	done   chan struct{}
}

// routedSub is one routed subscription: the per-shard client
// subscriptions feeding either a merge (partitioned) or a passthrough.
type routedSub struct {
	subs []*client.Subscription
}

func (rs *routedSub) close() {
	for _, s := range rs.subs {
		if s != nil {
			s.Close()
		}
	}
}

func (r *Router) handle(conn net.Conn) {
	sess := &rsession{
		r:    r,
		conn: conn,
		enc:  json.NewEncoder(conn),
		subs: make(map[int64]*routedSub),
		done: make(chan struct{}),
	}
	r.connGauge.Add(1)
	defer func() {
		close(sess.done)
		for _, rs := range sess.subs {
			rs.close()
		}
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		r.connGauge.Add(-1)
	}()

	dec := json.NewDecoder(bufio.NewReaderSize(conn, 1<<20))
	for {
		var req server.Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && r.log != nil {
				r.log.Warn("router: request decode failed", "error", err.Error())
			}
			return
		}
		resp := sess.dispatch(&req)
		if resp.Partial {
			r.partialCtr.Inc()
		}
		resp.ID = req.ID
		if err := sess.write(resp); err != nil {
			return
		}
	}
}

func (sess *rsession) write(resp *server.Response) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	return sess.enc.Encode(resp)
}

func fail(err error) *server.Response { return &server.Response{Error: err.Error()} }

func (sess *rsession) dispatch(req *server.Request) *server.Response {
	r := sess.r
	switch req.Op {
	case "exec":
		return r.execStmt(req)
	case "query":
		return r.query(req)
	case "append":
		return r.append(req)
	case "advance":
		return r.advance(req)
	case "subscribe":
		return sess.subscribe(req)
	case "unsubscribe":
		rs, ok := sess.subs[req.CQ]
		if !ok {
			return fail(fmt.Errorf("router: unknown cq %d", req.CQ))
		}
		rs.close()
		delete(sess.subs, req.CQ)
		return &server.Response{OK: true}
	case "ping":
		return &server.Response{OK: true}
	case "stats":
		return statsResponse(r.reg)
	case "metrics":
		return &server.Response{OK: true, Samples: server.EncodeSamples(r.reg.Gather())}
	case "trace":
		spans := r.tracer.Snapshot()
		out := &server.Response{OK: true, Spans: make([]server.WireSpan, len(spans))}
		for i, sp := range spans {
			out.Spans[i] = server.WireSpan{
				Trace: trace.FormatID(sp.Trace), Stage: string(sp.Stage),
				Stream: sp.Stream, Pipe: sp.Pipe, StartUS: sp.Start,
				DurNS: sp.Dur, Rows: sp.Rows, Slow: sp.Slow,
			}
		}
		return out
	case "replicate", "promote":
		return fail(fmt.Errorf("router: %s is a per-shard operation; connect to the shard server directly", req.Op))
	}
	return fail(fmt.Errorf("router: unknown op %q", req.Op))
}

// execStmt routes one exec. DDL broadcasts to every shard in shard
// order; table DML broadcasts so replicated tables stay identical
// everywhere; stream inserts route like appends.
func (r *Router) execStmt(req *server.Request) *server.Response {
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return fail(err)
	}
	switch s := stmt.(type) {
	case *sql.CreateTable, *sql.CreateStream, *sql.CreateDerivedStream,
		*sql.CreateView, *sql.CreateChannel, *sql.CreateIndex, *sql.Drop:
		resp := r.broadcast(req)
		if resp.Error == "" {
			r.mir.observe(stmt)
		}
		return resp
	case *sql.Insert:
		if r.mir.isPartitionedStream(s.Table) {
			return fail(fmt.Errorf("router: INSERT into partitioned stream %q is not routed; use the append op, which splits by partition key", s.Table))
		}
		if s.Query != nil && r.mir.baseOfSelect(s.Query) != "" {
			return fail(fmt.Errorf("router: INSERT … SELECT over partitioned data is not supported through the router"))
		}
		return r.broadcast(req)
	case *sql.Update, *sql.Delete, *sql.Truncate:
		return r.broadcast(req)
	case *sql.Show, *sql.Explain:
		return r.single(0, req)
	case *sql.Select:
		return fail(fmt.Errorf("router: use the query op for snapshot queries"))
	}
	return fail(fmt.Errorf("router: unsupported statement %T", stmt))
}

// broadcast applies one request on every shard, in shard order, all or
// nothing reported: the first failure aborts and is returned (shards
// earlier in the order have already applied — rerun the statement with
// IF NOT EXISTS / IF EXISTS to converge).
func (r *Router) broadcast(req *server.Request) *server.Response {
	var first *server.Response
	for i, sc := range r.shards {
		resp, err := sc.do(&server.Request{Op: req.Op, SQL: req.SQL, Args: req.Args})
		if err != nil {
			return fail(fmt.Errorf("router: shard %d: %w (shards 0–%d already applied)", i, err, i-1))
		}
		if first == nil {
			first = resp
		}
	}
	out := *first
	return &out
}

// single forwards one request to a single shard.
func (r *Router) single(shard int, req *server.Request) *server.Response {
	resp, err := r.shards[shard].do(&server.Request{
		Op: req.Op, SQL: req.SQL, Stream: req.Stream, Rows: req.Rows,
		TS: req.TS, Args: req.Args, Trace: req.Trace,
	})
	if err != nil {
		return fail(err)
	}
	out := *resp
	return &out
}

// query routes a snapshot query: scatter-gather + merge over every
// relation fed by partitioned data, shard 0 otherwise.
func (r *Router) query(req *server.Request) *server.Response {
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return fail(err)
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return fail(fmt.Errorf("router: query expects a SELECT"))
	}
	base := r.mir.baseOfSelect(sel)
	if base == "" {
		return r.single(0, req)
	}
	plan, err := PlanMerge(sel, r.mir.partColOf(base))
	if err != nil {
		return fail(err)
	}
	start := time.Now()
	resp := r.scatter(req, plan)
	r.scatterHist.ObserveSince(start)
	return resp
}

// scatter fans one query out to every shard and merges the results.
// Downed shards degrade the response to Partial rather than failing it;
// a SQL error from any shard fails the whole query.
func (r *Router) scatter(req *server.Request, plan *MergePlan) *server.Response {
	type result struct {
		resp *server.Response
		err  error
	}
	// An AVG rewrite scatters a different query text (sum+count pairs)
	// than the client sent; the merge step recombines.
	sqlText := req.SQL
	if plan.ScatterSQL != "" {
		sqlText = plan.ScatterSQL
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			resp, err := sc.do(&server.Request{Op: req.Op, SQL: sqlText, Args: req.Args})
			results[i] = result{resp, err}
		}(i, sc)
	}
	wg.Wait()

	partial := false
	parts := make([][]types.Row, 0, len(r.shards))
	var columns []server.WireColumn
	for _, res := range results {
		if res.err != nil {
			var down ErrShardDown
			if errors.As(res.err, &down) {
				partial = true
				continue
			}
			return fail(res.err)
		}
		if columns == nil {
			columns = res.resp.Columns
		}
		rows := make([]types.Row, 0, len(res.resp.Rows))
		for _, wr := range res.resp.Rows {
			row, err := server.DecodeRow(wr)
			if err != nil {
				return fail(err)
			}
			rows = append(rows, row)
		}
		parts = append(parts, rows)
	}
	if len(parts) == 0 {
		return fail(fmt.Errorf("router: all shards down"))
	}
	merged := plan.Merge(parts)
	out := &server.Response{OK: true, Columns: outColumns(plan, columns), Partial: partial}
	for _, row := range merged {
		out.Rows = append(out.Rows, server.EncodeRow(row))
	}
	return out
}

// append splits a keyed batch into per-shard sub-batches and hands them
// to the coalescing senders; unpartitioned streams live on shard 0.
// Per-shard failures degrade to a Partial response (the surviving
// shards' rows are in) unless every shard fails.
func (r *Router) append(req *server.Request) *server.Response {
	meta, ok := r.mir.partMeta(req.Stream)
	if !ok {
		return r.single(0, req)
	}
	start := time.Now()
	tc := r.tracer.Begin(req.Stream, len(req.Rows))
	traceID := ""
	if tc.Sampled() {
		traceID = trace.FormatID(tc.ID)
	}
	parts, err := r.shardMap.SplitWire(req.Rows, meta.partIdx)
	if err != nil {
		return fail(err)
	}
	dones := make([]chan error, len(parts))
	counts := make([]int, len(parts))
	for i, sub := range parts {
		if len(sub) == 0 {
			continue
		}
		dones[i] = r.shards[i].enqueueAppend(req.Stream, sub, traceID)
		counts[i] = len(sub)
	}
	accepted := 0
	partial := false
	var firstErr error
	for i, done := range dones {
		if done == nil {
			continue
		}
		if err := <-done; err != nil {
			var down ErrShardDown
			if errors.As(err, &down) {
				partial = true
			} else if firstErr == nil {
				firstErr = err
			}
			continue
		}
		accepted += counts[i]
	}
	r.appendHist.ObserveSince(start)
	if tc.Sampled() {
		r.tracer.Record(trace.Span{
			Trace: tc.ID, Stage: trace.StageRouterIngest, Stream: req.Stream,
			Start: start.UnixMicro(), Dur: int64(time.Since(start)), Rows: len(req.Rows),
		})
	}
	if firstErr != nil {
		// A shard rejected its sub-batch (schema or late-row error). Other
		// shards may have applied theirs — ingest is at-least-partial, like
		// any distributed append without cross-shard transactions.
		return fail(firstErr)
	}
	if accepted == 0 && partial {
		return fail(fmt.Errorf("router: all target shards down"))
	}
	r.appendRows.Add(int64(accepted))
	return &server.Response{OK: true, Affected: accepted, Partial: partial}
}

// advance broadcasts a heartbeat to every live shard for partitioned
// streams (each shard's windows close independently; the CQ merger
// re-aligns them on close timestamps), shard 0 otherwise.
func (r *Router) advance(req *server.Request) *server.Response {
	if !r.mir.isPartitionedStream(req.Stream) {
		return r.single(0, req)
	}
	partial := false
	for _, sc := range r.shards {
		if _, err := sc.do(&server.Request{Op: "advance", Stream: req.Stream, TS: req.TS}); err != nil {
			var down ErrShardDown
			if errors.As(err, &down) {
				partial = true
				continue
			}
			return fail(err)
		}
	}
	return &server.Response{OK: true, Partial: partial}
}

// subscribe starts a continuous query. Partitioned sources subscribe on
// every live shard and merge window results close-by-close; everything
// else passes through to shard 0.
func (sess *rsession) subscribe(req *server.Request) *server.Response {
	r := sess.r
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return fail(err)
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return fail(fmt.Errorf("router: subscribe expects a SELECT"))
	}
	base := r.mir.baseOfSelect(sel)

	sess.nextCQ++
	handle := sess.nextCQ

	if base == "" {
		// Single-shard CQ: passthrough with handle translation.
		cli, err := r.shards[0].client()
		if err != nil {
			return fail(err)
		}
		sub, err := cli.Subscribe(req.SQL)
		if err != nil {
			return fail(err)
		}
		rs := &routedSub{subs: []*client.Subscription{sub}}
		sess.subs[handle] = rs
		go func() {
			for b := range sub.C {
				frame := &server.Response{Batch: true, CQ: handle, Close: b.Close.UnixMicro()}
				for _, row := range b.Rows {
					frame.Rows = append(frame.Rows, server.EncodeRow(row))
				}
				select {
				case <-sess.done:
					return
				default:
				}
				if sess.write(frame) != nil {
					return
				}
			}
		}()
		return &server.Response{OK: true, CQ: handle, Columns: sub.WireColumns}
	}

	plan, err := PlanMerge(sel, r.mir.partColOf(base))
	if err != nil {
		return fail(err)
	}
	sqlText := req.SQL
	if plan.ScatterSQL != "" {
		sqlText = plan.ScatterSQL
	}
	subs := make([]*client.Subscription, len(r.shards))
	var columns []server.WireColumn
	live := 0
	for i, sc := range r.shards {
		cli, err := sc.client()
		if err != nil {
			continue // downed shard: merge flags partial
		}
		sub, err := cli.Subscribe(sqlText)
		if err != nil {
			for _, s := range subs {
				if s != nil {
					s.Close()
				}
			}
			return fail(err)
		}
		subs[i] = sub
		live++
		if columns == nil {
			columns = sub.WireColumns
		}
	}
	if live == 0 {
		return fail(fmt.Errorf("router: all shards down"))
	}
	rs := &routedSub{subs: subs}
	sess.subs[handle] = rs

	m := newCQMerger(plan, len(r.shards), live < len(r.shards),
		func(closeUS int64, rows []types.Row, partial bool) {
			frame := &server.Response{Batch: true, CQ: handle, Close: closeUS, Partial: partial}
			for _, row := range rows {
				frame.Rows = append(frame.Rows, server.EncodeRow(row))
			}
			select {
			case <-sess.done:
				return
			default:
			}
			sess.write(frame)
		})
	for i, sub := range subs {
		if sub == nil {
			m.markDead(i)
			continue
		}
		go func(i int, sub *client.Subscription) {
			for b := range sub.C {
				m.onBatch(i, b.Close.UnixMicro(), b.Rows)
			}
			m.markDead(i)
		}(i, sub)
	}
	return &server.Response{OK: true, CQ: handle, Columns: outColumns(plan, columns), Partial: live < len(r.shards)}
}

// outColumns maps the per-shard scatter schema to the client-visible
// schema: passthrough columns keep the shard's name and type; an AVG
// pair collapses to one synthesized DOUBLE column.
func outColumns(plan *MergePlan, scatter []server.WireColumn) []server.WireColumn {
	if plan.Out == nil {
		return scatter
	}
	out := make([]server.WireColumn, len(plan.Out))
	for i, oc := range plan.Out {
		if oc.Count < 0 {
			if oc.Src < len(scatter) {
				out[i] = scatter[oc.Src]
			}
			continue
		}
		out[i] = server.WireColumn{Name: oc.Name, Type: types.TypeFloat.String()}
	}
	return out
}

// statsResponse mirrors server.statsResponse for the router's registry.
func statsResponse(reg *metrics.Registry) *server.Response {
	samples := reg.Gather()
	schema := types.Schema{
		{Name: "metric", Type: types.TypeString},
		{Name: "value", Type: types.TypeFloat},
	}
	out := &server.Response{OK: true, Columns: server.EncodeSchema(schema)}
	add := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		out.Rows = append(out.Rows, server.EncodeRow(types.Row{types.NewString(name), types.NewFloat(v)}))
	}
	for _, smp := range samples {
		id := smp.ID()
		if smp.Kind == metrics.KindHistogram {
			add(id+"_count", float64(smp.Count))
			add(id+"_sum", smp.Sum)
			for _, q := range []struct {
				tag string
				q   float64
			}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
				add(id+q.tag, smp.Quantile(q.q))
			}
			continue
		}
		add(id, smp.Value)
	}
	return out
}
