// Package shard implements horizontal scale-out for streamrel: a static
// shard map hashing a declared partition key (CREATE STREAM … PARTITION
// BY col) over N engine instances, and a router that speaks the client
// protocol in front of them — splitting keyed appends into per-shard
// sub-batches, scatter-gathering snapshot queries, and merging CQ window
// results on close (re-combining COUNT/SUM/MIN/MAX aggregates, ordered
// interleave otherwise). Per-shard replicas attach to the shards
// directly and reuse internal/repl unchanged.
//
// The placement function is deliberately boring: FNV-1a over the
// partition datum's type tag and canonical bytes, modulo the shard
// count. Membership is static for the life of the router process — the
// routing invariant every merge step relies on is that all rows of one
// key live on exactly one shard.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"streamrel/internal/server"
	"streamrel/internal/types"
)

// Map is a static shard map: key hash → position in Addrs.
type Map struct {
	Addrs []string
}

// N returns the shard count.
func (m Map) N() int { return len(m.Addrs) }

// HashDatum hashes one partition-key value with FNV-1a over its type tag
// and canonical byte representation. NULL hashes on the tag alone, so
// NULL keys land on one (arbitrary but stable) shard.
func HashDatum(d types.Datum) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(d.Type())
	switch d.Type() {
	case types.TypeBool:
		if d.Bool() {
			buf[1] = 1
		}
		h.Write(buf[:2])
	case types.TypeInt:
		binary.LittleEndian.PutUint64(buf[1:], uint64(d.Int()))
		h.Write(buf[:9])
	case types.TypeFloat:
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(d.Float()))
		h.Write(buf[:9])
	case types.TypeString:
		h.Write(buf[:1])
		h.Write([]byte(d.Str()))
	case types.TypeTimestamp:
		binary.LittleEndian.PutUint64(buf[1:], uint64(d.TimestampMicros()))
		h.Write(buf[:9])
	case types.TypeInterval:
		binary.LittleEndian.PutUint64(buf[1:], uint64(d.IntervalMicros()))
		h.Write(buf[:9])
	default:
		h.Write(buf[:1])
	}
	return h.Sum64()
}

// ShardOf places one partition-key value.
func (m Map) ShardOf(d types.Datum) int {
	return int(HashDatum(d) % uint64(len(m.Addrs)))
}

// SplitWire partitions a batch of wire rows by the partition column at
// position keyCol. The result has one (possibly nil) sub-batch per
// shard; row order within each sub-batch preserves arrival order, which
// keeps per-shard CQTIME monotonicity when the input batch is ordered.
func (m Map) SplitWire(rows [][]server.WireValue, keyCol int) ([][][]server.WireValue, error) {
	out := make([][][]server.WireValue, m.N())
	for _, r := range rows {
		if keyCol >= len(r) {
			return nil, fmt.Errorf("shard: row has %d columns, partition column is %d", len(r), keyCol)
		}
		d, err := server.DecodeValue(r[keyCol])
		if err != nil {
			return nil, fmt.Errorf("shard: bad partition key: %w", err)
		}
		s := m.ShardOf(d)
		out[s] = append(out[s], r)
	}
	return out, nil
}

// SplitRows partitions decoded rows by the partition column — the same
// placement as SplitWire, used by tests and in-process callers.
func (m Map) SplitRows(rows []types.Row, keyCol int) ([][]types.Row, error) {
	out := make([][]types.Row, m.N())
	for _, r := range rows {
		if keyCol >= len(r) {
			return nil, fmt.Errorf("shard: row has %d columns, partition column is %d", len(r), keyCol)
		}
		s := m.ShardOf(r[keyCol])
		out[s] = append(out[s], r)
	}
	return out, nil
}
