package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"streamrel/internal/metrics"
	"streamrel/internal/server"
	"streamrel/internal/trace"
)

// This file is the router's cluster observability plane: one /metrics
// scrape that federates every shard's registry (series tagged with a
// shard label), one /debug/traces view that stitches distributed spans
// back together by trace ID, and /healthz + /readyz probes. The paper
// frames monitoring as just another continuous query over the system's
// own event streams; federation extends that to the cluster by making
// every node's telemetry reachable through a single pane.

// FederatedSamples scrapes every shard's full metrics registry over the
// wire "metrics" op, tags each scraped series with shard="<index>", and
// merges them with the router's own registry tagged shard="router".
// Router series that already carry a shard label (the per-shard
// connection health and queue series) keep it — they are already
// shard-attributed. partial is true when one or more shards could not be
// scraped; their series are simply absent, mirroring how scatter-gather
// queries degrade.
func (r *Router) FederatedSamples() (samples []*metrics.Sample, partial bool) {
	type result struct {
		samples []*metrics.Sample
		err     error
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			resp, err := sc.do(&server.Request{Op: "metrics"})
			switch {
			case err != nil:
				results[i] = result{err: err}
			case resp.Error != "":
				results[i] = result{err: fmt.Errorf("shard %d: %s", i, resp.Error)}
			default:
				results[i] = result{samples: server.DecodeSamples(resp.Samples)}
			}
		}(i, sc)
	}
	wg.Wait()

	for _, s := range r.reg.Gather() {
		samples = append(samples, tagShard(s, "router"))
	}
	for i, res := range results {
		if res.err != nil {
			partial = true
			if r.log != nil {
				r.log.Warn("metrics federation scrape failed", "shard", i, "error", res.err.Error())
			}
			continue
		}
		label := strconv.Itoa(i)
		for _, s := range res.samples {
			samples = append(samples, tagShard(s, label))
		}
	}
	return samples, partial
}

// tagShard adds shard=val unless the series already has a shard label.
func tagShard(s *metrics.Sample, val string) *metrics.Sample {
	for _, l := range s.Labels {
		if l.Key == "shard" {
			return s
		}
	}
	return s.WithLabel("shard", val)
}

// MetricsHandler serves the federated scrape in the Prometheus text
// exposition format; mount it at /metrics on the router's debug
// listener. A partial scrape (downed shard) still serves the surviving
// series, flagged with an X-Streamrel-Partial header.
func (r *Router) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		samples, partial := r.FederatedSamples()
		var b strings.Builder
		if err := metrics.WriteSamples(&b, samples); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if partial {
			w.Header().Set("X-Streamrel-Partial", "true")
		}
		io.WriteString(w, b.String())
	})
}

// FedSpan is one span in a federated trace, tagged with the node that
// recorded it ("router" or "shard-N").
type FedSpan struct {
	Node string `json:"node"`
	server.WireSpan
}

// FedTrace is one distributed trace stitched back together: every span
// across the router and all shards that shares one trace ID, ordered by
// start time.
type FedTrace struct {
	Trace   string    `json:"trace"`
	StartUS int64     `json:"start_us"`
	Spans   []FedSpan `json:"spans"`
}

// FederatedTraces gathers the router's own span ring plus every shard's
// (via the wire "trace" op) and groups the union by trace ID — the ID a
// routed append carries across the wire hop, so a single trace shows the
// router ingest span followed by each shard's pipeline spans. Traces are
// ordered oldest first. partial is true when a shard scrape failed.
func (r *Router) FederatedTraces() (traces []FedTrace, partial bool) {
	type result struct {
		spans []server.WireSpan
		err   error
	}
	results := make([]result, len(r.shards))
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			resp, err := sc.do(&server.Request{Op: "trace"})
			switch {
			case err != nil:
				results[i] = result{err: err}
			case resp.Error != "":
				results[i] = result{err: fmt.Errorf("shard %d: %s", i, resp.Error)}
			default:
				results[i] = result{spans: resp.Spans}
			}
		}(i, sc)
	}
	wg.Wait()

	byID := map[string]*FedTrace{}
	add := func(node string, ws server.WireSpan) {
		ft, ok := byID[ws.Trace]
		if !ok {
			ft = &FedTrace{Trace: ws.Trace, StartUS: ws.StartUS}
			byID[ws.Trace] = ft
		}
		if ws.StartUS < ft.StartUS {
			ft.StartUS = ws.StartUS
		}
		ft.Spans = append(ft.Spans, FedSpan{Node: node, WireSpan: ws})
	}
	for _, sp := range r.tracer.Snapshot() {
		add("router", server.WireSpan{
			Trace: trace.FormatID(sp.Trace), Stage: string(sp.Stage),
			Stream: sp.Stream, Pipe: sp.Pipe, StartUS: sp.Start,
			DurNS: sp.Dur, Rows: sp.Rows, Slow: sp.Slow, Mode: sp.Mode,
		})
	}
	for i, res := range results {
		if res.err != nil {
			partial = true
			if r.log != nil {
				r.log.Warn("trace federation scrape failed", "shard", i, "error", res.err.Error())
			}
			continue
		}
		node := "shard-" + strconv.Itoa(i)
		for _, ws := range res.spans {
			add(node, ws)
		}
	}
	traces = make([]FedTrace, 0, len(byID))
	for _, ft := range byID {
		sort.SliceStable(ft.Spans, func(a, b int) bool { return ft.Spans[a].StartUS < ft.Spans[b].StartUS })
		traces = append(traces, *ft)
	}
	sort.Slice(traces, func(a, b int) bool {
		if traces[a].StartUS != traces[b].StartUS {
			return traces[a].StartUS < traces[b].StartUS
		}
		return traces[a].Trace < traces[b].Trace
	})
	return traces, partial
}

// TracesHandler serves the stitched traces as JSON; mount it at
// /debug/traces on the router's debug listener.
func (r *Router) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		traces, partial := r.FederatedTraces()
		w.Header().Set("Content-Type", "application/json")
		if partial {
			w.Header().Set("X-Streamrel-Partial", "true")
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(traces)
	})
}

// probeStatus is the JSON body of the /healthz and /readyz probes.
type probeStatus struct {
	Status string `json:"status"`
	Up     int    `json:"shards_up,omitempty"`
	Total  int    `json:"shards_total,omitempty"`
	Down   []int  `json:"shards_down,omitempty"`
}

// HealthzHandler is the router's liveness probe: it answers 200 as long
// as the process is serving, regardless of shard health — restarting the
// router does not heal a downed shard.
func (r *Router) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeProbe(w, http.StatusOK, probeStatus{Status: "ok"})
	})
}

// ReadyzHandler is the router's readiness probe: ready only while every
// shard connection is healthy, so a load balancer drains the router
// while results would be partial.
func (r *Router) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := probeStatus{Status: "ok", Total: len(r.shards)}
		for i, sc := range r.shards {
			if sc.up() {
				st.Up++
			} else {
				st.Down = append(st.Down, i)
			}
		}
		code := http.StatusOK
		if st.Up < st.Total {
			st.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
		writeProbe(w, code, st)
	})
}

func writeProbe(w http.ResponseWriter, code int, st probeStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}
