package shard

import (
	"encoding/binary"
	"reflect"
	"testing"

	"streamrel/internal/types"
)

// FuzzShardSplitMerge checks the router's batch round-trip invariant:
// splitting arbitrary rows by key across N shards and concat-merging the
// parts back must be lossless — exactly the original rows, in canonical
// order. The fuzzer drives shard count, key column, and row contents
// from raw bytes.
func FuzzShardSplitMerge(f *testing.F) {
	f.Add(uint8(2), uint8(0), uint8(0), []byte("alpha\x00bravo\x00charlie"))
	f.Add(uint8(4), uint8(1), uint8(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(1), uint8(0), uint8(2), []byte{})
	f.Fuzz(func(t *testing.T, nShards, keyCol, typeSeed uint8, data []byte) {
		n := int(nShards)%8 + 1
		m := Map{Addrs: make([]string, n)}
		const cols = 3
		kc := int(keyCol) % cols

		// Each column has one type for the whole batch (query results are
		// schema-uniform; mixed-type columns are not a case the router can
		// see). Individual values may still be NULL.
		mk := func(c int, chunk []byte) types.Datum {
			v := binary.LittleEndian.Uint64(chunk[1:9]) + uint64(c)
			if (uint64(chunk[0])+v)%7 == 0 {
				return types.Null
			}
			switch (int(typeSeed) + c) % 4 {
			case 0:
				return types.NewInt(int64(v))
			case 1:
				return types.NewFloat(float64(int64(v)) / 8)
			case 2:
				return types.NewString(string(chunk[1 : 1+int(v%9)]))
			default:
				return types.NewBool(v%2 == 0)
			}
		}

		// Decode rows from the raw bytes: 9 bytes per row.
		var rows []types.Row
		for len(data) >= 9 {
			chunk := data[:9]
			data = data[9:]
			row := make(types.Row, cols)
			for c := 0; c < cols; c++ {
				row[c] = mk(c, chunk)
			}
			rows = append(rows, row)
		}

		parts, err := m.SplitRows(rows, kc)
		if err != nil {
			t.Fatalf("SplitRows: %v", err)
		}
		if len(parts) != n {
			t.Fatalf("got %d parts for %d shards", len(parts), n)
		}
		total := 0
		for s, part := range parts {
			total += len(part)
			for _, r := range part {
				if want := m.ShardOf(r[kc]); want != s {
					t.Fatalf("row with key %v placed on shard %d, want %d", r[kc], s, want)
				}
			}
		}
		if total != len(rows) {
			t.Fatalf("split changed row count: %d -> %d", len(rows), total)
		}

		plan := &MergePlan{Kind: MergeConcat}
		merged := plan.Merge(parts)

		want := make([]types.Row, len(rows))
		copy(want, rows)
		sortRows(want)
		if len(merged) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(merged, want) {
			t.Fatalf("split+merge not lossless:\n got %v\nwant %v", merged, want)
		}
	})
}
