package shard

import (
	"sort"
	"sync"

	"streamrel/internal/types"
)

// cqMerger re-aligns per-shard CQ window results on their close
// timestamps and emits one merged batch per close, in close order.
//
// The alignment rule is a watermark: a close T may be emitted once every
// live shard's latest seen close is ≥ T — at that point no live shard
// can still produce a batch for T (per-shard closes arrive in order). A
// shard that never fired T (its pipeline started later, so its clock
// aligned past T) simply contributes nothing to T. Shards whose
// subscription dies stop gating the watermark; every batch emitted after
// the first death is flagged partial.
type cqMerger struct {
	plan *MergePlan
	emit func(closeUS int64, rows []types.Row, partial bool)

	mu       sync.Mutex
	pending  []map[int64][]types.Row // per shard: close → rows
	hwm      []int64                 // per shard: latest close seen
	alive    []bool
	partial  bool
	emitted  bool  // any close emitted yet
	lastEmit int64 // last emitted close; later frames for it are dropped
}

func newCQMerger(plan *MergePlan, shards int, partial bool, emit func(int64, []types.Row, bool)) *cqMerger {
	m := &cqMerger{
		plan:    plan,
		emit:    emit,
		pending: make([]map[int64][]types.Row, shards),
		hwm:     make([]int64, shards),
		alive:   make([]bool, shards),
		partial: partial,
	}
	for i := range m.pending {
		m.pending[i] = make(map[int64][]types.Row)
		m.alive[i] = true
	}
	return m
}

// onBatch ingests one shard's window batch. Frames for closes already
// emitted are dropped — per-shard closes arrive in order, so this only
// happens for pathological senders.
func (m *cqMerger) onBatch(shard int, closeUS int64, rows []types.Row) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.emitted && closeUS <= m.lastEmit {
		return
	}
	m.pending[shard][closeUS] = append(m.pending[shard][closeUS], rows...)
	if closeUS > m.hwm[shard] {
		m.hwm[shard] = closeUS
	}
	m.drainLocked()
}

// markDead removes a shard from the watermark; its already received
// batches still merge, later closes emit partial.
func (m *cqMerger) markDead(shard int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.alive[shard] {
		return
	}
	m.alive[shard] = false
	m.partial = true
	m.drainLocked()
}

// drainLocked emits every close the watermark has passed, in order.
func (m *cqMerger) drainLocked() {
	for {
		t, ok := m.minPendingLocked()
		if !ok {
			return
		}
		for i, alive := range m.alive {
			if alive && m.hwm[i] < t {
				return // shard i may still fire t
			}
		}
		parts := make([][]types.Row, 0, len(m.pending))
		for i := range m.pending {
			if rows, ok := m.pending[i][t]; ok {
				parts = append(parts, rows)
				delete(m.pending[i], t)
			}
		}
		m.emitted, m.lastEmit = true, t
		m.emit(t, m.plan.Merge(parts), m.partial)
	}
}

// minPendingLocked finds the smallest close any shard still holds.
func (m *cqMerger) minPendingLocked() (int64, bool) {
	min, ok := int64(0), false
	for i := range m.pending {
		for c := range m.pending[i] {
			if !ok || c < min {
				min, ok = c, true
			}
		}
	}
	return min, ok
}

// closesOf is a test helper: the sorted pending closes of one shard.
func (m *cqMerger) closesOf(shard int) []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.pending[shard]))
	for c := range m.pending[shard] {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
