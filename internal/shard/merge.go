package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"streamrel/internal/expr"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

// MergeKind selects how per-shard result sets combine into one.
type MergeKind int

// Merge kinds.
const (
	// MergeConcat interleaves per-shard rows into one canonically ordered
	// result — correct whenever each output row is computed from rows of a
	// single shard (plain projections, and GROUP BY on the partition key).
	MergeConcat MergeKind = iota
	// MergeAggregate re-combines per-shard partial aggregates by group
	// key: COUNT and SUM add, MIN and MAX compare.
	MergeAggregate
)

// ColMerge is the per-output-column combine rule of a MergeAggregate plan.
type ColMerge int

// Column combine rules.
const (
	// ColKey columns identify the group (GROUP BY exprs and cq_close(*));
	// equal across shards within one group.
	ColKey ColMerge = iota
	// ColCount adds integer partial counts.
	ColCount
	// ColSum adds partial sums, skipping NULLs (SQL sum of nothing).
	ColSum
	// ColMin keeps the smaller non-NULL partial.
	ColMin
	// ColMax keeps the larger non-NULL partial.
	ColMax
)

// MergePlan is the compiled merge step for one scatter-gathered query.
type MergePlan struct {
	Kind MergeKind
	// Cols has one combine rule per scatter column (MergeAggregate only).
	// With no AVG rewrite the scatter columns are the output columns.
	Cols []ColMerge
	// Out maps each client-visible output column onto the merged scatter
	// columns; nil when the scatter projection IS the output projection.
	// AVG makes them differ: avg(x) scatters as sum(x), count(x) and is
	// recombined here after the global merge.
	Out []OutCol
	// ScatterSQL is the rewritten query text the router must send to the
	// shards instead of the client's SQL; "" when no rewrite happened.
	ScatterSQL string
}

// OutCol is one client-visible output column of a rewritten scatter plan.
type OutCol struct {
	// Src is the scatter column to emit (the SUM part for an AVG pair).
	Src int
	// Count is the scatter column holding the AVG pair's COUNT, or -1 to
	// pass Src through unchanged. When set, the output value is
	// sum/count as DOUBLE, NULL when the global count is zero.
	Count int
	// Name is the client-visible column name for a synthesized column
	// (the query alias, or the engine's default "avg").
	Name string
}

// PlanMerge compiles the merge step for a query that will be scattered
// over shards partitioned on column partCol ("" when unknown). It
// rejects queries whose global result cannot be reassembled from
// per-shard results — the routing invariants documented in DESIGN.md §10.
func PlanMerge(sel *sql.Select, partCol string) (*MergePlan, error) {
	if sel.SetOp != nil {
		return nil, fmt.Errorf("shard: UNION/EXCEPT/INTERSECT cannot be scatter-gathered")
	}
	if sel.Distinct {
		return nil, fmt.Errorf("shard: SELECT DISTINCT cannot be scatter-gathered")
	}
	if sel.Limit != nil || sel.Offset != nil {
		return nil, fmt.Errorf("shard: LIMIT/OFFSET cannot be scatter-gathered (no global order across shards)")
	}
	if sel.OrderBy != nil {
		return nil, fmt.Errorf("shard: ORDER BY cannot be scatter-gathered; results arrive in canonical row order")
	}

	hasAgg := false
	for _, it := range sel.Items {
		if it.Star || it.TableStar != "" {
			continue
		}
		sql.WalkExprs(it.Expr, func(e sql.Expr) bool {
			if fc, ok := e.(*sql.FuncCall); ok && expr.IsAggregate(fc.Name) {
				hasAgg = true
			}
			return true
		})
	}
	if !hasAgg {
		// Pure row-wise query: every output row is computed on the shard
		// that holds its input row; interleave.
		return &MergePlan{Kind: MergeConcat}, nil
	}

	// GROUP BY on the partition key confines each group to one shard, so
	// any aggregate (including AVG) concatenates.
	if partCol != "" && groupsByColumn(sel.GroupBy, partCol) {
		return &MergePlan{Kind: MergeConcat}, nil
	}
	if sel.Having != nil {
		return nil, fmt.Errorf("shard: HAVING cannot be scatter-gathered (filters partial aggregates); GROUP BY the partition key or filter client-side")
	}

	keys := make(map[string]bool, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		keys[g.String()] = true
	}
	plan := &MergePlan{Kind: MergeAggregate, Cols: make([]ColMerge, 0, len(sel.Items))}
	var scatterItems []string
	rewrote := false
	for _, it := range sel.Items {
		if it.Star || it.TableStar != "" {
			return nil, fmt.Errorf("shard: * projection cannot be combined with aggregates across shards")
		}
		// avg(x) is not itself combinable — the average of per-shard
		// averages is wrong — but its SUM+COUNT decomposition is: scatter
		// sum(x), count(x) instead and recombine sum/count after the
		// global merge.
		if fc, ok := it.Expr.(*sql.FuncCall); ok && strings.EqualFold(fc.Name, "avg") && !fc.Distinct && len(fc.Args) == 1 {
			arg := fc.Args[0].String()
			scatterItems = append(scatterItems, "sum("+arg+")", "count("+arg+")")
			name := it.Alias
			if name == "" {
				name = "avg"
			}
			plan.Out = append(plan.Out, OutCol{Src: len(plan.Cols), Count: len(plan.Cols) + 1, Name: name})
			plan.Cols = append(plan.Cols, ColSum, ColCount)
			rewrote = true
			continue
		}
		scatterItems = append(scatterItems, itemText(it))
		plan.Out = append(plan.Out, OutCol{Src: len(plan.Cols), Count: -1})
		if cm, ok := aggColMerge(it.Expr); ok {
			var err error
			if cm, err = checkAgg(it.Expr.(*sql.FuncCall), cm); err != nil {
				return nil, err
			}
			plan.Cols = append(plan.Cols, cm)
			continue
		}
		if isCQClose(it.Expr) || keys[it.Expr.String()] {
			plan.Cols = append(plan.Cols, ColKey)
			continue
		}
		return nil, fmt.Errorf("shard: output column %s is neither a combinable aggregate (count/sum/avg/min/max) nor a GROUP BY key", it.Expr.String())
	}
	if !rewrote {
		plan.Out = nil
		return plan, nil
	}
	text, err := scatterText(sel, scatterItems)
	if err != nil {
		return nil, err
	}
	plan.ScatterSQL = text
	return plan, nil
}

// itemText renders one projection item for the scatter query, keeping the
// alias so per-shard output columns keep their client-visible names.
func itemText(it sql.SelectItem) string {
	s := it.Expr.String()
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

// scatterText renders the rewritten per-shard query. Only the shape the
// rewrite applies to — a single windowed-or-plain base relation with
// optional WHERE and GROUP BY (joins and subqueries never reach here:
// they have no single partitioned base) — needs rendering.
func scatterText(sel *sql.Select, items []string) (string, error) {
	if len(sel.From) != 1 {
		return "", fmt.Errorf("shard: avg over a multi-relation FROM cannot be scatter-gathered")
	}
	bt, ok := sel.From[0].(*sql.BaseTable)
	if !ok {
		return "", fmt.Errorf("shard: avg over a %T FROM cannot be scatter-gathered", sel.From[0])
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" FROM ")
	b.WriteString(bt.Name)
	if bt.Window != nil {
		b.WriteString(" " + bt.Window.String())
	}
	if bt.Alias != "" {
		b.WriteString(" " + bt.Alias)
	}
	if sel.Where != nil {
		b.WriteString(" WHERE " + sel.Where.String())
	}
	if len(sel.GroupBy) > 0 {
		gs := make([]string, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			gs[i] = g.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(gs, ", "))
	}
	return b.String(), nil
}

// groupsByColumn reports whether any GROUP BY expression is a bare
// reference to column name.
func groupsByColumn(groupBy []sql.Expr, name string) bool {
	for _, g := range groupBy {
		if cr, ok := g.(*sql.ColumnRef); ok && strings.EqualFold(cr.Name, name) {
			return true
		}
	}
	return false
}

func isCQClose(e sql.Expr) bool {
	fc, ok := e.(*sql.FuncCall)
	return ok && strings.EqualFold(fc.Name, "cq_close")
}

// aggColMerge classifies a direct aggregate call; (0,false) when e is not
// an aggregate call at all.
func aggColMerge(e sql.Expr) (ColMerge, bool) {
	fc, ok := e.(*sql.FuncCall)
	if !ok || !expr.IsAggregate(fc.Name) {
		return 0, false
	}
	switch strings.ToLower(fc.Name) {
	case "count":
		return ColCount, true
	case "sum":
		return ColSum, true
	case "min":
		return ColMin, true
	case "max":
		return ColMax, true
	}
	return ColKey, true // flagged; rejected by checkAgg
}

func checkAgg(fc *sql.FuncCall, cm ColMerge) (ColMerge, error) {
	if fc.Distinct {
		return 0, fmt.Errorf("shard: %s(DISTINCT …) cannot be re-combined across shards", fc.Name)
	}
	switch strings.ToLower(fc.Name) {
	case "count", "sum", "min", "max":
		return cm, nil
	}
	return 0, fmt.Errorf("shard: %s cannot be re-combined across shards; GROUP BY the partition key to compute it per shard", fc.Name)
}

// Merge combines per-shard result sets according to the plan. Output
// rows are in canonical row order (types.CompareRows) so results are
// deterministic regardless of shard arrival order.
func (p *MergePlan) Merge(parts [][]types.Row) []types.Row {
	if p.Kind == MergeConcat {
		var out []types.Row
		for _, rows := range parts {
			out = append(out, rows...)
		}
		sortRows(out)
		return out
	}
	groups := make(map[string]types.Row)
	var order []string
	for _, rows := range parts {
		for _, r := range rows {
			if len(r) != len(p.Cols) {
				continue // shard disagreement; drop rather than corrupt
			}
			k := p.groupKey(r)
			acc, ok := groups[k]
			if !ok {
				groups[k] = append(types.Row(nil), r...)
				order = append(order, k)
				continue
			}
			for i, cm := range p.Cols {
				acc[i] = combine(cm, acc[i], r[i])
			}
		}
	}
	out := make([]types.Row, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	if p.Out != nil {
		for i, r := range out {
			out[i] = p.project(r)
		}
	}
	sortRows(out)
	return out
}

// project maps one merged scatter row to the client-visible projection,
// recombining AVG's sum/count pairs: sum/count as DOUBLE, NULL when no
// non-NULL input survived anywhere (SQL avg of nothing).
func (p *MergePlan) project(r types.Row) types.Row {
	out := make(types.Row, len(p.Out))
	for i, oc := range p.Out {
		if oc.Count < 0 {
			out[i] = r[oc.Src]
			continue
		}
		n := r[oc.Count].Int()
		if n == 0 || r[oc.Src].IsNull() {
			out[i] = types.Null
			continue
		}
		out[i] = types.NewFloat(numeric(r[oc.Src]) / float64(n))
	}
	return out
}

// groupKey encodes the ColKey columns unambiguously (type tag +
// length-prefixed canonical text).
func (p *MergePlan) groupKey(r types.Row) string {
	var b strings.Builder
	for i, cm := range p.Cols {
		if cm != ColKey {
			continue
		}
		d := r[i]
		b.WriteByte(byte(d.Type()))
		s := d.String()
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

// combine folds one shard's column value into the accumulator.
func combine(cm ColMerge, acc, v types.Datum) types.Datum {
	switch cm {
	case ColKey:
		return acc
	case ColCount:
		return types.NewInt(acc.Int() + v.Int())
	case ColSum:
		switch {
		case v.IsNull():
			return acc
		case acc.IsNull():
			return v
		case acc.Type() == types.TypeInt && v.Type() == types.TypeInt:
			return types.NewInt(acc.Int() + v.Int())
		default:
			return types.NewFloat(numeric(acc) + numeric(v))
		}
	case ColMin, ColMax:
		if v.IsNull() {
			return acc
		}
		if acc.IsNull() {
			return v
		}
		c := types.Compare(acc, v)
		if (cm == ColMin && c <= 0) || (cm == ColMax && c >= 0) {
			return acc
		}
		return v
	}
	return acc
}

func numeric(d types.Datum) float64 {
	if d.Type() == types.TypeInt {
		return float64(d.Int())
	}
	return d.Float()
}

func sortRows(rows []types.Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		return types.CompareRows(rows[i], rows[j]) < 0
	})
}
