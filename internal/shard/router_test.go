package shard

import (
	"strings"
	"testing"
	"time"

	"streamrel"
	"streamrel/client"
	"streamrel/internal/server"
	"streamrel/internal/types"
)

// testCluster is N in-process shard engines behind a router.
type testCluster struct {
	engines []*streamrel.Engine
	servers []*server.Server
	router  *Router
	addr    string
}

func startCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	var addrs []string
	for i := 0; i < n; i++ {
		eng, err := streamrel.Open(streamrel.Config{})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(eng)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		tc.engines = append(tc.engines, eng)
		tc.servers = append(tc.servers, srv)
		addrs = append(addrs, addr)
	}
	r, err := NewRouter(Options{Addrs: addrs, TraceSampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if up := r.WaitReady(5 * time.Second); up != n {
		t.Fatalf("only %d of %d shards came up", up, n)
	}
	addr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve()
	tc.router = r
	tc.addr = addr
	t.Cleanup(func() {
		r.Close()
		for i := range tc.servers {
			tc.servers[i].Close()
			tc.engines[i].Close()
		}
	})
	return tc
}

func ts(t *testing.T, s string) time.Time {
	t.Helper()
	return streamrel.MustTimestamp(s)
}

func nextBatch(t *testing.T, sub *client.Subscription) client.Batch {
	t.Helper()
	select {
	case b, ok := <-sub.C:
		if !ok {
			t.Fatal("subscription closed")
		}
		return b
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for CQ batch")
	}
	return client.Batch{}
}

func TestRouterEndToEnd(t *testing.T) {
	tc := startCluster(t, 2)
	c, err := client.Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, ddl := range []string{
		`CREATE STREAM s (k varchar(20), v bigint, at timestamp CQTIME USER) PARTITION BY k`,
		`CREATE STREAM s_now AS SELECT count(*) AS n, sum(v) AS sv, cq_close(*) AS stime
			FROM s <ADVANCE '1 minute'>`,
		`CREATE TABLE s_archive (n bigint, sv bigint, stime timestamp)`,
		`CREATE CHANNEL s_ch FROM s_now INTO s_archive APPEND`,
	} {
		if _, err := c.Exec(ddl); err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
	}
	// DDL must exist on every shard.
	for i, eng := range tc.engines {
		if _, err := eng.Query(`SELECT n FROM s_archive`); err != nil {
			t.Fatalf("shard %d missing s_archive: %v", i, err)
		}
	}

	aggSub, err := c.Subscribe(`SELECT count(*) AS n, sum(v) AS sv, cq_close(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	keySub, err := c.Subscribe(`SELECT k, count(*) AS n FROM s <ADVANCE '1 minute'> GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}

	base := ts(t, "2009-01-04 00:00:00")
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	var rows []client.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, client.Row{
			types.NewString(keys[i%len(keys)]),
			types.NewInt(int64(i)),
			types.NewTimestamp(base.Add(time.Duration(i) * time.Second)),
		})
	}
	if err := c.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance("s", base.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}

	b := nextBatch(t, aggSub)
	if b.Close.UnixMicro() != base.Add(time.Minute).UnixMicro() {
		t.Fatalf("close = %v", b.Close)
	}
	if len(b.Rows) != 1 {
		t.Fatalf("agg batch rows = %v", b.Rows)
	}
	if n := b.Rows[0][0].Int(); n != 30 {
		t.Fatalf("merged count = %d, want 30", n)
	}
	if sv := b.Rows[0][1].Int(); sv != 435 { // 0+1+…+29
		t.Fatalf("merged sum = %d, want 435", sv)
	}
	if b.Partial {
		t.Fatal("batch should not be partial")
	}

	kb := nextBatch(t, keySub)
	if len(kb.Rows) != len(keys) {
		t.Fatalf("per-key batch = %v", kb.Rows)
	}
	// Canonical order: sorted by key.
	for i := 1; i < len(kb.Rows); i++ {
		if strings.Compare(kb.Rows[i-1][0].Str(), kb.Rows[i][0].Str()) >= 0 {
			t.Fatalf("per-key rows not in canonical order: %v", kb.Rows)
		}
	}
	for _, r := range kb.Rows {
		if r[1].Int() != 5 {
			t.Fatalf("per-key count = %v", r)
		}
	}

	// Both shards got a sub-batch (keys spread across shards).
	counts := make([]int, 2)
	for i, eng := range tc.engines {
		res, err := eng.Query(`SELECT sum(n) FROM s_archive`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Data) != 1 || res.Data[0][0].IsNull() {
			t.Fatalf("shard %d archived nothing: %v", i, res.Data)
		}
		counts[i] = int(res.Data[0][0].Int())
	}
	if counts[0]+counts[1] != 30 || counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("per-shard archived counts = %v, want a split of 30", counts)
	}

	// Scatter-gathered snapshot over the partitioned Active Table.
	res, err := c.Query(`SELECT count(*), sum(n) FROM s_archive`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("query should not be partial")
	}
	if got := res.Data[0][1].Int(); got != 30 {
		t.Fatalf("scatter sum(n) = %d, want 30", got)
	}

	// avg scatters as its SUM+COUNT decomposition and recombines at the
	// router — the global average, not an average of per-shard averages.
	av, err := c.Query(`SELECT avg(n) FROM s_archive`)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := float64(res.Data[0][1].Int()) / float64(res.Data[0][0].Int())
	if got := av.Data[0][0].Float(); got != wantAvg {
		t.Fatalf("scatter avg(n) = %v, want %v", got, wantAvg)
	}
	if av.Columns[0].Name != "avg" {
		t.Fatalf("avg column = %+v", av.Columns[0])
	}

	// Merge-rejected shapes produce clear errors.
	if _, err := c.Query(`SELECT stddev(n) FROM s_archive`); err == nil || !strings.Contains(err.Error(), "re-combined") {
		t.Fatalf("stddev over shards: %v", err)
	}

	// Unpartitioned relations route to shard 0 only.
	if _, err := c.Exec(`CREATE TABLE plain (x bigint)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO plain VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	pr, err := c.Query(`SELECT count(*) FROM plain`)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Data[0][0].Int() != 2 {
		t.Fatalf("plain count = %v", pr.Data)
	}

	// INSERT into a partitioned stream is rejected with guidance.
	if _, err := c.Exec(`INSERT INTO s VALUES ('x', 1, TIMESTAMP '2009-01-04 00:02:00')`); err == nil ||
		!strings.Contains(err.Error(), "append") {
		t.Fatalf("insert into partitioned stream: %v", err)
	}
}

func TestRouterPartialOnShardDown(t *testing.T) {
	tc := startCluster(t, 2)
	c, err := client.Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, ddl := range []string{
		`CREATE STREAM s (k bigint, v bigint, at timestamp CQTIME USER) PARTITION BY k`,
		`CREATE STREAM s_now AS SELECT k, count(*) AS n, cq_close(*) AS stime
			FROM s <ADVANCE '1 minute'> GROUP BY k`,
		`CREATE TABLE s_archive (k bigint, n bigint, stime timestamp)`,
		`CREATE CHANNEL s_ch FROM s_now INTO s_archive APPEND`,
	} {
		if _, err := c.Exec(ddl); err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
	}
	base := ts(t, "2009-01-04 00:00:00")
	var rows []client.Row
	for i := 0; i < 64; i++ {
		rows = append(rows, client.Row{
			types.NewInt(int64(i)), types.NewInt(1), types.NewTimestamp(base.Add(time.Second)),
		})
	}
	if err := c.Append("s", rows...); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance("s", base.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}

	full, err := c.Query(`SELECT count(*) FROM s_archive`)
	if err != nil || full.Partial {
		t.Fatalf("full query: %v partial=%v", err, full.Partial)
	}
	if full.Data[0][0].Int() != 64 {
		t.Fatalf("full count = %v", full.Data)
	}

	// Kill shard 1; scatter queries degrade to partial.
	tc.servers[1].Close()
	tc.engines[1].Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.Query(`SELECT count(*) FROM s_archive`)
		if err == nil && res.Partial {
			if res.Data[0][0].Int() >= 64 {
				t.Fatalf("partial count should be < 64: %v", res.Data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw a partial result (err=%v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Keyed appends keep flowing to the surviving shard, flagged partial
	// at the response level. (Timestamps must be past the advance above —
	// streams are ordered on CQTIME.)
	var later []client.Row
	for i := 0; i < 64; i++ {
		later = append(later, client.Row{
			types.NewInt(int64(i)), types.NewInt(1), types.NewTimestamp(base.Add(2 * time.Minute)),
		})
	}
	resp, err := c.Do(&server.Request{Op: "append", Stream: "s", Rows: encodeWire(later)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatal("append with a downed shard should be partial")
	}
	if resp.Affected == 0 || resp.Affected >= 64 {
		t.Fatalf("partial append affected = %d", resp.Affected)
	}
}

func encodeWire(rows []client.Row) [][]server.WireValue {
	out := make([][]server.WireValue, len(rows))
	for i, r := range rows {
		out[i] = server.EncodeRow(r)
	}
	return out
}
