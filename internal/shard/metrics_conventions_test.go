package shard

import (
	"strings"
	"testing"

	"streamrel/internal/metrics"
)

// TestRouterMetricNamingConventions audits the router's registry — a
// separate registry from any engine's — under the repo-wide naming
// rules (the engine-side counterpart lives in metrics_conventions_test.go
// at the repo root), and spot-checks the streamrel_router_* namespace.
func TestRouterMetricNamingConventions(t *testing.T) {
	// The address never answers; series register at construction.
	r, err := NewRouter(Options{Addrs: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	byName := map[string]*metrics.Sample{}
	for _, s := range r.Metrics().Gather() {
		byName[s.Name] = s
		if !strings.HasPrefix(s.Name, "streamrel_") {
			t.Errorf("metric %q lacks the streamrel_ prefix", s.Name)
		}
		switch s.Kind {
		case metrics.KindCounter:
			if !strings.HasSuffix(s.Name, "_total") {
				t.Errorf("counter %q should end in _total", s.Name)
			}
		case metrics.KindHistogram:
			if !strings.HasSuffix(s.Name, "_seconds") && !strings.HasSuffix(s.Name, "_batches") {
				t.Errorf("histogram %q should end in a unit suffix (_seconds, _batches)", s.Name)
			}
		case metrics.KindGauge:
			if strings.HasSuffix(s.Name, "_total") {
				t.Errorf("gauge %q must not end in _total", s.Name)
			}
		}
	}
	for _, name := range []string{
		"streamrel_router_append_rows_total",
		"streamrel_router_append_seconds",
		"streamrel_router_partial_results_total",
		"streamrel_router_scatter_seconds",
		"streamrel_router_routed_rows_total",
		"streamrel_router_send_seconds",
		"streamrel_router_coalesced_batches",
		"streamrel_router_shard_errors_total",
		"streamrel_router_reconnects_total",
		"streamrel_router_shard_up",
		"streamrel_router_queue_depth",
		"streamrel_server_connections",
	} {
		if byName[name] == nil {
			t.Errorf("expected router series %s not registered", name)
		}
	}
}
