package shard

import (
	"reflect"
	"testing"

	"streamrel/internal/server"
	"streamrel/internal/sql"
	"streamrel/internal/types"
)

func TestHashDatumStable(t *testing.T) {
	m := Map{Addrs: []string{"a", "b", "c"}}
	for _, d := range []types.Datum{
		types.NewInt(42), types.NewString("client-7"), types.NewFloat(3.5),
		types.NewBool(true), types.NewTimestampMicros(1e6), types.Null,
	} {
		s1, s2 := m.ShardOf(d), m.ShardOf(d)
		if s1 != s2 {
			t.Fatalf("ShardOf(%v) unstable: %d vs %d", d, s1, s2)
		}
		if s1 < 0 || s1 >= 3 {
			t.Fatalf("ShardOf(%v) = %d out of range", d, s1)
		}
	}
	// Distinct int and string values must not all land on one shard.
	hit := map[int]bool{}
	for i := 0; i < 64; i++ {
		hit[m.ShardOf(types.NewInt(int64(i)))] = true
	}
	if len(hit) != 3 {
		t.Fatalf("64 int keys hit only %d of 3 shards", len(hit))
	}
}

func TestSplitWire(t *testing.T) {
	m := Map{Addrs: []string{"a", "b"}}
	var rows [][]server.WireValue
	for i := int64(0); i < 20; i++ {
		rows = append(rows, server.EncodeRow(types.Row{types.NewInt(i % 5), types.NewInt(i)}))
	}
	parts, err := m.SplitWire(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s, part := range parts {
		total += len(part)
		for _, r := range part {
			d, _ := server.DecodeValue(r[0])
			if m.ShardOf(d) != s {
				t.Fatalf("key %v on shard %d, want %d", d, s, m.ShardOf(d))
			}
		}
	}
	if total != len(rows) {
		t.Fatalf("split lost rows: %d of %d", total, len(rows))
	}
	if _, err := m.SplitWire(rows, 9); err == nil {
		t.Fatal("out-of-range key column should fail")
	}
}

func planFor(t *testing.T, q, partCol string) (*MergePlan, error) {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return PlanMerge(stmt.(*sql.Select), partCol)
}

func TestPlanMergeRules(t *testing.T) {
	p, err := planFor(t, `SELECT count(*), sum(v), min(v), max(v), cq_close(*) FROM s <ADVANCE '1 minute'>`, "k")
	if err != nil {
		t.Fatal(err)
	}
	want := []ColMerge{ColCount, ColSum, ColMin, ColMax, ColKey}
	if p.Kind != MergeAggregate || !reflect.DeepEqual(p.Cols, want) {
		t.Fatalf("plan = %+v, want aggregate %v", p, want)
	}

	p, err = planFor(t, `SELECT k, v FROM s`, "k")
	if err != nil || p.Kind != MergeConcat {
		t.Fatalf("plain projection: %+v, %v", p, err)
	}

	// GROUP BY the partition key confines groups to one shard: any
	// aggregate concatenates, including AVG.
	p, err = planFor(t, `SELECT k, avg(v) FROM s GROUP BY k`, "k")
	if err != nil || p.Kind != MergeConcat {
		t.Fatalf("group-by-partition-key: %+v, %v", p, err)
	}

	p, err = planFor(t, `SELECT u, count(*) FROM s GROUP BY u`, "k")
	if err != nil || p.Kind != MergeAggregate || !reflect.DeepEqual(p.Cols, []ColMerge{ColKey, ColCount}) {
		t.Fatalf("group-by-other: %+v, %v", p, err)
	}

	// avg over a non-partition-key grouping rewrites to a SUM+COUNT
	// scatter recombined at the router.
	p, err = planFor(t, `SELECT u, avg(v) AS m, count(*) FROM s <ADVANCE '1 minute'> GROUP BY u`, "k")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != MergeAggregate || !reflect.DeepEqual(p.Cols, []ColMerge{ColKey, ColSum, ColCount, ColCount}) {
		t.Fatalf("avg rewrite cols = %+v", p.Cols)
	}
	wantOut := []OutCol{{Src: 0, Count: -1}, {Src: 1, Count: 2, Name: "m"}, {Src: 3, Count: -1}}
	if !reflect.DeepEqual(p.Out, wantOut) {
		t.Fatalf("avg rewrite out = %+v, want %+v", p.Out, wantOut)
	}
	wantSQL := `SELECT u, sum(v), count(v), count(*) FROM s <VISIBLE '1 minute' ADVANCE '1 minute'> GROUP BY u`
	if p.ScatterSQL != wantSQL {
		t.Fatalf("scatter sql = %q, want %q", p.ScatterSQL, wantSQL)
	}
	if _, err := sql.Parse(p.ScatterSQL); err != nil {
		t.Fatalf("scatter sql does not re-parse: %v", err)
	}

	for _, bad := range []string{
		`SELECT avg(DISTINCT v) FROM s`,
		`SELECT stddev(v) FROM s`,
		`SELECT count(DISTINCT v) FROM s`,
		`SELECT DISTINCT k FROM s`,
		`SELECT k FROM s ORDER BY k`,
		`SELECT k FROM s LIMIT 5`,
		`SELECT u, count(*) FROM s GROUP BY u HAVING count(*) > 1`,
		`SELECT k FROM s UNION SELECT k FROM t`,
		`SELECT sum(v) + 1 FROM s`,
	} {
		if _, err := planFor(t, bad, "k"); err == nil {
			t.Errorf("PlanMerge(%q) should fail", bad)
		}
	}
}

func rowsOf(vals ...[]any) []types.Row {
	out := make([]types.Row, len(vals))
	for i, rv := range vals {
		row := make(types.Row, len(rv))
		for j, v := range rv {
			switch x := v.(type) {
			case int:
				row[j] = types.NewInt(int64(x))
			case string:
				row[j] = types.NewString(x)
			case nil:
				row[j] = types.Null
			case float64:
				row[j] = types.NewFloat(x)
			}
		}
		out[i] = row
	}
	return out
}

func TestMergeAggregate(t *testing.T) {
	p := &MergePlan{Kind: MergeAggregate, Cols: []ColMerge{ColKey, ColCount, ColSum, ColMin, ColMax}}
	shard0 := rowsOf([]any{"a", 2, 10, 1, 7}, []any{"b", 1, 5, 5, 5})
	shard1 := rowsOf([]any{"a", 3, 20, 0, 9}, []any{"c", 1, nil, 2, 2})
	got := p.Merge([][]types.Row{shard0, shard1})
	want := rowsOf([]any{"a", 5, 30, 0, 9}, []any{"b", 1, 5, 5, 5}, []any{"c", 1, nil, 2, 2})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
}

func TestMergeAvgRecombine(t *testing.T) {
	// Scatter rows are (key, sum, count); the plan recombines each pair
	// into one DOUBLE column. Group "a" proves it is the global average
	// (35/5 = 7), not the average of per-shard averages ((5+6.67)/2);
	// group "c" saw only NULL inputs everywhere and must stay NULL.
	p := &MergePlan{
		Kind: MergeAggregate,
		Cols: []ColMerge{ColKey, ColSum, ColCount},
		Out:  []OutCol{{Src: 0, Count: -1}, {Src: 1, Count: 2, Name: "avg"}},
	}
	shard0 := rowsOf([]any{"a", 10, 2}, []any{"b", 4, 4}, []any{"c", nil, 0})
	shard1 := rowsOf([]any{"a", 25, 3}, []any{"c", nil, 0})
	got := p.Merge([][]types.Row{shard0, shard1})
	want := rowsOf([]any{"a", 7.0}, []any{"b", 1.0}, []any{"c", nil})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("avg merge = %v, want %v", got, want)
	}
}

func TestMergeAggregateNullSum(t *testing.T) {
	p := &MergePlan{Kind: MergeAggregate, Cols: []ColMerge{ColCount, ColSum}}
	got := p.Merge([][]types.Row{rowsOf([]any{0, nil}), rowsOf([]any{0, nil})})
	want := rowsOf([]any{0, nil})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty-window merge = %v, want %v", got, want)
	}
}

func TestMergeConcatCanonicalOrder(t *testing.T) {
	p := &MergePlan{Kind: MergeConcat}
	got := p.Merge([][]types.Row{rowsOf([]any{"b", 2}), rowsOf([]any{"a", 1}, []any{"c", 3})})
	want := rowsOf([]any{"a", 1}, []any{"b", 2}, []any{"c", 3})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concat = %v, want %v", got, want)
	}
}

func TestCQMergerWatermark(t *testing.T) {
	type emitted struct {
		close   int64
		rows    []types.Row
		partial bool
	}
	var got []emitted
	m := newCQMerger(&MergePlan{Kind: MergeAggregate, Cols: []ColMerge{ColCount}}, 2, false,
		func(c int64, rows []types.Row, partial bool) {
			got = append(got, emitted{c, rows, partial})
		})

	m.onBatch(0, 100, rowsOf([]any{3}))
	if len(got) != 0 {
		t.Fatal("emitted before shard 1 reached close 100")
	}
	m.onBatch(1, 100, rowsOf([]any{4}))
	if len(got) != 1 || got[0].close != 100 || got[0].rows[0][0].Int() != 7 {
		t.Fatalf("close 100: %+v", got)
	}

	// Shard 1 skips close 200 (fires 300 directly): 200 emits with only
	// shard 0's contribution once shard 1's watermark passes it.
	m.onBatch(0, 200, rowsOf([]any{1}))
	m.onBatch(1, 300, rowsOf([]any{2}))
	if len(got) != 2 || got[1].close != 200 || got[1].rows[0][0].Int() != 1 {
		t.Fatalf("skipped close: %+v", got)
	}

	// Shard 0 catches up to 300: both contributions merge.
	m.onBatch(0, 300, rowsOf([]any{5}))
	if len(got) != 3 || got[2].close != 300 || got[2].rows[0][0].Int() != 7 || got[2].partial {
		t.Fatalf("close 300: %+v", got)
	}

	// Shard 1 dies: it stops gating the watermark and everything after
	// is flagged partial.
	m.markDead(1)
	m.onBatch(0, 400, rowsOf([]any{6}))
	if len(got) != 4 || got[3].close != 400 || got[3].rows[0][0].Int() != 6 || !got[3].partial {
		t.Fatalf("after death: %+v", got)
	}
}

func TestCQMergerOrdering(t *testing.T) {
	var closes []int64
	m := newCQMerger(&MergePlan{Kind: MergeConcat}, 2, false,
		func(c int64, rows []types.Row, partial bool) { closes = append(closes, c) })
	m.onBatch(0, 100, rowsOf([]any{1}))
	m.onBatch(0, 200, rowsOf([]any{2}))
	m.onBatch(0, 300, rowsOf([]any{3}))
	m.onBatch(1, 300, rowsOf([]any{4}))
	m.onBatch(1, 100, rowsOf([]any{9})) // late frame for an emitted close: dropped
	if want := []int64{100, 200, 300}; !reflect.DeepEqual(closes, want) {
		t.Fatalf("closes = %v, want %v", closes, want)
	}
	if left := m.closesOf(1); len(left) != 0 {
		t.Fatalf("shard 1 leftover closes = %v", left)
	}
}
