package shard

import (
	"fmt"
	"log/slog"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamrel/client"
	"streamrel/internal/metrics"
	"streamrel/internal/server"
)

// ErrShardDown reports an operation that needed a shard whose connection
// is currently down. Scatter ops downgrade to partial results instead of
// failing; single-shard ops surface this error to the client.
type ErrShardDown struct {
	Shard int
	Addr  string
}

func (e ErrShardDown) Error() string {
	return fmt.Sprintf("shard: shard %d (%s) is down", e.Shard, e.Addr)
}

// pendingAppend is one producer's sub-batch waiting in a shard's
// coalescing queue.
type pendingAppend struct {
	stream string
	rows   [][]server.WireValue
	trace  string
	done   chan error
}

// maxCoalescedRows caps how many rows one coalesced append may carry so
// a burst cannot build an unboundedly large wire frame.
const maxCoalescedRows = 16384

// shardConn manages the router's connection to one shard: health with
// reconnect/backoff, a coalescing append queue (many producers' sub-
// batches for the same stream merge into one wire append — one WAL
// group commit on the shard), and per-shard metrics.
type shardConn struct {
	id   int
	addr string
	opts client.Options
	log  *slog.Logger

	mu     sync.Mutex
	cli    *client.Client // nil while down
	queue  []pendingAppend
	wake   chan struct{}
	closed bool

	rowsRouted  *metrics.Counter
	sendHist    *metrics.Histogram
	coalesceH   *metrics.Histogram
	errsCtr     *metrics.Counter
	reconnCtr   *metrics.Counter
	upGauge     *metrics.Gauge
	unregisterQ func()
}

func newShardConn(id int, addr string, opts client.Options, reg *metrics.Registry, log *slog.Logger) *shardConn {
	sc := &shardConn{
		id:   id,
		addr: addr,
		opts: opts,
		log:  log,
		wake: make(chan struct{}, 1),
	}
	l := metrics.L("shard", strconv.Itoa(id))
	sc.rowsRouted = reg.Counter("streamrel_router_routed_rows_total",
		"rows routed to this shard by partition key", l)
	sc.sendHist = reg.Histogram("streamrel_router_send_seconds",
		"latency of one coalesced append round-trip to this shard", nil, l)
	sc.coalesceH = reg.Histogram("streamrel_router_coalesced_batches",
		"producer sub-batches merged into one shard append", nil, l)
	sc.errsCtr = reg.Counter("streamrel_router_shard_errors_total",
		"operations against this shard that failed", l)
	sc.reconnCtr = reg.Counter("streamrel_router_reconnects_total",
		"successful reconnects to this shard", l)
	sc.upGauge = reg.Gauge("streamrel_router_shard_up",
		"1 while the shard connection is healthy", l)
	sc.unregisterQ = reg.GaugeFunc("streamrel_router_queue_depth",
		"producer sub-batches waiting in this shard's coalescing queue",
		func() float64 {
			sc.mu.Lock()
			n := len(sc.queue)
			sc.mu.Unlock()
			return float64(n)
		}, l)
	go sc.sender()
	return sc
}

// connect dials until it succeeds or the conn is closed; backoff with
// jitter between attempts. Returns false when closed.
func (sc *shardConn) connect() bool {
	backoff := 100 * time.Millisecond
	for {
		sc.mu.Lock()
		if sc.closed {
			sc.mu.Unlock()
			return false
		}
		sc.mu.Unlock()
		cli, err := client.DialOptions(sc.addr, sc.opts)
		if err == nil {
			if err = cli.Ping(); err == nil {
				sc.mu.Lock()
				sc.cli = cli
				sc.mu.Unlock()
				sc.upGauge.Set(1)
				sc.reconnCtr.Inc()
				if sc.log != nil {
					sc.log.Info("shard connected", "shard", sc.id, "addr", sc.addr)
				}
				return true
			}
			cli.Close()
		}
		if sc.log != nil {
			sc.log.Warn("shard dial failed", "shard", sc.id, "addr", sc.addr, "error", err.Error())
		}
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff/2)+1)))
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// client returns the live client or an ErrShardDown.
func (sc *shardConn) client() (*client.Client, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.cli == nil {
		return nil, ErrShardDown{Shard: sc.id, Addr: sc.addr}
	}
	return sc.cli, nil
}

// up reports current health.
func (sc *shardConn) up() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cli != nil
}

// fail marks the connection dead after an I/O error and kicks the
// background reconnect. Call with the client that failed, so a
// concurrent fail for an already replaced connection is a no-op.
func (sc *shardConn) fail(failed *client.Client, err error) {
	sc.errsCtr.Inc()
	sc.mu.Lock()
	if sc.cli == nil || (failed != nil && sc.cli != failed) {
		sc.mu.Unlock()
		return
	}
	dead := sc.cli
	sc.cli = nil
	sc.mu.Unlock()
	sc.upGauge.Set(0)
	dead.Close()
	if sc.log != nil {
		sc.log.Warn("shard connection lost", "shard", sc.id, "addr", sc.addr, "error", err.Error())
	}
	go func() {
		if sc.connect() {
			// Flush anything queued while down.
			select {
			case sc.wake <- struct{}{}:
			default:
			}
		}
	}()
}

// do runs one non-append round-trip against the shard, turning
// connection loss into ErrShardDown.
func (sc *shardConn) do(req *server.Request) (*server.Response, error) {
	cli, err := sc.client()
	if err != nil {
		return nil, err
	}
	resp, err := cli.Do(req)
	if err != nil {
		if isConnErr(err) {
			sc.fail(cli, err)
			return nil, ErrShardDown{Shard: sc.id, Addr: sc.addr}
		}
		return nil, err
	}
	return resp, nil
}

// enqueueAppend queues one sub-batch for the coalescing sender and
// returns the completion channel.
func (sc *shardConn) enqueueAppend(stream string, rows [][]server.WireValue, traceID string) chan error {
	done := make(chan error, 1)
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		done <- fmt.Errorf("shard: router is shutting down")
		return done
	}
	sc.queue = append(sc.queue, pendingAppend{stream: stream, rows: rows, trace: traceID, done: done})
	sc.mu.Unlock()
	select {
	case sc.wake <- struct{}{}:
	default:
	}
	return done
}

// sender drains the append queue: it takes the longest prefix of queued
// sub-batches that target the same stream (preserving producer order)
// and sends them as ONE wire append — the router-level analogue of WAL
// group commit. While a round-trip is in flight more sub-batches queue
// behind it, so concurrent producers amortize both the wire hop and the
// shard's fsync.
func (sc *shardConn) sender() {
	for range sc.wake {
		for {
			sc.mu.Lock()
			if sc.closed {
				queue := sc.queue
				sc.queue = nil
				sc.mu.Unlock()
				for _, p := range queue {
					p.done <- fmt.Errorf("shard: router is shutting down")
				}
				return
			}
			if len(sc.queue) == 0 {
				sc.mu.Unlock()
				break
			}
			stream := sc.queue[0].stream
			take, rows := 0, 0
			for take < len(sc.queue) && sc.queue[take].stream == stream {
				if take > 0 && rows+len(sc.queue[take].rows) > maxCoalescedRows {
					break
				}
				rows += len(sc.queue[take].rows)
				take++
			}
			group := sc.queue[:take:take]
			sc.queue = sc.queue[take:]
			cli := sc.cli
			sc.mu.Unlock()

			sc.sendGroup(cli, stream, group, rows)
		}
	}
}

// sendGroup ships one coalesced append and fans the result back to every
// producer in the group.
func (sc *shardConn) sendGroup(cli *client.Client, stream string, group []pendingAppend, rowCount int) {
	if cli == nil {
		err := ErrShardDown{Shard: sc.id, Addr: sc.addr}
		for _, p := range group {
			p.done <- err
		}
		return
	}
	var batch [][]server.WireValue
	if len(group) == 1 {
		batch = group[0].rows
	} else {
		batch = make([][]server.WireValue, 0, rowCount)
		for _, p := range group {
			batch = append(batch, p.rows...)
		}
	}
	// One trace ID is enough: the coalesced batch is one shard-side unit.
	traceID := ""
	for _, p := range group {
		if p.trace != "" {
			traceID = p.trace
			break
		}
	}
	start := time.Now()
	err := cli.AppendWire(stream, batch, traceID)
	sc.sendHist.ObserveSince(start)
	sc.coalesceH.Observe(float64(len(group)))
	if err == nil {
		sc.rowsRouted.Add(int64(rowCount))
	} else if isConnErr(err) {
		sc.fail(cli, err)
		err = ErrShardDown{Shard: sc.id, Addr: sc.addr}
	} else {
		sc.errsCtr.Inc()
	}
	for _, p := range group {
		p.done <- err
	}
}

// close shuts the connection down for good.
func (sc *shardConn) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	cli := sc.cli
	sc.cli = nil
	sc.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
	select {
	case sc.wake <- struct{}{}:
	default:
	}
	if sc.unregisterQ != nil {
		sc.unregisterQ()
	}
}

// isConnErr reports whether an error from the client means the
// connection itself is unusable (vs. a server-side SQL error, which
// arrives as a normal error response on a healthy connection).
func isConnErr(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	for _, marker := range []string{
		"connection lost", "connection closed", "client: closed",
		"request timed out", "broken pipe", "connection refused",
		"connection reset", "use of closed network connection", "EOF",
	} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}
