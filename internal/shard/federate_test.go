package shard

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"streamrel/internal/metrics"
)

func TestFederateTagShard(t *testing.T) {
	plain := &metrics.Sample{Name: "streamrel_x_total", Kind: metrics.KindCounter, Value: 1}
	tagged := tagShard(plain, "3")
	if got := tagged.ID(); got != `streamrel_x_total{shard="3"}` {
		t.Errorf("tagged ID = %s", got)
	}
	// A series already shard-attributed (the router's own per-shard health
	// gauges) keeps its label instead of being re-tagged "router".
	own := plain.WithLabel("shard", "1")
	if got := tagShard(own, "router"); got.ID() != `streamrel_x_total{shard="1"}` {
		t.Errorf("pre-labeled series re-tagged: %s", got.ID())
	}
}

// TestFederateDownShards exercises the router's observability plane with
// every shard unreachable: /metrics must still serve the router's own
// shard="router" series flagged partial, /healthz stays 200, and /readyz
// degrades to 503 naming both downed shards.
func TestFederateDownShards(t *testing.T) {
	r, err := NewRouter(Options{Addrs: []string{"127.0.0.1:1", "127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if rec.Header().Get("X-Streamrel-Partial") != "true" {
		t.Error("/metrics not flagged partial with all shards down")
	}
	parsed, err := metrics.ParseExposition(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, rec.Body.String())
	}
	if len(parsed) == 0 {
		t.Fatal("no router-own series in partial federation")
	}
	for i := range parsed {
		if parsed[i].Labels["shard"] == "" {
			t.Errorf("series %s has no shard label", parsed[i].ID())
		}
	}

	rec = httptest.NewRecorder()
	r.TracesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 || rec.Header().Get("X-Streamrel-Partial") != "true" {
		t.Errorf("/debug/traces status=%d partial=%q", rec.Code, rec.Header().Get("X-Streamrel-Partial"))
	}
	var traces []FedTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Errorf("/debug/traces body is not a trace list: %v", err)
	}

	rec = httptest.NewRecorder()
	r.HealthzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz status = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	r.ReadyzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz status = %d, want 503", rec.Code)
	}
	var st probeStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "degraded" || st.Up != 0 || st.Total != 2 || len(st.Down) != 2 {
		t.Errorf("readyz body = %+v", st)
	}
}
