// Package types implements the SQL value system shared by tables and
// streams: typed datums, rows, schemas, and the time/interval arithmetic
// that window processing is built on.
//
// The paper's central technical claim is that "streaming data and stored
// data are not intrinsically different" (§2.3); a single value
// representation used by every operator, whether its input arrives from a
// heap page or a window close, is the foundation of that unification.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies the SQL type of a Datum.
type Type uint8

// The supported SQL types. TypeNull is the type of the SQL NULL literal
// before coercion; a typed column never has TypeNull.
const (
	TypeUnknown Type = iota
	TypeNull
	TypeBool
	TypeInt       // 64-bit signed integer
	TypeFloat     // 64-bit IEEE float
	TypeString    // UTF-8 text
	TypeTimestamp // microseconds since the Unix epoch, UTC
	TypeInterval  // signed duration in microseconds
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOLEAN"
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeTimestamp:
		return "TIMESTAMP"
	case TypeInterval:
		return "INTERVAL"
	default:
		return "UNKNOWN"
	}
}

// Numeric reports whether the type participates in numeric arithmetic.
func (t Type) Numeric() bool { return t == TypeInt || t == TypeFloat }

// Comparable reports whether two types can be compared with <, =, etc.
func Comparable(a, b Type) bool {
	if a == b {
		return true
	}
	if a.Numeric() && b.Numeric() {
		return true
	}
	if a == TypeNull || b == TypeNull {
		return true
	}
	return false
}

// Datum is a single SQL value. The zero value is SQL NULL... almost: the
// zero Type is TypeUnknown, so use Null (the package-level variable) or
// NewNull for explicit NULLs. Datum is a value type and is never mutated
// after construction.
type Datum struct {
	typ Type
	i   int64 // TypeInt, TypeBool (0/1), TypeTimestamp, TypeInterval
	f   float64
	s   string
}

// Null is the SQL NULL value.
var Null = Datum{typ: TypeNull}

// True and False are the boolean constants.
var (
	True  = Datum{typ: TypeBool, i: 1}
	False = Datum{typ: TypeBool, i: 0}
)

// NewNull returns the SQL NULL value.
func NewNull() Datum { return Null }

// NewBool returns a boolean datum.
func NewBool(b bool) Datum {
	if b {
		return True
	}
	return False
}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{typ: TypeInt, i: v} }

// NewFloat returns a floating-point datum.
func NewFloat(v float64) Datum { return Datum{typ: TypeFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{typ: TypeString, s: v} }

// NewTimestamp returns a timestamp datum, truncated to microseconds.
func NewTimestamp(t time.Time) Datum {
	return Datum{typ: TypeTimestamp, i: t.UnixMicro()}
}

// NewTimestampMicros returns a timestamp datum from microseconds since the
// Unix epoch.
func NewTimestampMicros(us int64) Datum { return Datum{typ: TypeTimestamp, i: us} }

// NewInterval returns an interval datum, truncated to microseconds.
func NewInterval(d time.Duration) Datum {
	return Datum{typ: TypeInterval, i: d.Microseconds()}
}

// NewIntervalMicros returns an interval datum from a microsecond count.
func NewIntervalMicros(us int64) Datum { return Datum{typ: TypeInterval, i: us} }

// Type returns the datum's type.
func (d Datum) Type() Type { return d.typ }

// IsNull reports whether the datum is SQL NULL (or the unknown zero value).
func (d Datum) IsNull() bool { return d.typ == TypeNull || d.typ == TypeUnknown }

// Bool returns the boolean value; it panics on other types.
func (d Datum) Bool() bool {
	d.mustBe(TypeBool)
	return d.i != 0
}

// Int returns the integer value; it panics on other types.
func (d Datum) Int() int64 {
	d.mustBe(TypeInt)
	return d.i
}

// Float returns the floating-point value; for TypeInt it widens.
func (d Datum) Float() float64 {
	switch d.typ {
	case TypeFloat:
		return d.f
	case TypeInt:
		return float64(d.i)
	}
	panic(fmt.Sprintf("types: Float on %s", d.typ))
}

// Str returns the string value; it panics on other types.
func (d Datum) Str() string {
	d.mustBe(TypeString)
	return d.s
}

// TimestampMicros returns the timestamp in microseconds since the epoch.
func (d Datum) TimestampMicros() int64 {
	d.mustBe(TypeTimestamp)
	return d.i
}

// Time returns the timestamp as a time.Time in UTC.
func (d Datum) Time() time.Time {
	d.mustBe(TypeTimestamp)
	return time.UnixMicro(d.i).UTC()
}

// IntervalMicros returns the interval in microseconds.
func (d Datum) IntervalMicros() int64 {
	d.mustBe(TypeInterval)
	return d.i
}

// Duration returns the interval as a time.Duration.
func (d Datum) Duration() time.Duration {
	d.mustBe(TypeInterval)
	return time.Duration(d.i) * time.Microsecond
}

func (d Datum) mustBe(t Type) {
	if d.typ != t {
		panic(fmt.Sprintf("types: %s datum used as %s", d.typ, t))
	}
}

// String renders the datum the way the REPL and test goldens print values.
func (d Datum) String() string {
	switch d.typ {
	case TypeNull, TypeUnknown:
		return "NULL"
	case TypeBool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case TypeInt:
		return strconv.FormatInt(d.i, 10)
	case TypeFloat:
		return formatFloat(d.f)
	case TypeString:
		return d.s
	case TypeTimestamp:
		return time.UnixMicro(d.i).UTC().Format("2006-01-02 15:04:05.000000")
	case TypeInterval:
		return FormatInterval(d.i)
	default:
		return fmt.Sprintf("<%d>", d.typ)
	}
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Ensure floats always print with a decimal point or exponent so they
	// are distinguishable from integers in goldens.
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") {
		s += ".0"
	}
	return s
}

// Compare returns -1, 0 or +1 ordering d before, equal to, or after e.
// NULL sorts before every non-NULL value (Postgres NULLS FIRST for ASC is
// configurable there; here the total order is fixed and documented).
// Mixed int/float comparisons are exact for the magnitudes this engine
// handles. Comparing incomparable types panics: the planner inserts casts
// so executing plans never do that.
func Compare(a, b Datum) int {
	an, bn := a.IsNull(), b.IsNull()
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
	if a.typ.Numeric() && b.typ.Numeric() {
		if a.typ == TypeInt && b.typ == TypeInt {
			return cmpInt(a.i, b.i)
		}
		return cmpFloat(a.Float(), b.Float())
	}
	if a.typ != b.typ {
		panic(fmt.Sprintf("types: cannot compare %s with %s", a.typ, b.typ))
	}
	switch a.typ {
	case TypeBool, TypeTimestamp, TypeInterval:
		return cmpInt(a.i, b.i)
	case TypeString:
		return strings.Compare(a.s, b.s)
	default:
		panic(fmt.Sprintf("types: cannot compare %s", a.typ))
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// NaN sorts after everything, NaN == NaN for ordering purposes.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return 1
	default:
		return -1
	}
}

// Equal reports SQL equality treating NULL = NULL as true; callers that
// need three-valued logic use expr's comparison evaluation instead. This
// is the definition GROUP BY and DISTINCT use.
func Equal(a, b Datum) bool {
	if !Comparable(a.typ, b.typ) {
		return false
	}
	return Compare(a, b) == 0
}
