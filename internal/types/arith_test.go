package types

import (
	"testing"
	"time"
)

type evalHelper struct{ t *testing.T }

func (e evalHelper) ok(d Datum, err error) Datum {
	e.t.Helper()
	if err != nil {
		e.t.Fatalf("unexpected error: %v", err)
	}
	return d
}

func TestAdd(t *testing.T) {
	e := evalHelper{t}
	if got := e.ok(Add(NewInt(2), NewInt(3))); got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := e.ok(Add(NewInt(2), NewFloat(0.5))); got.Float() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	ts := NewTimestamp(time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC))
	iv := NewInterval(time.Hour)
	got := e.ok(Add(ts, iv))
	if got.Time().Hour() != 1 {
		t.Errorf("ts + 1h = %v", got)
	}
	got = e.ok(Add(iv, ts))
	if got.Type() != TypeTimestamp {
		t.Errorf("interval + ts should be timestamp")
	}
	if got := e.ok(Add(iv, iv)); got.Duration() != 2*time.Hour {
		t.Errorf("1h+1h = %v", got)
	}
	if got := e.ok(Add(Null, NewInt(1))); !got.IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
	if _, err := Add(True, NewInt(1)); err == nil {
		t.Error("bool + int should error")
	}
}

func TestSub(t *testing.T) {
	e := evalHelper{t}
	if got := e.ok(Sub(NewInt(5), NewInt(3))); got.Int() != 2 {
		t.Errorf("5-3 = %v", got)
	}
	ts1 := NewTimestampMicros(10_000_000)
	ts2 := NewTimestampMicros(4_000_000)
	if got := e.ok(Sub(ts1, ts2)); got.Duration() != 6*time.Second {
		t.Errorf("ts - ts = %v", got)
	}
	if got := e.ok(Sub(ts1, NewInterval(time.Second))); got.TimestampMicros() != 9_000_000 {
		t.Errorf("ts - 1s = %v", got)
	}
	if got := e.ok(Sub(NewFloat(1), NewInt(2))); got.Float() != -1 {
		t.Errorf("1.0-2 = %v", got)
	}
}

func TestMulDivMod(t *testing.T) {
	e := evalHelper{t}
	if got := e.ok(Mul(NewInt(6), NewInt(7))); got.Int() != 42 {
		t.Errorf("6*7 = %v", got)
	}
	if got := e.ok(Mul(NewInterval(time.Minute), NewInt(5))); got.Duration() != 5*time.Minute {
		t.Errorf("1m*5 = %v", got)
	}
	if got := e.ok(Mul(NewFloat(0.5), NewInterval(time.Hour))); got.Duration() != 30*time.Minute {
		t.Errorf("0.5*1h = %v", got)
	}
	if got := e.ok(Div(NewInt(7), NewInt(2))); got.Int() != 3 {
		t.Errorf("7/2 = %v (integer division truncates)", got)
	}
	if got := e.ok(Div(NewFloat(7), NewInt(2))); got.Float() != 3.5 {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := e.ok(Div(NewInterval(time.Hour), NewInt(2))); got.Duration() != 30*time.Minute {
		t.Errorf("1h/2 = %v", got)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err != ErrDivisionByZero {
		t.Error("int div by zero")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err != ErrDivisionByZero {
		t.Error("float div by zero")
	}
	if got := e.ok(Mod(NewInt(7), NewInt(3))); got.Int() != 1 {
		t.Errorf("7%%3 = %v", got)
	}
	if _, err := Mod(NewInt(7), NewInt(0)); err != ErrDivisionByZero {
		t.Error("mod by zero")
	}
}

func TestNeg(t *testing.T) {
	e := evalHelper{t}
	if got := e.ok(Neg(NewInt(5))); got.Int() != -5 {
		t.Errorf("-5 = %v", got)
	}
	if got := e.ok(Neg(NewFloat(2.5))); got.Float() != -2.5 {
		t.Errorf("-2.5 = %v", got)
	}
	if got := e.ok(Neg(NewInterval(time.Second))); got.Duration() != -time.Second {
		t.Errorf("-1s = %v", got)
	}
	if got := e.ok(Neg(Null)); !got.IsNull() {
		t.Error("-NULL should be NULL")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("negating a string should error")
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		in   Datum
		to   Type
		want Datum
	}{
		{NewInt(1), TypeBool, True},
		{NewInt(0), TypeBool, False},
		{NewString("true"), TypeBool, True},
		{True, TypeInt, NewInt(1)},
		{NewFloat(3.9), TypeInt, NewInt(3)},
		{NewString("42"), TypeInt, NewInt(42)},
		{NewInt(3), TypeFloat, NewFloat(3)},
		{NewString("2.5"), TypeFloat, NewFloat(2.5)},
		{NewInt(42), TypeString, NewString("42")},
		{NewString("1 week"), TypeInterval, NewInterval(7 * 24 * time.Hour)},
		{Null, TypeInt, Null},
		{NewInt(5), TypeInt, NewInt(5)},
	}
	for _, c := range cases {
		got, err := Cast(c.in, c.to)
		if err != nil {
			t.Errorf("Cast(%v, %s): %v", c.in, c.to, err)
			continue
		}
		if !Equal(got, c.want) || (got.IsNull() != c.want.IsNull()) {
			t.Errorf("Cast(%v, %s) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
	if _, err := Cast(NewString("zzz"), TypeInt); err == nil {
		t.Error("bad int cast should error")
	}
	if _, err := Cast(True, TypeTimestamp); err == nil {
		t.Error("bool→timestamp should error")
	}
	ts, err := Cast(NewString("2009-01-04 12:30:00"), TypeTimestamp)
	if err != nil || ts.Time().Hour() != 12 {
		t.Errorf("string→timestamp = %v, %v", ts, err)
	}
}

func TestParseInterval(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"5 minutes", 5 * time.Minute},
		{"1 minute", time.Minute},
		{"1 week", 7 * 24 * time.Hour},
		{"2 hours", 2 * time.Hour},
		{"250 milliseconds", 250 * time.Millisecond},
		{"1 hour 30 minutes", 90 * time.Minute},
		{"1 day", 24 * time.Hour},
		{"-30 seconds", -30 * time.Second},
		{"1.5 hours", 90 * time.Minute},
		{"10 s", 10 * time.Second},
		{"3 ms", 3 * time.Millisecond},
	}
	for _, c := range cases {
		got, err := ParseInterval(c.in)
		if err != nil {
			t.Errorf("ParseInterval(%q): %v", c.in, err)
			continue
		}
		if got.Duration() != c.want {
			t.Errorf("ParseInterval(%q) = %v, want %v", c.in, got.Duration(), c.want)
		}
	}
	for _, bad := range []string{"", "fast", "5", "5 parsecs", "x minutes"} {
		if _, err := ParseInterval(bad); err == nil {
			t.Errorf("ParseInterval(%q) should error", bad)
		}
	}
}

func TestFormatIntervalRoundTrip(t *testing.T) {
	for _, us := range []int64{0, 1, 1000, 1_000_000, 90_000_000, 3_600_000_000,
		86_400_000_000, 7 * 86_400_000_000, 8*86_400_000_000 + 3_600_000_000, -60_000_000} {
		s := FormatInterval(us)
		got, err := ParseInterval(s)
		if err != nil {
			t.Fatalf("FormatInterval(%d) = %q did not re-parse: %v", us, s, err)
		}
		if got.IntervalMicros() != us {
			t.Fatalf("round trip %d -> %q -> %d", us, s, got.IntervalMicros())
		}
	}
}

func TestParseTimestamp(t *testing.T) {
	good := []string{
		"2009-01-04",
		"2009-01-04 09:30",
		"2009-01-04 09:30:15",
		"2009-01-04 09:30:15.123456",
		"2009-01-04T09:30:15Z",
	}
	for _, s := range good {
		if _, err := ParseTimestamp(s); err != nil {
			t.Errorf("ParseTimestamp(%q): %v", s, err)
		}
	}
	if _, err := ParseTimestamp("Jan 4 2009"); err == nil {
		t.Error("bad timestamp should error")
	}
}

func TestParseLiteral(t *testing.T) {
	if d, err := ParseLiteral("42", TypeInt); err != nil || d.Int() != 42 {
		t.Error("int literal")
	}
	if d, err := ParseLiteral("2.5", TypeFloat); err != nil || d.Float() != 2.5 {
		t.Error("float literal")
	}
	if d, err := ParseLiteral("x", TypeString); err != nil || d.Str() != "x" {
		t.Error("string literal")
	}
	if d, err := ParseLiteral("true", TypeBool); err != nil || !d.Bool() {
		t.Error("bool literal")
	}
	if _, err := ParseLiteral("x", TypeUnknown); err == nil {
		t.Error("unknown type should error")
	}
}
