package types

import (
	"errors"
	"fmt"
	"math"
)

// ErrDivisionByZero is returned for integer division or modulo by zero.
var ErrDivisionByZero = errors.New("division by zero")

// Add computes a + b with SQL numeric promotion and timestamp/interval
// arithmetic. NULL propagates.
func Add(a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TypeInt && b.typ == TypeInt:
		return NewInt(a.i + b.i), nil
	case a.typ.Numeric() && b.typ.Numeric():
		return NewFloat(a.Float() + b.Float()), nil
	case a.typ == TypeTimestamp && b.typ == TypeInterval:
		return NewTimestampMicros(a.i + b.i), nil
	case a.typ == TypeInterval && b.typ == TypeTimestamp:
		return NewTimestampMicros(a.i + b.i), nil
	case a.typ == TypeInterval && b.typ == TypeInterval:
		return NewIntervalMicros(a.i + b.i), nil
	case a.typ == TypeString && b.typ == TypeString:
		// '+' on strings is not SQL, but || maps here in the evaluator.
		return NewString(a.s + b.s), nil
	}
	return Null, typeErr("+", a, b)
}

// Sub computes a - b.
func Sub(a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TypeInt && b.typ == TypeInt:
		return NewInt(a.i - b.i), nil
	case a.typ.Numeric() && b.typ.Numeric():
		return NewFloat(a.Float() - b.Float()), nil
	case a.typ == TypeTimestamp && b.typ == TypeInterval:
		return NewTimestampMicros(a.i - b.i), nil
	case a.typ == TypeTimestamp && b.typ == TypeTimestamp:
		return NewIntervalMicros(a.i - b.i), nil
	case a.typ == TypeInterval && b.typ == TypeInterval:
		return NewIntervalMicros(a.i - b.i), nil
	}
	return Null, typeErr("-", a, b)
}

// Mul computes a * b.
func Mul(a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TypeInt && b.typ == TypeInt:
		return NewInt(a.i * b.i), nil
	case a.typ.Numeric() && b.typ.Numeric():
		return NewFloat(a.Float() * b.Float()), nil
	case a.typ == TypeInterval && b.typ == TypeInt:
		return NewIntervalMicros(a.i * b.i), nil
	case a.typ == TypeInt && b.typ == TypeInterval:
		return NewIntervalMicros(a.i * b.i), nil
	case a.typ == TypeInterval && b.typ == TypeFloat:
		return NewIntervalMicros(int64(float64(a.i) * b.f)), nil
	case a.typ == TypeFloat && b.typ == TypeInterval:
		return NewIntervalMicros(int64(a.f * float64(b.i))), nil
	}
	return Null, typeErr("*", a, b)
}

// Div computes a / b. Integer division truncates toward zero, matching
// Postgres.
func Div(a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TypeInt && b.typ == TypeInt:
		if b.i == 0 {
			return Null, ErrDivisionByZero
		}
		return NewInt(a.i / b.i), nil
	case a.typ.Numeric() && b.typ.Numeric():
		bf := b.Float()
		if bf == 0 {
			return Null, ErrDivisionByZero
		}
		return NewFloat(a.Float() / bf), nil
	case a.typ == TypeInterval && b.typ == TypeInt:
		if b.i == 0 {
			return Null, ErrDivisionByZero
		}
		return NewIntervalMicros(a.i / b.i), nil
	}
	return Null, typeErr("/", a, b)
}

// Mod computes a % b for integers.
func Mod(a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.typ == TypeInt && b.typ == TypeInt {
		if b.i == 0 {
			return Null, ErrDivisionByZero
		}
		return NewInt(a.i % b.i), nil
	}
	return Null, typeErr("%", a, b)
}

// Neg computes -a.
func Neg(a Datum) (Datum, error) {
	if a.IsNull() {
		return Null, nil
	}
	switch a.typ {
	case TypeInt:
		return NewInt(-a.i), nil
	case TypeFloat:
		return NewFloat(-a.f), nil
	case TypeInterval:
		return NewIntervalMicros(-a.i), nil
	}
	return Null, fmt.Errorf("types: cannot negate %s", a.typ)
}

// Cast converts d to type to, following Postgres-ish cast rules. Casting
// NULL yields NULL of any type.
func Cast(d Datum, to Type) (Datum, error) {
	if d.IsNull() {
		return Null, nil
	}
	if d.typ == to {
		return d, nil
	}
	switch to {
	case TypeBool:
		switch d.typ {
		case TypeInt:
			return NewBool(d.i != 0), nil
		case TypeString:
			return ParseBool(d.s)
		}
	case TypeInt:
		switch d.typ {
		case TypeBool:
			return NewInt(d.i), nil
		case TypeFloat:
			if math.IsNaN(d.f) || d.f > math.MaxInt64 || d.f < math.MinInt64 {
				return Null, fmt.Errorf("types: float %v out of bigint range", d.f)
			}
			return NewInt(int64(d.f)), nil
		case TypeString:
			v, err := parseIntStrict(d.s)
			if err != nil {
				return Null, err
			}
			return NewInt(v), nil
		case TypeTimestamp:
			// Microseconds since epoch; useful for bucketing in tests.
			return NewInt(d.i), nil
		case TypeInterval:
			return NewInt(d.i), nil
		}
	case TypeFloat:
		switch d.typ {
		case TypeInt:
			return NewFloat(float64(d.i)), nil
		case TypeString:
			v, err := parseFloatStrict(d.s)
			if err != nil {
				return Null, err
			}
			return NewFloat(v), nil
		}
	case TypeString:
		return NewString(d.String()), nil
	case TypeTimestamp:
		switch d.typ {
		case TypeString:
			return ParseTimestamp(d.s)
		case TypeInt:
			return NewTimestampMicros(d.i), nil
		}
	case TypeInterval:
		switch d.typ {
		case TypeString:
			return ParseInterval(d.s)
		case TypeInt:
			return NewIntervalMicros(d.i), nil
		}
	}
	return Null, fmt.Errorf("types: cannot cast %s to %s", d.typ, to)
}

func typeErr(op string, a, b Datum) error {
	return fmt.Errorf("types: operator %s undefined for %s and %s", op, a.typ, b.typ)
}
