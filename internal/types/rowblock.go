package types

// RowBlock carves fixed-width rows out of flat []Datum allocations, so
// producing n rows of width w costs O(1) allocations instead of n. Rows
// handed out are full-capacity subslices of the backing array: they stay
// valid forever (callers may retain them), but appending to one would
// panic-free spill into a fresh array rather than a neighbouring row.
type RowBlock struct {
	backing []Datum
	width   int
	chunk   int // rows per backing allocation when refilling
}

// NewRowBlock sizes a block for about n rows of the given width. More
// than n rows may be drawn; the block refills with fresh backing arrays
// as needed (earlier rows keep their storage).
func NewRowBlock(n, width int) RowBlock {
	if n < 1 {
		n = 1
	}
	return RowBlock{backing: make([]Datum, n*width), width: width, chunk: n}
}

// Row hands out the next zeroed row from the block.
func (b *RowBlock) Row() Row {
	if len(b.backing) < b.width {
		b.backing = make([]Datum, b.chunk*b.width)
	}
	r := Row(b.backing[:b.width:b.width])
	b.backing = b.backing[b.width:]
	return r
}
