package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"strings"
)

// Column describes one attribute of a relation or stream schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Column names are compared
// case-insensitively (SQL folds unquoted identifiers to lower case at parse
// time, so in practice names here are already lower-cased).
type Schema []Column

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a BIGINT, b VARCHAR)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Row is a tuple of datums positionally matching some schema.
type Row []Datum

// Clone returns a copy of the row. Datums are immutable, so a shallow copy
// of the slice suffices.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for the REPL and tests: "a|b|c".
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "|")
}

// RowsEqual reports whether two rows are datum-wise Equal.
func RowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// CompareRows orders rows lexicographically by Compare on each column.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

var hashSeed = maphash.MakeSeed()

// HashDatum folds a datum into h for hash joins and hash aggregation.
// Values that compare Equal hash equally: integral floats hash as their
// integer value so INT 3 and FLOAT 3.0 collide as required.
func HashDatum(h *maphash.Hash, d Datum) {
	switch d.typ {
	case TypeNull, TypeUnknown:
		h.WriteByte(0)
	case TypeBool:
		h.WriteByte(1)
		h.WriteByte(byte(d.i))
	case TypeInt:
		h.WriteByte(2)
		writeUint64(h, uint64(d.i))
	case TypeFloat:
		if i := int64(d.f); float64(i) == d.f {
			// Hash like the equal integer.
			h.WriteByte(2)
			writeUint64(h, uint64(i))
		} else {
			h.WriteByte(3)
			writeUint64(h, math.Float64bits(d.f))
		}
	case TypeString:
		h.WriteByte(4)
		h.WriteString(d.s)
	case TypeTimestamp:
		h.WriteByte(5)
		writeUint64(h, uint64(d.i))
	case TypeInterval:
		h.WriteByte(6)
		writeUint64(h, uint64(d.i))
	}
}

// HashRow returns a 64-bit hash of the row consistent with RowsEqual.
func HashRow(r Row) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	for _, d := range r {
		HashDatum(&h, d)
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// Key renders a row as a string map key consistent with RowsEqual; used for
// grouping where we need exact (not probabilistic) key identity.
func (r Row) Key() string {
	var b strings.Builder
	for _, d := range r {
		switch d.typ {
		case TypeNull, TypeUnknown:
			b.WriteByte(0)
		case TypeBool:
			b.WriteByte(1)
			b.WriteByte(byte(d.i))
		case TypeInt:
			writeKeyInt(&b, 2, uint64(d.i))
		case TypeFloat:
			if i := int64(d.f); float64(i) == d.f {
				writeKeyInt(&b, 2, uint64(i))
			} else {
				writeKeyInt(&b, 3, math.Float64bits(d.f))
			}
		case TypeString:
			b.WriteByte(4)
			// Length-prefix to keep keys unambiguous.
			writeKeyInt(&b, 4, uint64(len(d.s)))
			b.WriteString(d.s)
		case TypeTimestamp:
			writeKeyInt(&b, 5, uint64(d.i))
		case TypeInterval:
			writeKeyInt(&b, 6, uint64(d.i))
		}
	}
	return b.String()
}

func writeKeyInt(b *strings.Builder, tag byte, v uint64) {
	b.WriteByte(tag)
	for i := 0; i < 8; i++ {
		b.WriteByte(byte(v >> (8 * i)))
	}
}
