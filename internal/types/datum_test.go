package types

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null is not null")
	}
	if NewBool(true) != True || NewBool(false) != False {
		t.Fatal("bool constructors")
	}
	if NewInt(42).Int() != 42 {
		t.Fatal("int round trip")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Fatal("float round trip")
	}
	if NewString("abc").Str() != "abc" {
		t.Fatal("string round trip")
	}
	ts := time.Date(2009, 1, 4, 9, 30, 0, 0, time.UTC)
	if !NewTimestamp(ts).Time().Equal(ts) {
		t.Fatal("timestamp round trip")
	}
	if NewInterval(5*time.Minute).Duration() != 5*time.Minute {
		t.Fatal("interval round trip")
	}
	if NewInt(7).Float() != 7.0 {
		t.Fatal("int widens to float")
	}
}

func TestAccessorPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewString("x").Int()
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeBool: "BOOLEAN", TypeInt: "BIGINT", TypeFloat: "DOUBLE",
		TypeString: "VARCHAR", TypeTimestamp: "TIMESTAMP", TypeInterval: "INTERVAL",
		TypeNull: "NULL",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.0), NewInt(1), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{True, False, 1},
		{NewTimestampMicros(10), NewTimestampMicros(20), -1},
		{NewIntervalMicros(50), NewIntervalMicros(50), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN should order equal to itself")
	}
	if Compare(nan, NewFloat(math.Inf(1))) != 1 {
		t.Error("NaN should sort after +Inf")
	}
	if Compare(NewFloat(1), nan) != -1 {
		t.Error("1 should sort before NaN")
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compare(NewString("x"), NewInt(1))
}

func TestDatumString(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null, "NULL"},
		{True, "true"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewFloat(3), "3.0"},
		{NewString("hi"), "hi"},
		{NewTimestamp(time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)), "2009-01-04 00:00:00.000000"},
		{NewIntervalMicros(90_000_000), "1 minute 30 seconds"},
		{NewFloat(math.Inf(1)), "Infinity"},
		{NewFloat(math.NaN()), "NaN"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// randDatum generates a random datum for property tests. Only mutually
// comparable types within a class are generated per call site when needed.
func randDatum(r *rand.Rand) Datum {
	switch r.Intn(7) {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 0)
	case 2:
		return NewInt(r.Int63n(1000) - 500)
	case 3:
		return NewFloat(float64(r.Int63n(1000)-500) / 4)
	case 4:
		return NewString(randString(r))
	case 5:
		return NewTimestampMicros(r.Int63n(1 << 40))
	default:
		return NewIntervalMicros(r.Int63n(1<<30) - (1 << 29))
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// sameClass reports whether two datums can be compared.
func sameClass(a, b Datum) bool { return Comparable(a.Type(), b.Type()) }

func TestCompareIsTotalOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b, c := randDatum(r), randDatum(r), randDatum(r)
		if !sameClass(a, b) || !sameClass(b, c) || !sameClass(a, c) {
			continue
		}
		// Antisymmetry.
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		// Transitivity of <=.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %v, %v, %v", a, b, c)
		}
		// Reflexivity.
		if Compare(a, a) != 0 {
			t.Fatalf("reflexivity violated for %v", a)
		}
	}
}

func TestEqualImpliesEqualHashProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := randDatum(r), randDatum(r)
		if !sameClass(a, b) || !Equal(a, b) {
			continue
		}
		if HashRow(Row{a}) != HashRow(Row{b}) {
			t.Fatalf("equal datums hash differently: %v vs %v", a, b)
		}
		if (Row{a}).Key() != (Row{b}).Key() {
			t.Fatalf("equal datums key differently: %v vs %v", a, b)
		}
	}
	// The int/float collision case specifically.
	if HashRow(Row{NewInt(3)}) != HashRow(Row{NewFloat(3)}) {
		t.Fatal("int 3 and float 3.0 must hash equally")
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		n := r.Intn(6)
		row := make(Row, n)
		for j := range row {
			row[j] = randDatum(r)
		}
		buf := EncodeRow(nil, row)
		got, rest, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("trailing bytes after decode")
		}
		if !RowsEqual(row, got) {
			t.Fatalf("round trip mismatch: %v -> %v", row, got)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(i int64, fv float64, s string, b bool) bool {
		row := Row{NewInt(i), NewFloat(fv), NewString(s), NewBool(b), Null}
		got, _, err := DecodeRow(EncodeRow(nil, row))
		if err != nil {
			return false
		}
		if math.IsNaN(fv) {
			// NaN != NaN under Compare-free equality; check fields manually.
			return got[0].Int() == i && math.IsNaN(got[1].Float()) && got[2].Str() == s
		}
		return RowsEqual(row, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeDatum(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, _, err := DecodeDatum([]byte{byte(TypeString), 200}); err == nil {
		t.Error("truncated string should error")
	}
	if _, _, err := DecodeDatum([]byte{99}); err == nil {
		t.Error("unknown tag should error")
	}
	if _, _, err := DecodeRow([]byte{}); err == nil {
		t.Error("empty row buffer should error")
	}
}

func TestSchema(t *testing.T) {
	s := Schema{{"url", TypeString}, {"cnt", TypeInt}}
	if s.IndexOf("cnt") != 1 || s.IndexOf("nope") != -1 {
		t.Fatal("IndexOf")
	}
	if got := s.String(); got != "(url VARCHAR, cnt BIGINT)" {
		t.Fatalf("String() = %q", got)
	}
	if !reflect.DeepEqual(s.Names(), []string{"url", "cnt"}) {
		t.Fatal("Names")
	}
	c := s.Clone()
	c[0].Name = "x"
	if s[0].Name != "url" {
		t.Fatal("Clone aliases")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Fatal("Clone aliases")
	}
	if r.String() != "1|a" {
		t.Fatalf("Row.String() = %q", r.String())
	}
	if CompareRows(Row{NewInt(1)}, Row{NewInt(1), NewInt(2)}) != -1 {
		t.Fatal("shorter row should sort first on tie")
	}
	if CompareRows(Row{NewInt(2)}, Row{NewInt(1), NewInt(2)}) != 1 {
		t.Fatal("column comparison should dominate length")
	}
}
