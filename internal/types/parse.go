package types

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseBool parses the SQL spellings of boolean literals.
func ParseBool(s string) (Datum, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "t", "true", "yes", "on", "1":
		return True, nil
	case "f", "false", "no", "off", "0":
		return False, nil
	}
	return Null, fmt.Errorf("types: invalid boolean %q", s)
}

func parseIntStrict(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("types: invalid integer %q", s)
	}
	return v, nil
}

func parseFloatStrict(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("types: invalid float %q", s)
	}
	return v, nil
}

// timestampLayouts lists the accepted timestamp spellings, most specific
// first. All parse in UTC.
var timestampLayouts = []string{
	"2006-01-02 15:04:05.999999",
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	time.RFC3339Nano,
	time.RFC3339,
}

// ParseTimestamp parses a timestamp literal in one of the accepted layouts.
func ParseTimestamp(s string) (Datum, error) {
	s = strings.TrimSpace(s)
	for _, layout := range timestampLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return NewTimestamp(t), nil
		}
	}
	return Null, fmt.Errorf("types: invalid timestamp %q", s)
}

// intervalUnits maps unit spellings (singular and plural) to microseconds.
var intervalUnits = map[string]int64{
	"microsecond": 1,
	"us":          1,
	"millisecond": 1000,
	"ms":          1000,
	"second":      1_000_000,
	"sec":         1_000_000,
	"s":           1_000_000,
	"minute":      60_000_000,
	"min":         60_000_000,
	"m":           60_000_000,
	"hour":        3_600_000_000,
	"h":           3_600_000_000,
	"day":         86_400_000_000,
	"d":           86_400_000_000,
	"week":        7 * 86_400_000_000,
	"w":           7 * 86_400_000_000,
}

// ParseInterval parses interval literals of the form used in the paper's
// window clauses: "5 minutes", "1 week", "1 hour 30 minutes",
// "250 milliseconds". A leading '-' negates the whole interval.
func ParseInterval(s string) (Datum, error) {
	text := strings.TrimSpace(strings.ToLower(s))
	neg := false
	if strings.HasPrefix(text, "-") {
		neg = true
		text = strings.TrimSpace(text[1:])
	}
	fields := strings.Fields(text)
	if len(fields) == 0 || len(fields)%2 != 0 {
		return Null, fmt.Errorf("types: invalid interval %q", s)
	}
	var total int64
	for i := 0; i < len(fields); i += 2 {
		n, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Null, fmt.Errorf("types: invalid interval %q: bad number %q", s, fields[i])
		}
		unit := strings.TrimSuffix(fields[i+1], "s")
		// "us" and "ms" end in s but are not plurals.
		if fields[i+1] == "us" || fields[i+1] == "ms" || fields[i+1] == "s" {
			unit = fields[i+1]
		}
		us, ok := intervalUnits[unit]
		if !ok {
			return Null, fmt.Errorf("types: invalid interval %q: unknown unit %q", s, fields[i+1])
		}
		total += int64(n * float64(us))
	}
	if neg {
		total = -total
	}
	return NewIntervalMicros(total), nil
}

// FormatInterval renders a microsecond count in the same unit vocabulary
// ParseInterval accepts, choosing the largest exact unit.
func FormatInterval(us int64) string {
	if us == 0 {
		return "0 seconds"
	}
	neg := ""
	if us < 0 {
		neg = "-"
		us = -us
	}
	type unit struct {
		name string
		us   int64
	}
	units := []unit{
		{"week", 7 * 86_400_000_000},
		{"day", 86_400_000_000},
		{"hour", 3_600_000_000},
		{"minute", 60_000_000},
		{"second", 1_000_000},
		{"millisecond", 1000},
		{"microsecond", 1},
	}
	var parts []string
	for _, u := range units {
		if us >= u.us {
			n := us / u.us
			us -= n * u.us
			label := u.name
			if n != 1 {
				label += "s"
			}
			parts = append(parts, fmt.Sprintf("%d %s", n, label))
		}
	}
	return neg + strings.Join(parts, " ")
}

// ParseLiteral parses a string into the given type; used by loaders and the
// CSV-ish ingest path.
func ParseLiteral(s string, t Type) (Datum, error) {
	switch t {
	case TypeBool:
		return ParseBool(s)
	case TypeInt:
		v, err := parseIntStrict(s)
		if err != nil {
			return Null, err
		}
		return NewInt(v), nil
	case TypeFloat:
		v, err := parseFloatStrict(s)
		if err != nil {
			return Null, err
		}
		return NewFloat(v), nil
	case TypeString:
		return NewString(s), nil
	case TypeTimestamp:
		return ParseTimestamp(s)
	case TypeInterval:
		return ParseInterval(s)
	}
	return Null, fmt.Errorf("types: cannot parse literal of type %s", t)
}
