package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeDatum appends a self-describing binary encoding of d to buf. The
// encoding is used by the WAL and by the map/reduce baseline's spill files.
func EncodeDatum(buf []byte, d Datum) []byte {
	buf = append(buf, byte(d.typ))
	switch d.typ {
	case TypeNull, TypeUnknown:
	case TypeBool, TypeInt, TypeTimestamp, TypeInterval:
		buf = binary.AppendVarint(buf, d.i)
	case TypeFloat:
		buf = binary.AppendUvarint(buf, math.Float64bits(d.f))
	case TypeString:
		buf = binary.AppendUvarint(buf, uint64(len(d.s)))
		buf = append(buf, d.s...)
	}
	return buf
}

// DecodeDatum decodes one datum from buf, returning it and the remaining
// bytes.
func DecodeDatum(buf []byte) (Datum, []byte, error) {
	if len(buf) == 0 {
		return Null, nil, fmt.Errorf("types: decode: empty buffer")
	}
	t := Type(buf[0])
	buf = buf[1:]
	switch t {
	case TypeNull, TypeUnknown:
		return Null, buf, nil
	case TypeBool, TypeInt, TypeTimestamp, TypeInterval:
		v, n := binary.Varint(buf)
		if n <= 0 {
			return Null, nil, fmt.Errorf("types: decode: bad varint")
		}
		return Datum{typ: t, i: v}, buf[n:], nil
	case TypeFloat:
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return Null, nil, fmt.Errorf("types: decode: bad float")
		}
		return NewFloat(math.Float64frombits(v)), buf[n:], nil
	case TypeString:
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf[n:])) < l {
			return Null, nil, fmt.Errorf("types: decode: bad string length")
		}
		s := string(buf[n : n+int(l)])
		return NewString(s), buf[n+int(l):], nil
	}
	return Null, nil, fmt.Errorf("types: decode: unknown type tag %d", t)
}

// EncodeRow appends a length-prefixed encoding of the row to buf.
func EncodeRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, d := range r {
		buf = EncodeDatum(buf, d)
	}
	return buf
}

// DecodeRow decodes one row from buf, returning it and the remaining bytes.
func DecodeRow(buf []byte) (Row, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, fmt.Errorf("types: decode row: bad length")
	}
	buf = buf[k:]
	// Each datum occupies at least one byte, so a column count beyond the
	// remaining bytes is corrupt input; rejecting it here keeps the
	// allocation bounded by the payload size.
	if n > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("types: decode row: length exceeds payload")
	}
	row := make(Row, n)
	var err error
	for i := range row {
		row[i], buf, err = DecodeDatum(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, buf, nil
}
