package types

import "testing"

func TestRowBlock(t *testing.T) {
	b := NewRowBlock(2, 3)
	r1, r2 := b.Row(), b.Row()
	if len(r1) != 3 || len(r2) != 3 {
		t.Fatalf("row widths: %d, %d", len(r1), len(r2))
	}
	r1[0] = NewInt(1)
	// r3 forces a refill past the sized capacity; earlier rows must keep
	// their storage and values.
	r3 := b.Row()
	r3[0] = NewInt(3)
	if r1[0].Int() != 1 || !r2[0].IsNull() || r3[0].Int() != 3 {
		t.Fatalf("rows share or lost storage: %v %v %v", r1, r2, r3)
	}
	// Full-capacity subslices: appending to one row must not clobber its
	// neighbour in the same backing array.
	b2 := NewRowBlock(4, 2)
	a, c := b2.Row(), b2.Row()
	a = append(a, NewInt(99))
	_ = a
	if !c[0].IsNull() {
		t.Fatal("append to one row spilled into the next")
	}
}

func TestRowBlockZeroWidth(t *testing.T) {
	b := NewRowBlock(0, 0)
	for i := 0; i < 10; i++ {
		if r := b.Row(); len(r) != 0 {
			t.Fatal("zero-width row")
		}
	}
}
