package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"sync"
	"time"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// ops is the protocol command set; per-op latency histograms are
// pre-created so dispatch never takes the registry lock.
var ops = []string{"exec", "query", "append", "advance", "subscribe", "unsubscribe", "ping", "stats", "metrics", "trace", "replicate", "promote"}

// Server serves one engine over TCP.
type Server struct {
	eng *streamrel.Engine
	lis net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// Log receives structured connection errors; nil silences them.
	Log *slog.Logger

	// Replicate, when set, serves the "replicate" op: after the JSON
	// acknowledgement the raw connection is handed over and streams binary
	// replication frames until it fails (see internal/repl.Primary). The
	// daemon wires it to the engine's hub; a generic hook keeps this
	// package free of a repl dependency.
	Replicate func(conn net.Conn, fromLSN uint64, runID string) error
	// Promote, when set, serves the "promote" op (replica → primary).
	Promote func() error

	// Metric handles, registered in the engine's registry.
	connGauge *metrics.Gauge
	cmdHist   map[string]*metrics.Histogram
	cmdErrs   map[string]*metrics.Counter
}

// New creates a server for the engine; its metrics register in the
// engine's registry so one /metrics endpoint serves both.
func New(eng *streamrel.Engine) *Server {
	s := &Server{
		eng:     eng,
		conns:   make(map[net.Conn]struct{}),
		cmdHist: make(map[string]*metrics.Histogram),
		cmdErrs: make(map[string]*metrics.Counter),
	}
	reg := eng.Metrics()
	s.connGauge = reg.Gauge("streamrel_server_connections", "open client connections")
	for _, op := range ops {
		s.cmdHist[op] = reg.Histogram("streamrel_server_command_seconds",
			"latency of protocol commands, dispatch to response encode", nil,
			metrics.L("op", op))
		s.cmdErrs[op] = reg.Counter("streamrel_server_command_errors_total",
			"protocol commands that returned an error", metrics.L("op", op))
	}
	return s
}

// Listen binds to addr (e.g. "127.0.0.1:7475") and returns the bound
// address — useful with port 0.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	return lis.Addr().String(), nil
}

// Serve accepts connections until Close. Call after Listen; blocks.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting and closes every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.lis != nil {
		return s.lis.Close()
	}
	return nil
}

func (s *Server) logErr(msg string, err error) {
	if s.Log != nil {
		s.Log.Warn(msg, "error", err.Error())
	}
}

// session is one connection's state.
type session struct {
	srv    *Server
	conn   net.Conn
	wmu    sync.Mutex // serializes frame writes (responses vs CQ pushes)
	enc    *json.Encoder
	nextCQ int64
	cqs    map[int64]*streamrel.CQ
	done   chan struct{}
}

func (s *Server) handle(conn net.Conn) {
	sess := &session{
		srv:  s,
		conn: conn,
		enc:  json.NewEncoder(conn),
		cqs:  make(map[int64]*streamrel.CQ),
		done: make(chan struct{}),
	}
	s.connGauge.Add(1)
	defer func() {
		close(sess.done)
		for _, cq := range sess.cqs {
			cq.Close()
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connGauge.Add(-1)
	}()

	rd := bufio.NewReaderSize(conn, 1<<20)
	dec := json.NewDecoder(rd)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logErr("request decode failed", err)
			}
			return
		}
		if req.Op == "replicate" {
			s.serveReplicate(sess, &req)
			return
		}
		start := time.Now()
		resp := sess.dispatch(&req)
		if h := s.cmdHist[req.Op]; h != nil {
			h.ObserveSince(start)
		}
		if resp.Error != "" {
			s.cmdErrs[req.Op].Inc() // nil-safe for unknown ops
		}
		resp.ID = req.ID
		if err := sess.write(resp); err != nil {
			return
		}
	}
}

// serveReplicate acknowledges the request in JSON, then hands the raw
// connection to the replication hook, which streams binary frames for the
// connection's remaining lifetime. The session's read loop ends — a
// replica sends nothing after the replicate request.
func (s *Server) serveReplicate(sess *session, req *Request) {
	start := time.Now()
	if s.Replicate == nil {
		resp := fail(fmt.Errorf("server: replication is not enabled"))
		resp.ID = req.ID
		s.cmdErrs["replicate"].Inc()
		sess.write(resp)
		return
	}
	if err := sess.write(&Response{ID: req.ID, OK: true}); err != nil {
		return
	}
	err := s.Replicate(sess.conn, req.LSN, req.Run)
	if h := s.cmdHist["replicate"]; h != nil {
		h.ObserveSince(start)
	}
	if err != nil {
		s.cmdErrs["replicate"].Inc()
		s.logErr("replication stream ended", err)
	}
}

func (sess *session) write(resp *Response) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	return sess.enc.Encode(resp)
}

func fail(err error) *Response { return &Response{Error: err.Error()} }

func (sess *session) dispatch(req *Request) *Response {
	eng := sess.srv.eng
	args, err := DecodeRow(req.Args)
	if err != nil {
		return fail(err)
	}
	switch req.Op {
	case "exec":
		res, err := eng.ExecArgs(req.SQL, args...)
		if err != nil {
			return fail(err)
		}
		out := &Response{OK: true, Affected: res.RowsAffected}
		if res.Rows != nil {
			out.Columns = EncodeSchema(res.Rows.Columns)
			for _, r := range res.Rows.Data {
				out.Rows = append(out.Rows, EncodeRow(r))
			}
		}
		return out

	case "query":
		rows, err := eng.QueryArgs(req.SQL, args...)
		if err != nil {
			return fail(err)
		}
		out := &Response{OK: true, Columns: EncodeSchema(rows.Columns)}
		for _, r := range rows.Data {
			out.Rows = append(out.Rows, EncodeRow(r))
		}
		return out

	case "append":
		rows := make([]streamrel.Row, len(req.Rows))
		for i, wr := range req.Rows {
			r, err := DecodeRow(wr)
			if err != nil {
				return fail(err)
			}
			rows[i] = r
		}
		var traceID uint64
		if req.Trace != "" {
			// A bad ID only costs the span linkage, never the data.
			traceID, _ = trace.ParseID(req.Trace)
		}
		if err := eng.AppendTraced(traceID, req.Stream, rows...); err != nil {
			return fail(err)
		}
		return &Response{OK: true, Affected: len(rows)}

	case "advance":
		if err := eng.AdvanceTime(req.Stream, time.UnixMicro(req.TS).UTC()); err != nil {
			return fail(err)
		}
		return &Response{OK: true}

	case "subscribe":
		cq, err := eng.SubscribeArgs(req.SQL, args...)
		if err != nil {
			return fail(err)
		}
		sess.nextCQ++
		handle := sess.nextCQ
		sess.cqs[handle] = cq
		// Pump batches to the client until the CQ or connection closes.
		go func() {
			for {
				b, ok := cq.Next()
				if !ok {
					return
				}
				frame := &Response{Batch: true, CQ: handle, Close: b.Close.UnixMicro()}
				for _, r := range b.Rows {
					frame.Rows = append(frame.Rows, EncodeRow(r))
				}
				select {
				case <-sess.done:
					return
				default:
				}
				if err := sess.write(frame); err != nil {
					return
				}
			}
		}()
		return &Response{OK: true, CQ: handle, Columns: EncodeSchema(cq.Columns)}

	case "unsubscribe":
		cq, ok := sess.cqs[req.CQ]
		if !ok {
			return fail(fmt.Errorf("server: unknown cq %d", req.CQ))
		}
		cq.Close()
		delete(sess.cqs, req.CQ)
		return &Response{OK: true}

	case "ping":
		return &Response{OK: true}

	case "promote":
		if sess.srv.Promote == nil {
			return fail(fmt.Errorf("server: this server is not a replica"))
		}
		if err := sess.srv.Promote(); err != nil {
			return fail(err)
		}
		return &Response{OK: true}

	case "stats":
		return sess.srv.statsResponse()

	case "metrics":
		return &Response{OK: true, Samples: EncodeSamples(eng.Metrics().Gather())}

	case "trace":
		spans := eng.Traces()
		out := &Response{OK: true, Spans: make([]WireSpan, len(spans))}
		for i, sp := range spans {
			out.Spans[i] = WireSpan{
				Trace:   trace.FormatID(sp.Trace),
				Stage:   string(sp.Stage),
				Stream:  sp.Stream,
				Pipe:    sp.Pipe,
				StartUS: sp.Start,
				DurNS:   sp.Dur,
				Rows:    sp.Rows,
				Slow:    sp.Slow,
				Mode:    sp.Mode,
			}
		}
		return out
	}
	return fail(fmt.Errorf("server: unknown op %q", req.Op))
}

// statsResponse flattens the engine's metrics registry into
// (metric, value) rows: counters and gauges become one row each;
// histograms become _count, _sum, _p50, _p95 and _p99 rows.
func (s *Server) statsResponse() *Response {
	samples := s.eng.Metrics().Gather()
	schema := types.Schema{
		{Name: "metric", Type: types.TypeString},
		{Name: "value", Type: types.TypeFloat},
	}
	out := &Response{OK: true, Columns: EncodeSchema(schema)}
	add := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		out.Rows = append(out.Rows, EncodeRow(types.Row{types.NewString(name), types.NewFloat(v)}))
	}
	for _, smp := range samples {
		id := smp.ID()
		if smp.Kind == metrics.KindHistogram {
			add(id+"_count", float64(smp.Count))
			add(id+"_sum", smp.Sum)
			for _, q := range []struct {
				tag string
				q   float64
			}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
				add(id+q.tag, smp.Quantile(q.q))
			}
			continue
		}
		add(id, smp.Value)
	}
	return out
}
