package server

import (
	"math"
	"sort"

	"streamrel/internal/metrics"
)

// EncodeSamples converts gathered registry samples to their wire shape.
// Non-finite counter/gauge values are dropped (JSON cannot carry them);
// the implicit +Inf histogram bucket is elided (its count equals Count).
func EncodeSamples(samples []*metrics.Sample) []WireSample {
	out := make([]WireSample, 0, len(samples))
	for _, s := range samples {
		w := WireSample{Name: s.Name, Kind: s.Kind.String(), Help: s.Help}
		if len(s.Labels) > 0 {
			w.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				w.Labels[l.Key] = l.Value
			}
		}
		if s.Kind == metrics.KindHistogram {
			w.Count, w.Sum = s.Count, s.Sum
			if math.IsNaN(w.Sum) || math.IsInf(w.Sum, 0) {
				w.Sum = 0
			}
			for _, b := range s.Buckets {
				if math.IsInf(b.UpperBound, 1) {
					continue
				}
				w.Buckets = append(w.Buckets, WireBucket{LE: b.UpperBound, N: b.Count})
			}
		} else {
			if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
				continue
			}
			w.Value = s.Value
		}
		out = append(out, w)
	}
	return out
}

// DecodeSamples reverses EncodeSamples, restoring the +Inf bucket.
func DecodeSamples(wire []WireSample) []*metrics.Sample {
	out := make([]*metrics.Sample, 0, len(wire))
	for _, w := range wire {
		s := &metrics.Sample{Name: w.Name, Kind: parseKind(w.Kind), Help: w.Help}
		for k, v := range w.Labels {
			s.Labels = append(s.Labels, metrics.Label{Key: k, Value: v})
		}
		sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Key < s.Labels[j].Key })
		if s.Kind == metrics.KindHistogram {
			s.Count, s.Sum = w.Count, w.Sum
			for _, b := range w.Buckets {
				s.Buckets = append(s.Buckets, metrics.Bucket{UpperBound: b.LE, Count: b.N})
			}
			s.Buckets = append(s.Buckets, metrics.Bucket{UpperBound: math.Inf(1), Count: w.Count})
		} else {
			s.Value = w.Value
		}
		out = append(out, s)
	}
	return out
}

func parseKind(k string) metrics.Kind {
	switch k {
	case "counter":
		return metrics.KindCounter
	case "histogram":
		return metrics.KindHistogram
	default:
		return metrics.KindGauge
	}
}
