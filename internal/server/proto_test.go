package server

import (
	"testing"

	"streamrel/internal/types"
)

func TestWireValueEncoding(t *testing.T) {
	cases := []types.Datum{
		types.Null, types.True, types.NewInt(-5), types.NewFloat(2.5),
		types.NewString("x"), types.NewTimestampMicros(123), types.NewIntervalMicros(-60),
	}
	for _, d := range cases {
		got, err := DecodeValue(EncodeValue(d))
		if err != nil {
			t.Fatal(err)
		}
		if got.IsNull() != d.IsNull() || (!d.IsNull() && types.Compare(got, d) != 0) {
			t.Fatalf("round trip %v -> %v", d, got)
		}
		if !d.IsNull() && got.Type() != d.Type() {
			t.Fatalf("type changed: %v -> %v", d.Type(), got.Type())
		}
	}
	// Ambiguous values rejected.
	i, f := int64(1), 2.5
	if _, err := DecodeValue(WireValue{I: &i, F: &f}); err == nil {
		t.Fatal("ambiguous wire value accepted")
	}
}
