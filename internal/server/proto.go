// Package server exposes a streamrel engine over TCP with a
// newline-delimited JSON protocol. One request, one response — except
// subscriptions, whose window batches are pushed asynchronously, which is
// the natural wire shape for continuous queries: the paper's CQs "produce
// answers incrementally and run until they are explicitly terminated".
//
// Frame format (one JSON object per line):
//
//	→ {"id":1,"op":"exec","sql":"CREATE TABLE t (a bigint)"}
//	← {"id":1,"ok":true}
//	→ {"id":2,"op":"query","sql":"SELECT * FROM t"}
//	← {"id":2,"ok":true,"columns":[{"name":"a","type":"BIGINT"}],"rows":[[{"i":1}]]}
//	→ {"id":3,"op":"subscribe","sql":"SELECT count(*) FROM s <ADVANCE '1 minute'>"}
//	← {"id":3,"ok":true,"cq":7,"columns":[…]}
//	← {"cq":7,"close":61000000,"rows":[[{"i":42}]]}        (async, repeated)
//	→ {"id":4,"op":"unsubscribe","cq":7}
//	→ {"id":5,"op":"append","stream":"s","rows":[[…],[…]]}
//	→ {"id":6,"op":"advance","stream":"s","ts":61000000}
//
// Values are tagged JSON objects so types round-trip exactly:
// null, {"b":bool}, {"i":int64}, {"f":float64}, {"s":string},
// {"ts":micros}, {"iv":micros}.
package server

import (
	"encoding/json"
	"fmt"

	"streamrel/internal/types"
)

// Request is one client frame.
type Request struct {
	ID     int64         `json:"id"`
	Op     string        `json:"op"`
	SQL    string        `json:"sql,omitempty"`
	Stream string        `json:"stream,omitempty"`
	Rows   [][]WireValue `json:"rows,omitempty"`
	TS     int64         `json:"ts,omitempty"`
	CQ     int64         `json:"cq,omitempty"`
	// Args bind $1, $2, … placeholders in SQL.
	Args []WireValue `json:"args,omitempty"`
	// LSN and Run identify a replica's resume point for the "replicate"
	// op: the last applied LSN under the primary run ID Run. After the
	// server acknowledges, the connection switches to binary replication
	// frames (see internal/repl).
	LSN uint64 `json:"lsn,omitempty"`
	Run string `json:"run,omitempty"`
	// Trace carries a sampled trace ID (16-hex, see internal/trace)
	// across a router hop so shard-side spans join the router's trace.
	Trace string `json:"trace,omitempty"`
}

// Response is one server frame. Async CQ batches have ID 0 and CQ set.
type Response struct {
	ID      int64         `json:"id,omitempty"`
	OK      bool          `json:"ok,omitempty"`
	Error   string        `json:"error,omitempty"`
	Columns []WireColumn  `json:"columns,omitempty"`
	Rows    [][]WireValue `json:"rows,omitempty"`
	// Affected is the DML row count.
	Affected int `json:"affected,omitempty"`
	// CQ is the subscription handle (on subscribe responses and batches).
	CQ int64 `json:"cq,omitempty"`
	// Close is the window boundary of an async batch, micros since epoch.
	Close int64 `json:"close,omitempty"`
	// Batch marks asynchronous CQ result frames.
	Batch bool `json:"batch,omitempty"`
	// Spans answers the "trace" op: the engine's completed trace spans,
	// oldest first.
	Spans []WireSpan `json:"spans,omitempty"`
	// Samples answers the "metrics" op: the node's full metrics registry
	// as structured samples (histograms keep their buckets), the shape a
	// federating router re-labels and merges.
	Samples []WireSample `json:"samples,omitempty"`
	// Partial marks a scatter-gathered result that is missing the
	// contribution of one or more downed shards (router responses only).
	Partial bool `json:"partial,omitempty"`
}

// WireSpan is one completed trace span on the wire; field names match the
// JSON served at /debug/traces. The trace ID is hex so it survives JSON
// consumers that parse integers as doubles.
type WireSpan struct {
	Trace   string `json:"trace"`
	Stage   string `json:"stage"`
	Stream  string `json:"stream,omitempty"`
	Pipe    int64  `json:"pipe,omitempty"`
	StartUS int64  `json:"start_us"`
	DurNS   int64  `json:"dur_ns"`
	Rows    int    `json:"rows,omitempty"`
	Slow    bool   `json:"slow,omitempty"`
	Mode    string `json:"mode,omitempty"`
}

// WireSample is one metrics series on the wire (the "metrics" op): a
// structured counterpart of one Prometheus exposition family member, rich
// enough for a router to merge per-shard scrapes without text parsing.
type WireSample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Help   string            `json:"help,omitempty"`
	// Counter / gauge value.
	Value float64 `json:"value,omitempty"`
	// Histogram fields; buckets are cumulative. The +Inf bucket is
	// implicit (its count equals Count) — JSON cannot carry +Inf.
	Count   int64        `json:"count,omitempty"`
	Sum     float64      `json:"sum,omitempty"`
	Buckets []WireBucket `json:"buckets,omitempty"`
}

// WireBucket is one cumulative histogram bucket (finite bounds only).
type WireBucket struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

// WireColumn is a schema column on the wire.
type WireColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// WireValue is one SQL value in tagged-JSON form.
type WireValue struct {
	B  *bool    `json:"b,omitempty"`
	I  *int64   `json:"i,omitempty"`
	F  *float64 `json:"f,omitempty"`
	S  *string  `json:"s,omitempty"`
	TS *int64   `json:"ts,omitempty"`
	IV *int64   `json:"iv,omitempty"`
}

// MarshalJSON renders NULL as JSON null.
func (w WireValue) MarshalJSON() ([]byte, error) {
	type alias WireValue
	if w.B == nil && w.I == nil && w.F == nil && w.S == nil && w.TS == nil && w.IV == nil {
		return []byte("null"), nil
	}
	return json.Marshal(alias(w))
}

// UnmarshalJSON accepts JSON null for NULL.
func (w *WireValue) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*w = WireValue{}
		return nil
	}
	type alias WireValue
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*w = WireValue(a)
	return nil
}

// EncodeValue converts a datum to its wire form.
func EncodeValue(d types.Datum) WireValue {
	switch d.Type() {
	case types.TypeBool:
		v := d.Bool()
		return WireValue{B: &v}
	case types.TypeInt:
		v := d.Int()
		return WireValue{I: &v}
	case types.TypeFloat:
		v := d.Float()
		return WireValue{F: &v}
	case types.TypeString:
		v := d.Str()
		return WireValue{S: &v}
	case types.TypeTimestamp:
		v := d.TimestampMicros()
		return WireValue{TS: &v}
	case types.TypeInterval:
		v := d.IntervalMicros()
		return WireValue{IV: &v}
	default:
		return WireValue{}
	}
}

// DecodeValue converts a wire value back to a datum.
func DecodeValue(w WireValue) (types.Datum, error) {
	set := 0
	var out types.Datum = types.Null
	if w.B != nil {
		set++
		out = types.NewBool(*w.B)
	}
	if w.I != nil {
		set++
		out = types.NewInt(*w.I)
	}
	if w.F != nil {
		set++
		out = types.NewFloat(*w.F)
	}
	if w.S != nil {
		set++
		out = types.NewString(*w.S)
	}
	if w.TS != nil {
		set++
		out = types.NewTimestampMicros(*w.TS)
	}
	if w.IV != nil {
		set++
		out = types.NewIntervalMicros(*w.IV)
	}
	if set > 1 {
		return types.Null, fmt.Errorf("server: ambiguous wire value")
	}
	return out, nil
}

// EncodeRow converts a row to wire form.
func EncodeRow(r types.Row) []WireValue {
	out := make([]WireValue, len(r))
	for i, d := range r {
		out[i] = EncodeValue(d)
	}
	return out
}

// DecodeRow converts a wire row back to datums.
func DecodeRow(ws []WireValue) (types.Row, error) {
	out := make(types.Row, len(ws))
	for i, w := range ws {
		d, err := DecodeValue(w)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// EncodeSchema converts a schema to wire form.
func EncodeSchema(s types.Schema) []WireColumn {
	out := make([]WireColumn, len(s))
	for i, c := range s {
		out[i] = WireColumn{Name: c.Name, Type: c.Type.String()}
	}
	return out
}
