package txn

import "testing"

func TestBeginCommitVisibility(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if m.SnapshotNow().VisibleVersion(tx.ID, 0) {
		t.Fatal("in-progress txn visible to fresh snapshot")
	}
	if !tx.Snap.VisibleVersion(tx.ID, 0) {
		t.Fatal("txn does not see its own writes")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !m.SnapshotNow().VisibleVersion(tx.ID, 0) {
		t.Fatal("committed txn invisible")
	}
}

func TestSnapshotExcludesConcurrent(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	snap := m.SnapshotNow() // taken while tx in flight
	tx.Commit()
	if snap.VisibleVersion(tx.ID, 0) {
		t.Fatal("snapshot sees txn that was in flight when it was taken")
	}
	if snap.VisibleVersion(m.Begin().ID, 0) {
		t.Fatal("snapshot sees future txn")
	}
}

func TestAbortInvisible(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Abort()
	if m.SnapshotNow().VisibleVersion(tx.ID, 0) {
		t.Fatal("aborted txn visible")
	}
}

func TestDoubleFinishErrors(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit should error")
	}
	if err := tx.Abort(); err == nil {
		t.Fatal("abort after commit should error")
	}
}

func TestDeletedVersionVisibility(t *testing.T) {
	m := NewManager()
	ins := m.Begin()
	ins.Commit()
	preDelete := m.SnapshotNow()
	del := m.Begin()
	// While delete in flight, everyone still sees the row.
	if !m.SnapshotNow().VisibleVersion(ins.ID, del.ID) {
		t.Fatal("row hidden by uncommitted delete")
	}
	del.Commit()
	if m.SnapshotNow().VisibleVersion(ins.ID, del.ID) {
		t.Fatal("row visible after committed delete")
	}
	if !preDelete.VisibleVersion(ins.ID, del.ID) {
		t.Fatal("pre-delete snapshot must keep the row")
	}
}

func TestBootstrapAlwaysVisible(t *testing.T) {
	m := NewManager()
	if !m.SnapshotNow().VisibleVersion(Bootstrap, 0) {
		t.Fatal("bootstrap rows invisible")
	}
	if m.SnapshotNow().VisibleVersion(0, 0) {
		t.Fatal("xmin 0 should never be visible")
	}
}
