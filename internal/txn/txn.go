// Package txn implements transaction identity, MVCC snapshots, and the
// visibility rules shared by snapshot queries and continuous queries.
//
// The paper (§4) observes that "the isolation mechanisms of some RDBMSs,
// such as multi-version concurrency control, can be extended to provide
// continuous isolation semantics": a CQ takes a fresh snapshot at each
// window boundary ("window consistency"), so table updates become visible
// to continuous processing only between windows. This package provides
// exactly that primitive: cheap snapshots over a shared status table.
package txn

import (
	"fmt"
	"sync"
)

// ID identifies a transaction. IDs are allocated monotonically; ID 0 is
// reserved as "invalid" and ID 1 is the bootstrap transaction that owns
// rows created by recovery and bulk loads.
type ID uint64

// Bootstrap is the always-committed transaction that owns recovered and
// system-created rows.
const Bootstrap ID = 1

// Status is the lifecycle state of a transaction.
type Status uint8

// Transaction states.
const (
	StatusInProgress Status = iota
	StatusCommitted
	StatusAborted
)

// Manager allocates transaction IDs and tracks commit status. Committed
// transactions are forgotten immediately (an ID below the allocation
// horizon that is neither in progress nor aborted is committed), so state
// is bounded by concurrent transactions plus the aborted set — Begin stays
// O(concurrent), not O(history).
type Manager struct {
	mu         sync.RWMutex
	next       ID
	inProgress map[ID]struct{}
	aborted    map[ID]struct{}
}

// NewManager returns a manager with the bootstrap transaction committed.
func NewManager() *Manager {
	return &Manager{
		next:       Bootstrap + 1,
		inProgress: make(map[ID]struct{}),
		aborted:    make(map[ID]struct{}),
	}
}

// Begin starts a new transaction and returns it with a fresh snapshot.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.next
	m.next++
	m.inProgress[id] = struct{}{}
	// Snapshot.sees treats a nil map as empty, so skip the allocation when
	// this is the only transaction in flight — the common case on the CQ
	// hot path.
	var inFlight map[ID]struct{}
	if len(m.inProgress) > 1 {
		inFlight = make(map[ID]struct{}, len(m.inProgress)-1)
		for x := range m.inProgress {
			if x != id {
				inFlight[x] = struct{}{}
			}
		}
	}
	aborted := m.copyAbortedLocked()
	m.mu.Unlock()
	return &Txn{
		ID:  id,
		mgr: m,
		Snap: Snapshot{
			XMax:     id,
			InFlight: inFlight,
			aborted:  aborted,
			self:     id,
		},
	}
}

// copyAbortedLocked snapshots the aborted set (callers hold m.mu). The set
// is empty in the common case, so this is cheap; copying it makes
// Snapshot.sees lock-free.
func (m *Manager) copyAbortedLocked() map[ID]struct{} {
	if len(m.aborted) == 0 {
		return nil
	}
	out := make(map[ID]struct{}, len(m.aborted))
	for x := range m.aborted {
		out[x] = struct{}{}
	}
	return out
}

// SnapshotNow returns a read-only snapshot as of now, without allocating a
// transaction ID. Continuous queries take one of these at each window
// close; pure SELECTs use them too.
func (m *Manager) SnapshotNow() Snapshot {
	m.mu.RLock()
	// Every window close takes a snapshot; with no writers in flight (the
	// steady state for pure streaming workloads) it is just two word reads.
	var inFlight map[ID]struct{}
	if len(m.inProgress) > 0 {
		inFlight = make(map[ID]struct{}, len(m.inProgress))
		for x := range m.inProgress {
			inFlight[x] = struct{}{}
		}
	}
	xmax := m.next
	aborted := m.copyAbortedLocked()
	m.mu.RUnlock()
	return Snapshot{XMax: xmax, InFlight: inFlight, aborted: aborted}
}

func (m *Manager) setStatus(id ID, s Status) {
	m.mu.Lock()
	delete(m.inProgress, id)
	if s == StatusAborted {
		m.aborted[id] = struct{}{}
	}
	m.mu.Unlock()
}

// Txn is an in-progress transaction.
type Txn struct {
	ID   ID
	Snap Snapshot
	mgr  *Manager
	done bool
}

// Commit makes the transaction's effects visible to later snapshots.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("txn: %d already finished", t.ID)
	}
	t.done = true
	t.mgr.setStatus(t.ID, StatusCommitted)
	return nil
}

// Abort discards the transaction's effects.
func (t *Txn) Abort() error {
	if t.done {
		return fmt.Errorf("txn: %d already finished", t.ID)
	}
	t.done = true
	t.mgr.setStatus(t.ID, StatusAborted)
	return nil
}

// Snapshot is a point-in-time visibility horizon. It is entirely
// self-contained: visibility checks touch no shared state, so scans never
// contend with writers.
type Snapshot struct {
	XMax     ID // txns with ID >= XMax started after the snapshot
	InFlight map[ID]struct{}
	aborted  map[ID]struct{} // aborted as of snapshot time
	self     ID              // the owning txn, if any: its own writes are visible
}

// sees reports whether a transaction's effects are visible.
//
// A txn that aborts after this snapshot was taken is necessarily in
// InFlight (it was in progress at snapshot time), so the local aborted
// copy is complete for every ID this snapshot can otherwise see.
func (s Snapshot) sees(id ID) bool {
	if id == 0 {
		return false
	}
	if id == s.self {
		return true
	}
	if id >= s.XMax {
		return false
	}
	if _, ok := s.InFlight[id]; ok {
		return false
	}
	if _, ok := s.aborted[id]; ok {
		return false
	}
	return true
}

// VisibleVersion applies the MVCC rule to a row version stamped with the
// creating (xmin) and deleting (xmax) transactions: the version is visible
// iff its creation is visible and its deletion is not.
func (s Snapshot) VisibleVersion(xmin, xmax ID) bool {
	if !s.sees(xmin) {
		return false
	}
	if xmax == 0 {
		return true
	}
	return !s.sees(xmax)
}
