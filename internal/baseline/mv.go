package baseline

// PeriodicMV models the traditional materialized-view maintenance policy
// the paper contrasts with Active Tables (§5): the view is recomputed in
// batch on a timer, so between refreshes it serves stale answers, and each
// refresh pays the full recomputation cost regardless of how little
// changed.
//
// The type is driven by *stream time* (microseconds), not wall-clock, so
// experiments are deterministic: call Observe as event time advances.
type PeriodicMV struct {
	// Refresh recomputes the view (typically TRUNCATE + INSERT…SELECT over
	// the raw table).
	Refresh func() error
	// Period is the refresh interval in microseconds of stream time.
	Period int64

	lastRefresh int64
	started     bool
	refreshes   int
}

// Observe advances stream time; when a full period has elapsed the view
// refreshes. It returns whether a refresh ran.
func (mv *PeriodicMV) Observe(now int64) (bool, error) {
	if !mv.started {
		mv.started = true
		mv.lastRefresh = now
		return false, nil
	}
	if now-mv.lastRefresh < mv.Period {
		return false, nil
	}
	if err := mv.Refresh(); err != nil {
		return false, err
	}
	// Align to period boundaries so refresh cadence is stable even when
	// observations are sparse.
	mv.lastRefresh += (now - mv.lastRefresh) / mv.Period * mv.Period
	mv.refreshes++
	return true, nil
}

// Staleness returns how far behind the view's contents are at stream time
// now: the time since the data captured by the last refresh.
func (mv *PeriodicMV) Staleness(now int64) int64 {
	if !mv.started {
		return 0
	}
	return now - mv.lastRefresh
}

// Refreshes returns how many refreshes have run.
func (mv *PeriodicMV) Refreshes() int { return mv.refreshes }
