// Package baseline implements the alternative architectures the paper
// argues against, so the experiments can compare like with like:
//
//   - the store-first-query-later pipeline is the engine itself used in
//     batch mode (bulk load, then snapshot queries) — no extra code needed;
//   - PeriodicMV is a periodically refreshed materialized view (§5);
//   - MapReduce is an in-process map/shuffle/reduce job runner over
//     serialized event files, reproducing the batch-paradigm cost
//     structure of Hadoop-style processing (§1.3, §5): every job rescans
//     its full input from disk and materializes intermediate results.
package baseline

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"streamrel/internal/types"
)

// MapFunc emits zero or more (key, value) pairs for an input row.
type MapFunc func(row types.Row, emit func(key string, value types.Row))

// ReduceFunc folds all values for one key into output rows.
type ReduceFunc func(key string, values []types.Row, emit func(row types.Row))

// MapReduce runs jobs over row files in a working directory.
type MapReduce struct {
	Dir        string
	Partitions int // shuffle partitions (default 4)
}

// WriteInput serializes rows as the named input file (the "HDFS" of this
// simulation).
func (mr *MapReduce) WriteInput(name string, rows []types.Row) error {
	return writeRowFile(filepath.Join(mr.Dir, name), rows)
}

// AppendInput appends rows to the named input file.
func (mr *MapReduce) AppendInput(name string, rows []types.Row) error {
	f, err := os.OpenFile(filepath.Join(mr.Dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, r := range rows {
		if err := writeRow(w, r); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Run executes one full batch job: scan the input file, map, shuffle into
// partition files on disk, then reduce each partition. The disk round-trip
// between phases is the point: it models the inherent materialization cost
// of the batch paradigm.
func (mr *MapReduce) Run(input string, m MapFunc, r ReduceFunc) ([]types.Row, error) {
	parts := mr.Partitions
	if parts <= 0 {
		parts = 4
	}
	// Map phase: stream the input, spill (key, value) pairs per partition.
	partFiles := make([]*os.File, parts)
	partWriters := make([]*bufio.Writer, parts)
	for i := range partFiles {
		f, err := os.CreateTemp(mr.Dir, "shuffle-*.part")
		if err != nil {
			return nil, err
		}
		defer os.Remove(f.Name())
		defer f.Close()
		partFiles[i] = f
		partWriters[i] = bufio.NewWriter(f)
	}
	var mapErr error
	emit := func(key string, value types.Row) {
		p := int(hashString(key) % uint64(parts))
		if err := writeKV(partWriters[p], key, value); err != nil && mapErr == nil {
			mapErr = err
		}
	}
	err := scanRowFile(filepath.Join(mr.Dir, input), func(row types.Row) error {
		m(row, emit)
		return mapErr
	})
	if err != nil {
		return nil, err
	}
	for _, w := range partWriters {
		if err := w.Flush(); err != nil {
			return nil, err
		}
	}

	// Reduce phase: read each partition back, group by key, reduce.
	var out []types.Row
	for _, f := range partFiles {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		groups := make(map[string][]types.Row)
		rd := bufio.NewReader(f)
		for {
			key, value, err := readKV(rd)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			groups[key] = append(groups[key], value)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r(k, groups[k], func(row types.Row) { out = append(out, row) })
		}
	}
	return out, nil
}

// InputSize returns the input file's size in bytes.
func (mr *MapReduce) InputSize(name string) int64 {
	info, err := os.Stat(filepath.Join(mr.Dir, name))
	if err != nil {
		return 0
	}
	return info.Size()
}

// ------------------------------------------------------------ row files

func writeRowFile(path string, rows []types.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, r := range rows {
		if err := writeRow(w, r); err != nil {
			return err
		}
	}
	return w.Flush()
}

func writeRow(w *bufio.Writer, r types.Row) error {
	buf := types.EncodeRow(nil, r)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

func scanRowFile(path string, fn func(types.Row) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := bufio.NewReader(f)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(rd, buf); err != nil {
			return fmt.Errorf("baseline: truncated row file %s: %w", path, err)
		}
		row, _, err := types.DecodeRow(buf)
		if err != nil {
			return err
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

func writeKV(w *bufio.Writer, key string, value types.Row) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(key)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.WriteString(key); err != nil {
		return err
	}
	return writeRow(w, value)
}

func readKV(rd *bufio.Reader) (string, types.Row, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return "", nil, err
	}
	key := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(rd, key); err != nil {
		return "", nil, err
	}
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return "", nil, err
	}
	buf := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(rd, buf); err != nil {
		return "", nil, err
	}
	row, _, err := types.DecodeRow(buf)
	return string(key), row, err
}

func hashString(s string) uint64 {
	// FNV-1a.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
