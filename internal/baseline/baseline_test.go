package baseline

import (
	"fmt"
	"sort"
	"testing"

	"streamrel/internal/types"
)

func TestMapReduceWordCountStyle(t *testing.T) {
	mr := &MapReduce{Dir: t.TempDir(), Partitions: 3}
	var rows []types.Row
	urls := []string{"/a", "/b", "/a", "/c", "/a", "/b"}
	for _, u := range urls {
		rows = append(rows, types.Row{types.NewString(u), types.NewInt(1)})
	}
	if err := mr.WriteInput("events", rows); err != nil {
		t.Fatal(err)
	}
	out, err := mr.Run("events",
		func(row types.Row, emit func(string, types.Row)) {
			emit(row[0].Str(), types.Row{types.NewInt(1)})
		},
		func(key string, values []types.Row, emit func(types.Row)) {
			var n int64
			for _, v := range values {
				n += v[0].Int()
			}
			emit(types.Row{types.NewString(key), types.NewInt(n)})
		})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range out {
		got[r[0].Str()] = r[1].Int()
	}
	want := map[string]int64{"/a": 3, "/b": 2, "/c": 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	if mr.InputSize("events") == 0 {
		t.Fatal("input size")
	}
}

func TestMapReduceAppendAndRescan(t *testing.T) {
	mr := &MapReduce{Dir: t.TempDir()}
	mk := func(n int) []types.Row {
		rows := make([]types.Row, n)
		for i := range rows {
			rows[i] = types.Row{types.NewString(fmt.Sprintf("k%d", i%4)), types.NewInt(1)}
		}
		return rows
	}
	if err := mr.WriteInput("in", mk(10)); err != nil {
		t.Fatal(err)
	}
	if err := mr.AppendInput("in", mk(10)); err != nil {
		t.Fatal(err)
	}
	out, err := mr.Run("in",
		func(row types.Row, emit func(string, types.Row)) { emit("all", row) },
		func(key string, values []types.Row, emit func(types.Row)) {
			emit(types.Row{types.NewInt(int64(len(values)))})
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0].Int() != 20 {
		t.Fatalf("rescan saw %v", out)
	}
}

func TestMapReduceDeterministicOrder(t *testing.T) {
	mr := &MapReduce{Dir: t.TempDir(), Partitions: 1}
	var rows []types.Row
	for i := 0; i < 20; i++ {
		rows = append(rows, types.Row{types.NewString(fmt.Sprintf("k%02d", 19-i))})
	}
	mr.WriteInput("in", rows)
	out, err := mr.Run("in",
		func(row types.Row, emit func(string, types.Row)) { emit(row[0].Str(), row) },
		func(key string, values []types.Row, emit func(types.Row)) {
			emit(types.Row{types.NewString(key)})
		})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(out))
	for i, r := range out {
		keys[i] = r[0].Str()
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("reduce output not key-sorted within partition: %v", keys)
	}
}

func TestMapReduceMissingInput(t *testing.T) {
	mr := &MapReduce{Dir: t.TempDir()}
	_, err := mr.Run("absent",
		func(types.Row, func(string, types.Row)) {},
		func(string, []types.Row, func(types.Row)) {})
	if err == nil {
		t.Fatal("missing input should error")
	}
}

func TestPeriodicMV(t *testing.T) {
	refreshed := 0
	mv := &PeriodicMV{
		Refresh: func() error { refreshed++; return nil },
		Period:  60_000_000, // 1 minute
	}
	// First observation starts the clock, no refresh.
	if ok, _ := mv.Observe(0); ok {
		t.Fatal("refresh on first observe")
	}
	if ok, _ := mv.Observe(30_000_000); ok {
		t.Fatal("refresh before period")
	}
	if mv.Staleness(30_000_000) != 30_000_000 {
		t.Fatalf("staleness = %d", mv.Staleness(30_000_000))
	}
	if ok, _ := mv.Observe(61_000_000); !ok {
		t.Fatal("refresh due")
	}
	if mv.Staleness(61_000_000) != 1_000_000 {
		t.Fatalf("staleness after refresh = %d", mv.Staleness(61_000_000))
	}
	// A long gap refreshes once and realigns.
	if ok, _ := mv.Observe(500_000_000); !ok {
		t.Fatal("refresh after gap")
	}
	if mv.Refreshes() != 2 || refreshed != 2 {
		t.Fatalf("refreshes = %d/%d", mv.Refreshes(), refreshed)
	}
}

func TestPeriodicMVRefreshError(t *testing.T) {
	mv := &PeriodicMV{
		Refresh: func() error { return fmt.Errorf("boom") },
		Period:  10,
	}
	mv.Observe(0)
	if _, err := mv.Observe(20); err == nil {
		t.Fatal("refresh error swallowed")
	}
}
