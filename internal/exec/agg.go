package exec

import (
	"sort"

	"streamrel/internal/expr"
	"streamrel/internal/types"
)

// HashAgg implements grouped aggregation. Its output rows are the group
// key values followed by one column per aggregate, which is the layout
// the planner's post-aggregation expressions are rewritten against.
//
// HashAgg is also the slice-level workhorse of shared window aggregation:
// the stream runtime aggregates each slice with the same AggSpecs and
// merges the per-slice accumulators at window close (see
// internal/stream/sharing.go).
type HashAgg struct {
	Child   Operator
	GroupBy []*expr.Scalar
	Aggs    []expr.AggSpec
	// SortedOutput makes group iteration deterministic (keyed order);
	// used when no explicit ORDER BY will run above.
	SortedOutput bool

	rows []types.Row
	pos  int
}

// Open implements Operator: the aggregation is computed eagerly.
func (h *HashAgg) Open(ctx *Ctx) error {
	h.rows = nil
	h.pos = 0
	if err := h.Child.Open(ctx); err != nil {
		return err
	}
	defer h.Child.Close()

	type group struct {
		keys types.Row
		accs []expr.Acc
	}
	groups := make(map[string]*group)
	var order []string

	// Pull whole chunks when the child supports it, hoist one expression
	// context per chunk, and evaluate group keys into a scratch row that
	// is cloned only when a new group is born — most rows hit an existing
	// group, so the steady state allocates nothing per row but the key.
	ec := expr.Ctx{WindowClose: ctx.WindowClose, Now: ctx.Now}
	scratch := make(types.Row, len(h.GroupBy))
	var inBuf []types.Row
	for {
		batch, err := nextBatch(h.Child, &inBuf)
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		for _, row := range batch {
			ec.Row = row
			for i, g := range h.GroupBy {
				if scratch[i], err = g.Eval(&ec); err != nil {
					return err
				}
			}
			k := scratch.Key()
			grp, ok := groups[k]
			if !ok {
				grp = &group{keys: scratch.Clone()}
				grp.accs = make([]expr.Acc, len(h.Aggs))
				for i, spec := range h.Aggs {
					if grp.accs[i], err = expr.NewAcc(spec); err != nil {
						return err
					}
				}
				groups[k] = grp
				order = append(order, k)
			}
			for i, spec := range h.Aggs {
				v := types.True // count(*) placeholder
				if spec.Arg != nil {
					if v, err = spec.Arg.Eval(&ec); err != nil {
						return err
					}
				}
				if err := grp.accs[i].Add(v); err != nil {
					return err
				}
			}
		}
	}

	// SQL scalar aggregate: no GROUP BY and empty input still yields one
	// row of aggregate defaults.
	if len(groups) == 0 && len(h.GroupBy) == 0 {
		accs := make([]expr.Acc, len(h.Aggs))
		for i, spec := range h.Aggs {
			var err error
			if accs[i], err = expr.NewAcc(spec); err != nil {
				return err
			}
		}
		groups[""] = &group{accs: accs}
		order = append(order, "")
	}

	for _, k := range order {
		grp := groups[k]
		out := make(types.Row, 0, len(grp.keys)+len(grp.accs))
		out = append(out, grp.keys...)
		for _, acc := range grp.accs {
			out = append(out, acc.Result())
		}
		h.rows = append(h.rows, out)
	}
	if h.SortedOutput && len(h.GroupBy) > 0 {
		nk := len(h.GroupBy)
		sort.SliceStable(h.rows, func(i, j int) bool {
			return types.CompareRows(h.rows[i][:nk], h.rows[j][:nk]) < 0
		})
	}
	return nil
}

// Next implements Operator.
func (h *HashAgg) Next() (types.Row, error) {
	if h.pos >= len(h.rows) {
		return nil, nil
	}
	r := h.rows[h.pos]
	h.pos++
	return r, nil
}

// Close implements Operator.
func (h *HashAgg) Close() error { h.rows = nil; return nil }
