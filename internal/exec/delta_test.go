package exec

import (
	"testing"
	"time"

	"streamrel/internal/expr"
	"streamrel/internal/types"
)

func mustAdd(t *testing.T, a DeltaAcc, vs ...types.Datum) {
	t.Helper()
	for _, v := range vs {
		if err := a.Add(v); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeltaCount covers star vs column semantics and exact retraction.
func TestDeltaCount(t *testing.T) {
	star := NewDeltaAcc(DeltaCount, expr.AggSpec{Star: true})
	col := NewDeltaAcc(DeltaCount, expr.AggSpec{})
	for _, a := range []DeltaAcc{star, col} {
		mustAdd(t, a, types.NewInt(1), types.Null, types.NewInt(2))
	}
	if got := star.Result(); got.Int() != 3 {
		t.Errorf("count(*) = %v, want 3", got)
	}
	if got := col.Result(); got.Int() != 2 {
		t.Errorf("count(x) = %v, want 2 (NULL skipped)", got)
	}

	// Retract a slice partial: count drops by the slice's contribution.
	slice := NewDeltaAcc(DeltaCount, expr.AggSpec{Star: true})
	mustAdd(t, slice, types.NewInt(1), types.NewInt(2))
	if err := star.Sub(slice); err != nil {
		t.Fatal(err)
	}
	if got := star.Result(); got.Int() != 1 {
		t.Errorf("after Sub: %v, want 1", got)
	}
}

// TestDeltaSumWidening checks that retraction also retracts the type
// widening: a window that saw a float keeps reporting float sums only
// while a float remains visible, exactly like re-running expr.sumAcc
// over the surviving rows.
func TestDeltaSumWidening(t *testing.T) {
	w := NewDeltaAcc(DeltaSum, expr.AggSpec{})
	sliceInt := NewDeltaAcc(DeltaSum, expr.AggSpec{})
	sliceFloat := NewDeltaAcc(DeltaSum, expr.AggSpec{})
	mustAdd(t, sliceInt, types.NewInt(3), types.NewInt(4))
	mustAdd(t, sliceFloat, types.NewFloat(1.5))
	if err := w.Merge(sliceInt); err != nil {
		t.Fatal(err)
	}
	if err := w.Merge(sliceFloat); err != nil {
		t.Fatal(err)
	}
	if got := w.Result(); got.Type() != types.TypeFloat || got.Float() != 8.5 {
		t.Fatalf("mixed sum = %v, want float 8.5", got)
	}
	// Expire the float slice: the window holds only ints again, so the
	// sum must narrow back to an integer — sticky-boolean state can't do
	// this; per-type counts can.
	if err := w.Sub(sliceFloat); err != nil {
		t.Fatal(err)
	}
	if got := w.Result(); got.Type() != types.TypeInt || got.Int() != 7 {
		t.Fatalf("after float retract = %v (%s), want int 7", got, got.Type())
	}
	// Expire the int slice too: empty window sums to NULL.
	if err := w.Sub(sliceInt); err != nil {
		t.Fatal(err)
	}
	if !w.Result().IsNull() {
		t.Fatalf("empty sum = %v, want NULL", w.Result())
	}
}

// TestDeltaSumInterval pins the interval branch: intervals win the
// widening precedence and retract exactly.
func TestDeltaSumInterval(t *testing.T) {
	w := NewDeltaAcc(DeltaSum, expr.AggSpec{})
	slice := NewDeltaAcc(DeltaSum, expr.AggSpec{})
	mustAdd(t, w, types.NewInterval(2*time.Second))
	mustAdd(t, slice, types.NewInterval(500*time.Millisecond))
	if err := w.Merge(slice); err != nil {
		t.Fatal(err)
	}
	if got := w.Result(); got.Type() != types.TypeInterval || got.IntervalMicros() != 2_500_000 {
		t.Fatalf("interval sum = %v, want 2.5s", got)
	}
	if err := w.Sub(slice); err != nil {
		t.Fatal(err)
	}
	if got := w.Result(); got.IntervalMicros() != 2_000_000 {
		t.Fatalf("after retract = %v, want 2s", got)
	}
	if err := w.Add(types.NewString("x")); err == nil {
		t.Fatal("sum over varchar should error")
	}
}

// TestDeltaAvg checks the SUM+COUNT decomposition, NULL inputs, and the
// NULL result over an empty window.
func TestDeltaAvg(t *testing.T) {
	w := NewDeltaAcc(DeltaAvg, expr.AggSpec{})
	slice := NewDeltaAcc(DeltaAvg, expr.AggSpec{})
	mustAdd(t, w, types.NewInt(1), types.Null, types.NewInt(2))
	mustAdd(t, slice, types.NewFloat(6))
	if err := w.Merge(slice); err != nil {
		t.Fatal(err)
	}
	if got := w.Result(); got.Float() != 3 {
		t.Fatalf("avg = %v, want 3", got)
	}
	if err := w.Sub(slice); err != nil {
		t.Fatal(err)
	}
	if got := w.Result(); got.Float() != 1.5 {
		t.Fatalf("after retract = %v, want 1.5", got)
	}
	empty := NewDeltaAcc(DeltaAvg, expr.AggSpec{})
	if !empty.Result().IsNull() {
		t.Fatal("avg over empty window should be NULL")
	}
	if err := w.Add(types.NewString("x")); err == nil {
		t.Fatal("avg over varchar should error")
	}
}

// TestDeltaMinMax checks merge order independence for values, the
// explicit Sub error, and NULL handling.
func TestDeltaMinMax(t *testing.T) {
	min := NewDeltaAcc(DeltaMin, expr.AggSpec{})
	max := NewDeltaAcc(DeltaMax, expr.AggSpec{})
	for _, a := range []DeltaAcc{min, max} {
		mustAdd(t, a, types.NewInt(5), types.Null, types.NewInt(2), types.NewInt(9))
	}
	if got := min.Result(); got.Int() != 2 {
		t.Errorf("min = %v, want 2", got)
	}
	if got := max.Result(); got.Int() != 9 {
		t.Errorf("max = %v, want 9", got)
	}
	if err := min.Sub(max); err == nil {
		t.Fatal("min/max Sub must refuse: no retract form")
	}
	// Re-merge path used on slice expiry: combining surviving partials
	// reproduces the window value; an empty partial is a no-op.
	survivor := NewDeltaAcc(DeltaMax, expr.AggSpec{})
	mustAdd(t, survivor, types.NewInt(7))
	rebuilt := NewDeltaAcc(DeltaMax, expr.AggSpec{})
	if err := rebuilt.Merge(survivor); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Merge(NewDeltaAcc(DeltaMax, expr.AggSpec{})); err != nil {
		t.Fatal(err)
	}
	if got := rebuilt.Result(); got.Int() != 7 {
		t.Errorf("rebuilt max = %v, want 7", got)
	}
	if err := rebuilt.Add(types.NewString("x")); err == nil {
		t.Fatal("min/max over mixed types should error")
	}
	if !NewDeltaAcc(DeltaMin, expr.AggSpec{}).Result().IsNull() {
		t.Fatal("min over empty window should be NULL")
	}
}

// TestDeltaKindMismatch: combining different kinds is a bug and must
// error rather than corrupt state.
func TestDeltaKindMismatch(t *testing.T) {
	c := NewDeltaAcc(DeltaCount, expr.AggSpec{Star: true})
	s := NewDeltaAcc(DeltaSum, expr.AggSpec{})
	if err := c.Merge(s); err == nil {
		t.Fatal("count.Merge(sum) should error")
	}
	if err := s.Sub(c); err == nil {
		t.Fatal("sum.Sub(count) should error")
	}
}

// TestDeltaSubtractable pins which kinds claim an exact inverse.
func TestDeltaSubtractable(t *testing.T) {
	for k, want := range map[DeltaKind]bool{
		DeltaCount: true, DeltaSum: true, DeltaAvg: true,
		DeltaMin: false, DeltaMax: false,
	} {
		if k.Subtractable() != want {
			t.Errorf("kind %d Subtractable = %v, want %v", k, k.Subtractable(), want)
		}
	}
}
