package exec

import (
	"fmt"

	"streamrel/internal/expr"
	"streamrel/internal/types"
)

// DeltaKind classifies how one aggregate call is maintained incrementally
// (DBToaster-style delta processing). Subtractable kinds undo an expired
// slice by subtracting its partial; min/max have no inverse, so expiry
// re-merges the surviving per-slice partials instead.
type DeltaKind int

// Delta kinds, one per incrementally maintainable aggregate.
const (
	// DeltaCount subtracts the expired slice's row count.
	DeltaCount DeltaKind = iota
	// DeltaSum subtracts the expired slice's per-type sums.
	DeltaSum
	// DeltaAvg is the SUM+COUNT decomposition: both parts subtract.
	DeltaAvg
	// DeltaMin re-merges surviving slice partials on expiry.
	DeltaMin
	// DeltaMax re-merges surviving slice partials on expiry.
	DeltaMax
)

// Subtractable reports whether retraction is an exact inverse (Sub), as
// opposed to requiring a re-merge of the surviving partials.
func (k DeltaKind) Subtractable() bool { return k != DeltaMin && k != DeltaMax }

// DeltaAcc is a retractable aggregate accumulator. Add and Result follow
// expr.Acc semantics exactly (same NULL handling, same numeric widening,
// same tie behavior), so a window maintained by deltas emits byte-identical
// results to re-executing the plan over the window's rows. Merge combines a
// partial of the same kind; Sub retracts one previously merged or added —
// only subtractable kinds support it.
type DeltaAcc interface {
	Add(v types.Datum) error
	Merge(o DeltaAcc) error
	Sub(o DeltaAcc) error
	Result() types.Datum
}

// NewDeltaAcc returns a fresh accumulator for the kind. The spec supplies
// count(*)'s star flag; the caller has already rejected DISTINCT.
func NewDeltaAcc(k DeltaKind, spec expr.AggSpec) DeltaAcc {
	switch k {
	case DeltaCount:
		return &deltaCount{star: spec.Star}
	case DeltaSum:
		return &deltaSum{}
	case DeltaAvg:
		return &deltaAvg{}
	case DeltaMin:
		return &deltaMinMax{want: -1}
	case DeltaMax:
		return &deltaMinMax{want: 1}
	}
	return nil
}

// deltaCount maintains count(*) / count(x).
type deltaCount struct {
	star bool
	n    int64
}

func (a *deltaCount) Add(v types.Datum) error {
	if a.star || !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *deltaCount) Merge(o DeltaAcc) error {
	b, ok := o.(*deltaCount)
	if !ok {
		return deltaTypeErr(a, o)
	}
	a.n += b.n
	return nil
}

func (a *deltaCount) Sub(o DeltaAcc) error {
	b, ok := o.(*deltaCount)
	if !ok {
		return deltaTypeErr(a, o)
	}
	a.n -= b.n
	return nil
}

func (a *deltaCount) Result() types.Datum { return types.NewInt(a.n) }

// deltaSum maintains sum over ints, floats and intervals. expr's sumAcc
// tracks which input types it saw with sticky booleans; here those become
// per-type counts so retraction can undo them, while Result applies the
// same widening precedence (interval > float > int) and yields NULL when
// no non-NULL value remains in the window.
type deltaSum struct {
	nInt, nFloat, nIval int64
	i                   int64
	f                   float64
}

func (a *deltaSum) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	switch v.Type() {
	case types.TypeInt:
		a.nInt++
		a.i += v.Int()
		a.f += float64(v.Int())
	case types.TypeFloat:
		a.nFloat++
		a.f += v.Float()
	case types.TypeInterval:
		a.nIval++
		a.i += v.IntervalMicros()
	default:
		return fmt.Errorf("expr: sum over %s", v.Type())
	}
	return nil
}

func (a *deltaSum) Merge(o DeltaAcc) error {
	b, ok := o.(*deltaSum)
	if !ok {
		return deltaTypeErr(a, o)
	}
	a.nInt += b.nInt
	a.nFloat += b.nFloat
	a.nIval += b.nIval
	a.i += b.i
	a.f += b.f
	return nil
}

func (a *deltaSum) Sub(o DeltaAcc) error {
	b, ok := o.(*deltaSum)
	if !ok {
		return deltaTypeErr(a, o)
	}
	a.nInt -= b.nInt
	a.nFloat -= b.nFloat
	a.nIval -= b.nIval
	a.i -= b.i
	a.f -= b.f
	return nil
}

func (a *deltaSum) Result() types.Datum {
	switch {
	case a.nInt+a.nFloat+a.nIval == 0:
		return types.Null
	case a.nIval > 0:
		return types.NewIntervalMicros(a.i)
	case a.nFloat > 0:
		return types.NewFloat(a.f)
	default:
		return types.NewInt(a.i)
	}
}

// deltaAvg is avg's SUM+COUNT decomposition; both parts subtract exactly.
type deltaAvg struct {
	n int64
	f float64
}

func (a *deltaAvg) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	if !v.Type().Numeric() {
		return fmt.Errorf("expr: avg over %s", v.Type())
	}
	a.n++
	a.f += v.Float()
	return nil
}

func (a *deltaAvg) Merge(o DeltaAcc) error {
	b, ok := o.(*deltaAvg)
	if !ok {
		return deltaTypeErr(a, o)
	}
	a.n += b.n
	a.f += b.f
	return nil
}

func (a *deltaAvg) Sub(o DeltaAcc) error {
	b, ok := o.(*deltaAvg)
	if !ok {
		return deltaTypeErr(a, o)
	}
	a.n -= b.n
	a.f -= b.f
	return nil
}

func (a *deltaAvg) Result() types.Datum {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat(a.f / float64(a.n))
}

// deltaMinMax maintains min (want=-1) / max (want=+1). It has no inverse:
// Sub always errors, and slice expiry rebuilds the window value by merging
// the surviving per-slice partials in ascending slice order — which keeps
// the first-seen-wins tie behavior of direct evaluation, because rows
// arrive in timestamp order.
type deltaMinMax struct {
	want int
	seen bool
	best types.Datum
}

func (a *deltaMinMax) Add(v types.Datum) error {
	if v.IsNull() {
		return nil
	}
	if !a.seen {
		a.best, a.seen = v, true
		return nil
	}
	if !types.Comparable(v.Type(), a.best.Type()) {
		return fmt.Errorf("expr: min/max over mixed types %s and %s", v.Type(), a.best.Type())
	}
	if c := types.Compare(v, a.best); (a.want < 0 && c < 0) || (a.want > 0 && c > 0) {
		a.best = v
	}
	return nil
}

func (a *deltaMinMax) Merge(o DeltaAcc) error {
	b, ok := o.(*deltaMinMax)
	if !ok {
		return deltaTypeErr(a, o)
	}
	if b.seen {
		return a.Add(b.best)
	}
	return nil
}

func (a *deltaMinMax) Sub(o DeltaAcc) error {
	return fmt.Errorf("exec: min/max has no retract form; re-merge surviving partials")
}

func (a *deltaMinMax) Result() types.Datum {
	if !a.seen {
		return types.Null
	}
	return a.best
}

func deltaTypeErr(a, b DeltaAcc) error {
	return fmt.Errorf("exec: cannot combine %T into %T", b, a)
}
