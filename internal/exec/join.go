package exec

import (
	"streamrel/internal/expr"
	"streamrel/internal/types"
)

// JoinType mirrors the SQL join variants for the executor.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

// HashJoin joins on equality of LeftKeys and RightKeys, building a hash
// table over the right input and probing with the left. Residual is an
// optional extra predicate evaluated over the concatenated row. LEFT and
// FULL outer are supported natively; the planner swaps inputs to express
// RIGHT outer as LEFT.
type HashJoin struct {
	Left, Right           Operator
	LeftKeys, RightKeys   []*expr.Scalar
	Type                  JoinType
	Residual              *expr.Scalar
	LeftWidth, RightWidth int // column counts, for NULL padding

	ctx       *Ctx
	table     map[string][]buildRow
	leftRow   types.Row
	matches   []buildRow
	matchPos  int
	leftDone  bool
	leftMatch bool
	// FULL outer: unmatched build rows are emitted after the probe.
	unmatched    []types.Row
	unmatchedPos int
}

type buildRow struct {
	row     types.Row
	matched *bool
}

// Open implements Operator.
func (j *HashJoin) Open(ctx *Ctx) error {
	j.ctx = ctx
	j.table = make(map[string][]buildRow)
	j.leftRow = nil
	j.matches = nil
	j.leftDone = false
	j.unmatched = nil
	j.unmatchedPos = 0
	rows, err := Drain(ctx, j.Right)
	if err != nil {
		return err
	}
	for _, r := range rows {
		key, null, err := j.keyOf(r, j.RightKeys)
		if err != nil {
			return err
		}
		br := buildRow{row: r}
		if j.Type == JoinFull || j.Type == JoinRight {
			br.matched = new(bool)
		}
		if null {
			// NULL keys never join, but FULL/RIGHT outer must still emit
			// the build row padded with NULLs.
			if j.Type == JoinFull || j.Type == JoinRight {
				j.unmatched = append(j.unmatched, r)
			}
			continue
		}
		j.table[key] = append(j.table[key], br)
	}
	return j.Left.Open(ctx)
}

func (j *HashJoin) keyOf(row types.Row, keys []*expr.Scalar) (string, bool, error) {
	vals := make(types.Row, len(keys))
	ec := j.ctx.exprCtx(row)
	for i, k := range keys {
		v, err := k.Eval(ec)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		vals[i] = v
	}
	return vals.Key(), false, nil
}

// Next implements Operator.
func (j *HashJoin) Next() (types.Row, error) {
	for {
		// Emit pending matches for the current probe row.
		for j.matchPos < len(j.matches) {
			m := j.matches[j.matchPos]
			j.matchPos++
			out := concatRows(j.leftRow, m.row)
			if j.Residual != nil {
				ok, err := evalPred(j.ctx, j.Residual, out)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			j.leftMatch = true
			if m.matched != nil {
				*m.matched = true
			}
			return out, nil
		}
		// Current probe row exhausted: left-outer padding if unmatched.
		if j.leftRow != nil && !j.leftMatch && (j.Type == JoinLeft || j.Type == JoinFull) {
			out := concatRows(j.leftRow, nullRow(j.RightWidth))
			j.leftRow = nil
			return out, nil
		}
		j.leftRow = nil
		if !j.leftDone {
			row, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				j.leftDone = true
				if j.Type == JoinFull || j.Type == JoinRight {
					j.collectUnmatched()
				}
				continue
			}
			j.leftRow = row
			j.leftMatch = false
			j.matchPos = 0
			key, null, err := j.keyOf(row, j.LeftKeys)
			if err != nil {
				return nil, err
			}
			if null {
				j.matches = nil
			} else {
				j.matches = j.table[key]
			}
			continue
		}
		// FULL outer tail: unmatched build rows padded with NULL left.
		if j.unmatchedPos < len(j.unmatched) {
			r := j.unmatched[j.unmatchedPos]
			j.unmatchedPos++
			return concatRows(nullRow(j.LeftWidth), r), nil
		}
		return nil, nil
	}
}

func (j *HashJoin) collectUnmatched() {
	for _, bucket := range j.table {
		for _, br := range bucket {
			if br.matched != nil && !*br.matched {
				j.unmatched = append(j.unmatched, br.row)
			}
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	j.unmatched = nil
	return j.Left.Close()
}

// NestedLoopJoin joins on an arbitrary predicate by buffering the right
// input and scanning it per probe row. It handles CROSS joins (nil
// predicate) and non-equi conditions; LEFT outer is supported.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        *expr.Scalar // nil for CROSS
	Type        JoinType
	RightWidth  int

	ctx       *Ctx
	right     []types.Row
	leftRow   types.Row
	rightPos  int
	leftMatch bool
}

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Ctx) error {
	j.ctx = ctx
	j.leftRow = nil
	var err error
	if j.right, err = Drain(ctx, j.Right); err != nil {
		return err
	}
	return j.Left.Open(ctx)
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (types.Row, error) {
	for {
		if j.leftRow == nil {
			row, err := j.Left.Next()
			if err != nil || row == nil {
				return nil, err
			}
			j.leftRow = row
			j.rightPos = 0
			j.leftMatch = false
		}
		for j.rightPos < len(j.right) {
			r := j.right[j.rightPos]
			j.rightPos++
			out := concatRows(j.leftRow, r)
			if j.Pred != nil {
				ok, err := evalPred(j.ctx, j.Pred, out)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			j.leftMatch = true
			return out, nil
		}
		if !j.leftMatch && j.Type == JoinLeft {
			out := concatRows(j.leftRow, nullRow(j.RightWidth))
			j.leftRow = nil
			return out, nil
		}
		j.leftRow = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.right = nil
	return j.Left.Close()
}

func concatRows(l, r types.Row) types.Row {
	out := make(types.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(n int) types.Row {
	out := make(types.Row, n)
	for i := range out {
		out[i] = types.Null
	}
	return out
}
